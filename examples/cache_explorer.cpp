// Explore the cache behaviour behind the paper's Figs. 4-5 with the hwc
// cache simulator: run the States kernel over growing arrays in both
// access modes on a configurable two-level hierarchy and print hit/miss
// statistics per level.
//
//   ./examples/cache_explorer [l2_kb] [assoc]

#include <iostream>

#include "euler/kernels.hpp"
#include "hwc/cache_sim.hpp"
#include "support/table.hpp"

namespace {

struct TraceResult {
  double l1_miss_rate;
  double l2_miss_rate;
  std::uint64_t l2_misses;
  std::uint64_t flops;
};

TraceResult trace(const amr::Box& interior, euler::Dir dir, std::size_t l2_bytes,
                  std::size_t assoc) {
  const euler::GasModel gas;
  hwc::CacheSim l2(l2_bytes, 64, assoc);
  hwc::CacheSim l1(8 * 1024, 64, 4);
  l1.set_lower(&l2);
  hwc::CacheProbe probe(&l1);

  amr::PatchData<double> u(interior, 2, euler::kNcomp, 1.0);
  // A simple smooth field (content does not affect memory behaviour).
  const amr::Box g = u.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      u(i, j, euler::kRho) = 1.0 + 0.001 * i;
      u(i, j, euler::kE) = 2.5;
    }

  int nx = 0, ny = 0;
  euler::face_dims(interior, dir, nx, ny);
  euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
  euler::compute_states(u, interior, dir, gas, l, r, probe);
  return TraceResult{l1.counters().miss_rate(), l2.counters().miss_rate(),
                     l2.counters().misses, probe.counts().flops};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t l2_kb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const std::size_t assoc = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  std::cout << "States kernel through a simulated 8kB L1 + " << l2_kb << "kB "
            << assoc << "-way L2 (64B lines)\n\n";

  ccaperf::TextTable t;
  t.set_header({"cells", "working set", "mode", "L1 miss%", "L2 miss%",
                "L2 misses", "flops"});
  for (int h = 16; h <= 512; h *= 2) {
    const amr::Box interior{0, 0, 2 * h - 1, h - 1};
    const double mb = static_cast<double>((2 * h + 4)) * (h + 4) *
                      euler::kNcomp * sizeof(double) / 1048576.0;
    for (euler::Dir dir : {euler::Dir::x, euler::Dir::y}) {
      const TraceResult r = trace(interior, dir, l2_kb * 1024, assoc);
      t.add_row({std::to_string(2L * h * h), ccaperf::fmt_double(mb, 3) + " MB",
                 dir == euler::Dir::x ? "sequential" : "strided",
                 ccaperf::fmt_double(100.0 * r.l1_miss_rate, 3),
                 ccaperf::fmt_double(100.0 * r.l2_miss_rate, 3),
                 std::to_string(r.l2_misses), std::to_string(r.flops)});
    }
  }
  t.render(std::cout);
  std::cout << "\nReading: once the working set exceeds the L2 capacity the "
               "strided sweep's L2 misses explode while the sequential sweep "
               "stays at one miss per line (the Fig. 4-5 crossover).\n";
  return 0;
}
