// Assembly optimization end-to-end (the paper's Section 6 vision):
//  1. measure EFMFlux and GodunovFlux through the PMM infrastructure on a
//     synthetic workload sweep;
//  2. fit per-implementation performance models;
//  3. evaluate the composite model for each possible assembly over the
//     workload the application actually runs;
//  4. pick the winner for a range of Quality-of-Service weights and show
//     the crossover between "fastest" (EFM) and "most accurate" (Godunov).
//
//   ./examples/assembly_optimizer

#include <iostream>

#include "../bench/bench_common.hpp"
#include "core/optimizer.hpp"

int main() {
  const euler::GasModel gas;

  std::cout << "measuring flux implementations through proxies...\n";
  // Power-law fits: positive for every Q (a linear fit's negative
  // intercept would corrupt the optimizer's cost at small patches).
  auto fit_flux = [](const std::vector<core::Sample>& all) {
    std::vector<core::Sample> means;
    for (const core::Bin& b : core::bin_by_q(all))
      means.push_back(core::Sample{b.q, b.mean});
    return core::fit_power_law(means);
  };
  const auto god_model = fit_flux(bench::sweep_component("godunov", 1, 3, 80'000).all);
  const auto efm_model = fit_flux(bench::sweep_component("efm", 1, 3, 80'000).all);

  std::cout << "  T_Godunov(Q) = " << god_model->formula() << '\n'
            << "  T_EFM(Q)     = " << efm_model->formula() << "\n\n";

  // Workload: flux invocations of a typical AMR step (a few patch sizes,
  // invoked many times).
  core::Slot slot;
  slot.functionality = "euler.FluxPort";
  slot.candidates = {core::Candidate{"EFMFlux", efm_model.get(), 0.7},
                     core::Candidate{"GodunovFlux", god_model.get(), 1.0}};
  slot.workload = {{4'000.0, 400.0}, {16'000.0, 150.0}, {64'000.0, 40.0}};

  core::AssemblyOptimizer opt;
  opt.add_slot(slot);

  std::cout << "QoS sweep (cost = time * (1 + w * (1 - min accuracy))):\n";
  ccaperf::TextTable t;
  t.set_header({"accuracy weight w", "selected flux", "predicted time (ms)",
                "cost (ms)"});
  std::string prev;
  double crossover = -1.0;
  for (double w = 0.0; w <= 8.0; w += 0.5) {
    const auto best = opt.best(w);
    const std::string& pick = best.selection.at("euler.FluxPort");
    if (!prev.empty() && pick != prev && crossover < 0) crossover = w;
    prev = pick;
    t.add_row({ccaperf::fmt_double(w, 3), pick,
               ccaperf::fmt_double(best.predicted_time_us / 1000.0, 5),
               ccaperf::fmt_double(best.cost / 1000.0, 5)});
  }
  t.render(std::cout);

  std::cout << "\nperformance-only choice : "
            << opt.best(0.0).selection.at("euler.FluxPort")
            << "  (the paper: \"from a performance point of view, EFMFlux has "
               "better characteristics\")\n";
  if (crossover >= 0)
    std::cout << "QoS crossover          : accuracy weight ~ "
              << ccaperf::fmt_double(crossover, 3)
              << " flips the choice to GodunovFlux (\"the preferred choice "
                 "for scientists\")\n";
  return 0;
}
