// Quickstart: assemble the instrumented shock/interface application on
// three SCMD ranks, run a few steps, and print what the PMM
// infrastructure produced — the TAU FUNCTION SUMMARY (mean over ranks),
// the monitored records, and fitted performance models.
//
//   ./examples/quickstart [nranks] [nsteps]

#include <iostream>
#include <vector>

#include "components/app_assembly.hpp"
#include "core/instrumented_app.hpp"
#include "core/modeling.hpp"
#include "mpp/runtime.hpp"
#include "tau/profile.hpp"

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 3;
  const int nsteps = argc > 2 ? std::atoi(argv[2]) : 4;

  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = nsteps;
  cfg.driver.regrid_interval = std::max(2, nsteps / 2);

  // Harness-side aggregation buffers (ranks are threads in one process;
  // each writes only its own slot, with the runtime join as the barrier).
  std::vector<std::vector<tau::ProfileRow>> profiles(
      static_cast<std::size_t>(nranks));
  std::vector<std::string> model_report(static_cast<std::size_t>(nranks));

  mpp::Runtime::run(nranks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    core::InstrumentedApp app = core::assemble_instrumented_app(world, cfg);
    tau::Registry& reg = app.registry();

    // Root timer, as TAU profiles show it.
    const tau::TimerId root = reg.timer("int main(int, char **)");
    reg.start(root);
    auto* go = app.fw().services("driver").provided_as<components::GoPort>("go");
    const int rc = go->go();
    reg.stop(root);
    CCAPERF_REQUIRE(rc == 0, "driver failed");

    profiles[static_cast<std::size_t>(world.rank())] = tau::profile_rows(reg);

    if (world.rank() == 0) {
      std::ostringstream os;
      os << "\nMonitored records (rank 0):\n";
      for (const std::string& key : app.mastermind->method_keys()) {
        const core::Record* rec = app.mastermind->record(key);
        os << "  " << key << ": " << rec->count() << " invocations\n";
      }
      // Fit the paper's three models where enough data exists.
      for (const std::string& key : app.mastermind->method_keys()) {
        const core::Record* rec = app.mastermind->record(key);
        auto raw = rec->samples("Q", core::Record::Metric::compute);
        if (raw.size() < 8) continue;
        std::vector<core::Sample> samples;
        for (auto [q, t] : raw) samples.push_back({q, t});
        auto models = core::build_mean_sigma_models(samples);
        os << "  model " << key << ": T_mean(Q) = " << models.mean->formula()
           << "   (R^2 = " << models.mean->r2 << ")\n";
        if (models.sigma)
          os << "        sigma(Q) = " << models.sigma->formula() << "\n";
      }
      model_report[0] = os.str();
    }
    world.barrier();
  });

  tau::write_function_summary(std::cout, tau::mean_rows(profiles), "mean");
  std::cout << model_report[0] << '\n';
  std::cout << "quickstart: OK (" << nranks << " ranks, " << nsteps << " steps)\n";
  return 0;
}
