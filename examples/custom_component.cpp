// Writing your own monitored component: the full PMM workflow for a
// user-defined port type, mirroring §4.2's recipe — define the port,
// implement the component, write the (mechanical) proxy from the header,
// wire TAU + Mastermind, extract the performance parameter, and fit a
// model.
//
//   ./examples/custom_component

#include <iostream>
#include <vector>

#include "core/mastermind.hpp"
#include "core/modeling.hpp"
#include "core/ports.hpp"
#include "core/proxies.hpp"
#include "core/tau_component.hpp"
#include "support/table.hpp"

namespace {

// --- 1. the port: a dense matrix-vector multiply service --------------------

class MatVecPort : public cca::Port {
 public:
  /// y = A x for a row-major n x n matrix.
  virtual void apply(const std::vector<double>& a, const std::vector<double>& x,
                     std::vector<double>& y) = 0;
};

// --- 2. the component --------------------------------------------------------

class MatVecComponent final : public cca::Component, public MatVecPort {
 public:
  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<MatVecPort*>(this)),
                          "matvec", "demo.MatVecPort");
  }
  void apply(const std::vector<double>& a, const std::vector<double>& x,
             std::vector<double>& y) override {
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += a[i * n + j] * x[j];
      y[i] = s;
    }
  }
};

// --- 3. the proxy: same interface, monitored forward -------------------------
// Mechanical given the header; "it is not difficult to envision proxy
// creation being fully automated" (§4.2). The performance parameter here
// is N (the matrix dimension) — chosen by "someone with a knowledge of
// the algorithm": cost is O(N^2).

class MatVecProxy final : public cca::Component, public MatVecPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<MatVecPort*>(this)),
                          "matvec", "demo.MatVecPort");
    svc.register_uses_port("matvec_real", "demo.MatVecPort");
    svc.register_uses_port("monitor", "pmm.MonitorPort");
  }
  void apply(const std::vector<double>& a, const std::vector<double>& x,
             std::vector<double>& y) override {
    auto* monitor = svc_->get_port_as<core::MonitorPort>("monitor");
    auto* real = svc_->get_port_as<MatVecPort>("matvec_real");
    core::MonitoredScope scope(*monitor, "mv_proxy::apply()",
                               {{"N", static_cast<double>(x.size())}});
    real->apply(a, x, y);
  }

 private:
  cca::Services* svc_ = nullptr;
};

}  // namespace

int main() {
  // --- 4. assemble with the PMM components -----------------------------------
  cca::ComponentRepository repo;
  repo.register_class("MatVec", [] { return std::make_unique<MatVecComponent>(); });
  repo.register_class("MatVecProxy", [] { return std::make_unique<MatVecProxy>(); });
  repo.register_class("TauMeasurement",
                      [] { return std::make_unique<core::TauMeasurementComponent>(); });
  repo.register_class("Mastermind",
                      [] { return std::make_unique<core::MastermindComponent>(); });

  cca::Framework fw(std::move(repo));
  fw.instantiate("tau", "TauMeasurement");
  fw.instantiate("mm", "Mastermind");
  fw.instantiate("matvec", "MatVec");
  fw.instantiate("mv_proxy", "MatVecProxy");
  fw.connect("mm", "measurement", "tau", "measurement");
  fw.connect("mv_proxy", "monitor", "mm", "monitor");
  fw.connect("mv_proxy", "matvec_real", "matvec", "matvec");

  // --- 5. exercise through the proxy ------------------------------------------
  auto* service = fw.services("mv_proxy").provided_as<MatVecPort>("matvec");
  for (std::size_t n = 64; n <= 1024; n *= 2) {
    std::vector<double> a(n * n, 1.0 / static_cast<double>(n)), x(n, 1.0), y(n);
    for (int rep = 0; rep < 5; ++rep) service->apply(a, x, y);
  }

  // --- 6. records -> performance model ----------------------------------------
  auto* mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
  const core::Record* rec = mm->record("mv_proxy::apply()");
  std::vector<core::Sample> samples;
  for (auto [n, t] : rec->samples("N")) samples.push_back({n, t});
  const auto model = core::fit_best(samples, 2);

  std::cout << "monitored " << rec->count() << " invocations of mv_proxy::apply()\n";
  ccaperf::TextTable t;
  t.set_header({"N", "mean us"});
  for (const core::Bin& b : core::bin_by_q(samples))
    t.add_row({ccaperf::fmt_double(b.q, 5), ccaperf::fmt_double(b.mean, 5)});
  t.render(std::cout);
  std::cout << "\nfitted model: T(N) = " << model->formula() << "   [family "
            << model->family() << ", R^2 = " << ccaperf::fmt_double(model->r2, 4)
            << "]\n"
            << "(matvec is O(N^2): expect a quadratic or ~N^2 power law)\n";
  return 0;
}
