// The full case study as a standalone application: a Mach-1.5 shock
// hitting a perturbed Air/Freon interface on a 3-level AMR hierarchy,
// 3 SCMD ranks, fully instrumented (proxies + TAU + Mastermind).
//
//   ./examples/shock_interface [nsteps] [output_dir]
//
// Produces:
//  * a live step log (dt, hierarchy census),
//  * the FUNCTION SUMMARY profile (mean over ranks),
//  * per-method measurement records dumped as CSV into output_dir,
//  * fitted performance models for the monitored kernels.

#include <filesystem>
#include <iostream>
#include <sstream>
#include <vector>

#include "components/app_assembly.hpp"
#include "core/instrumented_app.hpp"
#include "core/modeling.hpp"
#include "mpp/runtime.hpp"
#include "tau/profile.hpp"

int main(int argc, char** argv) {
  const int nsteps = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string out_dir = argc > 2 ? argv[2] : "shock_interface_records";
  constexpr int kRanks = 3;

  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = nsteps;
  cfg.driver.regrid_interval = std::max(2, nsteps / 2);

  std::vector<std::vector<tau::ProfileRow>> profiles(kRanks);
  std::vector<std::string> reports(kRanks);

  mpp::Runtime::run(kRanks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    core::InstrumentedApp app = core::assemble_instrumented_app(world, cfg);
    app.mastermind->set_dump_on_destroy(out_dir, world.rank());

    tau::Registry& reg = app.registry();
    const auto root = reg.timer("int main(int, char **)");
    reg.start(root);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    reg.stop(root);

    profiles[static_cast<std::size_t>(world.rank())] = tau::profile_rows(reg);
    // Per-rank summary profile files, as TAU writes at termination.
    tau::write_profile_file(out_dir, world.rank(), reg);

    // Per-rank report assembled locally, printed by rank 0 after the join.
    std::ostringstream os;
    auto* mesh = app.fw().services("driver").get_port_as<components::MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();
    auto* driver = dynamic_cast<components::ShockDriverComponent*>(
        &app.fw().component("driver"));
    os << "rank " << world.rank() << ": t = " << driver->time() << ", "
       << h.num_levels() << " levels, " << h.total_cells() << " cells";
    long local_cells = 0;
    for (int l = 0; l < h.num_levels(); ++l)
      for (const auto& p : h.level(l).patches())
        if (p.owner == world.rank()) local_cells += p.box.num_pts();
    os << " (" << local_cells << " local)\n";

    if (world.rank() == 0) {
      os << "\nfitted performance models (rank 0 records):\n";
      for (const std::string& key : app.mastermind->method_keys()) {
        const core::Record* rec = app.mastermind->record(key);
        auto raw = rec->samples("Q", core::Record::Metric::compute);
        if (raw.size() < 12) continue;
        std::vector<core::Sample> samples;
        for (auto [q, t] : raw) samples.push_back({q, t});
        const auto ms = core::build_mean_sigma_models(samples);
        os << "  " << key << ": T(Q) = " << ms.mean->formula() << "  [R^2 "
           << ms.mean->r2 << "]\n";
      }
    }
    reports[static_cast<std::size_t>(world.rank())] = os.str();
  });

  std::cout << "=== shock/interface case study: " << nsteps << " steps on "
            << kRanks << " ranks ===\n";
  for (const std::string& r : reports) std::cout << r;
  std::cout << '\n';
  tau::write_function_summary(std::cout, tau::mean_rows(profiles), "mean");
  std::cout << "\nper-invocation records written to " << out_dir << "/\n";
  return 0;
}
