// Free-stream preservation — the classic AMR integration invariant: a
// uniform flow advanced through the FULL component stack (RK2 subcycling,
// prolongation, same-level exchange, physical BCs, flux kernels,
// restriction) on a multi-level hierarchy must remain exactly uniform.
// Any inconsistency between the pieces (ghost fill, interpolation,
// flux/divergence mapping, restriction averaging) breaks it.

#include <gtest/gtest.h>

#include <cmath>

#include "components/flux_components.hpp"
#include "components/inviscid_flux.hpp"
#include "components/rk2_component.hpp"
#include "components/states_component.hpp"
#include "core/instrumented_app.hpp"
#include "mpp/runtime.hpp"

namespace {

/// MeshPort over a hierarchy refined around a fixed blob (independent of
/// the flow, so a uniform field still gets a deep hierarchy).
class BlobMeshComponent final : public cca::Component, public components::MeshPort {
 public:
  explicit BlobMeshComponent(mpp::Comm& world) : hierarchy_(world, config()) {
    bc_.xlo = bc_.xhi = bc_.ylo = bc_.yhi = amr::BcType::transmissive;
  }

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<MeshPort*>(this)), "mesh",
                          "amr.MeshPort");
  }

  static amr::HierarchyConfig config() {
    amr::HierarchyConfig cfg;
    cfg.domain = amr::Box{0, 0, 31, 31};
    cfg.max_levels = 3;
    cfg.ncomp = euler::kNcomp;
    cfg.level0_patch_size = 8;
    cfg.cluster = amr::ClusterParams{0.7, 4, 0};
    cfg.geom = amr::Geometry{0.0, 0.0, 1.0 / 32.0, 1.0 / 32.0};
    return cfg;
  }

  amr::Hierarchy& hierarchy() override { return hierarchy_; }

  void initialize() override {
    hierarchy_.init_level0();
    const auto blob = [](const amr::Hierarchy& h, int l, const amr::PatchInfo& p,
                         amr::FlagField& flags) {
      const amr::Box dom = h.domain_at(l);
      const int cx = (dom.lo().i + dom.hi().i) / 2;
      const int cy = (dom.lo().j + dom.hi().j) / 2;
      flags.set_box(amr::Box{cx - 4, cy - 4, cx + 4, cy + 4} & p.box);
    };
    hierarchy_.regrid(blob);
    hierarchy_.regrid(blob);  // deepen to 3 levels
  }

  amr::ExchangeStats ghost_update(int level) override {
    return hierarchy_.exchange_and_bc(level, bc_);
  }
  void prolong(int level) override { hierarchy_.prolong(level, true); }
  void restrict_level(int fine_level) override {
    hierarchy_.restrict_level(fine_level);
  }
  void regrid() override {}

 private:
  amr::Hierarchy hierarchy_;
  amr::BcSpec bc_;
};

void run_freestream(const std::string& flux_class, const euler::Prim& w0) {
  mpp::Runtime::run(3, [&](mpp::Comm& world) {
    const euler::GasModel gas;
    cca::ComponentRepository repo;
    repo.register_class("BlobMesh", [&world] {
      return std::make_unique<BlobMeshComponent>(world);
    });
    repo.register_class("RK2", [gas] {
      auto c = std::make_unique<components::RK2Component>();
      c->set_gas(gas);
      return c;
    });
    repo.register_class("InviscidFlux",
                        [] { return std::make_unique<components::InviscidFluxComponent>(); });
    repo.register_class("States", [gas] {
      return std::make_unique<components::StatesComponent>(gas);
    });
    repo.register_class("EFMFlux", [gas] {
      return std::make_unique<components::EFMFluxComponent>(gas);
    });
    repo.register_class("GodunovFlux", [gas] {
      return std::make_unique<components::GodunovFluxComponent>(gas);
    });

    cca::Framework fw(std::move(repo));
    fw.instantiate("mesh", "BlobMesh");
    fw.instantiate("rk2", "RK2");
    fw.instantiate("invflux", "InviscidFlux");
    fw.instantiate("states", "States");
    fw.instantiate("flux", flux_class);
    fw.connect("rk2", "mesh", "mesh", "mesh");
    fw.connect("rk2", "invflux", "invflux", "invflux");
    fw.connect("invflux", "states", "states", "states");
    fw.connect("invflux", "flux", "flux", "flux");

    auto* mesh = dynamic_cast<BlobMeshComponent*>(&fw.component("mesh"));
    mesh->initialize();
    amr::Hierarchy& h = mesh->hierarchy();
    ASSERT_EQ(h.num_levels(), 3);

    // Uniform conserved state everywhere (including ghosts).
    double U0[euler::kNcomp];
    euler::prim_to_cons(w0, gas, U0);
    for (int l = 0; l < h.num_levels(); ++l)
      for (auto& [id, data] : h.level(l).local_data())
        for (int c = 0; c < euler::kNcomp; ++c)
          for (double& v : data.comp(c)) v = U0[c];

    auto* integrator =
        fw.services("rk2").provided_as<components::IntegratorPort>("integrator");
    const double dt = integrator->stable_dt(0.4);
    EXPECT_GT(dt, 0.0);
    for (int step = 0; step < 2; ++step) integrator->advance(dt);

    // Exactly uniform afterwards, every level, every interior cell.
    for (int l = 0; l < h.num_levels(); ++l) {
      for (auto& [id, data] : h.level(l).local_data()) {
        const amr::Box box = h.level(l).patch(id).box;
        for (int c = 0; c < euler::kNcomp; ++c)
          for (int j = box.lo().j; j <= box.hi().j; ++j)
            for (int i = box.lo().i; i <= box.hi().i; ++i)
              ASSERT_NEAR(data(i, j, c), U0[c], 1e-11 * (std::abs(U0[c]) + 1.0))
                  << flux_class << " level " << l << " cell (" << i << ',' << j
                  << ") comp " << c;
      }
    }
  });
}

TEST(Freestream, PreservedAtRestEFM) {
  run_freestream("EFMFlux", euler::Prim{1.0, 0.0, 0.0, 1.0, 1.0});
}

TEST(Freestream, PreservedMovingEFM) {
  run_freestream("EFMFlux", euler::Prim{1.3, 0.4, -0.25, 2.0, 1.0});
}

TEST(Freestream, PreservedMovingGodunov) {
  run_freestream("GodunovFlux", euler::Prim{0.8, -0.3, 0.15, 1.5, 1.0});
}

TEST(Freestream, PreservedMixedGas) {
  run_freestream("EFMFlux", euler::Prim{2.0, 0.2, 0.1, 1.0, 0.5});
}

}  // namespace
