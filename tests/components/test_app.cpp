// The plain (uninstrumented) case-study application: assembly, stepping,
// physical sanity of the evolved solution, distribution independence
// (SCMD), determinism, and the EFM/Godunov implementation swap.

#include <gtest/gtest.h>

#include <cmath>

#include "components/app_assembly.hpp"
#include "mpp/runtime.hpp"

namespace {

using components::AppConfig;

AppConfig tiny_config(int nsteps, const std::string& flux) {
  AppConfig cfg;
  cfg.mesh.domain = amr::Box{0, 0, 47, 23};
  cfg.mesh.max_levels = 2;
  cfg.mesh.ncomp = euler::kNcomp;
  cfg.mesh.level0_patch_size = 12;
  cfg.mesh.cluster = amr::ClusterParams{0.75, 4, 0};
  cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / 48.0, 1.0 / 24.0};
  cfg.driver = components::DriverConfig{nsteps, 0.4, 0};
  cfg.flux_impl = flux;
  return cfg;
}

struct RunResult {
  double mass = 0.0;
  double energy = 0.0;
  double min_rho = 1e300;
  double min_p = 1e300;
  int levels = 0;
  double time = 0.0;
};

RunResult run_app(int nranks, const AppConfig& cfg) {
  std::vector<RunResult> results(static_cast<std::size_t>(nranks));
  mpp::Runtime::run(nranks, [&](mpp::Comm& world) {
    auto fw = components::assemble_app(world, cfg);
    auto* go = fw->services("driver").provided_as<components::GoPort>("go");
    ASSERT_EQ(go->go(), 0);

    auto* mesh = fw->services("driver").get_port_as<components::MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();
    RunResult r;
    r.levels = h.num_levels();
    const double cell = h.dx(0) * h.dy(0);
    // Level-0 totals (fine data has been restricted onto level 0).
    for (auto& [id, data] : h.level(0).local_data()) {
      const amr::Box box = h.level(0).patch(id).box;
      double totals[euler::kNcomp];
      euler::total_conserved(data, box, totals);
      r.mass += totals[euler::kRho] * cell;
      r.energy += totals[euler::kE] * cell;
      for (int j = box.lo().j; j <= box.hi().j; ++j)
        for (int i = box.lo().i; i <= box.hi().i; ++i) {
          double U[euler::kNcomp];
          for (int c = 0; c < euler::kNcomp; ++c) U[c] = data(i, j, c);
          const euler::Prim w = euler::cons_to_prim(U, cfg.problem.gas);
          r.min_rho = std::min(r.min_rho, w.rho);
          r.min_p = std::min(r.min_p, w.p);
        }
    }
    r.mass = world.allreduce_value<>(r.mass);
    r.energy = world.allreduce_value<>(r.energy);
    r.min_rho = world.allreduce_value<mpp::MinOp<double>>(r.min_rho);
    r.min_p = world.allreduce_value<mpp::MinOp<double>>(r.min_p);
    auto* driver =
        dynamic_cast<components::ShockDriverComponent*>(&fw->component("driver"));
    r.time = driver->time();
    results[static_cast<std::size_t>(world.rank())] = r;
  });
  return results[0];
}

TEST(App, RunsAndStaysPhysical) {
  const RunResult r = run_app(1, tiny_config(3, "GodunovFlux"));
  EXPECT_GE(r.levels, 2);
  EXPECT_GT(r.time, 0.0);
  EXPECT_GT(r.min_rho, 0.0);
  EXPECT_GT(r.min_p, 0.0);
  EXPECT_GT(r.mass, 0.0);
}

TEST(App, DistributionIndependence) {
  // SCMD: the evolved solution must not depend on the number of ranks.
  const AppConfig cfg = tiny_config(2, "GodunovFlux");
  const RunResult serial = run_app(1, cfg);
  const RunResult parallel = run_app(3, cfg);
  EXPECT_NEAR(serial.mass, parallel.mass, 1e-9 * serial.mass);
  EXPECT_NEAR(serial.energy, parallel.energy, 1e-9 * serial.energy);
  EXPECT_EQ(serial.levels, parallel.levels);
}

TEST(App, DeterministicAcrossRuns) {
  const AppConfig cfg = tiny_config(2, "EFMFlux");
  const RunResult a = run_app(2, cfg);
  const RunResult b = run_app(2, cfg);
  EXPECT_DOUBLE_EQ(a.mass, b.mass);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(App, EfmAndGodunovBothEvolveTheShock) {
  const RunResult efm = run_app(1, tiny_config(3, "EFMFlux"));
  const RunResult god = run_app(1, tiny_config(3, "GodunovFlux"));
  EXPECT_GT(efm.min_p, 0.0);
  EXPECT_GT(god.min_p, 0.0);
  // Same problem, nearly the same mass budget (flux choice changes only
  // numerical diffusion, and boundary outflow is tiny over 3 steps).
  EXPECT_NEAR(efm.mass, god.mass, 0.01 * god.mass);
}

TEST(App, MassBudgetMatchesBoundaryInflow) {
  // The left (transmissive) boundary sits in the post-shock flow, so mass
  // enters at rate rho1*u1*Ly. The evolved mass must match that budget
  // (loosely: the simplified scheme has no coarse-fine refluxing, and the
  // first-order boundary model is approximate).
  AppConfig cfg = tiny_config(0, "GodunovFlux");
  const RunResult start = run_app(1, cfg);
  cfg = tiny_config(4, "GodunovFlux");
  const RunResult evolved = run_app(1, cfg);
  const euler::Prim post = cfg.problem.post_shock_state();
  const double ly = 1.0;
  const double expected_gain = post.rho * post.u * ly * evolved.time;
  const double gain = evolved.mass - start.mass;
  EXPECT_GT(gain, 0.0);
  EXPECT_NEAR(gain, expected_gain, 0.5 * expected_gain);
}

TEST(App, RegridDuringRunKeepsPhysicalState) {
  AppConfig cfg = tiny_config(4, "EFMFlux");
  cfg.driver.regrid_interval = 2;
  const RunResult r = run_app(2, cfg);
  EXPECT_GT(r.min_rho, 0.0);
  EXPECT_GT(r.min_p, 0.0);
}

TEST(App, WiringMatchesPaperFigure2) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    auto fw = components::assemble_app(world, tiny_config(1, "EFMFlux"));
    const cca::WiringDiagram w = fw->wiring();
    EXPECT_EQ(w.nodes.size(), 6u);
    EXPECT_EQ(w.connections.size(), 6u);
    bool invflux_to_flux = false;
    for (const auto& c : w.connections)
      invflux_to_flux |= (c.user_instance == "invflux" && c.provider_instance == "flux");
    EXPECT_TRUE(invflux_to_flux);
  });
}

TEST(App, StableDtShrinksWithRefinement) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    auto cfg = tiny_config(1, "EFMFlux");
    auto fw = components::assemble_app(world, cfg);
    auto* mesh = fw->services("driver").get_port_as<components::MeshPort>("mesh");
    auto* integ =
        fw->services("driver").get_port_as<components::IntegratorPort>("integrator");
    mesh->initialize();
    const double dt = integ->stable_dt(0.4);
    EXPECT_GT(dt, 0.0);
    // CFL bound: dt <= cfl * dx0 / c0 with c0 >= 1 (post-shock speeds > 1).
    EXPECT_LT(dt, 0.4 * (2.0 / 48.0) / 1.0);
  });
}

}  // namespace
