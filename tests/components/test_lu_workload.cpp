// components::LuFactorComponent — the HPL-style dense-LU session
// workload: residual correctness against the regenerated matrix,
// bitwise determinism, pivoting, and the lu_proxy monitoring records
// the TelemetryHub's LU sessions produce.

#include "components/lu_workload.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/mastermind.hpp"
#include "core/proxies.hpp"
#include "core/tau_component.hpp"

namespace {

components::LuResult factor(int n, int block, std::uint64_t seed) {
  components::LuFactorComponent lu;
  return lu.factor(n, block, seed);
}

TEST(LuWorkload, ResidualAgainstRegeneratedMatrix) {
  for (const int n : {8, 32, 96}) {
    const components::LuResult r = factor(n, 16, 42);
    // Partial pivoting keeps the growth factor small on random matrices,
    // so the factorization residual sits within a few orders of eps.
    EXPECT_LT(r.residual_max, 1e-9) << "n=" << n;
    EXPECT_EQ(r.flops, static_cast<std::uint64_t>(2.0 * n * n * n / 3.0));
  }
}

TEST(LuWorkload, DeterministicDigestPerSeed) {
  const components::LuResult a = factor(64, 16, 7);
  const components::LuResult b = factor(64, 16, 7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.row_swaps, b.row_swaps);
  const components::LuResult c = factor(64, 16, 8);
  EXPECT_NE(a.digest, c.digest);
}

TEST(LuWorkload, PartialPivotingActuallyPivots) {
  // Fully random matrix: the max-magnitude entry of column k is almost
  // never already at row k, so a 96x96 factorization should swap on the
  // order of n times. Near-zero swaps would mean pivoting is dead code
  // (which is exactly what a diagonally-boosted generator produces).
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    EXPECT_GT(factor(96, 24, seed).row_swaps, 48u) << "seed=" << seed;
}

TEST(LuWorkload, BlockWidthPreservesCorrectness) {
  for (const int block : {1, 5, 16, 64, 128}) {
    const components::LuResult r = factor(64, block, 3);
    EXPECT_LT(r.residual_max, 1e-9) << "block=" << block;
  }
}

TEST(LuWorkload, MatrixEntryIsPureAndBounded) {
  EXPECT_EQ(components::lu_matrix_entry(5, 32, 3, 9),
            components::lu_matrix_entry(5, 32, 3, 9));
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; ++j) {
      const double v = components::lu_matrix_entry(5, 32, i, j);
      EXPECT_GE(v, -1.0);
      EXPECT_LT(v, 1.0);
    }
}

TEST(LuWorkload, ProxyReportsMonitoredRecords) {
  // The KernelRig shape: Mastermind + TAU with lu_proxy interposed.
  cca::ComponentRepository repo;
  repo.register_class("TauMeasurement", [] {
    return std::make_unique<core::TauMeasurementComponent>();
  });
  repo.register_class("Mastermind",
                      [] { return std::make_unique<core::MastermindComponent>(); });
  repo.register_class("LuFactor", [] {
    return std::make_unique<components::LuFactorComponent>();
  });
  repo.register_class("LuProxy", [] { return std::make_unique<core::LuProxy>(); });
  cca::Framework fw(std::move(repo));
  fw.instantiate("tau", "TauMeasurement");
  fw.instantiate("mm", "Mastermind");
  fw.instantiate("lu", "LuFactor");
  fw.instantiate("lu_proxy", "LuProxy");
  fw.connect("mm", "measurement", "tau", "measurement");
  fw.connect("lu_proxy", "monitor", "mm", "monitor");
  fw.connect("lu_proxy", "lu_real", "lu", "lu");

  auto* lu = fw.services("lu_proxy").provided_as<components::LuPort>("lu");
  const components::LuResult direct = factor(48, 12, 9);
  const components::LuResult proxied = lu->factor(48, 12, 9);
  EXPECT_EQ(direct.digest, proxied.digest);  // proxy is transparent

  auto* mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
  ASSERT_NE(mm, nullptr);
  const core::Record* rec = mm->record("lu_proxy::factor()");
  ASSERT_NE(rec, nullptr);
  const auto rows = rec->invocations();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].params.at("N"), 48.0);
  EXPECT_EQ(rows[0].params.at("block"), 12.0);
  EXPECT_GT(rows[0].wall_us, 0.0);
}

}  // namespace
