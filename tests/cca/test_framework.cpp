// CCA framework semantics: provides/uses registration, connection with
// type checking, port movement (caller sees the provider's interface),
// reconnect for dynamic replacement, repository factories, wiring
// introspection, and lifecycle ordering.

#include <gtest/gtest.h>

#include <vector>

#include "cca/framework.hpp"
#include "support/error.hpp"

namespace {

// A tiny test vocabulary: Adder provides ArithPort; Doubler provides the
// same port type with different behaviour; Caller uses one.
class ArithPort : public cca::Port {
 public:
  virtual int apply(int x) = 0;
};

class AdderComponent final : public cca::Component, public ArithPort {
 public:
  explicit AdderComponent(int delta = 1) : delta_(delta) {}
  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<ArithPort*>(this)), "arith",
                          "test.ArithPort");
  }
  int apply(int x) override { return x + delta_; }

 private:
  int delta_;
};

class DoublerComponent final : public cca::Component, public ArithPort {
 public:
  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<ArithPort*>(this)), "arith",
                          "test.ArithPort");
  }
  int apply(int x) override { return 2 * x; }
};

class CallerComponent final : public cca::Component {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.register_uses_port("op", "test.ArithPort");
  }
  int call(int x) { return svc_->get_port_as<ArithPort>("op")->apply(x); }
  cca::Services* svc_ = nullptr;
};

class WrongPort : public cca::Port {};
class WrongProvider final : public cca::Component, public WrongPort {
 public:
  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<WrongPort*>(this)), "arith",
                          "test.WrongPort");
  }
};

cca::ComponentRepository make_repo() {
  cca::ComponentRepository repo;
  repo.register_class("Adder", [] { return std::make_unique<AdderComponent>(1); });
  repo.register_class("Adder5", [] { return std::make_unique<AdderComponent>(5); });
  repo.register_class("Doubler", [] { return std::make_unique<DoublerComponent>(); });
  repo.register_class("Caller", [] { return std::make_unique<CallerComponent>(); });
  repo.register_class("Wrong", [] { return std::make_unique<WrongProvider>(); });
  return repo;
}

TEST(Repository, CreateAndEnumerate) {
  auto repo = make_repo();
  EXPECT_TRUE(repo.has("Adder"));
  EXPECT_FALSE(repo.has("Nope"));
  EXPECT_THROW(repo.create("Nope"), ccaperf::Error);
  EXPECT_EQ(repo.class_names().size(), 5u);
}

TEST(Repository, DuplicateClassRejected) {
  auto repo = make_repo();
  EXPECT_THROW(
      repo.register_class("Adder", [] { return std::make_unique<AdderComponent>(); }),
      ccaperf::Error);
}

TEST(Framework, ConnectAndInvokeThroughPort) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  fw.connect("caller", "op", "adder", "arith");
  auto& caller = dynamic_cast<CallerComponent&>(fw.component("caller"));
  EXPECT_EQ(caller.call(41), 42);
}

TEST(Framework, MultipleImplementationsSamePortType) {
  cca::Framework fw(make_repo());
  fw.instantiate("c1", "Caller");
  fw.instantiate("c2", "Caller");
  fw.instantiate("adder", "Adder");
  fw.instantiate("doubler", "Doubler");
  fw.connect("c1", "op", "adder", "arith");
  fw.connect("c2", "op", "doubler", "arith");
  EXPECT_EQ(dynamic_cast<CallerComponent&>(fw.component("c1")).call(10), 11);
  EXPECT_EQ(dynamic_cast<CallerComponent&>(fw.component("c2")).call(10), 20);
}

TEST(Framework, TypeMismatchRejected) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("wrong", "Wrong");
  EXPECT_THROW(fw.connect("caller", "op", "wrong", "arith"), ccaperf::Error);
}

TEST(Framework, UnknownPortsAndInstancesRejected) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  EXPECT_THROW(fw.connect("caller", "nope", "adder", "arith"), ccaperf::Error);
  EXPECT_THROW(fw.connect("caller", "op", "adder", "nope"), ccaperf::Error);
  EXPECT_THROW(fw.connect("ghost", "op", "adder", "arith"), ccaperf::Error);
  EXPECT_THROW(fw.instantiate("x", "NoSuchClass"), ccaperf::Error);
}

TEST(Framework, DoubleConnectRejected) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  fw.instantiate("doubler", "Doubler");
  fw.connect("caller", "op", "adder", "arith");
  EXPECT_THROW(fw.connect("caller", "op", "doubler", "arith"), ccaperf::Error);
}

TEST(Framework, DuplicateInstanceRejected) {
  cca::Framework fw(make_repo());
  fw.instantiate("a", "Adder");
  EXPECT_THROW(fw.instantiate("a", "Adder"), ccaperf::Error);
}

TEST(Framework, UnconnectedUsesPortThrowsOnGet) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  auto& caller = dynamic_cast<CallerComponent&>(fw.component("caller"));
  EXPECT_FALSE(fw.services("caller").is_connected("op"));
  EXPECT_THROW(caller.call(1), ccaperf::Error);
}

TEST(Framework, DisconnectThenReconnect) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  fw.instantiate("doubler", "Doubler");
  fw.connect("caller", "op", "adder", "arith");
  fw.disconnect("caller", "op");
  EXPECT_FALSE(fw.services("caller").is_connected("op"));
  fw.connect("caller", "op", "doubler", "arith");
  EXPECT_EQ(dynamic_cast<CallerComponent&>(fw.component("caller")).call(3), 6);
}

TEST(Framework, ReconnectSwapsImplementationDynamically) {
  // The Fig. 10 mechanism: "dynamic replacement of sub-optimal components".
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  fw.instantiate("adder5", "Adder5");
  fw.connect("caller", "op", "adder", "arith");
  auto& caller = dynamic_cast<CallerComponent&>(fw.component("caller"));
  EXPECT_EQ(caller.call(0), 1);
  fw.reconnect("caller", "op", "adder5", "arith");
  EXPECT_EQ(caller.call(0), 5);
}

TEST(Framework, WiringDiagramReflectsAssembly) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  fw.connect("caller", "op", "adder", "arith");
  const cca::WiringDiagram w = fw.wiring();
  ASSERT_EQ(w.nodes.size(), 2u);
  EXPECT_EQ(w.nodes[0].instance, "caller");
  EXPECT_EQ(w.nodes[0].class_name, "Caller");
  ASSERT_EQ(w.nodes[0].uses.size(), 1u);
  EXPECT_EQ(w.nodes[0].uses[0].type, "test.ArithPort");
  ASSERT_EQ(w.connections.size(), 1u);
  EXPECT_EQ(w.connections[0].provider_instance, "adder");

  const std::string dot = w.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"caller\" -> \"adder\""), std::string::npos);
}

TEST(Framework, DisconnectRemovesFromWiring) {
  cca::Framework fw(make_repo());
  fw.instantiate("caller", "Caller");
  fw.instantiate("adder", "Adder");
  fw.connect("caller", "op", "adder", "arith");
  fw.disconnect("caller", "op");
  EXPECT_TRUE(fw.wiring().connections.empty());
}

TEST(Framework, ProvidedPortDirectAccess) {
  cca::Framework fw(make_repo());
  fw.instantiate("adder", "Adder");
  auto* port = fw.services("adder").provided_as<ArithPort>("arith");
  EXPECT_EQ(port->apply(1), 2);
  EXPECT_THROW(fw.services("adder").provided("nope"), ccaperf::Error);
}

TEST(Services, DuplicatePortNamesRejected) {
  cca::Framework fw(make_repo());
  fw.instantiate("adder", "Adder");
  auto& svc = fw.services("adder");
  EXPECT_THROW(svc.add_provides_port(
                   cca::non_owning(static_cast<cca::Port*>(nullptr)), "arith", "t"),
               ccaperf::Error);  // null port also rejected
  svc.register_uses_port("u", "t");
  EXPECT_THROW(svc.register_uses_port("u", "t"), ccaperf::Error);
}

TEST(Framework, InstanceNamesInCreationOrder) {
  cca::Framework fw(make_repo());
  fw.instantiate("z", "Adder");
  fw.instantiate("a", "Adder5");
  const auto names = fw.instance_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "z");
  EXPECT_EQ(names[1], "a");
}

}  // namespace
