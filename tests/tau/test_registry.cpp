// Timer semantics: inclusive vs exclusive accounting, nesting, recursion,
// LIFO enforcement, group enable/disable, atomic events, counters and
// mid-run query snapshots.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "tau/registry.hpp"

namespace {

using tau::Registry;

void spin_us(double us) {
  const auto until = tau::Clock::now() + std::chrono::duration<double, std::micro>(us);
  while (tau::Clock::now() < until) {
  }
}

TEST(Registry, TimerCreationIsIdempotent) {
  Registry reg;
  const auto a = reg.timer("foo()");
  const auto b = reg.timer("foo()");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.num_timers(), 1u);
  EXPECT_TRUE(reg.has_timer("foo()"));
  EXPECT_FALSE(reg.has_timer("bar()"));
}

TEST(Registry, CallsAndInclusiveAccumulate) {
  Registry reg;
  const auto t = reg.timer("work()");
  for (int i = 0; i < 3; ++i) {
    reg.start(t);
    spin_us(200);
    reg.stop(t);
  }
  EXPECT_EQ(reg.calls(t), 3u);
  EXPECT_GE(reg.inclusive_us(t), 3 * 180.0);
  EXPECT_DOUBLE_EQ(reg.inclusive_us(t), reg.exclusive_us(t));
}

TEST(Registry, NestedTimersSplitInclusiveExclusive) {
  Registry reg;
  const auto outer = reg.timer("outer()");
  const auto inner = reg.timer("inner()");
  reg.start(outer);
  spin_us(300);
  reg.start(inner);
  spin_us(500);
  reg.stop(inner);
  spin_us(300);
  reg.stop(outer);

  // outer inclusive covers everything; outer exclusive excludes inner.
  EXPECT_GE(reg.inclusive_us(outer), reg.inclusive_us(inner));
  EXPECT_NEAR(reg.exclusive_us(outer),
              reg.inclusive_us(outer) - reg.inclusive_us(inner), 50.0);
  EXPECT_DOUBLE_EQ(reg.inclusive_us(inner), reg.exclusive_us(inner));
}

TEST(Registry, RecursionCountsInclusiveOnceAtOutermost) {
  Registry reg;
  const auto t = reg.timer("recursive()");
  const auto w0 = tau::Clock::now();
  reg.start(t);
  spin_us(200);
  reg.start(t);  // recursive activation
  spin_us(200);
  reg.stop(t);
  spin_us(200);
  reg.stop(t);
  const double outer_wall_us =
      std::chrono::duration<double, std::micro>(tau::Clock::now() - w0).count();
  EXPECT_EQ(reg.calls(t), 2u);
  // Inclusive must equal the outermost activation's wall time (the inner
  // 200us counted once, not again on top). Comparing against the measured
  // wall rather than a fixed band keeps this stable under scheduler noise:
  // a preemption inflates both sides together, while double counting would
  // put inclusive ~200us above the wall.
  EXPECT_GE(reg.inclusive_us(t), 550.0);
  EXPECT_NEAR(reg.inclusive_us(t), outer_wall_us, 100.0);
}

TEST(Registry, StopOutOfOrderThrows) {
  Registry reg;
  const auto a = reg.timer("a()");
  const auto b = reg.timer("b()");
  reg.start(a);
  reg.start(b);
  EXPECT_THROW(reg.stop(a), ccaperf::Error);
  reg.stop(b);
  reg.stop(a);
}

TEST(Registry, StopWithoutStartThrows) {
  Registry reg;
  const auto a = reg.timer("a()");
  EXPECT_THROW(reg.stop(a), ccaperf::Error);
}

TEST(Registry, DisabledGroupRecordsNothing) {
  Registry reg;
  reg.set_group_enabled("MPI", false);
  const auto t = reg.timer("MPI_Send()", "MPI");
  reg.start(t);
  spin_us(100);
  reg.stop(t);
  EXPECT_EQ(reg.calls(t), 0u);
  EXPECT_DOUBLE_EQ(reg.inclusive_us(t), 0.0);
}

TEST(Registry, DisabledChildTimeFoldsIntoParentExclusive) {
  Registry reg;
  reg.set_group_enabled("MPI", false);
  const auto outer = reg.timer("outer()");
  const auto mpi = reg.timer("MPI_Send()", "MPI");
  reg.start(outer);
  reg.start(mpi);
  spin_us(400);
  reg.stop(mpi);
  reg.stop(outer);
  // As if uninstrumented: the 400us stays in outer's exclusive time.
  EXPECT_GE(reg.exclusive_us(outer), 350.0);
}

TEST(Registry, DisabledParentPassesEnabledChildThrough) {
  Registry reg;
  reg.set_group_enabled("WRAP", false);
  const auto root = reg.timer("root()");
  const auto wrap = reg.timer("wrapper()", "WRAP");
  const auto leaf = reg.timer("leaf()");
  reg.start(root);
  reg.start(wrap);
  reg.start(leaf);
  spin_us(400);
  reg.stop(leaf);
  reg.stop(wrap);
  reg.stop(root);
  // leaf's time must subtract from root's exclusive through the disabled
  // wrapper.
  EXPECT_LT(reg.exclusive_us(root), 200.0);
  EXPECT_GE(reg.inclusive_us(root), 380.0);
}

TEST(Registry, ReEnablingGroupResumesRecording) {
  Registry reg;
  const auto t = reg.timer("MPI_Send()", "MPI");
  reg.set_group_enabled("MPI", false);
  reg.start(t);
  reg.stop(t);
  reg.set_group_enabled("MPI", true);
  reg.start(t);
  reg.stop(t);
  EXPECT_EQ(reg.calls(t), 1u);
}

TEST(Registry, GroupInclusiveSumsMembers) {
  Registry reg;
  const auto a = reg.timer("MPI_Send()", "MPI");
  const auto b = reg.timer("MPI_Recv()", "MPI");
  const auto c = reg.timer("compute()");
  for (auto t : {a, b, c}) {
    reg.start(t);
    spin_us(150);
    reg.stop(t);
  }
  const double mpi = reg.group_inclusive_us("MPI");
  EXPECT_NEAR(mpi, reg.inclusive_us(a) + reg.inclusive_us(b), 1.0);
  EXPECT_LT(mpi, reg.inclusive_us(a) + reg.inclusive_us(b) + reg.inclusive_us(c));
}

TEST(Registry, MidRunQueryIncludesRunningPartial) {
  Registry reg;
  const auto t = reg.timer("long()");
  reg.start(t);
  spin_us(500);
  // Query while running: TAU's cumulative semantics require the elapsed
  // portion to be visible (the Mastermind differences two such queries).
  EXPECT_GE(reg.inclusive_us(t), 450.0);
  EXPECT_GE(reg.exclusive_us(t), 450.0);
  reg.stop(t);
}

TEST(Registry, MidRunGroupQueryIncludesRunningMpiCall) {
  Registry reg;
  const auto t = reg.timer("MPI_Waitsome()", "MPI");
  reg.start(t);
  spin_us(300);
  EXPECT_GE(reg.group_inclusive_us("MPI"), 250.0);
  reg.stop(t);
}

TEST(Registry, ScopedTimerBalances) {
  Registry reg;
  const auto t = reg.timer("scoped()");
  {
    tau::ScopedTimer s(reg, t);
    spin_us(100);
  }
  EXPECT_EQ(reg.calls(t), 1u);
  EXPECT_EQ(reg.stack_depth(), 0u);
}

TEST(Registry, AtomicEventStatistics) {
  Registry reg;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    reg.trigger("Message size", v);
  const auto& e = reg.events().at("Message size");
  EXPECT_EQ(e.count(), 8u);
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
  EXPECT_DOUBLE_EQ(e.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(e.min(), 2.0);
  EXPECT_DOUBLE_EQ(e.max(), 9.0);
}

TEST(Registry, CountersAppearInRegistry) {
  Registry reg;
  std::uint64_t misses = 0;
  reg.counters().add_source(hwc::kL2Dcm, [&misses] { return misses; });
  misses = 17;
  EXPECT_EQ(reg.counters().read(hwc::kL2Dcm), 17u);
}

TEST(Registry, SnapshotContainsAllTimers) {
  Registry reg;
  const auto a = reg.timer("a()");
  reg.start(a);
  reg.stop(a);
  reg.timer("b()", "G2");
  const auto rows = reg.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a()");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[1].group, "G2");
}

}  // namespace
