// TAU's tracing measurement option: timestamped enter/exit events with
// proper nesting, group-disable filtering, and text dump.

#include <gtest/gtest.h>

#include <sstream>

#include "tau/registry.hpp"

namespace {

using tau::Registry;

TEST(Tracing, DisabledByDefault) {
  Registry reg;
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  EXPECT_FALSE(reg.tracing());
  EXPECT_TRUE(reg.trace().empty());
}

TEST(Tracing, RecordsEnterExitPairs) {
  Registry reg;
  reg.set_tracing(true);
  const auto a = reg.timer("a()");
  const auto b = reg.timer("b()");
  reg.start(a);
  reg.start(b);
  reg.stop(b);
  reg.stop(a);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_TRUE(tr[0].enter);
  EXPECT_EQ(tr[0].id, a);
  EXPECT_TRUE(tr[1].enter);
  EXPECT_EQ(tr[1].id, b);
  EXPECT_FALSE(tr[2].enter);
  EXPECT_EQ(tr[2].id, b);
  EXPECT_FALSE(tr[3].enter);
  EXPECT_EQ(tr[3].id, a);
}

TEST(Tracing, TimestampsMonotone) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  for (int k = 0; k < 10; ++k) {
    reg.start(t);
    reg.stop(t);
  }
  double prev = -1.0;
  for (const auto& e : reg.trace()) {
    EXPECT_GE(e.t_us, prev);
    prev = e.t_us;
  }
}

TEST(Tracing, DisabledGroupsProduceNoEvents) {
  Registry reg;
  reg.set_tracing(true);
  reg.set_group_enabled("MPI", false);
  const auto t = reg.timer("MPI_Send()", "MPI");
  reg.start(t);
  reg.stop(t);
  EXPECT_TRUE(reg.trace().empty());
}

TEST(Tracing, ReenableResetsTrace) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  EXPECT_EQ(reg.trace().size(), 2u);
  reg.set_tracing(true);
  EXPECT_TRUE(reg.trace().empty());
}

TEST(Tracing, DumpFormat) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("work()");
  reg.start(t);
  reg.stop(t);
  std::ostringstream os;
  reg.dump_trace(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("enter work()"), std::string::npos);
  EXPECT_NE(s.find("exit work()"), std::string::npos);
}

TEST(Tracing, ProfilingStillAccumulatesWhileTracing) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  EXPECT_EQ(reg.calls(t), 1u);
}

}  // namespace
