// TAU's tracing measurement option: bounded ring-buffer flight recorder
// with timestamped enter/exit events, drop accounting, synthetic balance
// events, group-disable filtering, message/counter/instant records, and
// the TSV text dump.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "tau/registry.hpp"
#include "tau/trace_buffer.hpp"

namespace {

using tau::Registry;
using tau::TraceKind;
using tau::TraceRecord;

TEST(Tracing, DisabledByDefault) {
  Registry reg;
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  EXPECT_FALSE(reg.tracing());
  EXPECT_TRUE(reg.trace().empty());
}

TEST(Tracing, RecordsEnterExitPairs) {
  Registry reg;
  reg.set_tracing(true);
  const auto a = reg.timer("a()");
  const auto b = reg.timer("b()");
  reg.start(a);
  reg.start(b);
  reg.stop(b);
  reg.stop(a);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_TRUE(tr[0].is_enter());
  EXPECT_EQ(tr[0].id, a);
  EXPECT_TRUE(tr[1].is_enter());
  EXPECT_EQ(tr[1].id, b);
  EXPECT_TRUE(tr[2].is_exit());
  EXPECT_EQ(tr[2].id, b);
  EXPECT_TRUE(tr[3].is_exit());
  EXPECT_EQ(tr[3].id, a);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracing, TimestampsMonotone) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  for (int k = 0; k < 10; ++k) {
    reg.start(t);
    reg.stop(t);
  }
  double prev = -1.0;
  const auto& tr = reg.trace();
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_GE(tr[i].t_us, prev);
    prev = tr[i].t_us;
  }
}

TEST(Tracing, DisabledGroupsProduceNoEvents) {
  Registry reg;
  reg.set_tracing(true);
  reg.set_group_enabled("MPI", false);
  const auto t = reg.timer("MPI_Send()", "MPI");
  reg.start(t);
  reg.stop(t);
  EXPECT_TRUE(reg.trace().empty());
}

TEST(Tracing, DisabledGroupNestedInsideEnabledStaysBalanced) {
  // enabled work() wrapping a disabled MPI timer: the trace must contain
  // only the work() pair, and snapshot_trace() must be balanced.
  Registry reg;
  reg.set_tracing(true);
  reg.set_group_enabled("MPI", false);
  const auto w = reg.timer("work()");
  const auto m = reg.timer("MPI_Send()", "MPI");
  reg.start(w);
  reg.start(m);
  reg.stop(m);
  reg.stop(w);
  const auto tr = reg.snapshot_trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_TRUE(tr[0].is_enter());
  EXPECT_EQ(tr[0].id, w);
  EXPECT_TRUE(tr[1].is_exit());
  EXPECT_EQ(tr[1].id, w);
}

TEST(Tracing, ReenableResetsTrace) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  EXPECT_EQ(reg.trace().size(), 2u);
  reg.set_tracing(true);
  EXPECT_TRUE(reg.trace().empty());
}

TEST(Tracing, EnableMidRunEmitsSyntheticEnters) {
  // Timers already running when tracing starts get synthetic enter events
  // at the epoch (t=0), outermost first, so the trace is balanced.
  Registry reg;
  const auto a = reg.timer("outer()");
  const auto b = reg.timer("inner()");
  reg.start(a);
  reg.start(b);
  reg.set_tracing(true);
  reg.stop(b);
  reg.stop(a);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_TRUE(tr[0].is_enter());
  EXPECT_EQ(tr[0].id, a);
  EXPECT_TRUE(tr[0].synthetic());
  EXPECT_EQ(tr[0].t_us, 0.0);
  EXPECT_TRUE(tr[1].is_enter());
  EXPECT_EQ(tr[1].id, b);
  EXPECT_TRUE(tr[1].synthetic());
  EXPECT_TRUE(tr[2].is_exit());
  EXPECT_EQ(tr[2].id, b);
  EXPECT_FALSE(tr[2].synthetic());
  EXPECT_TRUE(tr[3].is_exit());
  EXPECT_EQ(tr[3].id, a);
}

TEST(Tracing, DisableMidActivationEmitsSyntheticExits) {
  // Tracing stopped while timers run: synthetic exits close the open
  // activations (innermost first) and the events survive for export.
  Registry reg;
  reg.set_tracing(true);
  const auto a = reg.timer("outer()");
  const auto b = reg.timer("inner()");
  reg.start(a);
  reg.start(b);
  reg.set_tracing(false);
  reg.stop(b);
  reg.stop(a);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_TRUE(tr[2].is_exit());
  EXPECT_EQ(tr[2].id, b);
  EXPECT_TRUE(tr[2].synthetic());
  EXPECT_TRUE(tr[3].is_exit());
  EXPECT_EQ(tr[3].id, a);
  EXPECT_TRUE(tr[3].synthetic());
}

TEST(Tracing, SnapshotClosesOpenActivations) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  reg.start(t);
  const auto snap = reg.snapshot_trace();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap[1].is_exit());
  EXPECT_TRUE(snap[1].synthetic());
  EXPECT_EQ(reg.trace().size(), 1u);  // the live buffer is untouched
  reg.stop(t);
}

TEST(Tracing, RingOverwritesOldestAndCountsDrops) {
  Registry reg;
  reg.set_trace_capacity(8);
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  for (int k = 0; k < 10; ++k) {  // 20 events into an 8-slot ring
    reg.start(t);
    reg.stop(t);
  }
  const auto& tr = reg.trace();
  EXPECT_EQ(tr.size(), 8u);
  EXPECT_EQ(tr.total(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);
  // Oldest-first iteration stays time-ordered across the wrap point.
  double prev = -1.0;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_GE(tr[i].t_us, prev);
    prev = tr[i].t_us;
  }
}

TEST(Tracing, RingMemoryStaysAtConfiguredBound) {
  tau::TraceBuffer buf(16);
  TraceRecord r;
  for (int k = 0; k < 1000; ++k) {
    r.t_us = k;
    buf.push(r);
  }
  EXPECT_EQ(buf.size(), 16u);
  EXPECT_EQ(buf.memory_bytes(), 16u * sizeof(TraceRecord));
  EXPECT_EQ(buf.dropped(), 1000u - 16u);
  EXPECT_EQ(buf[0].t_us, 984.0);   // oldest retained
  EXPECT_EQ(buf[15].t_us, 999.0);  // newest
}

TEST(Tracing, CapacityZeroIsUnbounded) {
  Registry reg;
  reg.set_trace_capacity(0);
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  for (int k = 0; k < 200000; ++k) {  // well past the default ring bound
    reg.start(t);
    reg.stop(t);
  }
  EXPECT_EQ(reg.trace().size(), 400000u);
  EXPECT_EQ(reg.trace().dropped(), 0u);
}

TEST(Tracing, MessageEventsCarryIdentity) {
  Registry reg;
  reg.set_tracing(true);
  reg.trace_message(/*send=*/true, /*peer=*/2, /*tag=*/7, /*bytes=*/1024,
                    /*seq=*/3);
  reg.trace_message(/*send=*/false, /*peer=*/0, /*tag=*/7, /*bytes=*/512,
                    /*seq=*/1);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr[0].kind, TraceKind::msg_send);
  EXPECT_EQ(tr[0].peer, 2);
  EXPECT_EQ(tr[0].tag, 7);
  EXPECT_EQ(tr[0].payload, 1024u);
  EXPECT_EQ(tr[0].seq, 3u);
  EXPECT_EQ(tr[1].kind, TraceKind::msg_recv);
  EXPECT_EQ(tr[1].peer, 0);
  EXPECT_EQ(tr[1].seq, 1u);
}

TEST(Tracing, SliceArgAttachesToLastEnter) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("compute()");
  const auto q = reg.trace_string("Q");
  reg.start(t);
  reg.trace_arg(q, 42.5);
  reg.stop(t);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_TRUE(tr[0].has_arg());
  EXPECT_EQ(static_cast<std::uint32_t>(tr[0].tag), q);
  EXPECT_EQ(tr[0].value(), 42.5);
  EXPECT_FALSE(tr[1].has_arg());
}

TEST(Tracing, TraceStringInternsStably) {
  Registry reg;
  const auto a = reg.trace_string("Q");
  const auto b = reg.trace_string("cells");
  EXPECT_EQ(reg.trace_string("Q"), a);
  EXPECT_NE(a, b);
  ASSERT_EQ(reg.trace_strings().size(), 2u);
  EXPECT_EQ(reg.trace_strings()[a], "Q");
}

TEST(Tracing, DumpFormatIsTabSeparated) {
  // Timer names contain spaces and parentheses; TSV keeps fields
  // unambiguous where the old space-separated dump could not.
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("solve step A()");
  reg.start(t);
  reg.stop(t);
  reg.trace_message(true, 1, 0, 64, 1);
  std::ostringstream os;
  reg.dump_trace(os);
  std::istringstream in(os.str());
  std::string line;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(in, line)) {
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
      const std::size_t tab = line.find('\t', pos);
      fields.push_back(line.substr(pos, tab - pos));
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    rows.push_back(std::move(fields));
  }
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], "enter");
  EXPECT_EQ(rows[0][2], "solve step A()");  // whole name is one TSV field
  EXPECT_EQ(rows[1][1], "exit");
  EXPECT_EQ(rows[1][2], "solve step A()");
  EXPECT_EQ(rows[2][1], "send");
}

TEST(Tracing, ProfilingStillAccumulatesWhileTracing) {
  Registry reg;
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  EXPECT_EQ(reg.calls(t), 1u);
}

}  // namespace
