// Per-thread registry shards (tau/shards.hpp): deterministic fold of
// worker-lane timers/events into the rank's primary registry, visibility
// through the generation/touch machinery, and epoch-aligned shard tracing.

#include "tau/shards.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace {

std::map<std::string, tau::TimerStats> by_name(
    const std::vector<tau::TimerStats>& rows) {
  std::map<std::string, tau::TimerStats> m;
  for (const tau::TimerStats& r : rows) m[r.name] = r;
  return m;
}

TEST(RegistryShards, MergeFoldsCallsAndTimesIntoPrimary) {
  tau::Registry primary;
  tau::RegistryShards shards(primary, 3);
  ASSERT_EQ(shards.lanes(), 3);
  ASSERT_EQ(&shards.shard(0), &primary);

  const tau::TimerId p = primary.timer("work", "PROXY");
  primary.start(p);
  primary.stop(p);

  for (int lane = 1; lane < 3; ++lane) {
    tau::Registry& s = shards.shard(lane);
    const tau::TimerId id = s.timer("work", "PROXY");
    for (int k = 0; k < lane; ++k) {  // lane 1: 1 call, lane 2: 2 calls
      s.start(id);
      s.stop(id);
    }
  }
  shards.merge_into_primary();

  EXPECT_EQ(primary.calls(p), 1u + 1u + 2u);
  EXPECT_GT(primary.inclusive_us(p), 0.0);
  // Group accumulator advanced by the absorbed inclusive time.
  EXPECT_DOUBLE_EQ(primary.group_inclusive_us("PROXY"),
                   primary.inclusive_us(p));
  // Shards were drained: a second merge adds nothing.
  const std::uint64_t calls_after_first = primary.calls(p);
  shards.merge_into_primary();
  EXPECT_EQ(primary.calls(p), calls_after_first);
}

TEST(RegistryShards, MergeCreatesTimersFirstSeenOnAShard) {
  tau::Registry primary;
  tau::RegistryShards shards(primary, 2);
  tau::Registry& s = shards.shard(1);
  const tau::TimerId id = s.timer("only_on_shard", "PROXY");
  s.start(id);
  s.stop(id);
  ASSERT_FALSE(primary.has_timer("only_on_shard"));
  shards.merge_into_primary();
  ASSERT_TRUE(primary.has_timer("only_on_shard"));
  EXPECT_EQ(primary.calls(primary.timer("only_on_shard")), 1u);
}

TEST(RegistryShards, MergeIsVisibleToSnapshotDelta) {
  tau::Registry primary;
  tau::RegistryShards shards(primary, 2);
  const tau::Generation before = primary.generation();
  (void)primary.snapshot_delta(before);  // settle the generation

  tau::Registry& s = shards.shard(1);
  const tau::TimerId id = s.timer("patch_work", "PROXY");
  s.start(id);
  s.stop(id);
  shards.merge_into_primary();

  const auto rows = by_name(primary.snapshot_delta(before));
  ASSERT_EQ(rows.count("patch_work"), 1u);
  EXPECT_EQ(rows.at("patch_work").calls, 1u);
}

TEST(RegistryShards, EventsMergeWithRunningStatsSemantics) {
  tau::Registry primary;
  tau::RegistryShards shards(primary, 3);
  primary.trigger("bytes", 10.0);
  shards.shard(1).trigger("bytes", 20.0);
  shards.shard(2).trigger("bytes", 30.0);
  shards.shard(2).trigger("iters", 7.0);
  shards.merge_into_primary();

  const auto& ev = primary.events();
  ASSERT_EQ(ev.count("bytes"), 1u);
  EXPECT_EQ(ev.at("bytes").count(), 3u);
  EXPECT_DOUBLE_EQ(ev.at("bytes").mean(), 20.0);
  EXPECT_DOUBLE_EQ(ev.at("bytes").min(), 10.0);
  EXPECT_DOUBLE_EQ(ev.at("bytes").max(), 30.0);
  ASSERT_EQ(ev.count("iters"), 1u);
  // Shard events were drained too.
  EXPECT_TRUE(shards.shard(2).events().empty());
}

TEST(RegistryShards, DrainRequiresIdleAndKeepsInternedNames) {
  tau::Registry reg;
  const tau::TimerId id = reg.timer("t");
  reg.start(id);
  EXPECT_THROW((void)reg.drain(), std::runtime_error);
  reg.stop(id);
  const auto rows = reg.drain();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 1u);
  // Stats are zeroed but the timer (and its id) survives.
  EXPECT_EQ(reg.calls(id), 0u);
  EXPECT_EQ(reg.timer("t"), id);
  EXPECT_TRUE(reg.drain().empty());
}

TEST(RegistryShards, MirrorTracingSharesEpochAndCapacity) {
  tau::Registry primary;
  tau::RegistryShards shards(primary, 2);
  primary.set_trace_capacity(128);
  primary.set_tracing(true);
  shards.mirror_tracing();

  tau::Registry& s = shards.shard(1);
  ASSERT_TRUE(s.tracing());
  EXPECT_EQ(s.trace().capacity(), 128u);
  EXPECT_EQ(s.trace_epoch(), primary.trace_epoch());

  const tau::TimerId id = s.timer("traced");
  s.start(id);
  s.stop(id);
  EXPECT_EQ(s.snapshot_trace().size(), 2u);

  primary.set_tracing(false);
  shards.mirror_tracing();
  EXPECT_FALSE(s.tracing());
}

}  // namespace
