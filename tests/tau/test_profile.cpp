// FUNCTION SUMMARY emission: row construction, mean-over-ranks, sorting,
// percentage/usec-per-call math, and the Fig. 3 formatting helpers.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "tau/profile.hpp"

namespace {

using tau::ProfileRow;

TEST(ProfileFormat, MsecWithCommas) {
  EXPECT_EQ(tau::fmt_msec(27'262'000.0), "27,262");
  EXPECT_EQ(tau::fmt_msec(1'000.0), "1");
  EXPECT_EQ(tau::fmt_msec(0.0), "0");
}

TEST(ProfileFormat, TotalSwitchesToMinutesAboveOneMinute) {
  // The paper's root row shows 1:52.032 for ~112 seconds.
  EXPECT_EQ(tau::fmt_total_msec(112'032'000.0), "1:52.032");
  EXPECT_EQ(tau::fmt_total_msec(27'262'000.0), "27,262");
  EXPECT_EQ(tau::fmt_total_msec(61'000'000.0), "1:01.000");
}

TEST(ProfileRows, SortedByInclusiveDescending) {
  tau::Registry reg;
  const auto big = reg.timer("big()");
  const auto small = reg.timer("small()");
  reg.start(big);
  reg.start(small);
  reg.stop(small);
  reg.stop(big);
  const auto rows = tau::profile_rows(reg);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "big()");
  EXPECT_GE(rows[0].inclusive_us, rows[1].inclusive_us);
}

TEST(MeanRows, AveragesOverRanksByName) {
  std::vector<std::vector<ProfileRow>> per_rank(2);
  per_rank[0].push_back(ProfileRow{"f()", 100.0, 200.0, 4});
  per_rank[1].push_back(ProfileRow{"f()", 300.0, 400.0, 6});
  per_rank[1].push_back(ProfileRow{"g()", 10.0, 10.0, 1});
  const auto mean = tau::mean_rows(per_rank);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_EQ(mean[0].name, "f()");
  EXPECT_DOUBLE_EQ(mean[0].exclusive_us, 200.0);
  EXPECT_DOUBLE_EQ(mean[0].inclusive_us, 300.0);
  EXPECT_DOUBLE_EQ(mean[0].calls, 5.0);
  // g() missing on rank 0 contributes zero there (divided by 2 ranks).
  EXPECT_DOUBLE_EQ(mean[1].inclusive_us, 5.0);
  EXPECT_DOUBLE_EQ(mean[1].calls, 0.5);
}

TEST(FunctionSummary, RendersPaperLayout) {
  std::vector<ProfileRow> rows{
      ProfileRow{"int main(int, char **)", 55'244'000.0, 112'032'939.0, 1},
      ProfileRow{"MPI_Waitsome()", 27'262'000.0, 27'262'000.0, 12.75},
  };
  std::ostringstream os;
  tau::write_function_summary(os, rows, "mean");
  const std::string s = os.str();
  EXPECT_NE(s.find("FUNCTION SUMMARY (mean):"), std::string::npos);
  EXPECT_NE(s.find("%Time"), std::string::npos);
  EXPECT_NE(s.find("usec/call"), std::string::npos);
  EXPECT_NE(s.find("100.0"), std::string::npos);       // root %time
  EXPECT_NE(s.find("1:52.033"), std::string::npos);    // minutes format (rounded)
  EXPECT_NE(s.find("MPI_Waitsome()"), std::string::npos);
  EXPECT_NE(s.find("12.75"), std::string::npos);       // fractional mean calls
  // MPI_Waitsome %time = 27262/112033 = 24.3 — the paper's headline number.
  EXPECT_NE(s.find("24.3"), std::string::npos);
}

TEST(FunctionSummary, EmptyRowsStillRendersHeader) {
  std::ostringstream os;
  tau::write_function_summary(os, {}, "rank 0");
  EXPECT_NE(os.str().find("FUNCTION SUMMARY (rank 0):"), std::string::npos);
}

TEST(ProfileFile, DumpsPerRankSummaryFile) {
  tau::Registry reg;
  const auto t = reg.timer("work()");
  reg.start(t);
  reg.stop(t);
  const std::string dir = "tau_profile_test_dump";
  const std::string path = tau::write_profile_file(dir, 2, reg);
  EXPECT_NE(path.find("profile.rank2.txt"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("FUNCTION SUMMARY (rank 2):"), std::string::npos);
  EXPECT_NE(content.str().find("work()"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FunctionSummary, PerCallColumn) {
  std::vector<ProfileRow> rows{ProfileRow{"f()", 1000.0, 2000.0, 4}};
  std::ostringstream os;
  tau::write_function_summary(os, rows, "x");
  EXPECT_NE(os.str().find("500"), std::string::npos);  // 2000us / 4 calls
}

}  // namespace
