// MpiHookAdapter: mpp calls must appear as "MPI_*()" timers in the MPI
// group of the calling rank's registry, with message-size events, and the
// group sum must track communication time (the Mastermind's MPI-time
// source).

#include <gtest/gtest.h>

#include <vector>

#include "mpp/runtime.hpp"
#include "tau/mpi_adapter.hpp"

namespace {

TEST(MpiAdapter, TimesPointToPointCalls) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    std::vector<double> buf(64);
    if (world.rank() == 0) {
      world.send<double>(buf, 1, 0);
    } else {
      world.recv<double>(buf, 0, 0);
    }
    world.barrier();

    if (world.rank() == 0) {
      EXPECT_TRUE(reg.has_timer("MPI_Send()"));
      EXPECT_EQ(reg.calls(reg.timer("MPI_Send()")), 1u);
    } else {
      EXPECT_TRUE(reg.has_timer("MPI_Recv()"));
    }
    EXPECT_TRUE(reg.has_timer("MPI_Barrier()"));
    EXPECT_EQ(reg.stats_at(reg.timer("MPI_Barrier()", tau::kMpiGroup)).group,
              tau::kMpiGroup);
  });
}

TEST(MpiAdapter, RecordsMessageSizeEvents) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    std::vector<double> buf(100);
    if (world.rank() == 0)
      world.send<double>(buf, 1, 0);
    else
      world.recv<double>(buf, 0, 0);

    const auto& events = reg.events();
    auto it = events.find("Message size (bytes)");
    ASSERT_NE(it, events.end());
    EXPECT_DOUBLE_EQ(it->second.max(), 800.0);
  });
}

TEST(MpiAdapter, GroupSumTracksCommunicationTime) {
  // With a modeled 2ms latency, the MPI group inclusive sum on the
  // receiving rank must reflect the wait.
  mpp::NetworkModel net;
  net.latency_us = 2000.0;
  mpp::Runtime::run(2, net, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    int v = 7;
    if (world.rank() == 0) {
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      world.recv_bytes(&v, sizeof v, 0, 0);
      EXPECT_GE(reg.group_inclusive_us(tau::kMpiGroup), 1800.0);
    }
  });
}

TEST(MpiAdapter, WaitsomeAppearsUnderItsOwnName) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    int v = 0;
    std::vector<mpp::Request> reqs;
    if (world.rank() == 0) {
      reqs.push_back(world.irecv_bytes(&v, sizeof v, 1, 0));
      std::vector<int> done;
      while (mpp::wait_some(reqs, done) == 0) {
      }
      EXPECT_TRUE(reg.has_timer("MPI_Waitsome()"));
      EXPECT_TRUE(reg.has_timer("MPI_Irecv()"));
    } else {
      world.send_bytes(&v, sizeof v, 0, 0);
    }
    world.barrier();
  });
}

TEST(MpiAdapter, HooksUninstallCleanly) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    tau::Registry reg;
    {
      tau::MpiHookAdapter adapter(reg);
      mpp::HooksInstaller install(&adapter);
      world.barrier();
    }
    world.barrier();  // no hooks: must not touch the registry
    EXPECT_EQ(reg.calls(reg.timer("MPI_Barrier()", tau::kMpiGroup)), 1u);
  });
}

TEST(MpiAdapter, DisablingMpiGroupSuppressesRecording) {
  // "At runtime, a user can enable or disable all MPI timers via their
  // group identifier."
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);
    reg.set_group_enabled(tau::kMpiGroup, false);
    world.barrier();
    reg.set_group_enabled(tau::kMpiGroup, true);
    world.barrier();
    EXPECT_EQ(reg.calls(reg.timer("MPI_Barrier()", tau::kMpiGroup)), 1u);
  });
}

}  // namespace
