// MpiHookAdapter: mpp calls must appear as "MPI_*()" timers in the MPI
// group of the calling rank's registry, with message-size events, and the
// group sum must track communication time (the Mastermind's MPI-time
// source).

#include <gtest/gtest.h>

#include <vector>

#include "mpp/runtime.hpp"
#include "tau/mpi_adapter.hpp"

namespace {

TEST(MpiAdapter, TimesPointToPointCalls) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    std::vector<double> buf(64);
    if (world.rank() == 0) {
      world.send<double>(buf, 1, 0);
    } else {
      world.recv<double>(buf, 0, 0);
    }
    world.barrier();

    if (world.rank() == 0) {
      EXPECT_TRUE(reg.has_timer("MPI_Send()"));
      EXPECT_EQ(reg.calls(reg.timer("MPI_Send()")), 1u);
    } else {
      EXPECT_TRUE(reg.has_timer("MPI_Recv()"));
    }
    EXPECT_TRUE(reg.has_timer("MPI_Barrier()"));
    EXPECT_EQ(reg.stats_at(reg.timer("MPI_Barrier()", tau::kMpiGroup)).group,
              tau::kMpiGroup);
  });
}

TEST(MpiAdapter, RecordsMessageSizeEvents) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    std::vector<double> buf(100);
    if (world.rank() == 0)
      world.send<double>(buf, 1, 0);
    else
      world.recv<double>(buf, 0, 0);

    const auto& events = reg.events();
    auto it = events.find("Message size (bytes)");
    ASSERT_NE(it, events.end());
    EXPECT_DOUBLE_EQ(it->second.max(), 800.0);
  });
}

TEST(MpiAdapter, GroupSumTracksCommunicationTime) {
  // With a modeled 2ms latency, the MPI group inclusive sum on the
  // receiving rank must reflect the wait.
  mpp::NetworkModel net;
  net.latency_us = 2000.0;
  mpp::Runtime::run(2, net, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    int v = 7;
    if (world.rank() == 0) {
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      world.recv_bytes(&v, sizeof v, 0, 0);
      EXPECT_GE(reg.group_inclusive_us(tau::kMpiGroup), 1800.0);
    }
  });
}

TEST(MpiAdapter, WaitsomeAppearsUnderItsOwnName) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    int v = 0;
    std::vector<mpp::Request> reqs;
    if (world.rank() == 0) {
      reqs.push_back(world.irecv_bytes(&v, sizeof v, 1, 0));
      std::vector<int> done;
      while (mpp::wait_some(reqs, done) == 0) {
      }
      EXPECT_TRUE(reg.has_timer("MPI_Waitsome()"));
      EXPECT_TRUE(reg.has_timer("MPI_Irecv()"));
    } else {
      world.send_bytes(&v, sizeof v, 0, 0);
    }
    world.barrier();
  });
}

TEST(MpiAdapter, HooksUninstallCleanly) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    tau::Registry reg;
    {
      tau::MpiHookAdapter adapter(reg);
      mpp::HooksInstaller install(&adapter);
      world.barrier();
    }
    world.barrier();  // no hooks: must not touch the registry
    EXPECT_EQ(reg.calls(reg.timer("MPI_Barrier()", tau::kMpiGroup)), 1u);
  });
}

TEST(MpiAdapter, TracedRunRecordsMessageEndpoints) {
  // With tracing on, the adapter must turn fabric message events into
  // msg_send / msg_recv trace records carrying the (peer, tag, bytes, seq)
  // identity the cross-rank merger matches on.
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    reg.set_tracing(true);
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    std::vector<double> buf(32);
    if (world.rank() == 0)
      world.send<double>(buf, 1, 9);
    else
      world.recv<double>(buf, 0, 9);

    const tau::TraceBuffer& tr = reg.trace();
    const tau::TraceKind want =
        world.rank() == 0 ? tau::TraceKind::msg_send : tau::TraceKind::msg_recv;
    std::size_t found = 0;
    for (std::size_t i = 0; i < tr.size(); ++i) {
      if (tr[i].kind != want) continue;
      ++found;
      EXPECT_EQ(tr[i].peer, 1 - world.rank());
      EXPECT_EQ(tr[i].tag, 9);
      EXPECT_EQ(tr[i].payload, 32 * sizeof(double));
      EXPECT_EQ(tr[i].seq, 1u);
    }
    EXPECT_EQ(found, 1u);
    world.barrier();
  });
}

TEST(MpiAdapter, MessageTraceRespectsGroupAndTracingGates) {
  // Message records obey both switches: no tracing -> nothing; tracing
  // with the MPI group disabled -> MPI slices and endpoints suppressed.
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);

    auto count_msgs = [&reg] {
      std::size_t n = 0;
      for (std::size_t i = 0; i < reg.trace().size(); ++i) {
        const tau::TraceKind k = reg.trace()[i].kind;
        if (k == tau::TraceKind::msg_send || k == tau::TraceKind::msg_recv) ++n;
      }
      return n;
    };
    auto exchange = [&world] {
      int v = 0;
      if (world.rank() == 0)
        world.send_bytes(&v, sizeof v, 1, 0);
      else
        world.recv_bytes(&v, sizeof v, 0, 0);
      world.barrier();
    };

    exchange();  // tracing off
    EXPECT_EQ(count_msgs(), 0u);

    reg.set_tracing(true);
    reg.set_group_enabled(tau::kMpiGroup, false);
    exchange();  // traced, but the MPI group is switched off
    EXPECT_EQ(count_msgs(), 0u);

    reg.set_group_enabled(tau::kMpiGroup, true);
    exchange();
    EXPECT_EQ(count_msgs(), 1u);
    world.barrier();
  });
}

TEST(MpiAdapter, DisablingMpiGroupSuppressesRecording) {
  // "At runtime, a user can enable or disable all MPI timers via their
  // group identifier."
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    tau::Registry reg;
    tau::MpiHookAdapter adapter(reg);
    mpp::HooksInstaller install(&adapter);
    reg.set_group_enabled(tau::kMpiGroup, false);
    world.barrier();
    reg.set_group_enabled(tau::kMpiGroup, true);
    world.barrier();
    EXPECT_EQ(reg.calls(reg.timer("MPI_Barrier()", tau::kMpiGroup)), 1u);
  });
}

}  // namespace
