// Trace verbosity tiers (DESIGN.md §12): the overhead governor's trace
// actuator. full > slices > counters > off, gated per record kind, with
// balanced synthetic events when the tier changes while frames are open —
// a governed trace must still parse and match every enter with an exit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tau/registry.hpp"
#include "tau/trace_buffer.hpp"

namespace {

using tau::Registry;
using tau::TraceKind;
using tau::TraceRecord;
using tau::TraceTier;

std::size_t count_kind(const tau::TraceBuffer& tr, TraceKind k) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < tr.size(); ++i)
    if (tr[i].kind == k) ++n;
  return n;
}

/// Depth never goes negative and ends at zero.
bool balanced(const std::vector<TraceRecord>& tr) {
  long depth = 0;
  for (const TraceRecord& r : tr) {
    if (r.is_enter()) ++depth;
    if (r.is_exit()) --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(TraceTiers, DefaultTierIsFullAndUnchanged) {
  Registry reg;
  EXPECT_EQ(reg.trace_tier(), TraceTier::full);
  reg.set_tracing(true);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.trace_arg(reg.trace_string("Q"), 64.0);
  reg.stop(t);
  reg.trace_message(true, 1, 0, 64, 1);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_TRUE(tr[0].is_enter());
  EXPECT_TRUE(tr[0].has_arg());
  EXPECT_TRUE(tr[1].is_exit());
  EXPECT_EQ(tr[2].kind, TraceKind::msg_send);
}

TEST(TraceTiers, SlicesDropsMessagesAndArgsKeepsSlices) {
  Registry reg;
  reg.set_tracing(true);
  reg.set_trace_tier(TraceTier::slices);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.trace_arg(reg.trace_string("Q"), 64.0);
  reg.stop(t);
  reg.trace_message(true, 1, 0, 64, 1);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_TRUE(tr[0].is_enter());
  EXPECT_FALSE(tr[0].has_arg());
  EXPECT_TRUE(tr[1].is_exit());
}

TEST(TraceTiers, CountersDropsSlicesKeepsCounterSamples) {
  Registry reg;
  reg.counters().add_source("K", [] { return std::uint64_t{7}; });
  reg.set_tracing(true);
  reg.set_trace_tier(TraceTier::counters);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  reg.trace_counter_samples();
  const auto& tr = reg.trace();
  EXPECT_EQ(count_kind(tr, TraceKind::enter), 0u);
  EXPECT_EQ(count_kind(tr, TraceKind::exit), 0u);
  EXPECT_GE(count_kind(tr, TraceKind::counter), 1u);
}

TEST(TraceTiers, OffKeepsOnlyInstants) {
  // Instants survive every tier: the governor's own audit marks must not
  // be silenced by the throttle they record.
  Registry reg;
  reg.counters().add_source("K", [] { return std::uint64_t{7}; });
  reg.set_tracing(true);
  reg.set_trace_tier(TraceTier::off);
  const auto t = reg.timer("f()");
  reg.start(t);
  reg.stop(t);
  reg.trace_counter_samples();
  reg.trace_message(true, 1, 0, 64, 1);
  reg.trace_instant(reg.trace_string("mark"));
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 1u);
  EXPECT_EQ(tr[0].kind, TraceKind::instant);
}

TEST(TraceTiers, MidFrameThrottleStaysBalanced) {
  // Throttle below slices while frames are open: synthetic exits close the
  // open stack (innermost first); re-enabling re-opens it with synthetic
  // enters. The merged trace parses with every enter matched.
  Registry reg;
  reg.set_tracing(true);
  const auto outer = reg.timer("outer()");
  const auto inner = reg.timer("inner()");
  reg.start(outer);
  reg.start(inner);
  reg.set_trace_tier(TraceTier::counters);  // drops slice recording mid-frame
  reg.stop(inner);                          // must not emit an exit
  reg.set_trace_tier(TraceTier::full);      // re-opens outer synthetically
  reg.stop(outer);

  const auto tr = reg.snapshot_trace();
  EXPECT_TRUE(balanced(tr));
  // enter(outer) enter(inner) synth-exit(inner) synth-exit(outer)
  // synth-enter(outer) exit(outer)
  ASSERT_EQ(tr.size(), 6u);
  EXPECT_TRUE(tr[2].synthetic());
  EXPECT_TRUE(tr[2].is_exit());
  EXPECT_EQ(tr[2].id, inner);
  EXPECT_TRUE(tr[3].synthetic());
  EXPECT_EQ(tr[3].id, outer);
  EXPECT_TRUE(tr[4].synthetic());
  EXPECT_TRUE(tr[4].is_enter());
  EXPECT_EQ(tr[4].id, outer);
  EXPECT_FALSE(tr[5].synthetic());
  EXPECT_TRUE(tr[5].is_exit());
  EXPECT_EQ(tr[5].id, outer);
}

TEST(TraceTiers, SnapshotClosesOnlyTracedFrames) {
  Registry reg;
  reg.set_tracing(true);
  const auto a = reg.timer("a()");
  const auto b = reg.timer("b()");
  reg.start(a);
  reg.set_trace_tier(TraceTier::off);
  reg.start(b);  // opened under "off": never traced
  const auto tr = reg.snapshot_trace();
  EXPECT_TRUE(balanced(tr));
  // a's synthetic close came from the tier change; the snapshot must not
  // fabricate an exit for b, which has no enter.
  for (const TraceRecord& r : tr) EXPECT_NE(r.id, b);
  reg.stop(b);
  reg.stop(a);
}

TEST(TraceTiers, LateInternedGroupInheritsTier) {
  Registry reg;
  reg.set_tracing(true);
  reg.set_trace_tier(TraceTier::counters);
  // Timer (and its group) first interned AFTER the throttle: it must not
  // reopen full verbosity.
  const auto t = reg.timer("late()", "LATE");
  reg.start(t);
  reg.stop(t);
  EXPECT_TRUE(reg.trace().empty());
  EXPECT_EQ(reg.group_trace_tier(reg.group_id("LATE")), TraceTier::counters);
}

TEST(TraceTiers, PerGroupTierOverride) {
  Registry reg;
  reg.set_tracing(true);
  const auto app = reg.timer("work()");
  const auto mpi = reg.timer("MPI_Send()", "MPI");
  reg.set_group_trace_tier(reg.group_id("MPI"), TraceTier::counters);
  reg.start(app);
  reg.start(mpi);
  reg.stop(mpi);
  reg.stop(app);
  const auto& tr = reg.trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr[0].id, app);
  EXPECT_EQ(tr[1].id, app);
}

TEST(TraceTiers, TierNamesAreStable) {
  EXPECT_STREQ(tau::trace_tier_name(TraceTier::full), "full");
  EXPECT_STREQ(tau::trace_tier_name(TraceTier::slices), "slices");
  EXPECT_STREQ(tau::trace_tier_name(TraceTier::counters), "counters");
  EXPECT_STREQ(tau::trace_tier_name(TraceTier::off), "off");
}

}  // namespace
