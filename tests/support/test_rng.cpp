#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

using ccaperf::Rng;

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= (v == 3);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(8);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(99), p2(99);
  Rng a = p1.split(5), b = p2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
