// Property suite for ccaperf::ThreadPool (DESIGN.md §9): every index runs
// exactly once regardless of lane count and stealing, exceptions surface
// on the caller, nested regions serialize, and the region-end hook fires
// at top level only.

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int lanes : {1, 2, 3, 4, 7}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                          std::size_t{17}, std::size_t{1000}}) {
      ccaperf::ThreadPool pool(lanes);
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.parallel_for(n, [&](std::size_t i, int lane) {
        ASSERT_GE(lane, 0);
        ASSERT_LT(lane, pool.size());
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "lanes=" << lanes << " n=" << n
                                     << " i=" << i;
    }
  }
}

TEST(ThreadPool, SumConservationUnderIrregularLoad) {
  ccaperf::ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::atomic<long> sum{0};
  pool.parallel_for(kN, [&](std::size_t i, int) {
    // Skewed costs provoke stealing: early indices are ~100x heavier.
    volatile double x = 1.0;
    const int spins = i < 50 ? 20000 : 200;
    for (int k = 0; k < spins; ++k) x = x * 1.0000001;
    sum.fetch_add(static_cast<long>(i) + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long>(kN * (kN + 1) / 2));
}

TEST(ThreadPool, StealsHappenWhenOneLaneIsSlow) {
  ccaperf::ThreadPool pool(4);
  // One long-running front chunk (owned by lane 0) plus many cheap tasks:
  // with only 4 lanes the other lanes drain their own ranges and must
  // steal the remainder of lane 0's.
  std::atomic<int> ran{0};
  pool.parallel_for(400, [&](std::size_t i, int) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 400);
  EXPECT_GT(pool.steals(), 0u);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ccaperf::ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, int) {
                          if (i == 42) throw std::runtime_error("task 42");
                          ran.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 100);  // abort abandons some tasks
  // The pool is reusable after a failed region.
  std::atomic<int> again{0};
  pool.parallel_for(64, [&](std::size_t, int) {
    again.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(again.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePool) {
  ccaperf::ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   4, [&](std::size_t i, int) {
                     if (i == 2) throw std::logic_error("inline");
                   }),
               std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnCallingLane) {
  ccaperf::ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(16, [&](std::size_t, int outer_lane) {
    pool.parallel_for(8, [&](std::size_t, int inner_lane) {
      EXPECT_EQ(inner_lane, outer_lane);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16 * 8);
}

TEST(ThreadPool, CurrentLaneIsZeroOutsideRegions) {
  EXPECT_EQ(ccaperf::ThreadPool::current_lane(), 0);
  ccaperf::ThreadPool pool(3);
  std::atomic<bool> saw_worker_lane{false};
  pool.parallel_for(64, [&](std::size_t i, int lane) {
    EXPECT_EQ(ccaperf::ThreadPool::current_lane(), lane);
    if (lane > 0) saw_worker_lane.store(true, std::memory_order_relaxed);
    // Index 0 lands on the caller's front chunk: park it until a worker
    // lane has run something, so worker participation is guaranteed even
    // on a single-core host (workers own the tail ranges and must drain
    // them for the region to finish).
    if (i == 0)
      while (!saw_worker_lane.load(std::memory_order_relaxed))
        std::this_thread::yield();
  });
  EXPECT_EQ(ccaperf::ThreadPool::current_lane(), 0);
  EXPECT_TRUE(saw_worker_lane.load());
}

TEST(ThreadPool, RegionEndHookFiresOncePerTopLevelRegion) {
  ccaperf::ThreadPool pool(2);
  int fired = 0;
  pool.set_region_end_hook([&] { ++fired; });
  pool.parallel_for(10, [&](std::size_t, int) {
    pool.parallel_for(3, [](std::size_t, int) {});  // nested: no hook
  });
  EXPECT_EQ(fired, 1);
  pool.parallel_for(0, [](std::size_t, int) {});  // empty region still ends
  EXPECT_EQ(fired, 2);
  pool.set_region_end_hook(nullptr);
  pool.parallel_for(4, [](std::size_t, int) {});
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(pool.regions(), 3u);
}

TEST(ThreadPool, RegionEndHookFiresEvenOnException) {
  ccaperf::ThreadPool pool(2);
  int fired = 0;
  pool.set_region_end_hook([&] { ++fired; });
  EXPECT_THROW(pool.parallel_for(
                   32, [](std::size_t i, int) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_EQ(fired, 1);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnvEachCall) {
  unsetenv("CCAPERF_THREADS");
  EXPECT_EQ(ccaperf::configured_threads(), 1);
  setenv("CCAPERF_THREADS", "6", 1);
  EXPECT_EQ(ccaperf::configured_threads(), 6);
  setenv("CCAPERF_THREADS", "0", 1);
  EXPECT_EQ(ccaperf::configured_threads(), 1);  // clamped
  unsetenv("CCAPERF_THREADS");
}

TEST(ThreadPool, SetRankPoolThreadsRebuildsThePool) {
  ccaperf::set_rank_pool_threads(1);
  EXPECT_EQ(ccaperf::rank_pool().size(), 1);
  ccaperf::set_rank_pool_threads(3);
  EXPECT_EQ(ccaperf::rank_pool().size(), 3);
  std::atomic<int> ran{0};
  ccaperf::rank_pool().parallel_for(
      50, [&](std::size_t, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 50);
  ccaperf::set_rank_pool_threads(1);
}

}  // namespace
