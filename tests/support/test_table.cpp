#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using ccaperf::CsvWriter;
using ccaperf::TextTable;

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Every data line starts at the same column for field 2.
  const auto l1 = s.find("x");
  const auto l2 = s.find("longer");
  ASSERT_NE(l1, std::string::npos);
  ASSERT_NE(l2, std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RuleRendersDashes) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"r1"});
  t.add_rule();
  t.add_row({"r2"});
  const std::string s = t.to_string();
  // header rule + explicit rule
  std::size_t dashes = 0, pos = 0;
  while ((pos = s.find("--", pos)) != std::string::npos) {
    ++dashes;
    pos = s.find('\n', pos);
    if (pos == std::string::npos) break;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(TextTable, EmptyTableRendersNothing) {
  TextTable t;
  EXPECT_TRUE(t.to_string().empty());
}

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(ccaperf::fmt_double(1.5), "1.5");
  EXPECT_EQ(ccaperf::fmt_double(0.125, 3), "0.125");
}

TEST(Format, FmtSci) {
  EXPECT_EQ(ccaperf::fmt_sci(12345.0, 2), "1.23e+04");
}

}  // namespace
