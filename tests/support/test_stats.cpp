#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace {

using ccaperf::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  // 2, 4, 4, 4, 5, 5, 7, 9 -> mean 5, population sd 2 (classic example).
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  ccaperf::Rng rng(11);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(s.sample_variance(), 30.0, 1e-6);
}

}  // namespace
