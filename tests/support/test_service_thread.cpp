// ccaperf::ServiceThread: cadence ticks, prompt wake, exactly-once final
// flush on stop, and the no-concurrent-ticks guarantee the TelemetryHub
// drainer relies on.

#include "support/service_thread.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

using namespace std::chrono_literals;

TEST(ServiceThread, TicksOnCadence) {
  std::atomic<int> ticks{0};
  {
    ccaperf::ServiceThread st("cadence", 1ms, [&] { ticks.fetch_add(1); });
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (ticks.load() < 5 && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(ticks.load(), 5);
}

TEST(ServiceThread, WakeTriggersPromptTick) {
  std::atomic<int> ticks{0};
  // Idle cadence far beyond the test: any tick must come from wake().
  ccaperf::ServiceThread st("wake", 10s, [&] { ticks.fetch_add(1); });
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(ticks.load(), 0);
  st.wake();
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (ticks.load() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_GE(ticks.load(), 1);
  st.stop();
}

TEST(ServiceThread, StopRunsFinalTickAndIsIdempotent) {
  std::atomic<int> ticks{0};
  ccaperf::ServiceThread st("stop", 10s, [&] { ticks.fetch_add(1); });
  EXPECT_TRUE(st.running());
  st.stop();
  EXPECT_FALSE(st.running());
  const int after_stop = ticks.load();
  EXPECT_GE(after_stop, 1);  // the final flush
  EXPECT_EQ(st.ticks(), static_cast<std::uint64_t>(after_stop));
  st.stop();  // no-op
  EXPECT_EQ(ticks.load(), after_stop);
}

TEST(ServiceThread, TicksNeverOverlap) {
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::atomic<int> ticks{0};
  {
    ccaperf::ServiceThread st("exclusive", 500us, [&] {
      if (inside.fetch_add(1) != 0) overlapped.store(true);
      std::this_thread::sleep_for(1ms);
      inside.fetch_sub(1);
      ticks.fetch_add(1);
    });
    // Hammer wake() from several threads while the cadence also fires.
    std::vector<std::thread> wakers;
    for (int w = 0; w < 4; ++w)
      wakers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          st.wake();
          std::this_thread::sleep_for(200us);
        }
      });
    for (std::thread& t : wakers) t.join();
  }
  EXPECT_FALSE(overlapped.load());
  EXPECT_GE(ticks.load(), 1);
}

}  // namespace
