// Shock/interface problem setup: Rankine-Hugoniot consistency, state
// layout across the domain, hierarchy fill, BC spec, and the density
// gradient flagger.

#include <gtest/gtest.h>

#include <cmath>

#include "euler/problem.hpp"
#include "mpp/runtime.hpp"

namespace {

using euler::Prim;
using euler::ShockInterfaceProblem;

TEST(Problem, RankineHugoniotMach15) {
  ShockInterfaceProblem prob;
  const Prim post = prob.post_shock_state();
  // gamma = 1.4, Ms = 1.5 textbook values.
  EXPECT_NEAR(post.p / prob.p0, 2.4583, 1e-3);
  EXPECT_NEAR(post.rho / prob.rho_air, 1.8621, 1e-3);
  const double c0 = std::sqrt(1.4 * prob.p0 / prob.rho_air);
  EXPECT_NEAR(post.u / c0, 0.6944, 1e-3);
  EXPECT_DOUBLE_EQ(post.phi, 1.0);
}

TEST(Problem, RankineHugoniotSatisfiesJumpConditions) {
  // Verify mass and momentum conservation across the shock in the
  // shock-stationary frame for a range of Mach numbers.
  for (double mach : {1.1, 1.5, 2.0, 3.0}) {
    ShockInterfaceProblem prob;
    prob.mach = mach;
    const Prim post = prob.post_shock_state();
    const double c0 = std::sqrt(1.4 * prob.p0 / prob.rho_air);
    const double ws = mach * c0;  // shock speed
    const double m0 = prob.rho_air * ws;           // pre-shock mass flux
    const double m1 = post.rho * (ws - post.u);    // post-shock mass flux
    EXPECT_NEAR(m0, m1, 1e-10 * m0);
    const double p0m = prob.p0 + m0 * ws;
    const double p1m = post.p + m1 * (ws - post.u);
    EXPECT_NEAR(p0m, p1m, 1e-9 * p0m);
  }
}

TEST(Problem, StateLayoutAcrossDomain) {
  ShockInterfaceProblem prob;
  const double lx = 2.0, ly = 1.0;
  // Left of the shock: post-shock air (moving).
  const Prim a = prob.state_at(0.1, 0.5, lx, ly);
  EXPECT_GT(a.u, 0.0);
  EXPECT_GT(a.p, prob.p0);
  // Between shock and interface: quiescent air.
  const Prim b = prob.state_at(0.5, 0.5, lx, ly);
  EXPECT_DOUBLE_EQ(b.u, 0.0);
  EXPECT_DOUBLE_EQ(b.rho, prob.rho_air);
  EXPECT_DOUBLE_EQ(b.phi, 1.0);
  // Far right: freon.
  const Prim c = prob.state_at(1.9, 0.5, lx, ly);
  EXPECT_DOUBLE_EQ(c.phi, 0.0);
  EXPECT_NEAR(c.rho, prob.rho_air * prob.density_ratio, 1e-12);
  EXPECT_DOUBLE_EQ(c.p, prob.p0);  // pressure equilibrium at the interface
}

TEST(Problem, InterfaceIsPerturbed) {
  ShockInterfaceProblem prob;
  const double lx = 2.0, ly = 1.0;
  const double xi = prob.interface_x * lx;
  // At the perturbation crest the interface shifts by `amplitude * lx`.
  const Prim at_crest = prob.state_at(xi + 0.5 * prob.amplitude * lx, 0.0, lx, ly);
  const Prim at_trough =
      prob.state_at(xi + 0.5 * prob.amplitude * lx, ly / (2.0 * prob.mode), lx, ly);
  EXPECT_NE(at_crest.phi, at_trough.phi);
}

TEST(Problem, BcSpecReflectsYMomentum) {
  ShockInterfaceProblem prob;
  const amr::BcSpec bc = prob.bc();
  EXPECT_EQ(bc.ylo, amr::BcType::reflecting);
  EXPECT_EQ(bc.xlo, amr::BcType::transmissive);
  ASSERT_EQ(bc.reflect_sign_y.size(), static_cast<std::size_t>(euler::kNcomp));
  EXPECT_DOUBLE_EQ(bc.reflect_sign_y[euler::kMy], -1.0);
  EXPECT_DOUBLE_EQ(bc.reflect_sign_y[euler::kRho], 1.0);
}

TEST(Problem, FillHierarchyProducesPhysicalStates) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    amr::HierarchyConfig cfg;
    cfg.domain = amr::Box{0, 0, 47, 23};
    cfg.max_levels = 2;
    cfg.ncomp = euler::kNcomp;
    cfg.level0_patch_size = 12;
    cfg.geom = amr::Geometry{0.0, 0.0, 2.0 / 48.0, 1.0 / 24.0};
    amr::Hierarchy h(world, cfg);
    h.init_level0();
    ShockInterfaceProblem prob;
    prob.fill_hierarchy(h);
    for (auto& [id, data] : h.level(0).local_data()) {
      const amr::Box box = h.level(0).patch(id).box;
      for (int j = box.lo().j; j <= box.hi().j; ++j)
        for (int i = box.lo().i; i <= box.hi().i; ++i) {
          double U[euler::kNcomp];
          for (int c = 0; c < euler::kNcomp; ++c) U[c] = data(i, j, c);
          const Prim w = euler::cons_to_prim(U, prob.gas);
          EXPECT_GT(w.rho, 0.0);
          EXPECT_GT(w.p, 0.0);
          EXPECT_GE(w.phi, -1e-12);
          EXPECT_LE(w.phi, 1.0 + 1e-12);
        }
    }
  });
}

TEST(Problem, FlaggerMarksShockAndInterface) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    amr::HierarchyConfig cfg;
    cfg.domain = amr::Box{0, 0, 63, 31};
    cfg.max_levels = 2;
    cfg.ncomp = euler::kNcomp;
    cfg.level0_patch_size = 64;  // one patch
    cfg.geom = amr::Geometry{0.0, 0.0, 2.0 / 64.0, 1.0 / 32.0};
    amr::Hierarchy h(world, cfg);
    h.init_level0();
    ShockInterfaceProblem prob;
    prob.fill_hierarchy(h);
    amr::FlagField flags(h.domain_at(0));
    for (const auto& p : h.level(0).patches())
      ShockInterfaceProblem::flag_density_gradient(h, 0, p, flags, 0.08);
    EXPECT_GT(flags.count(), 0);
    // Flags concentrate near the shock (x ~ 0.15*2.0 -> i ~ 9-10) and the
    // interface (x ~ 0.8 -> i ~ 25-26); quiescent regions stay clean.
    EXPECT_EQ(flags.count_in(amr::Box{40, 8, 60, 24}), 0);
    EXPECT_GT(flags.count_in(amr::Box{20, 0, 32, 31}), 0);
  });
}

}  // namespace
