// Exact Riemann solver: canonical Toro test problems (known star-region
// values), symmetry, trivial problems, two-gamma interfaces, and the
// data-dependent iteration counts that drive GodunovFlux's variability.

#include <gtest/gtest.h>

#include "euler/riemann.hpp"
#include "support/error.hpp"

namespace {

using euler::GasModel;
using euler::Prim;

GasModel air_only() {
  GasModel gas;
  gas.gamma2 = 1.4;  // both gases are air: classic single-gamma problems
  return gas;
}

TEST(Riemann, TrivialProblemReturnsInputState) {
  const Prim w{1.0, 0.5, 0.1, 1.0, 1.0};
  const auto r = euler::exact_riemann(w, w, air_only());
  EXPECT_NEAR(r.p_star, 1.0, 1e-6);
  EXPECT_NEAR(r.u_star, 0.5, 1e-6);
  EXPECT_NEAR(r.sampled.rho, 1.0, 1e-6);
  EXPECT_NEAR(r.sampled.p, 1.0, 1e-6);
}

TEST(Riemann, SodShockTube) {
  // Toro test 1: p* = 0.30313, u* = 0.92745 (gamma = 1.4).
  const Prim l{1.0, 0.0, 0.0, 1.0, 1.0};
  const Prim r{0.125, 0.0, 0.0, 0.1, 1.0};
  const auto res = euler::exact_riemann(l, r, air_only());
  EXPECT_NEAR(res.p_star, 0.30313, 5e-4);
  EXPECT_NEAR(res.u_star, 0.92745, 5e-4);
  // Sample at x/t = 0 sits inside the left rarefaction-to-contact region:
  // rho = 0.42632 (Toro Table 4.3's rho*L).
  EXPECT_NEAR(res.sampled.rho, 0.42632, 5e-3);
}

TEST(Riemann, Toro123RarefactionProblem) {
  // Toro test 2: two strong rarefactions, p* = 0.00189, u* = 0.
  const Prim l{1.0, -2.0, 0.0, 0.4, 1.0};
  const Prim r{1.0, 2.0, 0.0, 0.4, 1.0};
  const auto res = euler::exact_riemann(l, r, air_only());
  EXPECT_NEAR(res.p_star, 0.00189, 5e-4);
  EXPECT_NEAR(res.u_star, 0.0, 1e-6);
}

TEST(Riemann, StrongShockProblem) {
  // Toro test 3: p* = 460.894, u* = 19.5975.
  const Prim l{1.0, 0.0, 0.0, 1000.0, 1.0};
  const Prim r{1.0, 0.0, 0.0, 0.01, 1.0};
  const auto res = euler::exact_riemann(l, r, air_only());
  EXPECT_NEAR(res.p_star, 460.894, 0.5);
  EXPECT_NEAR(res.u_star, 19.5975, 0.01);
}

TEST(Riemann, MirrorSymmetry) {
  // Swapping sides and negating velocities mirrors the solution.
  const Prim l{1.0, 0.3, 0.0, 2.0, 1.0};
  const Prim r{0.5, -0.1, 0.0, 0.7, 1.0};
  const auto fwd = euler::exact_riemann(l, r, air_only());
  Prim lm = r, rm = l;
  lm.u = -r.u;
  rm.u = -l.u;
  const auto mir = euler::exact_riemann(lm, rm, air_only());
  EXPECT_NEAR(fwd.p_star, mir.p_star, 1e-10);
  EXPECT_NEAR(fwd.u_star, -mir.u_star, 1e-10);
}

TEST(Riemann, ContactUpwindsTransverseAndPhi) {
  // u* > 0: interface state carries the LEFT side's v and phi.
  const Prim l{1.0, 1.0, 0.25, 1.0, 1.0};
  const Prim r{1.0, 1.0, -0.75, 1.0, 0.0};
  const auto res = euler::exact_riemann(l, r, air_only());
  EXPECT_GT(res.u_star, 0.0);
  EXPECT_DOUBLE_EQ(res.sampled.v, 0.25);
  EXPECT_DOUBLE_EQ(res.sampled.phi, 1.0);
}

TEST(Riemann, TwoGammaInterface) {
  // Air/Freon at rest with equal pressure: nothing should move.
  GasModel gas;  // gamma1=1.4, gamma2=1.13
  const Prim air{1.0, 0.0, 0.0, 1.0, 1.0};
  const Prim freon{3.33, 0.0, 0.0, 1.0, 0.0};
  const auto res = euler::exact_riemann(air, freon, gas);
  EXPECT_NEAR(res.p_star, 1.0, 1e-8);
  EXPECT_NEAR(res.u_star, 0.0, 1e-8);
}

TEST(Riemann, ShockHittingFreonProducesTransmittedCompression) {
  GasModel gas;
  // Post-shock air driving into quiescent freon.
  const Prim driver{1.862, 0.694, 0.0, 2.458, 1.0};
  const Prim freon{3.33, 0.0, 0.0, 1.0, 0.0};
  const auto res = euler::exact_riemann(driver, freon, gas);
  EXPECT_GT(res.p_star, 1.0);   // compression transmitted
  EXPECT_GT(res.u_star, 0.0);   // interface accelerates downstream
}

TEST(Riemann, IterationCountGrowsWithJumpStrength) {
  // The mechanism behind GodunovFlux's variance (Fig. 7): stronger jumps
  // take more Newton iterations.
  const Prim quiet_l{1.0, 0.0, 0.0, 1.0, 1.0};
  const Prim quiet_r{0.99, 0.0, 0.0, 0.99, 1.0};
  const Prim strong_l{1.0, 0.0, 0.0, 1000.0, 1.0};
  const Prim strong_r{1.0, 0.0, 0.0, 0.01, 1.0};
  const auto quiet = euler::exact_riemann(quiet_l, quiet_r, air_only());
  const auto strong = euler::exact_riemann(strong_l, strong_r, air_only());
  EXPECT_GT(strong.iterations, quiet.iterations);
  EXPECT_LE(strong.iterations, 40);
}

TEST(Riemann, NonPhysicalInputRejected) {
  const Prim ok{1.0, 0.0, 0.0, 1.0, 1.0};
  Prim bad = ok;
  bad.rho = -1.0;
  EXPECT_THROW(euler::exact_riemann(bad, ok, air_only()), ccaperf::Error);
  bad = ok;
  bad.p = 0.0;
  EXPECT_THROW(euler::exact_riemann(ok, bad, air_only()), ccaperf::Error);
}

TEST(Riemann, SupersonicRightRunningFlowSamplesLeftState) {
  // Everything moves supersonically to the right: x/t=0 sees the left state.
  const Prim l{1.0, 5.0, 0.3, 1.0, 1.0};
  const Prim r{1.0, 5.0, -0.3, 1.0, 0.0};
  const auto res = euler::exact_riemann(l, r, air_only());
  EXPECT_NEAR(res.sampled.rho, 1.0, 1e-8);
  EXPECT_NEAR(res.sampled.u, 5.0, 1e-8);
  EXPECT_DOUBLE_EQ(res.sampled.v, 0.3);
}

}  // namespace
