// Sweep kernels: reconstruction exactness, direction symmetry, flux
// divergence of uniform flow, conservation of the update, Godunov/EFM
// sweep agreement on smooth data, and the cache-probe instrumentation
// (sequential vs strided miss behaviour — the Fig. 4/5 mechanism).

#include <gtest/gtest.h>

#include <cmath>

#include "euler/kernels.hpp"

namespace {

using amr::Box;
using amr::PatchData;
using euler::Array2;
using euler::Dir;
using euler::GasModel;
using euler::kNcomp;
using euler::Prim;

GasModel air_only() {
  GasModel gas;
  gas.gamma2 = 1.4;
  return gas;
}

PatchData<double> uniform_patch(const Box& interior, const Prim& w,
                                const GasModel& gas) {
  PatchData<double> p(interior, 2, kNcomp);
  double U[kNcomp];
  euler::prim_to_cons(w, gas, U);
  const Box g = p.grown_box();
  for (int c = 0; c < kNcomp; ++c)
    for (int j = g.lo().j; j <= g.hi().j; ++j)
      for (int i = g.lo().i; i <= g.hi().i; ++i) p(i, j, c) = U[c];
  return p;
}

TEST(StatesKernel, UniformStateReconstructsExactly) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 7, 7};
  const Prim w{1.3, 0.4, -0.2, 2.0, 1.0};
  auto u = uniform_patch(interior, w, gas);
  for (Dir dir : {Dir::x, Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    Array2 left(nx, ny, kNcomp), right(nx, ny, kNcomp);
    hwc::NullProbe probe;
    const auto counts = euler::compute_states(u, interior, dir, gas, left, right, probe);
    EXPECT_EQ(counts.faces, static_cast<std::uint64_t>(nx) * ny);
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        EXPECT_NEAR(left(i, j, 0), w.rho, 1e-13);
        EXPECT_NEAR(right(i, j, 0), w.rho, 1e-13);
        EXPECT_NEAR(left(i, j, 3), w.p, 1e-13);
        // Normal velocity is u for X sweeps, v for Y sweeps.
        EXPECT_NEAR(left(i, j, 1), dir == Dir::x ? w.u : w.v, 1e-13);
        EXPECT_NEAR(left(i, j, 2), dir == Dir::x ? w.v : w.u, 1e-13);
      }
  }
}

TEST(StatesKernel, LinearDensityReconstructsSecondOrder) {
  // For linear data, minmod slopes are exact and L=R at each face.
  const GasModel gas = air_only();
  const Box interior{0, 0, 15, 3};
  PatchData<double> u(interior, 2, kNcomp);
  const Box g = u.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const Prim w{1.0 + 0.01 * i, 0.0, 0.0, 1.0, 1.0};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) u(i, j, c) = U[c];
    }
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 left(nx, ny, kNcomp), right(nx, ny, kNcomp);
  hwc::NullProbe probe;
  euler::compute_states(u, interior, Dir::x, gas, left, right, probe);
  for (int fi = 0; fi < nx; ++fi) {
    // Face fi sits between cells fi-1 and fi: rho_face = 1.0 + 0.01(fi-0.5).
    const double expect = 1.0 + 0.01 * (fi - 0.5);
    EXPECT_NEAR(left(fi, 1, 0), expect, 1e-10);
    EXPECT_NEAR(right(fi, 1, 0), expect, 1e-10);
  }
}

TEST(FluxDivergence, UniformFlowGivesZero) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 9, 9};
  const Prim w{1.0, 0.8, -0.3, 1.5, 1.0};
  auto u = uniform_patch(interior, w, gas);
  hwc::NullProbe probe;

  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 lx(nx, ny, kNcomp), rx(nx, ny, kNcomp), fx(nx, ny, kNcomp);
  euler::compute_states(u, interior, Dir::x, gas, lx, rx, probe);
  euler::efm_flux_sweep(lx, rx, Dir::x, gas, fx, probe);

  euler::face_dims(interior, Dir::y, nx, ny);
  Array2 ly(nx, ny, kNcomp), ry(nx, ny, kNcomp), fy(nx, ny, kNcomp);
  euler::compute_states(u, interior, Dir::y, gas, ly, ry, probe);
  euler::efm_flux_sweep(ly, ry, Dir::y, gas, fy, probe);

  PatchData<double> dudt(interior, 0, kNcomp, -1.0);
  euler::flux_divergence(fx, fy, interior, 0.1, 0.1, dudt);
  for (int c = 0; c < kNcomp; ++c)
    for (int j = 0; j <= 9; ++j)
      for (int i = 0; i <= 9; ++i)
        EXPECT_NEAR(dudt(i, j, c), 0.0, 1e-9) << "c=" << c;
}

TEST(FluxDivergence, TelescopingConservation) {
  // sum_cells dudt * dx*dy = -(boundary flux sum): interior fluxes cancel.
  const GasModel gas = air_only();
  const Box interior{0, 0, 7, 7};
  // Non-trivial smooth data.
  PatchData<double> u(interior, 2, kNcomp);
  const Box g = u.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const Prim w{1.0 + 0.05 * std::sin(0.3 * i) + 0.04 * std::cos(0.4 * j),
                   0.2 * std::sin(0.2 * j), -0.1, 1.0 + 0.02 * i, 1.0};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) u(i, j, c) = U[c];
    }
  hwc::NullProbe probe;
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 lx(nx, ny, kNcomp), rx(nx, ny, kNcomp), fx(nx, ny, kNcomp);
  euler::compute_states(u, interior, Dir::x, gas, lx, rx, probe);
  euler::godunov_flux_sweep(lx, rx, Dir::x, gas, fx, probe);
  euler::face_dims(interior, Dir::y, nx, ny);
  Array2 ly(nx, ny, kNcomp), ry(nx, ny, kNcomp), fy(nx, ny, kNcomp);
  euler::compute_states(u, interior, Dir::y, gas, ly, ry, probe);
  euler::godunov_flux_sweep(ly, ry, Dir::y, gas, fy, probe);

  const double dx = 0.1, dy = 0.2;
  PatchData<double> dudt(interior, 0, kNcomp, 0.0);
  euler::flux_divergence(fx, fy, interior, dx, dy, dudt);

  // Mass budget: volume integral of d(rho)/dt vs boundary mass fluxes.
  double interior_sum = 0.0;
  for (int j = 0; j <= 7; ++j)
    for (int i = 0; i <= 7; ++i) interior_sum += dudt(i, j, euler::kRho) * dx * dy;
  double boundary = 0.0;
  for (int j = 0; j < 8; ++j)
    boundary += (fx(8, j, 0) - fx(0, j, 0)) * dy;
  for (int i = 0; i < 8; ++i)
    boundary += (fy(i, 8, 0) - fy(i, 0, 0)) * dx;
  EXPECT_NEAR(interior_sum, -boundary, 1e-10);
}

TEST(Kernels, XYSymmetryOfTransposedData) {
  // Transposing the field and swapping u<->v must transpose the fluxes.
  const GasModel gas = air_only();
  const Box interior{0, 0, 11, 11};
  PatchData<double> u(interior, 2, kNcomp), ut(interior, 2, kNcomp);
  const Box g = u.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const Prim w{1.0 + 0.03 * i + 0.07 * j, 0.1 * i, 0.05 * j,
                   1.0 + 0.01 * (i + j), 1.0};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) u(i, j, c) = U[c];
      const Prim wt{1.0 + 0.03 * j + 0.07 * i, 0.05 * i, 0.1 * j,
                    1.0 + 0.01 * (i + j), 1.0};
      euler::prim_to_cons(wt, gas, U);
      for (int c = 0; c < kNcomp; ++c) ut(i, j, c) = U[c];
    }
  hwc::NullProbe probe;
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 lx(nx, ny, kNcomp), rx(nx, ny, kNcomp), fx(nx, ny, kNcomp);
  euler::compute_states(u, interior, Dir::x, gas, lx, rx, probe);
  euler::efm_flux_sweep(lx, rx, Dir::x, gas, fx, probe);

  euler::face_dims(interior, Dir::y, nx, ny);
  Array2 ly(nx, ny, kNcomp), ry(nx, ny, kNcomp), fy(nx, ny, kNcomp);
  euler::compute_states(ut, interior, Dir::y, gas, ly, ry, probe);
  euler::efm_flux_sweep(ly, ry, Dir::y, gas, fy, probe);

  // fx at face (fi, j) == fy of the transposed problem at face (j, fi).
  for (int j = 0; j < 12; ++j)
    for (int fi = 0; fi < 13; ++fi)
      for (int c = 0; c < kNcomp; ++c)
        EXPECT_NEAR(fx(fi, j, c), fy(j, fi, c), 1e-11)
            << "face (" << fi << "," << j << ") comp " << c;
}

TEST(Kernels, GodunovAndEfmAgreeOnUniformFlow) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 5, 5};
  const Prim w{1.0, 0.6, 0.2, 1.2, 1.0};
  auto u = uniform_patch(interior, w, gas);
  hwc::NullProbe probe;
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp), fe(nx, ny, kNcomp),
      fg(nx, ny, kNcomp);
  euler::compute_states(u, interior, Dir::x, gas, l, r, probe);
  euler::efm_flux_sweep(l, r, Dir::x, gas, fe, probe);
  euler::godunov_flux_sweep(l, r, Dir::x, gas, fg, probe);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      for (int c = 0; c < kNcomp; ++c)
        EXPECT_NEAR(fe(i, j, c), fg(i, j, c), 1e-10);
}

TEST(Kernels, MaxWaveSpeed) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 3, 3};
  const Prim w{1.4, 3.0, -1.0, 1.0, 1.0};  // c = 1, |u|+c = 4
  auto u = uniform_patch(interior, w, gas);
  EXPECT_NEAR(euler::max_wave_speed(u, interior, gas), 4.0, 1e-12);
}

TEST(Kernels, TotalConservedSums) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 3, 3};
  auto u = uniform_patch(interior, Prim{2.0, 1.0, 0.0, 1.0, 1.0}, gas);
  double totals[kNcomp];
  euler::total_conserved(u, interior, totals);
  EXPECT_DOUBLE_EQ(totals[euler::kRho], 32.0);
  EXPECT_DOUBLE_EQ(totals[euler::kMx], 32.0);
  EXPECT_DOUBLE_EQ(totals[euler::kMy], 0.0);
}

TEST(KernelsTraced, ProbeCountsScaleWithFaces) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 15, 15};
  auto u = uniform_patch(interior, Prim{1.0, 0.1, 0.0, 1.0, 1.0}, gas);
  hwc::CacheSim cache(512 * 1024, 64, 8);
  hwc::CacheProbe probe(&cache);
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
  const auto counts = euler::compute_states(u, interior, Dir::x, gas, l, r, probe);
  EXPECT_EQ(counts.faces, static_cast<std::uint64_t>(nx) * ny);
  // 4 stencil cells x 5 comps loads per face; 10 stores per face.
  EXPECT_EQ(probe.counts().loads, counts.faces * 20);
  EXPECT_EQ(probe.counts().stores, counts.faces * 10);
  EXPECT_GT(probe.counts().flops, 0u);
}

TEST(KernelsTraced, StridedSweepMissesMoreOnLargePatch) {
  // The deterministic version of Figs. 4-5: on a patch whose working set
  // exceeds the 512 kB cache, the Y (strided) sweep incurs far more cache
  // misses than the X (sequential) sweep.
  const GasModel gas = air_only();
  const Box interior{0, 0, 511, 127};  // 64k cells x 5 comps x 8 B = 2.6 MB
  auto u = uniform_patch(interior, Prim{1.0, 0.1, 0.0, 1.0, 1.0}, gas);

  auto misses = [&](Dir dir) {
    hwc::CacheSim cache(512 * 1024, 64, 8);
    hwc::CacheProbe probe(&cache);
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
    euler::compute_states(u, interior, dir, gas, l, r, probe);
    return cache.counters().misses;
  };
  const auto seq = misses(Dir::x);
  const auto str = misses(Dir::y);
  EXPECT_GT(static_cast<double>(str) / static_cast<double>(seq), 2.0);
}

TEST(KernelsTraced, SmallPatchMissesComparableBothDirections) {
  const GasModel gas = air_only();
  const Box interior{0, 0, 31, 31};  // 40 kB working set: cache resident
  auto u = uniform_patch(interior, Prim{1.0, 0.1, 0.0, 1.0, 1.0}, gas);
  auto misses = [&](Dir dir) {
    hwc::CacheSim cache(512 * 1024, 64, 8);
    hwc::CacheProbe probe(&cache);
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
    euler::compute_states(u, interior, dir, gas, l, r, probe);
    return cache.counters().misses;
  };
  const double ratio =
      static_cast<double>(misses(Dir::y)) / static_cast<double>(misses(Dir::x));
  EXPECT_LT(ratio, 1.5);
}

}  // namespace
