// Sod shock tube through the full solver machinery (MUSCL states + flux +
// RK2 time stepping on a patch): the computed profile at t = 0.2 must
// track the exact Riemann solution (density plateaus, shock/contact/
// rarefaction positions) within shock-capturing tolerances.

#include <gtest/gtest.h>

#include <cmath>

#include "euler/kernels.hpp"
#include "euler/riemann.hpp"

namespace {

using amr::Box;
using amr::PatchData;
using euler::Array2;
using euler::Dir;
using euler::GasModel;
using euler::kNcomp;
using euler::Prim;

GasModel air_only() {
  GasModel gas;
  gas.gamma2 = 1.4;
  return gas;
}

/// Exact Sod solution at (x - x0)/t via the solver's own sampler reused at
/// arbitrary wave speeds: re-solve and sample by shifting the velocity
/// frame (sampling at speed s equals sampling the frame-shifted problem
/// at 0).
Prim exact_sod_at(double s, const GasModel& gas) {
  Prim l{1.0, 0.0 - s, 0.0, 1.0, 1.0};
  Prim r{0.125, 0.0 - s, 0.0, 0.1, 1.0};
  Prim w = euler::exact_riemann(l, r, gas).sampled;
  w.u += s;
  return w;
}

TEST(SodTube, DensityProfileMatchesExactSolution) {
  const GasModel gas = air_only();
  const int n = 400;
  const double dx = 1.0 / n, dy = dx;
  const Box interior{0, 0, n - 1, 3};  // quasi-1D strip, 4 rows
  PatchData<double> u(interior, 2, kNcomp);

  // Initial data: Sod states across x = 0.5, constant in y.
  const Box g = u.grown_box();
  double UL[kNcomp], UR[kNcomp];
  euler::prim_to_cons(Prim{1.0, 0.0, 0.0, 1.0, 1.0}, gas, UL);
  euler::prim_to_cons(Prim{0.125, 0.0, 0.0, 0.1, 1.0}, gas, UR);
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i)
      for (int c = 0; c < kNcomp; ++c)
        u(i, j, c) = ((i + 0.5) * dx < 0.5) ? UL[c] : UR[c];

  auto fill_bc = [&](PatchData<double>& p) {
    // Transmissive in x, periodic-like copy in y (solution y-invariant).
    for (int j = g.lo().j; j <= g.hi().j; ++j) {
      const int jc = std::clamp(j, 0, 3);
      for (int i = g.lo().i; i <= g.hi().i; ++i) {
        const int ic = std::clamp(i, 0, n - 1);
        if (ic == i && jc == j) continue;
        for (int c = 0; c < kNcomp; ++c) p(i, j, c) = p(ic, jc, c);
      }
    }
  };

  // Heun/RK2 stepping to t = 0.2 with CFL 0.4.
  hwc::NullProbe probe;
  auto rhs = [&](PatchData<double>& state, PatchData<double>& dudt) {
    fill_bc(state);
    int nx = 0, ny = 0;
    euler::face_dims(interior, Dir::x, nx, ny);
    Array2 lx(nx, ny, kNcomp), rx(nx, ny, kNcomp), fx(nx, ny, kNcomp);
    euler::compute_states(state, interior, Dir::x, gas, lx, rx, probe);
    euler::godunov_flux_sweep(lx, rx, Dir::x, gas, fx, probe);
    euler::face_dims(interior, Dir::y, nx, ny);
    Array2 ly(nx, ny, kNcomp), ry(nx, ny, kNcomp), fy(nx, ny, kNcomp);
    euler::compute_states(state, interior, Dir::y, gas, ly, ry, probe);
    euler::godunov_flux_sweep(ly, ry, Dir::y, gas, fy, probe);
    euler::flux_divergence(fx, fy, interior, dx, dy, dudt);
  };

  double t = 0.0;
  const double t_end = 0.2;
  while (t < t_end) {
    const double vmax = euler::max_wave_speed(u, interior, gas);
    const double dt = std::min(0.4 * dx / vmax, t_end - t);
    PatchData<double> u_old = u;
    PatchData<double> dudt(interior, 0, kNcomp, 0.0);
    rhs(u, dudt);
    for (int c = 0; c < kNcomp; ++c)
      for (int j = 0; j <= 3; ++j)
        for (int i = 0; i < n; ++i) u(i, j, c) += dt * dudt(i, j, c);
    rhs(u, dudt);
    for (int c = 0; c < kNcomp; ++c)
      for (int j = 0; j <= 3; ++j)
        for (int i = 0; i < n; ++i)
          u(i, j, c) = 0.5 * (u_old(i, j, c) + u(i, j, c) + dt * dudt(i, j, c));
    t += dt;
  }

  // Compare density to the exact solution: L1 error small, pointwise
  // agreement away from the (smeared) discontinuities.
  double l1 = 0.0;
  int bad_smooth_cells = 0;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) * dx;
    const double s = (x - 0.5) / t_end;
    const Prim exact = exact_sod_at(s, gas);
    double q[kNcomp];
    for (int c = 0; c < kNcomp; ++c) q[c] = u(i, 1, c);
    const Prim got = euler::cons_to_prim(q, gas);
    l1 += std::abs(got.rho - exact.rho) * dx;
    // Discontinuities at the contact (s ~ 0.93) and shock (s ~ 1.75):
    // allow a smearing window around each.
    const bool near_jump = std::abs(s - 0.93) < 0.15 || std::abs(s - 1.75) < 0.15;
    if (!near_jump && std::abs(got.rho - exact.rho) > 0.03) ++bad_smooth_cells;
  }
  EXPECT_LT(l1, 0.012) << "L1 density error too large";
  EXPECT_LE(bad_smooth_cells, n / 50);

  // Solution stays y-invariant (no spurious transverse dynamics).
  for (int i = 0; i < n; i += 7)
    EXPECT_NEAR(u(i, 0, euler::kRho), u(i, 3, euler::kRho), 1e-10);
}

}  // namespace
