// Property sweep for the exact Riemann solver over randomized states: the
// returned star values must satisfy the pressure equation, the sampled
// state must be physical, and the solver must stay within its iteration
// budget — across both single-gas and two-gas configurations.

#include <gtest/gtest.h>

#include <cmath>

#include "euler/riemann.hpp"
#include "support/rng.hpp"

namespace {

using euler::GasModel;
using euler::Prim;

/// Toro's f_K for verification (independent re-implementation kept in the
/// test so a solver bug cannot hide in shared code).
double pressure_f(double p, double rho_k, double p_k, double g) {
  const double a = std::sqrt(g * p_k / rho_k);
  if (p > p_k) {
    const double A = 2.0 / ((g + 1.0) * rho_k);
    const double B = (g - 1.0) / (g + 1.0) * p_k;
    return (p - p_k) * std::sqrt(A / (B + p));
  }
  return 2.0 * a / (g - 1.0) * (std::pow(p / p_k, (g - 1.0) / (2.0 * g)) - 1.0);
}

struct SweepCase {
  std::uint64_t seed;
  bool two_gas;
};

class RiemannProperty : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RiemannProperty, StarStateSatisfiesPressureEquation) {
  const auto [seed, two_gas] = GetParam();
  ccaperf::Rng rng(seed);
  GasModel gas;
  if (!two_gas) gas.gamma2 = gas.gamma1;

  int solved = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Prim l, r;
    l.rho = rng.uniform(0.05, 5.0);
    r.rho = rng.uniform(0.05, 5.0);
    l.p = rng.uniform(0.05, 20.0);
    r.p = rng.uniform(0.05, 20.0);
    l.u = rng.uniform(-2.0, 2.0);
    r.u = rng.uniform(-2.0, 2.0);
    l.v = rng.uniform(-1.0, 1.0);
    r.v = rng.uniform(-1.0, 1.0);
    l.phi = two_gas ? (rng.uniform() < 0.5 ? 1.0 : 0.0) : 1.0;
    r.phi = two_gas ? (rng.uniform() < 0.5 ? 1.0 : 0.0) : 1.0;

    // Skip vacuum-generating cases (the solver floors them; the equation
    // check below only holds away from vacuum).
    const double gl = gas.gamma_of(l.phi), gr = gas.gamma_of(r.phi);
    const double al = std::sqrt(gl * l.p / l.rho), ar = std::sqrt(gr * r.p / r.rho);
    if (2.0 * al / (gl - 1.0) + 2.0 * ar / (gr - 1.0) <= (r.u - l.u) * 1.05)
      continue;

    const auto res = euler::exact_riemann(l, r, gas);
    ++solved;

    // Pressure equation: f_L(p*) + f_R(p*) + du = 0.
    const double residual = pressure_f(res.p_star, l.rho, l.p, gl) +
                            pressure_f(res.p_star, r.rho, r.p, gr) +
                            (r.u - l.u);
    const double scale = std::max({1.0, std::abs(l.u), std::abs(r.u), al, ar});
    EXPECT_NEAR(residual, 0.0, 1e-4 * scale)
        << "p*=" << res.p_star << " seed=" << seed << " trial=" << trial;

    // Star velocity from either side must agree.
    const double ustar_l = l.u - pressure_f(res.p_star, l.rho, l.p, gl);
    const double ustar_r = r.u + pressure_f(res.p_star, r.rho, r.p, gr);
    EXPECT_NEAR(res.u_star, 0.5 * (ustar_l + ustar_r), 1e-4 * scale);

    // Sampled state physical; phi/v upwinded from the correct side.
    EXPECT_GT(res.sampled.rho, 0.0);
    EXPECT_GT(res.sampled.p, 0.0);
    if (res.u_star > 1e-12) {
      EXPECT_DOUBLE_EQ(res.sampled.v, l.v);
      EXPECT_DOUBLE_EQ(res.sampled.phi, l.phi);
    } else if (res.u_star < -1e-12) {
      EXPECT_DOUBLE_EQ(res.sampled.v, r.v);
      EXPECT_DOUBLE_EQ(res.sampled.phi, r.phi);
    }
    EXPECT_LE(res.iterations, 40);
  }
  EXPECT_GT(solved, 300);  // the sweep must actually exercise the solver
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiemannProperty,
                         ::testing::Values(SweepCase{11, false}, SweepCase{12, false},
                                           SweepCase{13, true}, SweepCase{14, true},
                                           SweepCase{15, true}));

}  // namespace
