// EFM face flux: consistency with the exact Euler flux for uniform
// states, correct free-streaming limits, symmetry, and upwinding of the
// passively advected quantities.

#include <gtest/gtest.h>

#include <cmath>

#include "euler/efm.hpp"

namespace {

using euler::FaceFlux;
using euler::GasModel;
using euler::Prim;

GasModel air_only() {
  GasModel gas;
  gas.gamma2 = 1.4;
  return gas;
}

FaceFlux exact_flux(const Prim& w, const GasModel& gas) {
  return euler::godunov_face_flux(w, gas);
}

TEST(Efm, ConsistencyWithExactFluxUniformState) {
  // F_EFM(w, w) must equal the analytic Euler flux of w (the half-range
  // moments sum to the full moments).
  GasModel gas = air_only();
  for (const Prim w : {Prim{1.0, 0.5, 0.2, 1.0, 1.0}, Prim{2.0, -1.5, 0.0, 3.0, 1.0},
                       Prim{0.3, 0.0, 1.0, 0.4, 1.0}}) {
    const FaceFlux efm = euler::efm_face_flux(w, w, gas);
    const FaceFlux exact = exact_flux(w, gas);
    EXPECT_NEAR(efm.mass, exact.mass, 1e-12) << "u=" << w.u;
    EXPECT_NEAR(efm.mom_n, exact.mom_n, 1e-12);
    EXPECT_NEAR(efm.mom_t, exact.mom_t, 1e-12);
    EXPECT_NEAR(efm.energy, exact.energy, 1e-11);
    EXPECT_NEAR(efm.phi_mass, exact.phi_mass, 1e-12);
  }
}

TEST(Efm, ConsistencyHoldsForFreonToo) {
  GasModel gas;  // two-gamma model
  const Prim w{3.33, 0.4, -0.2, 1.7, 0.0};
  const FaceFlux efm = euler::efm_face_flux(w, w, gas);
  const FaceFlux exact = exact_flux(w, gas);
  EXPECT_NEAR(efm.energy, exact.energy, 1e-11);
  EXPECT_NEAR(efm.mass, exact.mass, 1e-12);
}

TEST(Efm, SymmetricStatesGiveZeroMassFlux) {
  // Mirror-symmetric left/right: no net mass or energy transport.
  GasModel gas = air_only();
  const Prim l{1.0, 0.7, 0.0, 1.0, 1.0};
  Prim r = l;
  r.u = -l.u;
  const FaceFlux f = euler::efm_face_flux(l, r, gas);
  EXPECT_NEAR(f.mass, 0.0, 1e-12);
  EXPECT_NEAR(f.energy, 0.0, 1e-12);
  EXPECT_GT(f.mom_n, 0.0);  // pressure + ram pressure
}

TEST(Efm, StrongRightFreeStreamUsesLeftStateOnly) {
  // u >> thermal speed: F- of the right state is negligible.
  GasModel gas = air_only();
  const Prim l{1.0, 8.0, 0.1, 1.0, 1.0};
  const Prim r{5.0, 8.0, -3.0, 9.0, 0.0};
  const FaceFlux f = euler::efm_face_flux(l, r, gas);
  const FaceFlux exact_l = exact_flux(l, gas);
  EXPECT_NEAR(f.mass, exact_l.mass, 1e-6 * std::abs(exact_l.mass));
  EXPECT_NEAR(f.mom_t, exact_l.mom_t, 1e-5 * std::abs(exact_l.mom_t) + 1e-12);
}

TEST(Efm, PhiFluxUpwindsWithMassFlux) {
  GasModel gas = air_only();
  // Rightward flow: phi flux carries the left phi.
  const Prim l{1.0, 2.0, 0.0, 1.0, 1.0};
  const Prim r{1.0, 2.0, 0.0, 1.0, 0.0};
  const FaceFlux f = euler::efm_face_flux(l, r, gas);
  EXPECT_GT(f.mass, 0.0);
  // Slightly above 1: the (negative) F- tail removes phi=0 mass while F+
  // carries phi=1 — kinetic upwinding, not exact interface upwinding.
  EXPECT_NEAR(f.phi_mass / f.mass, 1.0, 1e-2);
}

TEST(Efm, MirrorAntisymmetry) {
  // Swapping sides and negating normal velocities negates odd fluxes.
  GasModel gas = air_only();
  const Prim l{1.2, 0.4, 0.3, 1.1, 1.0};
  const Prim r{0.8, -0.2, -0.1, 0.9, 1.0};
  Prim lm = r, rm = l;
  lm.u = -r.u;
  rm.u = -l.u;
  const FaceFlux fwd = euler::efm_face_flux(l, r, gas);
  const FaceFlux mir = euler::efm_face_flux(lm, rm, gas);
  EXPECT_NEAR(fwd.mass, -mir.mass, 1e-12);
  EXPECT_NEAR(fwd.energy, -mir.energy, 1e-12);
  EXPECT_NEAR(fwd.mom_n, mir.mom_n, 1e-12);  // even under mirror
}

TEST(Efm, StationaryContactDiffusesMassButBalancesPressure) {
  // EFM's known dissipation at contacts: zero velocity, equal pressure,
  // different densities -> zero *net* momentum imbalance, but finite mass
  // exchange (the numerical dissipation the paper's QoS discussion trades
  // against Godunov's sharpness).
  GasModel gas = air_only();
  const Prim l{1.0, 0.0, 0.0, 1.0, 1.0};
  const Prim r{0.125, 0.0, 0.0, 1.0, 1.0};
  const FaceFlux f = euler::efm_face_flux(l, r, gas);
  EXPECT_NEAR(f.mom_n, 1.0, 0.05);  // ~ pressure
  EXPECT_GT(std::abs(f.mass), 1e-4);  // diffusive, unlike Godunov
}

}  // namespace
