#include <gtest/gtest.h>

#include "euler/state.hpp"

namespace {

using euler::GasModel;
using euler::Prim;

TEST(GasModel, PureGasGammas) {
  GasModel gas;
  EXPECT_DOUBLE_EQ(gas.gamma_of(1.0), 1.4);
  EXPECT_DOUBLE_EQ(gas.gamma_of(0.0), 1.13);
}

TEST(GasModel, MixtureGammaBetweenPureValues) {
  GasModel gas;
  const double g = gas.gamma_of(0.5);
  EXPECT_GT(g, 1.13);
  EXPECT_LT(g, 1.4);
  // 1/(g-1) is the arithmetic mean of the pure inverses.
  const double inv = 0.5 / 0.4 + 0.5 / 0.13;
  EXPECT_NEAR(g, 1.0 + 1.0 / inv, 1e-14);
}

TEST(GasModel, PhiClampedOutsideUnitInterval) {
  GasModel gas;
  EXPECT_DOUBLE_EQ(gas.gamma_of(1.7), gas.gamma_of(1.0));
  EXPECT_DOUBLE_EQ(gas.gamma_of(-0.2), gas.gamma_of(0.0));
}

TEST(State, PrimConsRoundTrip) {
  GasModel gas;
  const Prim w{1.3, 0.7, -0.4, 2.1, 0.6};
  double U[euler::kNcomp];
  euler::prim_to_cons(w, gas, U);
  const Prim back = euler::cons_to_prim(U, gas);
  EXPECT_NEAR(back.rho, w.rho, 1e-14);
  EXPECT_NEAR(back.u, w.u, 1e-14);
  EXPECT_NEAR(back.v, w.v, 1e-14);
  EXPECT_NEAR(back.p, w.p, 1e-13);
  EXPECT_NEAR(back.phi, w.phi, 1e-14);
}

TEST(State, ConservedLayout) {
  GasModel gas;
  const Prim w{2.0, 3.0, 4.0, 5.0, 1.0};
  double U[euler::kNcomp];
  euler::prim_to_cons(w, gas, U);
  EXPECT_DOUBLE_EQ(U[euler::kRho], 2.0);
  EXPECT_DOUBLE_EQ(U[euler::kMx], 6.0);
  EXPECT_DOUBLE_EQ(U[euler::kMy], 8.0);
  EXPECT_DOUBLE_EQ(U[euler::kRphi], 2.0);
  // E = p/(gamma-1) + rho |v|^2 / 2 with gamma = 1.4 (phi = 1).
  EXPECT_NEAR(U[euler::kE], 5.0 / 0.4 + 0.5 * 2.0 * 25.0, 1e-13);
}

TEST(State, SoundSpeedIdealGas) {
  GasModel gas;
  const Prim w{1.4, 0.0, 0.0, 1.0, 1.0};
  EXPECT_NEAR(euler::sound_speed(w, gas), 1.0, 1e-14);  // sqrt(1.4*1/1.4)
}

}  // namespace
