// SIMD dispatch bit-identity: the acceptance contract of DESIGN.md §11.
// Every compiled-and-supported ISA level must produce faces, fluxes and
// traced cache counters bit-identical to the scalar reference — including
// remainder lanes (widths not divisible by the vector width), both sweep
// directions, and the RK2 update kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "euler/kernels.hpp"
#include "euler/simd.hpp"
#include "hwc/cache_sim.hpp"

namespace {

using amr::Box;
using amr::PatchData;
using euler::Array2;
using euler::Dir;
using euler::GasModel;
using euler::kNcomp;
using euler::Prim;
using euler::simd::Isa;

/// ISA levels this binary can actually run on this host, scalar first.
std::vector<Isa> available_isas() {
  std::vector<Isa> v{Isa::scalar};
  if (euler::simd::set_isa(Isa::avx2) == Isa::avx2) v.push_back(Isa::avx2);
  if (euler::simd::set_isa(Isa::avx512) == Isa::avx512) v.push_back(Isa::avx512);
  euler::simd::set_isa(Isa::scalar);
  return v;
}

/// Restores the default dispatch level when a test exits.
struct IsaGuard {
  Isa saved = euler::simd::active();
  ~IsaGuard() { euler::simd::set_isa(saved); }
};

GasModel two_gas() { return GasModel{}; }

/// Smooth but non-trivial patch: varying density/velocities/pressure and a
/// mixed-gas phi ramp, so reconstruction slopes take all minmod sign cases
/// and gamma_of exercises its blend (not just the clamp ends).
PatchData<double> wavy_patch(const Box& interior, const GasModel& gas) {
  PatchData<double> p(interior, 2, kNcomp);
  const Box g = p.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const double x = 0.37 * i, y = 0.23 * j;
      const Prim w{1.0 + 0.3 * std::sin(x + 0.5 * y),
                   0.4 * std::cos(0.7 * x) - 0.1 * std::sin(y),
                   0.2 * std::sin(x - y),
                   1.0 + 0.4 * std::cos(0.3 * x * y + 1.0),
                   0.5 + 0.5 * std::sin(0.11 * (i + 2 * j))};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) p(i, j, c) = U[c];
    }
  return p;
}

bool bit_equal(const Array2& a, const Array2& b) {
  return a.size() == b.size() &&
         std::memcmp(a.raw().data(), b.raw().data(),
                     a.size() * sizeof(double)) == 0;
}

TEST(SimdDispatch, ParseIsaCoversAllSpellingsAndRejectsJunk) {
  Isa out = Isa::scalar;
  bool native = false;
  EXPECT_TRUE(euler::simd::parse_isa("scalar", out, native));
  EXPECT_EQ(out, Isa::scalar);
  EXPECT_FALSE(native);
  EXPECT_TRUE(euler::simd::parse_isa("avx2", out, native));
  EXPECT_EQ(out, Isa::avx2);
  EXPECT_TRUE(euler::simd::parse_isa("avx512", out, native));
  EXPECT_EQ(out, Isa::avx512);
  EXPECT_TRUE(euler::simd::parse_isa("native", out, native));
  EXPECT_TRUE(native);
  EXPECT_FALSE(euler::simd::parse_isa("sse2", out, native));
  EXPECT_FALSE(euler::simd::parse_isa("", out, native));
}

TEST(SimdDispatch, SetIsaClampsToHostSupport) {
  IsaGuard guard;
  const Isa top = euler::simd::highest_supported();
  // Asking for more than the host supports installs the host maximum.
  EXPECT_EQ(euler::simd::set_isa(Isa::avx512),
            top >= Isa::avx512 ? Isa::avx512 : top);
  // Scalar is always available.
  EXPECT_EQ(euler::simd::set_isa(Isa::scalar), Isa::scalar);
  EXPECT_EQ(euler::simd::active(), Isa::scalar);
}

TEST(SimdKernels, StatesBitIdenticalAcrossIsaAndShapes) {
  IsaGuard guard;
  const GasModel gas = two_gas();
  const auto isas = available_isas();
  // Widths straddling the AVX2 (4) and AVX-512 (8) group sizes, including
  // pure-remainder rows (width < W) and exact multiples.
  for (const Box interior : {Box{0, 0, 2, 4}, Box{0, 0, 6, 6}, Box{0, 0, 7, 3},
                             Box{0, 0, 16, 5}, Box{0, 0, 18, 9}}) {
    auto u = wavy_patch(interior, gas);
    for (Dir dir : {Dir::x, Dir::y}) {
      int nx = 0, ny = 0;
      euler::face_dims(interior, dir, nx, ny);
      Array2 ref_l(nx, ny, kNcomp), ref_r(nx, ny, kNcomp);
      hwc::NullProbe probe;
      euler::simd::set_isa(Isa::scalar);
      euler::compute_states(u, interior, dir, gas, ref_l, ref_r, probe);
      for (std::size_t k = 1; k < isas.size(); ++k) {
        euler::simd::set_isa(isas[k]);
        Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
        const auto counts =
            euler::compute_states(u, interior, dir, gas, l, r, probe);
        EXPECT_EQ(counts.faces, static_cast<std::uint64_t>(nx) * ny);
        EXPECT_TRUE(bit_equal(ref_l, l))
            << "left faces differ from scalar under "
            << euler::simd::isa_name(isas[k]);
        EXPECT_TRUE(bit_equal(ref_r, r))
            << "right faces differ from scalar under "
            << euler::simd::isa_name(isas[k]);
      }
    }
  }
}

TEST(SimdKernels, EfmFluxBitIdenticalAcrossIsa) {
  IsaGuard guard;
  const GasModel gas = two_gas();
  const auto isas = available_isas();
  for (const Box interior : {Box{0, 0, 7, 3}, Box{0, 0, 18, 9}}) {
    auto u = wavy_patch(interior, gas);
    for (Dir dir : {Dir::x, Dir::y}) {
      int nx = 0, ny = 0;
      euler::face_dims(interior, dir, nx, ny);
      Array2 left(nx, ny, kNcomp), right(nx, ny, kNcomp);
      hwc::NullProbe probe;
      euler::simd::set_isa(Isa::scalar);
      euler::compute_states(u, interior, dir, gas, left, right, probe);
      Array2 ref_f(nx, ny, kNcomp);
      euler::efm_flux_sweep(left, right, dir, gas, ref_f, probe);
      for (std::size_t k = 1; k < isas.size(); ++k) {
        euler::simd::set_isa(isas[k]);
        Array2 f(nx, ny, kNcomp);
        euler::efm_flux_sweep(left, right, dir, gas, f, probe);
        EXPECT_TRUE(bit_equal(ref_f, f))
            << "EFM flux differs from scalar under "
            << euler::simd::isa_name(isas[k]);
      }
    }
  }
}

TEST(SimdKernels, TracedCacheCountersBitIdenticalAcrossIsa) {
  // The vector kernels replay each face's probe sequence in scalar order,
  // so CacheSim totals — not just the numerics — must match exactly.
  IsaGuard guard;
  const GasModel gas = two_gas();
  const Box interior{0, 0, 18, 7};
  auto u = wavy_patch(interior, gas);
  const auto isas = available_isas();
  for (Dir dir : {Dir::x, Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);

    // One set of output buffers for every ISA level: CacheSim hit/miss
    // behaviour depends on the buffers' virtual addresses (set mapping),
    // so cross-ISA counter comparison requires identical allocations.
    Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp), f(nx, ny, kNcomp);

    auto traced = [&](Isa isa, hwc::CacheCounters& l1, hwc::CacheCounters& l2,
                      hwc::ProbeCounts& pc) {
      euler::simd::set_isa(isa);
      hwc::XeonHierarchy mem;
      hwc::CacheProbe probe(&mem.l1);
      euler::compute_states(u, interior, dir, gas, l, r, probe);
      euler::efm_flux_sweep(l, r, dir, gas, f, probe);
      l1 = mem.l1.counters();
      l2 = mem.l2.counters();
      pc = probe.counts();
    };

    hwc::CacheCounters ref_l1, ref_l2;
    hwc::ProbeCounts ref_pc;
    traced(Isa::scalar, ref_l1, ref_l2, ref_pc);
    const std::vector<double> ref_flux = f.raw();

    for (std::size_t k = 1; k < isas.size(); ++k) {
      hwc::CacheCounters l1, l2;
      hwc::ProbeCounts pc;
      traced(isas[k], l1, l2, pc);
      EXPECT_EQ(ref_flux, f.raw());
      EXPECT_EQ(ref_pc.loads, pc.loads) << euler::simd::isa_name(isas[k]);
      EXPECT_EQ(ref_pc.stores, pc.stores) << euler::simd::isa_name(isas[k]);
      EXPECT_EQ(ref_pc.flops, pc.flops) << euler::simd::isa_name(isas[k]);
      EXPECT_EQ(ref_l1.accesses, l1.accesses) << euler::simd::isa_name(isas[k]);
      EXPECT_EQ(ref_l1.misses, l1.misses) << euler::simd::isa_name(isas[k]);
      EXPECT_EQ(ref_l1.hits, l1.hits) << euler::simd::isa_name(isas[k]);
      EXPECT_EQ(ref_l2.misses, l2.misses) << euler::simd::isa_name(isas[k]);
    }
  }
}

TEST(SimdKernels, Rk2KernelsMatchScalarExpressionsAcrossIsa) {
  IsaGuard guard;
  const auto isas = available_isas();
  const std::size_t n = 29;  // odd: exercises every remainder lane count
  std::vector<double> y0(n), x(n), u0(n), uold(n), dudt(n);
  for (std::size_t i = 0; i < n; ++i) {
    y0[i] = std::sin(0.3 * static_cast<double>(i));
    x[i] = std::cos(0.7 * static_cast<double>(i)) * 1.7;
    u0[i] = 1.0 + 0.01 * static_cast<double>(i);
    uold[i] = u0[i] - 0.5 * x[i];
    dudt[i] = std::sin(1.1 * static_cast<double>(i) + 0.2);
  }
  const double a = 0.37, dt = 0.0123;

  std::vector<double> ref_axpy = y0, ref_heun = u0;
  for (std::size_t i = 0; i < n; ++i) ref_axpy[i] += a * x[i];
  for (std::size_t i = 0; i < n; ++i)
    ref_heun[i] = 0.5 * (uold[i] + ref_heun[i] + dt * dudt[i]);

  for (Isa isa : isas) {
    euler::simd::set_isa(isa);
    std::vector<double> ya = y0, ua = u0;
    euler::rk2_axpy(ya.data(), x.data(), a, n);
    euler::rk2_heun_average(ua.data(), uold.data(), dudt.data(), dt, n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ref_axpy[i], ya[i]) << euler::simd::isa_name(isa) << " @" << i;
      EXPECT_EQ(ref_heun[i], ua[i]) << euler::simd::isa_name(isa) << " @" << i;
    }
  }
}

TEST(SimdKernels, StackDistProbeFallsBackToScalarDispatch) {
  // StackDistProbe is not SIMD-dispatchable (kSimdDispatchable is false for
  // it); the sweep must still run — through the scalar reference — and
  // profile the same number of accesses regardless of the active ISA.
  IsaGuard guard;
  const GasModel gas = two_gas();
  const Box interior{0, 0, 12, 5};
  auto u = wavy_patch(interior, gas);
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);

  auto run = [&](Isa isa) {
    euler::simd::set_isa(isa);
    hwc::StackDistSim sim(64);
    hwc::StackDistProbe probe(&sim);
    Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
    euler::compute_states(u, interior, Dir::x, gas, l, r, probe);
    return sim.accesses();
  };

  const auto scalar_accesses = run(Isa::scalar);
  EXPECT_GT(scalar_accesses, 0u);
  EXPECT_EQ(run(euler::simd::highest_supported()), scalar_accesses);
}

}  // namespace
