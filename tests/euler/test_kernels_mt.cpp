// Thread-parallel kernel wrappers (DESIGN.md §9): the _mt sweeps must be
// bit-identical to the serial kernels for any lane count, their integer
// KernelCounts must match exactly, and the sharded counted sweeps must
// report the same cache/probe counters no matter how many lanes replay
// the slabs.

#include <gtest/gtest.h>

#include <cmath>

#include "euler/kernels.hpp"
#include "support/thread_pool.hpp"

namespace {

using amr::Box;
using amr::PatchData;
using euler::Array2;
using euler::Dir;
using euler::GasModel;
using euler::kNcomp;
using euler::Prim;

GasModel two_gas() {
  GasModel gas;
  gas.gamma2 = 1.4;
  return gas;
}

/// Smoothly varying two-gas patch: every face sees distinct data, so a
/// misrouted row in a parallel sweep cannot cancel out.
PatchData<double> wavy_patch(const Box& interior, const GasModel& gas) {
  PatchData<double> p(interior, 2, kNcomp);
  const Box g = p.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const Prim w{1.0 + 0.3 * std::sin(0.4 * i) * std::cos(0.3 * j),
                   0.2 * std::sin(0.2 * i + 0.1 * j),
                   -0.15 * std::cos(0.25 * j + 0.05 * i),
                   1.0 + 0.2 * std::cos(0.3 * i - 0.2 * j),
                   0.5 + 0.5 * std::sin(0.15 * i * j)};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) p(i, j, c) = U[c];
    }
  return p;
}

struct FacePair {
  Array2 left, right;
  FacePair(const Box& interior, Dir dir) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    left = Array2(nx, ny, kNcomp);
    right = Array2(nx, ny, kNcomp);
  }
};

TEST(KernelsMt, StatesMatchSerialBitExactly) {
  const GasModel gas = two_gas();
  const Box interior{0, 0, 18, 13};
  const auto u = wavy_patch(interior, gas);
  for (Dir dir : {Dir::x, Dir::y}) {
    FacePair serial(interior, dir);
    hwc::NullProbe probe;
    const auto sc =
        euler::compute_states(u, interior, dir, gas, serial.left, serial.right,
                              probe);
    for (int lanes : {1, 2, 3}) {
      ccaperf::ThreadPool pool(lanes);
      FacePair mt(interior, dir);
      const auto mc =
          euler::compute_states_mt(pool, u, interior, dir, gas, mt.left,
                                   mt.right);
      EXPECT_EQ(mc.faces, sc.faces) << "lanes=" << lanes;
      EXPECT_EQ(mt.left.raw(), serial.left.raw()) << "lanes=" << lanes;
      EXPECT_EQ(mt.right.raw(), serial.right.raw()) << "lanes=" << lanes;
    }
  }
}

TEST(KernelsMt, FluxSweepsMatchSerialBitExactly) {
  const GasModel gas = two_gas();
  const Box interior{0, 0, 18, 13};
  const auto u = wavy_patch(interior, gas);
  for (Dir dir : {Dir::x, Dir::y}) {
    FacePair faces(interior, dir);
    hwc::NullProbe probe;
    euler::compute_states(u, interior, dir, gas, faces.left, faces.right, probe);

    Array2 efm_serial(faces.left.nx(), faces.left.ny(), kNcomp);
    Array2 god_serial(faces.left.nx(), faces.left.ny(), kNcomp);
    const auto es = euler::efm_flux_sweep(faces.left, faces.right, dir, gas,
                                          efm_serial, probe);
    const auto gs = euler::godunov_flux_sweep(faces.left, faces.right, dir, gas,
                                              god_serial, probe);
    for (int lanes : {2, 3}) {
      ccaperf::ThreadPool pool(lanes);
      Array2 efm_mt(faces.left.nx(), faces.left.ny(), kNcomp);
      Array2 god_mt(faces.left.nx(), faces.left.ny(), kNcomp);
      const auto em = euler::efm_flux_sweep_mt(pool, faces.left, faces.right,
                                               dir, gas, efm_mt);
      const auto gm = euler::godunov_flux_sweep_mt(pool, faces.left,
                                                   faces.right, dir, gas,
                                                   god_mt);
      EXPECT_EQ(em.faces, es.faces);
      EXPECT_EQ(gm.faces, gs.faces);
      EXPECT_EQ(gm.riemann_iterations, gs.riemann_iterations)
          << "lanes=" << lanes;
      EXPECT_EQ(efm_mt.raw(), efm_serial.raw()) << "lanes=" << lanes;
      EXPECT_EQ(god_mt.raw(), god_serial.raw()) << "lanes=" << lanes;
    }
  }
}

TEST(KernelsMt, FluxDivergenceMatchesSerialBitExactly) {
  const GasModel gas = two_gas();
  const Box interior{0, 0, 18, 13};
  const auto u = wavy_patch(interior, gas);
  hwc::NullProbe probe;
  FacePair xf(interior, Dir::x), yf(interior, Dir::y);
  euler::compute_states(u, interior, Dir::x, gas, xf.left, xf.right, probe);
  euler::compute_states(u, interior, Dir::y, gas, yf.left, yf.right, probe);
  Array2 fx(xf.left.nx(), xf.left.ny(), kNcomp);
  Array2 fy(yf.left.nx(), yf.left.ny(), kNcomp);
  euler::efm_flux_sweep(xf.left, xf.right, Dir::x, gas, fx, probe);
  euler::efm_flux_sweep(yf.left, yf.right, Dir::y, gas, fy, probe);

  PatchData<double> serial(interior, 0, kNcomp);
  euler::flux_divergence(fx, fy, interior, 0.01, 0.02, serial);
  for (int lanes : {2, 3}) {
    ccaperf::ThreadPool pool(lanes);
    PatchData<double> mt(interior, 0, kNcomp);
    euler::flux_divergence_mt(pool, fx, fy, interior, 0.01, 0.02, mt);
    for (int c = 0; c < kNcomp; ++c)
      for (int j = interior.lo().j; j <= interior.hi().j; ++j)
        for (int i = interior.lo().i; i <= interior.hi().i; ++i)
          EXPECT_EQ(mt(i, j, c), serial(i, j, c)) << "lanes=" << lanes;
  }
}

TEST(KernelsMt, CountedSweepsAreLaneCountInvariant) {
  // The cache simulation keys on real addresses, so invariance is "same
  // buffers, any lane count" — the sweeps are rerun over ONE set of
  // arrays (they rewrite the same values, so reruns are idempotent).
  const GasModel gas = two_gas();
  const Box interior{0, 0, 21, 17};
  const auto u = wavy_patch(interior, gas);
  for (Dir dir : {Dir::x, Dir::y}) {
    FacePair f(interior, dir);
    Array2 efm(f.left.nx(), f.left.ny(), kNcomp);
    Array2 god(f.left.nx(), f.left.ny(), kNcomp);
    auto run_all = [&](ccaperf::ThreadPool& pool) {
      struct {
        euler::CountedSweep states, efm, god;
      } r;
      r.states = euler::compute_states_counted(pool, u, interior, dir, gas,
                                               f.left, f.right);
      r.efm = euler::efm_flux_sweep_counted(pool, f.left, f.right, dir, gas,
                                            efm);
      r.god = euler::godunov_flux_sweep_counted(pool, f.left, f.right, dir,
                                                gas, god);
      return r;
    };

    // Reference: the sharded sweep on a one-lane pool (pure serial replay).
    ccaperf::ThreadPool pool1(1);
    const auto ref = run_all(pool1);
    const std::vector<double> left_ref = f.left.raw();
    const std::vector<double> efm_ref = efm.raw();
    const std::vector<double> god_ref = god.raw();
    EXPECT_GT(ref.states.probe.loads, 0u);
    EXPECT_GT(ref.states.l1_misses, 0u);
    EXPECT_EQ(ref.efm.probe.flops,
              ref.efm.kernel.faces * euler::kEfmFlopsPerFace);
    EXPECT_EQ(ref.god.probe.flops,
              ref.god.kernel.faces * euler::kGodunovFlopsPerFace +
                  ref.god.kernel.riemann_iterations *
                      euler::kGodunovFlopsPerIteration);

    for (int lanes : {2, 3}) {
      ccaperf::ThreadPool pool(lanes);
      const auto got = run_all(pool);
      EXPECT_EQ(f.left.raw(), left_ref);
      EXPECT_EQ(efm.raw(), efm_ref);
      EXPECT_EQ(god.raw(), god_ref);
      for (auto [a, b] : {std::pair{got.states, ref.states},
                          {got.efm, ref.efm},
                          {got.god, ref.god}}) {
        EXPECT_EQ(a.kernel.faces, b.kernel.faces) << "lanes=" << lanes;
        EXPECT_EQ(a.kernel.riemann_iterations, b.kernel.riemann_iterations);
        EXPECT_EQ(a.probe.loads, b.probe.loads) << "lanes=" << lanes;
        EXPECT_EQ(a.probe.stores, b.probe.stores) << "lanes=" << lanes;
        EXPECT_EQ(a.probe.flops, b.probe.flops) << "lanes=" << lanes;
        EXPECT_EQ(a.l1_misses, b.l1_misses) << "lanes=" << lanes;
        EXPECT_EQ(a.l2_misses, b.l2_misses) << "lanes=" << lanes;
      }
    }
  }
}

}  // namespace
