// Sampled counted sweeps (DESIGN.md §11): CCAPERF_CACHESIM_SAMPLE gates
// which access_run batches the counted-slab simulators replay; scaled
// miss totals must track the exact-mode totals across strides, exact mode
// must stay bit-identical run to run, and the stack-distance histogram
// must reproduce the full simulator's L1/L2 miss rates on real sweep
// traffic to within the fully-associative approximation error.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "euler/kernels.hpp"
#include "hwc/cache_sim.hpp"
#include "support/thread_pool.hpp"

namespace {

using amr::Box;
using amr::PatchData;
using euler::Array2;
using euler::Dir;
using euler::GasModel;
using euler::kNcomp;
using euler::Prim;

GasModel two_gas() {
  GasModel gas;
  gas.gamma2 = 1.4;
  return gas;
}

PatchData<double> wavy_patch(const Box& interior, const GasModel& gas) {
  PatchData<double> p(interior, 2, kNcomp);
  const Box g = p.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const Prim w{1.0 + 0.3 * std::sin(0.4 * i) * std::cos(0.3 * j),
                   0.2 * std::sin(0.2 * i + 0.1 * j),
                   -0.15 * std::cos(0.25 * j + 0.05 * i),
                   1.0 + 0.2 * std::cos(0.3 * i - 0.2 * j),
                   0.5 + 0.5 * std::sin(0.15 * i * j)};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) p(i, j, c) = U[c];
    }
  return p;
}

struct SampleEnvGuard {
  ~SampleEnvGuard() { unsetenv("CCAPERF_CACHESIM_SAMPLE"); }
  void set(unsigned stride) {
    ASSERT_EQ(setenv("CCAPERF_CACHESIM_SAMPLE",
                     std::to_string(stride).c_str(), 1),
              0);
  }
};

euler::CountedSweep counted_states(const Box& interior, Dir dir) {
  const GasModel gas = two_gas();
  const auto u = wavy_patch(interior, gas);
  int nx = 0, ny = 0;
  euler::face_dims(interior, dir, nx, ny);
  Array2 left(nx, ny, kNcomp), right(nx, ny, kNcomp);
  ccaperf::ThreadPool pool(2);
  return euler::compute_states_counted(pool, u, interior, dir, gas, left,
                                       right);
}

TEST(SweepSampling, ExactModeIsDeterministicAndUnchangedByUnsetEnv) {
  SampleEnvGuard env;
  unsetenv("CCAPERF_CACHESIM_SAMPLE");
  const Box interior{0, 0, 63, 31};
  const auto a = counted_states(interior, Dir::x);
  const auto b = counted_states(interior, Dir::x);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.probe.loads, b.probe.loads);
  EXPECT_GT(a.l1_misses, 0u);
}

TEST(SweepSampling, ScaledSlabMissesTrackExactAcrossStrides) {
  SampleEnvGuard env;
  unsetenv("CCAPERF_CACHESIM_SAMPLE");
  // Large enough that each of the kCounterShards slabs holds full-size
  // sampling windows (the window-boundary cold-start is the dominant
  // sampling bias, and it shrinks with window size).
  const Box interior{0, 0, 255, 127};
  for (Dir dir : {Dir::x, Dir::y}) {
    unsetenv("CCAPERF_CACHESIM_SAMPLE");
    const auto exact = counted_states(interior, dir);
    ASSERT_GT(exact.l1_misses, 0u);
    for (unsigned stride : {4u, 16u, 64u}) {
      env.set(stride);
      const auto sampled = counted_states(interior, dir);
      // Probe-side event counts never sample; only the simulator does.
      EXPECT_EQ(sampled.probe.loads, exact.probe.loads);
      EXPECT_EQ(sampled.probe.stores, exact.probe.stores);
      EXPECT_EQ(sampled.probe.flops, exact.probe.flops);
      const double rel =
          std::abs(static_cast<double>(sampled.l1_misses) -
                   static_cast<double>(exact.l1_misses)) /
          static_cast<double>(exact.l1_misses);
      // Measured bias on this workload is <= 6% at every stride (the
      // realized-fraction rescale makes the error stride-independent);
      // 10% leaves headroom without letting a regression to lone-batch
      // sampling (~5x off) anywhere near passing.
      EXPECT_LE(rel, 0.10)
          << "dir " << (dir == Dir::x ? "x" : "y") << " stride " << stride;
    }
  }
}

TEST(SweepSampling, StackDistTracksFullSimMissRatesOnSweepTraffic) {
  const GasModel gas = two_gas();
  const Box interior{0, 0, 127, 63};
  const auto u = wavy_patch(interior, gas);
  for (Dir dir : {Dir::x, Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    Array2 left(nx, ny, kNcomp), right(nx, ny, kNcomp);

    hwc::XeonHierarchy mem;
    hwc::CacheProbe full(&mem.l1);
    euler::compute_states(u, interior, dir, gas, left, right, full);
    const double l1_rate = mem.l1.counters().miss_rate();

    hwc::StackDistSim sd(64);
    hwc::StackDistProbe est(&sd);
    euler::compute_states(u, interior, dir, gas, left, right, est);

    // Same probe event stream either way.
    EXPECT_EQ(est.counts().loads, full.counts().loads);
    EXPECT_EQ(est.counts().stores, full.counts().stores);
    EXPECT_EQ(sd.accesses(), mem.l1.counters().accesses);

    // L1 = 8 KiB / 64 B = 128 lines. The histogram models it as fully
    // associative where the real sim is 4-way, so agreement is
    // approximate — but the sweep's reuse pattern is regular enough that
    // the estimate must stay within 25% relative (and the estimator's
    // capacity ordering must hold).
    const double est_l1 = sd.estimate_miss_rate(8 * 1024 / 64);
    ASSERT_GT(l1_rate, 0.0);
    EXPECT_LE(std::abs(est_l1 - l1_rate) / l1_rate, 0.25)
        << "dir " << (dir == Dir::x ? "x" : "y");
    // Monotone in capacity: a bigger cache never misses more.
    EXPECT_GE(sd.estimate_miss_rate(8 * 1024 / 64),
              sd.estimate_miss_rate(512 * 1024 / 64));
  }
}

}  // namespace
