#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <tuple>

#include "amr/load_balance.hpp"
#include "mpp/runtime.hpp"
#include "support/rng.hpp"

namespace {

using amr::BalancePolicy;
using amr::Box;
using amr::PatchInfo;

std::vector<PatchInfo> uniform_patches(int n, int edge) {
  std::vector<PatchInfo> ps;
  for (int k = 0; k < n; ++k)
    ps.push_back(PatchInfo{k, Box{0, k * edge, edge - 1, (k + 1) * edge - 1}, -1});
  return ps;
}

TEST(LoadBalance, RoundRobinCycles) {
  auto ps = uniform_patches(7, 4);
  amr::balance_owners(ps, 3, BalancePolicy::round_robin);
  for (std::size_t k = 0; k < ps.size(); ++k)
    EXPECT_EQ(ps[k].owner, static_cast<int>(k % 3));
}

TEST(LoadBalance, KnapsackBalancesUniformLoad) {
  auto ps = uniform_patches(9, 8);
  const double imbalance = amr::balance_owners(ps, 3, BalancePolicy::knapsack);
  EXPECT_DOUBLE_EQ(imbalance, 1.0);  // 9 equal patches over 3 ranks
  std::vector<int> count(3, 0);
  for (const auto& p : ps) {
    ASSERT_GE(p.owner, 0);
    ASSERT_LT(p.owner, 3);
    ++count[static_cast<std::size_t>(p.owner)];
  }
  EXPECT_EQ(count, (std::vector<int>{3, 3, 3}));
}

TEST(LoadBalance, KnapsackBeatsRoundRobinOnSkewedSizes) {
  ccaperf::Rng rng(9);
  std::vector<PatchInfo> skewed;
  for (int k = 0; k < 20; ++k) {
    const int w = static_cast<int>(rng.uniform_int(2, 40));
    const int h = static_cast<int>(rng.uniform_int(2, 40));
    skewed.push_back(PatchInfo{k, Box{0, 0, w - 1, h - 1}, -1});
  }
  auto a = skewed, b = skewed;
  const double knap = amr::balance_owners(a, 4, BalancePolicy::knapsack);
  const double rr = amr::balance_owners(b, 4, BalancePolicy::round_robin);
  EXPECT_LE(knap, rr + 1e-12);
  EXPECT_LT(knap, 1.3);
}

TEST(LoadBalance, SingleRankGetsEverything) {
  auto ps = uniform_patches(5, 4);
  const double imbalance = amr::balance_owners(ps, 1);
  EXPECT_DOUBLE_EQ(imbalance, 1.0);
  for (const auto& p : ps) EXPECT_EQ(p.owner, 0);
}

TEST(LoadBalance, MoreRanksThanPatches) {
  auto ps = uniform_patches(2, 4);
  amr::balance_owners(ps, 5);
  EXPECT_NE(ps[0].owner, ps[1].owner);
}

TEST(LoadBalance, EmptyPatchListIsFine) {
  std::vector<PatchInfo> none;
  EXPECT_DOUBLE_EQ(amr::balance_owners(none, 3), 1.0);
}

TEST(LoadBalance, DeterministicAcrossCalls) {
  auto a = uniform_patches(11, 6), b = uniform_patches(11, 6);
  amr::balance_owners(a, 3);
  amr::balance_owners(b, 3);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k].owner, b[k].owner);
}

std::vector<PatchInfo> random_patches(int n, std::uint64_t seed) {
  ccaperf::Rng rng(seed);
  std::vector<PatchInfo> ps;
  for (int k = 0; k < n; ++k) {
    const int w = static_cast<int>(rng.uniform_int(2, 48));
    const int h = static_cast<int>(rng.uniform_int(2, 48));
    ps.push_back(PatchInfo{k, Box{0, 0, w - 1, h - 1}, -1});
  }
  return ps;
}

TEST(LoadBalance, HeapPlacementMatchesLinearScanReference) {
  // The min-heap LPT placement (O(log ranks) per patch) must reproduce the
  // old linear min_element probe exactly, including its tie-break: lowest
  // rank among equally loaded ranks.
  for (const auto& [npatch, nranks, seed] :
       {std::tuple{1, 1, 11ull}, {20, 4, 12ull}, {57, 7, 13ull},
        {200, 37, 14ull}, {96, 96, 15ull}, {31, 64, 16ull}}) {
    auto ps = random_patches(npatch, seed);
    auto ref = ps;
    amr::balance_owners(ps, nranks, BalancePolicy::knapsack);

    // Reference: stable sort by descending weight, then scan for the
    // least-loaded rank (the pre-heap implementation).
    std::vector<long> weight(ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k)
      weight[k] = ref[k].box.num_pts();
    std::vector<std::size_t> order(ref.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return weight[a] > weight[b];
    });
    std::vector<long> load(static_cast<std::size_t>(nranks), 0);
    for (std::size_t k : order) {
      const auto it = std::min_element(load.begin(), load.end());
      const int r = static_cast<int>(it - load.begin());
      ref[k].owner = r;
      load[static_cast<std::size_t>(r)] += weight[k];
    }
    for (std::size_t k = 0; k < ps.size(); ++k)
      EXPECT_EQ(ps[k].owner, ref[k].owner)
          << "npatch=" << npatch << " nranks=" << nranks << " patch=" << k;
  }
}

class DistributedBalanceAtSize : public ::testing::TestWithParam<int> {};

TEST_P(DistributedBalanceAtSize, MatchesReplicatedLocalPath) {
  // At >= kDistributedBalanceThreshold ranks the comm overload shards the
  // weight computation and assembles it with the tree allgatherv; the
  // resulting owners and imbalance must equal the replicated local path
  // bit-for-bit on every rank. 33 is odd and non-power-of-two; the
  // 10-patch case forces zero-size shards (fewer patches than ranks).
  const int nranks = GetParam();
  ASSERT_GE(nranks, amr::kDistributedBalanceThreshold);
  for (const int npatch : {10, 120}) {
    const auto reference_input = random_patches(npatch, 77u + static_cast<std::uint64_t>(npatch));
    auto expect = reference_input;
    const double local_imbalance =
        amr::balance_owners(expect, nranks, BalancePolicy::knapsack);
    std::atomic<int> mismatches{0};
    mpp::Runtime::run(nranks, [&](mpp::Comm& world) {
      auto mine = reference_input;
      const double imbalance =
          amr::balance_owners(world, mine, BalancePolicy::knapsack);
      if (imbalance != local_imbalance) ++mismatches;
      for (std::size_t k = 0; k < mine.size(); ++k)
        if (mine[k].owner != expect[k].owner) ++mismatches;
    });
    EXPECT_EQ(mismatches.load(), 0) << "npatch=" << npatch;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DistributedBalanceAtSize,
                         ::testing::Values(16, 33));

TEST(DistributedBalance, BelowThresholdUsesReplicatedPathUnchanged) {
  auto base = random_patches(40, 5);
  auto expect = base;
  const double want = amr::balance_owners(expect, 3, BalancePolicy::knapsack);
  mpp::Runtime::run(3, [&](mpp::Comm& world) {
    auto mine = base;
    const double got = amr::balance_owners(world, mine, BalancePolicy::knapsack);
    EXPECT_DOUBLE_EQ(got, want);
    for (std::size_t k = 0; k < mine.size(); ++k)
      EXPECT_EQ(mine[k].owner, expect[k].owner);
  });
}

}  // namespace
