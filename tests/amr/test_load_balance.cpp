#include <gtest/gtest.h>

#include "amr/load_balance.hpp"
#include "support/rng.hpp"

namespace {

using amr::BalancePolicy;
using amr::Box;
using amr::PatchInfo;

std::vector<PatchInfo> uniform_patches(int n, int edge) {
  std::vector<PatchInfo> ps;
  for (int k = 0; k < n; ++k)
    ps.push_back(PatchInfo{k, Box{0, k * edge, edge - 1, (k + 1) * edge - 1}, -1});
  return ps;
}

TEST(LoadBalance, RoundRobinCycles) {
  auto ps = uniform_patches(7, 4);
  amr::balance_owners(ps, 3, BalancePolicy::round_robin);
  for (std::size_t k = 0; k < ps.size(); ++k)
    EXPECT_EQ(ps[k].owner, static_cast<int>(k % 3));
}

TEST(LoadBalance, KnapsackBalancesUniformLoad) {
  auto ps = uniform_patches(9, 8);
  const double imbalance = amr::balance_owners(ps, 3, BalancePolicy::knapsack);
  EXPECT_DOUBLE_EQ(imbalance, 1.0);  // 9 equal patches over 3 ranks
  std::vector<int> count(3, 0);
  for (const auto& p : ps) {
    ASSERT_GE(p.owner, 0);
    ASSERT_LT(p.owner, 3);
    ++count[static_cast<std::size_t>(p.owner)];
  }
  EXPECT_EQ(count, (std::vector<int>{3, 3, 3}));
}

TEST(LoadBalance, KnapsackBeatsRoundRobinOnSkewedSizes) {
  ccaperf::Rng rng(9);
  std::vector<PatchInfo> skewed;
  for (int k = 0; k < 20; ++k) {
    const int w = static_cast<int>(rng.uniform_int(2, 40));
    const int h = static_cast<int>(rng.uniform_int(2, 40));
    skewed.push_back(PatchInfo{k, Box{0, 0, w - 1, h - 1}, -1});
  }
  auto a = skewed, b = skewed;
  const double knap = amr::balance_owners(a, 4, BalancePolicy::knapsack);
  const double rr = amr::balance_owners(b, 4, BalancePolicy::round_robin);
  EXPECT_LE(knap, rr + 1e-12);
  EXPECT_LT(knap, 1.3);
}

TEST(LoadBalance, SingleRankGetsEverything) {
  auto ps = uniform_patches(5, 4);
  const double imbalance = amr::balance_owners(ps, 1);
  EXPECT_DOUBLE_EQ(imbalance, 1.0);
  for (const auto& p : ps) EXPECT_EQ(p.owner, 0);
}

TEST(LoadBalance, MoreRanksThanPatches) {
  auto ps = uniform_patches(2, 4);
  amr::balance_owners(ps, 5);
  EXPECT_NE(ps[0].owner, ps[1].owner);
}

TEST(LoadBalance, EmptyPatchListIsFine) {
  std::vector<PatchInfo> none;
  EXPECT_DOUBLE_EQ(amr::balance_owners(none, 3), 1.0);
}

TEST(LoadBalance, DeterministicAcrossCalls) {
  auto a = uniform_patches(11, 6), b = uniform_patches(11, 6);
  amr::balance_owners(a, 3);
  amr::balance_owners(b, 3);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k].owner, b[k].owner);
}

}  // namespace
