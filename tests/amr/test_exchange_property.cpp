// Randomized-partition property test for the distributed ghost exchange:
// for arbitrary disjoint tilings of the domain (random recursive splits)
// and arbitrary owner assignments, every in-domain ghost cell must equal
// the global field after one exchange.

#include <gtest/gtest.h>

#include "amr/exchange.hpp"
#include "mpp/runtime.hpp"
#include "support/rng.hpp"

namespace {

using amr::Box;
using amr::IntVect;
using amr::Level;
using amr::PatchData;
using amr::PatchInfo;

constexpr int kGhost = 2;
constexpr int kComp = 2;

double field(int i, int j, int c) { return c * 10'000.0 + 97.0 * j + i; }

/// Random disjoint tiling by recursive splitting (min tile edge 4).
void split_random(const Box& b, ccaperf::Rng& rng, std::vector<Box>& out) {
  const bool can_split_x = b.width() >= 8;
  const bool can_split_y = b.height() >= 8;
  const bool stop = (!can_split_x && !can_split_y) || rng.uniform() < 0.25;
  if (stop) {
    out.push_back(b);
    return;
  }
  if (can_split_x && (!can_split_y || rng.uniform() < 0.5)) {
    const int cut = b.lo().i + 4 +
                    static_cast<int>(rng.uniform_int(0, b.width() - 8));
    split_random(Box{b.lo(), {cut, b.hi().j}}, rng, out);
    split_random(Box{{cut + 1, b.lo().j}, b.hi()}, rng, out);
  } else {
    const int cut = b.lo().j + 4 +
                    static_cast<int>(rng.uniform_int(0, b.height() - 8));
    split_random(Box{b.lo(), {b.hi().i, cut}}, rng, out);
    split_random(Box{{b.lo().i, cut + 1}, b.hi()}, rng, out);
  }
}

class ExchangePartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExchangePartition, GhostsCorrectForRandomTilingAndOwners) {
  const std::uint64_t seed = GetParam();
  const Box domain{0, 0, 47, 31};

  // All ranks must build the identical layout: derive it from the seed.
  mpp::Runtime::run(3, [&](mpp::Comm& world) {
    ccaperf::Rng rng(seed);
    std::vector<Box> tiles;
    split_random(domain, rng, tiles);

    Level lvl(0, domain, 1);
    for (std::size_t k = 0; k < tiles.size(); ++k)
      lvl.patches().push_back(
          PatchInfo{static_cast<int>(k), tiles[k],
                    static_cast<int>(rng.uniform_int(0, world.size() - 1))});

    for (const PatchInfo& p : lvl.patches()) {
      if (p.owner != world.rank()) continue;
      PatchData<double> data(p.box, kGhost, kComp, -1e9);
      for (int c = 0; c < kComp; ++c)
        for (int j = p.box.lo().j; j <= p.box.hi().j; ++j)
          for (int i = p.box.lo().i; i <= p.box.hi().i; ++i)
            data(i, j, c) = field(i, j, c);
      lvl.local_data().emplace(p.id, std::move(data));
    }

    amr::exchange_ghosts(world, lvl, kGhost, 0);

    // Every ghost cell inside the domain is covered by some tile (the
    // tiling is a partition), so it must now hold the field value.
    for (const PatchInfo& p : lvl.patches()) {
      if (p.owner != world.rank()) continue;
      const PatchData<double>& data = lvl.data(p.id);
      const Box g = p.box.grown(kGhost);
      for (int c = 0; c < kComp; ++c)
        for (int j = g.lo().j; j <= g.hi().j; ++j)
          for (int i = g.lo().i; i <= g.hi().i; ++i) {
            if (!domain.contains(IntVect{i, j})) continue;
            EXPECT_DOUBLE_EQ(data(i, j, c), field(i, j, c))
                << "seed " << seed << " patch " << p.id << " cell (" << i << ','
                << j << ',' << c << ')';
          }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangePartition,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

}  // namespace
