// Distributed region copier: ghost exchange correctness must be
// independent of how patches are distributed over ranks (the SCMD
// replicated-plan property), and the wait_some-driven message engine must
// deliver every intersection.

#include <gtest/gtest.h>

#include "amr/exchange.hpp"
#include "mpp/runtime.hpp"

namespace {

using amr::Box;
using amr::Level;
using amr::PatchData;
using amr::PatchInfo;

constexpr int kGhost = 2;
constexpr int kComp = 3;

double field(int i, int j, int c) { return 1000.0 * c + 31.0 * j + i; }

/// Builds a 2x2 patch level over [0,15]^2 with the given owner list and
/// fills interiors with `field`.
Level make_level(const std::vector<int>& owners, int my_rank) {
  Level lvl(0, Box{0, 0, 15, 15}, 1);
  const Box boxes[4] = {{0, 0, 7, 7}, {8, 0, 15, 7}, {0, 8, 7, 15}, {8, 8, 15, 15}};
  for (int k = 0; k < 4; ++k)
    lvl.patches().push_back(PatchInfo{k, boxes[k], owners[static_cast<std::size_t>(k)]});
  for (const PatchInfo& p : lvl.patches()) {
    if (p.owner != my_rank) continue;
    PatchData<double> data(p.box, kGhost, kComp, -999.0);
    for (int c = 0; c < kComp; ++c)
      for (int j = p.box.lo().j; j <= p.box.hi().j; ++j)
        for (int i = p.box.lo().i; i <= p.box.hi().i; ++i)
          data(i, j, c) = field(i, j, c);
    lvl.local_data().emplace(p.id, std::move(data));
  }
  return lvl;
}

/// Every local ghost cell covered by a neighbor's interior must hold the
/// global field value.
void check_ghosts(const Level& lvl, int my_rank) {
  for (const PatchInfo& p : lvl.patches()) {
    if (p.owner != my_rank) continue;
    const PatchData<double>& data = lvl.data(p.id);
    for (int c = 0; c < kComp; ++c) {
      for (int j = p.box.lo().j - kGhost; j <= p.box.hi().j + kGhost; ++j) {
        for (int i = p.box.lo().i - kGhost; i <= p.box.hi().i + kGhost; ++i) {
          if (p.box.contains(amr::IntVect{i, j})) continue;
          bool covered = false;
          for (const PatchInfo& q : lvl.patches())
            if (q.id != p.id && q.box.contains(amr::IntVect{i, j})) covered = true;
          if (covered)
            EXPECT_DOUBLE_EQ(data(i, j, c), field(i, j, c))
                << "ghost (" << i << "," << j << "," << c << ") of patch " << p.id;
        }
      }
    }
  }
}

TEST(Exchange, SerialGhostFill) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    Level lvl = make_level({0, 0, 0, 0}, world.rank());
    const auto stats = amr::exchange_ghosts(world, lvl, kGhost, 0);
    check_ghosts(lvl, world.rank());
    EXPECT_EQ(stats.messages_sent, 0u);  // everything local
    EXPECT_GT(stats.local_copies, 0u);
  });
}

TEST(Exchange, ParallelGhostFillMatchesSerial) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    Level lvl = make_level({0, 1, 2, 0}, world.rank());
    amr::exchange_ghosts(world, lvl, kGhost, 0);
    check_ghosts(lvl, world.rank());
  });
}

TEST(Exchange, EveryDistributionGivesSameResult) {
  // Property: sweep several owner assignments; ghosts always correct.
  const std::vector<std::vector<int>> assignments = {
      {0, 0, 1, 1}, {1, 0, 1, 0}, {2, 2, 2, 2}, {0, 1, 2, 1}};
  mpp::Runtime::run(3, [&](mpp::Comm& world) {
    int tag = 0;
    for (const auto& owners : assignments) {
      Level lvl = make_level(owners, world.rank());
      amr::exchange_ghosts(world, lvl, kGhost, tag);
      tag += 64;
      check_ghosts(lvl, world.rank());
      world.barrier();
    }
  });
}

TEST(Exchange, StatsAreConsistentAcrossRanks) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    Level lvl = make_level({0, 1, 1, 0}, world.rank());
    const auto stats = amr::exchange_ghosts(world, lvl, kGhost, 0);
    const double sent = world.allreduce_value<>(static_cast<double>(stats.bytes_sent));
    const double received =
        world.allreduce_value<>(static_cast<double>(stats.bytes_received));
    EXPECT_DOUBLE_EQ(sent, received);
    EXPECT_GT(sent, 0.0);
  });
}

TEST(Exchange, InteriorMigration) {
  // The rebalance pattern: same boxes, new owners, full-interior copy.
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    Level src = make_level({0, 0, 1, 1}, world.rank());
    Level dst = make_level({1, 1, 0, 0}, -1);  // no data allocated yet
    for (const PatchInfo& p : dst.patches()) {
      if (p.owner != world.rank()) continue;
      dst.local_data().emplace(p.id,
                               PatchData<double>(p.box, kGhost, kComp, -1.0));
    }
    auto src_fn = [&src](int id) -> const PatchData<double>* {
      return src.has_data(id) ? &src.data(id) : nullptr;
    };
    auto dst_fn = [&dst](int id) -> PatchData<double>* {
      return dst.has_data(id) ? &dst.data(id) : nullptr;
    };
    amr::exchange_copy(world, src.patches(), src_fn, dst.patches(), dst_fn,
                       [](const PatchInfo& p) { return p.box; },
                       /*skip_same_id=*/false, 0);
    for (const PatchInfo& p : dst.patches()) {
      if (p.owner != world.rank()) continue;
      const PatchData<double>& data = dst.data(p.id);
      for (int j = p.box.lo().j; j <= p.box.hi().j; ++j)
        for (int i = p.box.lo().i; i <= p.box.hi().i; ++i)
          EXPECT_DOUBLE_EQ(data(i, j, 1), field(i, j, 1));
    }
  });
}

TEST(Exchange, ManyPatchesStress) {
  // 8x8 patch grid over 3 ranks: the full waitsome machinery with dozens
  // of in-flight messages.
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    Level lvl(0, Box{0, 0, 63, 63}, 1);
    int id = 0;
    for (int ty = 0; ty < 8; ++ty)
      for (int tx = 0; tx < 8; ++tx)
        lvl.patches().push_back(PatchInfo{
            id++, Box{tx * 8, ty * 8, tx * 8 + 7, ty * 8 + 7}, (tx + ty) % 3});
    for (const PatchInfo& p : lvl.patches()) {
      if (p.owner != world.rank()) continue;
      PatchData<double> data(p.box, kGhost, kComp, -1.0);
      for (int c = 0; c < kComp; ++c)
        for (int j = p.box.lo().j; j <= p.box.hi().j; ++j)
          for (int i = p.box.lo().i; i <= p.box.hi().i; ++i)
            data(i, j, c) = field(i, j, c);
      lvl.local_data().emplace(p.id, std::move(data));
    }
    const auto stats = amr::exchange_ghosts(world, lvl, kGhost, 0);
    // Coalescing bounds the message count by the neighbor-rank count while
    // the dozens of overlapping patch pairs ride along as segments.
    EXPECT_LE(stats.messages_received, 2u);  // nranks - 1
    EXPECT_GT(stats.segments_received, 10u);
    // Globally every off-rank segment sent is received exactly once.
    const double seg_sent =
        world.allreduce_value<>(static_cast<double>(stats.segments_sent));
    const double seg_recv =
        world.allreduce_value<>(static_cast<double>(stats.segments_received));
    EXPECT_DOUBLE_EQ(seg_sent, seg_recv);
    for (const PatchInfo& p : lvl.patches()) {
      if (p.owner != world.rank()) continue;
      const PatchData<double>& data = lvl.data(p.id);
      // Spot-check a ghost row against the field.
      const int j = p.box.lo().j - 1;
      if (j >= 0) {
        for (int i = p.box.lo().i; i <= p.box.hi().i; ++i)
          EXPECT_DOUBLE_EQ(data(i, j, 2), field(i, j, 2));
      }
    }
  });
}

}  // namespace
