#include <gtest/gtest.h>

#include "amr/patch_data.hpp"
#include "support/error.hpp"

namespace {

using amr::Box;
using amr::PatchData;

TEST(PatchData, GeometryAndInit) {
  PatchData<double> p(Box{0, 0, 3, 2}, 2, 5, 1.5);
  EXPECT_EQ(p.interior(), (Box{0, 0, 3, 2}));
  EXPECT_EQ(p.grown_box(), (Box{-2, -2, 5, 4}));
  EXPECT_EQ(p.ncomp(), 5);
  EXPECT_EQ(p.pts_per_comp(), 8u * 7u);
  EXPECT_EQ(p.row_stride(), 8);
  EXPECT_DOUBLE_EQ(p(-2, -2, 0), 1.5);
  EXPECT_DOUBLE_EQ(p(5, 4, 4), 1.5);
}

TEST(PatchData, IndexingIsRowMajorUnitStrideInI) {
  PatchData<double> p(Box{0, 0, 7, 7}, 1, 1);
  EXPECT_EQ(&p(1, 0, 0) - &p(0, 0, 0), 1);
  EXPECT_EQ(&p(0, 1, 0) - &p(0, 0, 0), p.row_stride());
}

TEST(PatchData, ComponentPlanesAreContiguous) {
  PatchData<double> p(Box{0, 0, 3, 3}, 0, 3);
  EXPECT_EQ(p.comp(0).size(), 16u);
  EXPECT_EQ(&p(0, 0, 1) - &p(0, 0, 0), static_cast<std::ptrdiff_t>(p.pts_per_comp()));
}

TEST(PatchData, CheckedAccessThrows) {
  PatchData<double> p(Box{0, 0, 3, 3}, 1, 2);
  EXPECT_NO_THROW(p.at(-1, -1, 0));
  EXPECT_THROW(p.at(-2, 0, 0), ccaperf::Error);
  EXPECT_THROW(p.at(0, 0, 2), ccaperf::Error);
}

TEST(PatchData, CopyFromOverlapRegion) {
  PatchData<double> a(Box{0, 0, 5, 5}, 1, 2, 0.0);
  PatchData<double> b(Box{4, 4, 9, 9}, 1, 2, 0.0);
  for (int c = 0; c < 2; ++c)
    for (int j = 4; j <= 9; ++j)
      for (int i = 4; i <= 9; ++i) b(i, j, c) = 100.0 * c + i + 10.0 * j;

  const Box overlap = a.grown_box() & b.interior();
  a.copy_from(b, overlap);
  EXPECT_DOUBLE_EQ(a(4, 4, 0), 44.0);
  EXPECT_DOUBLE_EQ(a(6, 5, 1), 156.0);  // ghost cell of a
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 0.0);    // untouched
}

TEST(PatchData, CopyFromRejectsOutOfRangeBox) {
  PatchData<double> a(Box{0, 0, 3, 3}, 0, 1);
  PatchData<double> b(Box{0, 0, 3, 3}, 0, 1);
  EXPECT_THROW(a.copy_from(b, Box{0, 0, 4, 4}), ccaperf::Error);
  PatchData<double> c(Box{0, 0, 3, 3}, 0, 2);
  EXPECT_THROW(a.copy_from(c, Box{0, 0, 1, 1}), ccaperf::Error);
}

TEST(PatchData, PackUnpackRoundTrip) {
  PatchData<double> src(Box{0, 0, 7, 7}, 2, 3, 0.0);
  for (int c = 0; c < 3; ++c)
    for (int j = -2; j <= 9; ++j)
      for (int i = -2; i <= 9; ++i) src(i, j, c) = c * 1000.0 + j * 20.0 + i;

  const Box region{2, 3, 5, 6};
  std::vector<double> buffer;
  src.pack(region, buffer);
  EXPECT_EQ(buffer.size(), static_cast<std::size_t>(region.num_pts()) * 3);

  PatchData<double> dst(Box{0, 0, 7, 7}, 2, 3, -1.0);
  dst.unpack(region, buffer);
  for (int c = 0; c < 3; ++c)
    for (int j = 3; j <= 6; ++j)
      for (int i = 2; i <= 5; ++i)
        EXPECT_DOUBLE_EQ(dst(i, j, c), src(i, j, c));
  EXPECT_DOUBLE_EQ(dst(0, 0, 0), -1.0);  // outside region untouched
}

TEST(PatchData, UnpackSizeMismatchThrows) {
  PatchData<double> p(Box{0, 0, 3, 3}, 0, 1);
  std::vector<double> wrong(5);
  EXPECT_THROW(p.unpack(Box{0, 0, 1, 1}, wrong), ccaperf::Error);
}

TEST(PatchData, FillSetsEverything) {
  PatchData<double> p(Box{0, 0, 2, 2}, 1, 2, 0.0);
  p.fill(3.25);
  for (double v : p.raw()) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(PatchData, RejectsBadConstruction) {
  EXPECT_THROW(PatchData<double>(Box{}, 1, 1), ccaperf::Error);
  EXPECT_THROW(PatchData<double>(Box{0, 0, 1, 1}, -1, 1), ccaperf::Error);
  EXPECT_THROW(PatchData<double>(Box{0, 0, 1, 1}, 1, 0), ccaperf::Error);
}

}  // namespace
