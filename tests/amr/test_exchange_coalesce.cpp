// Coalesced ghost exchange: one packed message per (neighbor rank,
// direction) per round — O(neighbor ranks), not O(overlapping patch
// pairs) — and the packed segments must reproduce exactly the field an
// uncoalesced per-pair exchange would deliver. Checked end-to-end on a
// 3-level regridded hierarchy by comparing against the serial run, where
// every transfer is a direct local copy.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "amr/hierarchy.hpp"
#include "mpp/runtime.hpp"

namespace {

using amr::BcSpec;
using amr::Box;
using amr::Hierarchy;
using amr::HierarchyConfig;
using amr::IntVect;

HierarchyConfig config() {
  HierarchyConfig cfg;
  cfg.domain = Box{0, 0, 31, 31};
  cfg.max_levels = 3;
  cfg.ratio = 2;
  cfg.nghost = 2;
  cfg.ncomp = 2;
  cfg.level0_patch_size = 8;
  cfg.cluster = amr::ClusterParams{0.7, 4, 0};
  cfg.flag_buffer = 1;
  cfg.geom = amr::Geometry{0.0, 0.0, 1.0 / 32.0, 1.0 / 32.0};
  return cfg;
}

amr::Hierarchy::FlagFn flag_center_blob() {
  return [](const Hierarchy& h, int l, const amr::PatchInfo& p,
            amr::FlagField& flags) {
    const Box dom = h.domain_at(l);
    const int cx = (dom.lo().i + dom.hi().i) / 2;
    const int cy = (dom.lo().j + dom.hi().j) / 2;
    const Box blob = Box{cx - 4, cy - 4, cx + 4, cy + 4} & p.box;
    for (int j = blob.lo().j; j <= blob.hi().j; ++j)
      for (int i = blob.lo().i; i <= blob.hi().i; ++i) flags.set({i, j});
  };
}

/// Non-trivial analytic field so every packed segment carries distinct data.
double field(const Hierarchy& h, int l, int i, int j, int c) {
  const double x = (i + 0.5) * h.dx(l), y = (j + 0.5) * h.dy(l);
  return std::sin(3.0 * x) * std::cos(2.0 * y) + 10.0 * c + 0.25 * x * y;
}

void fill_all(Hierarchy& h) {
  for (int l = 0; l < h.num_levels(); ++l)
    for (auto& [id, data] : h.level(l).local_data()) {
      const Box g = data.grown_box();
      for (int c = 0; c < data.ncomp(); ++c)
        for (int j = g.lo().j; j <= g.hi().j; ++j)
          for (int i = g.lo().i; i <= g.hi().i; ++i)
            data(i, j, c) = field(h, l, i, j, c);
    }
}

void clobber_ghosts(Hierarchy& h) {
  for (int l = 0; l < h.num_levels(); ++l)
    for (auto& [id, data] : h.level(l).local_data()) {
      const Box inner = h.level(l).patch(id).box;
      const Box g = data.grown_box();
      for (int c = 0; c < data.ncomp(); ++c)
        for (int j = g.lo().j; j <= g.hi().j; ++j)
          for (int i = g.lo().i; i <= g.hi().i; ++i)
            if (!inner.contains(IntVect{i, j})) data(i, j, c) = -4444.0;
    }
}

/// Per-cell fingerprint of every local patch (grown boxes clipped to the
/// domain), keyed by (level, patch id, cell) so rank counts can be
/// compared exactly: each value is reduced with max, and since every patch
/// exists on exactly one rank (others contribute -inf), the global result
/// is the field itself, independent of ownership.
double fingerprint(const Hierarchy& h, mpp::Comm& world) {
  double acc = 0.0;
  for (int l = 0; l < h.num_levels(); ++l) {
    const Box dom = h.domain_at(l);
    for (auto& [id, data] : h.level(l).local_data()) {
      const Box g = data.grown_box();
      for (int c = 0; c < data.ncomp(); ++c)
        for (int j = g.lo().j; j <= g.hi().j; ++j)
          for (int i = g.lo().i; i <= g.hi().i; ++i) {
            if (!dom.contains(IntVect{i, j})) continue;
            const double w = 1.0 + 0.001 * i + 0.002 * j + 0.01 * c +
                             0.0001 * id + 0.1 * l;
            acc += data(i, j, c) * w;
          }
    }
  }
  // Patch-disjoint ownership makes the sum order-independent up to FP
  // association; tolerance at the comparison absorbs that.
  return world.allreduce_value<>(acc);
}

/// Builds the 3-level regridded hierarchy, refills analytically, clobbers
/// ghosts, refills them through the (coalesced) exchange, and returns the
/// global fingerprint plus the per-level exchange stats.
double run_scenario(mpp::Comm& world, std::vector<amr::ExchangeStats>* stats) {
  Hierarchy h(world, config());
  h.init_level0();
  fill_all(h);
  h.regrid(flag_center_blob());
  EXPECT_EQ(h.num_levels(), 3);
  fill_all(h);
  clobber_ghosts(h);
  for (int l = 0; l < h.num_levels(); ++l) {
    const auto s = h.fill_ghosts(l, BcSpec{});
    if (stats) stats->push_back(s);
  }
  return fingerprint(h, world);
}

TEST(CoalescedExchange, MessageCountBoundedByNeighborRanks) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    std::vector<amr::ExchangeStats> stats;
    run_scenario(world, &stats);
    const auto peers = static_cast<std::size_t>(world.size() - 1);
    for (const auto& s : stats) {
      EXPECT_LE(s.messages_sent, peers);
      EXPECT_LE(s.messages_received, peers);
      // Coalescing carries the many patch-pair transfers as segments.
      EXPECT_GE(s.segments_sent, s.messages_sent);
      EXPECT_GE(s.segments_received, s.messages_received);
    }
    // Level 0 (16 patches over 3 ranks) genuinely has off-rank neighbors.
    EXPECT_GT(stats.front().segments_sent + stats.front().local_copies, 16u);
  });
}

TEST(CoalescedExchange, GhostValuesMatchSerialRun) {
  // The serial run exchanges purely by local copies (no messages at all);
  // distributed runs must land on the same field through the packed
  // message path, for every rank count.
  double serial = 0.0;
  mpp::Runtime::run(1, [&](mpp::Comm& world) {
    std::vector<amr::ExchangeStats> stats;
    serial = run_scenario(world, &stats);
    for (const auto& s : stats) EXPECT_EQ(s.messages_sent, 0u);
  });
  for (int nranks : {2, 3, 4}) {
    double distributed = 0.0;
    double* slot = &distributed;
    mpp::Runtime::run(nranks, [slot](mpp::Comm& world) {
      const double fp = run_scenario(world, nullptr);
      if (world.rank() == 0) *slot = fp;
    });
    EXPECT_NEAR(distributed, serial, 1e-9 * std::abs(serial))
        << "field diverged at " << nranks << " ranks";
  }
}

}  // namespace
