// GridHierarchy: level-0 tiling, ghost fills (exchange + prolongation +
// BC), conservative restriction, regridding with proper nesting, and
// rebalance data preservation — each checked on 1 and 3 ranks.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/hierarchy.hpp"
#include "mpp/runtime.hpp"

namespace {

using amr::BcSpec;
using amr::Box;
using amr::Hierarchy;
using amr::HierarchyConfig;
using amr::IntVect;

HierarchyConfig small_config() {
  HierarchyConfig cfg;
  cfg.domain = Box{0, 0, 31, 31};
  cfg.max_levels = 3;
  cfg.ratio = 2;
  cfg.nghost = 2;
  cfg.ncomp = 2;
  cfg.level0_patch_size = 8;
  cfg.cluster = amr::ClusterParams{0.7, 4, 0};
  cfg.flag_buffer = 1;
  cfg.geom = amr::Geometry{0.0, 0.0, 1.0 / 32.0, 1.0 / 32.0};
  return cfg;
}

void fill_linear(Hierarchy& h, double a, double b) {
  for (int l = 0; l < h.num_levels(); ++l) {
    const double dx = h.dx(l), dy = h.dy(l);
    for (auto& [id, data] : h.level(l).local_data()) {
      const Box g = data.grown_box();
      for (int c = 0; c < data.ncomp(); ++c)
        for (int j = g.lo().j; j <= g.hi().j; ++j)
          for (int i = g.lo().i; i <= g.hi().i; ++i)
            data(i, j, c) = (c + 1) * (a * (i + 0.5) * dx + b * (j + 0.5) * dy);
    }
  }
}

TEST(Hierarchy, Level0TilesDomainExactly) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    ASSERT_EQ(h.num_levels(), 1);
    const auto& lvl = h.level(0);
    EXPECT_EQ(lvl.total_cells(), 32L * 32L);
    // Patches are disjoint and cover the domain.
    const auto rest = amr::box_subtract_all(h.config().domain, lvl.boxes());
    EXPECT_TRUE(rest.empty());
    for (std::size_t i = 0; i < lvl.patches().size(); ++i)
      for (std::size_t j = i + 1; j < lvl.patches().size(); ++j)
        EXPECT_FALSE(lvl.patches()[i].box.intersects(lvl.patches()[j].box));
    // Every patch is owned by a valid rank; local data allocated.
    for (const auto& p : lvl.patches()) {
      EXPECT_GE(p.owner, 0);
      EXPECT_LT(p.owner, world.size());
      if (p.owner == world.rank()) EXPECT_TRUE(lvl.has_data(p.id));
    }
  });
}

TEST(Hierarchy, MetadataIdenticalOnAllRanks) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    // Hash the metadata and compare via allreduce min==max.
    double hash = 0;
    for (const auto& p : h.level(0).patches())
      hash += p.id * 1.0 + p.box.lo().i * 3.0 + p.box.hi().j * 7.0 + p.owner * 13.0;
    const double lo = world.allreduce_value<mpp::MinOp<double>>(hash);
    const double hi = world.allreduce_value<mpp::MaxOp<double>>(hash);
    EXPECT_DOUBLE_EQ(lo, hi);
  });
}

TEST(Hierarchy, GhostExchangeReproducesLinearField) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    fill_linear(h, 2.0, -1.0);
    // Clobber ghosts, then refill via exchange.
    for (auto& [id, data] : h.level(0).local_data()) {
      const Box inner = h.level(0).patch(id).box;
      const Box g = data.grown_box();
      for (int c = 0; c < data.ncomp(); ++c)
        for (int j = g.lo().j; j <= g.hi().j; ++j)
          for (int i = g.lo().i; i <= g.hi().i; ++i)
            if (!inner.contains(IntVect{i, j})) data(i, j, c) = -7777.0;
    }
    h.exchange_and_bc(0, BcSpec{});
    const double dx = h.dx(0), dy = h.dy(0);
    const Box dom = h.domain_at(0);
    for (auto& [id, data] : h.level(0).local_data()) {
      const Box g = data.grown_box();
      for (int j = g.lo().j; j <= g.hi().j; ++j)
        for (int i = g.lo().i; i <= g.hi().i; ++i) {
          if (!dom.contains(IntVect{i, j})) continue;  // BC cells differ
          EXPECT_NEAR(data(i, j, 1),
                      2.0 * (2.0 * (i + 0.5) * dx - 1.0 * (j + 0.5) * dy), 1e-12);
        }
    }
  });
}

amr::Hierarchy::FlagFn flag_center_blob() {
  return [](const Hierarchy& h, int l, const amr::PatchInfo& p,
            amr::FlagField& flags) {
    (void)h;
    // Flag a blob around the domain center at this level's resolution.
    const Box dom = h.domain_at(l);
    const int cx = (dom.lo().i + dom.hi().i) / 2;
    const int cy = (dom.lo().j + dom.hi().j) / 2;
    const Box blob = Box{cx - 4, cy - 4, cx + 4, cy + 4} & p.box;
    for (int j = blob.lo().j; j <= blob.hi().j; ++j)
      for (int i = blob.lo().i; i <= blob.hi().i; ++i) flags.set({i, j});
  };
}

TEST(Hierarchy, RegridCreatesNestedLevels) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    fill_linear(h, 1.0, 1.0);
    h.regrid(flag_center_blob());
    ASSERT_EQ(h.num_levels(), 3);
    for (int l = 1; l < h.num_levels(); ++l) {
      const auto& fine = h.level(l);
      const auto& coarse = h.level(l - 1);
      EXPECT_GT(fine.patches().size(), 0u);
      // Proper nesting: each fine box, coarsened and grown by 1, lies in
      // the coarse union (clipped to the domain).
      for (const auto& fp : fine.patches()) {
        const Box need = fp.box.coarsened(2).grown(1) & h.domain_at(l - 1);
        EXPECT_TRUE(amr::box_subtract_all(need, coarse.boxes()).empty())
            << "fine box " << fp.box.to_string() << " violates nesting";
      }
      // Refined boxes must cover the flagged blob at this level.
      const Box dom = h.domain_at(l);
      const int cx = (dom.lo().i + dom.hi().i) / 2;
      const int cy = (dom.lo().j + dom.hi().j) / 2;
      EXPECT_TRUE(
          amr::box_subtract_all(Box{cx - 2, cy - 2, cx + 2, cy + 2}, fine.boxes())
              .empty());
    }
  });
}

TEST(Hierarchy, RegridFillsNewPatchesFromCoarse) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    // Constant field: prolongation must reproduce it exactly.
    for (auto& [id, data] : h.level(0).local_data()) data.fill(42.0);
    h.regrid(flag_center_blob());
    ASSERT_GE(h.num_levels(), 2);
    for (int l = 1; l < h.num_levels(); ++l)
      for (auto& [id, data] : h.level(l).local_data()) {
        const Box box = h.level(l).patch(id).box;
        for (int j = box.lo().j; j <= box.hi().j; ++j)
          for (int i = box.lo().i; i <= box.hi().i; ++i)
            EXPECT_DOUBLE_EQ(data(i, j, 0), 42.0);
      }
  });
}

TEST(Hierarchy, ProlongGhostsLinearFieldWithinSlopeError) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    fill_linear(h, 1.0, 0.5);
    h.regrid(flag_center_blob());
    ASSERT_GE(h.num_levels(), 2);
    fill_linear(h, 1.0, 0.5);  // exact data everywhere, all levels

    // Clobber fine ghosts, prolong, verify against the analytic field.
    auto& fine = h.level(1);
    for (auto& [id, data] : fine.local_data()) {
      const Box inner = fine.patch(id).box;
      const Box g = data.grown_box();
      for (int j = g.lo().j; j <= g.hi().j; ++j)
        for (int i = g.lo().i; i <= g.hi().i; ++i)
          if (!inner.contains(IntVect{i, j})) data(i, j, 0) = -1e9;
    }
    h.prolong(1, /*ghosts_only=*/true);
    const double dx = h.dx(1), dy = h.dy(1);
    const Box dom = h.domain_at(1);
    // Linear reproduction is exact where the limited slopes see both
    // neighbors; at halo edges the slope degrades to piecewise-constant,
    // bounded by one coarse-cell variation.
    const double tol = 1.0 * h.dx(0) + 0.5 * h.dy(0);
    for (auto& [id, data] : fine.local_data()) {
      const Box inner = fine.patch(id).box;
      const Box g = data.grown_box();
      for (int j = g.lo().j; j <= g.hi().j; ++j)
        for (int i = g.lo().i; i <= g.hi().i; ++i) {
          if (inner.contains(IntVect{i, j}) || !dom.contains(IntVect{i, j}))
            continue;
          const double exact = 1.0 * (i + 0.5) * dx + 0.5 * (j + 0.5) * dy;
          EXPECT_NEAR(data(i, j, 0), exact, tol)
              << "ghost (" << i << "," << j << ")";
        }
    }
  });
}

TEST(Hierarchy, RestrictionConservesLinearField) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    fill_linear(h, 3.0, 2.0);
    h.regrid(flag_center_blob());
    ASSERT_GE(h.num_levels(), 2);
    fill_linear(h, 3.0, 2.0);

    h.restrict_level(1);
    // Under fine patches, coarse values = average of the 4 children =
    // linear field at the coarse center (exact for linear data).
    const double dx0 = h.dx(0), dy0 = h.dy(0);
    for (auto& [id, data] : h.level(0).local_data()) {
      const Box box = h.level(0).patch(id).box;
      for (const auto& fp : h.level(1).patches()) {
        const Box under = box & fp.box.coarsened(2);
        for (int j = under.lo().j; j <= under.hi().j; ++j)
          for (int i = under.lo().i; i <= under.hi().i; ++i) {
            const double exact = 3.0 * (i + 0.5) * dx0 + 2.0 * (j + 0.5) * dy0;
            EXPECT_NEAR(data(i, j, 0), exact, 1e-12);
          }
      }
    }
  });
}

TEST(Hierarchy, RebalancePreservesData) {
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    auto cfg = small_config();
    cfg.balance = amr::BalancePolicy::round_robin;
    Hierarchy h(world, cfg);
    h.init_level0();
    fill_linear(h, 1.0, 2.0);
    double before = 0.0;
    for (auto& [id, data] : h.level(0).local_data()) {
      const Box box = h.level(0).patch(id).box;
      for (int j = box.lo().j; j <= box.hi().j; ++j)
        for (int i = box.lo().i; i <= box.hi().i; ++i) before += data(i, j, 0);
    }
    before = world.allreduce_value<>(before);

    // Flip the policy so owners actually change, then rebalance.
    const double imbalance = h.rebalance();
    EXPECT_GE(imbalance, 1.0);

    double after = 0.0;
    for (auto& [id, data] : h.level(0).local_data()) {
      const Box box = h.level(0).patch(id).box;
      for (int j = box.lo().j; j <= box.hi().j; ++j)
        for (int i = box.lo().i; i <= box.hi().i; ++i) after += data(i, j, 0);
    }
    after = world.allreduce_value<>(after);
    EXPECT_NEAR(before, after, 1e-9);
  });
}

TEST(Hierarchy, RegridWithNoFlagsDropsFineLevels) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    h.init_level0();
    h.regrid(flag_center_blob());
    ASSERT_GE(h.num_levels(), 2);
    // Now nothing is flagged. Levels collapse one per pass: the first
    // regrid keeps a level-1 footprint covering the old level 2 (the
    // keep-deeper-levels-covered rule), the second drops it too.
    const auto no_flags =
        [](const Hierarchy&, int, const amr::PatchInfo&, amr::FlagField&) {};
    h.regrid(no_flags);
    EXPECT_EQ(h.num_levels(), 2);
    h.regrid(no_flags);
    EXPECT_EQ(h.num_levels(), 1);
  });
}

TEST(Hierarchy, RepeatedRegridWithGradientFlaggerStaysTight) {
  // Regression: the estimator reads one ghost layer. A level installed by
  // the previous regrid iteration used to expose uninitialized ghosts to
  // the flagger, which then saw huge jumps along every patch seam and
  // spuriously refined the seams. With ghosts refilled before flagging,
  // repeated regrids around a single sharp feature must stay confined to
  // the feature.
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    auto cfg = small_config();
    cfg.ncomp = 1;
    Hierarchy h(world, cfg);
    h.init_level0();

    // Field: jump across the column i = 16 (level-0 index space).
    auto fill_feature = [&h]() {
      for (int l = 0; l < h.num_levels(); ++l) {
        const int jump_i = 16 << l;
        for (auto& [id, data] : h.level(l).local_data()) {
          const Box g = data.grown_box();
          for (int j = g.lo().j; j <= g.hi().j; ++j)
            for (int i = g.lo().i; i <= g.hi().i; ++i)
              data(i, j, 0) = i < jump_i ? 1.0 : 3.0;
        }
      }
    };
    const auto gradient_flagger = [](const Hierarchy& hh, int l,
                                     const amr::PatchInfo& p,
                                     amr::FlagField& flags) {
      const amr::PatchData<double>& u = hh.level(l).data(p.id);
      for (int j = p.box.lo().j; j <= p.box.hi().j; ++j)
        for (int i = p.box.lo().i; i <= p.box.hi().i; ++i) {
          const double d = std::max(std::abs(u(i + 1, j, 0) - u(i, j, 0)),
                                    std::abs(u(i, j, 0) - u(i - 1, j, 0)));
          if (d / u(i, j, 0) > 0.1) flags.set({i, j});
        }
    };

    fill_feature();
    h.regrid(gradient_flagger);
    fill_feature();
    ASSERT_GE(h.num_levels(), 2);
    const long cells_first = h.level(1).total_cells();

    // Second pass flags on the *new* level 1 (migrated data + ghosts).
    h.regrid(gradient_flagger);
    fill_feature();
    ASSERT_GE(h.num_levels(), 2);
    const long cells_second = h.level(1).total_cells();

    // Confined to a band around the jump: no seam blow-up.
    EXPECT_LE(cells_second, 2 * cells_first);
    for (const auto& p : h.level(1).patches()) {
      EXPECT_GE(p.box.hi().i, 32 - 2 * 2 * (cfg.flag_buffer + 4));
      EXPECT_LE(p.box.lo().i, 32 + 2 * 2 * (cfg.flag_buffer + 4));
    }
  });
}

TEST(Hierarchy, DxHalvesPerLevel) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    Hierarchy h(world, small_config());
    EXPECT_DOUBLE_EQ(h.dx(1), h.dx(0) / 2.0);
    EXPECT_DOUBLE_EQ(h.dy(2), h.dy(0) / 4.0);
    EXPECT_EQ(h.domain_at(1), (Box{0, 0, 63, 63}));
    EXPECT_NEAR(h.xc(0, 0), 0.5 / 32.0, 1e-15);
  });
}

TEST(Hierarchy, RejectsBadConfig) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    auto cfg = small_config();
    cfg.domain = Box{};
    EXPECT_THROW(Hierarchy(world, cfg), ccaperf::Error);
    cfg = small_config();
    cfg.ratio = 1;
    EXPECT_THROW(Hierarchy(world, cfg), ccaperf::Error);
  });
}

}  // namespace
