// Ghost exchange under injected faults (DESIGN.md §8): the wait_some
// message engine must recover transparently from dropped/duplicated/
// delayed messages via the fabric's retransmission layer, and when a
// message can never arrive it must degrade gracefully — keep stale ghost
// data, count the degradation, and leave the rest of the exchange intact.

#include <gtest/gtest.h>

#include "amr/exchange.hpp"
#include "mpp/runtime.hpp"

namespace {

using amr::Box;
using amr::Level;
using amr::PatchData;
using amr::PatchInfo;

constexpr int kGhost = 2;
constexpr int kComp = 3;
constexpr double kStale = -999.0;  // the fill value ghosts start from

double field(int i, int j, int c) { return 1000.0 * c + 31.0 * j + i; }

Level make_level(const std::vector<int>& owners, int my_rank) {
  Level lvl(0, Box{0, 0, 15, 15}, 1);
  const Box boxes[4] = {{0, 0, 7, 7}, {8, 0, 15, 7}, {0, 8, 7, 15}, {8, 8, 15, 15}};
  for (int k = 0; k < 4; ++k)
    lvl.patches().push_back(
        PatchInfo{k, boxes[k], owners[static_cast<std::size_t>(k)]});
  for (const PatchInfo& p : lvl.patches()) {
    if (p.owner != my_rank) continue;
    PatchData<double> data(p.box, kGhost, kComp, kStale);
    for (int c = 0; c < kComp; ++c)
      for (int j = p.box.lo().j; j <= p.box.hi().j; ++j)
        for (int i = p.box.lo().i; i <= p.box.hi().i; ++i)
          data(i, j, c) = field(i, j, c);
    lvl.local_data().emplace(p.id, std::move(data));
  }
  return lvl;
}

/// Checks every local ghost cell covered by a neighbor: patches owned by
/// `stale_owner` must still hold the fill value (their message was lost);
/// everything else must hold the exchanged field. stale_owner = -1 means
/// a fully successful exchange.
void check_ghosts(const Level& lvl, int my_rank, int stale_owner) {
  for (const PatchInfo& p : lvl.patches()) {
    if (p.owner != my_rank) continue;
    const PatchData<double>& data = lvl.data(p.id);
    for (int c = 0; c < kComp; ++c) {
      for (int j = p.box.lo().j - kGhost; j <= p.box.hi().j + kGhost; ++j) {
        for (int i = p.box.lo().i - kGhost; i <= p.box.hi().i + kGhost; ++i) {
          if (p.box.contains(amr::IntVect{i, j})) continue;
          const PatchInfo* donor = nullptr;
          for (const PatchInfo& q : lvl.patches())
            if (q.id != p.id && q.box.contains(amr::IntVect{i, j})) donor = &q;
          if (donor == nullptr) continue;
          const double expect =
              donor->owner == stale_owner ? kStale : field(i, j, c);
          EXPECT_DOUBLE_EQ(data(i, j, c), expect)
              << "ghost (" << i << "," << j << "," << c << ") of patch " << p.id
              << " from donor patch " << donor->id;
        }
      }
    }
  }
}

TEST(ExchangeFaults, GhostFillRecoversUnderModerateFaults) {
  // The moderate chaos preset drops/delays/duplicates/reorders messages;
  // the recovery layer must make the exchange indistinguishable from a
  // clean one (retry delivers every loss, dedupe removes every copy).
  for (std::uint64_t seed : {1ULL, 0xFA57C0DEULL, 99ULL}) {
    mpp::RunOptions opts;
    opts.faults = mpp::FaultSpec::moderate(seed);
    mpp::FaultStats stats;
    mpp::Runtime::run(2, opts, [&](mpp::Comm& world) {
      Level lvl = make_level({0, 1, 0, 1}, world.rank());
      const amr::ExchangeStats st = amr::exchange_ghosts(world, lvl, kGhost, 0);
      check_ghosts(lvl, world.rank(), /*stale_owner=*/-1);
      EXPECT_EQ(st.stale_messages, 0u);
      EXPECT_EQ(st.send_failures, 0u);
      world.barrier();
      if (world.rank() == 0) stats = world.fault_stats();
    });
    EXPECT_EQ(stats.retries_exhausted, 0u) << "seed " << seed;
  }
}

TEST(ExchangeFaults, TimeoutFallsBackToStaleGhosts) {
  // Every message is dropped and retransmission is capped at one attempt,
  // so the packed ghost message can never arrive. The exchange must not
  // hang: the wait timeout fires, off-rank ghost regions keep their stale
  // data, and the degradation is counted on the fabric.
  mpp::RunOptions opts;
  opts.faults.drop = 1.0;
  opts.faults.retry_faults = true;  // retries drop too
  opts.faults.retry_base_steps = 1;
  opts.faults.retry_max_attempts = 1;
  opts.wait_timeout_us = 100e3;
  mpp::FaultStats stats;
  mpp::Runtime::run(2, opts, [&](mpp::Comm& world) {
    Level lvl = make_level({0, 1, 0, 1}, world.rank());
    const amr::ExchangeStats st = amr::exchange_ghosts(world, lvl, kGhost, 0);
    // Ghosts donated by the peer stay stale; same-rank copies still land.
    check_ghosts(lvl, world.rank(), /*stale_owner=*/1 - world.rank());
    EXPECT_GE(st.stale_messages, 1u);
    EXPECT_GE(st.stale_segments, 1u);
    EXPECT_EQ(st.messages_received, 0u);
    EXPECT_GT(st.local_copies, 0u);
    world.barrier();
    if (world.rank() == 0) stats = world.fault_stats();
  });
  EXPECT_GE(stats.stale_fallbacks, 2u);  // one per rank
  EXPECT_GE(stats.timeouts, 2u);
  EXPECT_EQ(stats.injected_drops, 2u);  // one packed message each way
}

}  // namespace
