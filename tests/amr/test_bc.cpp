#include <gtest/gtest.h>

#include "amr/bc.hpp"

namespace {

using amr::BcSpec;
using amr::BcType;
using amr::Box;
using amr::PatchData;

PatchData<double> make_patch(const Box& interior, const Box& domain) {
  PatchData<double> p(interior, 2, 2, 0.0);
  // Interior-of-domain cells get a recognizable pattern.
  const Box valid = p.grown_box() & domain;
  for (int c = 0; c < 2; ++c)
    for (int j = valid.lo().j; j <= valid.hi().j; ++j)
      for (int i = valid.lo().i; i <= valid.hi().i; ++i)
        p(i, j, c) = 1000.0 * c + 10.0 * j + i;
  return p;
}

TEST(Bc, InteriorPatchUntouched) {
  const Box domain{0, 0, 31, 31};
  auto p = make_patch(Box{8, 8, 15, 15}, domain);
  auto copy = p;
  amr::fill_physical_bc(p, domain, BcSpec{});
  for (std::size_t k = 0; k < p.raw().size(); ++k)
    EXPECT_DOUBLE_EQ(p.raw()[k], copy.raw()[k]);
}

TEST(Bc, TransmissiveClampsToEdgeCell) {
  const Box domain{0, 0, 15, 15};
  auto p = make_patch(Box{0, 0, 7, 7}, domain);
  amr::fill_physical_bc(p, domain, BcSpec{});
  // Ghost at i=-1 copies i=0; i=-2 also copies i=0.
  EXPECT_DOUBLE_EQ(p(-1, 3, 0), p(0, 3, 0));
  EXPECT_DOUBLE_EQ(p(-2, 3, 0), p(0, 3, 0));
  // Corner outside in both dims clamps both.
  EXPECT_DOUBLE_EQ(p(-1, -2, 1), p(0, 0, 1));
}

TEST(Bc, ReflectingMirrorsWithSign) {
  const Box domain{0, 0, 15, 15};
  auto p = make_patch(Box{0, 0, 7, 7}, domain);
  BcSpec bc;
  bc.ylo = BcType::reflecting;
  bc.reflect_sign_y = {1.0, -1.0};  // component 1 flips (e.g. y momentum)
  amr::fill_physical_bc(p, domain, bc);
  // j=-1 mirrors j=0; j=-2 mirrors j=1.
  EXPECT_DOUBLE_EQ(p(3, -1, 0), p(3, 0, 0));
  EXPECT_DOUBLE_EQ(p(3, -2, 0), p(3, 1, 0));
  EXPECT_DOUBLE_EQ(p(3, -1, 1), -p(3, 0, 1));
  EXPECT_DOUBLE_EQ(p(3, -2, 1), -p(3, 1, 1));
}

TEST(Bc, HighSideReflection) {
  const Box domain{0, 0, 15, 15};
  auto p = make_patch(Box{8, 8, 15, 15}, domain);
  BcSpec bc;
  bc.xhi = BcType::reflecting;
  bc.reflect_sign_x = {-1.0, 1.0};
  amr::fill_physical_bc(p, domain, bc);
  EXPECT_DOUBLE_EQ(p(16, 10, 0), -p(15, 10, 0));
  EXPECT_DOUBLE_EQ(p(17, 10, 0), -p(14, 10, 0));
  EXPECT_DOUBLE_EQ(p(16, 10, 1), p(15, 10, 1));
}

TEST(Bc, MissingSignsDefaultToPlusOne) {
  const Box domain{0, 0, 15, 15};
  auto p = make_patch(Box{0, 0, 7, 7}, domain);
  BcSpec bc;
  bc.xlo = BcType::reflecting;  // reflect_sign_x left empty
  amr::fill_physical_bc(p, domain, bc);
  EXPECT_DOUBLE_EQ(p(-1, 2, 0), p(0, 2, 0));
}

TEST(Bc, CornerReflectsBothAxes) {
  const Box domain{0, 0, 15, 15};
  auto p = make_patch(Box{0, 0, 7, 7}, domain);
  BcSpec bc;
  bc.xlo = BcType::reflecting;
  bc.ylo = BcType::reflecting;
  bc.reflect_sign_x = {-1.0, 1.0};
  bc.reflect_sign_y = {1.0, -1.0};
  amr::fill_physical_bc(p, domain, bc);
  EXPECT_DOUBLE_EQ(p(-1, -1, 0), -p(0, 0, 0));   // x sign only on comp 0
  EXPECT_DOUBLE_EQ(p(-1, -1, 1), -p(0, 0, 1));   // y sign only on comp 1
}

}  // namespace
