// Berger-Rigoutsos clustering properties: coverage of all flags, fill
// efficiency, disjointness, minimum widths, hole splitting, buffering.

#include <gtest/gtest.h>

#include "amr/berger_rigoutsos.hpp"
#include "support/rng.hpp"

namespace {

using amr::Box;
using amr::ClusterParams;
using amr::FlagField;
using amr::IntVect;

void expect_cover_all_flags(const FlagField& flags, const std::vector<Box>& boxes) {
  const Box r = flags.region();
  for (int j = r.lo().j; j <= r.hi().j; ++j) {
    for (int i = r.lo().i; i <= r.hi().i; ++i) {
      if (!flags.get({i, j})) continue;
      bool covered = false;
      for (const Box& b : boxes) covered |= b.contains(IntVect{i, j});
      EXPECT_TRUE(covered) << "flag (" << i << "," << j << ") uncovered";
    }
  }
}

void expect_disjoint(const std::vector<Box>& boxes) {
  for (std::size_t i = 0; i < boxes.size(); ++i)
    for (std::size_t j = i + 1; j < boxes.size(); ++j)
      EXPECT_FALSE(boxes[i].intersects(boxes[j]));
}

TEST(FlagField, SetGetAndCount) {
  FlagField f(Box{0, 0, 9, 9});
  EXPECT_EQ(f.count(), 0);
  f.set({3, 4});
  f.set({3, 4});  // idempotent
  f.set({100, 100});  // outside: ignored
  EXPECT_TRUE(f.get({3, 4}));
  EXPECT_FALSE(f.get({4, 3}));
  EXPECT_EQ(f.count(), 1);
}

TEST(FlagField, SetBoxAndCountIn) {
  FlagField f(Box{0, 0, 9, 9});
  f.set_box(Box{2, 2, 4, 4});
  EXPECT_EQ(f.count(), 9);
  EXPECT_EQ(f.count_in(Box{0, 0, 2, 2}), 1);
  f.set_box(Box{8, 8, 15, 15});  // clipped to region
  EXPECT_EQ(f.count(), 9 + 4);
}

TEST(FlagField, BufferDilates) {
  FlagField f(Box{0, 0, 9, 9});
  f.set({5, 5});
  f.buffer(1);
  EXPECT_EQ(f.count(), 9);
  EXPECT_TRUE(f.get({4, 4}));
  EXPECT_TRUE(f.get({6, 6}));
  EXPECT_FALSE(f.get({3, 5}));
}

TEST(FlagField, BufferClipsAtRegionEdge) {
  FlagField f(Box{0, 0, 9, 9});
  f.set({0, 0});
  f.buffer(2);
  EXPECT_EQ(f.count(), 9);  // quarter of the 5x5 stencil
}

TEST(FlagField, ClipToRemovesOutsideFlags) {
  FlagField f(Box{0, 0, 9, 9});
  f.set_box(Box{0, 0, 9, 9});
  f.clip_to({Box{0, 0, 4, 9}});
  EXPECT_EQ(f.count(), 50);
  EXPECT_FALSE(f.get({5, 0}));
}

TEST(BergerRigoutsos, EmptyFlagsGiveNoBoxes) {
  FlagField f(Box{0, 0, 31, 31});
  EXPECT_TRUE(amr::berger_rigoutsos(f, ClusterParams{0.8, 2, 0}).empty());
}

TEST(BergerRigoutsos, SingleDenseBlockAccepted) {
  FlagField f(Box{0, 0, 31, 31});
  f.set_box(Box{4, 4, 11, 11});
  const auto boxes = amr::berger_rigoutsos(f, ClusterParams{0.8, 2, 0});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], (Box{4, 4, 11, 11}));  // tight bounding box
}

TEST(BergerRigoutsos, TwoSeparatedBlobsSplitAtHole) {
  FlagField f(Box{0, 0, 63, 15});
  f.set_box(Box{2, 2, 9, 9});
  f.set_box(Box{40, 4, 47, 11});
  const auto boxes = amr::berger_rigoutsos(f, ClusterParams{0.8, 2, 0});
  EXPECT_EQ(boxes.size(), 2u);
  expect_cover_all_flags(f, boxes);
  expect_disjoint(boxes);
}

TEST(BergerRigoutsos, DiagonalNeedsRecursiveSplitting) {
  FlagField f(Box{0, 0, 63, 63});
  for (int k = 0; k < 64; ++k) f.set({k, k});
  const auto boxes = amr::berger_rigoutsos(f, ClusterParams{0.5, 4, 0});
  expect_cover_all_flags(f, boxes);
  expect_disjoint(boxes);
  EXPECT_GT(boxes.size(), 2u);  // a single box would have efficiency 1/64
}

TEST(BergerRigoutsos, EfficiencyHonoredWhenSplittable) {
  ccaperf::Rng rng(5);
  FlagField f(Box{0, 0, 127, 127});
  // Two dense clusters plus sparse noise.
  f.set_box(Box{10, 10, 30, 30});
  f.set_box(Box{90, 90, 120, 110});
  for (int k = 0; k < 30; ++k)
    f.set({static_cast<int>(rng.uniform_int(40, 80)),
           static_cast<int>(rng.uniform_int(40, 80))});
  const ClusterParams p{0.7, 4, 0};
  const auto boxes = amr::berger_rigoutsos(f, p);
  expect_cover_all_flags(f, boxes);
  expect_disjoint(boxes);
  long covered = 0;
  for (const Box& b : boxes) covered += b.num_pts();
  // Aggregate efficiency should be far better than one bounding box.
  EXPECT_LT(covered, f.region().num_pts() / 2);
}

TEST(BergerRigoutsos, MinWidthRespected) {
  FlagField f(Box{0, 0, 63, 63});
  for (int k = 0; k < 64; k += 7) f.set({k, 32});
  const auto boxes = amr::berger_rigoutsos(f, ClusterParams{0.9, 4, 0});
  for (const Box& b : boxes) {
    // Accepted boxes may be smaller than min_width only if the bounding
    // box itself was; a 1-cell-high line keeps height 1 but splitting
    // never produces pieces narrower than min_width.
    EXPECT_TRUE(b.width() >= 4 || b.width() == boxes[0].width());
  }
  expect_cover_all_flags(f, boxes);
}

TEST(BergerRigoutsos, MaxWidthForcesSplit) {
  FlagField f(Box{0, 0, 255, 7});
  f.set_box(Box{0, 0, 255, 7});  // fully dense strip
  const auto boxes = amr::berger_rigoutsos(f, ClusterParams{0.8, 4, 64});
  EXPECT_GE(boxes.size(), 4u);
  for (const Box& b : boxes) EXPECT_LE(b.width(), 130);  // roughly bounded
  expect_cover_all_flags(f, boxes);
  expect_disjoint(boxes);
}

TEST(BergerRigoutsos, RandomFlagsPropertySweep) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ccaperf::Rng rng(seed);
    FlagField f(Box{0, 0, 95, 95});
    const int nblobs = static_cast<int>(rng.uniform_int(1, 5));
    for (int b = 0; b < nblobs; ++b) {
      const int x = static_cast<int>(rng.uniform_int(0, 80));
      const int y = static_cast<int>(rng.uniform_int(0, 80));
      f.set_box(Box{x, y, x + static_cast<int>(rng.uniform_int(2, 14)),
                    y + static_cast<int>(rng.uniform_int(2, 14))});
    }
    const auto boxes = amr::berger_rigoutsos(f, ClusterParams{0.75, 4, 0});
    expect_cover_all_flags(f, boxes);
    expect_disjoint(boxes);
  }
}

TEST(BergerRigoutsos, RejectsBadParams) {
  FlagField f(Box{0, 0, 7, 7});
  EXPECT_THROW(amr::berger_rigoutsos(f, ClusterParams{0.0, 4, 0}), ccaperf::Error);
  EXPECT_THROW(amr::berger_rigoutsos(f, ClusterParams{0.8, 0, 0}), ccaperf::Error);
}

}  // namespace
