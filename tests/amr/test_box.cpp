// Box calculus: intersection, growth, refinement/coarsening round trips,
// subtraction coverage properties.

#include <gtest/gtest.h>

#include "amr/box.hpp"
#include "support/rng.hpp"

namespace {

using amr::Box;
using amr::IntVect;

TEST(Box, BasicsAndEmptiness) {
  const Box b{0, 0, 3, 1};
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.width(), 4);
  EXPECT_EQ(b.height(), 2);
  EXPECT_EQ(b.num_pts(), 8);
  EXPECT_TRUE(Box{}.empty());
  EXPECT_EQ(Box{}.num_pts(), 0);
}

TEST(Box, Contains) {
  const Box b{1, 1, 4, 3};
  EXPECT_TRUE(b.contains(IntVect{1, 1}));
  EXPECT_TRUE(b.contains(IntVect{4, 3}));
  EXPECT_FALSE(b.contains(IntVect{0, 1}));
  EXPECT_FALSE(b.contains(IntVect{5, 3}));
  EXPECT_TRUE(b.contains(Box{2, 2, 3, 3}));
  EXPECT_FALSE(b.contains(Box{2, 2, 5, 3}));
  EXPECT_TRUE(b.contains(Box{}));  // empty box is everywhere
}

TEST(Box, Intersection) {
  const Box a{0, 0, 5, 5}, b{3, 3, 8, 8};
  const Box i = a & b;
  EXPECT_EQ(i, (Box{3, 3, 5, 5}));
  EXPECT_TRUE((a & Box{6, 6, 9, 9}).empty());
  EXPECT_TRUE((a & Box{}).empty());
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(Box{6, 0, 8, 5}));
}

TEST(Box, GrowAndShift) {
  const Box b{2, 2, 4, 4};
  EXPECT_EQ(b.grown(1), (Box{1, 1, 5, 5}));
  EXPECT_EQ(b.grown(2, 0), (Box{0, 2, 6, 4}));
  EXPECT_EQ(b.shifted(IntVect{3, -1}), (Box{5, 1, 7, 3}));
  EXPECT_TRUE(Box{}.grown(5).empty());
}

TEST(Box, RefineCoarsenRoundTrip) {
  const Box b{1, 2, 6, 9};
  const Box fine = b.refined(2);
  EXPECT_EQ(fine, (Box{2, 4, 13, 19}));
  EXPECT_EQ(fine.coarsened(2), b);
  EXPECT_EQ(fine.num_pts(), b.num_pts() * 4);
}

TEST(Box, CoarsenRoundsTowardMinusInfinity) {
  // floor division matters for negative indices.
  const Box b{-3, -3, 2, 2};
  const Box c = b.coarsened(2);
  EXPECT_EQ(c, (Box{-2, -2, 1, 1}));
  EXPECT_TRUE(c.refined(2).contains(b));
}

TEST(Box, FloorDiv) {
  EXPECT_EQ(amr::floor_div(5, 2), 2);
  EXPECT_EQ(amr::floor_div(-5, 2), -3);
  EXPECT_EQ(amr::floor_div(-4, 2), -2);
  EXPECT_EQ(amr::floor_div(0, 2), 0);
}

TEST(BoxSubtract, DisjointReturnsOriginal) {
  const Box a{0, 0, 3, 3};
  const auto pieces = amr::box_subtract(a, Box{10, 10, 12, 12});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], a);
}

TEST(BoxSubtract, FullCoverageReturnsNothing) {
  const Box a{1, 1, 3, 3};
  EXPECT_TRUE(amr::box_subtract(a, Box{0, 0, 5, 5}).empty());
}

TEST(BoxSubtract, CenterHoleYieldsFourPieces) {
  const Box a{0, 0, 9, 9};
  const Box hole{3, 3, 6, 6};
  const auto pieces = amr::box_subtract(a, hole);
  EXPECT_EQ(pieces.size(), 4u);
  EXPECT_EQ(amr::total_pts(pieces), a.num_pts() - hole.num_pts());
  // Pieces are disjoint and avoid the hole.
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    EXPECT_FALSE(pieces[i].intersects(hole));
    for (std::size_t j = i + 1; j < pieces.size(); ++j)
      EXPECT_FALSE(pieces[i].intersects(pieces[j]));
  }
}

TEST(BoxSubtract, PropertyCoverageAndDisjointness) {
  // Random rectangles: a \ b pieces tile exactly a minus the overlap.
  ccaperf::Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    auto rnd_box = [&rng]() {
      const int x = static_cast<int>(rng.uniform_int(-10, 10));
      const int y = static_cast<int>(rng.uniform_int(-10, 10));
      return Box{x, y, x + static_cast<int>(rng.uniform_int(0, 8)),
                 y + static_cast<int>(rng.uniform_int(0, 8))};
    };
    const Box a = rnd_box(), b = rnd_box();
    const auto pieces = amr::box_subtract(a, b);
    EXPECT_EQ(amr::total_pts(pieces), a.num_pts() - (a & b).num_pts());
    for (const Box& p : pieces) {
      EXPECT_TRUE(a.contains(p));
      EXPECT_FALSE(p.intersects(b));
    }
    for (std::size_t i = 0; i < pieces.size(); ++i)
      for (std::size_t j = i + 1; j < pieces.size(); ++j)
        EXPECT_FALSE(pieces[i].intersects(pieces[j]));
  }
}

TEST(BoxSubtractAll, SubtractsUnion) {
  const Box a{0, 0, 9, 9};
  const std::vector<Box> cover{{0, 0, 4, 9}, {5, 0, 9, 4}};
  const auto rest = amr::box_subtract_all(a, cover);
  EXPECT_EQ(amr::total_pts(rest), 25);  // the 5x5 corner
  for (const Box& r : rest) {
    for (const Box& c : cover) EXPECT_FALSE(r.intersects(c));
  }
}

TEST(BoxSubtractAll, EmptyResultWhenCovered) {
  const Box a{0, 0, 7, 7};
  EXPECT_TRUE(amr::box_subtract_all(a, {Box{0, 0, 7, 3}, Box{0, 4, 7, 7}}).empty());
}

TEST(Box, ToStringRenders) {
  EXPECT_EQ((Box{0, 1, 2, 3}).to_string(), "[(0,1)..(2,3)]");
  EXPECT_EQ(Box{}.to_string(), "[empty]");
}

}  // namespace
