// Point-to-point semantics of the mpp fabric: matching, wildcards,
// non-overtaking order, unexpected messages, truncation, Waitsome/Waitall,
// request cancellation and failure propagation.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpp/runtime.hpp"
#include "support/error.hpp"

namespace {

using mpp::Comm;
using mpp::Request;
using mpp::Runtime;
using mpp::Status;

TEST(P2P, BlockingSendRecvRoundTrip) {
  Runtime::run(2, [](Comm& world) {
    std::vector<double> buf(8);
    if (world.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 1.0);
      world.send<double>(buf, 1, 7);
    } else {
      Status s = world.recv<double>(buf, 0, 7);
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(s.tag, 7);
      EXPECT_EQ(s.bytes, 8 * sizeof(double));
      for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(buf[static_cast<std::size_t>(i)], i + 1.0);
    }
  });
}

TEST(P2P, NonblockingRoundTrip) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      Request r = world.isend<int>(data, 1, 0);
      Status s = r.wait();
      EXPECT_EQ(s.bytes, 3 * sizeof(int));
    } else {
      std::vector<int> data(3);
      Request r = world.irecv<int>(data, 0, 0);
      Status s = r.wait();
      EXPECT_EQ(s.source, 0);
      EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(P2P, UnexpectedMessageIsBufferedUntilRecv) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const int v = 42;
      world.send_bytes(&v, sizeof v, 1, 5);
      world.barrier();  // ensure the send landed before the recv is posted
    } else {
      world.barrier();
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 5);
      EXPECT_EQ(v, 42);
    }
  });
}

TEST(P2P, AnySourceAndAnyTagMatch) {
  Runtime::run(3, [](Comm& world) {
    if (world.rank() != 0) {
      const int v = world.rank() * 100;
      world.send_bytes(&v, sizeof v, 0, world.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        Status s = world.recv_bytes(&v, sizeof v, mpp::any_source, mpp::any_tag);
        EXPECT_EQ(v, s.source * 100);
        EXPECT_EQ(s.tag, s.source);
        seen += s.source;
      }
      EXPECT_EQ(seen, 3);  // ranks 1 and 2
    }
  });
}

TEST(P2P, TagSelectivity) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const int a = 1, b = 2;
      world.send_bytes(&a, sizeof a, 1, 10);
      world.send_bytes(&b, sizeof b, 1, 20);
    } else {
      int v = 0;
      // Receive tag 20 first even though tag 10 arrived first.
      world.recv_bytes(&v, sizeof v, 0, 20);
      EXPECT_EQ(v, 2);
      world.recv_bytes(&v, sizeof v, 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(P2P, NonOvertakingOrderPerSourceAndTag) {
  // Messages with identical (source, tag) must be received in send order.
  Runtime::run(2, [](Comm& world) {
    constexpr int kN = 200;
    if (world.rank() == 0) {
      for (int i = 0; i < kN; ++i) world.send_bytes(&i, sizeof i, 1, 3);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        world.recv_bytes(&v, sizeof v, 0, 3);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2P, TruncationThrows) {
  EXPECT_THROW(
      Runtime::run(2,
                   [](Comm& world) {
                     if (world.rank() == 0) {
                       const std::vector<int> big(16, 1);
                       world.send<int>(big, 1, 0);
                     } else {
                       std::vector<int> small(4);
                       world.recv<int>(small, 0, 0);
                     }
                   }),
      ccaperf::Error);
}

TEST(P2P, WaitSomeReturnsCompletedSubset) {
  Runtime::run(2, [](Comm& world) {
    constexpr int kMsgs = 8;
    if (world.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        const int v = i;
        world.send_bytes(&v, sizeof v, 1, i);
      }
    } else {
      std::vector<int> values(kMsgs, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < kMsgs; ++i)
        reqs.push_back(world.irecv_bytes(&values[static_cast<std::size_t>(i)],
                                         sizeof(int), 0, i));
      std::vector<int> idx;
      std::size_t completed = 0;
      while (completed < kMsgs) {
        const std::size_t n = mpp::wait_some(reqs, idx);
        ASSERT_GE(n, 1u);
        for (int i : idx) EXPECT_FALSE(reqs[static_cast<std::size_t>(i)].valid());
        completed += n;
      }
      for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(values[static_cast<std::size_t>(i)], i);
      // All requests consumed: another wait_some returns 0 immediately.
      EXPECT_EQ(mpp::wait_some(reqs, idx), 0u);
    }
  });
}

TEST(P2P, WaitSomeReportsStatuses) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const double v = 3.5;
      world.send_bytes(&v, sizeof v, 1, 9);
    } else {
      double v = 0;
      std::vector<Request> reqs;
      reqs.push_back(world.irecv_bytes(&v, sizeof v, 0, 9));
      std::vector<int> idx;
      std::vector<Status> st;
      std::size_t done = 0;
      while (done == 0) done = mpp::wait_some(reqs, idx, &st);
      ASSERT_EQ(st.size(), 1u);
      EXPECT_EQ(st[0].source, 0);
      EXPECT_EQ(st[0].tag, 9);
      EXPECT_EQ(st[0].bytes, sizeof(double));
      EXPECT_DOUBLE_EQ(v, 3.5);
    }
  });
}

TEST(P2P, WaitAllCompletesEverything) {
  Runtime::run(2, [](Comm& world) {
    constexpr int kMsgs = 16;
    std::vector<int> send(kMsgs), recv(kMsgs, -1);
    std::iota(send.begin(), send.end(), 0);
    std::vector<Request> reqs;
    const int peer = 1 - world.rank();
    for (int i = 0; i < kMsgs; ++i) {
      reqs.push_back(world.irecv_bytes(&recv[static_cast<std::size_t>(i)],
                                       sizeof(int), peer, i));
    }
    for (int i = 0; i < kMsgs; ++i)
      world.send_bytes(&send[static_cast<std::size_t>(i)], sizeof(int), peer, i);
    mpp::wait_all(reqs);
    EXPECT_EQ(recv, send);
    for (const Request& r : reqs) EXPECT_FALSE(r.valid());
  });
}

TEST(P2P, TestPollsWithoutBlocking) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.barrier();
      const int v = 1;
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      Request r = world.irecv_bytes(&v, sizeof v, 0, 0);
      EXPECT_FALSE(r.test().has_value());  // nothing sent yet
      world.barrier();
      while (!r.test()) {
      }
      EXPECT_EQ(v, 1);
      EXPECT_FALSE(r.valid());
    }
  });
}

TEST(P2P, AbandonedRecvIsCancelledSafely) {
  // Dropping a pending irecv must deregister its buffer; a later message
  // with that tag must not be written through the stale pointer.
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 1) {
      {
        std::vector<int> doomed(4);
        Request r = world.irecv<int>(doomed, 0, 77);
        // r destroyed here while still pending -> cancelled.
      }
      world.barrier();   // now let rank 0 send
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 77);
      EXPECT_EQ(v, 5);
    } else {
      world.barrier();
      const int v = 5;
      world.send_bytes(&v, sizeof v, 1, 77);
    }
  });
}

TEST(P2P, SelfSendRecv) {
  Runtime::run(1, [](Comm& world) {
    const int out = 13;
    int in = 0;
    Request r = world.irecv_bytes(&in, sizeof in, 0, 1);
    world.send_bytes(&out, sizeof out, 0, 1);
    r.wait();
    EXPECT_EQ(in, 13);
  });
}

TEST(P2P, RankFailurePropagatesInsteadOfDeadlocking) {
  EXPECT_THROW(
      Runtime::run(2,
                   [](Comm& world) {
                     if (world.rank() == 0) ccaperf::raise("deliberate failure");
                     int v = 0;
                     world.recv_bytes(&v, sizeof v, 0, 0);  // would block forever
                   }),
      ccaperf::Error);
}

TEST(P2P, InvalidDestinationThrows) {
  EXPECT_THROW(Runtime::run(1,
                            [](Comm& world) {
                              const int v = 0;
                              world.send_bytes(&v, sizeof v, 3, 0);
                            }),
               ccaperf::Error);
}

}  // namespace
