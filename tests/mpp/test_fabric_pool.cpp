// Buffer pool + rendezvous protocol tests: small sends stage through the
// fabric's size-classed slab pool (steady state allocates nothing), large
// sends take the single-copy rendezvous path, and both flavours preserve
// MPI's non-overtaking matching order per (source, tag).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::Fabric;
using mpp::Request;
using mpp::Runtime;

TEST(BufferPool, SlabsAreReusedAcrossAcquireRelease) {
  mpp::detail::BufferPool pool;
  auto a = pool.acquire(100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_GE(a.capacity(), 128u);  // rounded up to its size class
  pool.release(std::move(a));
  auto b = pool.acquire(80);  // same class (128 B): must reuse the slab
  EXPECT_EQ(b.size(), 80u);
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.releases, 1u);
  EXPECT_EQ(s.discards, 0u);
}

TEST(BufferPool, OversizeSlabsAreNotPooled) {
  mpp::detail::BufferPool pool;
  auto big = pool.acquire(Fabric::kRendezvousBytes * 4);
  pool.release(std::move(big));
  // A slab larger than the top class still files under the top class (its
  // capacity covers every request of that class)...
  auto again = pool.acquire(Fabric::kRendezvousBytes);
  EXPECT_EQ(pool.stats().reuses, 1u);
  // ...but a sub-minimum slab is dropped.
  pool.release(std::vector<std::byte>(8));
  EXPECT_EQ(pool.stats().discards, 1u);
  (void)again;
}

TEST(BufferPool, UnexpectedTrafficReusesSlabs) {
  // Messages park unexpected (receiver posts late), so every send stages
  // through the pool; from round 2 on the slabs come from the free lists.
  Runtime::run(2, [](Comm& world) {
    constexpr int kRounds = 4, kMsgs = 16;
    for (int round = 0; round < kRounds; ++round) {
      if (world.rank() == 0) {
        std::vector<std::uint32_t> payload(64, static_cast<std::uint32_t>(round));
        for (int k = 0; k < kMsgs; ++k) world.send<std::uint32_t>(payload, 1, k);
      }
      world.barrier();  // all sends parked before any receive posts
      if (world.rank() == 1) {
        std::vector<std::uint32_t> buf(64);
        for (int k = 0; k < kMsgs; ++k) {
          world.recv<std::uint32_t>(buf, 0, k);
          EXPECT_EQ(buf[0], static_cast<std::uint32_t>(round));
        }
      }
      world.barrier();  // slabs released before the next round's sends
    }
    const auto s = world.pool_stats();
    EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kRounds * kMsgs));
    EXPECT_GE(s.reuses, static_cast<std::uint64_t>((kRounds - 1) * kMsgs));
    EXPECT_EQ(s.releases, s.acquires);
  });
}

TEST(Rendezvous, LargeUnexpectedMessageArrivesIntactWithoutStaging) {
  // A parked large message must not be staged through the pool (zero-copy
  // descriptor) and must arrive bit-exact via the single rendezvous copy.
  Runtime::run(2, [](Comm& world) {
    const std::size_t n = Fabric::kRendezvousBytes / sizeof(double) * 3;
    if (world.rank() == 0) {
      std::vector<double> big(n);
      std::iota(big.begin(), big.end(), 0.5);
      Request req = world.isend<double>(big, 1, 0);
      world.barrier();  // message is parked before the receive posts
      req.wait();
    } else {
      world.barrier();
      std::vector<double> big(n);
      world.recv<double>(big, 0, 0);
      EXPECT_DOUBLE_EQ(big.front(), 0.5);
      EXPECT_DOUBLE_EQ(big.back(), static_cast<double>(n - 1) + 0.5);
    }
    EXPECT_EQ(world.pool_stats().acquires, 0u);  // no staging slab allocated
  });
}

TEST(Rendezvous, MixedSizesStayNonOvertakingPerSourceAndTag) {
  // Alternating eager/rendezvous messages on one (source, tag) must be
  // received in send order even though they park via different mechanisms.
  Runtime::run(2, [](Comm& world) {
    constexpr int kMsgs = 12;
    const std::size_t small_n = 64;
    const std::size_t large_n = Fabric::kRendezvousBytes / sizeof(std::uint32_t) + 7;
    if (world.rank() == 0) {
      std::vector<std::vector<std::uint32_t>> payloads;
      std::vector<Request> reqs;
      for (int k = 0; k < kMsgs; ++k) {
        payloads.emplace_back(k % 2 == 0 ? small_n : large_n,
                              static_cast<std::uint32_t>(k));
        reqs.push_back(world.isend<std::uint32_t>(payloads.back(), 1, 5));
      }
      world.barrier();  // everything parked before the receiver starts
      mpp::wait_all(reqs);
    } else {
      world.barrier();
      std::vector<std::uint32_t> buf(large_n);
      for (int k = 0; k < kMsgs; ++k) {
        const mpp::Status s = world.recv<std::uint32_t>(buf, 0, 5);
        const std::size_t words = s.bytes / sizeof(std::uint32_t);
        EXPECT_EQ(words, k % 2 == 0 ? small_n : large_n);
        EXPECT_EQ(buf[0], static_cast<std::uint32_t>(k)) << "message overtook";
        EXPECT_EQ(buf[words - 1], static_cast<std::uint32_t>(k));
      }
    }
  });
}

TEST(Rendezvous, WaitsomeDrainsMixedEagerAndRendezvousRecvs) {
  // The AMR pattern with a rendezvous-sized flow mixed in: irecvs posted
  // up front, completed by repeated wait_some as sends trickle in.
  Runtime::run(3, [](Comm& world) {
    const std::size_t large_n = Fabric::kRendezvousBytes / sizeof(double) + 3;
    if (world.rank() == 0) {
      std::vector<std::vector<double>> inbox;
      std::vector<Request> reqs;
      for (int src = 1; src < 3; ++src) {
        inbox.emplace_back(large_n);
        reqs.push_back(world.irecv<double>(inbox.back(), src, 0));
        inbox.emplace_back(8);
        reqs.push_back(world.irecv<double>(inbox.back(), src, 1));
      }
      std::vector<int> done;
      std::size_t completed = 0;
      while (completed < reqs.size()) {
        const std::size_t c = mpp::wait_some(reqs, done);
        ASSERT_GT(c, 0u);
        completed += c;
      }
      for (std::size_t i = 0; i < inbox.size(); ++i)
        EXPECT_DOUBLE_EQ(inbox[i].back(), 42.0) << "slot " << i;
    } else {
      std::vector<double> large(large_n, 42.0), small(8, 42.0);
      world.send<double>(large, 0, 0);
      world.send<double>(small, 0, 1);
    }
  });
}

TEST(Rendezvous, CancelledSendIsRemovedFromTheUnexpectedQueue) {
  // Dropping the handle of an unmatched rendezvous isend must de-park its
  // descriptor: the receiver then sees only the replacement message.
  Runtime::run(2, [](Comm& world) {
    const std::size_t n = Fabric::kRendezvousBytes / sizeof(double) + 1;
    if (world.rank() == 0) {
      {
        std::vector<double> doomed(n, -1.0);
        Request req = world.isend<double>(doomed, 1, 3);
        // req dropped here: the parked descriptor must be removed before
        // `doomed` goes out of scope.
      }
      std::vector<double> kept(n, 7.0);
      Request req = world.isend<double>(kept, 1, 3);
      world.barrier();
      req.wait();
    } else {
      world.barrier();
      std::vector<double> buf(n);
      world.recv<double>(buf, 0, 3);
      EXPECT_DOUBLE_EQ(buf.front(), 7.0);
      EXPECT_DOUBLE_EQ(buf.back(), 7.0);
    }
  });
}

TEST(Rendezvous, BlockingSendCompletesAgainstPostedReceive) {
  // A posted receive matches a large send directly (one copy, no park):
  // the blocking send must not hang.
  Runtime::run(2, [](Comm& world) {
    const std::size_t n = Fabric::kRendezvousBytes / sizeof(double) * 2;
    if (world.rank() == 0) {
      std::vector<double> buf(n);
      Request req = world.irecv<double>(buf, 1, 0);
      world.barrier();  // receive is posted before the send starts
      req.wait();
      EXPECT_DOUBLE_EQ(buf[n / 2], 3.25);
    } else {
      std::vector<double> big(n, 3.25);
      world.barrier();
      world.send<double>(big, 0, 0);
    }
  });
}

}  // namespace
