// Message-endpoint hook events: every point-to-point message must be
// reported to CommHooks on BOTH sides with the same (src, dst, seq)
// identity, across all completion paths (blocking recv, wait, test,
// wait_some, unexpected arrival). This identity is what core::TraceMerger
// uses to draw cross-rank flow arrows, so it has to be exact — never
// inferred from timestamps.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::MsgEvent;
using mpp::Request;
using mpp::Runtime;

/// Records every endpoint event fired on the installing rank.
struct RecordingHooks : mpp::CommHooks {
  void on_begin(const char*) override {}
  void on_end(const char*, std::size_t) override {}
  void on_message_send(const MsgEvent& e) override { sends.push_back(e); }
  void on_message_recv(const MsgEvent& e) override { recvs.push_back(e); }
  std::vector<MsgEvent> sends;
  std::vector<MsgEvent> recvs;
};

/// Per-rank recorders shared across the rank threads; each rank writes
/// only its own slot, and checks happen after a barrier.
template <std::size_t N>
using Recorders = std::array<RecordingHooks, N>;

bool same_identity(const MsgEvent& a, const MsgEvent& b) {
  return a.src == b.src && a.dst == b.dst && a.seq == b.seq && a.tag == b.tag &&
         a.bytes == b.bytes;
}

TEST(MsgEvents, BlockingSendRecvAgreeOnIdentity) {
  Recorders<2> rec;
  Runtime::run(2, [&](Comm& world) {
    mpp::HooksInstaller install(&rec[static_cast<std::size_t>(world.rank())]);
    double v = 3.5;
    if (world.rank() == 0)
      world.send_bytes(&v, sizeof v, 1, 7);
    else
      world.recv_bytes(&v, sizeof v, 0, 7);
    world.barrier();

    if (world.rank() == 0) {
      ASSERT_EQ(rec[0].sends.size(), 1u);
      ASSERT_EQ(rec[1].recvs.size(), 1u);
      const MsgEvent& s = rec[0].sends[0];
      EXPECT_EQ(s.src, 0);
      EXPECT_EQ(s.dst, 1);
      EXPECT_EQ(s.tag, 7);
      EXPECT_EQ(s.bytes, sizeof(double));
      EXPECT_EQ(s.seq, 1u);  // first message on the (0,1) ordered pair
      EXPECT_TRUE(same_identity(s, rec[1].recvs[0]));
      EXPECT_TRUE(rec[0].recvs.empty());
      EXPECT_TRUE(rec[1].sends.empty());
    }
  });
}

TEST(MsgEvents, PairSequenceIsMonotonicAndPerDirection) {
  Recorders<2> rec;
  Runtime::run(2, [&](Comm& world) {
    mpp::HooksInstaller install(&rec[static_cast<std::size_t>(world.rank())]);
    const int peer = 1 - world.rank();
    int v = world.rank();
    // Three messages each way; opposite directions must not share a
    // sequence space.
    for (int i = 0; i < 3; ++i) {
      if (world.rank() == 0) {
        world.send_bytes(&v, sizeof v, peer, i);
        world.recv_bytes(&v, sizeof v, peer, i);
      } else {
        world.recv_bytes(&v, sizeof v, peer, i);
        world.send_bytes(&v, sizeof v, peer, i);
      }
    }
    world.barrier();
    if (world.rank() == 0) {
      for (std::size_t r = 0; r < 2; ++r) {
        ASSERT_EQ(rec[r].sends.size(), 3u);
        ASSERT_EQ(rec[r].recvs.size(), 3u);
        for (std::size_t i = 0; i < 3; ++i) {
          EXPECT_EQ(rec[r].sends[i].seq, i + 1);  // 1-based, send order
          EXPECT_TRUE(same_identity(rec[r].sends[i],
                                    rec[1 - r].recvs[i]));
        }
      }
    }
  });
}

TEST(MsgEvents, NonblockingWaitPathReportsRecv) {
  Recorders<2> rec;
  Runtime::run(2, [&](Comm& world) {
    mpp::HooksInstaller install(&rec[static_cast<std::size_t>(world.rank())]);
    std::vector<int> buf{1, 2, 3};
    if (world.rank() == 0) {
      Request r = world.isend<int>(buf, 1, 4);
      r.wait();
    } else {
      Request r = world.irecv<int>(buf, 0, 4);
      r.wait();
    }
    world.barrier();
    if (world.rank() == 0) {
      ASSERT_EQ(rec[0].sends.size(), 1u);
      ASSERT_EQ(rec[1].recvs.size(), 1u);
      EXPECT_TRUE(same_identity(rec[0].sends[0], rec[1].recvs[0]));
      EXPECT_EQ(rec[1].recvs[0].bytes, 3 * sizeof(int));
    }
  });
}

TEST(MsgEvents, TestAndWaitsomeCompletionPathsReportRecv) {
  Recorders<2> rec;
  Runtime::run(2, [&](Comm& world) {
    mpp::HooksInstaller install(&rec[static_cast<std::size_t>(world.rank())]);
    int a = 0, b = 0;
    if (world.rank() == 0) {
      a = 10;
      b = 20;
      world.send_bytes(&a, sizeof a, 1, 1);
      world.send_bytes(&b, sizeof b, 1, 2);
    } else {
      Request r1 = world.irecv_bytes(&a, sizeof a, 0, 1);
      while (!r1.test()) {
      }
      std::vector<Request> reqs;
      reqs.push_back(world.irecv_bytes(&b, sizeof b, 0, 2));
      std::vector<int> done;
      while (mpp::wait_some(reqs, done) == 0) {
      }
    }
    world.barrier();
    if (world.rank() == 0) {
      ASSERT_EQ(rec[0].sends.size(), 2u);
      ASSERT_EQ(rec[1].recvs.size(), 2u);  // one via test(), one via wait_some
      for (std::size_t i = 0; i < 2; ++i)
        EXPECT_TRUE(same_identity(rec[0].sends[i], rec[1].recvs[i]));
    }
  });
}

TEST(MsgEvents, UnexpectedArrivalStillCarriesSenderIdentity) {
  Recorders<2> rec;
  Runtime::run(2, [&](Comm& world) {
    mpp::HooksInstaller install(&rec[static_cast<std::size_t>(world.rank())]);
    int v = 99;
    if (world.rank() == 0) {
      world.send_bytes(&v, sizeof v, 1, 5);
      world.barrier();  // message parks in rank 1's mailbox before the recv
    } else {
      world.barrier();
      world.recv_bytes(&v, sizeof v, mpp::any_source, mpp::any_tag);
    }
    world.barrier();
    if (world.rank() == 0) {
      ASSERT_EQ(rec[1].recvs.size(), 1u);
      // The wildcard receive must report the sender's true identity.
      EXPECT_TRUE(same_identity(rec[0].sends[0], rec[1].recvs[0]));
      EXPECT_EQ(rec[1].recvs[0].src, 0);
      EXPECT_EQ(rec[1].recvs[0].tag, 5);
    }
  });
}

TEST(MsgEvents, NoHooksInstalledMeansNoEvents) {
  // A rank without hooks must not crash or leak events elsewhere.
  Recorders<2> rec;
  Runtime::run(2, [&](Comm& world) {
    int v = 1;
    if (world.rank() == 0) {
      mpp::HooksInstaller install(&rec[0]);
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      world.recv_bytes(&v, sizeof v, 0, 0);  // no hooks on this rank
    }
    world.barrier();
    if (world.rank() == 0) {
      EXPECT_EQ(rec[0].sends.size(), 1u);
      EXPECT_TRUE(rec[1].recvs.empty());
    }
  });
}

}  // namespace
