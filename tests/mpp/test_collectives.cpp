// Collective semantics: every collective compared against a locally
// computed reference, across a sweep of communicator sizes.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::Runtime;

class CollectivesAtSize : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesAtSize, BarrierCompletes) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int i = 0; i < 5; ++i) world.barrier();
  });
}

TEST_P(CollectivesAtSize, BcastFromEveryRoot) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<double> data(4, -1.0);
      if (world.rank() == root)
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = root * 10.0 + static_cast<double>(i);
      world.bcast<double>(data, root);
      for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_DOUBLE_EQ(data[i], root * 10.0 + static_cast<double>(i));
    }
  });
}

TEST_P(CollectivesAtSize, AllreduceSum) {
  Runtime::run(GetParam(), [](Comm& world) {
    const int n = world.size();
    std::vector<long> in(3), out(3);
    for (int i = 0; i < 3; ++i) in[static_cast<std::size_t>(i)] = world.rank() + i;
    world.allreduce<long>(in, out);
    const long ranksum = static_cast<long>(n) * (n - 1) / 2;
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)], ranksum + static_cast<long>(n) * i);
  });
}

TEST_P(CollectivesAtSize, AllreduceMinMax) {
  Runtime::run(GetParam(), [](Comm& world) {
    const double mine = 1.0 + world.rank();
    EXPECT_DOUBLE_EQ((world.allreduce_value<mpp::MinOp<double>>(mine)), 1.0);
    EXPECT_DOUBLE_EQ((world.allreduce_value<mpp::MaxOp<double>>(mine)),
                     static_cast<double>(world.size()));
  });
}

TEST_P(CollectivesAtSize, ReduceToEveryRoot) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<int> in{world.rank()}, out{-1};
      world.reduce<int>(in, out, root);
      if (world.rank() == root)
        EXPECT_EQ(out[0], world.size() * (world.size() - 1) / 2);
      else
        EXPECT_EQ(out[0], -1);
    }
  });
}

TEST_P(CollectivesAtSize, AllgatherAssemblesRankChunks) {
  Runtime::run(GetParam(), [](Comm& world) {
    const std::vector<int> mine{world.rank() * 2, world.rank() * 2 + 1};
    std::vector<int> all(static_cast<std::size_t>(world.size()) * 2);
    world.allgather<int>(mine, all);
    for (std::size_t i = 0; i < all.size(); ++i)
      EXPECT_EQ(all[i], static_cast<int>(i));
  });
}

TEST_P(CollectivesAtSize, GatherToRoot) {
  Runtime::run(GetParam(), [](Comm& world) {
    const std::vector<int> mine{world.rank() + 100};
    std::vector<int> all(static_cast<std::size_t>(world.size()));
    world.gather<int>(mine, all, 0);
    if (world.rank() == 0) {
      for (int r = 0; r < world.size(); ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100);
    }
  });
}

TEST_P(CollectivesAtSize, AllgathervVariableChunks) {
  Runtime::run(GetParam(), [](Comm& world) {
    // Rank r contributes r+1 elements, value = r.
    const auto n = static_cast<std::size_t>(world.size());
    std::vector<std::size_t> counts(n);
    std::size_t total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      counts[r] = r + 1;
      total += r + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(world.rank()) + 1, world.rank());
    std::vector<int> all(total, -1);
    world.allgatherv<int>(mine, all, counts);
    std::size_t pos = 0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t k = 0; k < counts[r]; ++k)
        EXPECT_EQ(all[pos++], static_cast<int>(r));
  });
}

TEST_P(CollectivesAtSize, AlltoallTransposesChunks) {
  Runtime::run(GetParam(), [](Comm& world) {
    const auto n = static_cast<std::size_t>(world.size());
    std::vector<int> out(n), in(n);
    // in[d] = value I address to rank d.
    for (std::size_t d = 0; d < n; ++d)
      in[d] = world.rank() * 1000 + static_cast<int>(d);
    world.alltoall<int>(in, out);
    // out[s] = what rank s addressed to me.
    for (std::size_t s = 0; s < n; ++s)
      EXPECT_EQ(out[s], static_cast<int>(s) * 1000 + world.rank());
  });
}

TEST_P(CollectivesAtSize, BackToBackCollectivesDoNotCrosstalk) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int iter = 0; iter < 50; ++iter) {
      const double x = world.rank() + iter * 10.0;
      const double sum = world.allreduce_value<>(x);
      const int n = world.size();
      EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0 + iter * 10.0 * n);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesAtSize, ::testing::Values(1, 2, 3, 5, 8));

TEST(Collectives, MixedP2PAndCollectives) {
  Runtime::run(3, [](Comm& world) {
    // Interleave a nonblocking exchange ring with allreduces.
    for (int iter = 0; iter < 10; ++iter) {
      const int next = (world.rank() + 1) % world.size();
      const int prev = (world.rank() + world.size() - 1) % world.size();
      int out = world.rank() + iter, in = -1;
      mpp::Request rr = world.irecv_bytes(&in, sizeof in, prev, iter);
      mpp::Request sr = world.isend_bytes(&out, sizeof out, next, iter);
      const double total = world.allreduce_value<>(1.0);
      EXPECT_DOUBLE_EQ(total, 3.0);
      rr.wait();
      sr.wait();
      EXPECT_EQ(in, prev + iter);
    }
  });
}

}  // namespace
