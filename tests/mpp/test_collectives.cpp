// Collective semantics: every collective compared against a locally
// computed reference, across a sweep of communicator sizes.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::Runtime;

class CollectivesAtSize : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesAtSize, BarrierCompletes) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int i = 0; i < 5; ++i) world.barrier();
  });
}

TEST_P(CollectivesAtSize, BcastFromEveryRoot) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<double> data(4, -1.0);
      if (world.rank() == root)
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = root * 10.0 + static_cast<double>(i);
      world.bcast<double>(data, root);
      for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_DOUBLE_EQ(data[i], root * 10.0 + static_cast<double>(i));
    }
  });
}

TEST_P(CollectivesAtSize, AllreduceSum) {
  Runtime::run(GetParam(), [](Comm& world) {
    const int n = world.size();
    std::vector<long> in(3), out(3);
    for (int i = 0; i < 3; ++i) in[static_cast<std::size_t>(i)] = world.rank() + i;
    world.allreduce<long>(in, out);
    const long ranksum = static_cast<long>(n) * (n - 1) / 2;
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)], ranksum + static_cast<long>(n) * i);
  });
}

TEST_P(CollectivesAtSize, AllreduceMinMax) {
  Runtime::run(GetParam(), [](Comm& world) {
    const double mine = 1.0 + world.rank();
    EXPECT_DOUBLE_EQ((world.allreduce_value<mpp::MinOp<double>>(mine)), 1.0);
    EXPECT_DOUBLE_EQ((world.allreduce_value<mpp::MaxOp<double>>(mine)),
                     static_cast<double>(world.size()));
  });
}

TEST_P(CollectivesAtSize, ReduceToEveryRoot) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int root = 0; root < world.size(); ++root) {
      std::vector<int> in{world.rank()}, out{-1};
      world.reduce<int>(in, out, root);
      if (world.rank() == root)
        EXPECT_EQ(out[0], world.size() * (world.size() - 1) / 2);
      else
        EXPECT_EQ(out[0], -1);
    }
  });
}

TEST_P(CollectivesAtSize, AllgatherAssemblesRankChunks) {
  Runtime::run(GetParam(), [](Comm& world) {
    const std::vector<int> mine{world.rank() * 2, world.rank() * 2 + 1};
    std::vector<int> all(static_cast<std::size_t>(world.size()) * 2);
    world.allgather<int>(mine, all);
    for (std::size_t i = 0; i < all.size(); ++i)
      EXPECT_EQ(all[i], static_cast<int>(i));
  });
}

TEST_P(CollectivesAtSize, GatherToRoot) {
  Runtime::run(GetParam(), [](Comm& world) {
    const std::vector<int> mine{world.rank() + 100};
    std::vector<int> all(static_cast<std::size_t>(world.size()));
    world.gather<int>(mine, all, 0);
    if (world.rank() == 0) {
      for (int r = 0; r < world.size(); ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100);
    }
  });
}

TEST_P(CollectivesAtSize, AllgathervVariableChunks) {
  Runtime::run(GetParam(), [](Comm& world) {
    // Rank r contributes r+1 elements, value = r.
    const auto n = static_cast<std::size_t>(world.size());
    std::vector<std::size_t> counts(n);
    std::size_t total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      counts[r] = r + 1;
      total += r + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(world.rank()) + 1, world.rank());
    std::vector<int> all(total, -1);
    world.allgatherv<int>(mine, all, counts);
    std::size_t pos = 0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t k = 0; k < counts[r]; ++k)
        EXPECT_EQ(all[pos++], static_cast<int>(r));
  });
}

TEST_P(CollectivesAtSize, AlltoallTransposesChunks) {
  Runtime::run(GetParam(), [](Comm& world) {
    const auto n = static_cast<std::size_t>(world.size());
    std::vector<int> out(n), in(n);
    // in[d] = value I address to rank d.
    for (std::size_t d = 0; d < n; ++d)
      in[d] = world.rank() * 1000 + static_cast<int>(d);
    world.alltoall<int>(in, out);
    // out[s] = what rank s addressed to me.
    for (std::size_t s = 0; s < n; ++s)
      EXPECT_EQ(out[s], static_cast<int>(s) * 1000 + world.rank());
  });
}

TEST_P(CollectivesAtSize, BackToBackCollectivesDoNotCrosstalk) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int iter = 0; iter < 50; ++iter) {
      const double x = world.rank() + iter * 10.0;
      const double sum = world.allreduce_value<>(x);
      const int n = world.size();
      EXPECT_DOUBLE_EQ(sum, n * (n - 1) / 2.0 + iter * 10.0 * n);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesAtSize, ::testing::Values(1, 2, 3, 5, 8));

// --- Tree path at scale ---------------------------------------------------
//
// The dissemination barrier and Bruck allgather/allgatherv replaced the flat
// CollectiveBay implementations behind the same API (DESIGN.md §10). At 64
// (power of two) and 129 (odd, non-power-of-two) ranks these cases pin the
// two contracts that swap relies on: byte-identical results against both a
// locally computed reference and the retained flat path, and exactly
// ceil(log2 n) relay hops per rank per collective — the O(log n) witness
// that the tree, not the flat rendezvous, executed.

int ceil_log2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

/// Counts tree hops per outer MPI name plus the enclosing hook brackets, so
/// a test can assert both "O(log n) hops happened" and "the outer accounting
/// the TAU adapter sees is still one bracket per collective call".
struct HopCounter : mpp::CommHooks {
  void on_begin(const char* name) override {
    if (std::strcmp(name, "MPI_Barrier()") == 0) ++barrier_begins;
    if (std::strcmp(name, "MPI_Allgather()") == 0) ++allgather_begins;
    if (std::strcmp(name, "MPI_Allgatherv()") == 0) ++allgatherv_begins;
  }
  void on_end(const char*, std::size_t) override {}
  void on_collective_hop(const mpp::HopEvent& e) override {
    if (std::strcmp(e.op, "MPI_Barrier()") == 0) ++barrier_hops;
    if (std::strcmp(e.op, "MPI_Allgather()") == 0) ++allgather_hops;
    if (std::strcmp(e.op, "MPI_Allgatherv()") == 0) ++allgatherv_hops;
    hop_bytes += e.bytes;
  }
  int barrier_begins = 0, allgather_begins = 0, allgatherv_begins = 0;
  int barrier_hops = 0, allgather_hops = 0, allgatherv_hops = 0;
  std::size_t hop_bytes = 0;
};

class TreeCollectivesAtScale : public ::testing::TestWithParam<int> {};

TEST_P(TreeCollectivesAtScale, BarrierCompletesRepeatedly) {
  Runtime::run(GetParam(), [](Comm& world) {
    for (int i = 0; i < 4; ++i) world.barrier();
  });
}

TEST_P(TreeCollectivesAtScale, AllgatherMatchesFlatAndReference) {
  Runtime::run(GetParam(), [](Comm& world) {
    const auto n = static_cast<std::size_t>(world.size());
    std::vector<int> mine(3);
    for (int k = 0; k < 3; ++k)
      mine[static_cast<std::size_t>(k)] = world.rank() * 3 + k;
    std::vector<int> tree(n * 3, -1), flat(n * 3, -2);
    world.allgather<int>(mine, tree);
    world.allgather_bytes_flat(mine.data(), mine.size() * sizeof(int),
                               flat.data());
    EXPECT_EQ(tree, flat);
    for (std::size_t i = 0; i < tree.size(); ++i)
      EXPECT_EQ(tree[i], static_cast<int>(i));
  });
}

TEST_P(TreeCollectivesAtScale, AllgathervMatchesFlatAndReference) {
  Runtime::run(GetParam(), [](Comm& world) {
    // Variable chunks including empty ones: rank r contributes r % 4
    // elements of value r (zero-size contributions must round-trip both
    // paths — the sharded load balancer produces them when patches are
    // scarcer than ranks).
    const auto n = static_cast<std::size_t>(world.size());
    std::vector<std::size_t> counts(n);
    std::size_t total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      counts[r] = r % 4;
      total += counts[r];
    }
    std::vector<int> mine(static_cast<std::size_t>(world.rank() % 4),
                          world.rank());
    std::vector<int> tree(total, -1), flat(total, -2);
    world.allgatherv<int>(mine, tree, counts);
    std::vector<std::size_t> byte_counts(n);
    for (std::size_t r = 0; r < n; ++r) byte_counts[r] = counts[r] * sizeof(int);
    world.allgatherv_bytes_flat(mine.data(), mine.size() * sizeof(int),
                                flat.data(), byte_counts);
    EXPECT_EQ(tree, flat);
    std::size_t pos = 0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t k = 0; k < counts[r]; ++k)
        EXPECT_EQ(tree[pos++], static_cast<int>(r));
  });
}

TEST_P(TreeCollectivesAtScale, HopAccountingIsLogarithmicPerRank) {
  const int n = GetParam();
  const int rounds = ceil_log2(n);
  Runtime::run(n, [&](Comm& world) {
    HopCounter hc;
    mpp::HooksInstaller install(&hc);
    world.barrier();
    std::vector<int> mine{world.rank()};
    std::vector<int> all(static_cast<std::size_t>(n));
    world.allgather<int>(mine, all);
    const std::vector<std::size_t> counts(static_cast<std::size_t>(n), 1);
    world.allgatherv<int>(mine, all, counts);
    // One hop per algorithm round per rank, ceil(log2 n) rounds.
    EXPECT_EQ(hc.barrier_hops, rounds);
    EXPECT_EQ(hc.allgather_hops, rounds);
    EXPECT_EQ(hc.allgatherv_hops, rounds);
    // The outer brackets the TAU timers hang off are unchanged: exactly one
    // begin per collective call, hop events strictly inside them.
    EXPECT_EQ(hc.barrier_begins, 1);
    EXPECT_EQ(hc.allgather_begins, 1);
    EXPECT_EQ(hc.allgatherv_begins, 1);
    // The flat path reports no hops (it is a bay rendezvous, not a tree).
    const int tree_hops = hc.barrier_hops;
    world.barrier_flat();
    EXPECT_EQ(hc.barrier_hops, tree_hops);
    EXPECT_EQ(hc.barrier_begins, 2);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeCollectivesAtScale,
                         ::testing::Values(64, 129));

TEST(Collectives, MixedP2PAndCollectives) {
  Runtime::run(3, [](Comm& world) {
    // Interleave a nonblocking exchange ring with allreduces.
    for (int iter = 0; iter < 10; ++iter) {
      const int next = (world.rank() + 1) % world.size();
      const int prev = (world.rank() + world.size() - 1) % world.size();
      int out = world.rank() + iter, in = -1;
      mpp::Request rr = world.irecv_bytes(&in, sizeof in, prev, iter);
      mpp::Request sr = world.isend_bytes(&out, sizeof out, next, iter);
      const double total = world.allreduce_value<>(1.0);
      EXPECT_DOUBLE_EQ(total, 3.0);
      rr.wait();
      sr.wait();
      EXPECT_EQ(in, prev + iter);
    }
  });
}

}  // namespace
