// Property tests for the deterministic fault-injection layer (fault.hpp,
// DESIGN.md §8). The schedule is a pure hash of (seed, src, dst, seq,
// attempt), so the properties under test are strong:
//
//  (a) a zero-fault plan is byte-identical to the no-injection path —
//      same delivery log, zero counters, identical Perfetto export;
//  (b) the same seed yields the identical delivery order (and therefore
//      the identical Perfetto export) across independent runs;
//  (c) no silent faults: every fault the fabric injects or recovers from
//      is visible through CommHooks::on_fault, category by category.
//
// The script is phased so that exactly one rank drives the fabric at a
// time (sender while the receiver sits in a barrier, then vice versa);
// collectives never advance the fault clock, so the progress-step
// schedule — and with it the delivery order — is fully deterministic.

#include <gtest/gtest.h>

#include <array>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace_export.hpp"
#include "mpp/runtime.hpp"
#include "tau/trace_buffer.hpp"

namespace {

using mpp::Comm;
using mpp::FaultEvent;
using mpp::FaultKind;
using mpp::FaultSpec;
using mpp::FaultStats;
using mpp::MsgEvent;
using mpp::Request;
using mpp::Runtime;

/// Records message endpoints and fault events as one interleaved line log
/// (the byte-comparable "delivery order" of the properties above) plus a
/// per-category tally mirroring FaultStats for the no-silent-faults check.
struct FaultRecorder : mpp::CommHooks {
  void on_begin(const char*) override {}
  void on_end(const char*, std::size_t) override {}

  void on_message_send(const MsgEvent& e) override {
    sends.push_back(e);
    line("S %d>%d seq=%llu tag=%d bytes=%zu", e.src, e.dst,
         static_cast<unsigned long long>(e.seq), e.tag, e.bytes);
  }
  void on_message_recv(const MsgEvent& e) override {
    recvs.push_back(e);
    line("R %d>%d seq=%llu tag=%d bytes=%zu", e.src, e.dst,
         static_cast<unsigned long long>(e.seq), e.tag, e.bytes);
  }
  void on_fault(const FaultEvent& e) override {
    ++fault_events;
    switch (e.type) {
      case FaultEvent::Type::injected:
        switch (e.kind) {
          case FaultKind::drop: ++tally.injected_drops; break;
          case FaultKind::delay: ++tally.injected_delays; break;
          case FaultKind::duplicate: ++tally.injected_duplicates; break;
          case FaultKind::reorder: ++tally.injected_reorders; break;
          case FaultKind::stall: ++tally.injected_stalls; break;
          case FaultKind::none: break;
        }
        break;
      case FaultEvent::Type::retry: ++tally.retries; break;
      case FaultEvent::Type::retry_exhausted: ++tally.retries_exhausted; break;
      case FaultEvent::Type::duplicate_suppressed:
        ++tally.duplicates_suppressed;
        break;
      case FaultEvent::Type::timeout: ++tally.timeouts; break;
      case FaultEvent::Type::stale_fallback: ++tally.stale_fallbacks; break;
    }
    line("F t=%d k=%d %d>%d seq=%llu detail=%u", static_cast<int>(e.type),
         static_cast<int>(e.kind), e.src, e.dst,
         static_cast<unsigned long long>(e.seq), e.detail);
  }

  void line(const char* fmt, ...) {
    char buf[128];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    log += buf;
    log += '\n';
  }

  std::string log;
  std::vector<MsgEvent> sends;
  std::vector<MsgEvent> recvs;
  FaultStats tally;
  std::uint64_t fault_events = 0;
};

constexpr int kMsgs = 40;
constexpr std::size_t kBigBytes = 72 * 1024;  // > Fabric::kRendezvousBytes

std::size_t msg_bytes(int i) {
  // Mostly eager-sized, every ninth message rendezvous-class.
  return (i % 9 == 4) ? kBigBytes : 64 + 8 * static_cast<std::size_t>(i);
}

std::uint8_t pattern(int i, std::size_t k) {
  return static_cast<std::uint8_t>(31 * i + 7 * k + 3);
}

/// Each test() drives one fabric fault poll without consuming a message:
/// the request listens on a tag nobody sends, and dropping it cancels the
/// posted receive. Used to flush duplicate clones still held after the
/// drain so the counter comparisons are exact.
void drive_polls(Comm& world, int n) {
  std::uint8_t b = 0;
  Request r = world.irecv_bytes(&b, 1, 0, 9901);
  for (int k = 0; k < n; ++k) (void)r.test();
}

struct ScriptResult {
  std::string log;  ///< rank 0 log + rank 1 log
  FaultStats stats;  ///< fabric counters at end of run
  FaultStats hook_tally;  ///< summed per-rank hook-side tallies
  std::uint64_t hook_events = 0;
  std::vector<MsgEvent> sends;  ///< rank 0's send endpoints, issue order
  std::vector<MsgEvent> recvs;  ///< rank 1's recv endpoints, delivery order
};

/// Phased two-rank script: rank 0 posts every isend while rank 1 sits in a
/// barrier, then rank 1 drains them (any_source/any_tag) while rank 0 sits
/// in the next barrier. Payloads embed the message index so delivery can
/// be verified regardless of arrival order.
ScriptResult run_script(const mpp::RunOptions& opts) {
  std::array<FaultRecorder, 2> rec;
  FaultStats stats;
  Runtime::run(2, opts, [&](Comm& world) {
    mpp::HooksInstaller install(&rec[static_cast<std::size_t>(world.rank())]);
    if (world.rank() == 0) {
      std::vector<std::vector<std::uint8_t>> bufs(kMsgs);
      std::vector<Request> reqs;
      reqs.reserve(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        bufs[static_cast<std::size_t>(i)].resize(msg_bytes(i));
        auto& b = bufs[static_cast<std::size_t>(i)];
        std::memcpy(b.data(), &i, sizeof i);
        for (std::size_t k = sizeof i; k < b.size(); ++k) b[k] = pattern(i, k);
        reqs.push_back(world.isend_bytes(b.data(), b.size(), 1, i % 5));
      }
      world.barrier();  // release the drain
      world.barrier();  // drain done
      mpp::wait_all(reqs);
      stats = world.fault_stats();
      world.barrier();
    } else {
      world.barrier();  // sends posted
      std::vector<std::uint8_t> buf(kBigBytes);
      std::vector<bool> seen(kMsgs, false);
      for (int n = 0; n < kMsgs; ++n) {
        const mpp::Status st =
            world.recv_bytes(buf.data(), buf.size(), mpp::any_source, mpp::any_tag);
        int i = -1;
        std::memcpy(&i, buf.data(), sizeof i);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kMsgs);
        EXPECT_FALSE(seen[static_cast<std::size_t>(i)]) << "message " << i
                                                        << " delivered twice";
        seen[static_cast<std::size_t>(i)] = true;
        EXPECT_EQ(st.bytes, msg_bytes(i));
        EXPECT_EQ(st.tag, i % 5);
        for (std::size_t k = sizeof i; k < st.bytes; ++k)
          ASSERT_EQ(buf[k], pattern(i, k)) << "payload corrupt, msg " << i;
      }
      // Flush duplicate clones still parked in the fault layer so the
      // hook-vs-fabric counter comparison is exact.
      drive_polls(world, 16);
      world.barrier();
      world.barrier();
    }
  });
  ScriptResult r;
  r.log = rec[0].log + "--\n" + rec[1].log;
  r.stats = stats;
  for (const FaultRecorder& h : rec) {
    r.hook_events += h.fault_events;
    r.hook_tally.injected_drops += h.tally.injected_drops;
    r.hook_tally.injected_delays += h.tally.injected_delays;
    r.hook_tally.injected_duplicates += h.tally.injected_duplicates;
    r.hook_tally.injected_reorders += h.tally.injected_reorders;
    r.hook_tally.injected_stalls += h.tally.injected_stalls;
    r.hook_tally.retries += h.tally.retries;
    r.hook_tally.retries_exhausted += h.tally.retries_exhausted;
    r.hook_tally.duplicates_suppressed += h.tally.duplicates_suppressed;
    r.hook_tally.timeouts += h.tally.timeouts;
    r.hook_tally.stale_fallbacks += h.tally.stale_fallbacks;
  }
  r.sends = rec[0].sends;
  r.recvs = rec[1].recvs;
  return r;
}

/// Lifts a run's recorded message endpoints into synthetic rank traces
/// (timestamp = log index, identical across same-schedule runs) and merges
/// them through the real Perfetto exporter. Byte-comparing two exports
/// therefore compares the full delivery schedule.
std::string perfetto_export(const ScriptResult& run, core::MergeStats* out) {
  core::TraceMerger merger;
  for (int rank = 0; rank < 2; ++rank) {
    core::RankTrace t;
    t.rank = rank;
    const auto& events = rank == 0 ? run.sends : run.recvs;
    double tick = 0.0;
    for (const MsgEvent& e : events) {
      tau::TraceRecord r;
      r.kind = rank == 0 ? tau::TraceKind::msg_send : tau::TraceKind::msg_recv;
      r.t_us = tick++;
      r.payload = e.bytes;
      r.seq = e.seq;
      r.peer = rank == 0 ? e.dst : e.src;
      r.tag = e.tag;
      t.events.push_back(r);
    }
    t.total_events = t.events.size();
    merger.add_rank(std::move(t));
  }
  std::ostringstream os;
  const core::MergeStats st = merger.write_chrome_trace(os);
  if (out != nullptr) *out = st;
  return os.str();
}

void expect_stats_eq(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.injected_drops, b.injected_drops);
  EXPECT_EQ(a.injected_delays, b.injected_delays);
  EXPECT_EQ(a.injected_duplicates, b.injected_duplicates);
  EXPECT_EQ(a.injected_reorders, b.injected_reorders);
  EXPECT_EQ(a.injected_stalls, b.injected_stalls);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retries_exhausted, b.retries_exhausted);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.stale_fallbacks, b.stale_fallbacks);
}

/// The determinism property tests run loss-free retransmission (a dropped
/// message's first retry always delivers) so every schedule completes.
mpp::RunOptions faulty_opts(std::uint64_t seed) {
  mpp::RunOptions opts;
  opts.faults = FaultSpec::moderate(seed);
  opts.faults.retry_faults = false;
  return opts;
}

TEST(FaultInjection, ZeroFaultPlanMatchesNoInjectionPath) {
  // No fault layer at all...
  const ScriptResult plain = run_script(mpp::RunOptions{});
  // ...vs a constructed plan whose rates are all zero.
  mpp::RunOptions zeroed;
  zeroed.faults.seed = 0xDEADBEEFULL;  // seed alone must not activate anything
  const ScriptResult zero = run_script(zeroed);

  EXPECT_EQ(plain.log, zero.log);
  EXPECT_EQ(zero.stats.injected_total(), 0u);
  EXPECT_EQ(zero.stats.retries, 0u);
  EXPECT_EQ(zero.stats.duplicates_suppressed, 0u);
  EXPECT_EQ(zero.hook_events, 0u);
  EXPECT_EQ(plain.hook_events, 0u);

  core::MergeStats ms{};
  const std::string a = perfetto_export(plain, nullptr);
  const std::string b = perfetto_export(zero, &ms);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ms.flows, static_cast<std::size_t>(kMsgs));
  EXPECT_TRUE(ms.fully_matched());
}

TEST(FaultInjection, SameSeedSameScheduleAcross100Plans) {
  std::uint64_t total_injected = 0;
  for (int s = 0; s < 100; ++s) {
    const std::uint64_t seed = 0x1000ULL + 7ULL * static_cast<std::uint64_t>(s);
    const ScriptResult a = run_script(faulty_opts(seed));
    const ScriptResult b = run_script(faulty_opts(seed));
    ASSERT_EQ(a.log, b.log) << "seed " << seed << " not deterministic";
    expect_stats_eq(a.stats, b.stats);
    // No silent faults, per run: what the fabric counted, the hooks saw.
    expect_stats_eq(a.stats, a.hook_tally);
    total_injected += a.stats.injected_total();
  }
  // The moderate preset must actually be exercising the machinery.
  EXPECT_GT(total_injected, 100u);
}

TEST(FaultInjection, SameSeedIdenticalPerfettoExport) {
  for (int s = 0; s < 5; ++s) {
    const std::uint64_t seed = 0xBEEF00ULL + static_cast<std::uint64_t>(s);
    const ScriptResult a = run_script(faulty_opts(seed));
    const ScriptResult b = run_script(faulty_opts(seed));
    core::MergeStats ms{};
    const std::string ta = perfetto_export(a, nullptr);
    const std::string tb = perfetto_export(b, &ms);
    ASSERT_EQ(ta, tb) << "seed " << seed << " trace not byte-identical";
    // Every message delivered exactly once -> every endpoint flow-matched.
    EXPECT_EQ(ms.flows, static_cast<std::size_t>(kMsgs));
    EXPECT_TRUE(ms.fully_matched());
  }
}

TEST(FaultInjection, EveryInjectedFaultIsVisibleInHookCounters) {
  const ScriptResult run = run_script(faulty_opts(0xFA57C0DEULL));
  EXPECT_GT(run.stats.injected_total(), 0u);
  expect_stats_eq(run.stats, run.hook_tally);
  EXPECT_EQ(run.hook_events,
            run.stats.injected_total() + run.stats.retries +
                run.stats.retries_exhausted + run.stats.duplicates_suppressed +
                run.stats.timeouts + run.stats.stale_fallbacks);
}

TEST(FaultInjection, DifferentSeedsProduceDifferentSchedules) {
  const ScriptResult a = run_script(faulty_opts(1));
  const ScriptResult b = run_script(faulty_opts(2));
  EXPECT_NE(a.log, b.log);
}

TEST(FaultInjection, SpecParserRoundTrips) {
  const FaultSpec m = FaultSpec::parse("moderate");
  EXPECT_TRUE(m.any());
  EXPECT_DOUBLE_EQ(m.drop, FaultSpec::moderate().drop);

  const FaultSpec off = FaultSpec::parse("off");
  EXPECT_FALSE(off.any());

  const FaultSpec custom =
      FaultSpec::parse("seed=42,drop=0.25,delay=0.5,dup=0.1,retry_faults=0");
  EXPECT_EQ(custom.seed, 42u);
  EXPECT_DOUBLE_EQ(custom.drop, 0.25);
  EXPECT_DOUBLE_EQ(custom.delay, 0.5);
  EXPECT_DOUBLE_EQ(custom.duplicate, 0.1);
  EXPECT_FALSE(custom.retry_faults);

  EXPECT_THROW(FaultSpec::parse("bogus_key=1"), ccaperf::Error);
  EXPECT_THROW(FaultSpec::parse("drop=0.7,delay=0.7"), ccaperf::Error);
}

}  // namespace
