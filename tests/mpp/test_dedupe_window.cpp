// The sharded delivery state (DESIGN.md §10): DedupeWindow replaces the
// per-pair set of every delivered sequence number with a watermark plus a
// bounded bitset window over the out-of-order span. The unit cases pin the
// filter's algebra (O(1) membership, watermark advance over contiguous
// prefixes, duplicate rejection at any offset); the integration cases run a
// duplicate-heavy fault plan at 64 ranks and assert the end-to-end
// properties: exact-once delivery, every injected clone suppressed, and the
// fabric gauges showing the window stayed bounded while the watermark
// advanced (memory tracks in-flight faults, not message history).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::FaultStats;
using mpp::Request;
using mpp::Runtime;
using mpp::detail::DedupeWindow;

TEST(DedupeWindow, InOrderStreamAdvancesWatermarkWithZeroSpan) {
  DedupeWindow win;
  for (std::uint64_t s = 1; s <= 300; ++s) {
    EXPECT_FALSE(win.contains(s));
    EXPECT_TRUE(win.insert(s));
    EXPECT_EQ(win.watermark(), s);
    EXPECT_EQ(win.span(), 0u);
  }
  EXPECT_TRUE(win.contains(1));
  EXPECT_TRUE(win.contains(300));
  EXPECT_FALSE(win.contains(301));
  EXPECT_EQ(win.peak_span(), 0u);
}

TEST(DedupeWindow, DuplicateIsRejectedBelowAndAboveWatermark) {
  DedupeWindow win;
  EXPECT_TRUE(win.insert(1));
  EXPECT_TRUE(win.insert(5));  // out of order: span covers 2..5
  EXPECT_FALSE(win.insert(1)); // below watermark
  EXPECT_FALSE(win.insert(5)); // inside the window
  EXPECT_TRUE(win.contains(5));
  EXPECT_FALSE(win.contains(3));
  EXPECT_EQ(win.watermark(), 1u);
}

TEST(DedupeWindow, GapFillCollapsesWindowIntoWatermark) {
  DedupeWindow win;
  for (std::uint64_t s : {2, 3, 4}) EXPECT_TRUE(win.insert(s));
  EXPECT_EQ(win.watermark(), 0u);
  EXPECT_GE(win.span(), 4u);
  EXPECT_TRUE(win.insert(1));  // fills the gap: prefix 1..4 now contiguous
  EXPECT_EQ(win.watermark(), 4u);
  EXPECT_EQ(win.span(), 0u);
  for (std::uint64_t s = 1; s <= 4; ++s) EXPECT_FALSE(win.insert(s));
}

TEST(DedupeWindow, SlideAcrossWordBoundariesKeepsMembershipExact) {
  // Evens first, then odds: the span repeatedly stretches past 64-bit word
  // boundaries and the watermark slide pops whole words on each odd fill.
  DedupeWindow win;
  constexpr std::uint64_t kN = 512;
  for (std::uint64_t s = 2; s <= kN; s += 2) EXPECT_TRUE(win.insert(s));
  EXPECT_EQ(win.watermark(), 0u);
  EXPECT_GE(win.peak_span(), kN - 1);
  for (std::uint64_t s = 1; s <= kN; s += 2) {
    EXPECT_FALSE(win.contains(s));
    EXPECT_TRUE(win.insert(s));
  }
  EXPECT_EQ(win.watermark(), kN);
  EXPECT_EQ(win.span(), 0u);
  for (std::uint64_t s = 1; s <= kN; ++s) EXPECT_FALSE(win.insert(s));
  EXPECT_LE(win.peak_span(), DedupeWindow::kMaxWindowBits);
}

TEST(DedupeWindow, SpanBeyondCapIsRefused) {
  DedupeWindow win;
  EXPECT_TRUE(win.insert(1));
  // Offset past the hard cap: the bounded retry ledger can never legally
  // produce this, so the window refuses instead of growing unboundedly.
  EXPECT_THROW(win.insert(2 + DedupeWindow::kMaxWindowBits),
               ccaperf::Error);
}

// --- 64-rank duplicate-heavy integration ----------------------------------

/// Counts matched receives per rank; suppressed duplicates never fire this.
struct RecvCounter : mpp::CommHooks {
  void on_begin(const char*) override {}
  void on_end(const char*, std::size_t) override {}
  void on_message_recv(const mpp::MsgEvent&) override { ++recvs; }
  std::uint64_t recvs = 0;
};

/// Each test() drives one fabric fault poll without consuming a message
/// (the tag is never sent); used to flush duplicate clones still held at
/// the end of the scripted traffic so counter comparisons are exact.
void drive_polls(Comm& world, int n) {
  std::uint8_t b = 0;
  Request r = world.irecv_bytes(&b, 1, 0, 9901);
  for (int k = 0; k < n; ++k) (void)r.test();
}

TEST(DedupeAtScale, DuplicateHeavyRingDeliversExactlyOnce) {
  constexpr int kRanks = 64;
  constexpr int kIters = 12;
  mpp::RunOptions opts;
  opts.faults.seed = 0xD0D0'2026;
  opts.faults.duplicate = 0.45;  // duplicate-heavy
  opts.faults.delay = 0.25;      // forces out-of-order acceptance
  opts.faults.max_delay_steps = 6;
  opts.faults.retry_faults = false;

  std::atomic<std::uint64_t> total_recvs{0};
  std::atomic<int> payload_errors{0};
  FaultStats stats;
  Runtime::run(kRanks, opts, [&](Comm& world) {
    RecvCounter rc;
    mpp::HooksInstaller install(&rc);
    const int next = (world.rank() + 1) % kRanks;
    const int prev = (world.rank() + kRanks - 1) % kRanks;
    // All receives posted and all sends issued up-front so many sequence
    // numbers are in flight per pair: delays then deliver them out of
    // order, which is what stretches the dedupe window.
    std::array<std::array<int, 16>, kIters> in{};
    std::array<std::array<int, 16>, kIters> out{};
    std::vector<Request> reqs;
    for (int iter = 0; iter < kIters; ++iter) {
      auto& buf = in[static_cast<std::size_t>(iter)];
      reqs.push_back(world.irecv_bytes(buf.data(), sizeof buf, prev, iter));
    }
    for (int iter = 0; iter < kIters; ++iter) {
      auto& buf = out[static_cast<std::size_t>(iter)];
      buf.fill(world.rank() * 1000 + iter);
      reqs.push_back(world.isend_bytes(buf.data(), sizeof buf, next, iter));
    }
    for (Request& r : reqs) r.wait();
    for (int iter = 0; iter < kIters; ++iter)
      for (int v : in[static_cast<std::size_t>(iter)])
        if (v != prev * 1000 + iter) ++payload_errors;
    world.barrier();
    drive_polls(world, 400);  // release clones still held past the drain
    world.barrier();
    total_recvs += rc.recvs;
    if (world.rank() == 0) stats = world.fault_stats();
  });

  // Exact-once: every posted receive matched exactly one payload, and the
  // total number of matched receives equals the number of fresh sends —
  // no clone was ever re-delivered to the application.
  EXPECT_EQ(payload_errors.load(), 0);
  EXPECT_EQ(total_recvs.load(),
            static_cast<std::uint64_t>(kRanks) * kIters);
  // Duplicate-heavy plan actually fired, and every clone was filtered.
  EXPECT_GT(stats.injected_duplicates, 0u);
  EXPECT_EQ(stats.duplicates_suppressed, stats.injected_duplicates);
  // Bounded-memory gauges: the widest out-of-order span any filter ever
  // buffered stayed far below the hard cap, the smallest watermark among
  // active sources advanced past zero (history is being discarded, not
  // accumulated), and the fault store peaked at in-flight — not total —
  // message count.
  EXPECT_LE(stats.dedupe_span_peak, DedupeWindow::kMaxWindowBits);
  EXPECT_GE(stats.dedupe_watermark_min, 1u);
  EXPECT_GT(stats.fault_items_peak, 0u);
  EXPECT_LT(stats.fault_items_peak,
            static_cast<std::uint64_t>(kRanks) * kIters);
}

TEST(DedupeAtScale, ZeroFaultPlanKeepsFiltersDormant) {
  // Without an active plan no dedupe state is maintained at all: the
  // gauges stay zero, so the clean fast path carries no new cost.
  constexpr int kRanks = 8;
  FaultStats stats;
  Runtime::run(kRanks, [&](Comm& world) {
    const int next = (world.rank() + 1) % kRanks;
    const int prev = (world.rank() + kRanks - 1) % kRanks;
    int out = world.rank(), in = -1;
    Request rr = world.irecv_bytes(&in, sizeof in, prev, 7);
    Request sr = world.isend_bytes(&out, sizeof out, next, 7);
    rr.wait();
    sr.wait();
    EXPECT_EQ(in, prev);
    world.barrier();
    if (world.rank() == 0) stats = world.fault_stats();
  });
  EXPECT_EQ(stats.dedupe_span_peak, 0u);
  EXPECT_EQ(stats.dedupe_watermark_min, 0u);
  EXPECT_EQ(stats.fault_items_peak, 0u);
  EXPECT_EQ(stats.duplicates_suppressed, 0u);
}

}  // namespace
