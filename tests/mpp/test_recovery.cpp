// Recovery-protocol tests (DESIGN.md §8): wait bounds that surface typed
// CommErrors instead of hanging ctest, send-side retransmission with
// exponential backoff, retry exhaustion failing the sender, and duplicate
// suppression. The headline regression here is the wait-family hang: a
// wait on a message that never arrives used to spin forever; it must now
// fail in well under a second when the no-progress bound is tightened.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::CommErrc;
using mpp::CommError;
using mpp::FaultSpec;
using mpp::FaultStats;
using mpp::Request;
using mpp::Runtime;

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

TEST(Recovery, WaitOnMissingMessageFailsFastInsteadOfHanging) {
  // Regression: Request::wait used to block forever on a message that
  // never arrives. The always-on no-progress bound must trip — quickly
  // once tightened, and in bounded time even with no faults configured.
  mpp::RunOptions opts;
  opts.idle_limit_us = 150e3;  // 150 ms; the default is 60 s
  const Clock::time_point t0 = Clock::now();
  bool threw = false;
  CommErrc code = CommErrc::aborted;
  try {
    Runtime::run(1, opts, [&](Comm& world) {
      std::uint8_t b = 0;
      Request r = world.irecv_bytes(&b, 1, 0, 5);
      r.wait();
    });
  } catch (const CommError& e) {
    threw = true;
    code = e.code();
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(code, CommErrc::no_progress);
  EXPECT_LT(elapsed_ms(t0), 1000.0) << "hang regression: wait did not bound";
  // The bound exists even when nobody configures it.
  EXPECT_GT(mpp::Fabric::kDefaultIdleLimitUs, 0.0);
}

TEST(Recovery, ConfiguredTimeoutSurfacesTypedError) {
  mpp::RunOptions opts;
  opts.wait_timeout_us = 80e3;  // per-wait budget, tighter than idle bound
  const Clock::time_point t0 = Clock::now();
  CommErrc code = CommErrc::aborted;
  std::uint64_t counted = 0;
  Runtime::run(1, opts, [&](Comm& world) {
    std::uint8_t b = 0;
    Request r = world.irecv_bytes(&b, 1, 0, 6);
    try {
      r.wait();
      FAIL() << "wait on a never-sent message returned";
    } catch (const CommError& e) {
      code = e.code();
      counted = world.fault_stats().timeouts;
    }
  });
  EXPECT_EQ(code, CommErrc::timeout);
  EXPECT_EQ(counted, 1u);
  EXPECT_LT(elapsed_ms(t0), 1000.0);
}

TEST(Recovery, WaitSomeHonorsTheSameBounds) {
  mpp::RunOptions opts;
  opts.idle_limit_us = 120e3;
  const Clock::time_point t0 = Clock::now();
  CommErrc code = CommErrc::aborted;
  Runtime::run(1, opts, [&](Comm& world) {
    std::array<std::uint8_t, 2> b{};
    std::vector<Request> reqs;
    reqs.push_back(world.irecv_bytes(&b[0], 1, 0, 7));
    reqs.push_back(world.irecv_bytes(&b[1], 1, 0, 8));
    std::vector<int> done;
    try {
      mpp::wait_some(reqs, done);
      FAIL() << "wait_some on never-sent messages returned";
    } catch (const CommError& e) {
      code = e.code();
    }
  });
  EXPECT_EQ(code, CommErrc::no_progress);
  EXPECT_LT(elapsed_ms(t0), 1000.0);
}

TEST(Recovery, DroppedMessagesAreRetransmittedAndReceived) {
  // drop=1.0 with loss-free retries: every initial delivery is lost and
  // every first retransmission lands. The receiver's wait polls drive the
  // retry ledger, so plain recv() recovers with no caller involvement.
  mpp::RunOptions opts;
  opts.faults.drop = 1.0;
  opts.faults.retry_faults = false;
  opts.faults.retry_base_steps = 1;
  constexpr int kN = 5;
  FaultStats stats;
  Runtime::run(2, opts, [&](Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        int v = 100 + i;
        world.send_bytes(&v, sizeof v, 1, i);
      }
      world.barrier();
      stats = world.fault_stats();
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        world.recv_bytes(&v, sizeof v, 0, i);
        EXPECT_EQ(v, 100 + i);
      }
      world.barrier();
    }
  });
  EXPECT_EQ(stats.injected_drops, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats.retries, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats.retries_exhausted, 0u);
}

TEST(Recovery, RendezvousRetryExhaustionFailsTheSender) {
  // A rendezvous-class send is only complete once the receiver matches it
  // (ack-at-match). With every attempt dropped, the ledger must exhaust
  // and fail the *sender's* wait with a typed error instead of leaving it
  // parked forever.
  mpp::RunOptions opts;
  opts.faults.drop = 1.0;
  opts.faults.retry_faults = true;  // retries drop too -> guaranteed exhaustion
  opts.faults.retry_base_steps = 1;
  opts.faults.retry_max_attempts = 3;
  CommErrc code = CommErrc::aborted;
  FaultStats stats;
  const Clock::time_point t0 = Clock::now();
  Runtime::run(2, opts, [&](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::uint8_t> big(72 * 1024, 0xAB);
      Request r = world.isend_bytes(big.data(), big.size(), 1, 3);
      try {
        r.wait();
        FAIL() << "sender completed although every attempt was dropped";
      } catch (const CommError& e) {
        code = e.code();
        stats = world.fault_stats();
      }
    }
    // rank 1 never posts the receive and simply exits.
  });
  EXPECT_EQ(code, CommErrc::retry_exhausted);
  EXPECT_EQ(stats.retries_exhausted, 1u);
  EXPECT_GE(stats.retries, 2u);
  EXPECT_LT(elapsed_ms(t0), 2000.0);
}

TEST(Recovery, DuplicatesAreDeliveredExactlyOnce) {
  mpp::RunOptions opts;
  opts.faults.duplicate = 1.0;  // every message arrives twice at the fabric
  constexpr int kN = 6;
  FaultStats stats;
  Runtime::run(2, opts, [&](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::array<int, 2>> bufs(kN);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        bufs[static_cast<std::size_t>(i)] = {i, ~i};
        reqs.push_back(world.isend_bytes(
            bufs[static_cast<std::size_t>(i)].data(), sizeof(int) * 2, 1, 0));
      }
      world.barrier();
      world.barrier();
      mpp::wait_all(reqs);
      stats = world.fault_stats();
      world.barrier();
    } else {
      world.barrier();
      for (int n = 0; n < kN; ++n) {
        std::array<int, 2> v{-1, -1};
        world.recv_bytes(v.data(), sizeof v, 0, 0);
        EXPECT_EQ(v[0], n);  // non-overtaking order preserved
        EXPECT_EQ(v[1], ~n);
      }
      // Flush clones still held in the fault layer, then confirm there is
      // nothing more to receive: the dedupe filter swallowed every copy.
      std::uint8_t b = 0;
      Request probe = world.irecv_bytes(&b, 1, 0, 777);
      for (int k = 0; k < 12; ++k) EXPECT_FALSE(probe.test().has_value());
      world.barrier();
      world.barrier();
    }
  });
  EXPECT_EQ(stats.injected_duplicates, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(stats.duplicates_suppressed, static_cast<std::uint64_t>(kN));
}

TEST(Recovery, CleanRunKeepsBoundsDisabledSemantics) {
  // A fault-free run with default options must not regress: no counters,
  // no surprise errors, wait completes normally.
  FaultStats stats;
  Runtime::run(2, [&](Comm& world) {
    if (world.rank() == 0) {
      int v = 41;
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 41);
    }
    world.barrier();
    if (world.rank() == 0) stats = world.fault_stats();
  });
  EXPECT_EQ(stats.injected_total(), 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

}  // namespace
