// Communicator management: dup isolates matching contexts, split builds
// correct subgroups, wtime is monotone.

#include <gtest/gtest.h>

#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::Runtime;

TEST(CommMgmt, DupPreservesRankAndSize) {
  Runtime::run(3, [](Comm& world) {
    Comm dup = world.dup();
    EXPECT_EQ(dup.rank(), world.rank());
    EXPECT_EQ(dup.size(), world.size());
  });
}

TEST(CommMgmt, DupIsolatesMessageMatching) {
  // A message sent on `world` must not match a receive posted on the dup,
  // even with identical (source, tag).
  Runtime::run(2, [](Comm& world) {
    Comm dup = world.dup();
    if (world.rank() == 0) {
      const int on_world = 1, on_dup = 2;
      world.send_bytes(&on_world, sizeof(int), 1, 0);
      dup.send_bytes(&on_dup, sizeof(int), 1, 0);
    } else {
      int v = 0;
      dup.recv_bytes(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 2);
      world.recv_bytes(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(CommMgmt, DupCollectivesIndependent) {
  Runtime::run(3, [](Comm& world) {
    Comm dup = world.dup();
    const double a = world.allreduce_value<>(1.0);
    const double b = dup.allreduce_value<>(2.0);
    EXPECT_DOUBLE_EQ(a, 3.0);
    EXPECT_DOUBLE_EQ(b, 6.0);
  });
}

TEST(CommMgmt, SplitEvenOdd) {
  Runtime::run(5, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    const int expected_size = world.rank() % 2 == 0 ? 3 : 2;
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Collective inside the subgroup only sums subgroup members.
    const double sum = sub.allreduce_value<>(static_cast<double>(world.rank()));
    const double expected = world.rank() % 2 == 0 ? 0.0 + 2 + 4 : 1.0 + 3;
    EXPECT_DOUBLE_EQ(sum, expected);
  });
}

TEST(CommMgmt, SplitKeyControlsOrdering) {
  Runtime::run(4, [](Comm& world) {
    // Reverse the rank order within one subgroup via keys.
    Comm sub = world.split(0, -world.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), world.size() - 1 - world.rank());
  });
}

TEST(CommMgmt, SplitSubgroupP2PUsesGroupRanks) {
  Runtime::run(4, [](Comm& world) {
    Comm sub = world.split(world.rank() / 2, world.rank());
    ASSERT_EQ(sub.size(), 2);
    // Group rank 0 sends to group rank 1 inside each pair.
    if (sub.rank() == 0) {
      const int v = world.rank();
      sub.send_bytes(&v, sizeof v, 1, 0);
    } else {
      int v = -1;
      sub.recv_bytes(&v, sizeof v, 0, 0);
      EXPECT_EQ(v, world.rank() - 1);  // pair partner's world rank
    }
  });
}

TEST(CommMgmt, NestedSplit) {
  Runtime::run(8, [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const double sum = quarter.allreduce_value<>(1.0);
    EXPECT_DOUBLE_EQ(sum, 2.0);
  });
}

TEST(CommMgmt, WtimeMonotoneAndPositive) {
  Runtime::run(2, [](Comm& world) {
    const double t0 = world.wtime();
    EXPECT_GE(t0, 0.0);
    double prev = t0;
    for (int i = 0; i < 100; ++i) {
      const double t = world.wtime();
      EXPECT_GE(t, prev);
      prev = t;
    }
  });
}

TEST(CommMgmt, WorldRankOfIdentityOnWorld) {
  Runtime::run(3, [](Comm& world) {
    for (int r = 0; r < world.size(); ++r) EXPECT_EQ(world.world_rank_of(r), r);
  });
}

}  // namespace
