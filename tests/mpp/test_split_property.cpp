// Property test for MPI_Comm_split semantics: random colors/keys on up to
// 8 ranks must produce consistent subgroups (size, rank order by key,
// isolation of collectives and matching between subgroups).

#include <gtest/gtest.h>

#include <vector>

#include "mpp/runtime.hpp"
#include "support/rng.hpp"

namespace {

class SplitProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitProperty, RandomColorsGiveConsistentSubgroups) {
  const std::uint64_t seed = GetParam();
  mpp::Runtime::run(6, [&](mpp::Comm& world) {
    // Same RNG on every rank -> everyone knows everyone's (color, key).
    ccaperf::Rng rng(seed);
    std::vector<int> colors(6), keys(6);
    for (int r = 0; r < 6; ++r) {
      colors[static_cast<std::size_t>(r)] = static_cast<int>(rng.uniform_int(0, 2));
      keys[static_cast<std::size_t>(r)] = static_cast<int>(rng.uniform_int(-5, 5));
    }
    const int me = world.rank();
    const int my_color = colors[static_cast<std::size_t>(me)];
    mpp::Comm sub = world.split(my_color, keys[static_cast<std::size_t>(me)]);

    // Expected subgroup: members with my color, stable-sorted by key.
    std::vector<int> members;
    for (int r = 0; r < 6; ++r)
      if (colors[static_cast<std::size_t>(r)] == my_color) members.push_back(r);
    std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
      return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
    });
    ASSERT_EQ(sub.size(), static_cast<int>(members.size()));
    int expected_rank = -1;
    for (std::size_t k = 0; k < members.size(); ++k)
      if (members[k] == me) expected_rank = static_cast<int>(k);
    EXPECT_EQ(sub.rank(), expected_rank);
    for (int r = 0; r < sub.size(); ++r)
      EXPECT_EQ(sub.world_rank_of(r), members[static_cast<std::size_t>(r)]);

    // Collective isolation: subgroup allreduce sums only its members.
    double expected_sum = 0;
    for (int r : members) expected_sum += r;
    EXPECT_DOUBLE_EQ(sub.allreduce_value<>(static_cast<double>(me)), expected_sum);

    // Matching isolation: a tag-0 ring inside the subgroup never leaks
    // across colors.
    if (sub.size() > 1) {
      const int next = (sub.rank() + 1) % sub.size();
      const int prev = (sub.rank() + sub.size() - 1) % sub.size();
      int out = 1000 * my_color + sub.rank(), in = -1;
      mpp::Request rr = sub.irecv_bytes(&in, sizeof in, prev, 0);
      sub.send_bytes(&out, sizeof out, next, 0);
      rr.wait();
      EXPECT_EQ(in, 1000 * my_color + prev);
    }
    world.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
