// Request handle semantics: move-only ownership, consuming completion
// (wait/test), validity transitions, and send-side immediate completion.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mpp/runtime.hpp"

namespace {

using mpp::Comm;
using mpp::Request;
using mpp::Runtime;

TEST(Request, DefaultIsInvalid) {
  Request r;
  EXPECT_FALSE(r.valid());
  EXPECT_FALSE(r.done());
}

TEST(Request, SendCompletesImmediately) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const int v = 1;
      Request r = world.isend_bytes(&v, sizeof v, 1, 0);
      EXPECT_TRUE(r.valid());
      EXPECT_TRUE(r.done());  // buffered-eager send
      mpp::Status s = r.wait();
      EXPECT_EQ(s.bytes, sizeof(int));
      EXPECT_FALSE(r.valid());  // consumed
    } else {
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 0);
    }
  });
}

TEST(Request, MoveTransfersOwnership) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const int v = 2;
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      Request a = world.irecv_bytes(&v, sizeof v, 0, 0);
      Request b = std::move(a);
      EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting the move
      EXPECT_TRUE(b.valid());
      b.wait();
      EXPECT_EQ(v, 2);
    }
  });
}

TEST(Request, MoveAssignReleasesPreviousOperation) {
  // Overwriting a pending receive via move-assignment must cancel it (no
  // dangling posted buffer) and adopt the new operation.
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 1) {
      int doomed = 0, live = 0;
      Request r = world.irecv_bytes(&doomed, sizeof doomed, 0, 1);
      r = world.irecv_bytes(&live, sizeof live, 0, 2);  // cancels tag-1 recv
      world.barrier();
      r.wait();
      EXPECT_EQ(live, 22);
      // The tag-1 message parks in the unexpected queue; receive it fresh.
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 1);
      EXPECT_EQ(v, 11);
    } else {
      world.barrier();
      const int a = 11, b = 22;
      world.send_bytes(&a, sizeof a, 1, 1);
      world.send_bytes(&b, sizeof b, 1, 2);
    }
  });
}

TEST(Request, TestConsumesOnSuccessOnly) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.barrier();
      const double v = 2.5;
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      double v = 0;
      Request r = world.irecv_bytes(&v, sizeof v, 0, 0);
      EXPECT_FALSE(r.test().has_value());
      EXPECT_TRUE(r.valid());  // failed test does not consume
      world.barrier();
      std::optional<mpp::Status> s;
      while (!(s = r.test())) {
      }
      EXPECT_EQ(s->bytes, sizeof(double));
      EXPECT_FALSE(r.valid());  // successful test consumes
    }
  });
}

TEST(Request, WaitOnInvalidThrows) {
  Runtime::run(1, [](Comm&) {
    Request r;
    EXPECT_THROW(r.wait(), ccaperf::Error);
  });
}

TEST(Request, WaitSomeSkipsInvalidSlots) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const int v = 9;
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      std::vector<Request> reqs(3);  // two invalid placeholders
      reqs[1] = world.irecv_bytes(&v, sizeof v, 0, 0);
      std::vector<int> idx;
      std::size_t n = 0;
      while (n == 0) n = mpp::wait_some(reqs, idx);
      ASSERT_EQ(n, 1u);
      EXPECT_EQ(idx[0], 1);
      EXPECT_EQ(v, 9);
    }
  });
}

TEST(Request, StatusReportsSourceGroupRank) {
  Runtime::run(3, [](Comm& world) {
    if (world.rank() == 2) {
      int v = 0;
      Request r = world.irecv_bytes(&v, sizeof v, mpp::any_source, 5);
      mpp::Status s = r.wait();
      EXPECT_EQ(s.source, 1);
      EXPECT_EQ(s.tag, 5);
    } else if (world.rank() == 1) {
      const int v = 3;
      world.send_bytes(&v, sizeof v, 2, 5);
    }
  });
}

}  // namespace
