// The deadlock watchdog (CCAPERF_WATCHDOG_SECONDS): a genuinely stuck run
// must abort with a diagnosable exception instead of hanging; healthy runs
// must be unaffected; and the env handling must be robust.

#include <gtest/gtest.h>

#include <cstdlib>

#include "mpp/runtime.hpp"
#include "support/error.hpp"

namespace {

struct WatchdogEnv {
  explicit WatchdogEnv(const char* value) {
    ::setenv("CCAPERF_WATCHDOG_SECONDS", value, 1);
  }
  ~WatchdogEnv() { ::unsetenv("CCAPERF_WATCHDOG_SECONDS"); }
};

TEST(Watchdog, AbortsAStuckReceive) {
  WatchdogEnv env("1");
  bool threw = false;
  try {
    mpp::Runtime::run(2, [](mpp::Comm& world) {
      if (world.rank() == 0) {
        int v = 0;
        world.recv_bytes(&v, sizeof v, 1, 0);  // never sent
      }
      // rank 1 exits immediately
    });
  } catch (const ccaperf::Error& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("aborted"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(Watchdog, AbortsAStuckCollective) {
  WatchdogEnv env("1");
  EXPECT_THROW(mpp::Runtime::run(2,
                                 [](mpp::Comm& world) {
                                   if (world.rank() == 0) world.barrier();
                                   // rank 1 never joins the barrier
                                 }),
               ccaperf::Error);
}

TEST(Watchdog, HealthyRunUnaffected) {
  WatchdogEnv env("30");
  mpp::Runtime::run(3, [](mpp::Comm& world) {
    const double sum = world.allreduce_value<>(1.0);
    EXPECT_DOUBLE_EQ(sum, 3.0);
  });
}

TEST(Watchdog, ZeroAndGarbageValuesDisableIt) {
  {
    WatchdogEnv env("0");
    mpp::Runtime::run(2, [](mpp::Comm& world) { world.barrier(); });
  }
  {
    WatchdogEnv env("not-a-number");
    mpp::Runtime::run(2, [](mpp::Comm& world) { world.barrier(); });
  }
}

}  // namespace
