// NetworkModel behaviour: deterministic delays from a seed, latency and
// bandwidth terms, jitter distribution, and that modeled delays actually
// slow delivery in the fabric.

#include <gtest/gtest.h>

#include <chrono>

#include "mpp/netmodel.hpp"
#include "mpp/runtime.hpp"
#include "support/stats.hpp"

namespace {

using mpp::Comm;
using mpp::NetworkModel;
using mpp::Runtime;

TEST(NetModel, NullModelHasZeroDelay) {
  NetworkModel m = NetworkModel::null_model();
  EXPECT_TRUE(m.is_null());
  ccaperf::Rng rng(1);
  EXPECT_DOUBLE_EQ(m.delay_us(1 << 20, rng), 0.0);
}

TEST(NetModel, LatencyOnly) {
  NetworkModel m;
  m.latency_us = 50.0;
  ccaperf::Rng rng(1);
  EXPECT_DOUBLE_EQ(m.delay_us(0, rng), 50.0);
  EXPECT_DOUBLE_EQ(m.delay_us(1 << 20, rng), 50.0);
}

TEST(NetModel, BandwidthTermScalesWithSize) {
  NetworkModel m;
  m.latency_us = 10.0;
  m.bandwidth_bytes_per_us = 100.0;
  ccaperf::Rng rng(1);
  EXPECT_DOUBLE_EQ(m.delay_us(1000, rng), 10.0 + 10.0);
  EXPECT_DOUBLE_EQ(m.delay_us(2000, rng), 10.0 + 20.0);
}

TEST(NetModel, JitterIsLogNormalAroundBase) {
  NetworkModel m;
  m.latency_us = 100.0;
  m.jitter_sigma = 0.3;
  ccaperf::Rng rng(7);
  ccaperf::RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(std::log(m.delay_us(0, rng) / 100.0));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 0.3, 0.01);
}

TEST(NetModel, DelayIsNeverNegative) {
  NetworkModel m;
  m.latency_us = 1.0;
  m.jitter_sigma = 2.0;
  ccaperf::Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(m.delay_us(64, rng), 0.0);
}

TEST(NetModel, ClassicClusterPreset) {
  NetworkModel m = NetworkModel::classic_cluster();
  EXPECT_FALSE(m.is_null());
  EXPECT_GT(m.latency_us, 0.0);
  EXPECT_GT(m.bandwidth_bytes_per_us, 0.0);
}

TEST(NetModel, ModeledDelaySlowsDelivery) {
  // With a 3 ms latency, a round trip must take >= 6 ms of wall time.
  NetworkModel m;
  m.latency_us = 3000.0;
  const auto t0 = std::chrono::steady_clock::now();
  Runtime::run(2, m, [](Comm& world) {
    int v = world.rank();
    if (world.rank() == 0) {
      world.send_bytes(&v, sizeof v, 1, 0);
      world.recv_bytes(&v, sizeof v, 1, 1);
    } else {
      world.recv_bytes(&v, sizeof v, 0, 0);
      world.send_bytes(&v, sizeof v, 0, 1);
    }
  });
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 6.0);
}

TEST(NetModel, NullModelIsFast) {
  // Sanity bound: 200 ping-pongs with no modeled delay stay well under a second.
  const auto t0 = std::chrono::steady_clock::now();
  Runtime::run(2, [](Comm& world) {
    int v = 0;
    for (int i = 0; i < 200; ++i) {
      if (world.rank() == 0) {
        world.send_bytes(&v, sizeof v, 1, 0);
        world.recv_bytes(&v, sizeof v, 1, 1);
      } else {
        world.recv_bytes(&v, sizeof v, 0, 0);
        world.send_bytes(&v, sizeof v, 0, 1);
      }
    }
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(NetModel, SameSeedSameDelays) {
  NetworkModel m;
  m.latency_us = 10.0;
  m.jitter_sigma = 0.5;
  ccaperf::Rng a(99), b(99);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(m.delay_us(128, a), m.delay_us(128, b));
}

}  // namespace
