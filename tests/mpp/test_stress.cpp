// Randomized stress / property tests: many ranks exchanging randomized
// message patterns must deliver every payload intact, in order per
// (source, tag), regardless of interleaving.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "mpp/runtime.hpp"
#include "support/rng.hpp"

namespace {

using mpp::Comm;
using mpp::Request;
using mpp::Runtime;

// Every rank sends K randomized-size messages to every other rank; each
// receiver posts wildcard receives and checks content via a checksum
// embedded in the payload.
class RandomExchange : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomExchange, AllPayloadsArriveIntact) {
  const auto [nranks, kmsgs] = GetParam();
  Runtime::run(nranks, [kmsgs = kmsgs](Comm& world) {
    ccaperf::Rng rng(1000 + static_cast<std::uint64_t>(world.rank()));
    const int n = world.size();

    // Phase 1: everybody sends.
    for (int dest = 0; dest < n; ++dest) {
      if (dest == world.rank()) continue;
      for (int k = 0; k < kmsgs; ++k) {
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 512));
        std::vector<std::uint32_t> payload(len + 2);
        payload[0] = static_cast<std::uint32_t>(world.rank());
        std::uint32_t sum = 0;
        for (std::size_t i = 2; i < payload.size(); ++i) {
          payload[i] = static_cast<std::uint32_t>(rng());
          sum ^= payload[i];
        }
        payload[1] = sum;
        world.send<std::uint32_t>(payload, dest, k);
      }
    }

    // Phase 2: receive everything with wildcards.
    const int expected = (n - 1) * kmsgs;
    for (int got = 0; got < expected; ++got) {
      std::vector<std::uint32_t> buf(514 + 2);
      mpp::Status s = world.recv<std::uint32_t>(buf, mpp::any_source, mpp::any_tag);
      const std::size_t words = s.bytes / sizeof(std::uint32_t);
      ASSERT_GE(words, 3u);
      EXPECT_EQ(buf[0], static_cast<std::uint32_t>(s.source));
      std::uint32_t sum = 0;
      for (std::size_t i = 2; i < words; ++i) sum ^= buf[i];
      EXPECT_EQ(sum, buf[1]) << "payload corrupted from rank " << s.source;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Patterns, RandomExchange,
                         ::testing::Values(std::tuple{2, 20}, std::tuple{3, 10},
                                           std::tuple{4, 5}, std::tuple{6, 3}));

TEST(Stress, ManyOutstandingIrecvsCompleteViaWaitsome) {
  // Mimics the AMR ghost-exchange pattern: a pile of irecvs completed by
  // repeated wait_some while sends trickle in.
  Runtime::run(3, [](Comm& world) {
    constexpr int kPerPeer = 40;
    const int n = world.size();
    std::vector<std::vector<int>> inbox(
        static_cast<std::size_t>((n - 1) * kPerPeer), std::vector<int>(4, -1));
    std::vector<Request> reqs;
    std::size_t slot = 0;
    for (int src = 0; src < n; ++src) {
      if (src == world.rank()) continue;
      for (int k = 0; k < kPerPeer; ++k)
        reqs.push_back(world.irecv<int>(inbox[slot++], src, k));
    }
    for (int dest = 0; dest < n; ++dest) {
      if (dest == world.rank()) continue;
      for (int k = 0; k < kPerPeer; ++k) {
        std::vector<int> msg{world.rank(), k, world.rank() * k, 7};
        world.send<int>(msg, dest, k);
      }
    }
    std::vector<int> idx;
    std::size_t completed = 0;
    while (completed < reqs.size()) {
      const std::size_t c = mpp::wait_some(reqs, idx);
      ASSERT_GT(c, 0u);
      completed += c;
    }
    for (const auto& m : inbox) {
      EXPECT_EQ(m[3], 7);
      EXPECT_EQ(m[2], m[0] * m[1]);
    }
  });
}

TEST(Stress, RepeatedRunsAreIndependent) {
  // Back-to-back Runtime::run calls must not leak state between fabrics.
  for (int rep = 0; rep < 5; ++rep) {
    Runtime::run(3, [rep](Comm& world) {
      const double sum = world.allreduce_value<>(static_cast<double>(rep));
      EXPECT_DOUBLE_EQ(sum, 3.0 * rep);
    });
  }
}

TEST(Stress, LargeMessages) {
  Runtime::run(2, [](Comm& world) {
    const std::size_t n = 1 << 20;  // 8 MB of doubles
    if (world.rank() == 0) {
      std::vector<double> big(n);
      std::iota(big.begin(), big.end(), 0.0);
      world.send<double>(big, 1, 0);
    } else {
      std::vector<double> big(n);
      world.recv<double>(big, 0, 0);
      EXPECT_DOUBLE_EQ(big.front(), 0.0);
      EXPECT_DOUBLE_EQ(big[n / 2], static_cast<double>(n / 2));
      EXPECT_DOUBLE_EQ(big.back(), static_cast<double>(n - 1));
    }
  });
}

TEST(Stress, ZeroByteMessages) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      world.send_bytes(nullptr, 0, 1, 0);
    } else {
      mpp::Status s = world.recv_bytes(nullptr, 0, 0, 0);
      EXPECT_EQ(s.bytes, 0u);
      EXPECT_EQ(s.source, 0);
    }
  });
}

}  // namespace
