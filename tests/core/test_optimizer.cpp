// Assembly optimization: exhaustive prod(Ci) enumeration, pure-time
// selection, and the QoS accuracy weight flipping the EFM/Godunov choice
// (the paper's §5 trade-off).

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "support/error.hpp"

namespace {

using core::AssemblyOptimizer;
using core::Candidate;
using core::Slot;

struct Models {
  // EFM-like: cheap linear. Godunov-like: ~2x the slope (Eq. 1 ratio).
  core::PolynomialModel efm{{-8.13, 0.16}};
  core::PolynomialModel godunov{{-963.0, 0.315}};
  core::PolynomialModel states{{5.0, 0.05}};
  core::PolynomialModel states_alt{{2.0, 0.06}};
};

Slot flux_slot(const Models& m) {
  Slot s;
  s.functionality = "FluxPort";
  s.candidates = {Candidate{"EFMFlux", &m.efm, 0.7},
                  Candidate{"GodunovFlux", &m.godunov, 1.0}};
  s.workload = {{50'000.0, 200.0}, {120'000.0, 50.0}};
  return s;
}

Slot states_slot(const Models& m) {
  Slot s;
  s.functionality = "StatesPort";
  s.candidates = {Candidate{"States", &m.states, 1.0},
                  Candidate{"StatesAlt", &m.states_alt, 1.0}};
  s.workload = {{50'000.0, 250.0}};
  return s;
}

TEST(Optimizer, EnumeratesAllAssemblies) {
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  opt.add_slot(states_slot(m));
  EXPECT_EQ(opt.assembly_count(), 4u);
  const auto all = opt.evaluate_all();
  EXPECT_EQ(all.size(), 4u);
  // Sorted by cost ascending.
  for (std::size_t k = 1; k < all.size(); ++k)
    EXPECT_LE(all[k - 1].cost, all[k].cost);
}

TEST(Optimizer, PureTimeChoosesEfm) {
  // "From a performance point of view, EFMFlux has better characteristics."
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  const auto best = opt.best(0.0);
  EXPECT_EQ(best.selection.at("FluxPort"), "EFMFlux");
  // Predicted time equals the workload-weighted model sum.
  const double expected =
      200.0 * m.efm.predict(50'000.0) + 50.0 * m.efm.predict(120'000.0);
  EXPECT_NEAR(best.predicted_time_us, expected, 1e-6);
  EXPECT_DOUBLE_EQ(best.min_accuracy, 0.7);
}

TEST(Optimizer, QosWeightFlipsToGodunov) {
  // "GodunovFlux is the preferred choice for scientists (it is more
  // accurate)": a strong enough accuracy weight must select it.
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  EXPECT_EQ(opt.best(0.0).selection.at("FluxPort"), "EFMFlux");
  EXPECT_EQ(opt.best(10.0).selection.at("FluxPort"), "GodunovFlux");
}

TEST(Optimizer, CrossoverWeightIsMonotone) {
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  bool flipped = false;
  std::string prev = "EFMFlux";
  for (double w = 0.0; w <= 10.0; w += 0.25) {
    const std::string now = opt.best(w).selection.at("FluxPort");
    if (now != prev) {
      EXPECT_EQ(now, "GodunovFlux");
      EXPECT_FALSE(flipped) << "choice flipped twice";
      flipped = true;
      prev = now;
    }
  }
  EXPECT_TRUE(flipped);
}

TEST(Optimizer, IndependentSlotsOptimizedIndependently) {
  Models m;
  AssemblyOptimizer opt(1'000.0);  // fixed remainder of the dual
  opt.add_slot(flux_slot(m));
  opt.add_slot(states_slot(m));
  const auto best = opt.best(0.0);
  EXPECT_EQ(best.selection.at("FluxPort"), "EFMFlux");
  // StatesAlt: 2 + 0.06*50000 = 3002/invocation vs 5 + 2500 = 2505: States wins.
  EXPECT_EQ(best.selection.at("StatesPort"), "States");
  EXPECT_GT(best.predicted_time_us, 1'000.0);
}

TEST(Optimizer, RejectsEmptyOrUnmodeledSlots) {
  AssemblyOptimizer opt;
  EXPECT_THROW(opt.evaluate_all(), ccaperf::Error);
  Slot empty;
  empty.functionality = "X";
  EXPECT_THROW(opt.add_slot(empty), ccaperf::Error);
  Slot unmodeled;
  unmodeled.functionality = "Y";
  unmodeled.candidates = {Candidate{"C", nullptr, 1.0}};
  EXPECT_THROW(opt.add_slot(unmodeled), ccaperf::Error);
}

TEST(Optimizer, NegativeModelPredictionsClampToZero) {
  // Linear fits can go negative at small Q (the paper's -963 + 0.315 Q);
  // the composite cost must not reward that.
  core::PolynomialModel negative{{-963.0, 0.315}};
  Slot s;
  s.functionality = "F";
  s.candidates = {Candidate{"C", &negative, 1.0}};
  s.workload = {{10.0, 100.0}};  // predict(10) < 0
  AssemblyOptimizer opt;
  opt.add_slot(s);
  EXPECT_DOUBLE_EQ(opt.best().predicted_time_us, 0.0);
}

}  // namespace
