// Assembly optimization: exhaustive prod(Ci) enumeration, pure-time
// selection, and the QoS accuracy weight flipping the EFM/Godunov choice
// (the paper's §5 trade-off).

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "core/optimizer.hpp"
#include "support/error.hpp"

namespace {

using core::AssemblyOptimizer;
using core::Candidate;
using core::Slot;

struct Models {
  // EFM-like: cheap linear. Godunov-like: ~2x the slope (Eq. 1 ratio).
  core::PolynomialModel efm{{-8.13, 0.16}};
  core::PolynomialModel godunov{{-963.0, 0.315}};
  core::PolynomialModel states{{5.0, 0.05}};
  core::PolynomialModel states_alt{{2.0, 0.06}};
};

Slot flux_slot(const Models& m) {
  Slot s;
  s.functionality = "FluxPort";
  s.candidates = {Candidate{"EFMFlux", &m.efm, 0.7},
                  Candidate{"GodunovFlux", &m.godunov, 1.0}};
  s.workload = {{50'000.0, 200.0}, {120'000.0, 50.0}};
  return s;
}

Slot states_slot(const Models& m) {
  Slot s;
  s.functionality = "StatesPort";
  s.candidates = {Candidate{"States", &m.states, 1.0},
                  Candidate{"StatesAlt", &m.states_alt, 1.0}};
  s.workload = {{50'000.0, 250.0}};
  return s;
}

TEST(Optimizer, EnumeratesAllAssemblies) {
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  opt.add_slot(states_slot(m));
  EXPECT_EQ(opt.assembly_count(), 4u);
  const auto all = opt.evaluate_all();
  EXPECT_EQ(all.size(), 4u);
  // Sorted by cost ascending.
  for (std::size_t k = 1; k < all.size(); ++k)
    EXPECT_LE(all[k - 1].cost, all[k].cost);
}

TEST(Optimizer, PureTimeChoosesEfm) {
  // "From a performance point of view, EFMFlux has better characteristics."
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  const auto best = opt.best(0.0);
  EXPECT_EQ(best.selection.at("FluxPort"), "EFMFlux");
  // Predicted time equals the workload-weighted model sum.
  const double expected =
      200.0 * m.efm.predict(50'000.0) + 50.0 * m.efm.predict(120'000.0);
  EXPECT_NEAR(best.predicted_time_us, expected, 1e-6);
  EXPECT_DOUBLE_EQ(best.min_accuracy, 0.7);
}

TEST(Optimizer, QosWeightFlipsToGodunov) {
  // "GodunovFlux is the preferred choice for scientists (it is more
  // accurate)": a strong enough accuracy weight must select it.
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  EXPECT_EQ(opt.best(0.0).selection.at("FluxPort"), "EFMFlux");
  EXPECT_EQ(opt.best(10.0).selection.at("FluxPort"), "GodunovFlux");
}

TEST(Optimizer, CrossoverWeightIsMonotone) {
  Models m;
  AssemblyOptimizer opt;
  opt.add_slot(flux_slot(m));
  bool flipped = false;
  std::string prev = "EFMFlux";
  for (double w = 0.0; w <= 10.0; w += 0.25) {
    const std::string now = opt.best(w).selection.at("FluxPort");
    if (now != prev) {
      EXPECT_EQ(now, "GodunovFlux");
      EXPECT_FALSE(flipped) << "choice flipped twice";
      flipped = true;
      prev = now;
    }
  }
  EXPECT_TRUE(flipped);
}

TEST(Optimizer, IndependentSlotsOptimizedIndependently) {
  Models m;
  AssemblyOptimizer opt(1'000.0);  // fixed remainder of the dual
  opt.add_slot(flux_slot(m));
  opt.add_slot(states_slot(m));
  const auto best = opt.best(0.0);
  EXPECT_EQ(best.selection.at("FluxPort"), "EFMFlux");
  // StatesAlt: 2 + 0.06*50000 = 3002/invocation vs 5 + 2500 = 2505: States wins.
  EXPECT_EQ(best.selection.at("StatesPort"), "States");
  EXPECT_GT(best.predicted_time_us, 1'000.0);
}

TEST(Optimizer, RejectsEmptyOrUnmodeledSlots) {
  AssemblyOptimizer opt;
  EXPECT_THROW(opt.evaluate_all(), ccaperf::Error);
  Slot empty;
  empty.functionality = "X";
  EXPECT_THROW(opt.add_slot(empty), ccaperf::Error);
  Slot unmodeled;
  unmodeled.functionality = "Y";
  unmodeled.candidates = {Candidate{"C", nullptr, 1.0}};
  EXPECT_THROW(opt.add_slot(unmodeled), ccaperf::Error);
}

TEST(Optimizer, BnBMatchesExhaustiveOnRandomizedSlotSets) {
  // Property: branch-and-bound is exact — winner and cost identical to
  // full enumeration, tie-break included — across randomized instances.
  std::mt19937 rng(2024);
  std::uniform_int_distribution<int> nslots_d(1, 4);
  std::uniform_int_distribution<int> ncand_d(1, 4);
  std::uniform_real_distribution<double> coeff_d(0.0, 1.0);
  std::uniform_real_distribution<double> q_d(1'000.0, 100'000.0);
  const double weights[] = {0.0, 0.5, 3.0};

  for (int trial = 0; trial < 120; ++trial) {
    std::vector<std::unique_ptr<core::PolynomialModel>> models;
    AssemblyOptimizer opt(trial % 3 == 0 ? 500.0 : 0.0);
    const int nslots = nslots_d(rng);
    for (int s = 0; s < nslots; ++s) {
      Slot slot;
      slot.functionality = "F" + std::to_string(s);
      const int ncand = ncand_d(rng);
      for (int c = 0; c < ncand; ++c) {
        models.push_back(std::make_unique<core::PolynomialModel>(
            std::vector<double>{10.0 * coeff_d(rng), 0.01 * coeff_d(rng)}));
        slot.candidates.push_back(
            Candidate{"c" + std::to_string(c), models.back().get(), coeff_d(rng)});
      }
      // Some slots get an empty workload (slot cost 0 for every candidate:
      // a pure tie the two searches must break identically).
      if (trial % 5 != 0 || s % 2 == 0) {
        const int nw = 1 + (trial % 3);
        for (int w = 0; w < nw; ++w) slot.workload.emplace_back(q_d(rng), 10.0);
      }
      opt.add_slot(std::move(slot));
    }
    const double w = weights[trial % 3];
    AssemblyOptimizer::SearchStats stats;
    const auto bnb = opt.best(w, &stats);
    const auto exact = opt.best_exhaustive(w);
    EXPECT_EQ(bnb.selection, exact.selection) << "trial " << trial;
    EXPECT_DOUBLE_EQ(bnb.cost, exact.cost) << "trial " << trial;
    EXPECT_LE(stats.leaves_evaluated, opt.assembly_count()) << "trial " << trial;
  }
}

TEST(Optimizer, TieBreakPicksLowestCandidateIndices) {
  // Identical models everywhere: every assembly costs the same, so the
  // deterministic tie-break must select candidate 0 in each slot.
  core::PolynomialModel flat{{100.0, 0.0}};
  AssemblyOptimizer opt;
  for (int s = 0; s < 3; ++s) {
    Slot slot;
    slot.functionality = "F" + std::to_string(s);
    slot.candidates = {Candidate{"first", &flat, 1.0}, Candidate{"second", &flat, 1.0},
                       Candidate{"third", &flat, 1.0}};
    slot.workload = {{1'000.0, 5.0}};
    opt.add_slot(std::move(slot));
  }
  for (const double w : {0.0, 2.0}) {
    const auto bnb = opt.best(w);
    const auto exact = opt.best_exhaustive(w);
    EXPECT_EQ(bnb.selection, exact.selection);
    for (int s = 0; s < 3; ++s)
      EXPECT_EQ(bnb.selection.at("F" + std::to_string(s)), "first");
  }
}

TEST(Optimizer, ZeroAccuracyWeightIgnoresAccuracy) {
  // w = 0: a fast-but-inaccurate candidate must win regardless of QoS.
  core::PolynomialModel fast{{1.0, 0.0}};
  core::PolynomialModel slow{{100.0, 0.0}};
  Slot s;
  s.functionality = "F";
  s.candidates = {Candidate{"sloppy", &fast, 0.01}, Candidate{"exact", &slow, 1.0}};
  s.workload = {{10.0, 1.0}};
  AssemblyOptimizer opt;
  opt.add_slot(std::move(s));
  const auto best = opt.best(0.0);
  EXPECT_EQ(best.selection.at("F"), "sloppy");
  EXPECT_DOUBLE_EQ(best.cost, best.predicted_time_us);  // factor is 1
  EXPECT_EQ(opt.best_exhaustive(0.0).selection.at("F"), "sloppy");
}

TEST(Optimizer, EmptyWorkloadSlotCostsNothing) {
  core::PolynomialModel m1{{5.0, 0.0}};
  core::PolynomialModel m2{{50.0, 0.0}};
  Slot idle;
  idle.functionality = "Idle";
  idle.candidates = {Candidate{"a", &m1, 1.0}, Candidate{"b", &m2, 1.0}};
  // no workload: both candidates contribute zero time
  Slot busy;
  busy.functionality = "Busy";
  busy.candidates = {Candidate{"x", &m1, 1.0}, Candidate{"y", &m2, 1.0}};
  busy.workload = {{100.0, 2.0}};
  AssemblyOptimizer opt;
  opt.add_slot(std::move(idle));
  opt.add_slot(std::move(busy));
  const auto best = opt.best(0.0);
  EXPECT_EQ(best.selection.at("Idle"), "a");  // tie broken to index 0
  EXPECT_EQ(best.selection.at("Busy"), "x");
  EXPECT_DOUBLE_EQ(best.predicted_time_us, 2.0 * 5.0);
  EXPECT_EQ(opt.best_exhaustive(0.0).selection, best.selection);
}

TEST(Optimizer, BnBPrunesDominatedSubtrees) {
  // One clearly-cheapest chain: the bound should cut most of the tree.
  std::vector<std::unique_ptr<core::PolynomialModel>> models;
  AssemblyOptimizer opt;
  for (int s = 0; s < 6; ++s) {
    Slot slot;
    slot.functionality = "F" + std::to_string(s);
    for (int c = 0; c < 4; ++c) {
      models.push_back(std::make_unique<core::PolynomialModel>(
          std::vector<double>{c == 0 ? 1.0 : 1'000.0, 0.0}));
      slot.candidates.push_back(Candidate{"c" + std::to_string(c),
                                          models.back().get(), 1.0});
    }
    slot.workload = {{100.0, 1.0}};
    opt.add_slot(std::move(slot));
  }
  AssemblyOptimizer::SearchStats stats;
  const auto best = opt.best(0.0, &stats);
  for (int s = 0; s < 6; ++s)
    EXPECT_EQ(best.selection.at("F" + std::to_string(s)), "c0");
  EXPECT_GT(stats.subtrees_pruned, 0u);
  EXPECT_LT(stats.leaves_evaluated, opt.assembly_count());
}

// --- joint assembly x ranks x threads search ---------------------------------

using core::PatternConfig;
using core::PatternModel;

/// A tree with `nslots` slot leaves under the fig01 shape
/// (RankReplicated(Serial(MapParallel(Scale(Serial(slots..., fixed)),
/// alpha), Const))), plus the optimizer wired with matching slots whose
/// candidate models come from `make_model(slot, cand)`.
struct JointFixture {
  PatternModel tree;
  AssemblyOptimizer opt;
  std::vector<std::unique_ptr<core::PolynomialModel>> models;

  JointFixture(int nslots, int ncands, std::mt19937& rng) {
    std::uniform_real_distribution<double> coeff(0.5, 20.0);
    std::uniform_real_distribution<double> acc(0.6, 1.0);
    std::vector<PatternModel::NodeId> leaves;
    core::LeafScaling s;
    s.ref_q = 100.0;
    s.count_q_exp = 1.0;
    s.count_ranks_exp = 1.0;
    for (int i = 0; i < nslots; ++i) {
      const PatternModel::Workload work = {{100.0, 3.0}, {220.0, 1.0}};
      Slot slot;
      slot.functionality = "F" + std::to_string(i);
      slot.workload = work;
      for (int c = 0; c < ncands; ++c) {
        models.push_back(std::make_unique<core::PolynomialModel>(
            std::vector<double>{coeff(rng), coeff(rng) / 100.0}));
        slot.candidates.push_back(Candidate{
            "c" + std::to_string(c), models.back().get(), acc(rng)});
      }
      leaves.push_back(
          tree.slot_leaf(slot.candidates[0].time_model, work, s));
      opt.add_slot(std::move(slot));
    }
    models.push_back(std::make_unique<core::PolynomialModel>(
        std::vector<double>{4.0, 0.02}));
    leaves.push_back(tree.leaf(models.back().get(), {{100.0, 2.0}}, s));
    const auto inner = tree.scale(tree.serial(std::move(leaves)), 1.3);
    const auto lanes = tree.map_parallel(inner, 0.35, 1.5);
    const auto per_rank = tree.serial({lanes, tree.constant(25.0)});
    tree.set_root(tree.rank_replicated(per_rank, 8.0));
  }
};

TEST(JointOptimizer, MatchesExhaustiveAcrossRandomInstances) {
  std::mt19937 rng(0xc0ffee);
  const std::vector<int> ranks_grid = {1, 2, 4, 8};
  const std::vector<int> threads_grid = {1, 2, 4};
  for (int trial = 0; trial < 12; ++trial) {
    std::uniform_int_distribution<int> ns(1, 3), nc(1, 4);
    JointFixture f(ns(rng), nc(rng), rng);
    for (double w : {0.0, 0.5, 3.0}) {
      AssemblyOptimizer::SearchStats stats;
      const auto bb = f.opt.best_joint(f.tree, PatternConfig{150.0}, ranks_grid,
                                       threads_grid, w, &stats);
      const auto ex = f.opt.best_joint_exhaustive(f.tree, PatternConfig{150.0},
                                                  ranks_grid, threads_grid, w);
      EXPECT_EQ(bb.selection, ex.selection);
      EXPECT_EQ(bb.ranks, ex.ranks);
      EXPECT_EQ(bb.threads, ex.threads);
      EXPECT_DOUBLE_EQ(bb.predicted_us, ex.predicted_us);
      EXPECT_DOUBLE_EQ(bb.cost, ex.cost);
      EXPECT_DOUBLE_EQ(bb.min_accuracy, ex.min_accuracy);
      // Stats sanity: every configuration's DFS reaches at least one leaf,
      // and pruning never exceeds visited nodes.
      EXPECT_GE(stats.leaves_evaluated, 1u);
      EXPECT_LE(stats.subtrees_pruned, stats.nodes_visited);
    }
  }
}

TEST(JointOptimizer, PrefersMoreRanksWhenCollectivesAreFree) {
  // With beta = gamma = 0 the per-rank time strictly shrinks with P, so
  // the largest rank count (and lane count) must win.
  std::mt19937 rng(7);
  JointFixture f(2, 2, rng);
  f.tree.set_coefficient(f.tree.root(), 0.0);  // beta
  const auto best = f.opt.best_joint(f.tree, PatternConfig{100.0}, {1, 2, 4},
                                     {1, 2}, 0.0);
  EXPECT_EQ(best.ranks, 4);
  EXPECT_EQ(best.threads, 2);
}

TEST(JointOptimizer, TieBreaksToEarliestGridPoint) {
  // A tree that ignores ranks and threads entirely: every grid point
  // predicts the same time, so the first (ranks-major) point must win.
  PatternModel t;
  core::PolynomialModel flat{{10.0, 0.0}};
  const auto leaf = t.slot_leaf(&flat, {{100.0, 1.0}});
  t.set_root(leaf);
  AssemblyOptimizer opt;
  Slot s;
  s.functionality = "F";
  s.candidates = {Candidate{"a", &flat, 1.0}, Candidate{"b", &flat, 1.0}};
  s.workload = {{100.0, 1.0}};
  opt.add_slot(std::move(s));
  const auto best = opt.best_joint(t, PatternConfig{100.0}, {4, 2}, {2, 1});
  EXPECT_EQ(best.ranks, 4);  // grid order, not numeric order
  EXPECT_EQ(best.threads, 2);
  EXPECT_EQ(best.selection.at("F"), "a");
  const auto ex =
      opt.best_joint_exhaustive(t, PatternConfig{100.0}, {4, 2}, {2, 1});
  EXPECT_EQ(ex.ranks, 4);
  EXPECT_EQ(ex.threads, 2);
  EXPECT_EQ(ex.selection.at("F"), "a");
}

TEST(JointOptimizer, SlotCountMismatchIsRejected) {
  PatternModel t;
  core::PolynomialModel flat{{10.0, 0.0}};
  t.set_root(t.leaf(&flat, {{100.0, 1.0}}));  // zero slot leaves
  AssemblyOptimizer opt;
  Slot s;
  s.functionality = "F";
  s.candidates = {Candidate{"a", &flat, 1.0}};
  s.workload = {{100.0, 1.0}};
  opt.add_slot(std::move(s));
  EXPECT_THROW(
      (void)opt.best_joint(t, PatternConfig{100.0}, {1}, {1}),
      ccaperf::Error);
  EXPECT_THROW(
      (void)opt.best_joint_exhaustive(t, PatternConfig{100.0}, {1}, {1}),
      ccaperf::Error);
}

TEST(Optimizer, NegativeModelPredictionsClampToZero) {
  // Linear fits can go negative at small Q (the paper's -963 + 0.315 Q);
  // the composite cost must not reward that.
  core::PolynomialModel negative{{-963.0, 0.315}};
  Slot s;
  s.functionality = "F";
  s.candidates = {Candidate{"C", &negative, 1.0}};
  s.workload = {{10.0, 100.0}};  // predict(10) < 0
  AssemblyOptimizer opt;
  opt.add_slot(s);
  EXPECT_DOUBLE_EQ(opt.best().predicted_time_us, 0.0);
}

}  // namespace
