// PatternModel property suite: composition identities, monotonicity,
// randomized tree shapes, calibration recovery, and the affinity guard
// (DESIGN.md §13).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "core/pattern_model.hpp"
#include "support/error.hpp"

namespace {

using core::LeafScaling;
using core::PatternConfig;
using core::PatternModel;
using NodeId = core::PatternModel::NodeId;

PatternConfig cfg(double q, int ranks = 1, int threads = 1) {
  return PatternConfig{q, ranks, threads};
}

// A monotone per-invocation model: t(q) = 2 + 0.01 q.
const core::PerfModel* linear_model(PatternModel& t) {
  return t.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{2.0, 0.01}));
}

NodeId simple_leaf(PatternModel& t, double n = 3.0) {
  return t.leaf(linear_model(t), {{100.0, n}, {400.0, n / 3.0}});
}

TEST(PatternModel, LeafSumsWorkload) {
  PatternModel t;
  t.set_root(simple_leaf(t));
  // 3 * (2 + 1) + 1 * (2 + 4) = 15.
  EXPECT_DOUBLE_EQ(t.predict(cfg(0.0)), 15.0);
}

TEST(PatternModel, LeafClampsNegativePredictions) {
  PatternModel t;
  // t(q) = -10 + 0.01 q is negative at q = 100; leaf charges zero there.
  const auto* m = t.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{-10.0, 0.01}));
  t.set_root(t.leaf(m, {{100.0, 5.0}, {2000.0, 1.0}}));
  EXPECT_DOUBLE_EQ(t.predict(cfg(0.0)), 10.0);
}

TEST(PatternModel, SerialOfOneChildEqualsChild) {
  PatternModel a, b;
  a.set_root(simple_leaf(a));
  const NodeId leaf = simple_leaf(b);
  b.set_root(b.serial({leaf}));
  for (double q : {10.0, 100.0, 1e6})
    EXPECT_DOUBLE_EQ(b.predict(cfg(q)), a.predict(cfg(q)));
}

TEST(PatternModel, MapParallelOneLaneEqualsChild) {
  // At L = 1 the lane factor is exactly 1 for every alpha and overhead.
  for (double alpha : {0.0, 0.3, 1.0}) {
    PatternModel a, b;
    a.set_root(simple_leaf(a));
    b.set_root(b.map_parallel(simple_leaf(b), alpha, /*lane_overhead_us=*/7.0));
    EXPECT_DOUBLE_EQ(b.predict(cfg(50.0, 1, 1)), a.predict(cfg(50.0, 1, 1)));
  }
}

TEST(PatternModel, PipelineTakesMaxStage) {
  PatternModel t;
  const NodeId slow = t.constant(40.0);
  const NodeId fast1 = t.constant(5.0);
  const NodeId fast2 = t.constant(12.0);
  t.set_root(t.pipeline({fast1, slow, fast2}));
  EXPECT_DOUBLE_EQ(t.predict(cfg(1.0)), 40.0);
}

TEST(PatternModel, PipelineDominatedByEveryStage) {
  PatternModel t;
  std::vector<NodeId> stages = {simple_leaf(t, 1.0), t.constant(3.0),
                                simple_leaf(t, 10.0)};
  const NodeId pipe = t.pipeline(stages);
  t.set_root(pipe);
  const double whole = t.predict(cfg(0.0));
  for (NodeId s : stages) {
    PatternModel sub = t;  // arena copy is cheap and shares no state
    sub.set_root(s);
    EXPECT_GE(whole, sub.predict(cfg(0.0)));
  }
}

TEST(PatternModel, MonotoneInQ) {
  PatternModel t;
  LeafScaling s;
  s.ref_q = 100.0;
  s.count_q_exp = 1.0;
  const NodeId l1 = t.leaf(linear_model(t), {{100.0, 4.0}}, s);
  LeafScaling s2;
  s2.ref_q = 100.0;
  s2.q_q_exp = 1.0;
  const NodeId l2 = t.leaf(linear_model(t), {{100.0, 2.0}}, s2);
  t.set_root(t.rank_replicated(t.map_parallel(t.serial({l1, l2}), 0.2), 5.0));
  double prev = 0.0;
  for (double q : {50.0, 100.0, 200.0, 400.0, 1600.0}) {
    const double v = t.predict(cfg(q, 4, 2));
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(PatternModel, LanesNeverHurtForPhysicalAlpha) {
  // For alpha <= 1 and zero lane overhead, adding lanes never increases
  // the predicted span: (1 + a(L-1))/L is non-increasing in L.
  PatternModel t;
  t.set_root(t.map_parallel(simple_leaf(t), 0.4));
  double prev = t.predict(cfg(10.0, 1, 1));
  for (int lanes = 2; lanes <= 16; ++lanes) {
    const double v = t.predict(cfg(10.0, 1, lanes));
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
  // Fully serialized lanes (alpha = 1) are exactly lane-count-invariant.
  t.set_coefficient(t.root(), 1.0);
  EXPECT_DOUBLE_EQ(t.predict(cfg(10.0, 1, 8)), t.predict(cfg(10.0, 1, 1)));
}

TEST(PatternModel, RankReplicatedAddsLogTerm) {
  PatternModel t;
  t.set_root(t.rank_replicated(t.constant(100.0), 7.0));
  EXPECT_DOUBLE_EQ(t.predict(cfg(1.0, 1, 1)), 100.0);   // ceil(log2 1) = 0
  EXPECT_DOUBLE_EQ(t.predict(cfg(1.0, 2, 1)), 107.0);   // 1 round
  EXPECT_DOUBLE_EQ(t.predict(cfg(1.0, 5, 1)), 121.0);   // ceil(log2 5) = 3
  EXPECT_DOUBLE_EQ(t.predict(cfg(1.0, 8, 1)), 121.0);
  EXPECT_DOUBLE_EQ(t.predict(cfg(1.0, 9, 1)), 128.0);
}

TEST(PatternModel, LeafScalingExtrapolatesCountsAndRanks) {
  PatternModel t;
  LeafScaling s;
  s.ref_q = 100.0;
  s.ref_ranks = 2.0;
  s.count_q_exp = 1.0;
  s.count_ranks_exp = 1.0;
  t.set_root(t.leaf(linear_model(t), {{100.0, 8.0}}, s));
  const double base = t.predict(cfg(100.0, 2, 1));  // 8 * 3 = 24
  EXPECT_DOUBLE_EQ(base, 24.0);
  // Double the problem: double the count. Double the ranks: halve it.
  EXPECT_DOUBLE_EQ(t.predict(cfg(200.0, 2, 1)), 2.0 * base);
  EXPECT_DOUBLE_EQ(t.predict(cfg(100.0, 4, 1)), 0.5 * base);
  EXPECT_DOUBLE_EQ(t.predict(cfg(200.0, 4, 1)), base);
}

// Randomized trees: build a depth >= 4 tree from a seeded generator and
// check structural invariants that must hold for any shape.
struct RandomTree {
  PatternModel tree;
  std::mt19937 rng;

  explicit RandomTree(unsigned seed) : rng(seed) { tree.set_root(build(4)); }

  NodeId build(int depth) {
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 5 : 1);
    switch (pick(rng)) {
      case 0: {
        std::uniform_real_distribution<double> g(1.0, 50.0);
        return tree.constant(g(rng));
      }
      case 1: {
        std::uniform_real_distribution<double> n(1.0, 6.0);
        LeafScaling s;
        s.ref_q = 100.0;
        s.count_q_exp = 1.0;
        return tree.leaf(linear_model(tree), {{100.0, n(rng)}, {250.0, n(rng)}},
                         s);
      }
      case 2:
        return tree.serial({build(depth - 1), build(depth - 1)});
      case 3:
        return tree.pipeline({build(depth - 1), build(depth - 1)});
      case 4: {
        std::uniform_real_distribution<double> a(0.0, 1.0);
        return tree.map_parallel(build(depth - 1), a(rng));
      }
      default: {
        std::uniform_real_distribution<double> b(0.0, 10.0);
        return tree.rank_replicated(build(depth - 1), b(rng));
      }
    }
  }
};

TEST(PatternModel, RandomTreesAreDeterministicMonotoneAndNonNegative) {
  for (unsigned seed = 1; seed <= 20; ++seed) {
    RandomTree r(seed);
    const PatternConfig base = cfg(100.0, 4, 2);
    const double v = r.tree.predict(base);
    EXPECT_GE(v, 0.0);
    // Determinism: re-evaluating is bit-identical.
    EXPECT_DOUBLE_EQ(r.tree.predict(base), v);
    // An arena copy predicts identically.
    PatternModel copy = r.tree;
    EXPECT_DOUBLE_EQ(copy.predict(base), v);
    // Monotone in q (all leaves scale counts with q, all combiners are
    // monotone).
    EXPECT_LE(r.tree.predict(cfg(50.0, 4, 2)), v);
    EXPECT_GE(r.tree.predict(cfg(200.0, 4, 2)), v);
    // More ranks never decreases the collective term (leaves here have
    // count_ranks_exp = 0).
    EXPECT_GE(r.tree.predict(cfg(100.0, 16, 2)), v);
  }
}

TEST(PatternModel, PredictIntervalComposesVariance) {
  PatternModel t;
  const auto* m = t.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{10.0}));
  // One leaf, 4 invocations at one q, per-invocation variance 9 us^2:
  // workload variance = sum n_j^2 * var = 16 * 9 = 144 -> stddev 12.
  t.set_root(t.leaf(m, {{100.0, 4.0}}, {}, 9.0));
  const auto iv = t.predict_interval(cfg(100.0));
  EXPECT_DOUBLE_EQ(iv.mean_us, 40.0);
  EXPECT_DOUBLE_EQ(iv.stddev_us, 12.0);

  // Scale squares its multiplier: kappa = 2 -> stddev 24.
  PatternModel t2;
  const auto* m2 = t2.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{10.0}));
  t2.set_root(t2.scale(t2.leaf(m2, {{100.0, 4.0}}, {}, 9.0), 2.0));
  EXPECT_DOUBLE_EQ(t2.predict_interval(cfg(100.0)).stddev_us, 24.0);
}

TEST(PatternModel, SlotValuesOverrideAndStayMonotone) {
  PatternModel t;
  const NodeId s0 = t.slot_leaf(linear_model(t), {{100.0, 2.0}});
  const NodeId fixed = t.constant(10.0);
  t.set_root(t.serial({s0, fixed}));
  ASSERT_EQ(t.slot_count(), 1u);
  EXPECT_EQ(t.slot_node(0), s0);

  const PatternConfig c = cfg(100.0);
  // Default model: 2 * 3 = 6, plus the constant.
  EXPECT_DOUBLE_EQ(t.predict(c), 16.0);
  EXPECT_DOUBLE_EQ(t.predict_with_slot_values(c, {6.0}), 16.0);
  // slot_value under the default model matches what predict() charges.
  core::PolynomialModel same{{2.0, 0.01}};
  EXPECT_DOUBLE_EQ(t.slot_value(0, c, same), 6.0);
  // Monotone in the slot value.
  EXPECT_LT(t.predict_with_slot_values(c, {1.0}),
            t.predict_with_slot_values(c, {50.0}));
}

TEST(PatternModel, CalibrationRecoversCoefficients) {
  // Build a tree with known {kappa, gamma, beta}, synthesize observations
  // from it, scramble, and recover by least squares.
  auto make = [](double kappa, double gamma, double beta, NodeId* kn,
                 NodeId* gn, NodeId* bn) {
    PatternModel t;
    const auto* m = t.adopt(std::make_unique<core::PolynomialModel>(
        std::vector<double>{5.0}));
    LeafScaling s;
    s.ref_q = 100.0;
    s.count_q_exp = 1.0;
    const NodeId leaf = t.leaf(m, {{100.0, 10.0}}, s);
    *kn = t.scale(leaf, kappa);
    *gn = t.constant(gamma);
    *bn = t.rank_replicated(t.serial({*kn, *gn}), beta);
    t.set_root(*bn);
    return t;
  };
  NodeId kn, gn, bn;
  PatternModel truth = make(1.7, 42.0, 9.0, &kn, &gn, &bn);

  std::vector<PatternModel::Observation> obs;
  for (int ranks : {1, 2, 4, 8})
    for (double q : {50.0, 100.0})
      obs.push_back({cfg(q, ranks), truth.predict(cfg(q, ranks))});

  NodeId kn2, gn2, bn2;
  PatternModel fit = make(0.0, 0.0, 0.0, &kn2, &gn2, &bn2);
  const auto report = fit.calibrate(obs, {kn2, gn2, bn2});
  ASSERT_EQ(report.fitted.size(), 3u);
  EXPECT_NEAR(fit.coefficient(kn2), 1.7, 1e-6);
  EXPECT_NEAR(fit.coefficient(gn2), 42.0, 1e-6);
  EXPECT_NEAR(fit.coefficient(bn2), 9.0, 1e-6);
  EXPECT_LT(report.rms_residual_us, 1e-6);
  EXPECT_LT(report.max_rel_err, 1e-9);
}

TEST(PatternModel, CalibrationClampsNegativeSolutions) {
  // Observations below the fixed leaf cost drive the fitted constant
  // negative; the clamp keeps it at zero.
  PatternModel t;
  const auto* m = t.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{50.0}));
  const NodeId leaf = t.leaf(m, {{100.0, 1.0}});
  const NodeId g = t.constant(123.0);
  t.set_root(t.serial({leaf, g}));
  std::vector<PatternModel::Observation> obs = {{cfg(100.0), 10.0},
                                                {cfg(200.0), 12.0}};
  (void)t.calibrate(obs, {g});
  EXPECT_DOUBLE_EQ(t.coefficient(g), 0.0);
}

TEST(PatternModel, CalibrationRejectsNonAffineFreeSets) {
  // kappa nested under a free-alpha MapParallel is a product term. With a
  // fixed Const sibling keeping the probe columns independent, the system
  // solves but superposition fails — the affinity check must fire and
  // restore the previous coefficients.
  PatternModel t;
  const auto* m = t.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{5.0}));
  const NodeId leaf = t.leaf(m, {{100.0, 10.0}});
  const NodeId k = t.scale(leaf, 1.5);
  const NodeId inner = t.serial({k, t.constant(10.0)});
  const NodeId a = t.map_parallel(inner, 0.25);
  t.set_root(a);
  std::vector<PatternModel::Observation> obs;
  for (int lanes : {1, 2, 4})
    obs.push_back({cfg(100.0, 1, lanes), 40.0 + lanes});
  EXPECT_THROW((void)t.calibrate(obs, {k, a}), ccaperf::Error);
  // Prior coefficients survive the rejection.
  EXPECT_DOUBLE_EQ(t.coefficient(k), 1.5);
  EXPECT_DOUBLE_EQ(t.coefficient(a), 0.25);
}

TEST(PatternModel, CalibrationRestoresOnSingularFreeSets) {
  // With no fixed sibling, probing alpha at kappa = 0 yields an all-zero
  // column: the solve is singular. The throw must still leave the
  // pre-call coefficients in place.
  PatternModel t;
  const auto* m = t.adopt(std::make_unique<core::PolynomialModel>(
      std::vector<double>{5.0}));
  const NodeId k = t.scale(t.leaf(m, {{100.0, 10.0}}), 1.5);
  const NodeId a = t.map_parallel(k, 0.25);
  t.set_root(a);
  std::vector<PatternModel::Observation> obs = {
      {cfg(100.0, 1, 1), 75.0}, {cfg(100.0, 1, 2), 47.0},
      {cfg(100.0, 1, 4), 33.0}};
  EXPECT_THROW((void)t.calibrate(obs, {k, a}), ccaperf::Error);
  EXPECT_DOUBLE_EQ(t.coefficient(k), 1.5);
  EXPECT_DOUBLE_EQ(t.coefficient(a), 0.25);
}

TEST(PatternModel, CoefficientAccessRejectsStructuralNodes) {
  PatternModel t;
  const NodeId s = t.serial({t.constant(1.0), t.constant(2.0)});
  t.set_root(s);
  EXPECT_THROW((void)t.coefficient(s), ccaperf::Error);
  EXPECT_THROW(t.set_coefficient(s, 1.0), ccaperf::Error);
}

TEST(PatternModel, DescribeMentionsEveryNodeKind) {
  PatternModel t;
  const NodeId leaf = simple_leaf(t);
  t.set_root(t.rank_replicated(
      t.serial({t.map_parallel(t.scale(leaf, 1.1), 0.5), t.constant(3.0)}),
      2.0));
  const std::string d = t.describe();
  for (const char* kind : {"leaf", "serial", "map-parallel", "rank-replicated",
                           "scale", "const"})
    EXPECT_NE(d.find(kind), std::string::npos) << kind;
}

}  // namespace
