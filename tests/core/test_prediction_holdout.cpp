// Held-out prediction regression (tier-1, DESIGN.md §13): calibrate the
// fig01 pattern tree on a small (ranks, threads) grid of a tiny
// case-study run, then predict a configuration outside the grid — 16
// ranks x 4 lanes — and require the prediction to land within a generous
// fixed ceiling of the measured marginal step time. The bench
// (bench_ablation_prediction) tightens this to the gated accuracy
// numbers; this test guards the machinery, not the tuning.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prediction_harness.hpp"

namespace {

components::AppConfig tiny_config() {
  components::AppConfig cfg;
  cfg.mesh.domain = amr::Box{0, 0, 47, 23};
  cfg.mesh.max_levels = 3;
  cfg.mesh.ncomp = euler::kNcomp;
  cfg.mesh.level0_patch_size = 12;
  cfg.mesh.cluster = amr::ClusterParams{0.75, 4, 0};
  cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / 48.0, 1.0 / 24.0};
  cfg.driver = components::DriverConfig{4, 0.4, 0};
  cfg.flux_impl = "GodunovFlux";
  return cfg;
}

TEST(PredictionHoldout, SixteenRanksFourLanesWithinCeiling) {
  const components::AppConfig cfg = tiny_config();
  core::Fig01TrainSpec spec;
  spec.ranks = {2, 4, 8};
  spec.threads = {1, 2};
  spec.capture_ranks = 2;
  spec.steps_lo = 2;
  spec.steps_hi = 6;
  spec.reps = 2;

  // Held-out point: more ranks and more lanes than any training point.
  // Measured in the same interleaved round-robin as the training grid so
  // host-load drift cannot separate the two (measure_fig01_points).
  const int ranks = 16, threads = 4;
  std::vector<core::Fig01MeasureRequest> requests;
  for (int r : spec.ranks)
    for (int t : spec.threads)
      requests.push_back(core::Fig01MeasureRequest{cfg, r, t});
  requests.push_back(core::Fig01MeasureRequest{cfg, ranks, threads});
  const std::vector<double> walls = core::measure_fig01_points(
      requests, spec.steps_lo, spec.steps_hi, spec.reps);
  const std::vector<double> train_walls(walls.begin(), walls.end() - 1);

  const core::Fig01Calibration cal =
      core::calibrate_fig01_measured(cfg, spec, train_walls);
  ASSERT_EQ(cal.train.size(), 6u);
  for (const core::Fig01Point& pt : cal.train) {
    EXPECT_GT(pt.step_us, 0.0);
    EXPECT_GT(pt.per_rank_us, 0.0);
  }
  // The calibration must at least describe its own training grid (the
  // final re-fit is overdetermined, so this is not an interpolation
  // tautology).
  EXPECT_LT(cal.refit.max_rel_err, 0.35) << cal.pattern.tree.describe();

  const double predicted_step_us =
      core::predict_fig01_step_us(cal.pattern, cfg, ranks, threads) * ranks;
  const double measured_step_us = walls.back();
  ASSERT_GT(measured_step_us, 0.0);

  const double rel_err =
      std::abs(predicted_step_us - measured_step_us) / measured_step_us;
  // Generous fixed ceiling: the CI machine is noisy and the run is tiny;
  // the point of the gate is catching composition bugs (2x-off regime),
  // not holding the bench's tuned accuracy.
  EXPECT_LT(rel_err, 0.5) << "predicted " << predicted_step_us
                          << " us vs measured " << measured_step_us << " us\n"
                          << cal.pattern.tree.describe();
}

}  // namespace
