// Mastermind monitoring: per-invocation wall/MPI/compute attribution via
// TAU query differencing, parameter and counter capture, nesting, CSV
// dumps, and error handling.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/mastermind.hpp"
#include "core/tau_component.hpp"
#include "mpp/runtime.hpp"

namespace {

/// Framework with just TAU + Mastermind wired together.
struct Rig {
  cca::Framework fw;
  core::MastermindComponent* mm;
  core::TauMeasurementComponent* tau;

  Rig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.connect("mm", "measurement", "tau", "measurement");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement",
                        [] { return std::make_unique<core::TauMeasurementComponent>(); });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    return repo;
  }
};

void spin_ms(double ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::duration<double, std::milli>(ms);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Mastermind, RecordsWallTimeAndParams) {
  Rig rig;
  rig.mm->start("m::f()", {{"Q", 1234.0}});
  spin_ms(2.0);
  rig.mm->stop("m::f()");

  const core::Record* rec = rig.mm->record("m::f()");
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->count(), 1u);
  const core::Invocation& inv = rec->invocations()[0];
  EXPECT_GE(inv.wall_us, 1800.0);
  EXPECT_DOUBLE_EQ(inv.params.at("Q"), 1234.0);
  // No MPI inside: compute == wall.
  EXPECT_NEAR(inv.compute_us, inv.wall_us, 1.0);
  EXPECT_NEAR(inv.mpi_us, 0.0, 1.0);
}

TEST(Mastermind, CreatesProxyTimerInTau) {
  Rig rig;
  rig.mm->start("sc_proxy::compute()", {});
  rig.mm->stop("sc_proxy::compute()");
  tau::Registry& reg = rig.tau->registry();
  ASSERT_TRUE(reg.has_timer("sc_proxy::compute()"));
  EXPECT_EQ(reg.calls(reg.timer("sc_proxy::compute()")), 1u);
  EXPECT_EQ(reg.stats_at(reg.timer("sc_proxy::compute()")).group, "PROXY");
}

TEST(Mastermind, AttributesMpiTimePerInvocation) {
  // Monitored method containing a modeled-latency receive: mpi_us must
  // capture the wait, compute_us the remainder.
  mpp::NetworkModel net;
  net.latency_us = 3000.0;
  mpp::Runtime::run(2, net, [](mpp::Comm& world) {
    Rig rig;  // installs hooks into this rank's registry
    if (world.rank() == 0) {
      int v = 1;
      world.send_bytes(&v, sizeof v, 1, 0);
    } else {
      rig.mm->start("m::recv()", {});
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 0);
      spin_ms(1.0);
      rig.mm->stop("m::recv()");
      const auto& inv = rig.mm->record("m::recv()")->invocations()[0];
      EXPECT_GE(inv.mpi_us, 2500.0);
      EXPECT_GE(inv.compute_us, 800.0);
      EXPECT_NEAR(inv.wall_us, inv.mpi_us + inv.compute_us, 1.0);
    }
  });
}

TEST(Mastermind, SeparatesConsecutiveInvocationsMpiTime) {
  // Cumulative TAU counters differenced per invocation: the second
  // invocation must not inherit the first one's MPI time.
  mpp::NetworkModel net;
  net.latency_us = 2000.0;
  mpp::Runtime::run(2, net, [](mpp::Comm& world) {
    Rig rig;
    if (world.rank() == 0) {
      int v = 1;
      world.send_bytes(&v, sizeof v, 1, 0);
      world.barrier();
    } else {
      rig.mm->start("m::a()", {});
      int v = 0;
      world.recv_bytes(&v, sizeof v, 0, 0);
      rig.mm->stop("m::a()");
      rig.mm->start("m::b()", {});
      spin_ms(0.5);  // no MPI at all
      rig.mm->stop("m::b()");
      world.barrier();
      EXPECT_GE(rig.mm->record("m::a()")->invocations()[0].mpi_us, 1500.0);
      EXPECT_NEAR(rig.mm->record("m::b()")->invocations()[0].mpi_us, 0.0, 1.0);
    }
  });
}

TEST(Mastermind, NestedMonitoringIsLifo) {
  Rig rig;
  rig.mm->start("outer()", {});
  rig.mm->start("inner()", {});
  spin_ms(1.0);
  rig.mm->stop("inner()");
  rig.mm->stop("outer()");
  EXPECT_GE(rig.mm->record("outer()")->invocations()[0].wall_us,
            rig.mm->record("inner()")->invocations()[0].wall_us);
}

TEST(Mastermind, MismatchedStopThrows) {
  Rig rig;
  rig.mm->start("a()", {});
  EXPECT_THROW(rig.mm->stop("b()"), ccaperf::Error);
  rig.mm->stop("a()");
  EXPECT_THROW(rig.mm->stop("a()"), ccaperf::Error);
}

TEST(Mastermind, CapturesCounterDeltas) {
  Rig rig;
  std::uint64_t misses = 100;
  rig.tau->registry().counters().add_source(hwc::kL2Dcm, [&misses] { return misses; });
  rig.mm->start("k()", {});
  misses = 175;
  rig.mm->stop("k()");
  const auto& inv = rig.mm->record("k()")->invocations()[0];
  ASSERT_EQ(inv.counters.size(), 1u);
  EXPECT_EQ(inv.counters[0].first, hwc::kL2Dcm);
  EXPECT_DOUBLE_EQ(inv.counters[0].second, 75.0);
}

TEST(Mastermind, SamplesExtractQAndMetric) {
  Rig rig;
  for (double q : {100.0, 200.0, 300.0}) {
    rig.mm->start("f()", {{"Q", q}});
    rig.mm->stop("f()");
  }
  const auto samples = rig.mm->record("f()")->samples("Q");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[1].first, 200.0);
  EXPECT_TRUE(rig.mm->record("f()")->samples("missing_param").empty());
}

TEST(Mastermind, CsvDumpHasHeaderAndRows) {
  Rig rig;
  rig.mm->start("f()", {{"Q", 7.0}});
  rig.mm->stop("f()");
  std::ostringstream os;
  rig.mm->record("f()")->dump_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("method,wall_us,mpi_us,compute_us,param:Q"), std::string::npos);
  EXPECT_NE(s.find("f(),"), std::string::npos);
  EXPECT_NE(s.find(",7"), std::string::npos);
}

TEST(Mastermind, DumpAllWritesFiles) {
  const std::string dir = "mastermind_test_dump";
  {
    Rig rig;
    rig.mm->start("m::f()", {{"Q", 1.0}});
    rig.mm->stop("m::f()");
    rig.mm->dump_all(dir, 0);
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/m__f__.rank0.csv"));
  std::filesystem::remove_all(dir);
}

TEST(Mastermind, CallPathEdgesFromNesting) {
  Rig rig;
  // driver -> a -> b, a -> b, then top-level b.
  rig.mm->start("a()", {});
  rig.mm->start("b()", {});
  rig.mm->stop("b()");
  rig.mm->start("b()", {});
  rig.mm->stop("b()");
  rig.mm->stop("a()");
  rig.mm->start("b()", {});
  rig.mm->stop("b()");
  EXPECT_EQ(rig.mm->call_count("a()", "b()"), 2u);
  EXPECT_EQ(rig.mm->call_count("", "a()"), 1u);
  EXPECT_EQ(rig.mm->call_count("", "b()"), 1u);
  EXPECT_EQ(rig.mm->call_count("b()", "a()"), 0u);
  ASSERT_EQ(rig.mm->call_edges().size(), 3u);
}

TEST(Mastermind, MethodKeysListsAllRecords) {
  Rig rig;
  rig.mm->start("a()", {});
  rig.mm->stop("a()");
  rig.mm->start("b()", {});
  rig.mm->stop("b()");
  const auto keys = rig.mm->method_keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a()");
  EXPECT_EQ(rig.mm->record("nope"), nullptr);
}

}  // namespace
