// Proxies: identical-interface interception, parameter extraction,
// forwarding fidelity (bit-identical results), and the AMRMesh proxy's
// per-level communication records.

#include <gtest/gtest.h>

#include "components/amrmesh_component.hpp"
#include "components/flux_components.hpp"
#include "components/states_component.hpp"
#include "core/instrumented_app.hpp"
#include "mpp/runtime.hpp"

namespace {

using amr::Box;
using euler::Array2;
using euler::Dir;
using euler::kNcomp;

/// Repo with the pieces a proxy rig needs.
cca::ComponentRepository proxy_repo() {
  cca::ComponentRepository repo;
  const euler::GasModel gas;
  repo.register_class("TauMeasurement",
                      [] { return std::make_unique<core::TauMeasurementComponent>(); });
  repo.register_class("Mastermind",
                      [] { return std::make_unique<core::MastermindComponent>(); });
  repo.register_class("States",
                      [gas] { return std::make_unique<components::StatesComponent>(gas); });
  repo.register_class("EFMFlux",
                      [gas] { return std::make_unique<components::EFMFluxComponent>(gas); });
  repo.register_class("GodunovFlux", [gas] {
    return std::make_unique<components::GodunovFluxComponent>(gas);
  });
  repo.register_class("StatesProxy",
                      [] { return std::make_unique<core::StatesProxy>(); });
  repo.register_class("FluxProxy", [] {
    return std::make_unique<core::FluxProxy>("g_proxy::compute()");
  });
  return repo;
}

struct ProxyRig {
  cca::Framework fw{proxy_repo()};
  core::MastermindComponent* mm = nullptr;
  core::TauMeasurementComponent* tau = nullptr;

  ProxyRig() {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.instantiate("states", "States");
    fw.instantiate("flux", "GodunovFlux");
    fw.instantiate("sc_proxy", "StatesProxy");
    fw.instantiate("g_proxy", "FluxProxy");
    fw.connect("mm", "measurement", "tau", "measurement");
    fw.connect("sc_proxy", "monitor", "mm", "monitor");
    fw.connect("sc_proxy", "states_real", "states", "states");
    fw.connect("g_proxy", "monitor", "mm", "monitor");
    fw.connect("g_proxy", "flux_real", "flux", "flux");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
  }
};

amr::PatchData<double> test_patch(const Box& interior) {
  amr::PatchData<double> u(interior, 2, kNcomp);
  const euler::GasModel gas;
  const Box g = u.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const euler::Prim w{1.0 + 0.01 * i + 0.02 * j, 0.1, -0.05,
                          1.0 + 0.005 * i, 1.0};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) u(i, j, c) = U[c];
    }
  return u;
}

TEST(StatesProxy, ForwardsBitIdenticalResults) {
  ProxyRig rig;
  const Box interior{0, 0, 15, 7};
  const auto u = test_patch(interior);
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);

  auto* proxied = rig.fw.services("sc_proxy")
                      .provided_as<components::StatesPort>("states");
  auto* direct =
      rig.fw.services("states").provided_as<components::StatesPort>("states");

  Array2 l1(nx, ny, kNcomp), r1(nx, ny, kNcomp);
  Array2 l2(nx, ny, kNcomp), r2(nx, ny, kNcomp);
  proxied->compute(u, interior, Dir::x, l1, r1);
  direct->compute(u, interior, Dir::x, l2, r2);
  EXPECT_EQ(l1.raw(), l2.raw());
  EXPECT_EQ(r1.raw(), r2.raw());
}

TEST(StatesProxy, ExtractsArraySizeAndMode) {
  ProxyRig rig;
  const Box interior{0, 0, 15, 7};
  const auto u = test_patch(interior);
  auto* proxied = rig.fw.services("sc_proxy")
                      .provided_as<components::StatesPort>("states");
  for (Dir dir : {Dir::x, Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
    proxied->compute(u, interior, dir, l, r);
  }
  const core::Record* rec = rig.mm->record("sc_proxy::compute()");
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->count(), 2u);
  // Q = input array cells including ghosts: (16+4)*(8+4).
  EXPECT_DOUBLE_EQ(rec->invocations()[0].params.at("Q"), 20.0 * 12.0);
  EXPECT_DOUBLE_EQ(rec->invocations()[0].params.at("mode"), 0.0);
  EXPECT_DOUBLE_EQ(rec->invocations()[1].params.at("mode"), 1.0);
  // Timer appears under the paper's name.
  EXPECT_TRUE(rig.tau->registry().has_timer("sc_proxy::compute()"));
}

TEST(FluxProxy, ForwardsAndRecords) {
  ProxyRig rig;
  const Box interior{0, 0, 15, 7};
  const auto u = test_patch(interior);
  int nx = 0, ny = 0;
  euler::face_dims(interior, Dir::x, nx, ny);
  Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp), f1(nx, ny, kNcomp),
      f2(nx, ny, kNcomp);
  auto* states =
      rig.fw.services("states").provided_as<components::StatesPort>("states");
  states->compute(u, interior, Dir::x, l, r);

  auto* proxied =
      rig.fw.services("g_proxy").provided_as<components::FluxPort>("flux");
  auto* direct = rig.fw.services("flux").provided_as<components::FluxPort>("flux");
  proxied->compute(l, r, Dir::x, f1);
  direct->compute(l, r, Dir::x, f2);
  EXPECT_EQ(f1.raw(), f2.raw());

  // Pass-through metadata.
  EXPECT_EQ(proxied->method_name(), "GodunovFlux");
  EXPECT_DOUBLE_EQ(proxied->accuracy(), 1.0);

  const core::Record* rec = rig.mm->record("g_proxy::compute()");
  ASSERT_NE(rec, nullptr);
  EXPECT_DOUBLE_EQ(rec->invocations()[0].params.at("Q"),
                   static_cast<double>(nx) * ny);
}

TEST(AMRMeshProxy, RecordsPerLevelCommunication) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    components::AppConfig cfg = components::AppConfig::case_study();
    cfg.mesh.domain = amr::Box{0, 0, 47, 23};
    cfg.mesh.max_levels = 2;
    cfg.mesh.level0_patch_size = 12;
    cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / 48.0, 1.0 / 24.0};
    auto repo = components::make_repository(world, cfg);
    core::register_pmm_classes(repo, cfg);
    cca::Framework fw(std::move(repo));
    fw.instantiate("mesh", "AMRMesh");
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.instantiate("icc_proxy", "AMRMeshProxy");
    fw.connect("mm", "measurement", "tau", "measurement");
    fw.connect("icc_proxy", "monitor", "mm", "monitor");
    fw.connect("icc_proxy", "mesh_real", "mesh", "mesh");

    auto* mesh =
        fw.services("icc_proxy").provided_as<components::MeshPort>("mesh");
    mesh->initialize();
    mesh->ghost_update(0);
    mesh->ghost_update(1);
    mesh->ghost_update(0);

    auto* mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    const core::Record* rec = mm->record("icc_proxy::ghost_update()");
    ASSERT_NE(rec, nullptr);
    // initialize() also issues ghost updates internally? No — those run on
    // the real component, below the proxy. Exactly our 3 calls are seen.
    ASSERT_EQ(rec->count(), 3u);
    EXPECT_DOUBLE_EQ(rec->invocations()[0].params.at("level"), 0.0);
    EXPECT_DOUBLE_EQ(rec->invocations()[1].params.at("level"), 1.0);
    EXPECT_GT(rec->invocations()[0].params.at("cells"), 0.0);
    // initialize was monitored too.
    EXPECT_NE(mm->record("icc_proxy::initialize()"), nullptr);
  });
}

}  // namespace
