#include <gtest/gtest.h>

#include <sstream>

#include "core/dual_graph.hpp"

namespace {

cca::WiringDiagram sample_wiring() {
  cca::WiringDiagram w;
  auto node = [](const char* inst, const char* cls) {
    return cca::WiringDiagram::Node{inst, cls, {}, {}};
  };
  w.nodes = {node("driver", "ShockDriver"), node("rk2", "RK2"),
             node("invflux", "InviscidFlux"), node("flux", "GodunovFlux")};
  w.connections = {
      cca::Connection{"driver", "integrator", "rk2", "integrator"},
      cca::Connection{"rk2", "invflux", "invflux", "invflux"},
      cca::Connection{"invflux", "flux", "flux", "flux"},
  };
  return w;
}

core::DualGraph sample_dual() {
  return core::DualGraph::build(
      sample_wiring(),
      [](const std::string& inst) -> std::pair<double, double> {
        if (inst == "flux") return {10'000.0, 0.0};
        if (inst == "invflux") return {2'000.0, 0.0};
        if (inst == "rk2") return {500.0, 3'000.0};
        return {1.0, 0.0};  // driver: negligible
      },
      [](const cca::Connection& c) { return c.uses_port == "flux" ? 384.0 : 8.0; });
}

TEST(DualGraph, BuildMirrorsWiring) {
  const auto g = sample_dual();
  ASSERT_EQ(g.vertices().size(), 4u);
  ASSERT_EQ(g.edges().size(), 3u);
  const int flux = g.vertex_index("flux");
  ASSERT_GE(flux, 0);
  EXPECT_DOUBLE_EQ(g.vertices()[static_cast<std::size_t>(flux)].compute_us, 10'000.0);
  EXPECT_EQ(g.vertices()[static_cast<std::size_t>(flux)].class_name, "GodunovFlux");
  // Edge weights carried over.
  bool found = false;
  for (const auto& e : g.edges()) {
    if (e.port == "flux") {
      EXPECT_DOUBLE_EQ(e.invocations, 384.0);
      EXPECT_EQ(g.vertices()[static_cast<std::size_t>(e.caller)].instance, "invflux");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DualGraph, TotalAndCommSplit) {
  const auto g = sample_dual();
  EXPECT_DOUBLE_EQ(g.total_us(), 10'000.0 + 2'000.0 + 3'500.0 + 1.0);
  const int rk2 = g.vertex_index("rk2");
  EXPECT_DOUBLE_EQ(g.vertices()[static_cast<std::size_t>(rk2)].comm_us, 3'000.0);
}

TEST(DualGraph, NegligibleVerticesIdentified) {
  const auto g = sample_dual();
  const auto drop = g.negligible(0.05);  // < 5% of ~15.5ms -> only driver
  ASSERT_EQ(drop.size(), 1u);
  EXPECT_EQ(drop[0], "driver");
}

TEST(DualGraph, PruneRemovesVerticesAndTheirEdges) {
  const auto pruned = sample_dual().pruned(0.05);
  EXPECT_EQ(pruned.vertices().size(), 3u);
  EXPECT_EQ(pruned.edges().size(), 2u);  // driver->rk2 edge gone
  EXPECT_EQ(pruned.vertex_index("driver"), -1);
  // Remaining edge indices remapped consistently.
  for (const auto& e : pruned.edges()) {
    ASSERT_GE(e.caller, 0);
    ASSERT_LT(static_cast<std::size_t>(e.caller), pruned.vertices().size());
    ASSERT_GE(e.callee, 0);
    ASSERT_LT(static_cast<std::size_t>(e.callee), pruned.vertices().size());
  }
}

TEST(DualGraph, DotAndPrintRender) {
  const auto g = sample_dual();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph dual"), std::string::npos);
  EXPECT_NE(dot.find("\"invflux\" -> \"flux\""), std::string::npos);
  EXPECT_NE(dot.find("N=384"), std::string::npos);
  std::ostringstream os;
  g.print(os);
  EXPECT_NE(os.str().find("GodunovFlux"), std::string::npos);
}

TEST(DualGraph, UnknownVertexIndexIsMinusOne) {
  EXPECT_EQ(sample_dual().vertex_index("ghost"), -1);
}

}  // namespace
