// Handle-based monitoring fast path: register_method/ParamSpan reporting,
// equivalence with the string-keyed shim, columnar Record accessors,
// counter-named samples(), attached streaming fits, and the streaming
// accumulators matching batch re-fits to 1e-9 relative.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "core/mastermind.hpp"
#include "core/modeling.hpp"
#include "core/tau_component.hpp"

namespace {

struct Rig {
  cca::Framework fw;
  core::MastermindComponent* mm;
  core::TauMeasurementComponent* tau;

  Rig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.connect("mm", "measurement", "tau", "measurement");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement",
                        [] { return std::make_unique<core::TauMeasurementComponent>(); });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    return repo;
  }
};

TEST(MonitorHotpath, HandlePathRecordsParamsAndTimes) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle h = mon->register_method("hp::f()", {"Q", "mode"});
  for (int i = 0; i < 3; ++i) {
    const double params[2] = {100.0 * (i + 1), static_cast<double>(i % 2)};
    mon->start(h, core::ParamSpan(params, 2));
    mon->stop(h);
  }
  const core::Record* rec = rig.mm->record("hp::f()");
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->count(), 3u);
  EXPECT_DOUBLE_EQ(rec->param_at(0, "Q"), 100.0);
  EXPECT_DOUBLE_EQ(rec->param_at(2, "Q"), 300.0);
  EXPECT_DOUBLE_EQ(rec->param_at(1, "mode"), 1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(rec->wall_us(i), 0.0);
    EXPECT_NEAR(rec->compute_us(i), rec->wall_us(i) - rec->mpi_us(i), 1e-9);
  }
  // The handle path creates the same PROXY timer the string path would.
  tau::Registry& reg = rig.tau->registry();
  ASSERT_TRUE(reg.has_timer("hp::f()"));
  EXPECT_EQ(reg.calls(reg.timer("hp::f()")), 3u);
  EXPECT_EQ(reg.stats_at(reg.timer("hp::f()")).group, "PROXY");
}

TEST(MonitorHotpath, RegisterMethodIsIdempotent) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle a = mon->register_method("hp::g()", {"Q"});
  const core::MethodHandle b = mon->register_method("hp::g()", {"Q"});
  EXPECT_EQ(a, b);
  // A different method gets a different handle.
  EXPECT_NE(a, mon->register_method("hp::h()", {"Q"}));
  // Conflicting parameter names are rejected.
  EXPECT_THROW(mon->register_method("hp::g()", {"N"}), ccaperf::Error);
  // Too many parameters are rejected.
  EXPECT_THROW(mon->register_method("hp::many()", {"a", "b", "c", "d", "e"}),
               ccaperf::Error);
}

TEST(MonitorHotpath, WrongParamCountThrows) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle h = mon->register_method("hp::f()", {"Q", "mode"});
  const double one = 7.0;
  EXPECT_THROW(mon->start(h, core::ParamSpan(&one, 1)), ccaperf::Error);
}

TEST(MonitorHotpath, MismatchedHandleStopThrows) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle a = mon->register_method("hp::a()", {});
  const core::MethodHandle b = mon->register_method("hp::b()", {});
  mon->start(a, {});
  EXPECT_THROW(mon->stop(b), ccaperf::Error);
}

// Regression: the string-keyed surface still works and shares the record
// with the handle surface — mixing the two on one method key is legal.
TEST(MonitorHotpath, StringShimSharesRecordWithHandlePath) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle h = mon->register_method("hp::mix()", {"Q"});

  const double q1 = 10.0;
  mon->start(h, core::ParamSpan(&q1, 1));
  mon->stop(h);
  mon->start("hp::mix()", {{"Q", 20.0}, {"extra", 5.0}});
  mon->stop("hp::mix()");

  const core::Record* rec = rig.mm->record("hp::mix()");
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->count(), 2u);
  EXPECT_DOUBLE_EQ(rec->param_at(0, "Q"), 10.0);
  EXPECT_DOUBLE_EQ(rec->param_at(1, "Q"), 20.0);
  // "extra" only exists on the shim row; the handle row reads NaN.
  EXPECT_TRUE(std::isnan(rec->param_at(0, "extra")));
  EXPECT_DOUBLE_EQ(rec->param_at(1, "extra"), 5.0);
  // The row-oriented view agrees.
  const auto& invs = rec->invocations();
  ASSERT_EQ(invs.size(), 2u);
  EXPECT_EQ(invs[0].params.count("extra"), 0u);
  EXPECT_DOUBLE_EQ(invs[1].params.at("extra"), 5.0);
  // samples() skips the row lacking the parameter.
  EXPECT_EQ(rec->samples("extra").size(), 1u);
  EXPECT_EQ(rec->samples("Q").size(), 2u);
}

TEST(MonitorHotpath, NestedHandleCallsCountEdges) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle outer = mon->register_method("hp::outer()", {});
  const core::MethodHandle inner = mon->register_method("hp::inner()", {});
  for (int i = 0; i < 2; ++i) {
    mon->start(outer, {});
    mon->start(inner, {});
    mon->stop(inner);
    mon->stop(outer);
  }
  EXPECT_EQ(rig.mm->call_count("hp::outer()", "hp::inner()"), 2u);
  EXPECT_EQ(rig.mm->call_count("", "hp::outer()"), 2u);
}

TEST(MonitorHotpath, SamplesAcceptsCounterMetricSource) {
  Rig rig;
  std::uint64_t flops = 0;
  rig.tau->registry().counters().add_source("PAPI_FP_OPS", [&] { return flops; });

  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle h = mon->register_method("hp::k()", {"Q"});
  for (int i = 1; i <= 4; ++i) {
    const double q = 10.0 * i;
    mon->start(h, core::ParamSpan(&q, 1));
    flops += 100 * static_cast<std::uint64_t>(i);
    mon->stop(h);
  }
  const core::Record* rec = rig.mm->record("hp::k()");
  ASSERT_NE(rec, nullptr);

  const auto s = rec->samples("Q", std::string("PAPI_FP_OPS"));
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0].first, 10.0);
  EXPECT_DOUBLE_EQ(s[0].second, 100.0);
  EXPECT_DOUBLE_EQ(s[3].second, 400.0);
  // Named time sources match the enum overloads.
  const auto wall_named = rec->samples("Q", std::string("wall"));
  const auto wall_enum = rec->samples("Q", core::Record::Metric::wall);
  ASSERT_EQ(wall_named.size(), wall_enum.size());
  for (std::size_t i = 0; i < wall_named.size(); ++i)
    EXPECT_DOUBLE_EQ(wall_named[i].second, wall_enum[i].second);
  // Unknown sources yield no samples rather than throwing.
  EXPECT_TRUE(rec->samples("Q", std::string("PAPI_NOPE")).empty());
}

TEST(MonitorHotpath, CsvDumpStreamsColumns) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle h = mon->register_method("hp::csv()", {"Q"});
  const double q = 42.0;
  mon->start(h, core::ParamSpan(&q, 1));
  mon->stop(h);

  std::ostringstream os;
  rig.mm->record("hp::csv()")->dump_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("method,wall_us,mpi_us,compute_us,param:Q"), std::string::npos);
  EXPECT_NE(text.find("hp::csv()"), std::string::npos);
}

TEST(MonitorHotpath, AttachedStreamMatchesBatchRefit) {
  Rig rig;
  core::MonitorPort* mon = rig.mm;
  const core::MethodHandle h = mon->register_method("hp::fit()", {"Q"});
  const core::Record* rec_pre = nullptr;

  std::mt19937 rng(7);
  std::uniform_real_distribution<double> qd(10.0, 500.0);
  for (int i = 0; i < 64; ++i) {
    const double q = qd(rng);
    mon->start(h, core::ParamSpan(&q, 1));
    mon->stop(h);
  }
  rec_pre = rig.mm->record("hp::fit()");
  ASSERT_NE(rec_pre, nullptr);
  // attach_stream backfills the 64 existing rows, then stays current.
  auto* rec = const_cast<core::Record*>(rec_pre);
  core::StreamingFitSet& stream = rec->attach_stream("Q", core::Record::Metric::wall);
  EXPECT_EQ(stream.count(), 64u);
  for (int i = 0; i < 8; ++i) {
    const double q = qd(rng);
    mon->start(h, core::ParamSpan(&q, 1));
    mon->stop(h);
  }
  EXPECT_EQ(stream.count(), 72u);
}

// --- streaming accumulators vs batch re-fit (property tests) -----------------

double rel_err(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  return denom == 0.0 ? 0.0 : std::abs(a - b) / denom;
}

TEST(StreamingFits, PolynomialCoefficientsMatchBatchTo1e9) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> qd(1.0, 200.0);
  std::normal_distribution<double> noise(0.0, 3.0);
  for (int degree = 1; degree <= 2; ++degree) {
    std::vector<core::Sample> pts;
    core::StreamingPolyFit stream(degree);
    for (int i = 0; i < 400; ++i) {
      const double q = qd(rng);
      const double t = 12.0 + 0.7 * q + 0.003 * q * q + noise(rng);
      pts.push_back(core::Sample{q, t});
      stream.add(q, t);
    }
    const auto batch = core::fit_polynomial(pts, degree);
    const auto online = stream.fit();
    ASSERT_EQ(batch->coefficients().size(), online->coefficients().size());
    for (std::size_t k = 0; k < batch->coefficients().size(); ++k)
      EXPECT_LT(rel_err(batch->coefficients()[k], online->coefficients()[k]), 1e-9)
          << "degree " << degree << " coeff " << k;
    EXPECT_LT(rel_err(batch->r2, online->r2), 1e-6);
  }
}

TEST(StreamingFits, PowerLawCoefficientsMatchBatchTo1e9) {
  std::mt19937 rng(43);
  std::uniform_real_distribution<double> qd(2.0, 1000.0);
  std::normal_distribution<double> lnoise(0.0, 0.05);
  std::vector<core::Sample> pts;
  core::StreamingPowerLawFit stream;
  for (int i = 0; i < 300; ++i) {
    const double q = qd(rng);
    const double t = 0.4 * std::pow(q, 1.3) * std::exp(lnoise(rng));
    pts.push_back(core::Sample{q, t});
    stream.add(q, t);
  }
  const auto batch = core::fit_power_law(pts);
  const auto online = stream.fit();
  EXPECT_LT(rel_err(batch->exponent(), online->exponent()), 1e-9);
  EXPECT_LT(rel_err(batch->log_coeff(), online->log_coeff()), 1e-9);
}

TEST(StreamingFits, ExponentialCoefficientsMatchBatchTo1e9) {
  std::mt19937 rng(44);
  std::uniform_real_distribution<double> qd(0.0, 50.0);
  std::normal_distribution<double> lnoise(0.0, 0.05);
  std::vector<core::Sample> pts;
  core::StreamingExpFit stream;
  for (int i = 0; i < 300; ++i) {
    const double q = qd(rng);
    const double t = std::exp(1.5 + 0.04 * q + lnoise(rng));
    pts.push_back(core::Sample{q, t});
    stream.add(q, t);
  }
  const auto batch = core::fit_exponential(pts);
  const auto online = stream.fit();
  EXPECT_LT(rel_err(batch->a(), online->a()), 1e-9);
  EXPECT_LT(rel_err(batch->b(), online->b()), 1e-9);
}

TEST(StreamingFits, PolyResidualSumMatchesBatchTo1e9) {
  std::mt19937 rng(46);
  std::uniform_real_distribution<double> qd(1.0, 200.0);
  std::normal_distribution<double> noise(0.0, 2.0);
  for (int degree = 1; degree <= 2; ++degree) {
    std::vector<core::Sample> pts;
    core::StreamingPolyFit stream(degree);
    for (int i = 0; i < 250; ++i) {
      const double q = qd(rng);
      const double t = 5.0 + 0.3 * q + 0.002 * q * q + noise(rng);
      pts.push_back(core::Sample{q, t});
      stream.add(q, t);
    }
    const auto batch = core::fit_polynomial(pts, degree);
    double ss_batch = 0.0;
    for (const core::Sample& s : pts) {
      const double e = s.t - batch->predict(s.q);
      ss_batch += e * e;
    }
    EXPECT_LT(rel_err(stream.residual_sum(), ss_batch), 1e-9)
        << "degree " << degree;
    EXPECT_LT(rel_err(stream.mean_sq_residual(),
                      ss_batch / static_cast<double>(pts.size())),
              1e-9);
  }
}

TEST(StreamingFits, PolyResidualSumIsZeroOnExactData) {
  core::StreamingPolyFit stream(1);
  for (double q : {1.0, 2.0, 5.0, 9.0, 20.0}) stream.add(q, 3.0 + 2.0 * q);
  EXPECT_NEAR(stream.residual_sum(), 0.0, 1e-9);
  EXPECT_NEAR(stream.mean_sq_residual(), 0.0, 1e-9);
}

TEST(StreamingFits, PowerLawAndExpLogResidualsMatchBatchTo1e9) {
  // The residual accessors report *log-space* residuals — verify against
  // the batch fit's log-space sum of squares.
  std::mt19937 rng(47);
  std::uniform_real_distribution<double> qd(2.0, 500.0);
  std::normal_distribution<double> lnoise(0.0, 0.08);

  std::vector<core::Sample> pts;
  core::StreamingPowerLawFit pstream;
  for (int i = 0; i < 200; ++i) {
    const double q = qd(rng);
    const double t = 0.9 * std::pow(q, 1.1) * std::exp(lnoise(rng));
    pts.push_back(core::Sample{q, t});
    pstream.add(q, t);
  }
  const auto pbatch = core::fit_power_law(pts);
  double ss_p = 0.0;
  for (const core::Sample& s : pts) {
    const double e =
        std::log(s.t) - (pbatch->log_coeff() + pbatch->exponent() * std::log(s.q));
    ss_p += e * e;
  }
  EXPECT_LT(rel_err(pstream.log_residual_sum(), ss_p), 1e-9);
  EXPECT_LT(rel_err(pstream.mean_sq_log_residual(),
                    ss_p / static_cast<double>(pts.size())),
            1e-9);

  pts.clear();
  core::StreamingExpFit estream;
  std::uniform_real_distribution<double> qd2(0.0, 40.0);
  for (int i = 0; i < 200; ++i) {
    const double q = qd2(rng);
    const double t = std::exp(0.8 + 0.05 * q + lnoise(rng));
    pts.push_back(core::Sample{q, t});
    estream.add(q, t);
  }
  const auto ebatch = core::fit_exponential(pts);
  double ss_e = 0.0;
  for (const core::Sample& s : pts) {
    // ExponentialModel is T = exp(a + b q): `a` is the log-space intercept.
    const double e = std::log(s.t) - (ebatch->a() + ebatch->b() * s.q);
    ss_e += e * e;
  }
  EXPECT_LT(rel_err(estream.log_residual_sum(), ss_e), 1e-9);
  EXPECT_LT(rel_err(estream.mean_sq_log_residual(),
                    ss_e / static_cast<double>(pts.size())),
            1e-9);
}

TEST(StreamingFits, FitSetPicksSameFamilyAsBatchFitBest) {
  // Clean quadratic data: both selectors should settle on a polynomial
  // with matching coefficients.
  std::mt19937 rng(45);
  std::uniform_real_distribution<double> qd(5.0, 400.0);
  std::vector<core::Sample> pts;
  core::StreamingFitSet stream(2);
  for (int i = 0; i < 200; ++i) {
    const double q = qd(rng);
    const double t = 3.0 + 0.2 * q + 0.01 * q * q;
    pts.push_back(core::Sample{q, t});
    stream.add(q, t);
  }
  const auto batch = core::fit_best(pts, 2);
  const auto online = stream.best();
  EXPECT_NEAR(batch->predict(123.0), online->predict(123.0),
              1e-6 * std::abs(batch->predict(123.0)));
}

}  // namespace
