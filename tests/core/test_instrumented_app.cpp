// End-to-end integration of the full PMM stack on the case-study app:
// non-intrusiveness (instrumented == plain physics), the paper's profile
// structure, record completeness, the recursive level-processing
// sequence, and model construction from real measurement data.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "components/app_assembly.hpp"
#include "core/dual_graph.hpp"
#include "core/instrumented_app.hpp"
#include "core/modeling.hpp"
#include "mpp/runtime.hpp"
#include "tau/profile.hpp"

namespace {

using components::AppConfig;

AppConfig tiny_config(int nsteps) {
  AppConfig cfg;
  cfg.mesh.domain = amr::Box{0, 0, 47, 23};
  cfg.mesh.max_levels = 3;
  cfg.mesh.ncomp = euler::kNcomp;
  cfg.mesh.level0_patch_size = 12;
  cfg.mesh.cluster = amr::ClusterParams{0.75, 4, 0};
  cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / 48.0, 1.0 / 24.0};
  cfg.driver = components::DriverConfig{nsteps, 0.4, 0};
  cfg.flux_impl = "GodunovFlux";
  return cfg;
}

double run_plain_mass(int nranks, const AppConfig& cfg) {
  std::vector<double> mass(static_cast<std::size_t>(nranks), 0.0);
  mpp::Runtime::run(nranks, [&](mpp::Comm& world) {
    auto fw = components::assemble_app(world, cfg);
    fw->services("driver").provided_as<components::GoPort>("go")->go();
    auto* mesh = fw->services("driver").get_port_as<components::MeshPort>("mesh");
    double m = 0.0;
    for (auto& [id, data] : mesh->hierarchy().level(0).local_data()) {
      double totals[euler::kNcomp];
      euler::total_conserved(data, mesh->hierarchy().level(0).patch(id).box, totals);
      m += totals[euler::kRho];
    }
    mass[static_cast<std::size_t>(world.rank())] = world.allreduce_value<>(m);
  });
  return mass[0];
}

TEST(InstrumentedApp, NonIntrusive) {
  // "Program modification is simplified to ... switching in a similar
  // component without affecting the rest of the application": proxies must
  // not change the physics at all.
  const AppConfig cfg = tiny_config(2);
  const double plain = run_plain_mass(2, cfg);

  std::vector<double> mass(2, 0.0);
  mpp::Runtime::run(2, [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, cfg);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    auto* mesh =
        app.fw().services("driver").get_port_as<components::MeshPort>("mesh");
    double m = 0.0;
    for (auto& [id, data] : mesh->hierarchy().level(0).local_data()) {
      double totals[euler::kNcomp];
      euler::total_conserved(data, mesh->hierarchy().level(0).patch(id).box, totals);
      m += totals[euler::kRho];
    }
    mass[static_cast<std::size_t>(world.rank())] = world.allreduce_value<>(m);
  });
  EXPECT_DOUBLE_EQ(plain, mass[0]);
}

TEST(InstrumentedApp, ProfileHasPaperStructure) {
  std::vector<std::vector<tau::ProfileRow>> profiles(2);
  mpp::Runtime::run(2, mpp::NetworkModel{30.0, 50.0, 0.2, 7},
                    [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, tiny_config(2));
    tau::Registry& reg = app.registry();
    const auto root = reg.timer("int main(int, char **)");
    reg.start(root);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    reg.stop(root);
    profiles[static_cast<std::size_t>(world.rank())] = tau::profile_rows(reg);
  });
  const auto mean = tau::mean_rows(profiles);
  ASSERT_FALSE(mean.empty());
  // Root dominates; the Fig. 3 rows are present.
  EXPECT_EQ(mean[0].name, "int main(int, char **)");
  auto has = [&](const std::string& name) {
    for (const auto& r : mean)
      if (r.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("MPI_Waitsome()"));
  EXPECT_TRUE(has("MPI_Isend()"));
  EXPECT_TRUE(has("MPI_Allreduce()"));
  EXPECT_TRUE(has("g_proxy::compute()"));
  EXPECT_TRUE(has("sc_proxy::compute()"));
  EXPECT_TRUE(has("icc_proxy::prolong()"));
  EXPECT_TRUE(has("icc_proxy::restrict()"));
  // Inclusive >= exclusive for every row; root %-dominance.
  for (const auto& r : mean) EXPECT_GE(r.inclusive_us + 1e-9, r.exclusive_us);
}

TEST(InstrumentedApp, RecursiveSequenceMatchesPaper) {
  // One coarse step with 3 levels at r=2: RK2 issues two ghost updates
  // per level visit, and visits follow L0 L1 L2 L2 L1 L2 L2 — so
  // ghost_update counts per level are L0:2, L1:4, L2:8.
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    AppConfig cfg = tiny_config(1);
    auto app = core::assemble_instrumented_app(world, cfg);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    const core::Record* rec =
        app.mastermind->record("icc_proxy::ghost_update()");
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(app.mastermind->record("icc_proxy::prolong()")->count() +
                  rec->count(),
              rec->count() * 2u - 2u);  // prolong on l>0 visits only
    std::map<double, int> per_level;
    for (const auto& inv : rec->invocations())
      ++per_level[inv.params.at("level")];
    ASSERT_EQ(per_level.size(), 3u);
    EXPECT_EQ(per_level[0.0], 2);
    EXPECT_EQ(per_level[1.0], 4);
    EXPECT_EQ(per_level[2.0], 8);
    // restrict called once per parent visit: L1->L0 once, L2->L1 twice.
    EXPECT_EQ(app.mastermind->record("icc_proxy::restrict()")->count(), 3u);
  });
}

TEST(InstrumentedApp, StatesRecordSupportsModelFitting) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, tiny_config(2));
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    const core::Record* rec = app.mastermind->record("sc_proxy::compute()");
    ASSERT_NE(rec, nullptr);
    ASSERT_GE(rec->count(), 16u);
    auto raw = rec->samples("Q", core::Record::Metric::compute);
    std::vector<core::Sample> samples;
    for (auto [q, t] : raw) samples.push_back({q, t});
    const auto ms = core::build_mean_sigma_models(samples);
    ASSERT_NE(ms.mean, nullptr);
    EXPECT_GE(ms.bins.size(), 2u);
    // Compute time grows with array size (within the observed Q range —
    // extrapolation beyond the data is not meaningful).
    const double q_lo = ms.bins.front().q, q_hi = ms.bins.back().q;
    EXPECT_GT(ms.mean->predict(q_hi), ms.mean->predict(q_lo));
    // States does no message passing (paper §5).
    for (const auto& inv : rec->invocations())
      EXPECT_NEAR(inv.mpi_us, 0.0, 50.0);
  });
}

TEST(InstrumentedApp, DualGraphFromRealRun) {
  mpp::Runtime::run(1, [](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, tiny_config(1));
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    auto* mm = app.mastermind;

    const auto vertex_weight =
        [&](const std::string& inst) -> std::pair<double, double> {
      // Sum measured compute/comm over the records of the matching proxy.
      const std::map<std::string, std::string> keys{
          {"sc_proxy", "sc_proxy::compute()"},
          {"flux_proxy", "g_proxy::compute()"},
          {"icc_proxy", "icc_proxy::ghost_update()"}};
      auto it = keys.find(inst);
      if (it == keys.end()) return {0.0, 0.0};
      const core::Record* rec = mm->record(it->second);
      double compute = 0.0, comm = 0.0;
      for (const auto& inv : rec->invocations()) {
        compute += inv.compute_us;
        comm += inv.mpi_us;
      }
      return {compute, comm};
    };
    const auto edge_weight = [&](const cca::Connection& c) -> double {
      const core::Record* rec = nullptr;
      if (c.provider_instance == "sc_proxy") rec = mm->record("sc_proxy::compute()");
      if (c.provider_instance == "flux_proxy") rec = mm->record("g_proxy::compute()");
      return rec ? static_cast<double>(rec->count()) : 0.0;
    };
    const auto dual =
        core::DualGraph::build(app.fw().wiring(), vertex_weight, edge_weight);
    EXPECT_EQ(dual.vertices().size(), app.fw().wiring().nodes.size());
    EXPECT_GT(dual.total_us(), 0.0);
    const int flux = dual.vertex_index("flux_proxy");
    ASSERT_GE(flux, 0);
    EXPECT_GT(dual.vertices()[static_cast<std::size_t>(flux)].compute_us, 0.0);
    // Pruning keeps the heavy kernels.
    const auto pruned = dual.pruned(0.01);
    EXPECT_GE(pruned.vertex_index("flux_proxy"), 0);
  });
}

TEST(InstrumentedApp, MpiGroupDisableZerosRecordedMpiTime) {
  mpp::Runtime::run(2, [](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, tiny_config(1));
    app.registry().set_group_enabled(tau::kMpiGroup, false);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    const core::Record* rec = app.mastermind->record("icc_proxy::ghost_update()");
    ASSERT_NE(rec, nullptr);
    for (const auto& inv : rec->invocations())
      EXPECT_DOUBLE_EQ(inv.mpi_us, 0.0);
  });
}

}  // namespace
