// Thread-aware monitoring (DESIGN.md §9): monitored calls from worker
// pool lanes go to per-lane registry shards and merge deterministically
// into the rank's primary registry at region end; worker rows carry a
// "thread" column, while single-threaded ranks keep the exact pre-thread
// record layout.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>

#include "core/mastermind.hpp"
#include "core/tau_component.hpp"
#include "support/thread_pool.hpp"

namespace {

/// Rebuilds the rank pool for the test and restores the serial pool on
/// scope exit. Must be constructed BEFORE any component that captures the
/// pool (TauMeasurementComponent installs its merge hook on it), so the
/// components die before the pool they reference.
struct PoolGuard {
  explicit PoolGuard(int lanes) { ccaperf::set_rank_pool_threads(lanes); }
  ~PoolGuard() { ccaperf::set_rank_pool_threads(1); }
};

struct Rig {
  cca::Framework fw;
  core::MastermindComponent* mm;
  core::TauMeasurementComponent* tau;

  Rig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.connect("mm", "measurement", "tau", "measurement");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement",
                        [] { return std::make_unique<core::TauMeasurementComponent>(); });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    return repo;
  }
};

/// One monitored invocation per item, from whatever lane runs it.
void monitored_sweep(Rig& rig, core::MethodHandle h, std::size_t n) {
  ccaperf::rank_pool().parallel_for(n, [&](std::size_t i, int) {
    const double params[1] = {static_cast<double>(i)};
    rig.mm->start(h, core::ParamSpan(params, 1));
    rig.mm->stop(h);
  });
}

TEST(ThreadedMonitor, WorkerRowsMergeIntoPrimaryRegistry) {
  PoolGuard pool(4);
  Rig rig;
  const core::MethodHandle h = rig.mm->register_method("tm::patch()", {"Q"});
  // Resolve on the rank thread before any in-region monitoring.
  const double q0[1] = {0.0};
  rig.mm->start(h, core::ParamSpan(q0, 1));
  rig.mm->stop(h);

  constexpr std::size_t kItems = 64;
  monitored_sweep(rig, h, kItems);

  // Region-end hook folded every lane's shard into the primary registry:
  // the merged call count is exact regardless of which lane ran what.
  tau::Registry& reg = rig.tau->registry();
  ASSERT_TRUE(reg.has_timer("tm::patch()"));
  EXPECT_EQ(reg.calls(reg.timer("tm::patch()")), kItems + 1);

  // Every invocation produced a record row.
  const core::Record* rec = rig.mm->record("tm::patch()");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count(), kItems + 1);
}

TEST(ThreadedMonitor, RowsCarryTheLaneInTheThreadColumn) {
  PoolGuard pool(3);
  Rig rig;
  const core::MethodHandle h = rig.mm->register_method("tm::lane()", {"Q"});
  const double q0[1] = {0.0};
  rig.mm->start(h, core::ParamSpan(q0, 1));
  rig.mm->stop(h);
  monitored_sweep(rig, h, 32);

  const core::Record* rec = rig.mm->record("tm::lane()");
  ASSERT_NE(rec, nullptr);
  const std::vector<std::string> names = rec->param_names();
  ASSERT_NE(std::find(names.begin(), names.end(), "thread"), names.end());
  for (std::size_t i = 0; i < rec->count(); ++i) {
    const double t = rec->param_at(i, "thread");
    ASSERT_FALSE(std::isnan(t));
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 3.0);
  }
  // The rank pool has 3 lanes but only worker rows can exceed lane 0; the
  // resolve call on the rank thread is pinned to 0.
  EXPECT_DOUBLE_EQ(rec->param_at(0, "thread"), 0.0);
}

TEST(ThreadedMonitor, CallCountsMatchTheSerialRank) {
  constexpr std::size_t kItems = 48;
  std::uint64_t serial_calls = 0;
  {
    PoolGuard pool(1);
    Rig rig;
    const core::MethodHandle h = rig.mm->register_method("tm::eq()", {"Q"});
    monitored_sweep(rig, h, kItems);
    tau::Registry& reg = rig.tau->registry();
    serial_calls = reg.calls(reg.timer("tm::eq()"));
  }
  PoolGuard pool(4);
  Rig rig;
  const core::MethodHandle h = rig.mm->register_method("tm::eq()", {"Q"});
  const double q0[1] = {0.0};
  rig.mm->start(h, core::ParamSpan(q0, 1));
  rig.mm->stop(h);
  monitored_sweep(rig, h, kItems);
  tau::Registry& reg = rig.tau->registry();
  EXPECT_EQ(reg.calls(reg.timer("tm::eq()")), serial_calls + 1);
}

TEST(ThreadedMonitor, SerialRankKeepsThePreThreadingColumnSet) {
  PoolGuard pool(1);
  Rig rig;
  const core::MethodHandle h = rig.mm->register_method("tm::serial()", {"Q"});
  const double params[1] = {7.0};
  rig.mm->start(h, core::ParamSpan(params, 1));
  rig.mm->stop(h);
  const core::Record* rec = rig.mm->record("tm::serial()");
  ASSERT_NE(rec, nullptr);
  const std::vector<std::string> names = rec->param_names();
  EXPECT_EQ(std::find(names.begin(), names.end(), "thread"), names.end());
}

TEST(ThreadedMonitor, FirstMonitoredCallOffTheRankThreadIsRejected) {
  PoolGuard pool(2);
  Rig rig;
  const core::MethodHandle h = rig.mm->register_method("tm::cold()", {});
  // Nothing resolved the measurement port yet: in-region monitoring from a
  // worker lane must fail loudly instead of racing the resolution.
  std::atomic<bool> worker_threw{false};
  ccaperf::rank_pool().parallel_for(256, [&](std::size_t i, int lane) {
    if (lane != 0) {
      try {
        rig.mm->start(h, {});
        rig.mm->stop(h);
      } catch (const std::runtime_error&) {
        worker_threw.store(true);
      }
      return;
    }
    // Item 0 is always the caller's first chunk: park it until the worker
    // lane has run at least one item, so the caller cannot steal the whole
    // range before the worker wakes (single-core CI boxes).
    if (i == 0)
      while (!worker_threw.load()) std::this_thread::yield();
  });
  EXPECT_TRUE(worker_threw.load());
}

TEST(ThreadedMonitor, ShimPathWorksFromWorkerLanes) {
  PoolGuard pool(3);
  Rig rig;
  rig.mm->start("tm::shim()", {});  // resolve on the rank thread
  rig.mm->stop("tm::shim()");
  ccaperf::rank_pool().parallel_for(24, [&](std::size_t i, int) {
    rig.mm->start("tm::shim()", {{"bytes", static_cast<double>(i)}});
    rig.mm->stop("tm::shim()");
  });
  const core::Record* rec = rig.mm->record("tm::shim()");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count(), 25u);
  tau::Registry& reg = rig.tau->registry();
  EXPECT_EQ(reg.calls(reg.timer("tm::shim()")), 25u);
}

}  // namespace
