// core::OverheadGovernor (DESIGN.md §12): the feedback controller that
// keeps always-on telemetry under budget. The controller is pure — all
// clock reads live in the Mastermind — so these tests drive it with
// synthetic windows and pin the exact tier-transition sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/governor.hpp"
#include "core/mastermind.hpp"
#include "core/proxies.hpp"
#include "core/tau_component.hpp"
#include "support/thread_pool.hpp"

namespace {

core::GovernorConfig test_config() {
  core::GovernorConfig cfg;
  cfg.enabled = true;
  cfg.budget_pct = 2.0;
  cfg.band_pct = 0.5;
  cfg.window_records = 4;
  cfg.min_window_us = 100.0;
  cfg.settle_windows = 1;
  cfg.calm_windows = 2;
  return cfg;
}

/// Window with a given overhead percentage over a 10 ms span.
core::OverheadGovernor::Window window_pct(double pct) {
  core::OverheadGovernor::Window w;
  w.wall_us = 10'000.0;
  w.self_us = w.wall_us * pct / 100.0;
  w.records = 64;
  return w;
}

struct Rig {
  cca::Framework fw;
  core::MastermindComponent* mm;
  core::TauMeasurementComponent* tau;

  Rig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.connect("mm", "measurement", "tau", "measurement");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement", [] {
      return std::make_unique<core::TauMeasurementComponent>();
    });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    return repo;
  }
};

TEST(Governor, DisabledWhenEnvUnset) {
  unsetenv("CCAPERF_OVERHEAD_PCT");
  const core::GovernorConfig cfg = core::GovernorConfig::from_env();
  EXPECT_FALSE(cfg.enabled);
}

TEST(Governor, EnvBudgetParsedAndValidated) {
  setenv("CCAPERF_OVERHEAD_PCT", "2", 1);
  const core::GovernorConfig cfg = core::GovernorConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_DOUBLE_EQ(cfg.budget_pct, 2.0);
  // The acceptance contract: a 2% budget converges by 2.5%.
  EXPECT_LE(cfg.budget_pct + cfg.band_pct, 2.5 + 1e-12);

  setenv("CCAPERF_OVERHEAD_PCT", "-1", 1);
  EXPECT_THROW(core::GovernorConfig::from_env(), std::invalid_argument);
  setenv("CCAPERF_OVERHEAD_PCT", "bogus", 1);
  EXPECT_THROW(core::GovernorConfig::from_env(), std::invalid_argument);
  unsetenv("CCAPERF_OVERHEAD_PCT");
}

TEST(Governor, LadderIsMonotone) {
  using G = core::OverheadGovernor;
  for (int l = 0; l < G::kMaxLevel; ++l) {
    const G::Settings a = G::settings_for(l);
    const G::Settings b = G::settings_for(l + 1);
    EXPECT_LE(a.telem_interval_mult, b.telem_interval_mult) << "level " << l;
    EXPECT_LE(static_cast<int>(a.trace_tier), static_cast<int>(b.trace_tier))
        << "level " << l;
    EXPECT_LE(a.monitor_stride, b.monitor_stride) << "level " << l;
    EXPECT_LE(a.cachesim_stride, b.cachesim_stride) << "level " << l;
  }
  // Endpoints: level 0 is full verbosity, level max records 1-in-32.
  EXPECT_EQ(G::settings_for(0).monitor_stride, 1u);
  EXPECT_EQ(G::settings_for(0).trace_tier, tau::TraceTier::full);
  EXPECT_EQ(G::settings_for(G::kMaxLevel).trace_tier, tau::TraceTier::off);
}

TEST(Governor, DeterministicTransitions) {
  // Same config + same synthetic load => bit-identical level sequences.
  // This is the property that makes governed runs reproducible.
  core::OverheadGovernor a(test_config());
  core::OverheadGovernor b(test_config());
  const double load[] = {8.0, 8.0, 6.0, 5.0, 4.0, 3.0, 2.6, 2.0,
                         1.2, 1.0, 1.0, 1.0, 1.0, 3.1, 1.0, 1.0};
  std::vector<int> seq_a, seq_b;
  for (double pct : load) seq_a.push_back(a.observe(window_pct(pct)).level);
  for (double pct : load) seq_b.push_back(b.observe(window_pct(pct)).level);
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.throttles(), b.throttles());
}

TEST(Governor, ThrottlesUnderSustainedOverloadWithSettle) {
  core::OverheadGovernor gov(test_config());
  // Sustained 8% overhead against a 2% budget: throttle one level per
  // decision, but every actuation is followed by one settle window.
  std::vector<int> levels;
  for (int i = 0; i < 8; ++i) levels.push_back(gov.observe(window_pct(8.0)).level);
  EXPECT_EQ(levels, (std::vector<int>{1, 1, 2, 2, 3, 3, 4, 4}));
  EXPECT_EQ(gov.throttles(), 4u);
  EXPECT_EQ(gov.unthrottles(), 0u);
}

TEST(Governor, RelaxNeedsSustainedCalm) {
  core::OverheadGovernor gov(test_config());
  gov.observe(window_pct(8.0));  // -> L1
  gov.observe(window_pct(8.0));  // settle
  ASSERT_EQ(gov.level(), 1);
  // One quiet window (a barrier, an I/O stall) must NOT reopen the tiers.
  gov.observe(window_pct(0.5));
  EXPECT_EQ(gov.level(), 1);
  // The second consecutive calm window completes the run and relaxes.
  gov.observe(window_pct(0.5));
  EXPECT_EQ(gov.level(), 0);
  EXPECT_EQ(gov.unthrottles(), 1u);
}

TEST(Governor, NoOscillationInsideBand) {
  core::OverheadGovernor gov(test_config());
  gov.observe(window_pct(8.0));
  gov.observe(window_pct(8.0));
  ASSERT_EQ(gov.level(), 1);
  // Overhead hovering inside [budget - band, budget + band]: dead zone.
  for (int i = 0; i < 20; ++i) {
    gov.observe(window_pct(i % 2 == 0 ? 1.8 : 2.3));
    EXPECT_EQ(gov.level(), 1) << "window " << i;
  }
}

TEST(Governor, CalmRunResetsOnInBandWindow) {
  core::OverheadGovernor gov(test_config());
  gov.observe(window_pct(8.0));
  gov.observe(window_pct(8.0));
  ASSERT_EQ(gov.level(), 1);
  // calm, in-band, calm: the interruption resets the calm run, so no relax.
  gov.observe(window_pct(0.5));
  gov.observe(window_pct(2.0));
  gov.observe(window_pct(0.5));
  EXPECT_EQ(gov.level(), 1);
  gov.observe(window_pct(0.5));
  EXPECT_EQ(gov.level(), 0);
}

TEST(Governor, TinyWindowsAreNotEvaluated) {
  core::OverheadGovernor gov(test_config());
  core::OverheadGovernor::Window w;
  w.wall_us = 50.0;  // below min_window_us
  w.self_us = 40.0;  // 80% overhead — must still be ignored
  w.records = 4;
  const auto d = gov.observe(w);
  EXPECT_FALSE(d.evaluated);
  EXPECT_EQ(gov.level(), 0);
  EXPECT_EQ(gov.decisions(), 0u);
}

TEST(Governor, OverheadBasisPointsTrackLastWindow) {
  core::OverheadGovernor gov(test_config());
  gov.observe(window_pct(3.14));
  EXPECT_EQ(gov.last_overhead_bp(), 314u);
  EXPECT_NEAR(gov.last_overhead_pct(), 3.14, 1e-9);
}

// --- Mastermind plumbing -----------------------------------------------------

TEST(GovernorMonitor, CountersRegisteredOnAttach) {
  Rig rig;
  const auto& names0 = rig.tau->registry().counters().names();
  EXPECT_EQ(std::count_if(names0.begin(), names0.end(),
                          [](const std::string& n) {
                            return n.rfind("GOVERNOR_", 0) == 0;
                          }),
            0);
  core::OverheadGovernor gov(test_config());
  rig.mm->attach_governor(&gov);
  const auto& names = rig.tau->registry().counters().names();
  for (const char* want :
       {"GOVERNOR_LEVEL", "GOVERNOR_DECISIONS", "GOVERNOR_THROTTLES",
        "GOVERNOR_UNTHROTTLES", "GOVERNOR_OVERHEAD_BP"})
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << want;
}

TEST(GovernorMonitor, SamplingThinsRecordsAndReportsRealizedFraction) {
  Rig rig;
  // Drive the governor to a level with monitor_stride > 1 before attaching,
  // so the stride applies from the first monitored call.
  core::GovernorConfig cfg = test_config();
  core::OverheadGovernor gov(cfg);
  while (gov.settings().monitor_stride < 4) gov.observe(window_pct(50.0));
  const std::uint32_t stride = gov.settings().monitor_stride;
  rig.mm->attach_governor(&gov);
  EXPECT_EQ(rig.mm->monitor_stride(), stride);

  const core::MethodHandle h = rig.mm->register_method("k::f()", {"Q"});
  const std::size_t calls = 64;
  for (std::size_t i = 0; i < calls; ++i) {
    const double params[1] = {static_cast<double>(i + 1)};
    rig.mm->start(h, core::ParamSpan(params, 1));
    rig.mm->stop(h);
  }
  const core::Record* rec = rig.mm->record("k::f()");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count(), calls / stride);
  EXPECT_NEAR(rig.mm->realized_fraction("k::f()"), 1.0 / stride, 1e-12);
  // The sampler is a deterministic phase test, so the kept rows are evenly
  // strided: Q values 1, 1+stride, 1+2*stride, ...
  for (std::size_t i = 0; i < rec->count(); ++i)
    EXPECT_DOUBLE_EQ(rec->param_at(i, "Q"),
                     static_cast<double>(1 + i * stride));
}

TEST(GovernorMonitor, UnattachedMastermindRecordsEveryCall) {
  Rig rig;
  const core::MethodHandle h = rig.mm->register_method("k::f()", {});
  for (int i = 0; i < 16; ++i) {
    rig.mm->start(h, {});
    rig.mm->stop(h);
  }
  EXPECT_EQ(rig.mm->record("k::f()")->count(), 16u);
  EXPECT_DOUBLE_EQ(rig.mm->realized_fraction("k::f()"), 1.0);
}

TEST(GovernorMonitor, CostSourcesFeedSelfTotal) {
  // External probes (cache-sim pricing, trace export) report cumulative
  // self-cost; the governor window must see it. Observable via telemetry's
  // overhead_pct once a window closes — here we just check the plumbing
  // accepts sources and realized_fraction of unknown keys is 1.
  Rig rig;
  double cost = 0.0;
  rig.mm->add_cost_source("probe", [&cost] { return cost; });
  EXPECT_DOUBLE_EQ(rig.mm->realized_fraction("nope"), 1.0);
}

TEST(GovernorMonitor, TelemetryCarriesGovernorLevelAndBackend) {
  Rig rig;
  core::OverheadGovernor gov(test_config());
  rig.mm->attach_governor(&gov);
  rig.mm->set_telemetry_hwc("sim");
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 1);
  const core::MethodHandle h = rig.mm->register_method("k::f()", {});
  rig.mm->start(h, {});
  rig.mm->stop(h);
  rig.mm->stop_telemetry();
  const std::string out = sink.str();
  EXPECT_NE(out.find("\"governor_level\":0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"hwc\":\"sim\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"overhead_pct\":"), std::string::npos) << out;
}

TEST(GovernorMonitor, GovernorEventLineIsValidTelemetry) {
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 1000);  // no interval lines
  rig.mm->emit_governor_event("refit", "\"action\":\"hold\"");
  rig.mm->stop_telemetry();
  const auto out = sink.str();
  EXPECT_NE(out.find("\"governor\":{\"event\":\"refit\",\"action\":\"hold\"}"),
            std::string::npos)
      << out;
}

// --- online re-fit loop ------------------------------------------------------

struct FakeFlux final : public cca::Component, public components::FluxPort {
  std::string name;
  int calls = 0;
  explicit FakeFlux(std::string n) : name(std::move(n)) {}
  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<components::FluxPort*>(this)),
                          "flux", "euler.FluxPort");
  }
  euler::KernelCounts compute(const euler::Array2&, const euler::Array2&,
                              euler::Dir, euler::Array2&) override {
    ++calls;
    return {};
  }
  std::string method_name() const override { return "Fake" + name; }
  double accuracy() const override { return 1.0; }
};

struct RefitRig {
  cca::Framework fw;
  core::MastermindComponent* mm;

  RefitRig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.instantiate("flux", "FluxA");
    fw.instantiate("g_proxy", "FluxProxy");
    fw.connect("mm", "measurement", "tau", "measurement");
    fw.connect("g_proxy", "monitor", "mm", "monitor");
    fw.connect("g_proxy", "flux_real", "flux", "flux");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement", [] {
      return std::make_unique<core::TauMeasurementComponent>();
    });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    repo.register_class("FluxA", [] { return std::make_unique<FakeFlux>("A"); });
    repo.register_class("FluxB", [] { return std::make_unique<FakeFlux>("B"); });
    repo.register_class("FluxProxy", [] {
      return std::make_unique<core::FluxProxy>("g_proxy::compute()");
    });
    return repo;
  }

  /// One monitored proxy call with the given Q (drives the streaming fits).
  void call(double q) {
    auto* port =
        fw.services("g_proxy").provided_as<components::FluxPort>("flux");
    const int n = std::max(1, static_cast<int>(q) / 5);
    euler::Array2 l(n, 1, 5), r(n, 1, 5), out(n, 1, 5);
    port->compute(l, r, euler::Dir::x, out);
  }
};

TEST(OnlineRefit, ExploresUnmeasuredCandidateThenDecides) {
  RefitRig rig;
  core::OnlineRefitter refit(rig.fw, *rig.mm, "g_proxy", "flux_real",
                             "g_proxy::compute()",
                             {{"flux", "FluxA", 1.0}, {"flux_alt", "FluxB", 1.0}},
                             /*accuracy_weight=*/0.0, /*min_samples=*/4);
  EXPECT_EQ(refit.active(), "flux");
  EXPECT_FALSE(rig.fw.has_instance("flux_alt"));

  for (int i = 0; i < 6; ++i) rig.call(40.0 + 5.0 * i);
  refit.on_boundary();
  // Candidate A has samples, B has none: the refitter swaps to explore B,
  // instantiating it lazily.
  EXPECT_EQ(refit.active(), "flux_alt");
  EXPECT_TRUE(rig.fw.has_instance("flux_alt"));
  EXPECT_EQ(refit.swaps(), 1u);
  ASSERT_FALSE(refit.events().empty());
  EXPECT_EQ(refit.events().back().kind, "explore");

  // Rows recorded during the explore interval are attributed to B; once
  // both fits are populated the optimizer decides, and every boundary
  // thereafter logs either "swap" or "hold".
  for (int i = 0; i < 6; ++i) rig.call(40.0 + 5.0 * i);
  refit.on_boundary();
  ASSERT_GE(refit.events().size(), 2u);
  const std::string kind = refit.events().back().kind;
  EXPECT_TRUE(kind == "swap" || kind == "hold") << kind;
  // The chosen implementation actually receives the calls.
  auto* active = dynamic_cast<FakeFlux*>(&rig.fw.component(refit.active()));
  ASSERT_NE(active, nullptr);
  const int before = active->calls;
  rig.call(50.0);
  EXPECT_EQ(active->calls, before + 1);
}

TEST(OnlineRefit, HoldsWithNoNewRows) {
  RefitRig rig;
  core::OnlineRefitter refit(rig.fw, *rig.mm, "g_proxy", "flux_real",
                             "g_proxy::compute()", {{"flux", "FluxA", 1.0}});
  refit.on_boundary();  // no record at all yet: must not crash or swap
  EXPECT_EQ(refit.swaps(), 0u);
  EXPECT_EQ(refit.active(), "flux");
}

// --- threaded rank (TSan-covered via check_tier1.sh filters) -----------------

struct PoolGuard {
  explicit PoolGuard(int lanes) { ccaperf::set_rank_pool_threads(lanes); }
  ~PoolGuard() { ccaperf::set_rank_pool_threads(1); }
};

TEST(ThreadedGovernor, SampledMonitoringUnderWorkerLanes) {
  PoolGuard pool(3);
  Rig rig;
  core::GovernorConfig cfg = test_config();
  core::OverheadGovernor gov(cfg);
  while (gov.settings().monitor_stride < 4) gov.observe(window_pct(50.0));
  rig.mm->attach_governor(&gov);
  const core::MethodHandle h = rig.mm->register_method("k::f()", {"Q"});
  const std::size_t n = 256;
  ccaperf::rank_pool().parallel_for(n, [&](std::size_t i, int) {
    const double params[1] = {static_cast<double>(i)};
    rig.mm->start(h, core::ParamSpan(params, 1));
    rig.mm->stop(h);
  });
  const core::Record* rec = rig.mm->record("k::f()");
  ASSERT_NE(rec, nullptr);
  // Lane-0 calls are sampled; worker-lane rows always record (their merge
  // path has no governor). Either way, seen >= recorded and the realized
  // fraction stays in (0, 1].
  EXPECT_GT(rec->count(), 0u);
  const double frac = rig.mm->realized_fraction("k::f()");
  EXPECT_GT(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

}  // namespace
