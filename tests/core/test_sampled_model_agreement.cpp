// Sampled-mode model agreement (DESIGN.md §11): a CacheAwareModel fitted
// from work counts gathered in sampled CacheSim mode must agree with one
// fitted from exact-mode counts to within a small relative error at every
// tabulated Q — the fitted-model-level guarantee that makes the cheap
// sampled counters usable for the Mastermind's cache-parameterized models.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cache_model.hpp"
#include "euler/kernels.hpp"
#include "hwc/cache_sim.hpp"
#include "hwc/probe.hpp"

namespace {

using amr::Box;
using amr::PatchData;
using core::Sample;
using core::WorkCounts;
using euler::Dir;
using euler::GasModel;
using euler::kNcomp;

PatchData<double> wavy_patch(const Box& interior, const GasModel& gas) {
  PatchData<double> p(interior, 2, kNcomp);
  const Box g = p.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j)
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const euler::Prim w{1.0 + 0.3 * std::sin(0.4 * i) * std::cos(0.3 * j),
                          0.2 * std::sin(0.2 * i + 0.1 * j),
                          -0.15 * std::cos(0.25 * j + 0.05 * i),
                          1.0 + 0.2 * std::cos(0.3 * i - 0.2 * j),
                          0.5 + 0.5 * std::sin(0.15 * i * j)};
      double U[kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) p(i, j, c) = U[c];
    }
  return p;
}

/// Work counts of one States invocation (X+Y sweeps) at `interior`,
/// either exact (stride 1) or sampled with scaled counters. Misses are
/// the L1 level's — the one the sampling gate is calibrated for.
WorkCounts count_work(const Box& interior, std::uint32_t stride) {
  GasModel gas;
  gas.gamma2 = 1.4;
  hwc::XeonHierarchy mem;
  if (stride > 1) mem.l1.set_sample_stride(stride, /*seed=*/0, /*burst_log2=*/11);
  hwc::CacheProbe probe(&mem.l1);
  const auto u = wavy_patch(interior, gas);
  for (Dir dir : {Dir::x, Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    euler::Array2 l(nx, ny, kNcomp), r(nx, ny, kNcomp);
    euler::compute_states(u, interior, dir, gas, l, r, probe);
  }
  WorkCounts w;
  w.q = static_cast<double>((interior.hi().i - interior.lo().i + 1) *
                            (interior.hi().j - interior.lo().j + 1));
  w.flops = static_cast<double>(probe.counts().flops);
  w.accesses = static_cast<double>(probe.counts().loads + probe.counts().stores);
  w.misses = static_cast<double>(mem.l1.scaled_counters().misses);
  return w;
}

std::vector<WorkCounts> work_table(std::uint32_t stride) {
  std::vector<WorkCounts> t;
  for (const Box& interior :
       {Box{0, 0, 95, 47}, Box{0, 0, 127, 63}, Box{0, 0, 191, 95},
        Box{0, 0, 255, 127}})
    t.push_back(count_work(interior, stride));
  return t;
}

TEST(SampledModelAgreement, HelperMeasuresPredictionGap) {
  std::vector<WorkCounts> table{{1000, 10'000, 4'000, 500},
                                {2000, 20'000, 8'000, 1'000}};
  core::CacheAwareModel ref(1.0, 0.0, 0.0, table);
  core::CacheAwareModel same(1.0, 0.0, 0.0, table);
  core::CacheAwareModel off(1.1, 0.0, 0.0, table);
  EXPECT_DOUBLE_EQ(core::max_relative_prediction_error(same, ref), 0.0);
  EXPECT_NEAR(core::max_relative_prediction_error(off, ref), 0.1, 1e-12);
}

TEST(SampledModelAgreement, SampledFitTracksExactFit) {
  // Same synthetic machine timings for both fits (generated from the
  // exact table with known coefficients — no timing noise, so the only
  // difference between the two models is the sampling error in the miss
  // column), stride 16 as the bench's sampled operating point.
  const auto exact_table = work_table(1);
  const auto sampled_table = work_table(16);

  // Flops/accesses come from the probe, which never samples.
  for (std::size_t i = 0; i < exact_table.size(); ++i) {
    EXPECT_DOUBLE_EQ(sampled_table[i].flops, exact_table[i].flops);
    EXPECT_DOUBLE_EQ(sampled_table[i].accesses, exact_table[i].accesses);
    ASSERT_GT(exact_table[i].misses, 0.0);
    // Miss column within the calibrated sampling tolerance.
    EXPECT_LE(std::abs(sampled_table[i].misses - exact_table[i].misses) /
                  exact_table[i].misses,
              0.10)
        << "row " << i << " q=" << exact_table[i].q;
  }

  std::vector<Sample> timings;
  for (const WorkCounts& w : exact_table) {
    const double t = 2e-3 * w.flops + 5e-4 * w.accesses + 1e-2 * w.misses;
    for (int rep = 0; rep < 3; ++rep) timings.push_back(Sample{w.q, t});
  }

  const auto exact_model = core::fit_cache_aware(timings, exact_table);
  const auto sampled_model = core::fit_cache_aware(timings, sampled_table);
  EXPECT_GT(exact_model->r2, 0.9999);

  // The fitted-model agreement gate: predictions within 5% everywhere on
  // the table (the sampling bias in one of three work columns dilutes
  // into an even smaller prediction gap).
  EXPECT_LE(core::max_relative_prediction_error(*sampled_model, *exact_model),
            0.05);
}

}  // namespace
