// Regression machinery: linear solver, exact coefficient recovery for
// every model family, noisy-data family selection, binning, and the
// paper's Eq. 1/2 functional forms.

#include <gtest/gtest.h>

#include <cmath>

#include "core/modeling.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using core::Sample;

TEST(LinearSolve, Solves3x3) {
  // x = (1, -2, 3) for a well-conditioned system.
  std::vector<double> a{4, 1, 0, 1, 3, -1, 0, -1, 2};
  std::vector<double> b{4 * 1 + 1 * -2, 1 - 6 - 3, 2 + 6};
  const auto x = core::solve_linear_system(a, b, 3);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(LinearSolve, PivotingHandlesZeroDiagonal) {
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{2, 3};
  const auto x = core::solve_linear_system(a, b, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinearSolve, SingularThrows) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{1, 2};
  EXPECT_THROW(core::solve_linear_system(a, b, 2), ccaperf::Error);
}

std::vector<Sample> sample_fn(double (*f)(double), double q0, double q1, int n) {
  std::vector<Sample> s;
  for (int k = 0; k < n; ++k) {
    const double q = q0 + (q1 - q0) * k / (n - 1);
    s.push_back(Sample{q, f(q)});
  }
  return s;
}

TEST(PolyFit, RecoversExactLine) {
  auto pts = sample_fn([](double q) { return -963.0 + 0.315 * q; }, 100, 150000, 40);
  auto model = core::fit_polynomial(pts, 1);
  const auto& c = model->coefficients();
  EXPECT_NEAR(c[0], -963.0, 1e-6);
  EXPECT_NEAR(c[1], 0.315, 1e-10);
  EXPECT_NEAR(model->r2, 1.0, 1e-12);
}

TEST(PolyFit, RecoversQuartic) {
  // The paper's sigma_EFM is quartic in Q with tiny high-order terms.
  auto f = [](double q) {
    return 66.7 - 0.015 * q + 9.24e-7 * q * q - 1.12e-11 * q * q * q +
           3.85e-17 * q * q * q * q;
  };
  std::vector<Sample> pts;
  for (int k = 1; k <= 60; ++k) pts.push_back(Sample{k * 2500.0, f(k * 2500.0)});
  auto model = core::fit_polynomial(pts, 4);
  EXPECT_NEAR(model->r2, 1.0, 1e-9);
  for (const Sample& s : pts)
    EXPECT_NEAR(model->predict(s.q), s.t, 1e-6 * std::abs(s.t) + 1e-9);
}

TEST(PowerLawFit, RecoversPaperStatesModel) {
  // T = exp(1.19 log(Q) - 3.68), the paper's Eq. 1 for States.
  auto pts = sample_fn(
      [](double q) { return std::exp(1.19 * std::log(q) - 3.68); }, 500, 150000, 50);
  auto model = core::fit_power_law(pts);
  EXPECT_NEAR(model->exponent(), 1.19, 1e-10);
  EXPECT_NEAR(model->log_coeff(), -3.68, 1e-9);
  EXPECT_NE(model->formula().find("log(Q)"), std::string::npos);
}

TEST(ExpFit, RecoversExponential) {
  auto pts = sample_fn([](double q) { return std::exp(0.5 + 2e-5 * q); }, 0, 100000, 30);
  auto model = core::fit_exponential(pts);
  for (const Sample& s : pts) EXPECT_NEAR(model->predict(s.q), s.t, 1e-9 * s.t);
}

TEST(FitBest, PicksLinearForLinearData) {
  ccaperf::Rng rng(3);
  std::vector<Sample> pts;
  for (int k = 1; k <= 50; ++k) {
    const double q = k * 3000.0;
    pts.push_back(Sample{q, -963.0 + 0.315 * q + rng.normal(0.0, 20.0)});
  }
  auto model = core::fit_best(pts, 2);
  EXPECT_GT(model->r2, 0.999);
  EXPECT_NEAR(model->predict(100000.0), -963.0 + 31500.0, 300.0);
}

TEST(FitBest, PicksPowerLawForPowerLawData) {
  ccaperf::Rng rng(4);
  std::vector<Sample> pts;
  for (int k = 1; k <= 60; ++k) {
    const double q = 200.0 * std::pow(1.12, k);
    const double t = std::exp(1.19 * std::log(q) - 3.68);
    pts.push_back(Sample{q, t * std::exp(rng.normal(0.0, 0.02))});
  }
  auto model = core::fit_best(pts, 2);
  EXPECT_EQ(model->family(), "power-law");
}

TEST(FitBest, RejectsTooFewPoints) {
  EXPECT_THROW(core::fit_best({{1, 1}, {2, 2}}, 2), ccaperf::Error);
}

TEST(Binning, GroupsByQ) {
  std::vector<Sample> pts{{10, 1.0}, {10, 3.0}, {20, 4.0}, {10, 2.0}};
  const auto bins = core::bin_by_q(pts);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].q, 10.0);
  EXPECT_DOUBLE_EQ(bins[0].mean, 2.0);
  EXPECT_EQ(bins[0].count, 3u);
  EXPECT_NEAR(bins[0].stddev, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(bins[1].q, 20.0);
}

TEST(MeanSigma, BuildsBothModels) {
  // Synthetic dual-mode data a la States: at each Q, samples alternate
  // between a fast and a slow mode; mean is linear, sigma grows with Q.
  ccaperf::Rng rng(5);
  std::vector<Sample> pts;
  for (int k = 1; k <= 30; ++k) {
    const double q = k * 5000.0;
    for (int rep = 0; rep < 10; ++rep) {
      const double mode = (rep % 2 == 0) ? 0.8 : 1.2;  // +-20% split
      pts.push_back(Sample{q, 0.01 * q * mode});
    }
  }
  const auto ms = core::build_mean_sigma_models(pts);
  ASSERT_NE(ms.mean, nullptr);
  ASSERT_NE(ms.sigma, nullptr);
  EXPECT_EQ(ms.bins.size(), 30u);
  EXPECT_NEAR(ms.mean->predict(100000.0), 1000.0, 20.0);
  // sigma = 0.2 * mean: grows linearly.
  EXPECT_GT(ms.sigma->predict(150000.0), ms.sigma->predict(10000.0));
}

TEST(Formulas, RenderPaperStyle) {
  core::PolynomialModel line({-963.0, 0.315});
  EXPECT_EQ(line.formula(), "-963 + 0.315 Q");
  core::PowerLawModel pl(1.19, -3.68);
  EXPECT_EQ(pl.formula(), "exp(1.19 log(Q) - 3.68)");
  core::ExponentialModel ex(1.29, 1e-5);
  EXPECT_NE(ex.formula().find("exp(1.29 + 1e-05 Q)"), std::string::npos);
}

}  // namespace
