// Cache-parameterized models (the paper's §6 future work): coefficient
// calibration from synthetic machines, interpolation, and retargeting to
// a different cache geometry.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cache_model.hpp"
#include "support/rng.hpp"

namespace {

using core::Sample;
using core::WorkCounts;

/// Synthetic kernel: flops linear in Q, accesses with a sub-linear extra
/// term (so the two columns are not collinear and both coefficients are
/// identifiable); misses depend on a "cache size" knee: below the knee one
/// miss per 8 accesses, above it one per access.
std::vector<WorkCounts> work_table(double knee_q) {
  std::vector<WorkCounts> t;
  for (double q = 1'000; q <= 200'000; q *= 1.4) {
    WorkCounts w;
    w.q = q;
    w.flops = 10.0 * q;
    w.accesses = 4.0 * q + 2'000.0 * std::sqrt(q);
    w.misses = q <= knee_q ? 0.5 * q : 4.0 * q;
    t.push_back(w);
  }
  return t;
}

std::vector<Sample> timings_from(const std::vector<WorkCounts>& table,
                                 double c_flop, double c_mem, double c_miss,
                                 double noise, std::uint64_t seed) {
  ccaperf::Rng rng(seed);
  std::vector<Sample> s;
  for (const WorkCounts& w : table) {
    const double t = c_flop * w.flops + c_mem * w.accesses + c_miss * w.misses;
    for (int rep = 0; rep < 3; ++rep)
      s.push_back(Sample{w.q, t * (1.0 + noise * rng.normal())});
  }
  return s;
}

TEST(CacheAwareModel, RecoversCoefficientsExactly) {
  const auto table = work_table(50'000);
  const auto timings = timings_from(table, 2e-3, 5e-4, 1e-2, 0.0, 1);
  const auto model = core::fit_cache_aware(timings, table);
  EXPECT_NEAR(model->c_flop(), 2e-3, 1e-4);
  EXPECT_NEAR(model->c_mem(), 5e-4, 1e-4);
  EXPECT_NEAR(model->c_miss(), 1e-2, 1e-4);
  EXPECT_GT(model->r2, 0.9999);
}

TEST(CacheAwareModel, PredictsWithNoise) {
  const auto table = work_table(50'000);
  const auto timings = timings_from(table, 2e-3, 5e-4, 1e-2, 0.03, 2);
  const auto model = core::fit_cache_aware(timings, table);
  EXPECT_GT(model->r2, 0.99);
  // Prediction at a tabulated point within a few percent of truth.
  const double q = 100'000;
  const double truth = 2e-3 * 10.0 * q +
                       5e-4 * (4.0 * q + 2'000.0 * std::sqrt(q)) + 1e-2 * 4.0 * q;
  EXPECT_NEAR(model->predict(q), truth, 0.1 * truth);
}

TEST(CacheAwareModel, InterpolatesBetweenTableRows) {
  std::vector<WorkCounts> table{{1000, 10'000, 4'000, 500},
                                {2000, 20'000, 8'000, 1'000}};
  core::CacheAwareModel m(1.0, 0.0, 0.0, table);
  EXPECT_DOUBLE_EQ(m.predict(1000), 10'000.0);
  EXPECT_DOUBLE_EQ(m.predict(1500), 15'000.0);
  // Clamped outside the table.
  EXPECT_DOUBLE_EQ(m.predict(10), 10'000.0);
  EXPECT_DOUBLE_EQ(m.predict(99'999), 20'000.0);
}

TEST(CacheAwareModel, RetargetingMovesTheKnee) {
  // Calibrate on a 50k-knee machine; retarget to a 12.5k-knee (half cache)
  // machine. The transferred model must predict the earlier blow-up
  // without any new timing measurements — the paper's §6 goal.
  const auto big_cache = work_table(50'000);
  const auto timings = timings_from(big_cache, 2e-3, 5e-4, 1e-2, 0.0, 3);
  const auto calibrated = core::fit_cache_aware(timings, big_cache);

  const auto small_cache = work_table(12'500);
  const auto transferred = core::retarget(*calibrated, small_cache);

  // At Q = 25k: big-cache machine is pre-knee, small-cache is post-knee.
  const double t_big = calibrated->predict(25'000);
  const double t_small = transferred->predict(25'000);
  EXPECT_GT(t_small, 1.5 * t_big);
  // At Q = 2k both are pre-knee: identical predictions.
  EXPECT_NEAR(calibrated->predict(2'000), transferred->predict(2'000),
              1e-6 * calibrated->predict(2'000));
  // Coefficients unchanged by retargeting.
  EXPECT_DOUBLE_EQ(calibrated->c_miss(), transferred->c_miss());
}

TEST(CacheAwareModel, FormulaNamesAllThreeTerms) {
  core::CacheAwareModel m(1.0, 2.0, 3.0, work_table(10'000));
  const std::string f = m.formula();
  EXPECT_NE(f.find("FLOPS(Q)"), std::string::npos);
  EXPECT_NE(f.find("ACC(Q)"), std::string::npos);
  EXPECT_NE(f.find("MISS(Q;cache)"), std::string::npos);
}

TEST(CacheAwareModel, RejectsDegenerateInput) {
  EXPECT_THROW(core::fit_cache_aware({{1, 1}, {2, 2}}, work_table(1000)),
               ccaperf::Error);
  EXPECT_THROW(core::fit_cache_aware({{1, 1}, {2, 2}, {3, 3}}, {}), ccaperf::Error);
}

}  // namespace
