// core::TraceMerger / Chrome-trace export: golden two-rank merge
// (deterministic down to the byte for hand-built inputs), flow matching
// by exact (src, dst, seq) identity, unmatched-endpoint and orphan-exit
// accounting under ring drops, epoch alignment, and the CCAPERF_TRACE
// environment switch.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "core/trace_export.hpp"

namespace {

using core::MergeStats;
using core::RankTrace;
using core::TraceMerger;
using tau::TraceKind;
using tau::TraceRecord;

TraceRecord enter(double t, std::uint32_t timer) {
  TraceRecord r;
  r.t_us = t;
  r.id = timer;
  r.kind = TraceKind::enter;
  return r;
}

TraceRecord exit_of(double t, std::uint32_t timer) {
  TraceRecord r;
  r.t_us = t;
  r.id = timer;
  r.kind = TraceKind::exit;
  return r;
}

TraceRecord message(double t, bool send, int peer, int tag, std::uint64_t bytes,
                    std::uint64_t seq) {
  TraceRecord r;
  r.t_us = t;
  r.kind = send ? TraceKind::msg_send : TraceKind::msg_recv;
  r.peer = peer;
  r.tag = tag;
  r.payload = bytes;
  r.seq = seq;
  return r;
}

/// The golden scenario: rank 0 computes inside "solve step A()" (with a Q
/// slice argument and a counter sample) and sends one message that rank 1
/// receives; rank 1's epoch starts 10 us later, exercising alignment.
RankTrace golden_rank0() {
  RankTrace t;
  t.rank = 0;
  t.epoch = tau::Clock::time_point{};
  t.timer_names = {"main()", "solve step A()"};
  t.counter_names = {"FP_OPS"};
  t.strings = {"Q"};
  t.events.push_back(enter(0.0, 0));
  TraceRecord arg = enter(10.0, 1);
  arg.tag = 0;  // strings[0] == "Q"
  arg.set_value(5.0);
  arg.flags |= TraceRecord::kHasArg;
  t.events.push_back(arg);
  TraceRecord c;
  c.t_us = 12.0;
  c.kind = TraceKind::counter;
  c.id = 0;
  c.set_value(42.0);
  t.events.push_back(c);
  t.events.push_back(message(15.0, /*send=*/true, 1, 3, 64, 1));
  t.events.push_back(exit_of(20.0, 1));
  t.events.push_back(exit_of(30.0, 0));
  t.total_events = t.events.size();
  return t;
}

RankTrace golden_rank1() {
  RankTrace t;
  t.rank = 1;
  t.epoch = tau::Clock::time_point{} + std::chrono::microseconds(10);
  t.timer_names = {"main()"};
  t.strings = {"regrid"};
  t.events.push_back(enter(0.0, 0));
  t.events.push_back(message(8.0, /*send=*/false, 0, 3, 64, 1));
  TraceRecord inst;
  inst.t_us = 12.0;
  inst.kind = TraceKind::instant;
  inst.id = 0;
  t.events.push_back(inst);
  t.events.push_back(exit_of(25.0, 0));
  t.total_events = t.events.size();
  return t;
}

constexpr const char* kGolden =
    "{\"traceEvents\":[\n"
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"name\":\"process_name\",\"args\":{\"name\":\"rank 0\"}},\n"
    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"name\":\"thread_name\",\"args\":{\"name\":\"rank 0\"}},\n"
    "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"name\":\"main()\"},\n"
    "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":10.000,\"name\":\"solve step A()\",\"args\":{\"Q\":5.000000}},\n"
    "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":12.000,\"name\":\"FP_OPS\",\"args\":{\"value\":42.000}},\n"
    "{\"ph\":\"s\",\"pid\":0,\"tid\":0,\"ts\":15.000,\"name\":\"msg\",\"cat\":\"msg\",\"id\":1,\"args\":{\"bytes\":64,\"tag\":3,\"seq\":1,\"dst\":1}},\n"
    "{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":20.000},\n"
    "{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":30.000},\n"
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"name\":\"process_name\",\"args\":{\"name\":\"rank 1\"}},\n"
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"ts\":0.000,\"name\":\"thread_name\",\"args\":{\"name\":\"rank 1\"}},\n"
    "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":10.000,\"name\":\"main()\"},\n"
    "{\"ph\":\"f\",\"pid\":1,\"tid\":1,\"ts\":18.000,\"name\":\"msg\",\"cat\":\"msg\",\"id\":1,\"bp\":\"e\"},\n"
    "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":22.000,\"name\":\"regrid\",\"s\":\"t\"},\n"
    "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":35.000}\n"
    "],\"displayTimeUnit\":\"ms\"}\n";

TEST(TraceExport, TwoRankMergeMatchesGolden) {
  TraceMerger merger;
  // Registration order must not matter: ranks are sorted on write.
  merger.add_rank(golden_rank1());
  merger.add_rank(golden_rank0());
  ASSERT_EQ(merger.num_ranks(), 2u);

  std::ostringstream os;
  const MergeStats st = merger.write_chrome_trace(os);
  EXPECT_EQ(os.str(), kGolden);

  EXPECT_EQ(st.ranks, 2u);
  EXPECT_EQ(st.events, 10u);
  EXPECT_EQ(st.slices, 3u);
  EXPECT_EQ(st.flows, 1u);
  EXPECT_TRUE(st.fully_matched());
  EXPECT_EQ(st.orphan_exits, 0u);
  EXPECT_EQ(st.dropped, 0u);
}

TEST(TraceExport, WriteIsRepeatableAndIdempotent) {
  TraceMerger merger;
  merger.add_rank(golden_rank0());
  merger.add_rank(golden_rank1());
  std::ostringstream a, b;
  merger.write_chrome_trace(a);
  merger.write_chrome_trace(b);  // const: must not consume state
  EXPECT_EQ(a.str(), b.str());
}

TEST(TraceExport, UnmatchedEndpointsAreCountedNotDrawn) {
  // A send whose recv was lost to the ring (and vice versa) must not
  // produce a dangling flow arrow.
  RankTrace r0;
  r0.rank = 0;
  r0.timer_names = {"t()"};
  r0.events = {enter(0.0, 0), message(1.0, true, 1, 0, 8, 1),
               message(2.0, true, 1, 0, 8, 2), exit_of(3.0, 0)};
  RankTrace r1;
  r1.rank = 1;
  r1.events = {message(2.5, false, 0, 0, 8, 2),   // matches seq 2 only
               message(4.0, false, 2, 0, 8, 1)};  // from rank 2: never sent
  TraceMerger merger;
  merger.add_rank(r0);
  merger.add_rank(r1);

  std::ostringstream os;
  const MergeStats st = merger.write_chrome_trace(os);
  EXPECT_EQ(st.flows, 1u);
  EXPECT_EQ(st.unmatched_sends, 1u);
  EXPECT_EQ(st.unmatched_recvs, 1u);
  EXPECT_FALSE(st.fully_matched());
  // Exactly one flow-start and one flow-finish in the JSON.
  const std::string json = os.str();
  std::size_t s_count = 0, f_count = 0, at = 0;
  while ((at = json.find("\"ph\":\"s\"", at)) != std::string::npos) ++s_count, ++at;
  at = 0;
  while ((at = json.find("\"ph\":\"f\"", at)) != std::string::npos) ++f_count, ++at;
  EXPECT_EQ(s_count, 1u);
  EXPECT_EQ(f_count, 1u);
}

TEST(TraceExport, OrphanExitsAreSkippedAndOutputStaysBalanced) {
  // A ring that wrapped retains a suffix whose leading exits lost their
  // enters; the exporter must drop those rather than corrupt nesting.
  RankTrace r;
  r.rank = 0;
  r.timer_names = {"a()", "b()"};
  r.events = {exit_of(1.0, 1), exit_of(2.0, 0),  // enters overwritten
              enter(3.0, 0), exit_of(4.0, 0)};
  r.total_events = 6;
  r.dropped_events = 2;
  TraceMerger merger;
  merger.add_rank(r);

  std::ostringstream os;
  const MergeStats st = merger.write_chrome_trace(os);
  EXPECT_EQ(st.orphan_exits, 2u);
  EXPECT_EQ(st.slices, 1u);
  EXPECT_EQ(st.dropped, 2u);
  const std::string json = os.str();
  std::size_t b_count = 0, e_count = 0, at = 0;
  while ((at = json.find("\"ph\":\"B\"", at)) != std::string::npos) ++b_count, ++at;
  at = 0;
  while ((at = json.find("\"ph\":\"E\"", at)) != std::string::npos) ++e_count, ++at;
  EXPECT_EQ(b_count, 1u);
  EXPECT_EQ(e_count, 1u);
}

TEST(TraceExport, UnbalancedInputGetsDefensivelyClosed) {
  RankTrace r;
  r.rank = 0;
  r.timer_names = {"a()"};
  r.events = {enter(1.0, 0), enter(2.0, 0)};  // raw list, never closed
  TraceMerger merger;
  merger.add_rank(r);
  std::ostringstream os;
  const MergeStats st = merger.write_chrome_trace(os);
  EXPECT_EQ(st.slices, 2u);  // both closed at the trace's last timestamp
  EXPECT_EQ(st.events, 4u);
}

TEST(TraceExport, CollectRankTraceLiftsRegistryState) {
  tau::Registry reg;
  reg.set_tracing(true);
  const tau::TimerId t = reg.timer("solve step A()");
  reg.start(t);
  reg.trace_message(true, 1, 5, 256, 1);
  reg.stop(t);

  const RankTrace tr = core::collect_rank_trace(reg, 7);
  EXPECT_EQ(tr.rank, 7);
  ASSERT_GT(tr.timer_names.size(), static_cast<std::size_t>(t));
  EXPECT_EQ(tr.timer_names[t], "solve step A()");
  EXPECT_EQ(tr.total_events, 3u);
  EXPECT_EQ(tr.dropped_events, 0u);
  ASSERT_EQ(tr.events.size(), 3u);
  EXPECT_TRUE(tr.events[0].is_enter());
  EXPECT_EQ(tr.events[1].kind, TraceKind::msg_send);
  EXPECT_TRUE(tr.events[2].is_exit());

  TraceMerger merger;
  merger.add_rank(tr);
  std::ostringstream os;
  const MergeStats st = merger.write_chrome_trace(os);
  EXPECT_EQ(st.slices, 1u);
  EXPECT_EQ(st.unmatched_sends, 1u);  // single-rank trace: no recv side
}

TEST(TraceExport, ThreadShardsBecomeTracksInsideTheRankProcess) {
  TraceMerger merger;
  RankTrace main_track;
  main_track.rank = 0;
  main_track.epoch = tau::Clock::time_point{};
  main_track.timer_names = {"step()"};
  main_track.events = {enter(0.0, 0), exit_of(10.0, 0)};
  merger.add_rank(main_track);

  RankTrace lane_track;
  lane_track.rank = 0;
  lane_track.thread = 2;
  lane_track.epoch = tau::Clock::time_point{};
  lane_track.timer_names = {"patch()"};
  lane_track.events = {enter(1.0, 0), exit_of(9.0, 0)};
  merger.add_rank(lane_track);

  std::ostringstream os;
  const MergeStats st = merger.write_chrome_trace(os);
  // The shard shares rank 0's process: it adds a track, not a rank.
  EXPECT_EQ(st.ranks, 1u);
  EXPECT_EQ(st.slices, 2u);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"rank 0 thread 2\""), std::string::npos);
  EXPECT_NE(out.find("\"pid\":0,\"tid\":1002"), std::string::npos);
  // The rank thread keeps its own tid (= rank), exactly as before.
  EXPECT_NE(out.find("\"pid\":0,\"tid\":0"), std::string::npos);
  // Only one process_name: shards don't re-announce the process.
  EXPECT_EQ(out.find("process_name"), out.rfind("process_name"));
}

TEST(TraceExport, CollectRankTraceRecordsTheLane) {
  tau::Registry reg;
  reg.set_tracing(true);
  const tau::TimerId id = reg.timer("w");
  reg.start(id);
  reg.stop(id);
  const RankTrace t = core::collect_rank_trace(reg, 3, 2);
  EXPECT_EQ(t.rank, 3);
  EXPECT_EQ(t.thread, 2);
  // Default argument keeps the rank-thread form.
  EXPECT_EQ(core::collect_rank_trace(reg, 3).thread, 0);
}

TEST(TraceExport, TraceEnvParsesTheSwitch) {
  ::unsetenv("CCAPERF_TRACE");
  ::unsetenv("CCAPERF_TRACE_EVENTS");
  EXPECT_FALSE(core::trace_env().enabled);

  ::setenv("CCAPERF_TRACE", "0", 1);
  EXPECT_FALSE(core::trace_env().enabled);
  ::setenv("CCAPERF_TRACE", "off", 1);
  EXPECT_FALSE(core::trace_env().enabled);

  ::setenv("CCAPERF_TRACE", "1", 1);
  core::TraceEnv env = core::trace_env();
  EXPECT_TRUE(env.enabled);
  EXPECT_EQ(env.path, "trace.json");
  EXPECT_EQ(env.capacity, tau::TraceBuffer::kDefaultCapacity);

  ::setenv("CCAPERF_TRACE", "out/run7.json", 1);
  ::setenv("CCAPERF_TRACE_EVENTS", "1024", 1);
  env = core::trace_env();
  EXPECT_TRUE(env.enabled);
  EXPECT_EQ(env.path, "out/run7.json");
  EXPECT_EQ(env.capacity, 1024u);

  ::unsetenv("CCAPERF_TRACE");
  ::unsetenv("CCAPERF_TRACE_EVENTS");
}

}  // namespace
