// pmm.TelemetryPort: Mastermind streams one JSONL line per interval of
// completed monitoring records, with incremental timer deltas, per-group
// time, counter deltas, ring-drop accounting and its own overhead
// (self_us). No background thread: emission piggybacks on the outermost
// monitored stop, so lines land at record boundaries.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/mastermind.hpp"
#include "core/tau_component.hpp"

namespace {

/// Framework with just TAU + Mastermind wired together.
struct Rig {
  cca::Framework fw;
  core::MastermindComponent* mm;
  core::TauMeasurementComponent* tau;

  Rig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.connect("mm", "measurement", "tau", "measurement");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class(
        "TauMeasurement", [] { return std::make_unique<core::TauMeasurementComponent>(); });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    return repo;
  }
};

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  for (std::string line; std::getline(is, line);) out.push_back(line);
  return out;
}

/// Extracts the integer value of `"key":<n>` from one JSONL line.
long field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  if (at == std::string::npos) return -1;
  return std::stol(line.substr(at + needle.size()));
}

TEST(Telemetry, EmitsOneLinePerIntervalPlusFinal) {
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 2);
  for (int i = 0; i < 5; ++i) {
    rig.mm->start("sc_proxy::compute()", {{"Q", double(i)}});
    rig.mm->stop("sc_proxy::compute()");
  }
  rig.mm->stop_telemetry();

  // Records 2 and 4 cross the interval; stop always flushes a final line.
  const std::vector<std::string> lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(rig.mm->telemetry_lines(), 3u);
  EXPECT_EQ(field(lines[0], "records"), 2);
  EXPECT_EQ(field(lines[1], "records"), 4);
  EXPECT_EQ(field(lines[2], "records"), 5);
}

TEST(Telemetry, LinesAreSelfContainedJsonObjects) {
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 1);
  rig.mm->start("flux_proxy::compute()", {});
  rig.mm->stop("flux_proxy::compute()");
  rig.mm->stop_telemetry();

  for (const std::string& line : lines_of(sink.str())) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // The contract fields every consumer relies on.
    for (const char* key :
         {"t_us", "records", "records_per_s", "timers_changed", "group_us",
          "group_delta_us", "counter_delta", "trace", "overhead_pct",
          "self_us"})
      EXPECT_NE(line.find("\"" + std::string(key) + "\":"), std::string::npos)
          << key << " missing in: " << line;
  }
}

TEST(Telemetry, DeltaQueryIsIncrementalAcrossLines) {
  // Each line reports only the timers that fired since the previous line:
  // the first sees the method's timer, an idle interval sees none.
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 1);
  rig.mm->start("sc_proxy::compute()", {});
  rig.mm->stop("sc_proxy::compute()");  // line 1
  rig.mm->emit_telemetry();             // line 2: nothing ran in between
  rig.mm->stop_telemetry();             // line 3

  const std::vector<std::string> lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_GE(field(lines[0], "timers_changed"), 1);
  EXPECT_EQ(field(lines[1], "timers_changed"), 0);
  EXPECT_EQ(field(lines[2], "timers_changed"), 0);
}

TEST(Telemetry, NestedWindowsEmitOnlyAtOutermostStop) {
  // A line mid-window would double-count the open activation; emission
  // must wait for the monitoring stack to unwind.
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 1);
  rig.mm->start("icc_proxy::advance()", {});
  rig.mm->start("sc_proxy::compute()", {});
  rig.mm->stop("sc_proxy::compute()");  // record #1, but depth is still 1
  EXPECT_EQ(rig.mm->telemetry_lines(), 0u);
  rig.mm->stop("icc_proxy::advance()");  // depth 0: both records flush
  EXPECT_EQ(rig.mm->telemetry_lines(), 1u);
  rig.mm->stop_telemetry();
}

TEST(Telemetry, SelfOverheadIsAccountedAndBounded) {
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 4);
  const auto wall0 = tau::Clock::now();
  for (int i = 0; i < 64; ++i) {
    rig.mm->start("sc_proxy::compute()", {});
    rig.mm->stop("sc_proxy::compute()");
  }
  rig.mm->stop_telemetry();
  const double wall_us =
      std::chrono::duration<double, std::micro>(tau::Clock::now() - wall0).count();

  EXPECT_GT(rig.mm->telemetry_self_us(), 0.0);
  // Telemetry instruments itself; its cost must stay inside the window it
  // measured (a loose sanity bound, not a perf assertion).
  EXPECT_LE(rig.mm->telemetry_self_us(), wall_us);
  // The last line carries the cumulative figure.
  const std::vector<std::string> lines = lines_of(sink.str());
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"self_us\":"), std::string::npos);
}

TEST(Telemetry, MonitoringKeepsWorkingAfterStop) {
  // Detaching the sink must restore the plain fast path (including
  // generation retirement) without losing records.
  Rig rig;
  std::ostringstream sink;
  rig.mm->start_telemetry(sink, 1);
  rig.mm->start("sc_proxy::compute()", {});
  rig.mm->stop("sc_proxy::compute()");
  rig.mm->stop_telemetry();

  rig.mm->start("sc_proxy::compute()", {});
  rig.mm->stop("sc_proxy::compute()");
  const core::Record* rec = rig.mm->record("sc_proxy::compute()");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count(), 2u);
  EXPECT_EQ(rig.mm->telemetry_lines(), 2u);  // no lines after detach
}

}  // namespace
