// core::TelemetryHub — the multi-tenant telemetry service (DESIGN.md §14):
// session isolation, interned identity, exact drop accounting, memory
// bounds, the HubProperty interleaved-equals-solo stream identity, and
// the end-to-end AMR/LU session drivers.

#include "core/telemetry_hub.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/session_workloads.hpp"
#include "support/error.hpp"

namespace {

using core::SessionHandle;
using core::SessionId;
using core::SessionLine;
using core::SessionStats;
using core::TelemetryHub;

/// Drains only when the test says so: the cadence is far beyond any test.
TelemetryHub::Config manual_config() {
  TelemetryHub::Config cfg;
  cfg.drain_interval = std::chrono::seconds(600);
  return cfg;
}

TEST(TelemetryHub, PublishDrainQueryRoundTrip) {
  TelemetryHub hub(manual_config());
  SessionHandle a = hub.open_session("alpha", "amr");
  SessionHandle b = hub.open_session("beta", "lu", "drop=0.1");
  a.publish("a line 1");
  b.publish("b line 1");
  a.publish("a line 2");
  hub.drain_now();

  EXPECT_EQ(hub.session_text(a.id()), "a line 1\na line 2\n");
  EXPECT_EQ(hub.session_text(b.id()), "b line 1\n");
  EXPECT_EQ(hub.session_fault_plan(b.id()), "drop=0.1");
  const SessionStats sa = hub.session_stats(a.id());
  EXPECT_EQ(sa.published, 2u);
  EXPECT_EQ(sa.drained, 2u);
  EXPECT_EQ(sa.retained, 2u);
  EXPECT_TRUE(sa.open);
  // Per-session FIFO: drain sequence numbers are monotone within a session.
  const std::vector<SessionLine> lines = hub.session_lines(a.id());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_LT(lines[0].seq, lines[1].seq);

  a.close();
  EXPECT_FALSE(hub.session_stats(hub.find_session("alpha")).open);
  // Retained lines stay queryable after close.
  EXPECT_EQ(hub.session_text(hub.find_session("alpha")), "a line 1\na line 2\n");
}

TEST(TelemetryHub, InternedIdsSurviveReopen) {
  TelemetryHub hub(manual_config());
  SessionId first_id;
  {
    SessionHandle h = hub.open_session("recurring", "amr");
    first_id = h.id();
    h.publish("old life");
    h.close();
  }
  // Same name, same dense id, fresh stream.
  SessionHandle again = hub.open_session("recurring", "amr");
  EXPECT_EQ(again.id(), first_id);
  EXPECT_EQ(hub.session_text(first_id), "");
  again.publish("new life");
  hub.drain_now();
  EXPECT_EQ(hub.session_text(first_id), "new life\n");
  const SessionStats st = hub.session_stats(first_id);
  EXPECT_EQ(st.published, 1u);  // old life's counters released
  EXPECT_TRUE(st.open);
}

TEST(TelemetryHub, ReopeningAnOpenNameThrows) {
  TelemetryHub hub(manual_config());
  SessionHandle h = hub.open_session("solo", "amr");
  EXPECT_THROW(hub.open_session("solo", "amr"), ccaperf::Error);
}

TEST(TelemetryHub, SinkSplitsLinesAndFlushesTailOnClose) {
  TelemetryHub hub(manual_config());
  SessionHandle h = hub.open_session("sinky", "amr");
  h.sink() << "one\ntwo\n";
  h.sink() << "tail without newline";
  const SessionId id = h.id();
  h.close();  // destroys the sink: the tail publishes as its own line
  EXPECT_EQ(hub.session_text(id), "one\ntwo\ntail without newline\n");
}

TEST(TelemetryHub, RingDropAccountingIsExact) {
  TelemetryHub::Config cfg = manual_config();
  cfg.shards = 1;
  cfg.shard_capacity = 8;
  TelemetryHub hub(cfg);
  SessionHandle h = hub.open_session("flood", "flood");
  {
    // Hold drains off so the burst deterministically fills the ring —
    // the high-water nudge would otherwise race a drain into the middle
    // of the loop and accept more than one ring's worth.
    const auto pause = hub.pause_draining();
    for (int i = 0; i < 100; ++i) h.publish("x");
  }
  hub.drain_now();
  SessionStats st = hub.session_stats(h.id());
  // Single-threaded, no drain in between: exactly the ring capacity was
  // accepted, everything else rejected and counted.
  EXPECT_EQ(st.published, 8u);
  EXPECT_EQ(st.dropped_ring, 92u);
  EXPECT_EQ(st.drained, 8u);
  // The ring is empty again: the next burst is accepted.
  for (int i = 0; i < 4; ++i) h.publish("y");
  hub.drain_now();
  st = hub.session_stats(h.id());
  EXPECT_EQ(st.published, 12u);
  EXPECT_EQ(st.drained, 12u);
  const core::HubStats hs = hub.stats();
  EXPECT_EQ(hs.published, 12u);
  EXPECT_EQ(hs.dropped_ring, 92u);
  EXPECT_EQ(hs.drained, 12u);
}

TEST(TelemetryHub, SessionLineCapEvictsOwnOldest) {
  TelemetryHub::Config cfg = manual_config();
  cfg.session_line_cap = 4;
  TelemetryHub hub(cfg);
  SessionHandle h = hub.open_session("capped", "flood");
  for (int i = 0; i < 10; ++i) h.publish("line " + std::to_string(i));
  hub.drain_now();
  const SessionStats st = hub.session_stats(h.id());
  EXPECT_EQ(st.retained, 4u);
  EXPECT_EQ(st.dropped_evicted, 6u);
  EXPECT_EQ(hub.session_text(h.id()), "line 6\nline 7\nline 8\nline 9\n");
}

TEST(TelemetryHub, ByteBudgetEvictsGloballyOldestFirst) {
  TelemetryHub::Config cfg = manual_config();
  const std::string line(100, 'x');  // 100 bytes retained per line
  cfg.memory_budget_bytes = 450;     // 4 lines fit, a 5th forces eviction
  TelemetryHub hub(cfg);
  SessionHandle old_s = hub.open_session("older", "flood");
  SessionHandle new_s = hub.open_session("newer", "flood");
  old_s.publish(line);
  old_s.publish(line);
  hub.drain_now();
  new_s.publish(line);
  new_s.publish(line);
  new_s.publish(line);
  hub.drain_now();
  // 5 x 100 bytes against a 450-byte budget: exactly one eviction, and it
  // must hit the globally oldest line — "older"'s first — not the chatty
  // newcomer's.
  EXPECT_EQ(hub.session_stats(old_s.id()).dropped_evicted, 1u);
  EXPECT_EQ(hub.session_stats(new_s.id()).dropped_evicted, 0u);
  const core::HubStats hs = hub.stats();
  EXPECT_LE(hs.bytes_retained, cfg.memory_budget_bytes);
  EXPECT_LE(hs.bytes_peak, cfg.memory_budget_bytes);
}

// The HubProperty suite: interleaved publishes from K concurrent sessions
// produce per-session streams byte-identical to each session running
// alone, with exact counter deltas and zero drops in a no-drop config.
TEST(HubProperty, InterleavedStreamsEqualSolo) {
  constexpr int kSessions = 6;
  constexpr int kLines = 400;
  const auto line_for = [](int s, int i) {
    return "session " + std::to_string(s) + " line " + std::to_string(i) +
           " payload " + std::string(static_cast<std::size_t>(i % 17), '#');
  };
  // Solo references: each session alone in its own hub.
  std::vector<std::string> solo_text(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    TelemetryHub hub;  // default config: drainer live, no-drop capacity
    SessionHandle h = hub.open_session("p" + std::to_string(s), "prop");
    for (int i = 0; i < kLines; ++i) h.publish(line_for(s, i));
    h.close();
    solo_text[static_cast<std::size_t>(s)] =
        hub.session_text(hub.find_session("p" + std::to_string(s)));
  }
  // Interleaved: all sessions publish concurrently into one hub while the
  // drainer races them.
  TelemetryHub hub;
  std::vector<SessionHandle> handles;
  for (int s = 0; s < kSessions; ++s)
    handles.push_back(hub.open_session("p" + std::to_string(s), "prop"));
  {
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s)
      threads.emplace_back([&, s] {
        for (int i = 0; i < kLines; ++i)
          handles[static_cast<std::size_t>(s)].publish(line_for(s, i));
        handles[static_cast<std::size_t>(s)].close();
      });
    for (std::thread& t : threads) t.join();
  }
  for (int s = 0; s < kSessions; ++s) {
    const SessionId id = hub.find_session("p" + std::to_string(s));
    ASSERT_NE(id, core::kInvalidSession);
    EXPECT_EQ(hub.session_text(id), solo_text[static_cast<std::size_t>(s)])
        << "session " << s;
    const SessionStats st = hub.session_stats(id);
    EXPECT_EQ(st.published, static_cast<std::uint64_t>(kLines));
    EXPECT_EQ(st.drained, static_cast<std::uint64_t>(kLines));
    EXPECT_EQ(st.dropped_ring, 0u);
    EXPECT_EQ(st.dropped_evicted, 0u);
  }
  const core::HubStats hs = hub.stats();
  EXPECT_EQ(hs.published, static_cast<std::uint64_t>(kSessions * kLines));
  EXPECT_EQ(hs.drained, hs.published);
}

TEST(TelemetryHub, AggregateLineCarriesRatesAndScenarios) {
  TelemetryHub hub(manual_config());
  SessionHandle a = hub.open_session("agg-a", "amr");
  SessionHandle l = hub.open_session("agg-l", "lu");
  a.publish("{\"t_us\":1,\"overhead_pct\":2.500}");
  a.publish("{\"t_us\":2,\"overhead_pct\":3.500}");
  l.publish("{\"t_us\":1,\"overhead_pct\":1.000}");
  hub.drain_now();
  std::ostringstream os;
  hub.emit_aggregate(os);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"sessions_open\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"drained\":3"), std::string::npos) << line;
  // Scenario breakdown scraped from the sessions' own overhead_pct fields.
  EXPECT_NE(line.find("\"amr\":{\"sessions\":1,\"overhead_lines\":2,"
                      "\"overhead_pct_mean\":3.000}"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"lu\":{\"sessions\":1,\"overhead_lines\":1,"
                      "\"overhead_pct_mean\":1.000}"),
            std::string::npos)
      << line;
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(hub.stats().aggregate_lines, 1u);
}

TEST(HubSession, AmrSessionEndToEnd) {
  TelemetryHub hub;
  core::SessionScenario sc;  // amr 24x12, 2 ranks, 1 lane
  sc.steps = 1;
  sc.trace = true;
  SessionHandle h = hub.open_session("amr-e2e", sc.kind, sc.fault_plan);
  const core::SessionResult r1 = core::run_session(h, sc);
  h.close();
  EXPECT_NE(r1.physics_digest, 0u);
  EXPECT_GT(r1.telemetry_lines, 0u);

  const SessionId id = hub.find_session("amr-e2e");
  const SessionStats st = hub.session_stats(id);
  EXPECT_EQ(st.published, r1.telemetry_lines);
  EXPECT_EQ(st.drained, st.published);
  // Every retained line is marked with this session's name — the leakage
  // invariant the soak gates on.
  for (const SessionLine& line : hub.session_lines(id))
    EXPECT_NE(line.text.find("\"session\":\"amr-e2e\""), std::string::npos);
  // Per-session Perfetto export from the registered rank traces.
  std::ostringstream trace;
  const core::MergeStats ms = hub.export_session_trace(id, trace);
  EXPECT_EQ(ms.ranks, 2u);
  EXPECT_GT(ms.events, 0u);

  // Determinism: a rerun under a different session name reproduces the
  // digest exactly (the soak compares concurrent runs to solo ones).
  SessionHandle h2 = hub.open_session("amr-e2e-2", sc.kind, sc.fault_plan);
  core::SessionScenario sc2 = sc;
  sc2.trace = false;
  const core::SessionResult r2 = core::run_session(h2, sc2);
  h2.close();
  EXPECT_EQ(r2.physics_digest, r1.physics_digest);
}

TEST(HubSession, LuSessionEndToEnd) {
  TelemetryHub hub;
  core::SessionScenario sc;
  sc.kind = "lu";
  sc.lu_n = 64;
  sc.lu_block = 16;
  sc.lu_reps = 2;
  SessionHandle h = hub.open_session("lu-e2e", sc.kind);
  const core::SessionResult r1 = core::run_session(h, sc);
  h.close();
  EXPECT_NE(r1.physics_digest, 0u);
  const SessionStats st = hub.session_stats(hub.find_session("lu-e2e"));
  EXPECT_EQ(st.published, r1.telemetry_lines);
  EXPECT_EQ(st.drained, st.published);

  SessionHandle h2 = hub.open_session("lu-e2e-2", sc.kind);
  const core::SessionResult r2 = core::run_session(h2, sc);
  h2.close();
  EXPECT_EQ(r2.physics_digest, r1.physics_digest);
}

}  // namespace
