// Property tests for the batched tracing fast path: CacheSim::access_run
// must be *bit-identical* — in every counter at every hierarchy level, and
// in all subsequent behaviour — to calling the scalar `access` once per
// element, for arbitrary strides, element sizes and cache geometries. The
// preserved pre-fastpath path `access_prebatch` (the ablation baseline) is
// held to the same property.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hwc/cache_sim.hpp"
#include "support/rng.hpp"

namespace {

using hwc::CacheCounters;
using hwc::CacheSim;

void expect_equal_counters(const CacheCounters& a, const CacheCounters& b,
                           const char* what) {
  EXPECT_EQ(a.accesses, b.accesses) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.evictions, b.evictions) << what;
  EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

/// Three two-level hierarchies with identical geometry: one driven by
/// access_run, one by the equivalent scalar loop, one by the preserved
/// pre-fastpath `access_prebatch` loop.
struct Pair {
  Pair(std::size_t l1_bytes, std::size_t line, std::size_t l1_ways,
       std::size_t l2_bytes, std::size_t l2_ways)
      : batched_l1(l1_bytes, line, l1_ways), batched_l2(l2_bytes, line, l2_ways),
        scalar_l1(l1_bytes, line, l1_ways), scalar_l2(l2_bytes, line, l2_ways),
        prebatch_l1(l1_bytes, line, l1_ways), prebatch_l2(l2_bytes, line, l2_ways) {
    batched_l1.set_lower(&batched_l2);
    scalar_l1.set_lower(&scalar_l2);
    prebatch_l1.set_lower(&prebatch_l2);
  }

  void run(std::uintptr_t addr, std::ptrdiff_t stride, std::size_t count,
           std::size_t elem, bool is_write) {
    const std::uint64_t m_batched =
        batched_l1.access_run(addr, stride, count, elem, is_write);
    std::uint64_t m_scalar = 0;
    std::uint64_t m_prebatch = 0;
    for (std::size_t k = 0; k < count; ++k) {
      const auto a = addr + static_cast<std::uintptr_t>(
                                static_cast<std::ptrdiff_t>(k) * stride);
      m_scalar += scalar_l1.access(a, elem, is_write);
      m_prebatch += prebatch_l1.access_prebatch(a, elem, is_write);
    }
    EXPECT_EQ(m_batched, m_scalar) << "returned miss count diverged";
    EXPECT_EQ(m_batched, m_prebatch) << "prebatch miss count diverged";
  }

  void check(const char* what) {
    expect_equal_counters(batched_l1.counters(), scalar_l1.counters(), what);
    expect_equal_counters(batched_l2.counters(), scalar_l2.counters(), what);
    expect_equal_counters(batched_l1.counters(), prebatch_l1.counters(), what);
    expect_equal_counters(batched_l2.counters(), prebatch_l2.counters(), what);
  }

  CacheSim batched_l1, batched_l2;
  CacheSim scalar_l1, scalar_l2;
  CacheSim prebatch_l1, prebatch_l2;
};

TEST(AccessRun, SequentialSweepMatchesScalar) {
  Pair p(8 * 1024, 64, 4, 512 * 1024, 8);
  p.run(0x10000, sizeof(double), 100000, sizeof(double), false);
  p.run(0x10000, sizeof(double), 100000, sizeof(double), true);
  p.check("sequential sweep");
}

TEST(AccessRun, StridedSweepMatchesScalar) {
  Pair p(8 * 1024, 64, 4, 512 * 1024, 8);
  // Row-stride access: every element a new line (the paper's Y-sweep mode).
  p.run(0x10000, 600 * 8, 5000, sizeof(double), false);
  p.run(0x10008, 600 * 8, 5000, sizeof(double), true);
  p.check("strided sweep");
}

TEST(AccessRun, ZeroAndNegativeStrides) {
  Pair p(4 * 1024, 32, 2, 64 * 1024, 4);
  p.run(0x5000, 0, 1000, 4, false);       // hammer one element
  p.run(0x9000, -8, 2000, 8, true);       // backwards sweep
  p.run(0x5001, -24, 500, 16, false);     // misaligned, straddling, backwards
  p.check("zero/negative strides");
}

TEST(AccessRun, StraddlingElementsMatchScalar) {
  Pair p(4 * 1024, 64, 4, 64 * 1024, 8);
  // elem > line: every element touches several lines.
  p.run(0x7003, 96, 3000, 160, true);
  // misaligned doubles crossing line boundaries at irregular points.
  p.run(0x703d, 8, 5000, 8, false);
  p.check("straddling elements");
}

TEST(AccessRun, FlushPreservesEquivalence) {
  Pair p(8 * 1024, 64, 4, 128 * 1024, 8);
  p.run(0x10000, 8, 20000, 8, true);
  p.batched_l1.flush();
  p.scalar_l1.flush();
  p.prebatch_l1.flush();
  // Post-flush behaviour must match: same misses, evictions, writebacks.
  p.run(0x10000, 8, 20000, 8, false);
  p.run(0x10000, 640, 2000, 8, true);
  p.check("after flush");
}

TEST(AccessRun, RandomizedScheduleMatchesScalar) {
  // Random geometries and a random mixed schedule of runs, scalar accesses
  // and flushes: the strongest form of the equivalence property.
  ccaperf::Rng rng(20260805);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t line = std::size_t{16} << rng.uniform_int(0, 2);   // 16..64
    const std::size_t ways = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const std::size_t sets = std::size_t{1} << rng.uniform_int(2, 5);    // 4..32
    const std::size_t l1 = line * ways * sets;
    Pair p(l1, line, ways, l1 * 16, ways * 2);
    for (int op = 0; op < 200; ++op) {
      const auto addr = static_cast<std::uintptr_t>(
          0x1000 + rng.uniform_int(0, 1 << 16));
      const auto stride = static_cast<std::ptrdiff_t>(rng.uniform_int(-128, 128));
      const auto count = static_cast<std::size_t>(rng.uniform_int(0, 400));
      const auto elem = static_cast<std::size_t>(rng.uniform_int(1, 32));
      const bool is_write = rng.uniform_int(0, 1) == 1;
      p.run(addr, stride, count, elem, is_write);
      if (rng.uniform_int(0, 9) == 0) {
        p.batched_l1.flush();
        p.scalar_l1.flush();
        p.prebatch_l1.flush();
      }
      if (rng.uniform_int(0, 9) == 0) {
        p.batched_l2.flush();
        p.scalar_l2.flush();
        p.prebatch_l2.flush();
      }
    }
    p.check("randomized schedule");
  }
}

TEST(AccessRun, EmptyAndDegenerateRuns) {
  Pair p(4 * 1024, 64, 2, 64 * 1024, 4);
  p.run(0x4000, 8, 0, 8, false);   // count == 0
  p.run(0x4000, 8, 10, 0, true);   // elem_bytes == 0: no accesses at all
  p.run(0x4000, 8, 1, 8, true);    // single element
  p.check("degenerate runs");
  EXPECT_EQ(p.batched_l1.counters().accesses, 1u);
}

}  // namespace
