// Sampled CacheSim mode (DESIGN.md §11): batch-level sampling of
// access_run with counter rescaling, plus the StackDistSim reuse-distance
// profiler. Exact mode (stride 1) must be bit-identical to a simulator
// that never heard of sampling; sampled counters must land within a
// stride-dependent tolerance of exact; StackDistSim must agree EXACTLY
// with a fully-associative LRU CacheSim at every capacity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "hwc/cache_sim.hpp"

namespace {

using hwc::CacheCounters;
using hwc::CacheSim;
using hwc::StackDistSim;

/// Sweep-shaped workload: `reps` passes over `rows` rows of `count`
/// stride-`stride_bytes` elements, one access_run batch per row — the same
/// batch granularity the euler kernels emit.
void run_workload(CacheSim& sim, std::uintptr_t base, int rows, int reps,
                  std::size_t count, std::ptrdiff_t stride_bytes) {
  for (int r = 0; r < reps; ++r)
    for (int j = 0; j < rows; ++j)
      sim.access_run(base + static_cast<std::uintptr_t>(j) * 8192, stride_bytes,
                     count, 8, (j + r) % 3 == 0);
}

TEST(CacheSampling, ExactModeIsBitIdenticalToUnsampled) {
  hwc::XeonHierarchy plain, exact;
  exact.l1.set_sample_stride(1);
  run_workload(plain.l1, 1 << 20, 48, 3, 256, 8);
  run_workload(exact.l1, 1 << 20, 48, 3, 256, 8);
  for (auto get : {&CacheCounters::accesses, &CacheCounters::hits,
                   &CacheCounters::misses, &CacheCounters::evictions,
                   &CacheCounters::writebacks}) {
    EXPECT_EQ(plain.l1.counters().*get, exact.l1.counters().*get);
    EXPECT_EQ(plain.l2.counters().*get, exact.l2.counters().*get);
    // At stride 1 the scaled view is the raw view.
    EXPECT_EQ(exact.l1.counters().*get, exact.l1.scaled_counters().*get);
  }
}

TEST(CacheSampling, ScaledCountersTrackExactAcrossStrides) {
  // 64-batch windows over a 16384-batch homogeneous stream: 256 windows,
  // so every stride gets several sampled windows.
  constexpr unsigned kBurstLog2 = 6;
  hwc::XeonHierarchy exact;
  run_workload(exact.l1, 1 << 20, 64, 256, 256, 8);
  const auto ref = exact.l1.counters();
  ASSERT_GT(ref.misses, 0u);

  for (std::uint32_t stride : {4u, 16u, 64u}) {
    hwc::XeonHierarchy mem;
    mem.l1.set_sample_stride(stride, /*seed=*/stride, kBurstLog2);
    run_workload(mem.l1, 1 << 20, 64, 256, 256, 8);
    const auto s = mem.l1.scaled_counters();
    // Uniform batches + realized-fraction rescale: access volume is exact
    // up to rounding.
    const double acc_err =
        std::abs(static_cast<double>(s.accesses) -
                 static_cast<double>(ref.accesses)) /
        static_cast<double>(ref.accesses);
    const double miss_err = std::abs(static_cast<double>(s.misses) -
                                     static_cast<double>(ref.misses)) /
                            static_cast<double>(ref.misses);
    EXPECT_LE(acc_err, 0.001) << "stride " << stride;
    EXPECT_LE(miss_err, 0.10) << "stride " << stride;
    // The L2 sees only sampled traffic; its scaled view carries the
    // gating L1's realized factor.
    const double f = mem.l1.sample_factor();
    EXPECT_GE(f, 1.0);
    EXPECT_EQ(mem.l2.scaled_counters().accesses,
              static_cast<std::uint64_t>(
                  static_cast<double>(mem.l2.counters().accesses) * f + 0.5));
  }
}

TEST(CacheSampling, SeedShiftsPhaseDeterministically) {
  auto counters_for_seed = [](std::uint64_t seed) {
    hwc::XeonHierarchy mem;
    mem.l1.set_sample_stride(16, seed, /*burst_log2=*/6);
    run_workload(mem.l1, 1 << 20, 64, 256, 256, 8);
    return mem.l1.counters();
  };
  const auto a1 = counters_for_seed(3), a2 = counters_for_seed(3);
  EXPECT_EQ(a1.accesses, a2.accesses);
  EXPECT_EQ(a1.misses, a2.misses);
  // A different phase samples the same volume of a uniform-batch stream.
  const auto b = counters_for_seed(7);
  EXPECT_EQ(a1.accesses, b.accesses);
}

TEST(CacheSampling, EnvStrideParses) {
  ASSERT_EQ(setenv("CCAPERF_CACHESIM_SAMPLE", "16", 1), 0);
  EXPECT_EQ(hwc::env_sample_stride(), 16u);
  ASSERT_EQ(setenv("CCAPERF_CACHESIM_SAMPLE", "", 1), 0);
  EXPECT_EQ(hwc::env_sample_stride(), 1u);
  ASSERT_EQ(unsetenv("CCAPERF_CACHESIM_SAMPLE"), 0);
  EXPECT_EQ(hwc::env_sample_stride(), 1u);
}

TEST(CacheSampling, GovernorStrideFloorsEnvStride) {
  ASSERT_EQ(unsetenv("CCAPERF_CACHESIM_SAMPLE"), 0);
  hwc::set_governor_sample_stride(8);
  EXPECT_EQ(hwc::env_sample_stride(), 8u);
  // The floor composes with the env knob: the coarser of the two wins.
  ASSERT_EQ(setenv("CCAPERF_CACHESIM_SAMPLE", "16", 1), 0);
  EXPECT_EQ(hwc::env_sample_stride(), 16u);
  hwc::set_governor_sample_stride(64);
  EXPECT_EQ(hwc::env_sample_stride(), 64u);
  hwc::set_governor_sample_stride(1);
  EXPECT_EQ(hwc::env_sample_stride(), 16u);
  ASSERT_EQ(unsetenv("CCAPERF_CACHESIM_SAMPLE"), 0);
}

TEST(CacheSampling, AdjustStrideKeepsRealizedFraction) {
  // Mid-run re-striding (the governor's cache-sim actuator): cumulative
  // sampled/seen tallies survive the switch, so sample_factor() stays the
  // realized fraction of the whole run rather than the current stride.
  constexpr unsigned kBurstLog2 = 6;
  hwc::XeonHierarchy mem;
  mem.l1.set_sample_stride(1, /*seed=*/3, kBurstLog2);
  run_workload(mem.l1, 1 << 20, 64, 64, 256, 8);
  EXPECT_DOUBLE_EQ(mem.l1.sample_factor(), 1.0);  // exact phase: all seen

  mem.l1.adjust_sample_stride(16);
  run_workload(mem.l1, 1 << 20, 64, 64, 256, 8);
  const double f = mem.l1.sample_factor();
  // Half the batches ran exact, half at 1-in-16: the aggregate scale-up
  // factor lands strictly between the two regimes (1 and 16).
  EXPECT_GT(f, 1.0);
  EXPECT_LT(f, 16.0);
  EXPECT_GE(mem.l1.scaled_counters().accesses, mem.l1.counters().accesses);

  // Relaxing back to exact keeps history too: the factor decays toward 1
  // as exact batches accumulate but never forgets the sampled stretch.
  mem.l1.adjust_sample_stride(1);
  run_workload(mem.l1, 1 << 20, 64, 64, 256, 8);
  EXPECT_LT(mem.l1.sample_factor(), f);
  EXPECT_GT(mem.l1.sample_factor(), 1.0);
}

TEST(CacheSampling, AdjustStrideMatchesSetStrideForFreshSim) {
  // On a fresh simulator adjust_sample_stride(N) after set_sample_stride(N)
  // priming must sample the same batches as configuring N directly: the
  // verdict schedule is a pure function of (stride, seed, batch ordinal).
  constexpr unsigned kBurstLog2 = 4;
  hwc::XeonHierarchy direct, adjusted;
  direct.l1.set_sample_stride(8, /*seed=*/5, kBurstLog2);
  adjusted.l1.set_sample_stride(8, /*seed=*/5, kBurstLog2);
  adjusted.l1.adjust_sample_stride(8);  // no-op re-statement of the stride
  run_workload(direct.l1, 1 << 20, 32, 16, 256, 8);
  run_workload(adjusted.l1, 1 << 20, 32, 16, 256, 8);
  EXPECT_EQ(direct.l1.counters().accesses, adjusted.l1.counters().accesses);
  EXPECT_EQ(direct.l1.counters().misses, adjusted.l1.counters().misses);
  EXPECT_DOUBLE_EQ(direct.l1.sample_factor(), adjusted.l1.sample_factor());
}

TEST(StackDist, MatchesFullyAssociativeLruExactly) {
  // A fully-associative LRU cache of C lines misses exactly the touches
  // with reuse distance >= C (plus colds) — so for EVERY capacity, the
  // histogram estimate must equal a real one-set CacheSim bit for bit.
  constexpr std::size_t kLine = 64;
  std::vector<std::uintptr_t> addrs;
  std::uint64_t x = 88172645463325252ull;  // xorshift: deterministic pattern
  for (int k = 0; k < 20000; ++k) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    addrs.push_back((x % 397) * kLine + (1 << 22));
  }

  StackDistSim sd(kLine);
  for (auto a : addrs) sd.access(a, 8);

  for (std::size_t lines : {16u, 64u, 128u, 512u}) {
    CacheSim lru(lines * kLine, kLine, lines);  // one set, LRU across it
    std::uint64_t misses = 0;
    for (auto a : addrs) misses += lru.access(a, 8, false);
    EXPECT_EQ(sd.estimate_misses(lines), misses) << lines << " lines";
  }
  EXPECT_EQ(sd.accesses(), addrs.size());
}

TEST(StackDist, HandPatternDistances) {
  StackDistSim sd(64);
  const std::uintptr_t A = 0, B = 64, C = 128;
  for (auto a : {A, B, C, A, C, C, B}) sd.access(a, 8);
  // A,B,C cold; A at depth 2; C at depth 1; C at depth 0; B at depth 2.
  EXPECT_EQ(sd.cold_misses(), 3u);
  EXPECT_EQ(sd.histogram()[0], 1u);
  EXPECT_EQ(sd.histogram()[1], 1u);
  EXPECT_EQ(sd.histogram()[2], 2u);
  // Capacity 2 lines: depth >= 2 misses too.
  EXPECT_EQ(sd.estimate_misses(2), 3u + 2u);
  sd.reset();
  EXPECT_EQ(sd.accesses(), 0u);
  EXPECT_EQ(sd.estimate_misses(2), 0u);
}

TEST(StackDist, RunApiCoversStridedRuns) {
  StackDistSim sd(64);
  sd.access_run(0, 64, 32, 8);  // 32 elements, one per line: all cold
  EXPECT_EQ(sd.cold_misses(), 32u);
  sd.access_run(0, 8, 8, 8);  // 8 elements on one line: 1 deep + 7 MRU hits
  EXPECT_EQ(sd.histogram()[0], 7u);
}

}  // namespace
