// perf_events backend (DESIGN.md §11): CCAPERF_HWC selects the counter
// substrate at runtime; "perf" must either genuinely read the PMU (counts
// monotone, PAPI names registered) or degrade to the simulator with an
// explanation — never crash, never half-install. These tests pass on
// machines with and without perf_event_open access, because container
// sandboxes routinely wall the syscall off.

#include <gtest/gtest.h>

#include <cstdlib>

#include "hwc/perf_events.hpp"
#include "support/error.hpp"

namespace {

struct HwcEnvGuard {
  ~HwcEnvGuard() { unsetenv("CCAPERF_HWC"); }
  void set(const char* v) { ASSERT_EQ(setenv("CCAPERF_HWC", v, 1), 0); }
};

TEST(PerfEvents, EnvSelectsBackend) {
  HwcEnvGuard env;
  unsetenv("CCAPERF_HWC");
  EXPECT_EQ(hwc::env_hwc_backend(), hwc::HwcBackend::sim);
  env.set("");
  EXPECT_EQ(hwc::env_hwc_backend(), hwc::HwcBackend::sim);
  env.set("sim");
  EXPECT_EQ(hwc::env_hwc_backend(), hwc::HwcBackend::sim);
  env.set("perf");
  EXPECT_EQ(hwc::env_hwc_backend(), hwc::HwcBackend::perf);
  env.set("papi");
  EXPECT_THROW(hwc::env_hwc_backend(), ccaperf::Error);
}

TEST(PerfEvents, SimRequestIsANoop) {
  hwc::CounterRegistry reg;
  hwc::PerfBackend backend;
  const auto report = backend.install(reg, hwc::HwcBackend::sim);
  EXPECT_EQ(report.active, hwc::HwcBackend::sim);
  EXPECT_FALSE(report.degraded());
  EXPECT_TRUE(report.installed.empty());
  EXPECT_EQ(reg.size(), 0u);
}

TEST(PerfEvents, PerfRequestInstallsOrDegradesGracefully) {
  hwc::CounterRegistry reg;
  hwc::PerfBackend backend;
  const auto report = backend.install(reg, hwc::HwcBackend::perf);
  ASSERT_EQ(report.requested, hwc::HwcBackend::perf);

  if (report.active == hwc::HwcBackend::sim) {
    // Degradation path: syscall walled off (seccomp / perf_event_paranoid)
    // or backend compiled out. The registry must be untouched and the
    // report must say why.
    EXPECT_TRUE(report.degraded());
    EXPECT_FALSE(report.detail.empty());
    EXPECT_EQ(reg.size(), 0u);
    return;
  }

  // Live path: every installed name must be readable through the registry
  // and monotone non-decreasing — a busy loop strictly grows cycles and
  // instructions.
  ASSERT_FALSE(report.installed.empty());
  EXPECT_EQ(reg.size(), report.installed.size());
  std::vector<std::uint64_t> before, after;
  reg.read_values(before);
  volatile double sink = 1.0;
  for (int i = 0; i < 200000; ++i) sink = sink * 1.000001 + 0.5;
  reg.read_values(after);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_GE(after[i], before[i]) << report.installed[i];
  if (reg.has("PAPI_TOT_INS")) {
    const std::size_t i =
        static_cast<std::size_t>(std::find(report.installed.begin(),
                                           report.installed.end(),
                                           "PAPI_TOT_INS") -
                                 report.installed.begin());
    EXPECT_GT(after[i], before[i]);
  }
}

TEST(PerfEvents, ReinstallReplacesSourcesNotDuplicates) {
  hwc::CounterRegistry reg;
  hwc::PerfBackend a, b;
  const auto ra = a.install(reg, hwc::HwcBackend::perf);
  const auto rb = b.install(reg, hwc::HwcBackend::perf);
  EXPECT_EQ(ra.installed.size(), rb.installed.size());
  // add_source replaces by name, so the registry never grows past one
  // entry per PAPI name no matter how many times a backend installs.
  EXPECT_EQ(reg.size(), rb.installed.size());
}

}  // namespace
