// Property test: CacheSim against an independent brute-force reference
// model (exact LRU over sets) on randomized access traces, plus
// hierarchy-consistency invariants.

#include <gtest/gtest.h>

#include <list>
#include <map>

#include "hwc/cache_sim.hpp"
#include "support/rng.hpp"

namespace {

/// Deliberately naive reference: per-set std::list in LRU order.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t size, std::size_t line, std::size_t ways)
      : line_(line), ways_(ways), sets_(size / (line * ways)) {}

  bool access_line(std::uint64_t line_addr) {  // returns hit
    const std::uint64_t set = line_addr % sets_;
    auto& lru = sets_state_[set];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (*it == line_addr) {
        lru.erase(it);
        lru.push_front(line_addr);
        return true;
      }
    }
    lru.push_front(line_addr);
    if (lru.size() > ways_) lru.pop_back();
    return false;
  }

  std::uint64_t access(std::uintptr_t addr, std::size_t bytes) {
    std::uint64_t misses = 0;
    const std::uint64_t first = addr / line_;
    const std::uint64_t last = (addr + bytes - 1) / line_;
    for (std::uint64_t l = first; l <= last; ++l)
      if (!access_line(l)) ++misses;
    return misses;
  }

 private:
  std::size_t line_, ways_, sets_;
  std::map<std::uint64_t, std::list<std::uint64_t>> sets_state_;
};

class CacheVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheVsReference, IdenticalMissStreamOnRandomTrace) {
  const std::uint64_t seed = GetParam();
  ccaperf::Rng rng(seed);
  hwc::CacheSim sim(4096, 64, 2);  // 32 sets, 2-way: small enough to stress
  ReferenceCache ref(4096, 64, 2);

  for (int k = 0; k < 20'000; ++k) {
    // Mix of hot region, cold sweeps, and straddling accesses.
    std::uintptr_t addr;
    const double roll = rng.uniform();
    if (roll < 0.5)
      addr = static_cast<std::uintptr_t>(rng.uniform_int(0, 2047));  // hot
    else
      addr = static_cast<std::uintptr_t>(rng.uniform_int(0, 1 << 20));
    const auto bytes = static_cast<std::size_t>(rng.uniform_int(1, 96));
    const bool write = rng.uniform() < 0.3;
    EXPECT_EQ(sim.access(addr, bytes, write), ref.access(addr, bytes))
        << "seed " << seed << " step " << k;
  }
  EXPECT_EQ(sim.counters().accesses, sim.counters().hits + sim.counters().misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsReference, ::testing::Values(1, 2, 3, 4));

TEST(CacheHierarchy, L2TrafficEqualsL1MissesPlusWritebacks) {
  ccaperf::Rng rng(9);
  hwc::CacheSim l2(64 * 1024, 64, 8);
  hwc::CacheSim l1(2048, 64, 2);
  l1.set_lower(&l2);
  for (int k = 0; k < 50'000; ++k)
    l1.access(static_cast<std::uintptr_t>(rng.uniform_int(0, 1 << 18)), 8,
              rng.uniform() < 0.4);
  EXPECT_EQ(l2.counters().accesses,
            l1.counters().misses + l1.counters().writebacks);
}

TEST(CacheHierarchy, InclusionOfRecentLine) {
  hwc::CacheSim l2(64 * 1024, 64, 8);
  hwc::CacheSim l1(1024, 64, 1);
  l1.set_lower(&l2);
  l1.access(0x1000, 8, false);
  // Evict from tiny L1; the line must still hit in the large L2.
  l1.access(0x1000 + 1024, 8, false);
  l2.reset_counters();
  l1.access(0x1000, 8, false);  // L1 miss -> L2 lookup
  EXPECT_EQ(l2.counters().hits, 1u);
  EXPECT_EQ(l2.counters().misses, 0u);
}

}  // namespace
