// CacheSim behaviour on hand-computable traces: hits/misses/evictions for
// direct-mapped and set-associative configurations, LRU order, write-backs,
// multi-level forwarding, and the sequential-vs-strided working-set effect
// that underlies the paper's Figs. 4-5.

#include <gtest/gtest.h>

#include "hwc/cache_sim.hpp"
#include "support/error.hpp"

namespace {

using hwc::CacheSim;

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c(1024, 64, 1);  // 16 sets, direct mapped
  EXPECT_EQ(c.access(0x0, 8, false), 1u);
  EXPECT_EQ(c.access(0x0, 8, false), 0u);
  EXPECT_EQ(c.access(0x8, 8, false), 0u);  // same line
  EXPECT_EQ(c.counters().accesses, 3u);
  EXPECT_EQ(c.counters().misses, 1u);
  EXPECT_EQ(c.counters().hits, 2u);
}

TEST(CacheSim, DirectMappedConflict) {
  CacheSim c(1024, 64, 1);  // 16 sets: addresses 1024 bytes apart collide
  c.access(0x0, 8, false);
  c.access(1024, 8, false);  // evicts line 0
  EXPECT_EQ(c.counters().evictions, 1u);
  EXPECT_EQ(c.access(0x0, 8, false), 1u);  // misses, evicting line 1024
  EXPECT_EQ(c.counters().evictions, 2u);
}

TEST(CacheSim, TwoWayAssociativityAvoidsConflict) {
  CacheSim c(2048, 64, 2);  // 16 sets, 2-way
  c.access(0x0, 8, false);
  c.access(2048, 8, false);  // same set, second way
  EXPECT_EQ(c.access(0x0, 8, false), 0u);
  EXPECT_EQ(c.access(2048, 8, false), 0u);
  EXPECT_EQ(c.counters().misses, 2u);
}

TEST(CacheSim, LruEvictsLeastRecentlyUsed) {
  CacheSim c(2048, 64, 2);  // 16 sets, 2-way
  const std::uintptr_t a = 0, b = 2048, d = 4096;  // all map to set 0
  c.access(a, 8, false);
  c.access(b, 8, false);
  c.access(a, 8, false);   // a now most recent
  c.access(d, 8, false);   // evicts b
  EXPECT_EQ(c.access(a, 8, false), 0u);
  EXPECT_EQ(c.access(b, 8, false), 1u);
}

TEST(CacheSim, StraddlingAccessTouchesBothLines) {
  CacheSim c(1024, 64, 1);
  EXPECT_EQ(c.access(60, 8, false), 2u);  // crosses the 64-byte boundary
  EXPECT_EQ(c.counters().accesses, 2u);
}

TEST(CacheSim, WritebackOnDirtyEviction) {
  CacheSim l2(65536, 64, 8);
  CacheSim l1(1024, 64, 1);
  l1.set_lower(&l2);
  l1.access(0x0, 8, true);     // dirty line in l1
  l1.access(1024, 8, false);   // evicts dirty line -> writeback to l2
  EXPECT_EQ(l1.counters().writebacks, 1u);
  // L2 saw: fill for 0x0, fill for 1024, writeback of 0x0 (a hit there).
  EXPECT_EQ(l2.counters().accesses, 3u);
  EXPECT_EQ(l2.counters().hits, 1u);
}

TEST(CacheSim, CleanEvictionDoesNotWriteBack) {
  CacheSim c(1024, 64, 1);
  c.access(0x0, 8, false);
  c.access(1024, 8, false);
  EXPECT_EQ(c.counters().evictions, 1u);
  EXPECT_EQ(c.counters().writebacks, 0u);
}

TEST(CacheSim, MissesForwardToLowerLevel) {
  CacheSim l2(65536, 64, 8);
  CacheSim l1(1024, 64, 2);
  l1.set_lower(&l2);
  l1.access(0x0, 8, false);
  EXPECT_EQ(l2.counters().misses, 1u);
  l1.access(0x0, 8, false);  // l1 hit: l2 untouched
  EXPECT_EQ(l2.counters().accesses, 1u);
}

TEST(CacheSim, FlushInvalidatesEverything) {
  CacheSim c(1024, 64, 1);
  c.access(0x0, 8, false);
  c.flush();
  EXPECT_EQ(c.access(0x0, 8, false), 1u);
}

TEST(CacheSim, ResetCountersKeepsContents) {
  CacheSim c(1024, 64, 1);
  c.access(0x0, 8, false);
  c.reset_counters();
  EXPECT_EQ(c.counters().accesses, 0u);
  EXPECT_EQ(c.access(0x0, 8, false), 0u);  // still cached
}

TEST(CacheSim, SequentialSweepMissesOncePerLine) {
  CacheSim c(512 * 1024, 64, 8);
  // 4096 doubles = 32 KB = 512 lines, well inside the cache.
  for (int i = 0; i < 4096; ++i)
    c.access(static_cast<std::uintptr_t>(i) * 8, 8, false);
  EXPECT_EQ(c.counters().misses, 4096u * 8 / 64);
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashesWhenStrided) {
  // The Fig. 5 mechanism: a strided sweep over an array bigger than the
  // cache misses on (nearly) every access, while the same data swept
  // sequentially misses once per line (8 doubles).
  const std::size_t n = 128 * 1024;  // 1 MB of doubles, 2x the 512 kB cache
  const std::size_t stride = 1024;   // column walk of a 1024-wide matrix

  CacheSim seq(512 * 1024, 64, 8);
  for (std::size_t i = 0; i < n; ++i)
    seq.access(static_cast<std::uintptr_t>(i * 8), 8, false);

  CacheSim str(512 * 1024, 64, 8);
  for (std::size_t col = 0; col < stride; ++col)
    for (std::size_t row = 0; row < n / stride; ++row)
      str.access(static_cast<std::uintptr_t>((row * stride + col) * 8), 8, false);

  const double seq_rate = seq.counters().miss_rate();
  const double str_rate = str.counters().miss_rate();
  EXPECT_NEAR(seq_rate, 1.0 / 8.0, 0.01);
  EXPECT_GT(str_rate, 0.9);  // essentially every access misses
  EXPECT_GT(str_rate / seq_rate, 4.0);
}

TEST(CacheSim, SmallWorkingSetSameCostBothOrders) {
  // Cache-resident arrays: both access orders hit after the cold pass —
  // the paper's "for small, largely cache-resident arrays, both the modes
  // take roughly the same time".
  const std::size_t n = 4096;  // 32 kB
  const std::size_t stride = 64;
  auto run = [&](bool strided) {
    CacheSim c(512 * 1024, 64, 8);
    for (int pass = 0; pass < 4; ++pass) {
      if (strided) {
        for (std::size_t col = 0; col < stride; ++col)
          for (std::size_t row = 0; row < n / stride; ++row)
            c.access((row * stride + col) * 8, 8, false);
      } else {
        for (std::size_t i = 0; i < n; ++i) c.access(i * 8, 8, false);
      }
    }
    return c.counters().miss_rate();
  };
  EXPECT_NEAR(run(false), run(true), 0.005);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim(1000, 64, 1), ccaperf::Error);   // size % (line*ways)
  EXPECT_THROW(CacheSim(1024, 48, 1), ccaperf::Error);   // non-pow2 line
  EXPECT_THROW(CacheSim(1024, 64, 0), ccaperf::Error);   // zero ways
}

TEST(CacheSim, ZeroByteAccessIsFree) {
  CacheSim c(1024, 64, 1);
  EXPECT_EQ(c.access(0, 0, false), 0u);
  EXPECT_EQ(c.counters().accesses, 0u);
}

TEST(CacheSim, XeonHierarchyWired) {
  hwc::XeonHierarchy xeon;
  EXPECT_EQ(xeon.l1.lower(), &xeon.l2);
  EXPECT_EQ(xeon.l2.size_bytes(), 512u * 1024u);
  xeon.l1.access(0x0, 8, false);
  EXPECT_EQ(xeon.l2.counters().misses, 1u);
}

}  // namespace
