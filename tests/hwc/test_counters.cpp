#include <gtest/gtest.h>

#include "hwc/counters.hpp"

namespace {

TEST(CounterRegistry, RegisterAndRead) {
  hwc::CounterRegistry reg;
  std::uint64_t value = 42;
  reg.add_source(hwc::kFpOps, [&value] { return value; });
  EXPECT_TRUE(reg.has(hwc::kFpOps));
  EXPECT_EQ(reg.read(hwc::kFpOps), 42u);
  value = 100;
  EXPECT_EQ(reg.read(hwc::kFpOps), 100u);
}

TEST(CounterRegistry, UnknownCounterThrows) {
  hwc::CounterRegistry reg;
  EXPECT_FALSE(reg.has("PAPI_NOPE"));
  EXPECT_THROW(reg.read("PAPI_NOPE"), ccaperf::Error);
}

TEST(CounterRegistry, ReadAllPreservesRegistrationOrder) {
  hwc::CounterRegistry reg;
  reg.add_source("b_counter", [] { return std::uint64_t{2}; });
  reg.add_source("a_counter", [] { return std::uint64_t{1}; });
  const auto all = reg.read_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "b_counter");
  EXPECT_EQ(all[0].second, 2u);
  EXPECT_EQ(all[1].first, "a_counter");
}

TEST(CounterRegistry, ReplaceExistingSource) {
  hwc::CounterRegistry reg;
  reg.add_source("x", [] { return std::uint64_t{1}; });
  reg.add_source("x", [] { return std::uint64_t{9}; });
  EXPECT_EQ(reg.read("x"), 9u);
  EXPECT_EQ(reg.names().size(), 1u);
}

TEST(CounterRegistry, NullSourceRejected) {
  hwc::CounterRegistry reg;
  EXPECT_THROW(reg.add_source("x", nullptr), ccaperf::Error);
}

}  // namespace
