#include <gtest/gtest.h>

#include <vector>

#include "hwc/probe.hpp"

namespace {

TEST(NullProbe, CompilesAwayAndAcceptsCalls) {
  hwc::NullProbe p;
  p.load(nullptr, 8);
  p.store(nullptr, 8);
  p.flops(100);
  static_assert(!hwc::NullProbe::kCounting);
}

TEST(CacheProbe, CountsLoadsStoresFlops) {
  hwc::CacheSim cache(1024, 64, 1);
  hwc::CacheProbe p(&cache);
  std::vector<double> v(16);
  p.load(v.data(), 8);
  p.load(v.data() + 1, 8);
  p.store(v.data() + 2, 8);
  p.flops(7);
  p.flops(3);
  EXPECT_EQ(p.counts().loads, 2u);
  EXPECT_EQ(p.counts().stores, 1u);
  EXPECT_EQ(p.counts().flops, 10u);
  EXPECT_GE(cache.counters().accesses, 3u);
}

TEST(CacheProbe, RoutesTrafficThroughCache) {
  hwc::CacheSim cache(1024, 64, 1);
  hwc::CacheProbe p(&cache);
  std::vector<double> v(8);  // one line's worth (aligned enough for test)
  for (auto& x : v) p.load(&x, sizeof x);
  EXPECT_GE(cache.counters().hits, 5u);  // most accesses share a line
}

TEST(CacheProbe, ResetClearsCounts) {
  hwc::CacheSim cache(1024, 64, 1);
  hwc::CacheProbe p(&cache);
  double x = 0;
  p.load(&x, 8);
  p.flops(1);
  p.reset();
  EXPECT_EQ(p.counts().loads, 0u);
  EXPECT_EQ(p.counts().flops, 0u);
}

TEST(CacheProbe, NullCacheRejected) {
  EXPECT_THROW(hwc::CacheProbe(nullptr), ccaperf::Error);
}

}  // namespace
