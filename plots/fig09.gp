# Fig. 9 — per-ghost-update MPI time by hierarchy level (scatter).
set terminal pngcairo size 900,600
set output 'fig09.png'
set datafile separator ','
set title 'Ghost-update message time by level, 3 ranks (cf. paper Fig. 9)'
set xlabel 'hierarchy level'
set ylabel 'MPI time per update (us)'
set logscale y
set xrange [-0.5:2.5]
set xtics 0,1,2
# Jitter points horizontally by rank for readability.
plot for [r=0:2] 'bench_out/figs/fig09_message_passing.csv' skip 1 \
     using ($2 + 0.12*(column(1)-1)):(column(1)==r ? $4 : 1/0) \
     with points pointtype 7 pointsize 0.6 title sprintf('rank %d', r)
