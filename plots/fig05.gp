# Fig. 5 — strided/sequential ratio vs array size.
set terminal pngcairo size 900,600
set output 'fig05.png'
set datafile separator ','
set title 'States: strided/sequential ratio (cf. paper Fig. 5)'
set xlabel 'array size Q (cells)'
set ylabel 'ratio'
set key top left
plot 'bench_out/figs/fig05_access_ratio.csv' skip 1 using 1:2:3 with yerrorlines title 'wall clock (host cache)', \
     ''                       skip 1 using 1:4 with linespoints title 'L2-miss ratio (512 kB simulator)'
