# Figs. 6-8 — mean execution time and standard deviation vs Q with fits.
set terminal pngcairo size 900,600
set datafile separator ','
set xlabel 'array size Q (cells)'
set ylabel 'mean time (us)'
set y2label 'std deviation (us)'
set y2tics
set key top left

do for [fig in "06_states 07_godunov 08_efm"] {
  set output sprintf('fig%s.png', fig)
  set title sprintf('fig%s: mean and sigma vs Q (cf. paper Figs. 6-8)', fig)
  plot sprintf('fig%s_model.csv', fig) skip 1 using 1:2 with points title 'measured mean', \
       '' skip 1 using 1:4 with lines title 'fitted mean model', \
       '' skip 1 using 1:3 axes x1y2 with points title 'measured sigma', \
       '' skip 1 using 1:5 axes x1y2 with lines title 'fitted sigma model'
}
