# Fig. 4 — States execution time vs array size, sequential vs strided.
set terminal pngcairo size 900,600
set output 'fig04.png'
set datafile separator ','
set title 'States: execution time vs array size (cf. paper Fig. 4)'
set xlabel 'array size Q (cells)'
set ylabel 'time (us)'
set key top left
set logscale y
plot 'bench_out/figs/fig04_states_modes.csv' skip 1 using 1:2:3 with yerrorlines title 'sequential (X)', \
     ''                       skip 1 using 1:4:5 with yerrorlines title 'strided (Y)'
