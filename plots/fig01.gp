# Fig. 1 — level-0 density field with patch outlines.
set terminal pngcairo size 1200,640
set output 'fig01.png'
set datafile separator ','
set title 'Density field, Mach 1.5 shock vs Air/Freon interface (cf. paper Fig. 1)'
set xlabel 'x'
set ylabel 'y'
set view map
set palette rgbformulae 33,13,10
set cblabel 'rho'
plot 'bench_out/figs/fig01_density.rank0.csv' skip 1 using 1:2:3 with points pointtype 5 pointsize 1.4 palette notitle, \
     'bench_out/figs/fig01_density.rank1.csv' skip 1 using 1:2:3 with points pointtype 5 pointsize 1.4 palette notitle, \
     'bench_out/figs/fig01_density.rank2.csv' skip 1 using 1:2:3 with points pointtype 5 pointsize 1.4 palette notitle
