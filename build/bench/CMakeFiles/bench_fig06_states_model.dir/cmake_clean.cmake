file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_states_model.dir/bench_fig06_states_model.cpp.o"
  "CMakeFiles/bench_fig06_states_model.dir/bench_fig06_states_model.cpp.o.d"
  "bench_fig06_states_model"
  "bench_fig06_states_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_states_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
