# Empty dependencies file for bench_fig06_states_model.
# This may be replaced when dependencies are built.
