# Empty compiler generated dependencies file for bench_fig01_simulation.
# This may be replaced when dependencies are built.
