file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_simulation.dir/bench_fig01_simulation.cpp.o"
  "CMakeFiles/bench_fig01_simulation.dir/bench_fig01_simulation.cpp.o.d"
  "bench_fig01_simulation"
  "bench_fig01_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
