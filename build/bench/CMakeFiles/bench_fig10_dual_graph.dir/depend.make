# Empty dependencies file for bench_fig10_dual_graph.
# This may be replaced when dependencies are built.
