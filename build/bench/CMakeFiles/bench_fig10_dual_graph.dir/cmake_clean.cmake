file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dual_graph.dir/bench_fig10_dual_graph.cpp.o"
  "CMakeFiles/bench_fig10_dual_graph.dir/bench_fig10_dual_graph.cpp.o.d"
  "bench_fig10_dual_graph"
  "bench_fig10_dual_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dual_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
