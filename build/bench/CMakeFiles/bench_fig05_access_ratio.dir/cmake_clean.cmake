file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_access_ratio.dir/bench_fig05_access_ratio.cpp.o"
  "CMakeFiles/bench_fig05_access_ratio.dir/bench_fig05_access_ratio.cpp.o.d"
  "bench_fig05_access_ratio"
  "bench_fig05_access_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_access_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
