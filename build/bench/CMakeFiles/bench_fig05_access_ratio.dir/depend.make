# Empty dependencies file for bench_fig05_access_ratio.
# This may be replaced when dependencies are built.
