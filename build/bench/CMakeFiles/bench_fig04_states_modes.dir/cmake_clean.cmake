file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_states_modes.dir/bench_fig04_states_modes.cpp.o"
  "CMakeFiles/bench_fig04_states_modes.dir/bench_fig04_states_modes.cpp.o.d"
  "bench_fig04_states_modes"
  "bench_fig04_states_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_states_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
