# Empty dependencies file for bench_fig04_states_modes.
# This may be replaced when dependencies are built.
