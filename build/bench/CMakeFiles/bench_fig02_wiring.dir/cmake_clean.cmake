file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_wiring.dir/bench_fig02_wiring.cpp.o"
  "CMakeFiles/bench_fig02_wiring.dir/bench_fig02_wiring.cpp.o.d"
  "bench_fig02_wiring"
  "bench_fig02_wiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_wiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
