# Empty dependencies file for bench_fig02_wiring.
# This may be replaced when dependencies are built.
