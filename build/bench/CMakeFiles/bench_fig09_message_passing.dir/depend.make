# Empty dependencies file for bench_fig09_message_passing.
# This may be replaced when dependencies are built.
