file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_modeltransfer.dir/bench_ablation_modeltransfer.cpp.o"
  "CMakeFiles/bench_ablation_modeltransfer.dir/bench_ablation_modeltransfer.cpp.o.d"
  "bench_ablation_modeltransfer"
  "bench_ablation_modeltransfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modeltransfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
