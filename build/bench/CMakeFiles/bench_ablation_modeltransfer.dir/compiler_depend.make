# Empty compiler generated dependencies file for bench_ablation_modeltransfer.
# This may be replaced when dependencies are built.
