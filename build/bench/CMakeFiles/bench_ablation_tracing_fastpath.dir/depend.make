# Empty dependencies file for bench_ablation_tracing_fastpath.
# This may be replaced when dependencies are built.
