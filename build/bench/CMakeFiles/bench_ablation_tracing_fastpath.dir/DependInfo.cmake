
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_tracing_fastpath.cpp" "bench/CMakeFiles/bench_ablation_tracing_fastpath.dir/bench_ablation_tracing_fastpath.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_tracing_fastpath.dir/bench_ablation_tracing_fastpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccaperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/ccaperf_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/ccaperf_components.dir/DependInfo.cmake"
  "/root/repo/build/src/cca/CMakeFiles/ccaperf_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/euler/CMakeFiles/ccaperf_euler.dir/DependInfo.cmake"
  "/root/repo/build/src/hwc/CMakeFiles/ccaperf_hwc.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/ccaperf_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
