file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tracing_fastpath.dir/bench_ablation_tracing_fastpath.cpp.o"
  "CMakeFiles/bench_ablation_tracing_fastpath.dir/bench_ablation_tracing_fastpath.cpp.o.d"
  "bench_ablation_tracing_fastpath"
  "bench_ablation_tracing_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tracing_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
