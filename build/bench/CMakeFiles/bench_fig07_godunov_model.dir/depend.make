# Empty dependencies file for bench_fig07_godunov_model.
# This may be replaced when dependencies are built.
