file(REMOVE_RECURSE
  "CMakeFiles/test_cca.dir/test_framework.cpp.o"
  "CMakeFiles/test_cca.dir/test_framework.cpp.o.d"
  "test_cca"
  "test_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
