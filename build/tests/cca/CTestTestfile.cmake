# CMake generated Testfile for 
# Source directory: /root/repo/tests/cca
# Build directory: /root/repo/build/tests/cca
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_cca "/root/repo/build/tests/cca/test_cca")
set_tests_properties(test_cca PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/cca/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/cca/CMakeLists.txt;0;")
