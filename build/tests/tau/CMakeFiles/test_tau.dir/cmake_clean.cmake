file(REMOVE_RECURSE
  "CMakeFiles/test_tau.dir/test_mpi_adapter.cpp.o"
  "CMakeFiles/test_tau.dir/test_mpi_adapter.cpp.o.d"
  "CMakeFiles/test_tau.dir/test_profile.cpp.o"
  "CMakeFiles/test_tau.dir/test_profile.cpp.o.d"
  "CMakeFiles/test_tau.dir/test_registry.cpp.o"
  "CMakeFiles/test_tau.dir/test_registry.cpp.o.d"
  "CMakeFiles/test_tau.dir/test_tracing.cpp.o"
  "CMakeFiles/test_tau.dir/test_tracing.cpp.o.d"
  "test_tau"
  "test_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
