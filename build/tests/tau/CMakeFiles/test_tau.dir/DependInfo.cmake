
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tau/test_mpi_adapter.cpp" "tests/tau/CMakeFiles/test_tau.dir/test_mpi_adapter.cpp.o" "gcc" "tests/tau/CMakeFiles/test_tau.dir/test_mpi_adapter.cpp.o.d"
  "/root/repo/tests/tau/test_profile.cpp" "tests/tau/CMakeFiles/test_tau.dir/test_profile.cpp.o" "gcc" "tests/tau/CMakeFiles/test_tau.dir/test_profile.cpp.o.d"
  "/root/repo/tests/tau/test_registry.cpp" "tests/tau/CMakeFiles/test_tau.dir/test_registry.cpp.o" "gcc" "tests/tau/CMakeFiles/test_tau.dir/test_registry.cpp.o.d"
  "/root/repo/tests/tau/test_tracing.cpp" "tests/tau/CMakeFiles/test_tau.dir/test_tracing.cpp.o" "gcc" "tests/tau/CMakeFiles/test_tau.dir/test_tracing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tau/CMakeFiles/ccaperf_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/hwc/CMakeFiles/ccaperf_hwc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
