# CMake generated Testfile for 
# Source directory: /root/repo/tests/tau
# Build directory: /root/repo/build/tests/tau
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_tau "/root/repo/build/tests/tau/test_tau")
set_tests_properties(test_tau PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/tau/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/tau/CMakeLists.txt;0;")
