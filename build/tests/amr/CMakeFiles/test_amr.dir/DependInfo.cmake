
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/amr/test_bc.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_bc.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_bc.cpp.o.d"
  "/root/repo/tests/amr/test_berger_rigoutsos.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_berger_rigoutsos.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_berger_rigoutsos.cpp.o.d"
  "/root/repo/tests/amr/test_box.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_box.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_box.cpp.o.d"
  "/root/repo/tests/amr/test_exchange.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_exchange.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_exchange.cpp.o.d"
  "/root/repo/tests/amr/test_exchange_coalesce.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_exchange_coalesce.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_exchange_coalesce.cpp.o.d"
  "/root/repo/tests/amr/test_exchange_property.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_exchange_property.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_exchange_property.cpp.o.d"
  "/root/repo/tests/amr/test_hierarchy.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_hierarchy.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/amr/test_load_balance.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_load_balance.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_load_balance.cpp.o.d"
  "/root/repo/tests/amr/test_patch_data.cpp" "tests/amr/CMakeFiles/test_amr.dir/test_patch_data.cpp.o" "gcc" "tests/amr/CMakeFiles/test_amr.dir/test_patch_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/CMakeFiles/ccaperf_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
