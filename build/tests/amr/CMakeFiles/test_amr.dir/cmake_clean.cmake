file(REMOVE_RECURSE
  "CMakeFiles/test_amr.dir/test_bc.cpp.o"
  "CMakeFiles/test_amr.dir/test_bc.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_berger_rigoutsos.cpp.o"
  "CMakeFiles/test_amr.dir/test_berger_rigoutsos.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_box.cpp.o"
  "CMakeFiles/test_amr.dir/test_box.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_exchange.cpp.o"
  "CMakeFiles/test_amr.dir/test_exchange.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_exchange_coalesce.cpp.o"
  "CMakeFiles/test_amr.dir/test_exchange_coalesce.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_exchange_property.cpp.o"
  "CMakeFiles/test_amr.dir/test_exchange_property.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_hierarchy.cpp.o"
  "CMakeFiles/test_amr.dir/test_hierarchy.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_load_balance.cpp.o"
  "CMakeFiles/test_amr.dir/test_load_balance.cpp.o.d"
  "CMakeFiles/test_amr.dir/test_patch_data.cpp.o"
  "CMakeFiles/test_amr.dir/test_patch_data.cpp.o.d"
  "test_amr"
  "test_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
