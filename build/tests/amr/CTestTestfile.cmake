# CMake generated Testfile for 
# Source directory: /root/repo/tests/amr
# Build directory: /root/repo/build/tests/amr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_amr "/root/repo/build/tests/amr/test_amr")
set_tests_properties(test_amr PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/amr/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/amr/CMakeLists.txt;0;")
