# Empty compiler generated dependencies file for test_euler.
# This may be replaced when dependencies are built.
