file(REMOVE_RECURSE
  "CMakeFiles/test_euler.dir/test_efm.cpp.o"
  "CMakeFiles/test_euler.dir/test_efm.cpp.o.d"
  "CMakeFiles/test_euler.dir/test_kernels.cpp.o"
  "CMakeFiles/test_euler.dir/test_kernels.cpp.o.d"
  "CMakeFiles/test_euler.dir/test_problem.cpp.o"
  "CMakeFiles/test_euler.dir/test_problem.cpp.o.d"
  "CMakeFiles/test_euler.dir/test_riemann.cpp.o"
  "CMakeFiles/test_euler.dir/test_riemann.cpp.o.d"
  "CMakeFiles/test_euler.dir/test_riemann_properties.cpp.o"
  "CMakeFiles/test_euler.dir/test_riemann_properties.cpp.o.d"
  "CMakeFiles/test_euler.dir/test_sod_tube.cpp.o"
  "CMakeFiles/test_euler.dir/test_sod_tube.cpp.o.d"
  "CMakeFiles/test_euler.dir/test_state.cpp.o"
  "CMakeFiles/test_euler.dir/test_state.cpp.o.d"
  "test_euler"
  "test_euler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
