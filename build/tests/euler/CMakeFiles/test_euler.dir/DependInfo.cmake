
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/euler/test_efm.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_efm.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_efm.cpp.o.d"
  "/root/repo/tests/euler/test_kernels.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_kernels.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/euler/test_problem.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_problem.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_problem.cpp.o.d"
  "/root/repo/tests/euler/test_riemann.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_riemann.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_riemann.cpp.o.d"
  "/root/repo/tests/euler/test_riemann_properties.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_riemann_properties.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_riemann_properties.cpp.o.d"
  "/root/repo/tests/euler/test_sod_tube.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_sod_tube.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_sod_tube.cpp.o.d"
  "/root/repo/tests/euler/test_state.cpp" "tests/euler/CMakeFiles/test_euler.dir/test_state.cpp.o" "gcc" "tests/euler/CMakeFiles/test_euler.dir/test_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/euler/CMakeFiles/ccaperf_euler.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/ccaperf_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/hwc/CMakeFiles/ccaperf_hwc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
