# CMake generated Testfile for 
# Source directory: /root/repo/tests/euler
# Build directory: /root/repo/build/tests/euler
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_euler "/root/repo/build/tests/euler/test_euler")
set_tests_properties(test_euler PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/euler/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/euler/CMakeLists.txt;0;")
