file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_cache_model.cpp.o"
  "CMakeFiles/test_core.dir/test_cache_model.cpp.o.d"
  "CMakeFiles/test_core.dir/test_dual_graph.cpp.o"
  "CMakeFiles/test_core.dir/test_dual_graph.cpp.o.d"
  "CMakeFiles/test_core.dir/test_instrumented_app.cpp.o"
  "CMakeFiles/test_core.dir/test_instrumented_app.cpp.o.d"
  "CMakeFiles/test_core.dir/test_mastermind.cpp.o"
  "CMakeFiles/test_core.dir/test_mastermind.cpp.o.d"
  "CMakeFiles/test_core.dir/test_modeling.cpp.o"
  "CMakeFiles/test_core.dir/test_modeling.cpp.o.d"
  "CMakeFiles/test_core.dir/test_optimizer.cpp.o"
  "CMakeFiles/test_core.dir/test_optimizer.cpp.o.d"
  "CMakeFiles/test_core.dir/test_proxies.cpp.o"
  "CMakeFiles/test_core.dir/test_proxies.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
