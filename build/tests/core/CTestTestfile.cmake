# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_core "/root/repo/build/tests/core/test_core")
set_tests_properties(test_core PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/core/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/core/CMakeLists.txt;0;")
