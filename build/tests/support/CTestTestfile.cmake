# CMake generated Testfile for 
# Source directory: /root/repo/tests/support
# Build directory: /root/repo/build/tests/support
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/support/test_support")
set_tests_properties(test_support PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/support/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/support/CMakeLists.txt;0;")
