
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/test_rng.cpp" "tests/support/CMakeFiles/test_support.dir/test_rng.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_rng.cpp.o.d"
  "/root/repo/tests/support/test_stats.cpp" "tests/support/CMakeFiles/test_support.dir/test_stats.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_stats.cpp.o.d"
  "/root/repo/tests/support/test_table.cpp" "tests/support/CMakeFiles/test_support.dir/test_table.cpp.o" "gcc" "tests/support/CMakeFiles/test_support.dir/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
