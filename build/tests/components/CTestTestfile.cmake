# CMake generated Testfile for 
# Source directory: /root/repo/tests/components
# Build directory: /root/repo/build/tests/components
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_components "/root/repo/build/tests/components/test_components")
set_tests_properties(test_components PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/components/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/components/CMakeLists.txt;0;")
