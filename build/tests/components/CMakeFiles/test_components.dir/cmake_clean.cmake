file(REMOVE_RECURSE
  "CMakeFiles/test_components.dir/test_app.cpp.o"
  "CMakeFiles/test_components.dir/test_app.cpp.o.d"
  "CMakeFiles/test_components.dir/test_freestream.cpp.o"
  "CMakeFiles/test_components.dir/test_freestream.cpp.o.d"
  "test_components"
  "test_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
