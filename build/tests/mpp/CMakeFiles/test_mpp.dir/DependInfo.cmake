
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mpp/test_collectives.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_collectives.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/mpp/test_comm_mgmt.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_comm_mgmt.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_comm_mgmt.cpp.o.d"
  "/root/repo/tests/mpp/test_fabric_pool.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_fabric_pool.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_fabric_pool.cpp.o.d"
  "/root/repo/tests/mpp/test_netmodel.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_netmodel.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_netmodel.cpp.o.d"
  "/root/repo/tests/mpp/test_p2p.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_p2p.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_p2p.cpp.o.d"
  "/root/repo/tests/mpp/test_requests.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_requests.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_requests.cpp.o.d"
  "/root/repo/tests/mpp/test_split_property.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_split_property.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_split_property.cpp.o.d"
  "/root/repo/tests/mpp/test_stress.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_stress.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_stress.cpp.o.d"
  "/root/repo/tests/mpp/test_watchdog.cpp" "tests/mpp/CMakeFiles/test_mpp.dir/test_watchdog.cpp.o" "gcc" "tests/mpp/CMakeFiles/test_mpp.dir/test_watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
