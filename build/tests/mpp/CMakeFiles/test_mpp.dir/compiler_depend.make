# Empty compiler generated dependencies file for test_mpp.
# This may be replaced when dependencies are built.
