file(REMOVE_RECURSE
  "CMakeFiles/test_mpp.dir/test_collectives.cpp.o"
  "CMakeFiles/test_mpp.dir/test_collectives.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_comm_mgmt.cpp.o"
  "CMakeFiles/test_mpp.dir/test_comm_mgmt.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_fabric_pool.cpp.o"
  "CMakeFiles/test_mpp.dir/test_fabric_pool.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_netmodel.cpp.o"
  "CMakeFiles/test_mpp.dir/test_netmodel.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_p2p.cpp.o"
  "CMakeFiles/test_mpp.dir/test_p2p.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_requests.cpp.o"
  "CMakeFiles/test_mpp.dir/test_requests.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_split_property.cpp.o"
  "CMakeFiles/test_mpp.dir/test_split_property.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_stress.cpp.o"
  "CMakeFiles/test_mpp.dir/test_stress.cpp.o.d"
  "CMakeFiles/test_mpp.dir/test_watchdog.cpp.o"
  "CMakeFiles/test_mpp.dir/test_watchdog.cpp.o.d"
  "test_mpp"
  "test_mpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
