# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpp
# Build directory: /root/repo/build/tests/mpp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_mpp "/root/repo/build/tests/mpp/test_mpp")
set_tests_properties(test_mpp PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/mpp/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/mpp/CMakeLists.txt;0;")
