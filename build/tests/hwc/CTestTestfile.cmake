# CMake generated Testfile for 
# Source directory: /root/repo/tests/hwc
# Build directory: /root/repo/build/tests/hwc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_hwc "/root/repo/build/tests/hwc/test_hwc")
set_tests_properties(test_hwc PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/hwc/CMakeLists.txt;1;ccaperf_add_test;/root/repo/tests/hwc/CMakeLists.txt;0;")
