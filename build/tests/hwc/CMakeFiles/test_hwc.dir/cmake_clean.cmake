file(REMOVE_RECURSE
  "CMakeFiles/test_hwc.dir/test_access_run.cpp.o"
  "CMakeFiles/test_hwc.dir/test_access_run.cpp.o.d"
  "CMakeFiles/test_hwc.dir/test_cache_properties.cpp.o"
  "CMakeFiles/test_hwc.dir/test_cache_properties.cpp.o.d"
  "CMakeFiles/test_hwc.dir/test_cache_sim.cpp.o"
  "CMakeFiles/test_hwc.dir/test_cache_sim.cpp.o.d"
  "CMakeFiles/test_hwc.dir/test_counters.cpp.o"
  "CMakeFiles/test_hwc.dir/test_counters.cpp.o.d"
  "CMakeFiles/test_hwc.dir/test_probe.cpp.o"
  "CMakeFiles/test_hwc.dir/test_probe.cpp.o.d"
  "test_hwc"
  "test_hwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
