
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hwc/test_access_run.cpp" "tests/hwc/CMakeFiles/test_hwc.dir/test_access_run.cpp.o" "gcc" "tests/hwc/CMakeFiles/test_hwc.dir/test_access_run.cpp.o.d"
  "/root/repo/tests/hwc/test_cache_properties.cpp" "tests/hwc/CMakeFiles/test_hwc.dir/test_cache_properties.cpp.o" "gcc" "tests/hwc/CMakeFiles/test_hwc.dir/test_cache_properties.cpp.o.d"
  "/root/repo/tests/hwc/test_cache_sim.cpp" "tests/hwc/CMakeFiles/test_hwc.dir/test_cache_sim.cpp.o" "gcc" "tests/hwc/CMakeFiles/test_hwc.dir/test_cache_sim.cpp.o.d"
  "/root/repo/tests/hwc/test_counters.cpp" "tests/hwc/CMakeFiles/test_hwc.dir/test_counters.cpp.o" "gcc" "tests/hwc/CMakeFiles/test_hwc.dir/test_counters.cpp.o.d"
  "/root/repo/tests/hwc/test_probe.cpp" "tests/hwc/CMakeFiles/test_hwc.dir/test_probe.cpp.o" "gcc" "tests/hwc/CMakeFiles/test_hwc.dir/test_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwc/CMakeFiles/ccaperf_hwc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
