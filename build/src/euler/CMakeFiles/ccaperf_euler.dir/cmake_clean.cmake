file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_euler.dir/kernels.cpp.o"
  "CMakeFiles/ccaperf_euler.dir/kernels.cpp.o.d"
  "CMakeFiles/ccaperf_euler.dir/problem.cpp.o"
  "CMakeFiles/ccaperf_euler.dir/problem.cpp.o.d"
  "CMakeFiles/ccaperf_euler.dir/riemann.cpp.o"
  "CMakeFiles/ccaperf_euler.dir/riemann.cpp.o.d"
  "libccaperf_euler.a"
  "libccaperf_euler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
