# Empty compiler generated dependencies file for ccaperf_euler.
# This may be replaced when dependencies are built.
