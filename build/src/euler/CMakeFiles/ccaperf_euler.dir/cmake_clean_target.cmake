file(REMOVE_RECURSE
  "libccaperf_euler.a"
)
