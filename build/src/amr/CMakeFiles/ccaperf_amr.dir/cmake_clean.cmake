file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_amr.dir/bc.cpp.o"
  "CMakeFiles/ccaperf_amr.dir/bc.cpp.o.d"
  "CMakeFiles/ccaperf_amr.dir/berger_rigoutsos.cpp.o"
  "CMakeFiles/ccaperf_amr.dir/berger_rigoutsos.cpp.o.d"
  "CMakeFiles/ccaperf_amr.dir/box.cpp.o"
  "CMakeFiles/ccaperf_amr.dir/box.cpp.o.d"
  "CMakeFiles/ccaperf_amr.dir/exchange.cpp.o"
  "CMakeFiles/ccaperf_amr.dir/exchange.cpp.o.d"
  "CMakeFiles/ccaperf_amr.dir/hierarchy.cpp.o"
  "CMakeFiles/ccaperf_amr.dir/hierarchy.cpp.o.d"
  "CMakeFiles/ccaperf_amr.dir/load_balance.cpp.o"
  "CMakeFiles/ccaperf_amr.dir/load_balance.cpp.o.d"
  "libccaperf_amr.a"
  "libccaperf_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
