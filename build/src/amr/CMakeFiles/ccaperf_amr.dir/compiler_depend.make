# Empty compiler generated dependencies file for ccaperf_amr.
# This may be replaced when dependencies are built.
