
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/bc.cpp" "src/amr/CMakeFiles/ccaperf_amr.dir/bc.cpp.o" "gcc" "src/amr/CMakeFiles/ccaperf_amr.dir/bc.cpp.o.d"
  "/root/repo/src/amr/berger_rigoutsos.cpp" "src/amr/CMakeFiles/ccaperf_amr.dir/berger_rigoutsos.cpp.o" "gcc" "src/amr/CMakeFiles/ccaperf_amr.dir/berger_rigoutsos.cpp.o.d"
  "/root/repo/src/amr/box.cpp" "src/amr/CMakeFiles/ccaperf_amr.dir/box.cpp.o" "gcc" "src/amr/CMakeFiles/ccaperf_amr.dir/box.cpp.o.d"
  "/root/repo/src/amr/exchange.cpp" "src/amr/CMakeFiles/ccaperf_amr.dir/exchange.cpp.o" "gcc" "src/amr/CMakeFiles/ccaperf_amr.dir/exchange.cpp.o.d"
  "/root/repo/src/amr/hierarchy.cpp" "src/amr/CMakeFiles/ccaperf_amr.dir/hierarchy.cpp.o" "gcc" "src/amr/CMakeFiles/ccaperf_amr.dir/hierarchy.cpp.o.d"
  "/root/repo/src/amr/load_balance.cpp" "src/amr/CMakeFiles/ccaperf_amr.dir/load_balance.cpp.o" "gcc" "src/amr/CMakeFiles/ccaperf_amr.dir/load_balance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
