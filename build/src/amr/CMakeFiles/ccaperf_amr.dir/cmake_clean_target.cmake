file(REMOVE_RECURSE
  "libccaperf_amr.a"
)
