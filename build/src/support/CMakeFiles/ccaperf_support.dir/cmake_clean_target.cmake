file(REMOVE_RECURSE
  "libccaperf_support.a"
)
