# Empty dependencies file for ccaperf_support.
# This may be replaced when dependencies are built.
