file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_support.dir/log.cpp.o"
  "CMakeFiles/ccaperf_support.dir/log.cpp.o.d"
  "CMakeFiles/ccaperf_support.dir/table.cpp.o"
  "CMakeFiles/ccaperf_support.dir/table.cpp.o.d"
  "libccaperf_support.a"
  "libccaperf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
