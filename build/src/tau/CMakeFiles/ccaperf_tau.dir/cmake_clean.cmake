file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_tau.dir/profile.cpp.o"
  "CMakeFiles/ccaperf_tau.dir/profile.cpp.o.d"
  "CMakeFiles/ccaperf_tau.dir/registry.cpp.o"
  "CMakeFiles/ccaperf_tau.dir/registry.cpp.o.d"
  "libccaperf_tau.a"
  "libccaperf_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
