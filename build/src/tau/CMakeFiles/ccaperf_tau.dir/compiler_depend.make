# Empty compiler generated dependencies file for ccaperf_tau.
# This may be replaced when dependencies are built.
