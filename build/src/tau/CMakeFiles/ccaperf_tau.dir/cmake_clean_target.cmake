file(REMOVE_RECURSE
  "libccaperf_tau.a"
)
