
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tau/profile.cpp" "src/tau/CMakeFiles/ccaperf_tau.dir/profile.cpp.o" "gcc" "src/tau/CMakeFiles/ccaperf_tau.dir/profile.cpp.o.d"
  "/root/repo/src/tau/registry.cpp" "src/tau/CMakeFiles/ccaperf_tau.dir/registry.cpp.o" "gcc" "src/tau/CMakeFiles/ccaperf_tau.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hwc/CMakeFiles/ccaperf_hwc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
