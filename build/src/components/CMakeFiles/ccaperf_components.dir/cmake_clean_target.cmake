file(REMOVE_RECURSE
  "libccaperf_components.a"
)
