file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_components.dir/app_assembly.cpp.o"
  "CMakeFiles/ccaperf_components.dir/app_assembly.cpp.o.d"
  "libccaperf_components.a"
  "libccaperf_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
