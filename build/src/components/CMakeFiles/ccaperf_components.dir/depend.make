# Empty dependencies file for ccaperf_components.
# This may be replaced when dependencies are built.
