file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_core.dir/cache_model.cpp.o"
  "CMakeFiles/ccaperf_core.dir/cache_model.cpp.o.d"
  "CMakeFiles/ccaperf_core.dir/dual_graph.cpp.o"
  "CMakeFiles/ccaperf_core.dir/dual_graph.cpp.o.d"
  "CMakeFiles/ccaperf_core.dir/instrumented_app.cpp.o"
  "CMakeFiles/ccaperf_core.dir/instrumented_app.cpp.o.d"
  "CMakeFiles/ccaperf_core.dir/mastermind.cpp.o"
  "CMakeFiles/ccaperf_core.dir/mastermind.cpp.o.d"
  "CMakeFiles/ccaperf_core.dir/modeling.cpp.o"
  "CMakeFiles/ccaperf_core.dir/modeling.cpp.o.d"
  "CMakeFiles/ccaperf_core.dir/optimizer.cpp.o"
  "CMakeFiles/ccaperf_core.dir/optimizer.cpp.o.d"
  "libccaperf_core.a"
  "libccaperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
