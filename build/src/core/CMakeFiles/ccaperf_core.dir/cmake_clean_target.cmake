file(REMOVE_RECURSE
  "libccaperf_core.a"
)
