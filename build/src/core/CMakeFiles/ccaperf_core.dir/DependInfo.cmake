
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache_model.cpp" "src/core/CMakeFiles/ccaperf_core.dir/cache_model.cpp.o" "gcc" "src/core/CMakeFiles/ccaperf_core.dir/cache_model.cpp.o.d"
  "/root/repo/src/core/dual_graph.cpp" "src/core/CMakeFiles/ccaperf_core.dir/dual_graph.cpp.o" "gcc" "src/core/CMakeFiles/ccaperf_core.dir/dual_graph.cpp.o.d"
  "/root/repo/src/core/instrumented_app.cpp" "src/core/CMakeFiles/ccaperf_core.dir/instrumented_app.cpp.o" "gcc" "src/core/CMakeFiles/ccaperf_core.dir/instrumented_app.cpp.o.d"
  "/root/repo/src/core/mastermind.cpp" "src/core/CMakeFiles/ccaperf_core.dir/mastermind.cpp.o" "gcc" "src/core/CMakeFiles/ccaperf_core.dir/mastermind.cpp.o.d"
  "/root/repo/src/core/modeling.cpp" "src/core/CMakeFiles/ccaperf_core.dir/modeling.cpp.o" "gcc" "src/core/CMakeFiles/ccaperf_core.dir/modeling.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/ccaperf_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/ccaperf_core.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cca/CMakeFiles/ccaperf_cca.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/ccaperf_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/components/CMakeFiles/ccaperf_components.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccaperf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/euler/CMakeFiles/ccaperf_euler.dir/DependInfo.cmake"
  "/root/repo/build/src/hwc/CMakeFiles/ccaperf_hwc.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/ccaperf_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/ccaperf_mpp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
