# Empty dependencies file for ccaperf_core.
# This may be replaced when dependencies are built.
