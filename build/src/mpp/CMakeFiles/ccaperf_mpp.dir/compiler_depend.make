# Empty compiler generated dependencies file for ccaperf_mpp.
# This may be replaced when dependencies are built.
