file(REMOVE_RECURSE
  "libccaperf_mpp.a"
)
