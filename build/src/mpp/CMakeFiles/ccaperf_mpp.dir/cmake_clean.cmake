file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_mpp.dir/comm.cpp.o"
  "CMakeFiles/ccaperf_mpp.dir/comm.cpp.o.d"
  "CMakeFiles/ccaperf_mpp.dir/fabric.cpp.o"
  "CMakeFiles/ccaperf_mpp.dir/fabric.cpp.o.d"
  "CMakeFiles/ccaperf_mpp.dir/runtime.cpp.o"
  "CMakeFiles/ccaperf_mpp.dir/runtime.cpp.o.d"
  "libccaperf_mpp.a"
  "libccaperf_mpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_mpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
