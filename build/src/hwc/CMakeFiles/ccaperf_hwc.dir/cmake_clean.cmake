file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_hwc.dir/cache_sim.cpp.o"
  "CMakeFiles/ccaperf_hwc.dir/cache_sim.cpp.o.d"
  "libccaperf_hwc.a"
  "libccaperf_hwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_hwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
