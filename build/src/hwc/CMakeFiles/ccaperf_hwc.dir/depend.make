# Empty dependencies file for ccaperf_hwc.
# This may be replaced when dependencies are built.
