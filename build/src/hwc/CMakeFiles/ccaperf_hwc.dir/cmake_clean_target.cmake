file(REMOVE_RECURSE
  "libccaperf_hwc.a"
)
