file(REMOVE_RECURSE
  "libccaperf_cca.a"
)
