file(REMOVE_RECURSE
  "CMakeFiles/ccaperf_cca.dir/framework.cpp.o"
  "CMakeFiles/ccaperf_cca.dir/framework.cpp.o.d"
  "libccaperf_cca.a"
  "libccaperf_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccaperf_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
