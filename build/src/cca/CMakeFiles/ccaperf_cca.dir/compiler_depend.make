# Empty compiler generated dependencies file for ccaperf_cca.
# This may be replaced when dependencies are built.
