# Empty compiler generated dependencies file for assembly_optimizer.
# This may be replaced when dependencies are built.
