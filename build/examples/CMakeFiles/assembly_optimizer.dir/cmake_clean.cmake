file(REMOVE_RECURSE
  "CMakeFiles/assembly_optimizer.dir/assembly_optimizer.cpp.o"
  "CMakeFiles/assembly_optimizer.dir/assembly_optimizer.cpp.o.d"
  "assembly_optimizer"
  "assembly_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembly_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
