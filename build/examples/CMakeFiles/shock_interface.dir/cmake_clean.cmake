file(REMOVE_RECURSE
  "CMakeFiles/shock_interface.dir/shock_interface.cpp.o"
  "CMakeFiles/shock_interface.dir/shock_interface.cpp.o.d"
  "shock_interface"
  "shock_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shock_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
