# Empty compiler generated dependencies file for shock_interface.
# This may be replaced when dependencies are built.
