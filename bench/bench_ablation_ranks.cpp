// Ablation — rank scaling of the mpp fabric (DESIGN.md §10).
//
// The paper's cluster study stops at a handful of processors; the fabric's
// flat collectives and per-pair delivery state were the pieces whose cost
// grew superlinearly with rank count. This bench sweeps in-process world
// sizes 2..256 over a fig01-style step loop — ring ghost exchange, a dt
// allreduce, a barrier, a periodic allgatherv — and reports, per size:
//
//   * step_us        per-step wall time on rank 0 (the gated series; on an
//                    oversubscribed box wall time ~ total work / cores, so
//                    its log-log slope exposes the collective complexity);
//   * collective_us  per-step time rank 0 spends inside collectives;
//   * p2p_wait_us    per-step time rank 0 spends waiting on ghost messages
//                    (the fabric progress cost of the loop).
//
// Weak scaling holds per-rank payloads fixed; strong scaling divides a
// fixed total payload across ranks. A micro section times the tree
// barrier/allgather against the retained flat-bay path at 64 ranks.
//
// Gating (scripts/bench_gate.py vs bench/baselines/ranks.json): on an
// oversubscribed single-core runner wall time equals serialized total
// work, so the weak series inherently measures the tree's n*log(n) hop
// total — exponent ~1.4 — while the strong series (the paper's fig01
// regime: fixed problem, more ranks) stays near 1.2. The strong exponent
// is gated at baseline 1.2 (fails past 1.5 at the default 25% tolerance);
// the weak exponent is gated at its measured level as a trend detector,
// and this binary additionally hard-fails if either exponent reaches the
// flat-collective regime (strong > 1.5, weak > 1.8): the retired O(n^2)
// path measured ~1.9 weak and cannot pass.
//
// Results land in bench_out/ranks.json.
//
// Environment: CCAPERF_STEPS (default 12), CCAPERF_BENCH_RANKS_MAX
// (default 256, lowered for smoke runs).

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "bench_common.hpp"

namespace {

int env_int(const char* name, int fallback, int lo) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::max(lo, std::atoi(v));
}

struct StepCost {
  double step_us = 0.0;        ///< wall per step, rank 0
  double collective_us = 0.0;  ///< in-collective per step, rank 0
  double p2p_wait_us = 0.0;    ///< ghost-wait per step, rank 0
};

/// One measured run of the fig01-style loop at `nranks`. `ghost_bytes` is
/// the per-neighbor message size, `gatherv_elems` the per-rank allgatherv
/// contribution (both already scaled by the caller for weak vs strong).
/// Small worlds run proportionally more steps: their per-step time is
/// microseconds, so without the extra averaging the fit's low anchor —
/// and with it the gated exponent — would be timer-noise-bound.
StepCost step_loop(int nranks, int steps, std::size_t ghost_bytes,
                   std::size_t gatherv_elems) {
  steps *= std::max(1, 64 / nranks);
  StepCost out;
  mpp::Runtime::run(nranks, mpp::NetworkModel::null_model(),
                    [&](mpp::Comm& world) {
    const int n = world.size();
    const int next = (world.rank() + 1) % n;
    const int prev = (world.rank() + n - 1) % n;
    std::vector<std::byte> ghost_out(ghost_bytes), ghost_in(ghost_bytes);
    const auto nz = static_cast<std::size_t>(n);
    std::vector<std::size_t> counts(nz, gatherv_elems);
    std::vector<long> mine(gatherv_elems, world.rank());
    std::vector<long> all(gatherv_elems * nz);

    double collective_us = 0.0, wait_us = 0.0;
    auto one_step = [&](int step) {
      // Ghost exchange with both ring neighbors.
      mpp::Request rr = world.irecv_bytes(ghost_in.data(), ghost_bytes, prev,
                                          step);
      mpp::Request sr = world.isend_bytes(ghost_out.data(), ghost_bytes, next,
                                          step);
      const double w0 = world.wtime();
      rr.wait();
      sr.wait();
      wait_us += (world.wtime() - w0) * 1e6;
      // dt reduction + step barrier, plus a periodic regrid-style gatherv.
      const double c0 = world.wtime();
      (void)world.allreduce_value<mpp::MinOp<double>>(1.0 + world.rank());
      world.barrier();
      if (step % 4 == 0) world.allgatherv<long>(mine, all, counts);
      collective_us += (world.wtime() - c0) * 1e6;
    };

    one_step(-4);  // warm-up (allocates pools, first-touch)
    // Best of three measured blocks: scheduler contention on an
    // oversubscribed box only ever adds time, so the minimum is the
    // stable estimate of the fabric's own cost.
    StepCost best;
    best.step_us = std::numeric_limits<double>::max();
    for (int block = 0; block < 5; ++block) {
      collective_us = wait_us = 0.0;
      world.barrier();
      const double t0 = world.wtime();
      for (int step = 0; step < steps; ++step) one_step(step);
      const double t1 = world.wtime();
      const double wall = (t1 - t0) * 1e6 / steps;
      if (wall < best.step_us) {
        best.step_us = wall;
        best.collective_us = collective_us / steps;
        best.p2p_wait_us = wait_us / steps;
      }
    }
    if (world.rank() == 0) out = best;
  });
  return out;
}

/// Least-squares slope of ln(us) against ln(ranks).
double loglog_exponent(const std::vector<int>& ranks,
                       const std::vector<double>& us) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(ranks.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const double x = std::log(static_cast<double>(ranks[i]));
    const double y = std::log(std::max(us[i], 1e-3));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

/// Mean per-call time of tree vs flat barrier and allgather at `nranks`.
struct MicroResult {
  double barrier_tree_us = 0, barrier_flat_us = 0;
  double allgather_tree_us = 0, allgather_flat_us = 0;
};

MicroResult micro_tree_vs_flat(int nranks, int reps) {
  MicroResult out;
  mpp::Runtime::run(nranks, mpp::NetworkModel::null_model(),
                    [&](mpp::Comm& world) {
    const auto nz = static_cast<std::size_t>(world.size());
    std::vector<long> mine(64, world.rank());
    std::vector<long> all(64 * nz);
    auto timed = [&](auto&& op) {
      op();  // warm-up
      world.barrier();
      const double t0 = world.wtime();
      for (int r = 0; r < reps; ++r) op();
      return (world.wtime() - t0) * 1e6 / reps;
    };
    const double bt = timed([&] { world.barrier(); });
    const double bf = timed([&] { world.barrier_flat(); });
    const double gt = timed([&] { world.allgather<long>(mine, all); });
    const double gf = timed([&] {
      world.allgather_bytes_flat(mine.data(), mine.size() * sizeof(long),
                                 all.data());
    });
    if (world.rank() == 0) {
      out.barrier_tree_us = bt;
      out.barrier_flat_us = bf;
      out.allgather_tree_us = gt;
      out.allgather_flat_us = gf;
    }
  });
  return out;
}

}  // namespace

int main() {
  const int steps = env_int("CCAPERF_STEPS", 12, 2);
  const int max_ranks = env_int("CCAPERF_BENCH_RANKS_MAX", 256, 2);
  std::vector<int> sweep;
  for (int n : {2, 8, 32, 64, 128, 256})
    if (n <= max_ranks) sweep.push_back(n);

  std::cout << "Ablation: fabric rank scaling — fig01-style step loop, "
            << steps << " steps, ranks up to " << sweep.back() << "\n\n";

  // Weak scaling: fixed per-rank payloads (4 KiB ghosts, 64-element
  // gatherv chunk) — total traffic grows with the world.
  std::vector<double> weak_us;
  std::vector<bench::JsonEntry> json;
  ccaperf::TextTable weak_t;
  weak_t.set_header({"ranks", "step [us]", "collective [us]", "p2p wait [us]"});
  for (int n : sweep) {
    const StepCost c = step_loop(n, steps, 4096, 64);
    weak_us.push_back(c.step_us);
    weak_t.add_row({std::to_string(n), ccaperf::fmt_double(c.step_us, 5),
                    ccaperf::fmt_double(c.collective_us, 5),
                    ccaperf::fmt_double(c.p2p_wait_us, 5)});
    const std::string suffix = "_n" + std::to_string(n);
    json.push_back({"weak", "step_us" + suffix, c.step_us});
    json.push_back({"weak", "collective_us" + suffix, c.collective_us});
    json.push_back({"weak", "p2p_wait_us" + suffix, c.p2p_wait_us});
  }
  const double weak_exp = loglog_exponent(sweep, weak_us);
  std::cout << "weak scaling (per-rank payload fixed):\n";
  weak_t.render(std::cout);
  std::cout << "weak log-log exponent: " << ccaperf::fmt_double(weak_exp, 3)
            << "  (1 = linear total work; flat collectives trend to 2)\n\n";

  // Strong scaling: fixed totals (128 KiB of ghost traffic, 8192 gatherv
  // elements) divided across ranks.
  std::vector<double> strong_us;
  ccaperf::TextTable strong_t;
  strong_t.set_header({"ranks", "step [us]", "collective [us]", "p2p wait [us]"});
  for (int n : sweep) {
    const auto nz = static_cast<std::size_t>(n);
    const StepCost c =
        step_loop(n, steps, (128 * 1024) / nz, std::max<std::size_t>(1, 8192 / nz));
    strong_us.push_back(c.step_us);
    strong_t.add_row({std::to_string(n), ccaperf::fmt_double(c.step_us, 5),
                      ccaperf::fmt_double(c.collective_us, 5),
                      ccaperf::fmt_double(c.p2p_wait_us, 5)});
    json.push_back({"strong", "step_us_n" + std::to_string(n), c.step_us});
  }
  const double strong_exp = loglog_exponent(sweep, strong_us);
  std::cout << "strong scaling (total payload fixed):\n";
  strong_t.render(std::cout);
  std::cout << "strong log-log exponent: "
            << ccaperf::fmt_double(strong_exp, 3) << "\n\n";

  // Tree vs the retained flat-bay path at the largest common size.
  const int micro_n = std::min(64, sweep.back());
  const MicroResult micro = micro_tree_vs_flat(micro_n, 8);
  std::cout << "tree vs flat at " << micro_n << " ranks (us/call):\n";
  ccaperf::TextTable micro_t;
  micro_t.set_header({"collective", "tree", "flat bay"});
  micro_t.add_row({"barrier", ccaperf::fmt_double(micro.barrier_tree_us, 5),
                   ccaperf::fmt_double(micro.barrier_flat_us, 5)});
  micro_t.add_row({"allgather 512B",
                   ccaperf::fmt_double(micro.allgather_tree_us, 5),
                   ccaperf::fmt_double(micro.allgather_flat_us, 5)});
  micro_t.render(std::cout);

  bench::print_comparison(
      "fabric rank scaling",
      {
          {"scalability limit", "communication limits scaling (paper §5)",
           "weak exponent " + ccaperf::fmt_double(weak_exp, 3) + " at " +
               std::to_string(sweep.back()) + " ranks"},
          {"collective structure", "O(log P) tree rounds",
           "gated: strong exponent " + ccaperf::fmt_double(strong_exp, 3) +
               " stays below 1.5"},
      });

  json.push_back({"fit", "weak_exponent", weak_exp});
  json.push_back({"fit", "strong_exponent", strong_exp});
  json.push_back({"micro", "barrier_tree_us", micro.barrier_tree_us});
  json.push_back({"micro", "barrier_flat_us", micro.barrier_flat_us});
  json.push_back({"micro", "allgather_tree_us", micro.allgather_tree_us});
  json.push_back({"micro", "allgather_flat_us", micro.allgather_flat_us});
  bench::write_bench_json("bench_out/ranks.json", json);

  if (strong_exp > 1.5 || weak_exp > 1.8) {
    std::cout << "RANK SCALING REGRESSION: strong exponent "
              << ccaperf::fmt_double(strong_exp, 3) << " (limit 1.5), weak "
              << ccaperf::fmt_double(weak_exp, 3) << " (limit 1.8)\n";
    return 1;
  }
  return 0;
}
