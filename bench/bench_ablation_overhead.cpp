// Ablation — instrumentation overhead (google-benchmark).
//
// Quantifies the paper's claims that (a) "a method invocation on a
// UsesPort incurs a virtual function call overhead" (vs a direct call)
// and (b) "these instrumentation related overheads are small" (proxy +
// Mastermind monitoring per intercepted invocation, which is excluded
// from the recorded kernel timings by construction).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

// -- direct vs port-mediated kernel invocation ------------------------------

struct Fixture {
  euler::GasModel gas;
  amr::Box interior{0, 0, 31, 15};  // before `u`: member-init order matters
  amr::PatchData<double> u;
  euler::Array2 l, r;

  Fixture() : u(bench::workload_patch(interior, gas, 7)) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, euler::Dir::x, nx, ny);
    l = euler::Array2(nx, ny, euler::kNcomp);
    r = euler::Array2(nx, ny, euler::kNcomp);
  }
};

void BM_DirectKernelCall(benchmark::State& state) {
  Fixture f;
  hwc::NullProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        euler::compute_states(f.u, f.interior, euler::Dir::x, f.gas, f.l, f.r, probe));
  }
}
BENCHMARK(BM_DirectKernelCall);

void BM_PortCall(benchmark::State& state) {
  // Same kernel through the CCA uses-port (one virtual dispatch).
  Fixture f;
  bench::KernelRig rig(f.gas);
  auto* direct =
      rig.fw.services("states").provided_as<components::StatesPort>("states");
  for (auto _ : state)
    benchmark::DoNotOptimize(direct->compute(f.u, f.interior, euler::Dir::x, f.l, f.r));
}
BENCHMARK(BM_PortCall);

void BM_ProxiedMonitoredCall(benchmark::State& state) {
  // Through the proxy: virtual dispatch + parameter extraction + Mastermind
  // start/stop with TAU queries.
  Fixture f;
  bench::KernelRig rig(f.gas);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        rig.states->compute(f.u, f.interior, euler::Dir::x, f.l, f.r));
}
BENCHMARK(BM_ProxiedMonitoredCall);

// -- micro costs -------------------------------------------------------------

void BM_VirtualDispatchOnly(benchmark::State& state) {
  struct Iface {
    virtual ~Iface() = default;
    virtual int f(int) = 0;
  };
  struct Impl final : Iface {
    int f(int x) override { return x + 1; }
  };
  Impl impl;
  Iface* p = &impl;
  int v = 0;
  for (auto _ : state) benchmark::DoNotOptimize(v = p->f(v));
}
BENCHMARK(BM_VirtualDispatchOnly);

void BM_TauTimerStartStop(benchmark::State& state) {
  tau::Registry reg;
  const auto t = reg.timer("bench()");
  for (auto _ : state) {
    reg.start(t);
    reg.stop(t);
  }
}
BENCHMARK(BM_TauTimerStartStop);

void BM_MastermindStartStop(benchmark::State& state) {
  // The full per-invocation monitoring cost: params map + two TAU group
  // queries + counter snapshots + record append.
  bench::KernelRig rig{euler::GasModel{}};
  const core::ParamMap params{{"Q", 1024.0}, {"mode", 0.0}};
  auto* monitor = rig.fw.services("mm").provided_as<core::MonitorPort>("monitor");
  for (auto _ : state) {
    monitor->start("bench::m()", params);
    monitor->stop("bench::m()");
  }
}
BENCHMARK(BM_MastermindStartStop);

void BM_GetPortLookup(benchmark::State& state) {
  bench::KernelRig rig{euler::GasModel{}};
  const cca::Services& svc = rig.fw.services("sc_proxy");
  for (auto _ : state)
    benchmark::DoNotOptimize(svc.get_port("states_real"));
}
BENCHMARK(BM_GetPortLookup);

}  // namespace

BENCHMARK_MAIN();
