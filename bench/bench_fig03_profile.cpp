// Fig. 3 — the FUNCTION SUMMARY (mean) profile of the instrumented case
// study: "around 50% of the time is accounted for by g_proxy::compute(),
// sc_proxy::compute() and MPI_Waitsome(). The MPI call is invoked from
// AMRMesh. ... About 25% of the time is spent in MPI_Waitsome()."
//
// Runs the instrumented application on 3 ranks over the modeled cluster
// network and emits the same table (timings averaged over processors).

#include "bench_common.hpp"
#include "components/app_assembly.hpp"
#include "tau/profile.hpp"

int main() {
  constexpr int kRanks = 3;
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = 8;
  cfg.driver.regrid_interval = 4;

  // Moderate network model. Note an inherent bias of the single-CPU
  // substrate: rank threads time-share one core, so while one rank
  // computes its peers' ghost-cell waits accrue as MPI_Waitsome time —
  // the measured MPI share is therefore an upper bound on what dedicated
  // processors (the paper's testbed) would show.
  mpp::NetworkModel net{18.0, 100.0, 0.3, 0x5eed};

  std::vector<std::vector<tau::ProfileRow>> profiles(kRanks);
  mpp::Runtime::run(kRanks, net, [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, cfg);
    tau::Registry& reg = app.registry();
    const auto root = reg.timer("int main(int, char **)");
    reg.start(root);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    reg.stop(root);
    profiles[static_cast<std::size_t>(world.rank())] = tau::profile_rows(reg);
  });

  const auto mean = tau::mean_rows(profiles);
  tau::write_function_summary(std::cout, mean, "mean");

  auto pct = [&](const std::string& name) {
    double total = 0.0, inc = 0.0;
    for (const auto& r : mean) total = std::max(total, r.inclusive_us);
    for (const auto& r : mean)
      if (r.name == name) inc = r.inclusive_us;
    return 100.0 * inc / total;
  };
  const double waitsome = pct("MPI_Waitsome()");
  const double gproxy = pct("g_proxy::compute()");
  const double scproxy = pct("sc_proxy::compute()");

  bench::print_comparison(
      "Fig. 3 (FUNCTION SUMMARY)",
      {
          {"MPI_Waitsome() share", "24.3% (about a quarter)",
           ccaperf::fmt_double(waitsome, 3) +
               "% (upper bound: peers' compute serializes into waits on "
               "one CPU)"},
          {"g_proxy::compute() share", "12.0%",
           ccaperf::fmt_double(gproxy, 3) + "%"},
          {"sc_proxy::compute() share", "10.9%",
           ccaperf::fmt_double(scproxy, 3) + "%"},
          {"top three combined", "~50% of run time",
           ccaperf::fmt_double(waitsome + gproxy + scproxy, 3) + "%"},
          {"profile format", "TAU FUNCTION SUMMARY (mean over ranks)",
           "same layout above"},
      });
  return 0;
}
