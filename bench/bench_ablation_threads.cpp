// Ablation: thread-parallel patch execution (DESIGN.md §9).
//
// Runs the instrumented fig01 simulation twice in-process — CCAPERF_THREADS=1
// and CCAPERF_THREADS=N (default 8) — and reports the step-loop scaling plus
// the two determinism guarantees the threading design makes:
//
//  * physics_equal: the density fields of the serial and threaded runs are
//    bit-identical (every parallel loop partitions pure writes or exact
//    folds, so lane count cannot change a single ulp);
//  * counters_equal: merged measurement totals (timer call counts, monitor
//    record rows, summed Q) match the serial run exactly, and the sharded
//    counted sweeps report identical cache counters at 1 and 3 lanes.
//
// Correctness failures exit nonzero. The speedup itself is reported but not
// gated here: on boxes with fewer cores than lanes (CI runners, this
// container) a 3x target is physically unreachable, so scripts/bench_gate.py
// gates the determinism metrics instead.
//
// Results land in bench_out/threads.json.
//
// Environment: CCAPERF_BENCH_THREADS (default 8), CCAPERF_STEPS (default 8).

#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench_common.hpp"
#include "components/app_assembly.hpp"

namespace {

int env_int(const char* name, int fallback, int lo) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::max(lo, std::atoi(v));
}

struct RunResult {
  double step_ms = 0.0;
  std::vector<double> field;      ///< all local cells, canonical order
  std::uint64_t timer_calls = 0;  ///< merged registry, all timers
  std::uint64_t record_rows = 0;  ///< monitor rows across proxy records
  double q_sum = 0.0;             ///< summed Q over those rows
};

/// One single-rank instrumented fig01 run at the given lane count. Each
/// call spawns a fresh rank thread, so the rank pool re-reads
/// CCAPERF_THREADS.
RunResult run_fig01(int threads, int steps) {
  setenv("CCAPERF_THREADS", std::to_string(threads).c_str(), 1);
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = steps;
  cfg.driver.regrid_interval = 3;

  RunResult res;
  mpp::Runtime::run(1, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    core::InstrumentedApp app = core::assemble_instrumented_app(world, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    res.step_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    // Canonical field dump: levels outer, patch ids ascending (map order),
    // then (c, j, i) — identical layout for any lane count.
    auto* mesh =
        app.fw().services("driver").get_port_as<components::MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();
    for (int l = 0; l < h.num_levels(); ++l) {
      for (auto& [id, data] : h.level(l).local_data()) {
        const amr::Box box = h.level(l).patch(id).box;
        for (int c = 0; c < euler::kNcomp; ++c)
          for (int j = box.lo().j; j <= box.hi().j; ++j)
            for (int i = box.lo().i; i <= box.hi().i; ++i)
              res.field.push_back(data(i, j, c));
      }
    }

    // Merged measurement totals (worker shards have been folded into the
    // primary registry at region ends).
    const tau::Registry& reg = app.registry();
    for (std::size_t id = 0; id < reg.num_timers(); ++id)
      res.timer_calls += reg.calls(static_cast<tau::TimerId>(id));
    for (const char* key :
         {"sc_proxy::compute()", "efm_proxy::compute()", "g_proxy::compute()",
          "icc_proxy::ghost_update()", "icc_proxy::regrid()"}) {
      const core::Record* rec = app.mastermind->record(key);
      if (rec == nullptr) continue;
      for (const core::Invocation& inv : rec->invocations()) {
        ++res.record_rows;
        auto it = inv.params.find("Q");
        if (it != inv.params.end()) res.q_sum += it->second;
      }
    }
  });
  return res;
}

/// Counted-sweep lane invariance on one synthetic patch (the unit the
/// deterministic hardware metrics are built from).
bool counted_sweeps_invariant() {
  const euler::GasModel gas;
  const amr::Box interior{0, 0, 63, 47};
  const auto u = bench::workload_patch(interior, gas, 0xabcd);
  bool ok = true;
  for (euler::Dir dir : {euler::Dir::x, euler::Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
    euler::Array2 flux(nx, ny, euler::kNcomp);

    ccaperf::ThreadPool pool1(1), pool3(3);
    auto run = [&](ccaperf::ThreadPool& pool) {
      struct {
        euler::CountedSweep states, efm, god;
      } out;
      out.states =
          euler::compute_states_counted(pool, u, interior, dir, gas, l, r);
      out.efm = euler::efm_flux_sweep_counted(pool, l, r, dir, gas, flux);
      out.god = euler::godunov_flux_sweep_counted(pool, l, r, dir, gas, flux);
      return out;
    };
    const auto a = run(pool1);
    const auto b = run(pool3);
    for (auto [x, y] : {std::pair{a.states, b.states},
                        {a.efm, b.efm},
                        {a.god, b.god}}) {
      ok = ok && x.kernel.faces == y.kernel.faces &&
           x.kernel.riemann_iterations == y.kernel.riemann_iterations &&
           x.probe.loads == y.probe.loads && x.probe.stores == y.probe.stores &&
           x.probe.flops == y.probe.flops && x.l1_misses == y.l1_misses &&
           x.l2_misses == y.l2_misses;
    }
  }
  return ok;
}

}  // namespace

int main() {
  const int threads = env_int("CCAPERF_BENCH_THREADS", 8, 2);
  const int steps = env_int("CCAPERF_STEPS", 8, 1);
  const unsigned hw = std::thread::hardware_concurrency();

  std::cout << "Ablation: thread-parallel patch execution — fig01 step loop, "
            << steps << " steps, 1 rank, " << threads
            << " lanes (hardware_concurrency = " << hw << ")\n\n";

  const RunResult serial = run_fig01(1, steps);
  const RunResult mt = run_fig01(threads, steps);

  const bool physics_equal = serial.field == mt.field;
  const bool monitor_equal = serial.timer_calls == mt.timer_calls &&
                             serial.record_rows == mt.record_rows &&
                             serial.q_sum == mt.q_sum;
  const bool sweeps_equal = counted_sweeps_invariant();
  const bool counters_equal = monitor_equal && sweeps_equal;
  const double speedup = mt.step_ms > 0.0 ? serial.step_ms / mt.step_ms : 0.0;
  const double efficiency = speedup / threads;

  ccaperf::TextTable t;
  t.set_header({"quantity", "serial", std::to_string(threads) + " lanes"});
  t.add_row({"step loop [ms]", ccaperf::fmt_double(serial.step_ms, 5),
             ccaperf::fmt_double(mt.step_ms, 5)});
  t.add_row({"timer calls", std::to_string(serial.timer_calls),
             std::to_string(mt.timer_calls)});
  t.add_row({"monitor rows", std::to_string(serial.record_rows),
             std::to_string(mt.record_rows)});
  t.add_row({"summed Q", ccaperf::fmt_double(serial.q_sum, 12),
             ccaperf::fmt_double(mt.q_sum, 12)});
  t.render(std::cout);
  std::cout << "\nspeedup: " << ccaperf::fmt_double(speedup, 2) << "x ("
            << ccaperf::fmt_double(100.0 * efficiency, 1)
            << "% efficiency)\nphysics bit-identical: "
            << (physics_equal ? "yes" : "NO")
            << "\nmerged counters equal:  " << (counters_equal ? "yes" : "NO")
            << '\n';
  if (hw < static_cast<unsigned>(threads))
    std::cout << "note: only " << hw << " hardware threads — speedup is not "
              << "meaningful on this box (correctness checks still hold)\n";

  bench::print_comparison(
      "threaded patch execution",
      {
          {"thread-count invariance", "merged view equals serial",
           physics_equal && counters_equal ? "bit-equal fields + counters"
                                           : "MISMATCH"},
          {"step-loop scaling", "near-linear on idle cores",
           ccaperf::fmt_double(speedup, 2) + "x on " + std::to_string(threads) +
               " lanes / " + std::to_string(hw) + " cores"},
      });

  bench::write_bench_json("bench_out/threads.json",
             {
                 {"fig01_step_loop", "serial_ms", serial.step_ms},
                 {"fig01_step_loop", "threaded_ms", mt.step_ms},
                 {"fig01_step_loop", "speedup", speedup},
                 {"fig01_step_loop", "efficiency", efficiency},
                 {"fig01_step_loop", "physics_equal", physics_equal ? 1.0 : 0.0},
                 {"fig01_step_loop", "counters_equal",
                  counters_equal ? 1.0 : 0.0},
                 {"pool", "threads", static_cast<double>(threads)},
                 {"pool", "hardware_concurrency", static_cast<double>(hw)},
             });

  if (!physics_equal || !counters_equal) {
    std::cout << "THREAD DETERMINISM FAILED\n";
    return 1;
  }
  return 0;
}
