// Fig. 2 — "Snapshot of the component application, as assembled for
// execution. We see three proxies (for AMRMesh, EFMFlux and States), as
// well as the TauMeasurement and Mastermind components."
//
// Prints the wiring diagram of both the plain and the instrumented
// assembly, plus GraphViz dot output.

#include "bench_common.hpp"
#include "components/app_assembly.hpp"

int main() {
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.flux_impl = "EFMFlux";  // the figure shows the EFMFlux variant

  std::size_t plain_nodes = 0, inst_nodes = 0, proxies = 0;
  mpp::Runtime::run(1, [&](mpp::Comm& world) {
    {
      auto fw = components::assemble_app(world, cfg);
      const auto w = fw->wiring();
      plain_nodes = w.nodes.size();
      std::cout << "=== plain assembly ===\n";
      w.print(std::cout);
    }
    {
      auto app = core::assemble_instrumented_app(world, cfg);
      const auto w = app.fw().wiring();
      inst_nodes = w.nodes.size();
      std::cout << "\n=== instrumented assembly (Fig. 2) ===\n";
      w.print(std::cout);
      std::cout << "\nGraphViz:\n" << w.to_dot();
      for (const auto& n : w.nodes)
        if (n.instance.find("proxy") != std::string::npos) ++proxies;
    }
  });

  bench::print_comparison(
      "Fig. 2 (component wiring)",
      {
          {"proxies interposed", "3 (AMRMesh, EFMFlux, States)",
           std::to_string(proxies)},
          {"PMM components", "TauMeasurement + Mastermind",
           std::to_string(inst_nodes - plain_nodes - proxies) +
               " added beyond proxies"},
          {"application unchanged", "proxies share the component interfaces",
           "wiring redirected only (see diagram)"},
      });
  return 0;
}
