// Ablation — communication cost structure of the ghost-cell update.
//
// The paper attributes ~25% of run time to MPI_Waitsome driven by
// AMRMesh's ghost updates, with scatter from "fluctuating network loads".
// This bench isolates the exchange: ghost-update wall time vs (a) the
// network model (none / latency-only / the classic-cluster model with
// jitter) and (b) the patch count per rank (message fan-out). It also
// counts the messages and bytes one update moves — a deterministic series
// (the decomposition is a pure function of the mesh) that
// scripts/bench_gate.py gates via bench/baselines/comm.json, so a change
// that silently multiplies ghost traffic fails CI even on a noisy runner.
//
// Results land in bench_out/comm.json.

#include <atomic>

#include "bench_common.hpp"

namespace {

/// Mean ghost-update wall time (us) for a tiled level on 3 ranks.
double exchange_us(int tiles_per_side, const mpp::NetworkModel& net, int reps) {
  std::vector<double> out(3, 0.0);
  mpp::Runtime::run(3, net, [&](mpp::Comm& world) {
    amr::HierarchyConfig cfg;
    const int cells = tiles_per_side * 16;
    cfg.domain = amr::Box{0, 0, cells - 1, cells - 1};
    cfg.max_levels = 1;
    cfg.ncomp = euler::kNcomp;
    cfg.level0_patch_size = 16;
    cfg.geom = amr::Geometry{0.0, 0.0, 1.0 / cells, 1.0 / cells};
    amr::Hierarchy h(world, cfg);
    h.init_level0();
    for (auto& [id, data] : h.level(0).local_data()) data.fill(1.0);

    h.exchange_and_bc(0, amr::BcSpec{});  // warm-up
    const double t0 = world.wtime();
    for (int rep = 0; rep < reps; ++rep) h.exchange_and_bc(0, amr::BcSpec{});
    const double t1 = world.wtime();
    const double mine = (t1 - t0) * 1e6 / reps;
    out[static_cast<std::size_t>(world.rank())] =
        world.allreduce_value<mpp::MaxOp<double>>(mine);
  });
  return out[0];
}

/// Counts sent messages/bytes on the installing rank.
struct SendCounter : mpp::CommHooks {
  void on_begin(const char*) override {}
  void on_end(const char*, std::size_t) override {}
  void on_message_send(const mpp::MsgEvent& e) override {
    ++msgs;
    bytes += e.bytes;
  }
  std::uint64_t msgs = 0, bytes = 0;
};

/// Messages and payload bytes one ghost update moves across all 3 ranks.
std::pair<std::uint64_t, std::uint64_t> exchange_traffic(int tiles_per_side) {
  std::atomic<std::uint64_t> msgs{0}, bytes{0};
  mpp::Runtime::run(3, [&](mpp::Comm& world) {
    amr::HierarchyConfig cfg;
    const int cells = tiles_per_side * 16;
    cfg.domain = amr::Box{0, 0, cells - 1, cells - 1};
    cfg.max_levels = 1;
    cfg.ncomp = euler::kNcomp;
    cfg.level0_patch_size = 16;
    cfg.geom = amr::Geometry{0.0, 0.0, 1.0 / cells, 1.0 / cells};
    amr::Hierarchy h(world, cfg);
    h.init_level0();
    for (auto& [id, data] : h.level(0).local_data()) data.fill(1.0);
    h.exchange_and_bc(0, amr::BcSpec{});  // warm-up / settle
    SendCounter sc;
    mpp::HooksInstaller install(&sc);
    h.exchange_and_bc(0, amr::BcSpec{});
    msgs += sc.msgs;
    bytes += sc.bytes;
  });
  return {msgs.load(), bytes.load()};
}

}  // namespace

int main() {
  mpp::NetworkModel latency_only;
  latency_only.latency_us = 60.0;
  const std::vector<std::pair<const char*, mpp::NetworkModel>> nets{
      {"no network model", mpp::NetworkModel::null_model()},
      {"latency 60us", latency_only},
      {"classic cluster (latency+bw+jitter)", mpp::NetworkModel::classic_cluster()},
  };

  std::cout << "Ablation: level ghost-update time (us, max over 3 ranks)\n\n";
  std::vector<bench::JsonEntry> json;
  ccaperf::TextTable t;
  t.set_header({"tiles", "patches", "msgs", "bytes", "no net", "latency",
                "classic cluster", "classic/none"});
  for (int tiles : {2, 4, 6, 8}) {
    std::vector<double> us;
    for (const auto& [name, net] : nets) us.push_back(exchange_us(tiles, net, 4));
    const auto [msgs, bytes] = exchange_traffic(tiles);
    t.add_row({std::to_string(tiles) + "x" + std::to_string(tiles),
               std::to_string(tiles * tiles), std::to_string(msgs),
               std::to_string(bytes), ccaperf::fmt_double(us[0], 5),
               ccaperf::fmt_double(us[1], 5), ccaperf::fmt_double(us[2], 5),
               ccaperf::fmt_double(us[2] / std::max(1.0, us[0]), 3)});
    const std::string suffix = "_" + std::to_string(tiles) + "x" +
                               std::to_string(tiles);
    json.push_back({"ghost_update", "msgs" + suffix,
                    static_cast<double>(msgs)});
    json.push_back({"ghost_update", "bytes" + suffix,
                    static_cast<double>(bytes)});
    json.push_back({"ghost_update", "no_net_us" + suffix, us[0]});
    json.push_back({"ghost_update", "classic_us" + suffix, us[2]});
  }
  t.render(std::cout);
  bench::write_bench_json("bench_out/comm.json", json);

  bench::print_comparison(
      "communication ablation",
      {
          {"comm cost dominated by network, not copies",
           "MPI waits dominate AMRMesh methods",
           "classic-cluster column >> no-net column"},
          {"fan-out scaling", "more patches -> more ghost traffic per update",
           "bytes grow down the tiles column; messages stay coalesced "
           "per neighbor (gated series)"},
      });
  return 0;
}
