// Fig. 6 + Eq. 1/2 — States performance model: the paper fits
// T = exp(1.19 log(Q) - 3.68) us for the mean and an exponential for the
// (large, dual-mode-driven) standard deviation.

#include "bench_models.hpp"

int main() {
  return bench::run_model_bench(bench::ModelBenchSpec{
      "Fig. 6",
      "States",
      "states",
      "T = exp(1.19 log(Q) - 3.68)  [us]",
      "sigma = exp(1.29 + k Q)",
      "large (dual sequential/strided mode mixed into the mean)",
      2,
      "fig06_states_model.csv",
  });
}
