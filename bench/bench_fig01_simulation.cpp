// Fig. 1 — the case study itself: "The density field plotted for a Mach
// 1.5 shock interacting with an interface between Air and Freon. The
// simulation was run on a 3-level grid hierarchy" with refinement factor
// 2 (purple level 0, red level 1, blue level 2).
//
// Runs the simulation on 3 SCMD ranks, prints the hierarchy census (the
// structure the figure draws) and density-field statistics, and writes
// the level-0 density field + patch boxes to CSV for plotting.
//
// Environment switches (all optional):
//   CCAPERF_RANKS / CCAPERF_STEPS  override the 3-rank / 8-step default
//                                  (the tier-1 trace smoke uses 2 ranks).
//   CCAPERF_TRACE                  run the *instrumented* assembly with
//     per-rank ring-buffer tracing and live telemetry, then merge the
//     rank traces into a Chrome-trace / Perfetto JSON file ("1" = on,
//     anything else = output path; see core/trace_export.hpp). Telemetry
//     lands in telemetry.rank<r>.jsonl. The process exits nonzero if the
//     merged trace is unbalanced or a retained message endpoint failed to
//     flow-match, so CI can gate on it.
//   CCAPERF_TRACE_EVENTS           per-rank ring capacity in events.

#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "components/app_assembly.hpp"
#include "core/trace_export.hpp"

namespace {

int env_int(const char* name, int fallback, int lo) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::max(lo, std::atoi(v));
}

}  // namespace

int main() {
  const core::TraceEnv trace = core::trace_env();
  const int ranks = env_int("CCAPERF_RANKS", 3, 1);
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = env_int("CCAPERF_STEPS", 8, 1);
  cfg.driver.regrid_interval = 3;

  struct LevelCensus {
    int patches = 0;
    long cells = 0;
    double coverage = 0.0;
  };
  std::vector<LevelCensus> census;
  double rho_min = 0.0, rho_max = 0.0, sim_time = 0.0;
  int nlevels = 0;
  core::TraceMerger merger;
  mpp::FaultStats faults;  // captured by rank 0 while the fabric is alive

  // Everything after go(): census, field dump, the paper-figure CSVs.
  auto report = [&](cca::Framework& fw, mpp::Comm& world) {
    auto* mesh = fw.services("driver").get_port_as<components::MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();

    double lo = 1e300, hi = -1e300;
    for (int l = 0; l < h.num_levels(); ++l) {
      for (auto& [id, data] : h.level(l).local_data()) {
        const amr::Box box = h.level(l).patch(id).box;
        for (int j = box.lo().j; j <= box.hi().j; ++j)
          for (int i = box.lo().i; i <= box.hi().i; ++i) {
            lo = std::min(lo, data(i, j, euler::kRho));
            hi = std::max(hi, data(i, j, euler::kRho));
          }
      }
    }
    lo = world.allreduce_value<mpp::MinOp<double>>(lo);
    hi = world.allreduce_value<mpp::MaxOp<double>>(hi);

    if (world.rank() == 0) {
      nlevels = h.num_levels();
      rho_min = lo;
      rho_max = hi;
      auto* driver =
          dynamic_cast<components::ShockDriverComponent*>(&fw.component("driver"));
      sim_time = driver->time();
      census.resize(static_cast<std::size_t>(h.num_levels()));
      for (int l = 0; l < h.num_levels(); ++l) {
        census[static_cast<std::size_t>(l)].patches =
            static_cast<int>(h.level(l).patches().size());
        census[static_cast<std::size_t>(l)].cells = h.level(l).total_cells();
        census[static_cast<std::size_t>(l)].coverage =
            static_cast<double>(h.level(l).total_cells()) /
            static_cast<double>(h.domain_at(l).num_pts());
      }
      // Patch boxes for the figure's outlines.
      std::ofstream boxes(bench::fig_path("fig01_patches.csv"));
      ccaperf::CsvWriter bw(boxes);
      bw.row({"level", "ilo", "jlo", "ihi", "jhi", "owner"});
      for (int l = 0; l < h.num_levels(); ++l)
        for (const auto& p : h.level(l).patches())
          bw.row({std::to_string(l), std::to_string(p.box.lo().i),
                  std::to_string(p.box.lo().j), std::to_string(p.box.hi().i),
                  std::to_string(p.box.hi().j), std::to_string(p.owner)});
    }
    // Density field of locally owned level-0 patches (per-rank CSV).
    std::ofstream field(bench::fig_path(
        "fig01_density.rank" + std::to_string(world.rank()) + ".csv"));
    ccaperf::CsvWriter fw_csv(field);
    fw_csv.row({"x", "y", "rho"});
    for (auto& [id, data] : h.level(0).local_data()) {
      const amr::Box box = h.level(0).patch(id).box;
      for (int j = box.lo().j; j <= box.hi().j; ++j)
        for (int i = box.lo().i; i <= box.hi().i; ++i)
          fw_csv.row({ccaperf::fmt_double(h.xc(0, i), 6),
                      ccaperf::fmt_double(h.yc(0, j), 6),
                      ccaperf::fmt_double(data(i, j, euler::kRho), 6)});
    }
    world.barrier();
    if (world.rank() == 0) faults = world.fault_stats();
  };

  mpp::Runtime::run(ranks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    if (trace.enabled) {
      // Instrumented assembly: proxies + Mastermind + TAU, with the ring
      // recorder armed (assemble_instrumented_app reads CCAPERF_TRACE) and
      // telemetry streaming one JSONL line every few monitored records.
      core::InstrumentedApp app = core::assemble_instrumented_app(world, cfg);
      std::ofstream telem("telemetry.rank" + std::to_string(world.rank()) +
                          ".jsonl");
      auto* tport =
          app.fw().services("mastermind").provided_as<core::TelemetryPort>(
              "telemetry");
      tport->start_telemetry(telem, 64);
      app.fw().services("driver").provided_as<components::GoPort>("go")->go();
      report(app.fw(), world);
      tport->stop_telemetry();
      // Lift the trace out before the framework (and its Registry) dies.
      merger.add_rank(core::collect_rank_trace(app.registry(), world.rank()));
      // Worker-lane shards (CCAPERF_THREADS > 1) become per-thread tracks
      // inside the rank's process.
      if (tau::RegistryShards* sh = app.tau->shards(); sh->lanes() > 1)
        for (int t = 1; t < sh->lanes(); ++t)
          merger.add_rank(core::collect_rank_trace(sh->shard(t), world.rank(), t));
    } else {
      auto fw = components::assemble_app(world, cfg);
      fw->services("driver").provided_as<components::GoPort>("go")->go();
      report(*fw, world);
    }
  });

  std::cout << "Fig. 1: shock/interface simulation, " << cfg.driver.nsteps
            << " coarse steps to t = " << ccaperf::fmt_double(sim_time, 4)
            << " on " << ranks << " ranks\n\nHierarchy census:\n";
  ccaperf::TextTable t;
  t.set_header({"level", "patches", "cells", "domain coverage"});
  for (std::size_t l = 0; l < census.size(); ++l)
    t.add_row({std::to_string(l), std::to_string(census[l].patches),
               std::to_string(census[l].cells),
               ccaperf::fmt_double(100.0 * census[l].coverage, 3) + "%"});
  t.render(std::cout);
  std::cout << "\ndensity range: [" << ccaperf::fmt_double(rho_min, 4) << ", "
            << ccaperf::fmt_double(rho_max, 4)
            << "]  (pre-shock air = 1, freon = 3.33, post-shock air = 1.86)\n"
            << "field written to " << bench::fig_path("fig01_density.rank*.csv")
            << ", patch outlines to " << bench::fig_path("fig01_patches.csv")
            << '\n';

  if (faults.injected_total() > 0 || faults.retries > 0 || faults.timeouts > 0 ||
      faults.stale_fallbacks > 0) {
    std::cout << "\nfault injection (CCAPERF_FAULT_PLAN): "
              << faults.injected_total() << " injected (" << faults.injected_drops
              << " drops, " << faults.injected_delays << " delays, "
              << faults.injected_duplicates << " dups, "
              << faults.injected_reorders << " reorders, "
              << faults.injected_stalls << " stalls), " << faults.retries
              << " retries (" << faults.retries_exhausted << " exhausted), "
              << faults.duplicates_suppressed << " dups suppressed, "
              << faults.timeouts << " wait timeouts, " << faults.stale_fallbacks
              << " stale-ghost fallbacks\n";
  }

  bench::print_comparison(
      "Fig. 1 (simulation structure)",
      {
          {"hierarchy depth", "3 levels, refinement factor 2",
           std::to_string(nlevels) + " levels, factor 2"},
          {"finest level coverage", "small part of the domain",
           census.size() >= 3
               ? ccaperf::fmt_double(100.0 * census[2].coverage, 3) + "%"
               : "n/a"},
          {"density field", "shocked Air/Freon interface rolls up",
           "rho in [" + ccaperf::fmt_double(rho_min, 3) + ", " +
               ccaperf::fmt_double(rho_max, 3) + "]"},
      });

  if (trace.enabled) {
    std::ofstream os(trace.path);
    const core::MergeStats st = merger.write_chrome_trace(os);
    os.close();
    std::cout << "\ntrace: " << trace.path << " — " << st.ranks << " ranks, "
              << st.events << " events, " << st.slices << " slices, " << st.flows
              << " message flows (" << st.unmatched_sends << " sends / "
              << st.unmatched_recvs << " recvs unmatched, " << st.orphan_exits
              << " orphan exits, " << st.dropped
              << " ring drops)\nopen in ui.perfetto.dev\n";
    bool ok = os.good() && st.ranks == static_cast<std::size_t>(ranks);
    // With nothing dropped the trace must be perfect: every retained
    // endpoint flow-matched, every slice balanced. Ring drops excuse
    // unmatched endpoints / orphan exits but nothing else.
    if (st.dropped == 0 && (!st.fully_matched() || st.orphan_exits != 0))
      ok = false;
    if (ranks > 1 && st.flows == 0) ok = false;  // ghost exchange must show up
    if (!ok) {
      std::cout << "TRACE VALIDATION FAILED\n";
      return 1;
    }
  }
  return 0;
}
