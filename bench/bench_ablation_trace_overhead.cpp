// Ablation — ring-buffer tracing overhead and memory bound.
//
// "The TAU implementation ... supports both profiling and tracing
// measurement options" (§4.1) — but tracing is only usable on long runs
// if (a) the per-event cost stays close to the untraced timer path and
// (b) trace memory does not grow with run length. The seed's trace was an
// unbounded std::vector; tau::TraceBuffer replaces it with a bounded ring
// (overwrite-oldest, drops counted). Capacity 0 keeps the legacy
// unbounded behaviour, which doubles as this ablation's baseline.
//
// Three configurations, same start/stop workload on one Registry:
//   off     — tracing disabled (the profiling-only cost floor);
//   ring    — tracing into the default 64Ki-event ring (steady state
//             overwrites: the long-run configuration);
//   legacy  — tracing into the unbounded vector (the seed's behaviour).
// Reports ns per trace event and the trace memory each configuration
// holds after ~2M events, machine-readably in
// bench_out/trace_overhead.json so later PRs can track the trajectory.

#include <chrono>
#include <fstream>

#include "bench_common.hpp"

namespace {

/// Best-of-blocks ns per event (one start+stop = two events).
double time_events(tau::Registry& reg, tau::TimerId t, int blocks, int pairs) {
  reg.start(t);
  reg.stop(t);  // warmup
  double best = 1e300;
  for (int b = 0; b < blocks; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pairs; ++i) {
      reg.start(t);
      reg.stop(t);
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                              (2.0 * pairs));
  }
  return best;
}

struct JsonEntry {
  std::string name;
  std::string metric;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonEntry>& entries) {
  std::ofstream os(path);
  if (!os) {
    std::cout << "warning: cannot open " << path << " (run from the repo root)\n";
    return;
  }
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  {\"name\": \"" << entries[i].name << "\", \"metric\": \""
       << entries[i].metric << "\", \"value\": " << entries[i].value << "}"
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::cout << "series written to " << path << '\n';
}

}  // namespace

int main() {
  const int blocks = 5;
  const int pairs = 200'000;  // 2M events over the 5 blocks: the ring wraps

  std::cout << "Ablation: trace overhead — " << 2 * pairs
            << " events/block, ring capacity "
            << tau::TraceBuffer::kDefaultCapacity << " events\n\n";

  tau::Registry off_reg;
  const double off_ns = time_events(off_reg, off_reg.timer("work()"), blocks, pairs);

  tau::Registry ring_reg;
  ring_reg.set_tracing(true);  // default ring capacity
  const double ring_ns =
      time_events(ring_reg, ring_reg.timer("work()"), blocks, pairs);
  const double ring_mem = static_cast<double>(ring_reg.trace().memory_bytes());
  const double ring_dropped = static_cast<double>(ring_reg.trace().dropped());
  CCAPERF_REQUIRE(ring_reg.trace().size() <= tau::TraceBuffer::kDefaultCapacity,
                  "ring exceeded its configured bound");

  tau::Registry legacy_reg;
  legacy_reg.set_trace_capacity(0);  // unbounded vector: the seed's behaviour
  legacy_reg.set_tracing(true);
  const double legacy_ns =
      time_events(legacy_reg, legacy_reg.timer("work()"), blocks, pairs);
  const double legacy_mem = static_cast<double>(legacy_reg.trace().memory_bytes());

  ccaperf::TextTable t;
  t.set_header({"configuration", "ns/event", "trace memory after run"});
  t.add_row({"tracing off", ccaperf::fmt_double(off_ns, 2), "0 B"});
  t.add_row({"ring buffer (64Ki events)", ccaperf::fmt_double(ring_ns, 2),
             ccaperf::fmt_double(ring_mem / (1024.0 * 1024.0), 2) + " MiB"});
  t.add_row({"legacy unbounded vector", ccaperf::fmt_double(legacy_ns, 2),
             ccaperf::fmt_double(legacy_mem / (1024.0 * 1024.0), 2) + " MiB"});
  t.render(std::cout);
  std::cout << "\nring dropped " << static_cast<std::uint64_t>(ring_dropped)
            << " oldest events (flight-recorder semantics); memory stays at "
            << ccaperf::fmt_double(ring_mem / (1024.0 * 1024.0), 2)
            << " MiB regardless of run length, vs "
            << ccaperf::fmt_double(legacy_mem / (1024.0 * 1024.0), 2)
            << " MiB and growing for the unbounded trace\n";

  bench::print_comparison(
      "trace overhead",
      {{"tracing cost", "\"instrumentation related overheads are small\" (§4)",
        ccaperf::fmt_double(ring_ns - off_ns, 1) + " ns/event over profiling"},
       {"trace memory", "bounded (flight recorder)",
        ccaperf::fmt_double(ring_mem / (1024.0 * 1024.0), 2) + " MiB fixed"}});

  write_json("bench_out/trace_overhead.json",
             {{"trace_overhead", "ns_per_event_off", off_ns},
              {"trace_overhead", "ns_per_event_ring", ring_ns},
              {"trace_overhead", "ns_per_event_legacy", legacy_ns},
              {"trace_overhead", "ring_memory_bytes", ring_mem},
              {"trace_overhead", "legacy_memory_bytes", legacy_mem},
              {"trace_overhead", "ring_dropped_events", ring_dropped}});
  return 0;
}
