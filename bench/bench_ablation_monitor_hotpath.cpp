// Ablation — zero-allocation monitoring hot path.
//
// "It is important that the measurement processes themselves intrude as
// little as possible on the application being measured" (§3.2). The
// string-keyed MonitorPort surface pays for that bookkeeping on every
// invocation: a ParamMap (two heap nodes) is built, the method key is
// re-interned, and the counter snapshot allocates. The handle surface
// moves all naming to registration time — proxies resolve a MethodHandle
// once and report each call with a stack-resident ParamSpan, and the
// Mastermind's pooled Open stack plus columnar Record append make the
// steady-state start/stop allocation-free.
//
// This bench measures three configurations on the Fig. 4 States workload
// shape (method sc_proxy::compute(), params {Q, mode}, Q ~ 1e5, two
// hardware counters registered) with an empty monitored body, so the
// numbers are pure per-invocation monitoring overhead:
//   scalar  — the pre-interning recipe re-enacted against the registry:
//             per-call ParamMap, string-keyed timer lookup and group
//             query, allocating read_all() snapshots, row-struct append
//             (what Mastermind::start/stop did before this optimization);
//   shim    — today's string-keyed MonitorPort surface (compatibility
//             path: still builds a ParamMap and re-interns the key, but
//             shares the pooled/columnar internals);
//   handle  — register_method once, then MethodHandle + ParamSpan.
// Results are recorded in bench_out/monitor_hotpath.json so later PRs can
// track the trajectory.

#include <chrono>
#include <fstream>

#include "bench_common.hpp"

namespace {

struct Rig {
  cca::Framework fw;
  core::MastermindComponent* mm;
  core::TauMeasurementComponent* tau;

  Rig() : fw(make_repo()) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.connect("mm", "measurement", "tau", "measurement");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
    // Two counter sources, as in the Fig. 5 runs (FLOPs + L2 misses).
    tau->registry().counters().add_source(hwc::kFpOps, [this] { return tick_++; });
    tau->registry().counters().add_source(hwc::kL2Dcm, [this] { return tick_ / 2; });
  }

  static cca::ComponentRepository make_repo() {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement",
                        [] { return std::make_unique<core::TauMeasurementComponent>(); });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    return repo;
  }

  std::uint64_t tick_ = 0;
};

/// Best-of-blocks ns per monitored invocation under `invoke`.
template <class F>
double time_invocations(F&& invoke, int blocks, int reps) {
  invoke();  // warmup (resolves timers, grows pools)
  double best = 1e300;
  for (int b = 0; b < blocks; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) invoke();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::nano>(t1 - t0).count() / reps);
  }
  return best;
}

/// The seed's monitoring bookkeeping, re-enacted: every structure the
/// pre-interning Mastermind built per invocation, against the same
/// registry. (The string path stays available as a shim, but it now shares
/// the pooled internals — this reproduces the original cost honestly.)
struct ScalarMonitor {
  struct Invocation {
    core::ParamMap params;
    double wall_us = 0.0, mpi_us = 0.0, compute_us = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  struct Open {
    std::string key;
    core::ParamMap params;
    tau::Clock::time_point wall_start{};
    double mpi_us_start = 0.0;
    std::vector<std::pair<std::string, std::uint64_t>> counters_start;
  };

  explicit ScalarMonitor(tau::Registry& reg) : reg_(reg) {}

  void start(const std::string& key, const core::ParamMap& params) {
    Open open;
    open.key = key;
    open.params = params;
    open.mpi_us_start = reg_.group_inclusive_us(tau::kMpiGroup);
    open.counters_start = reg_.counters().read_all();
    open_.push_back(std::move(open));
    reg_.start(reg_.timer(key, "PROXY"));
    open_.back().wall_start = tau::Clock::now();
  }

  void stop(const std::string& key) {
    const tau::Clock::time_point wall_end = tau::Clock::now();
    reg_.stop(reg_.timer(key, "PROXY"));
    Open open = std::move(open_.back());
    open_.pop_back();
    Invocation inv;
    inv.params = std::move(open.params);
    inv.wall_us =
        std::chrono::duration<double, std::micro>(wall_end - open.wall_start).count();
    inv.mpi_us = reg_.group_inclusive_us(tau::kMpiGroup) - open.mpi_us_start;
    inv.compute_us = inv.wall_us - inv.mpi_us;
    for (const auto& [name, value] : reg_.counters().read_all()) {
      double before = 0.0;
      for (const auto& [n, v] : open.counters_start)
        if (n == name) before = static_cast<double>(v);
      inv.counters.emplace_back(name, static_cast<double>(value) - before);
    }
    rows_.push_back(std::move(inv));
  }

  tau::Registry& reg_;
  std::vector<Open> open_;
  std::vector<Invocation> rows_;
};

struct JsonEntry {
  std::string name;
  std::string metric;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonEntry>& entries) {
  std::ofstream os(path);
  if (!os) {
    std::cout << "warning: cannot open " << path << " (run from the repo root)\n";
    return;
  }
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  {\"name\": \"" << entries[i].name << "\", \"metric\": \""
       << entries[i].metric << "\", \"value\": " << entries[i].value << "}"
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::cout << "series written to " << path << '\n';
}

}  // namespace

int main() {
  // The Fig. 4 States workload shape closest to Q = 1e5.
  bench::PatchShape shape{};
  for (const auto& s : bench::paper_q_sweep())
    if (shape.q == 0 ||
        std::abs(static_cast<double>(s.q) - 1e5) <
            std::abs(static_cast<double>(shape.q) - 1e5))
      shape = s;
  const double q = static_cast<double>(shape.q);

  std::cout << "Ablation: monitoring hot path — sc_proxy::compute() shape, Q = "
            << shape.q << "\n\n";

  const int blocks = 7, reps = 20'000;

  // Scalar baseline: the seed's per-invocation bookkeeping.
  Rig scalar_rig;
  ScalarMonitor scalar(scalar_rig.tau->registry());
  const double scalar_ns = time_invocations(
      [&] {
        scalar.start("sc_proxy::compute()", core::ParamMap{{"Q", q}, {"mode", 0.0}});
        scalar.stop("sc_proxy::compute()");
      },
      blocks, reps);

  // String shim: the ParamMap is built per call and the key re-interned,
  // but the pooled/columnar internals are shared with the handle path.
  Rig string_rig;
  const double string_ns = time_invocations(
      [&] {
        string_rig.mm->start("sc_proxy::compute()",
                             core::ParamMap{{"Q", q}, {"mode", 0.0}});
        string_rig.mm->stop("sc_proxy::compute()");
      },
      blocks, reps);

  // Handle surface: the method is registered once, each call passes a
  // stack-resident ParamSpan.
  Rig handle_rig;
  const core::MethodHandle h =
      handle_rig.mm->register_method("sc_proxy::compute()", {"Q", "mode"});
  const double handle_ns = time_invocations(
      [&] {
        const double params[2] = {q, 0.0};
        handle_rig.mm->start(h, core::ParamSpan(params, 2));
        handle_rig.mm->stop(h);
      },
      blocks, reps);

  // Both surfaces must have produced equivalent records.
  const core::Record* srec = string_rig.mm->record("sc_proxy::compute()");
  const core::Record* hrec = handle_rig.mm->record("sc_proxy::compute()");
  CCAPERF_REQUIRE(srec != nullptr && hrec != nullptr &&
                      srec->count() == hrec->count(),
                  "surfaces recorded different invocation counts");
  CCAPERF_REQUIRE(srec->param_at(0, "Q") == q && hrec->param_at(0, "Q") == q,
                  "parameter capture diverged between surfaces");

  const double speedup_scalar = scalar_ns / handle_ns;
  const double speedup_shim = string_ns / handle_ns;

  ccaperf::TextTable t;
  t.set_header({"configuration", "ns/invocation", "relative"});
  t.add_row({"scalar (seed recipe)", ccaperf::fmt_double(scalar_ns, 6), "1.00"});
  t.add_row({"string shim (today)", ccaperf::fmt_double(string_ns, 6),
             ccaperf::fmt_double(string_ns / scalar_ns, 4)});
  t.add_row({"handle + ParamSpan", ccaperf::fmt_double(handle_ns, 6),
             ccaperf::fmt_double(handle_ns / scalar_ns, 4)});
  t.render(std::cout);
  std::cout << "\nscalar/handle overhead ratio: "
            << ccaperf::fmt_double(speedup_scalar, 4) << "x ("
            << (speedup_scalar >= 2.0 ? "meets" : "MISSES")
            << " the >= 2x target)\n";
  std::cout << "shim/handle overhead ratio:   "
            << ccaperf::fmt_double(speedup_shim, 4) << "x\n";

  bench::print_comparison(
      "monitoring overhead",
      {{"per-invocation monitoring cost", "\"as little as possible\" (section 3.2)",
        ccaperf::fmt_double(handle_ns, 1) + " ns handle path (was " +
            ccaperf::fmt_double(scalar_ns, 1) + " ns scalar recipe)"}});

  write_json("bench_out/monitor_hotpath.json",
             {{"monitor_hotpath", "q", q},
              {"monitor_hotpath", "scalar_ns_per_invocation", scalar_ns},
              {"monitor_hotpath", "string_shim_ns_per_invocation", string_ns},
              {"monitor_hotpath", "handle_ns_per_invocation", handle_ns},
              {"monitor_hotpath", "scalar_vs_handle_speedup", speedup_scalar},
              {"monitor_hotpath", "shim_vs_handle_speedup", speedup_shim}});
  return 0;
}
