// Ablation — cache-parameterized model transfer (paper §6 future work,
// implemented): calibrate a CacheAwareModel for the States kernel from
// measured timings + simulated work counts, then retarget it to machines
// with half/double the cache without re-measuring. "The coefficients
// should be parameterized by processor speed and a cache model."

#include "bench_common.hpp"
#include "core/cache_model.hpp"

namespace {

/// Work counts of one States invocation (X+Y sweep average) at a shape,
/// replayed through an L2 with the given geometry.
core::WorkCounts count_work(const bench::PatchShape& shape,
                            const hwc::CacheSim& l2_geometry,
                            const euler::GasModel& gas) {
  hwc::CacheSim l2(l2_geometry.size_bytes(), l2_geometry.line_bytes(),
                   l2_geometry.associativity());
  hwc::CacheSim l1(8 * 1024, 64, 4);
  l1.set_lower(&l2);
  hwc::CacheProbe probe(&l1);
  const auto u = bench::workload_patch(shape.interior, gas, 3);
  for (euler::Dir dir : {euler::Dir::x, euler::Dir::y}) {
    int nx = 0, ny = 0;
    euler::face_dims(shape.interior, dir, nx, ny);
    euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
    euler::compute_states(u, shape.interior, dir, gas, l, r, probe);
  }
  core::WorkCounts w;
  w.q = static_cast<double>(shape.q);
  w.flops = static_cast<double>(probe.counts().flops) / 2.0;  // per invocation
  w.accesses =
      static_cast<double>(probe.counts().loads + probe.counts().stores) / 2.0;
  w.misses = static_cast<double>(l2.counters().misses) / 2.0;
  return w;
}

std::vector<core::WorkCounts> work_table(std::size_t l2_bytes,
                                         const euler::GasModel& gas) {
  std::vector<core::WorkCounts> t;
  const hwc::CacheSim l2(l2_bytes, 64, 8);
  for (const auto& shape : bench::paper_q_sweep())
    t.push_back(count_work(shape, l2, gas));
  return t;
}

/// WorkCounter for core::retarget: maps Q back to the paper sweep shape and
/// replays the kernel under the requested geometry.
core::WorkCounter states_counter(const euler::GasModel& gas) {
  return [&gas](double q, const hwc::CacheSim& geometry) {
    for (const auto& shape : bench::paper_q_sweep())
      if (static_cast<double>(shape.q) == q) return count_work(shape, geometry, gas);
    ccaperf::raise("states_counter: q not in the paper sweep");
  };
}

}  // namespace

int main() {
  const euler::GasModel gas;

  std::cout << "calibrating: measuring States and simulating its work "
               "counts at the 512 kB reference cache...\n";
  const auto sweep = bench::sweep_component("states", 1, 4);
  const auto reference = work_table(512 * 1024, gas);
  const auto model = core::fit_cache_aware(sweep.all, reference);
  std::cout << "  T(Q) = " << model->formula() << "   [R^2 "
            << ccaperf::fmt_double(model->r2, 4) << "]\n\n";

  // Retarget by re-simulation only: the counter replays States through the
  // new geometry at the calibrated Q points — no re-measurement.
  const auto counter = states_counter(gas);
  const auto half = core::retarget(*model, counter, hwc::CacheSim(256 * 1024, 64, 8));
  const auto twice = core::retarget(*model, counter, hwc::CacheSim(1024 * 1024, 64, 8));

  std::cout << "predicted States time (us) per cache size — no re-measurement "
               "for the 256 kB / 1 MB columns:\n\n";
  ccaperf::TextTable t;
  t.set_header({"Q", "measured mean (512kB host sim)", "predict 512kB",
                "predict 256kB", "predict 1MB"});
  const auto bins = core::bin_by_q(sweep.all);
  for (const auto& b : bins) {
    t.add_row({ccaperf::fmt_double(b.q, 7), ccaperf::fmt_double(b.mean, 5),
               ccaperf::fmt_double(model->predict(b.q), 5),
               ccaperf::fmt_double(half->predict(b.q), 5),
               ccaperf::fmt_double(twice->predict(b.q), 5)});
  }
  t.render(std::cout);

  const double q_big = bins.back().q;
  bench::print_comparison(
      "model transfer (paper Section 6)",
      {
          {"parameterize coefficients by a cache model", "future work",
           "CacheAwareModel: " + model->formula()},
          {"halving the cache", "large effect on coefficients",
           "predicted T(" + ccaperf::fmt_double(q_big, 6) + ") grows " +
               ccaperf::fmt_double(half->predict(q_big) / model->predict(q_big), 4) +
               "x at 256 kB"},
          {"doubling the cache", "-",
           "predicted T shrinks to " +
               ccaperf::fmt_double(twice->predict(q_big) / model->predict(q_big), 4) +
               "x at 1 MB"},
      });
  return 0;
}
