// Fig. 8 + Eq. 1/2 — EFMFlux performance model: the paper fits
// T = -8.13 + 0.16 Q us (about half GodunovFlux's slope) with a
// small/shrinking standard deviation (closed-form flux, constant cost per
// element) modeled as a quartic.

#include "bench_models.hpp"

int main() {
  return bench::run_model_bench(bench::ModelBenchSpec{
      "Fig. 8",
      "EFMFlux",
      "efm",
      "T = -8.13 + 0.16 Q  [us]",
      "sigma = 66.7 - 0.015 Q + 9.24e-7 Q^2 - 1.12e-11 Q^3 + 3.85e-17 Q^4",
      "small relative to GodunovFlux; does not grow with Q",
      4,
      "fig08_efm_model.csv",
  });
}
