// Ablation — communication/computation balance vs rank count.
//
// Paper §5: "message passing times are generally comparable to the purely
// computational loads of States and GodunovFlux, and it is unlikely that
// the code, in the current configuration ... will scale well. This is
// also borne out by Fig. 3 where almost a quarter of the time is shown to
// be spent in message passing."
//
// Wall-clock speedup is not measurable on this substrate (rank threads
// time-share one CPU), but the paper's actual argument — the MPI share of
// each rank's time and the message volume both grow with the rank count
// on a fixed problem — is, and this bench measures it.

#include "bench_common.hpp"
#include "components/app_assembly.hpp"
#include "tau/profile.hpp"

namespace {

struct ScalePoint {
  int nranks;
  double mpi_share = 0.0;      // mean over ranks: MPI group / total time
  double messages = 0.0;       // total messages sent (sum over ranks)
  double proxy_compute_us = 0.0;  // mean monitored kernel compute time
};

ScalePoint run_at(int nranks) {
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = 4;
  cfg.driver.regrid_interval = 0;

  ScalePoint point;
  point.nranks = nranks;
  std::vector<double> shares(static_cast<std::size_t>(nranks), 0.0);
  std::vector<double> msgs(static_cast<std::size_t>(nranks), 0.0);
  std::vector<double> compute(static_cast<std::size_t>(nranks), 0.0);

  mpp::Runtime::run(nranks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, cfg);
    tau::Registry& reg = app.registry();
    const auto root = reg.timer("int main(int, char **)");
    reg.start(root);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    reg.stop(root);

    const std::size_t me = static_cast<std::size_t>(world.rank());
    shares[me] = reg.group_inclusive_us(tau::kMpiGroup) / reg.inclusive_us(root);
    const auto isend = reg.timer("MPI_Isend()", tau::kMpiGroup);
    msgs[me] = static_cast<double>(reg.calls(isend));
    for (const char* key : {"sc_proxy::compute()", "g_proxy::compute()"}) {
      const core::Record* rec = app.mastermind->record(key);
      if (rec == nullptr) continue;
      for (const auto& inv : rec->invocations()) compute[me] += inv.compute_us;
    }
  });
  for (int r = 0; r < nranks; ++r) {
    point.mpi_share += shares[static_cast<std::size_t>(r)] / nranks;
    point.messages += msgs[static_cast<std::size_t>(r)];
    point.proxy_compute_us += compute[static_cast<std::size_t>(r)] / nranks;
  }
  return point;
}

}  // namespace

int main() {
  std::cout << "Ablation: fixed case-study problem, growing rank count "
               "(classic-cluster network model)\n\n";
  ccaperf::TextTable t;
  t.set_header({"ranks", "mean MPI share", "messages sent", "mean kernel compute (ms)"});
  std::vector<ScalePoint> points;
  for (int n : {1, 2, 3, 4}) {
    points.push_back(run_at(n));
    const ScalePoint& p = points.back();
    t.add_row({std::to_string(p.nranks),
               ccaperf::fmt_double(100.0 * p.mpi_share, 3) + "%",
               ccaperf::fmt_double(p.messages, 6),
               ccaperf::fmt_double(p.proxy_compute_us / 1000.0, 5)});
  }
  t.render(std::cout);

  bench::print_comparison(
      "scaling ablation (paper Section 5)",
      {
          {"comm comparable to compute", "message times ~ kernel times",
           "MPI share " + ccaperf::fmt_double(100.0 * points[2].mpi_share, 3) +
               "% at 3 ranks"},
          {"scaling outlook", "unlikely to scale well in this configuration",
           "MPI share grows " + ccaperf::fmt_double(100.0 * points[0].mpi_share, 3) +
               "% -> " + ccaperf::fmt_double(100.0 * points.back().mpi_share, 3) +
               "% from 1 to 4 ranks on the fixed problem"},
          {"message volume", "-",
           ccaperf::fmt_double(points[0].messages, 6) + " -> " +
               ccaperf::fmt_double(points.back().messages, 6) + " messages"},
      });
  return 0;
}
