// Ablation: held-out prediction accuracy of the compositional pattern
// model (DESIGN.md §13) — the predict/validate loop closed end to end.
//
// Trains the fig01 pattern tree on a small configuration grid (ranks x
// thread lanes at the base problem size), then predicts configurations
// the calibration never saw — more ranks, more lanes, a non-power-of-two
// rank count, and a refined problem size — runs each for real, and
// reports the per-point relative error on the marginal per-step wall
// time. Also cross-checks the joint assembly x ranks x threads optimizer
// against exhaustive enumeration with real fitted flux models wired into
// the tree's flux slot.
//
// Hard accuracy floor (the PR's acceptance bar, enforced here *and*
// gated via bench/baselines/prediction.json): every held-out point
// within 25% relative error, median within 10%.
//
// Results land in bench_out/prediction.json.
//
// Environment: CCAPERF_PRED_REPS (default 3) wall-timing repetitions.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/optimizer.hpp"
#include "core/prediction_harness.hpp"

namespace {

int env_int(const char* name, int fallback, int lo) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::max(lo, std::atoi(v));
}

/// The tiny case-study hierarchy the holdout tier-1 test also uses,
/// parameterized by base-grid size over the same physical domain
/// (features are placed fractionally, so every size is the same physics
/// at a different resolution). 48x24 is the base; 24x12 probes the
/// workload's problem-size scaling; 36x18 — never captured, never in the
/// training grid — is the held-out Q point, bracketed by probe and base.
/// 96x48 is reported as an ungated *extrapolation* diagnostic: the
/// measured per-leaf scaling exponent falls with grid size (refined
/// levels track the 1-D shock feature, so the dominant flux total is
/// near-affine in sqrt(Q)), which a single power law fitted below the
/// base size cannot follow — see DESIGN.md section 13.
components::AppConfig tiny_config(int nx, int ny) {
  components::AppConfig cfg;
  cfg.mesh.domain = amr::Box{0, 0, nx - 1, ny - 1};
  cfg.mesh.max_levels = 3;
  cfg.mesh.ncomp = euler::kNcomp;
  cfg.mesh.level0_patch_size = 12;
  cfg.mesh.cluster = amr::ClusterParams{0.75, 4, 0};
  cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / nx, 1.0 / ny};
  cfg.driver = components::DriverConfig{4, 0.4, 0};
  cfg.flux_impl = "GodunovFlux";
  return cfg;
}

struct HeldOutPoint {
  std::string tag;
  components::AppConfig cfg;
  int ranks;
  int threads;
};

}  // namespace

int main() {
  // min-over-reps is the only defense against host-level contention on a
  // single-core box; 6 reps keeps the whole bench around a minute.
  const int reps = env_int("CCAPERF_PRED_REPS", 6, 1);
  const components::AppConfig base_cfg = tiny_config(48, 24);

  core::Fig01TrainSpec spec;  // ranks {2,4,8} x threads {1,2}
  spec.reps = reps;
  spec.steps_hi = 14;  // longer differencing window: less scheduler noise
  // Second-size capture: measures how the AMR workload actually scales
  // with the base grid (the refined levels track the shock, not the
  // domain, so the exponents are well below linear).
  spec.q_captures = {tiny_config(24, 12)};

  // --- measure every point in one interleaved round-robin ------------------
  // Training grid, held-out points, and diagnostics share measurement
  // rounds so slow host-load drift cannot inflate one group against
  // another (see measure_fig01_points).
  const std::vector<HeldOutPoint> points = {
      {"p16_t1", base_cfg, 16, 1},   // 2x the largest trained rank count
      {"p16_t2", base_cfg, 16, 2},   // unseen ranks with multi-lane term
      {"p12_t2", base_cfg, 12, 2},   // non-power-of-two ranks
      {"p8_t4", base_cfg, 8, 4},     // trained ranks, unseen lanes
      {"p4_t4", base_cfg, 4, 4},     // unseen lanes, patch-rich ranks
      {"p8_t1_q36", tiny_config(36, 18), 8, 1},  // unseen problem size
  };
  // Out-of-regime diagnostics, reported but ungated (see below).
  const std::vector<HeldOutPoint> diagnostics = {
      {"diag_p8_t1_q4x", tiny_config(96, 48), 8, 1},
      {"diag_p16_t4", base_cfg, 16, 4},
  };

  std::vector<core::Fig01MeasureRequest> requests;
  for (int ranks : spec.ranks)
    for (int threads : spec.threads)
      requests.push_back(core::Fig01MeasureRequest{base_cfg, ranks, threads});
  const std::size_t first_holdout = requests.size();
  for (const HeldOutPoint& p : points)
    requests.push_back(core::Fig01MeasureRequest{p.cfg, p.ranks, p.threads});
  for (const HeldOutPoint& p : diagnostics)
    requests.push_back(core::Fig01MeasureRequest{p.cfg, p.ranks, p.threads});
  const std::vector<double> walls = core::measure_fig01_points(
      requests, spec.steps_lo, spec.steps_hi, reps);

  // --- train ---------------------------------------------------------------
  std::cout << "=== pattern-model calibration (train grid: ranks {2,4,8} x "
               "lanes {1,2}) ===\n";
  const std::vector<double> train_walls(walls.begin(),
                                        walls.begin() + first_holdout);
  const core::Fig01Calibration cal =
      core::calibrate_fig01_measured(base_cfg, spec, train_walls);
  for (const core::Fig01Point& pt : cal.train)
    std::cout << "  train P=" << pt.ranks << " T=" << pt.threads
              << "  step_us=" << pt.step_us << "\n";
  std::cout << cal.pattern.tree.describe()
            << "  train max_rel_err=" << cal.refit.max_rel_err << "\n";

  // --- held-out predictions vs the already-measured walls ------------------
  auto run_point = [&](const HeldOutPoint& p, std::size_t wall_idx) {
    const double predicted_us =
        core::predict_fig01_step_us(cal.pattern, p.cfg, p.ranks, p.threads) *
        p.ranks;
    const double measured_us = walls[wall_idx];
    const double rel_err = std::abs(predicted_us - measured_us) / measured_us;
    std::cout << "  " << p.tag << ": predicted " << predicted_us
              << " us, measured " << measured_us << " us, rel_err " << rel_err
              << "\n";
    return rel_err;
  };

  std::vector<bench::JsonEntry> out;
  std::vector<double> errors;
  std::cout << "\n=== held-out predictions ===\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double rel_err = run_point(points[i], first_holdout + i);
    errors.push_back(rel_err);
    out.push_back({"prediction", "rel_err_" + points[i].tag, rel_err});
  }

  // Ungated diagnostics — the two regimes the model class knowingly does
  // not cover, reported so their error stays visible:
  //  * q4x: 4x the base size is far outside the probed range, where the
  //    local power law no longer holds (the per-leaf exponent itself
  //    decreases with Q).
  //  * p16_t4: at 16 ranks each rank holds only a handful of patches, so
  //    4 lanes are starved and the measured lane overhead vanishes while
  //    MapParallel still charges the calibrated imbalance term.
  std::cout << "\n=== out-of-regime diagnostics (ungated) ===\n";
  const std::size_t first_diag = first_holdout + points.size();
  const double extrap_err = run_point(diagnostics[0], first_diag);
  out.push_back({"prediction", "diag_extrapolation_q4x_rel_err", extrap_err});
  const double starved_err = run_point(diagnostics[1], first_diag + 1);
  out.push_back({"prediction", "diag_lane_starved_p16_t4_rel_err", starved_err});

  std::vector<double> sorted = errors;
  std::sort(sorted.begin(), sorted.end());
  const double max_err = sorted.back();
  const double median_err = sorted[sorted.size() / 2];
  out.push_back({"prediction", "max_rel_err", max_err});
  out.push_back({"prediction", "median_rel_err", median_err});
  std::cout << "  max_rel_err=" << max_err << " median_rel_err=" << median_err
            << "\n";

  // --- joint optimizer vs exhaustive on the calibrated tree ----------------
  // Real fitted flux models in the tree's flux slot: the joint search must
  // pick the identical (assembly, ranks, threads) as brute force.
  std::cout << "\n=== joint assembly x ranks x threads search ===\n";
  const auto godunov_sweep = bench::sweep_component("godunov", 1, 2, 60'000);
  const auto efm_sweep = bench::sweep_component("efm", 1, 2, 60'000);
  const auto godunov_model = core::fit_best(godunov_sweep.all, 2);
  const auto efm_model = core::fit_best(efm_sweep.all, 2);

  core::AssemblyOptimizer opt;
  core::Slot flux_slot;
  flux_slot.functionality = "FluxPort";
  flux_slot.candidates = {
      core::Candidate{"GodunovFlux", godunov_model.get(), 1.0},
      core::Candidate{"EFMFlux", efm_model.get(), 0.7}};
  opt.add_slot(flux_slot);

  const core::PatternConfig base_pt{core::fig01_problem_q(base_cfg), 1, 1};
  const std::vector<int> ranks_grid = {2, 4, 8, 16};
  const std::vector<int> threads_grid = {1, 2, 4};
  bool joint_ok = true;
  for (double w : {0.0, 0.5, 3.0}) {
    core::AssemblyOptimizer::SearchStats stats;
    const auto bb = opt.best_joint(cal.pattern.tree, base_pt, ranks_grid,
                                   threads_grid, w, &stats);
    const auto ex = opt.best_joint_exhaustive(cal.pattern.tree, base_pt,
                                              ranks_grid, threads_grid, w);
    const bool same = bb.selection == ex.selection && bb.ranks == ex.ranks &&
                      bb.threads == ex.threads &&
                      bb.predicted_us == ex.predicted_us;
    joint_ok = joint_ok && same;
    std::cout << "  w=" << w << ": " << bb.selection.at("FluxPort") << " P="
              << bb.ranks << " T=" << bb.threads << " predicted="
              << bb.predicted_us << " us (" << stats.leaves_evaluated
              << " leaves, " << stats.subtrees_pruned << " pruned) "
              << (same ? "== exhaustive" : "!= exhaustive MISMATCH") << "\n";
  }
  out.push_back({"prediction", "joint_matches_exhaustive", joint_ok ? 1.0 : 0.0});

  bench::write_bench_json("bench_out/prediction.json", out);

  // Hard acceptance floor: the bench itself fails on a miss, so a local
  // run catches a regression even without the gate script.
  if (!joint_ok) {
    std::cout << "FAIL: joint optimizer diverged from exhaustive enumeration\n";
    return 1;
  }
  if (max_err > 0.25 || median_err > 0.10) {
    std::cout << "FAIL: held-out accuracy floor missed (max " << max_err
              << " > 0.25 or median " << median_err << " > 0.10)\n";
    return 1;
  }
  std::cout << "\nprediction ablation OK\n";
  return 0;
}
