// Fig. 5 — "Ratio of strided versus sequential access timings for States.
// The ratio varies from around 1 for small array sizes to around 4 for the
// largest arrays considered; the ratios show variability which tend to
// increase with array size."
//
// Reports the ratio two ways:
//  * wall-clock, on this host's real cache (noisy, host-dependent);
//  * deterministic, via the hwc cache simulator configured as the paper's
//    512 kB Xeon L2 — miss-count ratio of the same kernel sweeps.

#include "bench_common.hpp"

#include <map>

namespace {

/// Cache-sim misses of one States sweep at the paper's 512 kB geometry.
std::uint64_t traced_misses(const amr::Box& interior, euler::Dir dir,
                            const euler::GasModel& gas) {
  hwc::XeonHierarchy xeon;
  hwc::CacheProbe probe(&xeon.l1);
  const auto u = bench::workload_patch(interior, gas, 42);
  int nx = 0, ny = 0;
  euler::face_dims(interior, dir, nx, ny);
  euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
  euler::compute_states(u, interior, dir, gas, l, r, probe);
  return xeon.l2.counters().misses;
}

}  // namespace

int main() {
  const euler::GasModel gas;

  // Wall-clock ratios from the instrumented sweep.
  const auto sweep = bench::sweep_component("states", 3, 4);
  std::map<double, ccaperf::RunningStats> seq, strided;
  for (const core::Sample& s : sweep.by_mode[0]) seq[s.q].add(s.t);
  for (const core::Sample& s : sweep.by_mode[1]) strided[s.q].add(s.t);

  std::cout << "Fig. 5: strided/sequential ratio for States vs array size\n\n";
  ccaperf::TextTable t;
  t.set_header({"Q", "wall ratio", "wall ratio sd", "L2-miss ratio (512kB sim)"});
  double first_sim = 0.0, last_sim = 0.0, last_wall = 0.0;
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& shape : bench::paper_q_sweep()) {
    const double q = static_cast<double>(shape.q);
    const auto& s = seq.at(q);
    const auto& d = strided.at(q);
    const double wall_ratio = d.mean() / s.mean();
    // Ratio-of-means spread proxy: combine relative sds.
    const double rel_sd = std::sqrt(
        std::pow(d.sample_stddev() / d.mean(), 2) +
        std::pow(s.sample_stddev() / s.mean(), 2));
    const std::uint64_t m_seq = traced_misses(shape.interior, euler::Dir::x, gas);
    const std::uint64_t m_str = traced_misses(shape.interior, euler::Dir::y, gas);
    const double sim_ratio =
        static_cast<double>(m_str) / static_cast<double>(std::max<std::uint64_t>(1, m_seq));
    t.add_row({ccaperf::fmt_double(q, 7), ccaperf::fmt_double(wall_ratio, 4),
               ccaperf::fmt_double(wall_ratio * rel_sd, 3),
               ccaperf::fmt_double(sim_ratio, 4)});
    if (first_sim == 0.0) first_sim = sim_ratio;
    last_sim = sim_ratio;
    last_wall = wall_ratio;
    csv_rows.push_back({ccaperf::fmt_double(q, 9),
                        ccaperf::fmt_double(wall_ratio, 9),
                        ccaperf::fmt_double(wall_ratio * rel_sd, 9),
                        ccaperf::fmt_double(sim_ratio, 9)});
  }
  t.render(std::cout);
  bench::write_series_csv("fig05_access_ratio.csv",
                          {"q", "wall_ratio", "wall_ratio_sd", "sim_miss_ratio"},
                          csv_rows);

  bench::print_comparison(
      "Fig. 5 (strided/sequential ratio)",
      {
          {"ratio at small Q", "~1", ccaperf::fmt_double(first_sim, 3) +
                                         " (sim miss ratio)"},
          {"ratio at largest Q", "~4",
           ccaperf::fmt_double(last_sim, 3) + " (sim), " +
               ccaperf::fmt_double(last_wall, 3) + " (wall, host cache)"},
          {"variability", "grows with array size", "see wall ratio sd column"},
      });
  return 0;
}
