// Fig. 9 — "Message passing time for different levels of the grid
// hierarchy for the 3 processors. We see a clustering of message passing
// times ... The grid hierarchy was subjected to a re-grid step during the
// simulation which resulted in a different domain decomposition and
// consequently message passing times. ... the substantial scatter is
// caused by fluctuating network loads."
//
// Runs the instrumented app on 3 ranks; the AMRMesh proxy records each
// ghost-cell update's MPI time together with the hierarchy level. One
// regrid happens mid-run, splitting the per-level clusters.

#include <map>

#include "bench_common.hpp"
#include "components/app_assembly.hpp"

int main() {
  constexpr int kRanks = 3;
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = 8;
  cfg.driver.regrid_interval = 4;  // exactly one mid-run regrid (step 4)

  // Collected per rank: (level, invocation index, mpi_us).
  struct Obs {
    int level;
    std::size_t seq;
    double mpi_us;
  };
  std::vector<std::vector<Obs>> observations(kRanks);

  mpp::Runtime::run(kRanks, mpp::NetworkModel::classic_cluster(),
                    [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, cfg);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    const core::Record* rec = app.mastermind->record("icc_proxy::ghost_update()");
    CCAPERF_REQUIRE(rec != nullptr, "no ghost_update record");
    auto& mine = observations[static_cast<std::size_t>(world.rank())];
    std::size_t seq = 0;
    for (const core::Invocation& inv : rec->invocations())
      mine.push_back(Obs{static_cast<int>(inv.params.at("level")), seq++,
                         inv.mpi_us});
  });

  std::cout << "Fig. 9: per-ghost-update MPI time by hierarchy level "
               "(microseconds). One regrid at mid-run.\n\n";
  ccaperf::TextTable t;
  t.set_header({"rank", "level", "phase", "N", "mean us", "sd us", "min", "max"});
  // Split each rank's series at the regrid (half the invocations, since
  // steps are uniform).
  std::map<std::pair<int, int>, std::pair<double, double>> phase_means;
  for (int rank = 0; rank < kRanks; ++rank) {
    const auto& obs = observations[static_cast<std::size_t>(rank)];
    const std::size_t split = obs.empty() ? 0 : obs[obs.size() / 2].seq;
    for (int level = 0; level < 3; ++level) {
      for (int phase = 0; phase < 2; ++phase) {
        ccaperf::RunningStats s;
        for (const auto& o : obs) {
          if (o.level != level) continue;
          const bool late = o.seq >= split;
          if ((phase == 1) == late) s.add(o.mpi_us);
        }
        if (s.count() == 0) continue;
        t.add_row({std::to_string(rank), std::to_string(level),
                   phase == 0 ? "pre-regrid" : "post-regrid",
                   std::to_string(s.count()), ccaperf::fmt_double(s.mean(), 5),
                   ccaperf::fmt_double(s.sample_stddev(), 4),
                   ccaperf::fmt_double(s.min(), 5),
                   ccaperf::fmt_double(s.max(), 5)});
        if (rank == 0)
          (phase == 0 ? phase_means[{level, 0}].first
                      : phase_means[{level, 0}].second) = s.mean();
      }
    }
  }
  t.render(std::cout);

  std::vector<std::vector<std::string>> csv_rows;
  for (int rank = 0; rank < kRanks; ++rank)
    for (const auto& o : observations[static_cast<std::size_t>(rank)])
      csv_rows.push_back({std::to_string(rank), std::to_string(o.level),
                          std::to_string(o.seq),
                          ccaperf::fmt_double(o.mpi_us, 9)});
  bench::write_series_csv("fig09_message_passing.csv",
                          {"rank", "level", "invocation", "mpi_us"}, csv_rows);

  // Scatter and clustering summary.
  double shift0 = 0.0, shift2 = 0.0;
  if (phase_means.count({0, 0}))
    shift0 = phase_means[{0, 0}].second / std::max(1e-9, phase_means[{0, 0}].first);
  if (phase_means.count({2, 0}))
    shift2 = phase_means[{2, 0}].second / std::max(1e-9, phase_means[{2, 0}].first);

  bench::print_comparison(
      "Fig. 9 (ghost-update message-passing times)",
      {
          {"per-level clustering", "times cluster by level",
           "see per-level means above"},
          {"regrid splits clusters",
           "clustering at levels 0 and 2 after one re-grid",
           "post/pre mean ratio: L0 = " + ccaperf::fmt_double(shift0, 3) +
               ", L2 = " + ccaperf::fmt_double(shift2, 3)},
          {"scatter source", "fluctuating network loads",
           "modeled log-normal jitter (sd columns)"},
          {"comparable to compute loads",
           "message times ~ States/Godunov compute times",
           "cross-check bench_fig06/07 outputs"},
      });
  return 0;
}
