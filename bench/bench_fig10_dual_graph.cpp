// Fig. 10 — the application dual and assembly optimization: "a composite
// performance model where the variables are the individual performance
// models of the components themselves", built in the Mastermind from the
// wiring diagram + call trace, with "edge weights corresponding to the
// number of invocations and the vertex weights being the compute and
// communication times determined from the performance models"; negligible
// sub-graphs are pruned; the Mastermind is connected to the framework "to
// enable dynamic replacement of sub-optimal components".
//
// Pipeline reproduced here:
//   1. fit EFM/Godunov/States models from instrumented sweeps (Figs. 6-8);
//   2. run the instrumented application to record the call path
//      (invocation counts and the Q workload actually seen);
//   3. build + prune the dual, predicting vertex weights from the models;
//   4. enumerate the 2 flux assemblies, pick the best at QoS weight 0
//      (performance only -> EFMFlux) and at a high accuracy weight
//      (-> GodunovFlux), and *dynamically reconnect* the app to the winner.

#include <map>

#include "bench_common.hpp"
#include "components/app_assembly.hpp"
#include "core/dual_graph.hpp"
#include "core/optimizer.hpp"

int main() {
  const euler::GasModel gas;

  // ---- 1. component performance models (reduced sweeps) ----
  // Power-law fits (the paper's Eq. 1 form for States): positive for all
  // Q, so the optimizer's composite cost stays meaningful down to the
  // small patches the application actually processes — a linear fit's
  // negative intercept would zero out the cheap implementation there.
  std::cout << "building component performance models...\n";
  auto fit_flux = [](const std::vector<core::Sample>& all) {
    std::vector<core::Sample> means;
    for (const core::Bin& b : core::bin_by_q(all))
      means.push_back(core::Sample{b.q, b.mean});
    return core::fit_power_law(means);
  };
  const auto states_model = fit_flux(bench::sweep_component("states", 1, 3, 60'000).all);
  const auto godunov_model = fit_flux(bench::sweep_component("godunov", 1, 3, 60'000).all);
  const auto efm_model = fit_flux(bench::sweep_component("efm", 1, 3, 60'000).all);
  std::cout << "  T_States(Q)  = " << states_model->formula() << '\n'
            << "  T_Godunov(Q) = " << godunov_model->formula() << '\n'
            << "  T_EFM(Q)     = " << efm_model->formula() << "\n\n";

  // ---- 2. call path from an instrumented run ----
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.driver.nsteps = 4;
  cfg.driver.regrid_interval = 0;

  std::map<double, double> flux_workload;  // Q -> invocation count
  std::map<std::string, std::pair<double, double>> measured;  // inst -> (compute, comm)
  std::map<std::string, double> invocation_counts;
  cca::WiringDiagram wiring;

  mpp::Runtime::run(1, [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, cfg);
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    wiring = app.fw().wiring();
    const std::map<std::string, std::string> keys{
        {"sc_proxy", "sc_proxy::compute()"},
        {"flux_proxy", "g_proxy::compute()"},
        {"icc_proxy", "icc_proxy::ghost_update()"}};
    for (const auto& [inst, key] : keys) {
      const core::Record* rec = app.mastermind->record(key);
      if (rec == nullptr) continue;
      double compute = 0.0, comm = 0.0;
      for (const auto& inv : rec->invocations()) {
        compute += inv.compute_us;
        comm += inv.mpi_us;
        if (inst == "flux_proxy") flux_workload[inv.params.at("Q")] += 1.0;
      }
      measured[inst] = {compute, comm};
      invocation_counts[key] = static_cast<double>(rec->count());
    }
  });

  // ---- 3. the dual ----
  const auto dual = core::DualGraph::build(
      wiring,
      [&](const std::string& inst) -> std::pair<double, double> {
        auto it = measured.find(inst);
        return it == measured.end() ? std::pair{0.0, 0.0} : it->second;
      },
      [&](const cca::Connection& c) -> double {
        if (c.provider_instance == "sc_proxy")
          return invocation_counts["sc_proxy::compute()"];
        if (c.provider_instance == "flux_proxy")
          return invocation_counts["g_proxy::compute()"];
        if (c.provider_instance == "icc_proxy")
          return invocation_counts["icc_proxy::ghost_update()"];
        return 1.0;
      });
  std::cout << "=== application dual ===\n";
  dual.print(std::cout);
  const auto pruned = dual.pruned(0.02);
  std::cout << "\nafter pruning sub-2% vertices (" << dual.vertices().size()
            << " -> " << pruned.vertices().size() << " vertices):\n";
  pruned.print(std::cout);
  std::cout << "\nGraphViz:\n" << dual.to_dot() << '\n';

  // ---- 4. assembly optimization over the recorded workload ----
  core::Slot flux_slot;
  flux_slot.functionality = "euler.FluxPort";
  flux_slot.candidates = {
      core::Candidate{"EFMFlux", efm_model.get(), 0.7},
      core::Candidate{"GodunovFlux", godunov_model.get(), 1.0}};
  for (const auto& [q, n] : flux_workload) flux_slot.workload.emplace_back(q, n);

  core::AssemblyOptimizer opt;
  opt.add_slot(flux_slot);
  const auto all = opt.evaluate_all(0.0);
  std::cout << "=== assembly choices (QoS weight 0: pure performance) ===\n";
  ccaperf::TextTable t;
  t.set_header({"assembly", "predicted flux time (ms)", "min accuracy", "cost"});
  for (const auto& choice : all)
    t.add_row({choice.selection.at("euler.FluxPort"),
               ccaperf::fmt_double(choice.predicted_time_us / 1000.0, 5),
               ccaperf::fmt_double(choice.min_accuracy, 3),
               ccaperf::fmt_double(choice.cost / 1000.0, 5)});
  t.render(std::cout);

  const auto fast = opt.best(0.0);
  const auto accurate = opt.best(10.0);

  // Dynamic replacement: reconnect the live app's flux port to the winner.
  mpp::Runtime::run(1, [&](mpp::Comm& world) {
    auto app = core::assemble_instrumented_app(world, cfg);
    const std::string winner = fast.selection.at("euler.FluxPort");
    if (!app.fw().has_instance("alt_flux"))
      app.fw().instantiate("alt_flux", winner == cfg.flux_impl ? "EFMFlux" : winner);
    app.fw().reconnect("flux_proxy", "flux_real", "alt_flux", "flux");
    app.fw().services("driver").provided_as<components::GoPort>("go")->go();
    std::cout << "\ndynamically reconnected flux_proxy -> " << winner
              << " and re-ran: OK\n";
  });

  bench::print_comparison(
      "Fig. 10 (dual graph + assembly optimization)",
      {
          {"dual structure",
           "vertices = components (compute+comm), edges = invocation counts",
           std::to_string(dual.vertices().size()) + " vertices / " +
               std::to_string(dual.edges().size()) + " edges"},
          {"negligible sub-graphs pruned", "identified via vertex weights",
           std::to_string(dual.vertices().size() - pruned.vertices().size()) +
               " vertices pruned at 2%"},
          {"performance-optimal flux", "EFMFlux (better characteristics)",
           fast.selection.at("euler.FluxPort")},
          {"QoS-weighted choice",
           "GodunovFlux preferred by scientists (more accurate)",
           accurate.selection.at("euler.FluxPort") + " at accuracy weight 10"},
          {"dynamic replacement", "via AbstractFramework port",
           "Framework::reconnect applied to the live assembly"},
      });
  return 0;
}
