#pragma once
// Shared machinery for the figure-reproduction benches (see DESIGN.md §4):
// synthetic patch workloads spanning the paper's Q range, an instrumented
// kernel rig (proxies + Mastermind + TAU on each rank), and table/series
// printing in a consistent format.
//
// Benches print a "paper vs measured" block at the end; EXPERIMENTS.md
// records the comparison.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "components/flux_components.hpp"
#include "components/states_component.hpp"
#include "core/instrumented_app.hpp"
#include "core/modeling.hpp"
#include "mpp/runtime.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace bench {

/// The paper sweeps array sizes up to ~1.5e5 elements (Figs. 4-8). We
/// generate near-square patch shapes whose ghost-inclusive cell count Q
/// spans that range.
struct PatchShape {
  amr::Box interior;
  std::size_t q = 0;  ///< cells including 2 ghost layers (the proxy's Q)
};

inline std::vector<PatchShape> paper_q_sweep(std::size_t q_max = 150'000,
                                             std::size_t q_min = 1'000,
                                             double factor = 1.35) {
  std::vector<PatchShape> shapes;
  for (double target = static_cast<double>(q_min);
       target <= static_cast<double>(q_max); target *= factor) {
    // Tall (1:4) patches: the strided (Y) sweep's cache reuse distance is
    // proportional to the column height, so it crosses the 512 kB cache
    // around Q ~ 7e4 — the same "arrays overflow the cache" crossover the
    // paper's 1-D data arrays exhibit (Figs. 4-5). Patches "can be of any
    // size or aspect ratio" (paper §5).
    const int w = std::max(8, static_cast<int>(std::sqrt(target) / 2.0));
    const int h = 4 * w;
    PatchShape s;
    s.interior = amr::Box{0, 0, w - 1, h - 1};
    s.q = static_cast<std::size_t>((w + 4)) * static_cast<std::size_t>(h + 4);
    shapes.push_back(s);
  }
  return shapes;
}

/// Fills a patch with a smooth-but-nontrivial flow (keeps the Riemann
/// iteration counts realistic for GodunovFlux).
inline amr::PatchData<double> workload_patch(const amr::Box& interior,
                                             const euler::GasModel& gas,
                                             std::uint64_t seed) {
  amr::PatchData<double> u(interior, 2, euler::kNcomp);
  ccaperf::Rng rng(seed);
  const amr::Box g = u.grown_box();
  for (int j = g.lo().j; j <= g.hi().j; ++j) {
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      // Mix of smooth gradients and occasional sharp jumps (shock-like).
      const bool jump = ((i / 16) % 3 == 0);
      const euler::Prim w{
          (jump ? 1.8 : 1.0) + 0.05 * std::sin(0.07 * i) + 0.04 * std::cos(0.05 * j),
          0.3 * std::sin(0.03 * i) + (jump ? 0.5 : 0.0),
          0.1 * std::cos(0.04 * j),
          (jump ? 2.4 : 1.0) + 0.02 * std::sin(0.06 * (i + j)),
          (i % 32 < 16) ? 1.0 : 0.0};
      double U[euler::kNcomp];
      euler::prim_to_cons(w, gas, U);
      for (int c = 0; c < euler::kNcomp; ++c) u(i, j, c) = U[c];
      (void)rng;
    }
  }
  return u;
}

/// An instrumented kernel rig on one rank: States + EFMFlux + GodunovFlux
/// behind proxies, with Mastermind/TAU recording (the paper's measurement
/// path, minus the mesh).
struct KernelRig {
  cca::Framework fw;
  core::MastermindComponent* mm = nullptr;
  core::TauMeasurementComponent* tau = nullptr;
  components::StatesPort* states = nullptr;   // via sc_proxy
  components::FluxPort* godunov = nullptr;    // via g_proxy
  components::FluxPort* efm = nullptr;        // via efm_proxy

  explicit KernelRig(const euler::GasModel& gas) : fw(make_repo(gas)) {
    fw.instantiate("tau", "TauMeasurement");
    fw.instantiate("mm", "Mastermind");
    fw.instantiate("states", "States");
    fw.instantiate("godunov", "GodunovFlux");
    fw.instantiate("efm", "EFMFlux");
    fw.instantiate("sc_proxy", "StatesProxy");
    fw.instantiate("g_proxy", "GodunovProxy");
    fw.instantiate("efm_proxy", "EfmProxy");
    fw.connect("mm", "measurement", "tau", "measurement");
    for (const char* p : {"sc_proxy", "g_proxy", "efm_proxy"})
      fw.connect(p, "monitor", "mm", "monitor");
    fw.connect("sc_proxy", "states_real", "states", "states");
    fw.connect("g_proxy", "flux_real", "godunov", "flux");
    fw.connect("efm_proxy", "flux_real", "efm", "flux");
    mm = dynamic_cast<core::MastermindComponent*>(&fw.component("mm"));
    tau = dynamic_cast<core::TauMeasurementComponent*>(&fw.component("tau"));
    states = fw.services("sc_proxy").provided_as<components::StatesPort>("states");
    godunov = fw.services("g_proxy").provided_as<components::FluxPort>("flux");
    efm = fw.services("efm_proxy").provided_as<components::FluxPort>("flux");
  }

  static cca::ComponentRepository make_repo(const euler::GasModel& gas) {
    cca::ComponentRepository repo;
    repo.register_class("TauMeasurement", [] {
      return std::make_unique<core::TauMeasurementComponent>();
    });
    repo.register_class("Mastermind",
                        [] { return std::make_unique<core::MastermindComponent>(); });
    repo.register_class("States", [gas] {
      return std::make_unique<components::StatesComponent>(gas);
    });
    repo.register_class("GodunovFlux", [gas] {
      return std::make_unique<components::GodunovFluxComponent>(gas);
    });
    repo.register_class("EFMFlux", [gas] {
      return std::make_unique<components::EFMFluxComponent>(gas);
    });
    repo.register_class("StatesProxy",
                        [] { return std::make_unique<core::StatesProxy>(); });
    repo.register_class("GodunovProxy", [] {
      return std::make_unique<core::FluxProxy>("g_proxy::compute()");
    });
    repo.register_class("EfmProxy", [] {
      return std::make_unique<core::FluxProxy>("efm_proxy::compute()");
    });
    return repo;
  }

  /// One full States (+ optionally flux) invocation pair through the
  /// proxies in the given direction.
  void invoke(const amr::PatchData<double>& u, euler::Dir dir,
              components::FluxPort* flux) {
    const amr::Box interior = u.interior();
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
    states->compute(u, interior, dir, l, r);
    if (flux != nullptr) {
      euler::Array2 f(nx, ny, euler::kNcomp);
      flux->compute(l, r, dir, f);
    }
  }
};

/// Samples of one record as core::Sample points for the chosen metric.
inline std::vector<core::Sample> record_samples(const core::Record& rec,
                                                core::Record::Metric metric) {
  std::vector<core::Sample> out;
  for (auto [q, t] : rec.samples("Q", metric)) out.push_back({q, t});
  return out;
}

/// Result of a "3 processors" kernel sweep (the paper ran each component
/// on 3 cluster nodes; we run 3 independent measurement passes — on this
/// in-process substrate concurrent rank threads would share one CPU, so
/// passes run back-to-back, preserving per-proc independence without
/// scheduler-induced cross-talk).
struct SweepResult {
  /// Per-proc (Q, wall_us) samples, both access modes interleaved.
  std::vector<std::vector<core::Sample>> by_proc;
  /// All procs merged.
  std::vector<core::Sample> all;
  /// Merged, split by access mode: [0] = sequential (X), [1] = strided (Y).
  std::vector<core::Sample> by_mode[2];
};

/// Sweeps one monitored component over the paper's Q range.
/// `which`: "states", "godunov" or "efm".
inline SweepResult sweep_component(const std::string& which, int nprocs, int reps,
                                   std::size_t q_max = 150'000) {
  const euler::GasModel gas;
  const auto shapes = paper_q_sweep(q_max);
  SweepResult result;
  result.by_proc.resize(static_cast<std::size_t>(nprocs));

  const std::string record_key = which == "states"    ? "sc_proxy::compute()"
                                 : which == "godunov" ? "g_proxy::compute()"
                                                      : "efm_proxy::compute()";
  for (int proc = 0; proc < nprocs; ++proc) {
    KernelRig rig(gas);
    components::FluxPort* flux = which == "godunov" ? rig.godunov
                                 : which == "efm"   ? rig.efm
                                                    : nullptr;
    std::size_t shape_id = 0;
    for (const PatchShape& shape : shapes) {
      const auto u = workload_patch(
          shape.interior, gas,
          0xbeef + static_cast<std::uint64_t>(proc) * 131 + shape_id++);
      for (int rep = 0; rep < reps; ++rep) {
        rig.invoke(u, euler::Dir::x, flux);
        rig.invoke(u, euler::Dir::y, flux);
      }
    }
    const core::Record* rec = rig.mm->record(record_key);
    CCAPERF_REQUIRE(rec != nullptr, "sweep: record missing");
    for (const core::Invocation& inv : rec->invocations()) {
      const core::Sample s{inv.params.at("Q"), inv.wall_us};
      result.by_proc[static_cast<std::size_t>(proc)].push_back(s);
      result.all.push_back(s);
      result.by_mode[inv.params.at("mode") > 0.5 ? 1 : 0].push_back(s);
    }
  }
  return result;
}

/// Resolves a generated-figure filename to its output directory
/// (CCAPERF_FIG_DIR, default bench_out/figs — gitignored), creating the
/// directory on first use. Generated CSVs never land in the repo root.
inline std::string fig_path(const std::string& filename) {
  const char* env = std::getenv("CCAPERF_FIG_DIR");
  const std::string dir =
      (env != nullptr && *env != '\0') ? env : "bench_out/figs";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // EEXIST and races are fine
  return dir + "/" + filename;
}

/// Writes a data series as CSV (under fig_path) next to the bench's stdout
/// table, for the gnuplot scripts in plots/. Returns the path.
inline std::string write_series_csv(const std::string& filename,
                                    const std::vector<std::string>& header,
                                    const std::vector<std::vector<std::string>>& rows) {
  const std::string path = fig_path(filename);
  std::ofstream os(path);
  ccaperf::CsvWriter csv(os);
  csv.row(header);
  for (const auto& r : rows) csv.row(r);
  std::cout << "series written to " << path << '\n';
  return path;
}

/// One gateable data point for scripts/bench_gate.py: benches write a list
/// of these to bench_out/<name>.json and the checked-in baseline in
/// bench/baselines/<name>.json selects which metrics are gated.
struct JsonEntry {
  std::string name;
  std::string metric;
  double value = 0.0;
};

inline void write_bench_json(const std::string& path,
                             const std::vector<JsonEntry>& entries) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  std::ofstream os(path);
  if (!os) {
    std::cout << "warning: cannot open " << path << " (run from the repo root)\n";
    return;
  }
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  {\"name\": \"" << entries[i].name << "\", \"metric\": \""
       << entries[i].metric << "\", \"value\": " << entries[i].value << "}"
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::cout << "series written to " << path << '\n';
}

/// One row of the paper-vs-measured comparison block.
struct Comparison {
  std::string quantity;
  std::string paper;
  std::string measured;
};

/// Prints a paper-comparison block in a consistent format.
inline void print_comparison(const std::string& what,
                             const std::vector<Comparison>& rows) {
  std::cout << "\n--- paper vs measured: " << what << " ---\n";
  ccaperf::TextTable t;
  t.set_header({"quantity", "paper", "measured"});
  for (const Comparison& r : rows) t.add_row({r.quantity, r.paper, r.measured});
  t.render(std::cout);
}

}  // namespace bench
