// Ablation — overhead-governed adaptive monitoring (DESIGN.md §12).
//
// The paper asserts its instrumentation overheads "are small" (§4); the
// OverheadGovernor enforces a budget instead. This ablation measures the
// enforcement on the States sweep with the full observability stack
// attached — monitored proxies, telemetry, and a cache-sim replay priced
// per invocation (the deterministic counter substrate's real cost):
//
//   raw      — plain kernel, no instrumentation (the denominator);
//   full     — always-on monitoring at full verbosity (stride 1 replay,
//              telemetry every 16 records): the ungoverned cost;
//   governed — the same stack with CCAPERF_OVERHEAD_PCT-style budget of
//              2%: the controller must converge below 2.5% realized
//              overhead while the streaming fit built from the sampled
//              records stays within 5% of the full-rate fit's power-law
//              exponent.
//
// Rounds interleave raw/full/governed so drift hits all three equally.
// Hard gates (abort on violation, so CI can run the binary directly):
//   * governed late-half overhead <= 2.5%  (budget 2% + hysteresis band)
//   * full overhead >= 8%                  (the problem is real)
//   * |exp_governed - exp_full| / |exp_full| <= 5%
// Results land in bench_out/governor.json for the bench_gate.py baseline.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <sstream>

#include "bench_common.hpp"
#include "core/governor.hpp"
#include "hwc/cache_sim.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct Workload {
  std::vector<bench::PatchShape> shapes;
  std::vector<amr::PatchData<double>> patches;
};

Workload make_workload(const euler::GasModel& gas) {
  Workload w;
  // 8 shapes spanning the paper's Q range keep the sweep short enough for
  // many rounds while crossing the cache capacity like Figs. 4-6.
  w.shapes = bench::paper_q_sweep(/*q_max=*/120'000, /*q_min=*/2'000,
                                  /*factor=*/1.85);
  for (const auto& s : w.shapes)
    w.patches.push_back(bench::workload_patch(s.interior, gas, 7 + s.q));
  return w;
}

/// The priced instrumentation: replay the patch's access pattern through a
/// persistent cache simulator, thinned by the governor's cache-sim stride.
/// Returns the microseconds spent (the replay's cumulative cost feeds the
/// governor as a cost source). The simulator is deliberately small — its
/// way metadata (~8 kB) must not evict the patch from the REAL cache,
/// because that externality would slow the next kernel call by an amount
/// the self-cost accounting cannot see.
double replay_cost_us(hwc::CacheSim& sim, const amr::PatchData<double>& u,
                      std::uint32_t stride) {
  const auto t0 = Clock::now();
  const amr::Box g = u.grown_box();
  const std::size_t rows = static_cast<std::size_t>(g.hi().j - g.lo().j + 1);
  const std::size_t cols = static_cast<std::size_t>(g.hi().i - g.lo().i + 1);
  // Three passes at row-step 4 calibrate the stride-1 replay to ~25% of
  // the kernel's own cost. That places the ladder's readings around the
  // band [budget - band, budget + band] = [1.5%, 2.5%] so the controller
  // converges, and stays, at L3: L2 reads ~3.5% (throttle), L3 reads ~1.9%
  // (inside the band — no relax oscillation), and L3's monitor stride of 2
  // means the sampled-fit gate exercises the thinned-record path.
  const std::size_t step = 4 * (stride < 1 ? 1 : stride);
  for (int pass = 0; pass < 3; ++pass)
    for (std::size_t j = 0; j < rows; j += step)
      sim.access_run((std::uintptr_t{1} << 20) + j * 8192, 8,
                     cols * static_cast<std::size_t>(euler::kNcomp), 8,
                     (j + static_cast<std::size_t>(pass)) % 3 == 0);
  return us_since(t0);
}

/// One full sweep through the workload: `reps` repetitions of every shape
/// in both access modes. Returns wall microseconds for the sweep. Each rep
/// runs a block of sequential sweeps then a block of strided ones — the
/// odd block length (shape count) keeps the governor's power-of-two
/// monitor strides from aliasing onto a single access mode.
///
/// When `cell_min` is non-null (size shapes x 2) every call is also timed
/// individually and folded into a per-(shape, dir) minimum. On a noisy
/// shared host the scheduler stalls whole rounds at a time; a min over
/// many per-call samples recovers the true per-config cost where
/// round-total pairing cannot (both estimators are printed below).
template <class Invoke>
double sweep_us(const Workload& w, int reps, std::vector<double>* cell_min,
                Invoke&& invoke) {
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) {
    int d = 0;
    for (euler::Dir dir : {euler::Dir::x, euler::Dir::y}) {
      for (std::size_t s = 0; s < w.shapes.size(); ++s) {
        const auto c0 = Clock::now();
        invoke(w.patches[s], dir);
        if (cell_min != nullptr) {
          double& slot = (*cell_min)[static_cast<std::size_t>(d) *
                                         w.shapes.size() +
                                     s];
          slot = std::min(slot, us_since(c0));
        }
      }
      ++d;
    }
  }
  return us_since(t0);
}

double power_law_exponent(const core::Record& rec) {
  core::StreamingPowerLawFit fit;
  for (auto [q, t] : rec.samples("Q", core::Record::Metric::wall)) fit.add(q, t);
  const auto model = fit.fit();
  CCAPERF_REQUIRE(model != nullptr, "governor ablation: degenerate fit");
  return model->exponent();
}

}  // namespace

int main() {
  const euler::GasModel gas;
  const Workload w = make_workload(gas);
  const int rounds = 18;
  const int reps = 3;  // shapes x 2 dirs x 3 reps ~= 42 monitored calls/round

  // CCAPERF_OVERHEAD_PCT overrides the budget for exploratory sweeps (the
  // EXPERIMENTS.md budget-convergence table is built from such runs); the
  // hard gates and the JSON series only apply at the default 2% point so a
  // 0.5% exploration can't fail CI or poison the baseline.
  double budget = 2.0;
  if (const char* e = std::getenv("CCAPERF_OVERHEAD_PCT")) {
    const double v = std::strtod(e, nullptr);
    if (v > 0.0) budget = v;
  }
  const bool gated = budget == 2.0;

  std::cout << "Ablation: overhead governor — " << w.shapes.size()
            << " shapes, " << rounds << " interleaved rounds, budget "
            << ccaperf::fmt_double(budget, 3) << "%"
            << (gated ? "" : " (exploratory: gates off)") << "\n\n";

  // raw: plain component, no monitoring.
  components::StatesComponent raw_states(gas);
  auto raw_call = [&](const amr::PatchData<double>& u, euler::Dir dir) {
    const amr::Box interior = u.interior();
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
    raw_states.compute(u, interior, dir, l, r);
  };

  // full: monitored proxy path + stride-1 cache replay + telemetry.
  bench::KernelRig full_rig(gas);
  hwc::CacheSim full_sim(32 * 1024, 64, 8);
  std::ostringstream full_telem;
  double full_replay_us = 0.0;
  full_rig.mm->add_cost_source("cachesim", [&] { return full_replay_us; });
  full_rig.mm->start_telemetry(full_telem, 16);
  auto full_call = [&](const amr::PatchData<double>& u, euler::Dir dir) {
    full_rig.invoke(u, dir, nullptr);
    full_replay_us += replay_cost_us(full_sim, u, 1);
  };

  // governed: identical stack under the budget. The controller's cache-sim
  // actuator steers the replay stride; monitor sampling thins the records.
  bench::KernelRig gov_rig(gas);
  const int calls_per_round =
      static_cast<int>(w.shapes.size()) * 2 * reps;  // per governed sweep
  core::GovernorConfig gcfg;
  gcfg.enabled = true;
  gcfg.budget_pct = budget;
  gcfg.band_pct = 0.5;  // the acceptance bound: converged means <= 2.5%
  // Two windows per governed sweep: the first spans the raw/full sweeps of
  // the interleaved round (its wall time is diluted by foreign work and
  // reads artificially calm), the second sits entirely inside the governed
  // segment and drives the controller. calm_windows = 3 means a relax needs
  // a genuinely calm in-segment window, not just diluted boundary ones.
  gcfg.window_records = static_cast<std::uint64_t>(calls_per_round / 2);
  gcfg.settle_windows = 1;
  gcfg.calm_windows = 3;
  core::OverheadGovernor governor(gcfg);
  hwc::CacheSim gov_sim(32 * 1024, 64, 8);
  std::uint32_t gov_replay_stride = 1;
  std::ostringstream gov_telem;
  double gov_replay_us = 0.0;
  gov_rig.mm->attach_governor(&governor);
  // The stride actuator drives both the replay below and the global
  // cache-sim sampling stride, so the counted kernels inside the rig's
  // components thin their in-kernel probes too (the same wiring the
  // instrumented assembly installs in instrumented_app.cpp).
  gov_rig.mm->set_counter_stride_actuator([&](std::uint32_t s) {
    gov_replay_stride = s;
    hwc::set_governor_sample_stride(s);
  });
  gov_rig.mm->add_cost_source("cachesim", [&] { return gov_replay_us; });
  gov_rig.mm->start_telemetry(gov_telem, 16);
  auto gov_call = [&](const amr::PatchData<double>& u, euler::Dir dir) {
    gov_rig.invoke(u, dir, nullptr);
    gov_replay_us += replay_cost_us(gov_sim, u, gov_replay_stride);
  };

  // Warmup: one untimed raw sweep faults in the patches.
  sweep_us(w, 1, nullptr, raw_call);

  // Per-(shape, dir) minima, collected over the late half only: by then
  // the controller has converged, and all three configs sample the same
  // machine epoch. These drive the gates; round totals are display only.
  const std::size_t ncells = w.shapes.size() * 2;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> raw_cells(ncells, kInf), full_cells(ncells, kInf),
      gov_cells(ncells, kInf);

  std::vector<double> raw_t, full_t, gov_t;
  std::vector<int> gov_level;
  ccaperf::TextTable t;
  t.set_header({"round", "raw ms", "full ms", "governed ms", "level",
                "full ovh %", "gov ovh %"});
  for (int r = 0; r < rounds; ++r) {
    const bool late = r >= rounds / 2;
    // Rotate the config order each round: a slow scheduler patch then hits
    // raw/full/governed equally often instead of always the same slot.
    double ms[3];
    for (int k = 0; k < 3; ++k) {
      switch ((r + k) % 3) {
        case 0:
          ms[0] = sweep_us(w, reps, late ? &raw_cells : nullptr, raw_call);
          break;
        case 1:
          // The stride actuator state is process-global; the full config
          // must run its counted kernels at full rate regardless of where
          // the governed ladder currently sits.
          hwc::set_governor_sample_stride(1);
          ms[1] = sweep_us(w, reps, late ? &full_cells : nullptr, full_call);
          break;
        default:
          hwc::set_governor_sample_stride(gov_replay_stride);
          ms[2] = sweep_us(w, reps, late ? &gov_cells : nullptr, gov_call);
          break;
      }
    }
    raw_t.push_back(ms[0]);
    full_t.push_back(ms[1]);
    gov_t.push_back(ms[2]);
    gov_level.push_back(governor.level());
    const double base = *std::min_element(raw_t.begin(), raw_t.end());
    t.add_row({std::to_string(r), ccaperf::fmt_double(raw_t.back() / 1e3, 2),
               ccaperf::fmt_double(full_t.back() / 1e3, 2),
               ccaperf::fmt_double(gov_t.back() / 1e3, 2),
               std::to_string(governor.level()),
               ccaperf::fmt_double(100.0 * (full_t.back() - base) / base, 2),
               ccaperf::fmt_double(100.0 * (gov_t.back() - base) / base, 2)});
  }
  t.render(std::cout);

  // Controller trace: every evaluated window, as the audit trail the
  // EXPERIMENTS.md convergence table is built from.
  std::cout << "\ncontroller windows (evaluated):\n";
  for (const auto& d : governor.history())
    std::cout << "  L" << d.prev_level << (d.changed ? " -> L" : " == L")
              << d.level << "  overhead "
              << ccaperf::fmt_double(d.overhead_pct, 3) << "%  headroom "
              << ccaperf::fmt_double(d.headroom_pct, 3) << "%\n";
  const double gov_wall_total =
      std::accumulate(gov_t.begin(), gov_t.end(), 0.0);
  std::cout << "replay totals: full " << ccaperf::fmt_double(full_replay_us / 1e3, 4)
            << " ms, governed " << ccaperf::fmt_double(gov_replay_us / 1e3, 4)
            << " ms (" << ccaperf::fmt_double(100.0 * gov_replay_us / gov_wall_total, 3)
            << "% of governed wall)\n";

  // Convergence is judged on the late half: the controller needs a few
  // windows to walk the ladder down from full verbosity. Each gate ratio
  // sums per-cell minima over the same rounds, so a scheduler stall that
  // eats one round (or one shape) biases neither side.
  const double raw_sum = std::accumulate(raw_cells.begin(), raw_cells.end(), 0.0);
  const double full_sum =
      std::accumulate(full_cells.begin(), full_cells.end(), 0.0);
  const double gov_sum = std::accumulate(gov_cells.begin(), gov_cells.end(), 0.0);
  CCAPERF_REQUIRE(std::isfinite(raw_sum + full_sum + gov_sum),
                  "governor ablation: a cell collected no samples");
  const double full_ovh = 100.0 * (full_sum - raw_sum) / raw_sum;
  const double gov_ovh = 100.0 * (gov_sum - raw_sum) / raw_sum;

  const core::Record* full_rec = full_rig.mm->record("sc_proxy::compute()");
  const core::Record* gov_rec = gov_rig.mm->record("sc_proxy::compute()");
  CCAPERF_REQUIRE(full_rec != nullptr && gov_rec != nullptr,
                  "governor ablation: missing records");
  const double exp_full = power_law_exponent(*full_rec);
  const double exp_gov = power_law_exponent(*gov_rec);
  const double exp_err = std::abs(exp_gov - exp_full) / std::abs(exp_full);
  const double realized = gov_rig.mm->realized_fraction("sc_proxy::compute()");

  gov_rig.mm->stop_telemetry();
  full_rig.mm->stop_telemetry();

  std::cout << "\nfull monitoring overhead   : " << ccaperf::fmt_double(full_ovh, 2)
            << "% of raw (per-cell min, late half)\n"
            << "governed overhead (late)   : " << ccaperf::fmt_double(gov_ovh, 2)
            << "%  [budget " << ccaperf::fmt_double(budget, 3)
            << "%, band 0.5%]\n"
            << "final governor level       : L" << governor.level() << " ("
            << governor.throttles() << " throttles, " << governor.unthrottles()
            << " unthrottles)\n"
            << "records kept (governed)    : "
            << ccaperf::fmt_double(100.0 * realized, 1) << "% of calls\n"
            << "power-law exponent         : full " << ccaperf::fmt_double(exp_full, 4)
            << " vs governed " << ccaperf::fmt_double(exp_gov, 4) << "  (rel err "
            << ccaperf::fmt_double(100.0 * exp_err, 2) << "%)\n";

  bench::print_comparison(
      "Ablation (overhead governor)",
      {
          {"ungoverned overhead", ">= 8% (the §4 assertion fails at scale)",
           ccaperf::fmt_double(full_ovh, 1) + "%"},
          {"governed overhead", "<= 2.5% (budget + hysteresis band)",
           ccaperf::fmt_double(gov_ovh, 1) + "%"},
          {"sampled-fit agreement", "exponent within 5% of full-rate fit",
           ccaperf::fmt_double(100.0 * exp_err, 1) + "%"},
      });

  if (!gated) {
    std::cout << "\nexploratory budget: gates and JSON series skipped\n";
    return 0;
  }

  bench::write_bench_json(
      "bench_out/governor.json",
      {{"governor", "full_overhead_pct", full_ovh},
       {"governor", "governed_overhead_late_pct", gov_ovh},
       {"governor", "exponent_rel_err_pct", 100.0 * exp_err},
       {"governor", "governor_final_level", static_cast<double>(governor.level())},
       {"governor", "realized_record_fraction", realized}});

  // Hard acceptance gates (flush first so the table survives an abort).
  std::cout.flush();
  CCAPERF_REQUIRE(full_ovh >= 8.0,
                  "governor ablation: full stack cheaper than 8% — the "
                  "governed comparison is meaningless on this host");
  CCAPERF_REQUIRE(gov_ovh <= 2.5,
                  "governor ablation: governed overhead missed the budget");
  CCAPERF_REQUIRE(governor.level() > 0,
                  "governor ablation: controller never actuated");
  CCAPERF_REQUIRE(exp_err <= 0.05,
                  "governor ablation: sampled fit diverged from full fit");
  // The governed telemetry must carry the audit trail.
  CCAPERF_REQUIRE(gov_telem.str().find("\"governor\":{\"event\":\"tier\"") !=
                      std::string::npos,
                  "governor ablation: no tier-transition telemetry");
  std::cout << "\ngates: OK\n";
  return 0;
}
