// Fig. 7 + Eq. 1/2 — GodunovFlux performance model: the paper fits
// T = -963 + 0.315 Q us; the standard deviation *grows* with Q because the
// component "involves an internal iterative solution for every element of
// the data array".

#include "bench_models.hpp"

int main() {
  return bench::run_model_bench(bench::ModelBenchSpec{
      "Fig. 7",
      "GodunovFlux",
      "godunov",
      "T = -963 + 0.315 Q  [us]",
      "sigma = -526 + 0.152 Q  (grows with Q)",
      "variability increases with Q (per-element iterative Riemann solve)",
      2,
      "fig07_godunov_model.csv",
  });
}
