// Ablation — batched tracing fast path (run-length cache simulation).
//
// The paper's measurement harness must not distort what it measures:
// "these instrumentation related overheads are small" (§4). Replaying
// every load/store through the cache simulator element by element makes
// traced kernel runs many times slower than raw ones; the batched
// access_run path collapses each strided run into per-line work while
// producing bit-identical counters (asserted here and property-tested in
// tests/hwc/test_access_run.cpp).
//
// This bench times the States sequential (X) sweep at Q ~ 1e5 under
//   raw      — NullProbe, no tracing (the wall-clock configuration),
//   scalar   — ScalarReplayProbe, pre-batching element-by-element replay,
//   batched  — CacheProbe, run-length access_run fast path,
// reports traced-vs-raw slowdown before/after batching, and records the
// numbers machine-readably in bench_out/tracing_fastpath.json so later
// PRs can track the perf trajectory.

#include <chrono>
#include <fstream>

#include "bench_common.hpp"

namespace {

struct Timing {
  double us_per_sweep = 0.0;
  hwc::CacheCounters counters{};
};

/// Times sequential States sweeps under `probe`: best of `blocks` timed
/// blocks of `reps` sweeps each (min beats the mean on a noisy box), after
/// one warmup sweep. `l`/`r` are shared across configurations so every
/// probe traces the exact same addresses — a prerequisite for the
/// counter-equality check below.
template <class Probe>
Timing time_sweeps(const amr::PatchData<double>& u, const amr::Box& interior,
                   const euler::GasModel& gas, euler::Array2& l, euler::Array2& r,
                   Probe& probe, int blocks, int reps) {
  euler::compute_states(u, interior, euler::Dir::x, gas, l, r, probe);  // warmup
  Timing t;
  t.us_per_sweep = 1e300;
  for (int b = 0; b < blocks; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep)
      euler::compute_states(u, interior, euler::Dir::x, gas, l, r, probe);
    const auto t1 = std::chrono::steady_clock::now();
    t.us_per_sweep = std::min(
        t.us_per_sweep,
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps);
  }
  return t;
}

struct JsonEntry {
  std::string name;
  std::string metric;
  double value = 0.0;
};

void write_json(const std::string& path, const std::vector<JsonEntry>& entries) {
  std::ofstream os(path);
  if (!os) {
    std::cout << "warning: cannot open " << path << " (run from the repo root)\n";
    return;
  }
  os << "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    os << "  {\"name\": \"" << entries[i].name << "\", \"metric\": \""
       << entries[i].metric << "\", \"value\": " << entries[i].value << "}"
       << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "]\n";
  std::cout << "series written to " << path << '\n';
}

}  // namespace

int main() {
  const euler::GasModel gas;

  // The shape from the paper sweep closest to Q = 1e5 (the top of the
  // paper's array-size range, where tracing overhead hurts the most).
  bench::PatchShape shape{};
  for (const auto& s : bench::paper_q_sweep())
    if (shape.q == 0 ||
        std::abs(static_cast<double>(s.q) - 1e5) <
            std::abs(static_cast<double>(shape.q) - 1e5))
      shape = s;
  const auto u = bench::workload_patch(shape.interior, gas, 7);
  int nx = 0, ny = 0;
  euler::face_dims(shape.interior, euler::Dir::x, nx, ny);
  euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);

  std::cout << "Ablation: tracing fast path — States sequential sweep, Q = "
            << shape.q << "\n\n";

  // The paper's 512 kB Xeon L2 — the cache whose misses Figs. 4-5 model.
  const int blocks = 5, reps = 3;
  hwc::NullProbe null_probe;
  const Timing raw =
      time_sweeps(u, shape.interior, gas, l, r, null_probe, blocks, reps);

  hwc::CacheSim scalar_cache(512 * 1024, 64, 8);
  hwc::ScalarReplayProbe scalar_probe(&scalar_cache);
  Timing scalar =
      time_sweeps(u, shape.interior, gas, l, r, scalar_probe, blocks, reps);
  scalar.counters = scalar_cache.counters();

  hwc::CacheSim batched_cache(512 * 1024, 64, 8);
  hwc::CacheProbe batched_probe(&batched_cache);
  Timing batched =
      time_sweeps(u, shape.interior, gas, l, r, batched_probe, blocks, reps);
  batched.counters = batched_cache.counters();

  // The fast path is only a fast path if the counters are untouched.
  CCAPERF_REQUIRE(scalar.counters.accesses == batched.counters.accesses &&
                      scalar.counters.hits == batched.counters.hits &&
                      scalar.counters.misses == batched.counters.misses &&
                      scalar.counters.writebacks == batched.counters.writebacks,
                  "batched counters diverged from the scalar replay");

  const double slowdown_scalar = scalar.us_per_sweep / raw.us_per_sweep;
  const double slowdown_batched = batched.us_per_sweep / raw.us_per_sweep;
  const double speedup = scalar.us_per_sweep / batched.us_per_sweep;

  ccaperf::TextTable t;
  t.set_header({"configuration", "us/sweep", "slowdown vs raw"});
  t.add_row({"raw (NullProbe)", ccaperf::fmt_double(raw.us_per_sweep, 6), "1.00"});
  t.add_row({"traced, scalar replay", ccaperf::fmt_double(scalar.us_per_sweep, 6),
             ccaperf::fmt_double(slowdown_scalar, 4)});
  t.add_row({"traced, batched runs", ccaperf::fmt_double(batched.us_per_sweep, 6),
             ccaperf::fmt_double(slowdown_batched, 4)});
  t.render(std::cout);
  std::cout << "\nbatched/scalar traced throughput: "
            << ccaperf::fmt_double(speedup, 4) << "x ("
            << (speedup >= 2.0 ? "meets" : "MISSES") << " the >= 2x target)\n";
  std::cout << "counters bit-identical: " << batched.counters.misses
            << " L2 misses in both traced configurations\n";

  bench::print_comparison(
      "tracing overhead",
      {{"instrumentation overhead", "\"small\" (paper section 4)",
        ccaperf::fmt_double(slowdown_batched, 3) + "x traced-vs-raw (was " +
            ccaperf::fmt_double(slowdown_scalar, 3) + "x before batching)"}});

  write_json("bench_out/tracing_fastpath.json",
             {{"tracing_fastpath", "q", static_cast<double>(shape.q)},
              {"tracing_fastpath", "raw_us_per_sweep", raw.us_per_sweep},
              {"tracing_fastpath", "scalar_traced_us_per_sweep", scalar.us_per_sweep},
              {"tracing_fastpath", "batched_traced_us_per_sweep", batched.us_per_sweep},
              {"tracing_fastpath", "slowdown_scalar_vs_raw", slowdown_scalar},
              {"tracing_fastpath", "slowdown_batched_vs_raw", slowdown_batched},
              {"tracing_fastpath", "batched_vs_scalar_speedup", speedup}});
  return 0;
}
