// Ablation — tracing fast paths: batched cache simulation, SIMD raw
// kernels, and sampled-mode simulation (DESIGN.md §11).
//
// The paper's measurement harness must not distort what it measures:
// "these instrumentation related overheads are small" (§4). Three layers
// close the traced-vs-raw gap, each gated against bench/baselines/:
//
//   batched  — access_run collapses strided element replay into per-line
//              work with bit-identical counters (PR 3; still asserted);
//   SIMD     — the raw path dispatches to AVX2/AVX-512 kernels selected at
//              startup (CCAPERF_SIMD), bit-identical to the scalar
//              reference, so the raw denominator itself speeds up;
//   sampled  — CCAPERF_CACHESIM_SAMPLE simulates 1-in-N windows of
//              access_run batches and rescales counters by the realized
//              fraction, trading a bounded miss-count error (gated here)
//              for most of the remaining simulation cost.
//
// This bench times the States sequential (X) sweep at Q ~ 1e5 under raw
// (per compiled ISA), scalar-replay traced, batched-exact traced and
// batched-sampled traced, and records the gated series in
// bench_out/tracing_fastpath.json. Timing is best-of-5 blocks per
// configuration with the blocks round-robin interleaved across
// configurations (the bench_ablation_ranks minimum-of-blocks protocol,
// plus interleaving so ambient load hits every config alike: contention
// only ever adds time, so per-config minima over shared load epochs are
// the honest estimate).

#include <chrono>
#include <functional>

#include "bench_common.hpp"
#include "euler/simd.hpp"

namespace {

/// One timed configuration: a closure running a single States sweep, and
/// the best per-sweep time seen so far. Configurations are timed in
/// interleaved round-robin blocks (see time_all): sequential per-config
/// timing reads ambient load spikes as config differences, because the
/// configs are measured minutes apart; interleaving makes every config
/// sample the same load epochs, and the per-config minimum then compares
/// like with like (contention only ever adds time).
struct TimedConfig {
  std::string name;
  std::function<void()> sweep;
  double best_us = 1e300;
};

/// Best-of-`blocks` timed blocks of `reps` sweeps per configuration,
/// round-robin interleaved. Each config gets one untimed warmup sweep.
void time_all(std::vector<TimedConfig>& cfgs, int blocks, int reps) {
  for (auto& c : cfgs) c.sweep();  // warmup
  for (int b = 0; b < blocks; ++b)
    for (auto& c : cfgs) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) c.sweep();
      const auto t1 = std::chrono::steady_clock::now();
      c.best_us = std::min(
          c.best_us,
          std::chrono::duration<double, std::micro>(t1 - t0).count() / reps);
    }
}

}  // namespace

int main() {
  const euler::GasModel gas;
  namespace simd = euler::simd;

  // The shape from the paper sweep closest to Q = 1e5 (the top of the
  // paper's array-size range, where tracing overhead hurts the most).
  bench::PatchShape shape{};
  for (const auto& s : bench::paper_q_sweep())
    if (shape.q == 0 ||
        std::abs(static_cast<double>(s.q) - 1e5) <
            std::abs(static_cast<double>(shape.q) - 1e5))
      shape = s;
  const auto u = bench::workload_patch(shape.interior, gas, 7);
  int nx = 0, ny = 0;
  euler::face_dims(shape.interior, euler::Dir::x, nx, ny);
  euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);

  std::cout << "Ablation: tracing fast paths — States sequential sweep, Q = "
            << shape.q << "\n\n";

  const int blocks = 5, reps = 3;
  constexpr std::uint32_t kSampleStride = 16;
  // Burst 2^13 batches: each active window re-entry starts with the sim's
  // way metadata evicted from the *real* caches, so bigger bursts amortise
  // that cold-window cost — and the longer contiguous windows also track
  // the exact miss rate better (rel. err 0.0031 vs 0.014 at 2^11). Going
  // much higher stops helping: at 2^15 only ~1 sampling period fits in a
  // sweep (~651k runs), so window placement dominates the estimate.
  constexpr unsigned kSampleBurstLog2 = 13;

  const simd::Isa top = simd::highest_supported();

  // Raw wall-clock per compiled-and-supported ISA level; the highest one
  // is the production raw configuration every slowdown is measured against.
  // Traced configurations all go through the dispatched (top-ISA) kernels:
  // the probe replay is scalar per face either way, so the counters stay
  // comparable while the arithmetic runs at production speed.
  // The caches are the paper's 512 kB Xeon L2 — the one Figs. 4-5 model.
  hwc::NullProbe null_probe;
  hwc::CacheSim scalar_cache(512 * 1024, 64, 8);
  hwc::ScalarReplayProbe scalar_probe(&scalar_cache);
  hwc::CacheSim batched_cache(512 * 1024, 64, 8);
  hwc::CacheProbe batched_probe(&batched_cache);
  hwc::CacheSim sampled_cache(512 * 1024, 64, 8);
  sampled_cache.set_sample_stride(kSampleStride, /*seed=*/0, kSampleBurstLog2);
  hwc::CacheProbe sampled_probe(&sampled_cache);

  std::vector<TimedConfig> cfgs;
  for (simd::Isa isa : {simd::Isa::scalar, simd::Isa::avx2, simd::Isa::avx512}) {
    if (isa > top) break;
    cfgs.push_back({std::string("raw_") + simd::isa_name(isa), [&, isa] {
                      simd::set_isa(isa);
                      euler::compute_states(u, shape.interior, euler::Dir::x,
                                            gas, l, r, null_probe);
                    }});
  }
  auto traced = [&](auto& probe) {
    return [&] {
      simd::set_isa(top);
      euler::compute_states(u, shape.interior, euler::Dir::x, gas, l, r, probe);
    };
  };
  cfgs.push_back({"scalar", traced(scalar_probe)});
  cfgs.push_back({"batched", traced(batched_probe)});
  cfgs.push_back({"sampled", traced(sampled_probe)});
  time_all(cfgs, blocks, reps);
  simd::set_isa(top);

  auto best = [&](const std::string& name) {
    for (const auto& c : cfgs)
      if (c.name == name) return c.best_us;
    CCAPERF_REQUIRE(false, "unknown bench configuration");
    return 0.0;
  };
  const double raw_scalar_us = best("raw_scalar");
  const double raw_us = best(std::string("raw_") + simd::isa_name(top));
  const double simd_speedup = raw_scalar_us / raw_us;
  const double scalar_us = best("scalar");
  const double batched_us = best("batched");
  const double sampled_us = best("sampled");
  std::vector<std::pair<std::string, double>> raw_by_isa;
  for (const auto& c : cfgs)
    if (c.name.rfind("raw_", 0) == 0)
      raw_by_isa.emplace_back(c.name.substr(4), c.best_us);

  // The fast path is only a fast path if the counters are untouched.
  const auto sc = scalar_cache.counters();
  const auto bc = batched_cache.counters();
  CCAPERF_REQUIRE(sc.accesses == bc.accesses && sc.hits == bc.hits &&
                      sc.misses == bc.misses && sc.writebacks == bc.writebacks,
                  "batched counters diverged from the scalar replay");
  // Sampled mode rescales; its miss-rate error against exact is gated.
  const auto sampled = sampled_cache.scaled_counters();
  const double exact_rate = bc.miss_rate();
  const double sampled_rate = static_cast<double>(sampled.misses) /
                              static_cast<double>(sampled.accesses);
  const double missrate_rel_err = std::abs(sampled_rate - exact_rate) / exact_rate;

  const double slowdown_scalar = scalar_us / raw_us;
  const double slowdown_batched = batched_us / raw_us;
  const double slowdown_sampled = sampled_us / raw_us;
  const double speedup = scalar_us / batched_us;

  ccaperf::TextTable t;
  t.set_header({"configuration", "us/sweep", "slowdown vs raw"});
  for (const auto& [name, us] : raw_by_isa)
    t.add_row({"raw (" + name + ")", ccaperf::fmt_double(us, 6),
               ccaperf::fmt_double(us / raw_us, 4)});
  t.add_row({"traced, scalar replay", ccaperf::fmt_double(scalar_us, 6),
             ccaperf::fmt_double(slowdown_scalar, 4)});
  t.add_row({"traced, batched runs", ccaperf::fmt_double(batched_us, 6),
             ccaperf::fmt_double(slowdown_batched, 4)});
  t.add_row({"traced, sampled 1/" + std::to_string(kSampleStride),
             ccaperf::fmt_double(sampled_us, 6),
             ccaperf::fmt_double(slowdown_sampled, 4)});
  t.render(std::cout);
  std::cout << "\nraw SIMD speedup (" << simd::isa_name(top)
            << " vs scalar): " << ccaperf::fmt_double(simd_speedup, 4) << "x\n"
            << "batched/scalar traced throughput: "
            << ccaperf::fmt_double(speedup, 4) << "x\n"
            << "sampled miss-rate rel. error vs exact: "
            << ccaperf::fmt_double(missrate_rel_err, 5) << " ("
            << bc.misses << " exact vs " << sampled.misses
            << " scaled misses)\n";

  bench::print_comparison(
      "tracing overhead",
      {{"instrumentation overhead", "\"small\" (paper section 4)",
        ccaperf::fmt_double(slowdown_sampled, 3) + "x traced-vs-raw sampled, " +
            ccaperf::fmt_double(slowdown_batched, 3) + "x exact (was " +
            ccaperf::fmt_double(slowdown_scalar, 3) + "x before batching)"}});

  std::vector<bench::JsonEntry> entries{
      {"tracing_fastpath", "q", static_cast<double>(shape.q)},
      {"tracing_fastpath", "raw_scalar_us_per_sweep", raw_scalar_us},
      {"tracing_fastpath", "raw_us_per_sweep", raw_us},
      {"tracing_fastpath", "simd_raw_speedup", simd_speedup},
      {"tracing_fastpath", "scalar_traced_us_per_sweep", scalar_us},
      {"tracing_fastpath", "batched_traced_us_per_sweep", batched_us},
      {"tracing_fastpath", "sampled_traced_us_per_sweep", sampled_us},
      {"tracing_fastpath", "slowdown_scalar_vs_raw", slowdown_scalar},
      {"tracing_fastpath", "slowdown_batched_vs_raw", slowdown_batched},
      {"tracing_fastpath", "sampled_traced_slowdown_vs_raw", slowdown_sampled},
      {"tracing_fastpath", "sampled_missrate_rel_err", missrate_rel_err},
      {"tracing_fastpath", "sample_stride", static_cast<double>(kSampleStride)},
      {"tracing_fastpath", "batched_vs_scalar_speedup", speedup}};
  for (const auto& [name, us] : raw_by_isa)
    entries.push_back(
        {"tracing_fastpath", "raw_us_per_sweep_" + std::string(name), us});
  bench::write_bench_json("bench_out/tracing_fastpath.json", entries);
  return 0;
}
