// Fig. 4 — "Execution time for the States component ... invoked in two
// modes, one which requires sequential and the other strided access of
// arrays. For small array sizes, which are largely cache-resident, the two
// different modes of access do not result in a large difference in
// execution time"; for large arrays the strided mode grows more expensive
// and the timings spread.
//
// Emits the (Q, mode, proc, time) series the figure plots, then the
// shape comparison.

#include "bench_common.hpp"

#include <map>

int main() {
  constexpr int kProcs = 3;
  const auto sweep = bench::sweep_component("states", kProcs, 4);

  // Aggregate by mode over all procs (the figure overlays the three
  // processors' points; "similar trends are seen on all processors").
  std::map<double, ccaperf::RunningStats> seq, strided;
  for (const core::Sample& s : sweep.by_mode[0]) seq[s.q].add(s.t);
  for (const core::Sample& s : sweep.by_mode[1]) strided[s.q].add(s.t);

  std::cout << "Fig. 4: States execution time vs array size (Q = cells incl. "
               "ghosts), sequential (X) vs strided (Y) mode\n\n";
  ccaperf::TextTable t;
  t.set_header({"Q", "seq mean us", "seq sd", "strided mean us", "strided sd",
                "strided/seq"});
  double small_ratio = 0.0, large_ratio = 0.0;
  double first_q = 0.0, last_q = 0.0;
  for (const auto& [q, stats] : seq) {
    const auto& st = strided.at(q);
    const double ratio = st.mean() / stats.mean();
    t.add_row({ccaperf::fmt_double(q, 7), ccaperf::fmt_double(stats.mean(), 5),
               ccaperf::fmt_double(stats.sample_stddev(), 3),
               ccaperf::fmt_double(st.mean(), 5),
               ccaperf::fmt_double(st.sample_stddev(), 3),
               ccaperf::fmt_double(ratio, 3)});
    if (first_q == 0.0) {
      first_q = q;
      small_ratio = ratio;
    }
    last_q = q;
    large_ratio = ratio;
  }
  t.render(std::cout);

  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& [q, stats] : seq) {
    const auto& st = strided.at(q);
    csv_rows.push_back({ccaperf::fmt_double(q, 9),
                        ccaperf::fmt_double(stats.mean(), 9),
                        ccaperf::fmt_double(stats.sample_stddev(), 9),
                        ccaperf::fmt_double(st.mean(), 9),
                        ccaperf::fmt_double(st.sample_stddev(), 9)});
  }
  bench::write_series_csv("fig04_states_modes.csv",
                          {"q", "seq_mean_us", "seq_sd", "strided_mean_us",
                           "strided_sd"},
                          csv_rows);

  bench::print_comparison(
      "Fig. 4 (States, two access modes)",
      {
          {"modes comparable at small Q",
           "ratio ~ 1 for cache-resident arrays",
           "ratio = " + ccaperf::fmt_double(small_ratio, 3) + " at Q = " +
               ccaperf::fmt_double(first_q, 6)},
          {"strided slower at large Q", "visible spread, strided > sequential",
           "ratio = " + ccaperf::fmt_double(large_ratio, 3) + " at Q = " +
               ccaperf::fmt_double(last_q, 6)},
          {"procs measured", "3", std::to_string(kProcs)},
      });
  return 0;
}
