// Ablation — cache-size sensitivity of the performance models.
//
// Paper §6: "The models derived here are valid only on a similar cluster.
// Any significant change, such as halving of the cache size, will have a
// large effect on the coefficients in the models (though the functional
// form is expected to remain unchanged). Ideally, the coefficients should
// be parameterized by processor speed and a cache model."
//
// The hwc cache simulator is exactly that cache model: this bench sweeps
// the simulated L2 size and reports where the strided/sequential miss
// ratio takes off — the knee that moves the model coefficients.

#include <map>

#include "bench_common.hpp"

namespace {

double miss_ratio(const amr::Box& interior, std::size_t l2_bytes,
                  const euler::GasModel& gas) {
  auto run = [&](euler::Dir dir) {
    hwc::CacheSim l2(l2_bytes, 64, 8);
    hwc::CacheSim l1(8 * 1024, 64, 4);
    l1.set_lower(&l2);
    hwc::CacheProbe probe(&l1);
    const auto u = bench::workload_patch(interior, gas, 21);
    int nx = 0, ny = 0;
    euler::face_dims(interior, dir, nx, ny);
    euler::Array2 l(nx, ny, euler::kNcomp), r(nx, ny, euler::kNcomp);
    euler::compute_states(u, interior, dir, gas, l, r, probe);
    return static_cast<double>(l2.counters().misses);
  };
  const double seq = run(euler::Dir::x);
  return run(euler::Dir::y) / std::max(1.0, seq);
}

}  // namespace

int main() {
  const euler::GasModel gas;
  const std::vector<std::pair<const char*, std::size_t>> caches{
      {"256 kB (half the Xeon)", 256 * 1024},
      {"512 kB (the paper's Xeon L2)", 512 * 1024},
      {"1 MB (double)", 1024 * 1024},
  };

  std::cout << "Ablation: strided/sequential L2-miss ratio of the States "
               "kernel vs simulated cache size\n\n";
  ccaperf::TextTable t;
  std::vector<std::string> header{"Q (cells)"};
  for (const auto& [name, bytes] : caches) header.emplace_back(name);
  t.set_header(header);

  std::map<std::size_t, double> knee;  // cache size -> first Q with ratio > 2
  for (const auto& shape : bench::paper_q_sweep(400'000, 2'000, 1.6)) {
    std::vector<std::string> row{ccaperf::fmt_double(static_cast<double>(shape.q), 7)};
    for (const auto& [name, bytes] : caches) {
      const double ratio = miss_ratio(shape.interior, bytes, gas);
      row.push_back(ccaperf::fmt_double(ratio, 4));
      if (ratio > 2.0 && knee.count(bytes) == 0)
        knee[bytes] = static_cast<double>(shape.q);
    }
    t.add_row(row);
  }
  t.render(std::cout);

  std::cout << "\nknee (first Q with miss ratio > 2):\n";
  for (const auto& [name, bytes] : caches)
    std::cout << "  " << name << ": "
              << (knee.count(bytes) ? ccaperf::fmt_double(knee[bytes], 7)
                                    : std::string("beyond sweep"))
              << '\n';

  bench::print_comparison(
      "cache ablation (paper Section 6)",
      {
          {"halving the cache", "large effect on model coefficients",
           "knee moves to smaller Q at 256 kB (table above)"},
          {"functional form", "expected unchanged",
           "ratio curve keeps its shape, shifted in Q"},
          {"cache model for parameterization", "future work in the paper",
           "hwc::CacheSim provides it"},
      });
  return 0;
}
