#pragma once
// Shared driver for Figs. 6-8: sweep one component, bin by Q, fit mean and
// standard-deviation models (the paper's Eq. 1-2), print the series and
// the formula comparison.

#include "bench_common.hpp"

namespace bench {

struct ModelBenchSpec {
  std::string figure;        // "Fig. 6"
  std::string component;     // "States"
  std::string sweep_key;     // "states" | "godunov" | "efm"
  std::string paper_mean;    // Eq. 1 text
  std::string paper_sigma;   // Eq. 2 text
  std::string sigma_trend;   // paper's qualitative claim
  int sigma_poly_degree = 4;
  std::string csv_name;      // output series file, e.g. "fig06_states_model.csv"
};

inline int run_model_bench(const ModelBenchSpec& spec) {
  std::cout << spec.figure << ": average execution time for " << spec.component
            << " vs array size (both access modes averaged, as in the paper)\n\n";

  const auto sweep = sweep_component(spec.sweep_key, 3, 5);
  const auto models = core::build_mean_sigma_models(sweep.all, spec.sigma_poly_degree);

  ccaperf::TextTable t;
  t.set_header({"Q", "mean us", "stddev us", "mean fit", "sigma fit"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const core::Bin& b : models.bins) {
    t.add_row({ccaperf::fmt_double(b.q, 7), ccaperf::fmt_double(b.mean, 5),
               ccaperf::fmt_double(b.stddev, 4),
               ccaperf::fmt_double(models.mean->predict(b.q), 5),
               models.sigma ? ccaperf::fmt_double(models.sigma->predict(b.q), 4)
                            : "-"});
    csv_rows.push_back(
        {ccaperf::fmt_double(b.q, 9), ccaperf::fmt_double(b.mean, 9),
         ccaperf::fmt_double(b.stddev, 9),
         ccaperf::fmt_double(models.mean->predict(b.q), 9),
         models.sigma ? ccaperf::fmt_double(models.sigma->predict(b.q), 9) : "0"});
  }
  t.render(std::cout);
  write_series_csv(spec.csv_name, {"q", "mean_us", "sd_us", "fit_mean", "fit_sd"},
                   csv_rows);

  std::cout << "\nfitted mean model  : T(Q) = " << models.mean->formula()
            << "   [family " << models.mean->family()
            << ", R^2 = " << ccaperf::fmt_double(models.mean->r2, 4) << "]\n";
  if (models.sigma)
    std::cout << "fitted sigma model : s(Q) = " << models.sigma->formula()
              << "   [family " << models.sigma->family()
              << ", R^2 = " << ccaperf::fmt_double(models.sigma->r2, 4) << "]\n";

  const double q_lo = models.bins.front().q, q_hi = models.bins.back().q;
  const double sigma_lo = models.bins.front().stddev;
  const double sigma_hi = models.bins.back().stddev;
  bench::print_comparison(
      spec.figure + " (" + spec.component + " performance model)",
      {
          {"mean model (paper Eq. 1)", spec.paper_mean,
           models.mean->formula() + " (R^2 " +
               ccaperf::fmt_double(models.mean->r2, 3) + ")"},
          {"sigma model (paper Eq. 2)", spec.paper_sigma,
           models.sigma ? models.sigma->formula() : "n/a"},
          {"mean scales ~linearly with Q",
           "linear once cache effects average out",
           "measured T(" + ccaperf::fmt_double(q_hi, 6) + ")/T(" +
               ccaperf::fmt_double(q_lo, 6) + ") = " +
               ccaperf::fmt_double(models.bins.back().mean / models.bins.front().mean,
                                   4) +
               " for Q ratio " + ccaperf::fmt_double(q_hi / q_lo, 4)},
          {"sigma trend", spec.sigma_trend,
           "sigma(Qmin) = " + ccaperf::fmt_double(sigma_lo, 3) +
               ", sigma(Qmax) = " + ccaperf::fmt_double(sigma_hi, 3)},
      });
  return 0;
}

}  // namespace bench
