// Ablation — load-balancing policy (DESIGN.md design-choice ablation).
//
// AMRMesh "results in load-balancing and domain (re-)decomposition". The
// default policy is knapsack/LPT on patch cell counts; this bench compares
// it against round-robin on the real case-study hierarchy after regrid
// and reports cell-count imbalance (max/mean per rank). The imbalance
// series is deterministic (the mesh and the min-heap placement are), so
// scripts/bench_gate.py gates it via bench/baselines/loadbalance.json: a
// placement change that worsens the decomposition fails CI.
//
// Results land in bench_out/loadbalance.json.

#include "bench_common.hpp"
#include "components/app_assembly.hpp"

namespace {

/// Per-level imbalance after running the case study under a policy.
std::vector<double> run_with_policy(amr::BalancePolicy policy) {
  components::AppConfig cfg = components::AppConfig::case_study();
  cfg.mesh.balance = policy;
  cfg.driver.nsteps = 4;
  cfg.driver.regrid_interval = 2;

  std::vector<double> imbalances;
  mpp::Runtime::run(3, [&](mpp::Comm& world) {
    auto fw = components::assemble_app(world, cfg);
    fw->services("driver").provided_as<components::GoPort>("go")->go();
    if (world.rank() != 0) return;
    auto* mesh = fw->services("driver").get_port_as<components::MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();
    for (int l = 0; l < h.num_levels(); ++l) {
      std::vector<long> load(3, 0);
      for (const auto& p : h.level(l).patches())
        load[static_cast<std::size_t>(p.owner)] += p.box.num_pts();
      const long total = load[0] + load[1] + load[2];
      const long peak = std::max({load[0], load[1], load[2]});
      imbalances.push_back(total > 0 ? 3.0 * static_cast<double>(peak) /
                                           static_cast<double>(total)
                                     : 1.0);
    }
  });
  return imbalances;
}

}  // namespace

int main() {
  std::cout << "Ablation: load-balance policy on the case-study hierarchy "
               "(imbalance = max rank cells / mean rank cells; 1.0 is perfect)\n\n";
  const auto knap = run_with_policy(amr::BalancePolicy::knapsack);
  const auto rr = run_with_policy(amr::BalancePolicy::round_robin);

  ccaperf::TextTable t;
  t.set_header({"level", "knapsack (LPT)", "round robin"});
  for (std::size_t l = 0; l < std::max(knap.size(), rr.size()); ++l)
    t.add_row({std::to_string(l),
               l < knap.size() ? ccaperf::fmt_double(knap[l], 4) : "-",
               l < rr.size() ? ccaperf::fmt_double(rr[l], 4) : "-"});
  t.render(std::cout);

  double knap_worst = 1.0, rr_worst = 1.0;
  for (double v : knap) knap_worst = std::max(knap_worst, v);
  for (double v : rr) rr_worst = std::max(rr_worst, v);

  std::vector<bench::JsonEntry> json{
      {"policy", "knapsack_worst_imbalance", knap_worst},
      {"policy", "round_robin_worst_imbalance", rr_worst},
      {"policy", "knapsack_no_worse", knap_worst <= rr_worst ? 1.0 : 0.0},
  };
  for (std::size_t l = 0; l < knap.size(); ++l)
    json.push_back({"policy", "knapsack_imbalance_l" + std::to_string(l),
                    knap[l]});
  bench::write_bench_json("bench_out/loadbalance.json", json);

  bench::print_comparison(
      "load-balance ablation",
      {
          {"policy", "knapsack-style decomposition in AMRMesh",
           "knapsack worst-level imbalance " + ccaperf::fmt_double(knap_worst, 4)},
          {"naive alternative", "-",
           "round-robin worst-level imbalance " + ccaperf::fmt_double(rr_worst, 4)},
          {"conclusion",
           "communication + imbalance limit scalability (paper Section 5)",
           knap_worst <= rr_worst ? "knapsack no worse than round robin"
                                  : "round robin happened to win on this mesh"},
      });
  return 0;
}
