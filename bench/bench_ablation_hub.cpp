// Ablation: TelemetryHub multi-tenant soak (DESIGN.md §14).
//
// Ramps concurrent mixed-scenario sessions (fig01 AMR at assorted
// (ranks, threads, fault plans) plus the HPL-style dense-LU workload)
// against one shared hub, and gates the service properties the hub
// exists for:
//
//  * tenant isolation — every scenario's physics digest under a full
//    concurrent load is byte-identical to the same scenario run solo,
//    and every retained telemetry line carries its own session's marker
//    (zero cross-session row leakage);
//  * bounded memory — the hub's retained-byte peak stays under the
//    configured budget while sessions churn;
//  * exact accounting — published == drained + ring drops per session
//    once a session closes (a separate flood phase overflows tiny rings
//    and a tiny byte budget on purpose to exercise both drop paths);
//  * throughput — sessions/sec and rows/sec at the top of the ramp,
//    gated against bench/baselines/hub.json.
//
// Environment:
//   CCAPERF_HUB_SOAK_SESSIONS  top of the session ramp (default 64).
//   CCAPERF_HUB_AGG_FILE       aggregate JSONL path
//                              (default bench_out/hub_aggregate.jsonl).
//
// Prints "hub soak: OK" and exits 0 only if every gate holds — the CI
// hub-soak stage greps for the marker.

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "bench_common.hpp"
#include "core/session_workloads.hpp"
#include "core/telemetry_hub.hpp"

namespace {

int env_int(const char* name, int fallback, int lo) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::max(lo, std::atoi(v));
}

/// The scenario rotation: structurally diverse tenants, all deterministic.
std::vector<core::SessionScenario> scenario_mix() {
  using S = core::SessionScenario;
  std::vector<S> mix;
  S amr;  // tiny fig01: 24x12, 2 ranks, 2 coarse steps
  amr.kind = "amr";
  amr.ranks = 2;
  amr.threads = 1;
  amr.nx = 24;
  amr.ny = 12;
  amr.steps = 2;
  mix.push_back(amr);
  S threaded = amr;
  threaded.threads = 2;
  mix.push_back(threaded);
  S wide = amr;
  wide.ranks = 3;
  mix.push_back(wide);
  S faulty = amr;
  faulty.fault_plan = "drop=0.05,delay=0.1";
  faulty.seed = 7;
  mix.push_back(faulty);
  S chaotic = amr;
  chaotic.fault_plan = "moderate";
  chaotic.seed = 3;
  mix.push_back(chaotic);
  S lu;
  lu.kind = "lu";
  lu.lu_n = 96;
  lu.lu_block = 24;
  lu.lu_reps = 2;
  mix.push_back(lu);
  S lu_small = lu;
  lu_small.lu_n = 64;
  lu_small.lu_block = 16;
  lu_small.lu_reps = 3;
  lu_small.seed = 11;
  mix.push_back(lu_small);
  return mix;
}

core::TelemetryHub::Config soak_config() {
  core::TelemetryHub::Config cfg;
  cfg.shards = 8;
  cfg.shard_capacity = 4096;          // soak phase must not drop at the ring
  cfg.session_line_cap = 8192;
  cfg.memory_budget_bytes = 16u << 20;
  cfg.drain_interval = std::chrono::microseconds(2000);
  cfg.aggregate_interval = std::chrono::milliseconds(10);
  return cfg;
}

struct Gate {
  bool ok = true;
  void require(bool cond, const std::string& what) {
    if (!cond) {
      ok = false;
      std::cout << "HUB SOAK VIOLATION: " << what << '\n';
    }
  }
};

}  // namespace

int main() {
  const int max_sessions = env_int("CCAPERF_HUB_SOAK_SESSIONS", 64, 2);
  const char* agg_env = std::getenv("CCAPERF_HUB_AGG_FILE");
  const std::string agg_path = (agg_env != nullptr && *agg_env != '\0')
                                   ? agg_env
                                   : "bench_out/hub_aggregate.jsonl";
  const std::vector<core::SessionScenario> mix = scenario_mix();
  Gate gate;

  // --- solo references ------------------------------------------------------
  // Each distinct scenario runs alone against its own hub: the digest and
  // telemetry line count every concurrent run must reproduce exactly.
  std::cout << "solo references (" << mix.size() << " scenarios):\n";
  std::vector<core::SessionResult> solo(mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    core::TelemetryHub hub(soak_config());
    core::SessionHandle h =
        hub.open_session("solo-" + std::to_string(i), mix[i].kind,
                         mix[i].fault_plan);
    solo[i] = core::run_session(h, mix[i]);
    h.close();
    const core::SessionStats st = hub.session_stats(hub.find_session(
        "solo-" + std::to_string(i)));
    gate.require(st.published == solo[i].telemetry_lines,
                 "solo published != telemetry lines");
    gate.require(st.drained == st.published, "solo drained != published");
    std::cout << "  " << mix[i].describe() << ": digest "
              << std::hex << solo[i].physics_digest << std::dec << ", "
              << solo[i].telemetry_lines << " lines\n";
  }

  // --- concurrent soak ramp -------------------------------------------------
  {
    std::error_code ec;
    const auto parent = std::filesystem::path(agg_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  }
  std::ofstream agg(agg_path);
  if (!agg) {
    std::cout << "HUB SOAK FAILED: cannot open " << agg_path << '\n';
    return 1;
  }
  struct RampPoint {
    int sessions;
    double sessions_per_s;
    double rows_per_s;
    std::uint64_t bytes_peak;
  };
  std::vector<RampPoint> ramp;
  for (int n = std::max(2, max_sessions / 8); n <= max_sessions; n *= 2) {
    core::TelemetryHub hub(soak_config());
    hub.set_aggregate_sink(&agg);
    std::vector<core::SessionHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const core::SessionScenario& sc = mix[static_cast<std::size_t>(i) % mix.size()];
      handles.push_back(hub.open_session(
          "soak" + std::to_string(n) + "-s" + std::to_string(i), sc.kind,
          sc.fault_plan));
    }
    std::vector<core::SessionResult> results(static_cast<std::size_t>(n));
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        threads.emplace_back([&, i] {
          const std::size_t k = static_cast<std::size_t>(i);
          results[k] = core::run_session(handles[k], mix[k % mix.size()]);
          handles[k].close();
        });
      for (std::thread& t : threads) t.join();
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    // Per-session gates against the solo references.
    for (int i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i) % mix.size();
      const std::string name = "soak" + std::to_string(n) + "-s" + std::to_string(i);
      const core::SessionId id = hub.find_session(name);
      gate.require(id != core::kInvalidSession, "session vanished: " + name);
      if (id == core::kInvalidSession) continue;
      gate.require(results[static_cast<std::size_t>(i)].physics_digest ==
                       solo[k].physics_digest,
                   "digest diverged from solo: " + name);
      // Line counts are exact for single-lane sessions; threaded ranks
      // emit on whichever lane crosses the interval boundary, so their
      // count wobbles by a line or two under load (the digest gate above
      // is the physics invariant either way).
      if (mix[k].threads == 1)
        gate.require(results[static_cast<std::size_t>(i)].telemetry_lines ==
                         solo[k].telemetry_lines,
                     "telemetry line count diverged from solo: " + name);
      const core::SessionStats st = hub.session_stats(id);
      gate.require(st.published == st.drained,
                   "published != drained after close: " + name);
      gate.require(st.dropped_ring == 0, "unexpected ring drop: " + name);
      // Zero cross-session leakage: every retained line carries this
      // session's own marker (the Mastermind tags lines via
      // set_telemetry_session).
      const std::string marker = "\"session\":\"" + name + "\"";
      for (const core::SessionLine& l : hub.session_lines(id))
        gate.require(l.text.find(marker) != std::string::npos,
                     "leaked/unmarked line in " + name);
    }
    const core::HubStats hs = hub.stats();
    gate.require(hs.bytes_peak <= hub.config().memory_budget_bytes,
                 "retained bytes exceeded the budget");
    gate.require(hs.dropped_ring == 0, "soak phase dropped at the ring");
    ramp.push_back(RampPoint{n, n / wall_s, hs.drained / wall_s, hs.bytes_peak});
    std::cout << "ramp " << n << " sessions: "
              << ccaperf::fmt_double(n / wall_s, 2) << " sessions/s, "
              << ccaperf::fmt_double(hs.drained / wall_s, 0) << " rows/s, peak "
              << (hs.bytes_peak >> 10) << " KiB\n";
    hub.set_aggregate_sink(nullptr);
  }

  // --- flood phase: drop paths under deliberate starvation ------------------
  // Tiny rings, tiny budget, slow drains: both the ring-reject and the
  // eviction path must fire, and the accounting must stay exact.
  {
    core::TelemetryHub::Config cfg;
    cfg.shards = 2;
    cfg.shard_capacity = 64;
    cfg.session_line_cap = 128;
    // Smaller than what one full drain can deliver (2 shards x 64 slots x
    // ~120 B ≈ 15 KiB), so the eviction path must fire.
    cfg.memory_budget_bytes = 4u << 10;
    cfg.drain_interval = std::chrono::milliseconds(50);
    core::TelemetryHub hub(cfg);
    constexpr int kFlooders = 4;
    constexpr int kLines = 2000;
    std::vector<core::SessionHandle> handles;
    for (int i = 0; i < kFlooders; ++i)
      handles.push_back(hub.open_session("flood-" + std::to_string(i), "flood"));
    {
      std::vector<std::thread> threads;
      for (int i = 0; i < kFlooders; ++i)
        threads.emplace_back([&, i] {
          const std::string line(120, 'a' + static_cast<char>(i));
          for (int l = 0; l < kLines; ++l)
            handles[static_cast<std::size_t>(i)].publish(line);
        });
      for (std::thread& t : threads) t.join();
    }
    std::uint64_t total_dropped = 0, total_evicted = 0;
    for (int i = 0; i < kFlooders; ++i) {
      handles[static_cast<std::size_t>(i)].close();  // drains
      const core::SessionId id = hub.find_session("flood-" + std::to_string(i));
      const core::SessionStats st = hub.session_stats(id);
      gate.require(st.published + st.dropped_ring == kLines,
                   "flood accounting leak (published + dropped != attempts)");
      gate.require(st.published == st.drained,
                   "flood published != drained after close");
      gate.require(st.retained == st.drained - st.dropped_evicted,
                   "flood retained != drained - evicted");
      total_dropped += st.dropped_ring;
      total_evicted += st.dropped_evicted;
    }
    const core::HubStats hs = hub.stats();
    gate.require(total_dropped > 0, "flood never overflowed a ring");
    gate.require(total_evicted > 0, "flood never evicted under the byte budget");
    gate.require(hs.bytes_retained <= cfg.memory_budget_bytes,
                 "flood exceeded the byte budget");
    std::cout << "flood: " << total_dropped << " ring drops, " << total_evicted
              << " evictions, retained " << (hs.bytes_retained >> 10)
              << " KiB <= " << (cfg.memory_budget_bytes >> 10) << " KiB budget\n";
  }

  // --- per-session Perfetto export ------------------------------------------
  {
    core::TelemetryHub hub(soak_config());
    core::SessionScenario sc = mix[0];
    sc.trace = true;
    core::SessionHandle h = hub.open_session("traced", sc.kind, sc.fault_plan);
    core::run_session(h, sc);
    h.close();
    std::ofstream os(bench::fig_path("hub_traced_session.json"));
    const core::MergeStats st =
        hub.export_session_trace(hub.find_session("traced"), os);
    gate.require(st.ranks == static_cast<std::size_t>(sc.ranks),
                 "traced session exported wrong rank count");
    gate.require(st.events > 0, "traced session exported no events");
    std::cout << "trace export: " << st.ranks << " ranks, " << st.events
              << " events, " << st.flows << " flows\n";
  }

  // --- gateable output ------------------------------------------------------
  const RampPoint& top = ramp.back();
  bench::write_bench_json(
      "bench_out/hub.json",
      {
          {"hub", "soak_sessions", static_cast<double>(top.sessions)},
          {"hub", "sessions_per_s", top.sessions_per_s},
          {"hub", "rows_per_s", top.rows_per_s},
          {"hub", "bytes_peak_kb", static_cast<double>(top.bytes_peak >> 10)},
          {"hub", "identity_ok", gate.ok ? 1.0 : 0.0},
      });
  std::cout << "aggregate stream: " << agg_path << '\n';

  bench::print_comparison(
      "multi-tenant telemetry service",
      {
          {"tenant isolation", "per-session physics identical to solo",
           gate.ok ? "digests + line counts match" : "VIOLATED"},
          {"memory bound", "retained bytes under budget",
           std::to_string(top.bytes_peak >> 10) + " KiB peak"},
          {"throughput", "ramp to " + std::to_string(max_sessions) + " sessions",
           ccaperf::fmt_double(top.sessions_per_s, 2) + " sessions/s"},
      });

  if (!gate.ok) {
    std::cout << "HUB SOAK FAILED\n";
    return 1;
  }
  std::cout << "hub soak: OK\n";
  return 0;
}
