#include "support/thread_pool.hpp"

#include <cstdlib>
#include <algorithm>
#include <memory>

#include "support/error.hpp"

namespace ccaperf {

namespace {

// Lane of the calling thread inside an active region; -1 outside. Kept
// separate from the public current_lane() so nesting detection can tell
// "lane 0 inside a region" apart from "not in a region".
thread_local int t_lane = -1;

}  // namespace

int ThreadPool::current_lane() { return t_lane < 0 ? 0 : t_lane; }

ThreadPool::ThreadPool(int nlanes) : nlanes_(std::max(1, nlanes)) {
  lanes_.reserve(static_cast<std::size_t>(nlanes_));
  for (int l = 0; l < nlanes_; ++l) lanes_.push_back(std::make_unique<Lane>());
  workers_.reserve(static_cast<std::size_t>(nlanes_ - 1));
  for (int l = 1; l < nlanes_; ++l)
    workers_.emplace_back([this, l] { worker_main(l); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::set_region_end_hook(std::function<void()> hook) {
  region_end_hook_ = std::move(hook);
}

bool ThreadPool::grab_chunk(int lane, std::size_t& b, std::size_t& e) {
  Lane& L = *lanes_[static_cast<std::size_t>(lane)];
  std::lock_guard<std::mutex> lock(L.mu);
  if (L.next >= L.end) return false;
  // Take a fraction from the front; thieves halve from the back, so the
  // owner's chunks shrink as the range drains (lazy binary splitting).
  const std::size_t avail = L.end - L.next;
  const std::size_t take =
      std::max<std::size_t>(1, avail / (2 * static_cast<std::size_t>(nlanes_)));
  b = L.next;
  e = L.next + take;
  L.next = e;
  return true;
}

bool ThreadPool::steal_chunk(int lane) {
  // Scan victims round-robin from our right neighbour; move the back half
  // of the first non-empty range into our own (empty) lane so other
  // thieves can keep splitting it.
  for (int k = 1; k < nlanes_; ++k) {
    const int victim = (lane + k) % nlanes_;
    Lane& V = *lanes_[static_cast<std::size_t>(victim)];
    std::size_t sb = 0, se = 0;
    {
      std::lock_guard<std::mutex> lock(V.mu);
      const std::size_t avail = V.end - V.next;
      if (avail == 0) continue;
      const std::size_t take = (avail + 1) / 2;
      sb = V.end - take;
      se = V.end;
      V.end = sb;
    }
    Lane& L = *lanes_[static_cast<std::size_t>(lane)];
    {
      std::lock_guard<std::mutex> lock(L.mu);
      L.next = sb;
      L.end = se;
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::run_lane(Region& rgn, int lane) {
  while (!rgn.abort.load(std::memory_order_relaxed)) {
    std::size_t b = 0, e = 0;
    if (!grab_chunk(lane, b, e)) {
      if (!steal_chunk(lane)) break;
      continue;
    }
    for (std::size_t i = b; i < e; ++i) {
      if (rgn.abort.load(std::memory_order_relaxed)) break;
      try {
        (*rgn.body)(i, lane);
        rgn.done.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(rgn.err_mu);
          if (!rgn.error) rgn.error = std::current_exception();
        }
        rgn.abort.store(true, std::memory_order_relaxed);
      }
    }
  }
}

void ThreadPool::worker_main(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    Region* rgn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || (region_ != nullptr && epoch_ != seen);
      });
      if (shutdown_) return;
      rgn = region_;
      seen = epoch_;
    }
    t_lane = lane;
    run_lane(*rgn, lane);
    t_lane = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++rgn->exited;
    }
    cv_done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, int)>& body) {
  if (t_lane >= 0) {
    // Nested region: run inline on the calling lane, no hook (the
    // enclosing top-level region fires it once).
    const int lane = t_lane;
    for (std::size_t i = 0; i < n; ++i) body(i, lane);
    return;
  }
  if (nlanes_ == 1 || n == 0) {
    t_lane = 0;
    try {
      for (std::size_t i = 0; i < n; ++i) body(i, 0);
    } catch (...) {
      t_lane = -1;
      ++regions_;
      if (region_end_hook_) region_end_hook_();
      throw;
    }
    t_lane = -1;
    ++regions_;
    if (region_end_hook_) region_end_hook_();
    return;
  }

  Region rgn;
  rgn.body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int l = 0; l < nlanes_; ++l) {
      Lane& L = *lanes_[static_cast<std::size_t>(l)];
      std::lock_guard<std::mutex> lane_lock(L.mu);
      L.next = n * static_cast<std::size_t>(l) /
               static_cast<std::size_t>(nlanes_);
      L.end = n * static_cast<std::size_t>(l + 1) /
              static_cast<std::size_t>(nlanes_);
    }
    region_ = &rgn;
    ++epoch_;
  }
  cv_work_.notify_all();

  t_lane = 0;
  run_lane(rgn, 0);
  t_lane = -1;

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return rgn.exited == nlanes_ - 1; });
    region_ = nullptr;
  }
  ++regions_;
  if (region_end_hook_) region_end_hook_();
  if (rgn.error) std::rethrow_exception(rgn.error);
  CCAPERF_REQUIRE(rgn.done.load(std::memory_order_relaxed) == n,
                  "ThreadPool::parallel_for: lost tasks");
}

int configured_threads() {
  const char* v = std::getenv("CCAPERF_THREADS");
  if (v == nullptr || *v == '\0') return 1;
  const int n = std::atoi(v);
  return std::max(1, std::min(n, 256));
}

namespace {

std::unique_ptr<ThreadPool>& rank_pool_slot() {
  thread_local std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& rank_pool() {
  std::unique_ptr<ThreadPool>& slot = rank_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(configured_threads());
  return *slot;
}

void set_rank_pool_threads(int nlanes) {
  rank_pool_slot() = std::make_unique<ThreadPool>(nlanes);
}

}  // namespace ccaperf
