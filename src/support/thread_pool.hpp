#pragma once
// ccaperf::ThreadPool — a small work-stealing pool for intra-rank
// parallelism (DESIGN.md §9).
//
// The SCMD model (mpp::Runtime) gives one thread per rank; this pool adds
// lanes *inside* a rank so AMR patch loops and Euler kernel row blocks can
// run concurrently while the measurement stack stays deterministic:
//
//  - A pool of size N has N *lanes*: the calling thread participates as
//    lane 0 and N-1 persistent workers take lanes 1..N-1. Lane indices are
//    what the per-thread tau::Registry shards key on.
//  - Size 1 means *no* threads, no locks, no atomics: parallel_for runs
//    the body inline, so `CCAPERF_THREADS=1` is byte-identical to the
//    serial code it replaced.
//  - parallel_for(n, body) splits [0, n) into per-lane contiguous ranges;
//    an idle lane steals the back half of a victim's remaining range
//    (lazy binary splitting), so irregular patch costs still balance.
//  - Nested parallel_for from inside a region runs inline on the calling
//    lane — kernels parallelized at the row-block level compose with the
//    patch-level loop without oversubscribing.
//  - The first exception thrown by any task is rethrown on the caller
//    after the region completes (mirrors mpp::Runtime::run).
//  - A region-end hook runs on the caller after every top-level region.
//    TauMeasurementComponent installs the shard merge there, which is the
//    "barrier point" where per-thread measurements fold into the rank
//    view (deterministically: lanes are merged in index order).

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccaperf {

class ThreadPool {
 public:
  /// `nlanes` counts the caller: 1 = inline serial (no worker threads).
  explicit ThreadPool(int nlanes);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return nlanes_; }

  /// Runs body(i, lane) for every i in [0, n), lane in [0, size()).
  /// Blocks until all n tasks have run (or a task threw — remaining tasks
  /// are abandoned and the first exception is rethrown here). Reentrant
  /// calls from inside a region run inline on the calling lane.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, int)>& body);

  /// Hook invoked on the calling thread after every *top-level* region
  /// (even one that ends in an exception), before parallel_for returns.
  /// Pass nullptr to clear. The measurement layer merges its per-lane
  /// shards here.
  void set_region_end_hook(std::function<void()> hook);

  /// Lane index of the calling thread inside an active region of *any*
  /// pool; 0 outside regions (the rank thread is always lane 0).
  static int current_lane();

  // -- introspection for tests/benches ------------------------------------
  std::uint64_t regions() const { return regions_; }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Lane {
    std::mutex mu;
    std::size_t next = 0;
    std::size_t end = 0;
  };
  struct Region {
    const std::function<void(std::size_t, int)>* body = nullptr;
    std::atomic<std::size_t> done{0};
    std::atomic<bool> abort{false};
    std::exception_ptr error;  // first failure, guarded by err_mu
    std::mutex err_mu;
    int exited = 0;  // workers that left run_lane, guarded by pool mu_
  };

  void worker_main(int lane);
  void run_lane(Region& rgn, int lane);
  bool grab_chunk(int lane, std::size_t& b, std::size_t& e);
  bool steal_chunk(int lane);

  const int nlanes_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards region_/epoch_/shutdown_/Region::exited
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Region* region_ = nullptr;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;

  std::function<void()> region_end_hook_;
  std::uint64_t regions_ = 0;
  std::atomic<std::uint64_t> steals_{0};
};

/// Lane count requested via CCAPERF_THREADS (clamped to [1, 256]);
/// 1 when unset. Read from the environment on every call so a bench can
/// setenv() between runs.
int configured_threads();

/// The calling thread's rank-local pool, created on first use with
/// configured_threads() lanes. Each mpp rank thread gets its own pool
/// (thread_local), mirroring the one-Registry-per-rank measurement model.
ThreadPool& rank_pool();

/// Rebuilds the calling thread's rank_pool() with `nlanes` lanes. Only
/// safe while no component holds a hook or shard set sized to the old
/// pool — i.e. between app assemblies, which is when benches toggle
/// thread counts in-process.
void set_rank_pool_threads(int nlanes);

}  // namespace ccaperf
