#pragma once
// Minimal JSON writing helpers (no dependency budget for a real JSON
// library; we only ever *emit* JSON — trace files, telemetry lines,
// bench series — never parse it).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ccaperf {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Formats a double as a finite JSON number (JSON has no NaN/Inf; both
/// become 0). Trailing zeros are kept — simplicity over byte count.
inline std::string json_number(double v, int decimals = 3) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace ccaperf
