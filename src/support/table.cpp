#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ccaperf {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> width;
  auto absorb = [&width](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    if (r.empty())
      os << std::string(total, '-') << '\n';
    else
      emit(r);
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string fmt_double(double v, int prec) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt_sci(double v, int prec) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace ccaperf
