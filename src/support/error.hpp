#pragma once
// Error handling primitives shared by every ccaperf module.
//
// The library throws `ccaperf::Error` for precondition violations and
// runtime failures. `CCAPERF_REQUIRE` is the canonical checked-precondition
// macro: it is always on (these libraries are infrastructure, not inner
// loops; hot kernels use raw indexing internally).

#include <source_location>
#include <stdexcept>
#include <string>

namespace ccaperf {

/// Exception type thrown by all ccaperf libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& msg,
                               std::source_location loc = std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " + msg);
}

}  // namespace ccaperf

/// Checked precondition: throws ccaperf::Error with file:line on failure.
#define CCAPERF_REQUIRE(cond, msg)          \
  do {                                      \
    if (!(cond)) ::ccaperf::raise((msg));   \
  } while (0)
