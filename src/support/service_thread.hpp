#pragma once
// ccaperf::ServiceThread — a small persistent background worker for
// long-running in-process services (DESIGN.md §14).
//
// The ThreadPool (thread_pool.hpp) models *regions*: lanes exist only
// while a parallel_for is in flight, which is exactly wrong for a service
// like the TelemetryHub's drainer that must keep consuming concurrently
// with the rank threads producing. ServiceThread is the complementary
// primitive: one named thread running `tick()` on a fixed cadence, with
//
//  - wake(): run a tick as soon as possible (publishers nudge the drainer
//    when a shard ring crosses its high-water mark, so bursts don't have
//    to ride out the full interval under backpressure);
//  - stop(): run one final tick, then join — so whatever the service was
//    accumulating is flushed exactly once before the thread dies;
//  - ticks(): monotone tick count, for tests and telemetry.
//
// The tick callback runs only on the service thread, never concurrently
// with itself; stop() (and the destructor) may run it once more on the
// caller after the join, which is still exclusive because the worker has
// already exited.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace ccaperf {

class ServiceThread {
 public:
  /// Starts the worker immediately. `tick` must not throw (a service has
  /// nowhere to rethrow to); `interval` is the idle cadence between ticks.
  ServiceThread(std::string name, std::chrono::microseconds interval,
                std::function<void()> tick);
  ~ServiceThread();
  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  /// Requests an immediate tick (coalesces with a pending request).
  void wake();

  /// Stops the worker: wakes it, joins, then runs one final tick on the
  /// calling thread so nothing published before stop() is lost.
  /// Idempotent; called by the destructor.
  void stop();

  bool running() const;
  std::uint64_t ticks() const;
  const std::string& name() const { return name_; }

 private:
  void worker_main();

  const std::string name_;
  const std::chrono::microseconds interval_;
  const std::function<void()> tick_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool wake_requested_ = false;
  bool stop_requested_ = false;
  bool joined_ = false;
  std::uint64_t ticks_ = 0;
  std::thread worker_;
};

}  // namespace ccaperf
