#pragma once
// Deterministic, seedable random number generation.
//
// Every stochastic element in ccaperf (network jitter, synthetic workloads,
// property-test inputs) draws from `ccaperf::Rng` so that runs are exactly
// reproducible from a seed. The engine is xoshiro256** (public domain,
// Blackman & Vigna), which is fast, has 256-bit state and passes BigCrush.

#include <array>
#include <cmath>
#include <cstdint>

namespace ccaperf {

/// splitmix64: used to expand a 64-bit seed into full engine state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Split off an independent stream (for per-rank/per-message RNGs).
  Rng split(std::uint64_t stream_id) {
    std::uint64_t s = (*this)() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ccaperf
