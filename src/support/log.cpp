#include "support/log.hpp"

#include <iostream>

namespace ccaperf {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel lvl, int rank, const std::string& msg) {
  if (static_cast<int>(lvl) < static_cast<int>(level_)) return;
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::scoped_lock lock(mu_);
  std::cerr << '[' << names[static_cast<int>(lvl)] << ']';
  if (rank >= 0) std::cerr << "[rank " << rank << ']';
  std::cerr << ' ' << msg << '\n';
}

}  // namespace ccaperf
