#pragma once
// Streaming statistics (Welford/Chan) used throughout the measurement stack:
// TAU atomic events, Mastermind records, model-fitting bins and benches.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace ccaperf {

/// Numerically stable running mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merge another accumulator (parallel reduction of partial stats).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Population variance (divide by N), matching TAU's event semantics.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  /// Sample variance (divide by N-1) for regression diagnostics.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double sample_stddev() const { return std::sqrt(sample_variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ccaperf
