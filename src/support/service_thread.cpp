#include "support/service_thread.hpp"

#include "support/error.hpp"

namespace ccaperf {

ServiceThread::ServiceThread(std::string name, std::chrono::microseconds interval,
                             std::function<void()> tick)
    : name_(std::move(name)), interval_(interval), tick_(std::move(tick)) {
  CCAPERF_REQUIRE(tick_ != nullptr, "ServiceThread: null tick callback");
  worker_ = std::thread([this] { worker_main(); });
}

ServiceThread::~ServiceThread() { stop(); }

void ServiceThread::worker_main() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    // Wait out the cadence, or less if someone wakes us. Spurious wakeups
    // just run an early tick, which is harmless.
    cv_.wait_for(lk, interval_,
                 [this] { return wake_requested_ || stop_requested_; });
    if (stop_requested_) break;
    wake_requested_ = false;
    ++ticks_;
    lk.unlock();
    tick_();  // never under mu_: publishers must be able to wake() meanwhile
    lk.lock();
  }
}

void ServiceThread::wake() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_requested_) return;
    wake_requested_ = true;
  }
  cv_.notify_one();
}

void ServiceThread::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (joined_) return;
    stop_requested_ = true;
    joined_ = true;
  }
  cv_.notify_one();
  worker_.join();
  // Final flush on the caller — exclusive, because the worker has exited.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++ticks_;
  }
  tick_();
}

bool ServiceThread::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !joined_;
}

std::uint64_t ServiceThread::ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ticks_;
}

}  // namespace ccaperf
