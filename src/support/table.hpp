#pragma once
// Plain-text and CSV table emitters used by the benchmark harness to print
// paper-style tables (e.g. the Fig. 3 FUNCTION SUMMARY) and data series for
// the figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace ccaperf {

/// Column-aligned text table. Collect rows of strings, then render with
/// every column padded to its widest cell.
class TextTable {
 public:
  /// Sets the header row (rendered first, followed by a dashed rule).
  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Adds a horizontal rule at the current position.
  void add_rule();

  void render(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Minimal CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& s);
  std::ostream& os_;
};

/// Formats a double with `prec` significant digits (helper for tables).
std::string fmt_double(double v, int prec = 4);
/// Formats like "1.23e+04" in fixed scientific with `prec` digits.
std::string fmt_sci(double v, int prec = 3);

}  // namespace ccaperf
