#pragma once
// Tiny leveled logger. Thread-safe (one mutex around emission); each message
// is tagged with an optional rank id so SCMD runs interleave readably.
// Default level is `warn` so tests and benches stay quiet unless asked.

#include <mutex>
#include <sstream>
#include <string>

namespace ccaperf {

enum class LogLevel : int { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }

  void write(LogLevel lvl, int rank, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::warn;
  std::mutex mu_;
};

/// Stream-style log statement: `CCAPERF_LOG(info, rank) << "n=" << n;`
class LogLine {
 public:
  LogLine(LogLevel lvl, int rank) : lvl_(lvl), rank_(rank) {}
  ~LogLine() { Logger::instance().write(lvl_, rank_, os_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  int rank_;
  std::ostringstream os_;
};

}  // namespace ccaperf

#define CCAPERF_LOG(level, rank) \
  ::ccaperf::LogLine(::ccaperf::LogLevel::level, (rank))
