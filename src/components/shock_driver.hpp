#pragma once
// ShockDriverComponent — "a component that orchestrates the simulation"
// (paper §5, Fig. 2). Initializes the mesh, then steps: CFL dt ->
// recursive RK2 advance -> periodic regrid/load-balance (the paper's run
// was "load-balanced once, resulting in a different domain decomposition",
// visible as the Fig. 9 cluster split).

#include "components/ports.hpp"

namespace components {

struct DriverConfig {
  int nsteps = 8;
  double cfl = 0.4;
  /// Regrid (and rebalance) every `regrid_interval` steps; 0 disables.
  int regrid_interval = 4;
};

class ShockDriverComponent final : public cca::Component, public GoPort {
 public:
  explicit ShockDriverComponent(DriverConfig cfg) : cfg_(cfg) {}

  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<GoPort*>(this)), "go",
                          "cca.GoPort");
    svc.register_uses_port("mesh", "amr.MeshPort");
    svc.register_uses_port("integrator", "euler.IntegratorPort");
  }

  int go() override {
    auto* mesh = svc_->get_port_as<MeshPort>("mesh");
    auto* integrator = svc_->get_port_as<IntegratorPort>("integrator");
    mesh->initialize();
    for (int step = 1; step <= cfg_.nsteps; ++step) {
      const double dt = integrator->stable_dt(cfg_.cfl);
      integrator->advance(dt);
      time_ += dt;
      ++steps_done_;
      if (cfg_.regrid_interval > 0 && step % cfg_.regrid_interval == 0 &&
          step < cfg_.nsteps)
        mesh->regrid();
    }
    return 0;
  }

  double time() const { return time_; }
  int steps_done() const { return steps_done_; }

 private:
  DriverConfig cfg_;
  cca::Services* svc_ = nullptr;
  double time_ = 0.0;
  int steps_done_ = 0;
};

}  // namespace components
