#pragma once
// components::LuFactorComponent — a minimal HPL-style dense-LU workload.
//
// The TelemetryHub's soak harness needs scenario diversity beyond the
// fig01 AMR pipeline: a second, structurally different component driven
// through the same proxy/MonitorPort stack, so the hub is exercised by
// heterogeneous sessions (AMR's many small monitored kernels vs LU's few
// large ones — the HPL end of the paper's "component applications"
// spectrum). The component is deliberately self-contained: it fabricates
// a seeded fully-random matrix (HPL-style — stability comes from the
// pivoting, not from diagonal dominance), runs blocked right-looking LU
// with partial pivoting, and reports
//
//  * digest       — FNV-1a over the factored matrix's raw double bits, a
//                   deterministic physics fingerprint (the soak harness
//                   compares solo vs concurrent-session digests byte for
//                   byte);
//  * residual_max — max |(PA − LU)[i][j]| over sampled rows, recomputing
//                   A from the seed (correctness, not just determinism);
//  * row_swaps    — pivoting actually happened;
//  * flops        — the classic 2n³/3 count, for sessions/sec context.
//
// core::LuProxy (src/core/proxies.hpp) interposes on LuPort exactly like
// sc_proxy/g_proxy do on theirs, reporting "lu_proxy::factor()" with
// parameters {N, block}.

#include <cstdint>
#include <vector>

#include "cca/framework.hpp"

namespace components {

struct LuResult {
  std::uint64_t digest = 0;
  double residual_max = 0.0;
  std::uint64_t row_swaps = 0;
  std::uint64_t flops = 0;
};

class LuPort : public cca::Port {
 public:
  /// Factors the seeded n×n matrix with panel width `block`.
  virtual LuResult factor(int n, int block, std::uint64_t seed) = 0;
};

class LuFactorComponent final : public cca::Component, public LuPort {
 public:
  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<LuPort*>(this)), "lu",
                          "hpl.LuPort");
  }

  LuResult factor(int n, int block, std::uint64_t seed) override;
};

/// The seeded test matrix, row-major: A[i][j] ∈ [-1, 1) from a counter
/// hash of (seed, i, j) — fully random, so partial pivoting is
/// load-bearing (HPL's matrix class). Exposed so tests and the residual
/// check regenerate the exact original entries.
double lu_matrix_entry(std::uint64_t seed, int n, int i, int j);

/// FNV-1a over a double array's raw bit patterns.
std::uint64_t lu_digest(const std::vector<double>& a);

}  // namespace components
