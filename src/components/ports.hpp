#pragma once
// Port interfaces of the case-study application (paper Fig. 2).
//
// The wiring:
//   ShockDriver --GoPort--> (framework "go")
//   ShockDriver uses MeshPort (AMRMesh) and IntegratorPort (RK2)
//   RK2 uses MeshPort and FluxDivergencePort (InviscidFlux)
//   InviscidFlux uses StatesPort (States) and FluxPort (EFMFlux OR
//   GodunovFlux — the interchangeable implementations of §5)
//
// Proxies in src/core implement these same interfaces and are interposed
// by the instrumented app builder.

#include <string>

#include "amr/hierarchy.hpp"
#include "cca/framework.hpp"
#include "euler/kernels.hpp"

namespace components {

/// Entry point of an application assembly (CCAFFEINE's go port).
class GoPort : public cca::Port {
 public:
  virtual int go() = 0;
};

/// Reconstruction of interface states on one patch, one direction.
/// Dir::x is the sequential-access mode, Dir::y the strided mode.
class StatesPort : public cca::Port {
 public:
  virtual euler::KernelCounts compute(const amr::PatchData<double>& u,
                                      const amr::Box& interior, euler::Dir dir,
                                      euler::Array2& left, euler::Array2& right) = 0;
};

/// Numerical flux from reconstructed interface states. EFMFlux and
/// GodunovFlux both provide this — the interchangeable pair whose
/// performance/accuracy trade-off the paper studies.
class FluxPort : public cca::Port {
 public:
  virtual euler::KernelCounts compute(const euler::Array2& left,
                                      const euler::Array2& right, euler::Dir dir,
                                      euler::Array2& flux) = 0;
  /// Implementation name (for models/records, e.g. "EFMFlux").
  virtual std::string method_name() const = 0;
  /// QoS metadata: relative solution quality in [0, 1] (Godunov is "the
  /// preferred choice for scientists (it is more accurate)").
  virtual double accuracy() const = 0;
};

/// dU/dt for one patch: X+Y sweeps through StatesPort and FluxPort.
class FluxDivergencePort : public cca::Port {
 public:
  virtual void compute(const amr::PatchData<double>& u, const amr::Box& interior,
                       double dx, double dy, amr::PatchData<double>& dudt) = 0;
};

/// Patch/hierarchy management: the AMRMesh component. All message passing
/// of the application happens behind this port.
class MeshPort : public cca::Port {
 public:
  virtual amr::Hierarchy& hierarchy() = 0;
  /// Builds the initial hierarchy (level 0, refinement passes, IC fill,
  /// ghost fill). Call once before stepping.
  virtual void initialize() = 0;
  /// Same-level ghost-cell update + physical BCs (Isend/Irecv/Waitsome).
  virtual amr::ExchangeStats ghost_update(int level) = 0;
  /// Coarse->fine ghost prolongation (call before ghost_update on l > 0).
  virtual void prolong(int level) = 0;
  /// Conservative fine->coarse averaging.
  virtual void restrict_level(int fine_level) = 0;
  /// Re-flag, re-cluster, re-balance, migrate (the paper's "load-balancing
  /// and domain (re-)decomposition" method).
  virtual void regrid() = 0;
};

/// Time integration: recursive RK2 over the level hierarchy with
/// subcycling (the L0 L1 L2 L2 L1 L2 L2 sequence of §5).
class IntegratorPort : public cca::Port {
 public:
  /// CFL-stable level-0 time step (collective).
  virtual double stable_dt(double cfl) = 0;
  /// One coarse step of size `dt` (children subcycle by the ratio).
  virtual void advance(double dt) = 0;
};

}  // namespace components
