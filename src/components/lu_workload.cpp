#include "components/lu_workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/error.hpp"

namespace components {
namespace {

/// splitmix64 — counter-based, so any (seed, i, j) entry is recomputable
/// in isolation (the residual check regenerates original rows on demand).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double lu_matrix_entry(std::uint64_t seed, int n, int i, int j) {
  const std::uint64_t h = mix64(seed ^ mix64(static_cast<std::uint64_t>(i) << 32 |
                                             static_cast<std::uint32_t>(j)));
  // Top 53 bits -> [0, 1), shifted to [-1, 1). Fully random, HPL-style:
  // the diagonal gets no boost, so partial pivoting carries the numerical
  // stability (and actually fires — the tests gate on row_swaps > 0).
  (void)n;
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0) * 2.0 - 1.0;
}

std::uint64_t lu_digest(const std::vector<double>& a) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double v : a) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

LuResult LuFactorComponent::factor(int n, int block, std::uint64_t seed) {
  CCAPERF_REQUIRE(n > 0, "LuFactorComponent: n must be positive");
  CCAPERF_REQUIRE(block > 0, "LuFactorComponent: block must be positive");
  const std::size_t nn = static_cast<std::size_t>(n);
  std::vector<double> a(nn * nn);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a[static_cast<std::size_t>(i) * nn + j] = lu_matrix_entry(seed, n, i, j);

  std::vector<int> perm(nn);  // perm[i] = original row now living at row i
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;

  LuResult r;
  // Blocked right-looking LU with partial pivoting, factoring in place:
  // L strictly below the diagonal (unit diagonal implied), U on and above.
  for (int k0 = 0; k0 < n; k0 += block) {
    const int k1 = std::min(k0 + block, n);
    // Panel factorization (unblocked) over columns [k0, k1).
    for (int k = k0; k < k1; ++k) {
      int piv = k;
      double best = std::fabs(a[static_cast<std::size_t>(k) * nn + k]);
      for (int i = k + 1; i < n; ++i) {
        const double v = std::fabs(a[static_cast<std::size_t>(i) * nn + k]);
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      CCAPERF_REQUIRE(best > 0.0, "LuFactorComponent: singular pivot");
      if (piv != k) {
        for (int j = 0; j < n; ++j)
          std::swap(a[static_cast<std::size_t>(k) * nn + j],
                    a[static_cast<std::size_t>(piv) * nn + j]);
        std::swap(perm[static_cast<std::size_t>(k)],
                  perm[static_cast<std::size_t>(piv)]);
        ++r.row_swaps;
      }
      const double dk = a[static_cast<std::size_t>(k) * nn + k];
      for (int i = k + 1; i < n; ++i) {
        double& lik = a[static_cast<std::size_t>(i) * nn + k];
        lik /= dk;
        // Update only the rest of the panel; the trailing matrix is
        // updated blockwise below.
        for (int j = k + 1; j < k1; ++j)
          a[static_cast<std::size_t>(i) * nn + j] -=
              lik * a[static_cast<std::size_t>(k) * nn + j];
      }
    }
    if (k1 >= n) break;
    // Triangular solve: U12 = L11^{-1} * A12 (unit-lower, in place).
    for (int k = k0; k < k1; ++k)
      for (int i = k + 1; i < k1; ++i) {
        const double lik = a[static_cast<std::size_t>(i) * nn + k];
        for (int j = k1; j < n; ++j)
          a[static_cast<std::size_t>(i) * nn + j] -=
              lik * a[static_cast<std::size_t>(k) * nn + j];
      }
    // Trailing update: A22 -= L21 * U12 (the GEMM that dominates HPL).
    for (int i = k1; i < n; ++i)
      for (int k = k0; k < k1; ++k) {
        const double lik = a[static_cast<std::size_t>(i) * nn + k];
        for (int j = k1; j < n; ++j)
          a[static_cast<std::size_t>(i) * nn + j] -=
              lik * a[static_cast<std::size_t>(k) * nn + j];
      }
  }

  // Residual check on sampled rows: (PA)[i][:] vs (L*U)[i][:], with A
  // regenerated from the seed — catches wrong math, not just nondeterminism.
  const int stride = std::max(1, n / 8);
  for (int i = 0; i < n; i += stride) {
    for (int j = 0; j < n; ++j) {
      double lu = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        const double lik = k == i ? 1.0 : a[static_cast<std::size_t>(i) * nn + k];
        lu += lik * a[static_cast<std::size_t>(k) * nn + j];
      }
      const double pa =
          lu_matrix_entry(seed, n, perm[static_cast<std::size_t>(i)], j);
      r.residual_max = std::max(r.residual_max, std::fabs(pa - lu));
    }
  }

  r.digest = lu_digest(a);
  const double dn = static_cast<double>(n);
  r.flops = static_cast<std::uint64_t>(2.0 * dn * dn * dn / 3.0);
  return r;
}

}  // namespace components
