#pragma once
// StatesComponent — characteristic/interface state reconstruction.
//
// "States and EFMFlux ... are invoked on a patch-by-patch basis. The
// invocations include a data array (a different one for each patch) and an
// output array of the same size. Both these components can function in two
// modes — sequential or strided array access to calculate X- or
// Y-derivatives respectively — with different performance consequences."
// (paper §5). The performance parameter a proxy extracts is the array size
// Q = number of cells passed in.

#include "components/ports.hpp"
#include "euler/state.hpp"
#include "support/thread_pool.hpp"

namespace components {

class StatesComponent final : public cca::Component, public StatesPort {
 public:
  explicit StatesComponent(euler::GasModel gas) : gas_(gas) {}

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<StatesPort*>(this)),
                          "states", "euler.StatesPort");
  }

  euler::KernelCounts compute(const amr::PatchData<double>& u,
                              const amr::Box& interior, euler::Dir dir,
                              euler::Array2& left, euler::Array2& right) override {
    // Row-parallel inside the patch when the rank pool has lanes; inside
    // an enclosing patch-level region this runs inline on the calling lane.
    return euler::compute_states_mt(ccaperf::rank_pool(), u, interior, dir,
                                    gas_, left, right);
  }

 private:
  euler::GasModel gas_;
};

}  // namespace components
