#pragma once
// AMRMeshComponent — owns the SAMR hierarchy; all of the application's
// message passing happens behind this port ("Neither of these components
// involve message passing, most of which is done by AMRMesh", paper §5).
// Its ghost_update and regrid methods are the two callers of
// MPI_Waitsome that dominate the paper's Fig. 3 profile.

#include <optional>

#include "components/ports.hpp"
#include "euler/problem.hpp"

namespace components {

class AMRMeshComponent final : public cca::Component, public MeshPort {
 public:
  AMRMeshComponent(mpp::Comm& world, amr::HierarchyConfig cfg,
                   euler::ShockInterfaceProblem problem)
      : hierarchy_(world, std::move(cfg)), problem_(std::move(problem)),
        bc_(problem_.bc()) {}

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<MeshPort*>(this)), "mesh",
                          "amr.MeshPort");
  }

  amr::Hierarchy& hierarchy() override { return hierarchy_; }

  /// Builds level 0, iteratively deepens the hierarchy (each new level is
  /// re-initialized from the exact ICs so refined regions start sharp),
  /// and fills all ghosts.
  void initialize() override {
    hierarchy_.init_level0();
    problem_.fill_hierarchy(hierarchy_);
    for (int pass = 1; pass < hierarchy_.config().max_levels; ++pass) {
      hierarchy_.regrid(problem_.flagger(), bc_);
      problem_.fill_hierarchy(hierarchy_);
    }
    for (int l = 0; l < hierarchy_.num_levels(); ++l)
      hierarchy_.fill_ghosts(l, bc_);
  }

  amr::ExchangeStats ghost_update(int level) override {
    return hierarchy_.exchange_and_bc(level, bc_);
  }

  void prolong(int level) override { hierarchy_.prolong(level, /*ghosts_only=*/true); }

  void restrict_level(int fine_level) override {
    hierarchy_.restrict_level(fine_level);
  }

  void regrid() override {
    hierarchy_.regrid(problem_.flagger(), bc_);
    hierarchy_.rebalance();
    for (int l = 0; l < hierarchy_.num_levels(); ++l)
      hierarchy_.fill_ghosts(l, bc_);
  }

  const amr::BcSpec& bc() const { return bc_; }
  const euler::ShockInterfaceProblem& problem() const { return problem_; }

 private:
  amr::Hierarchy hierarchy_;
  euler::ShockInterfaceProblem problem_;
  amr::BcSpec bc_;
};

}  // namespace components
