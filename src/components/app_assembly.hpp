#pragma once
// Assembly of the case-study application (paper Fig. 2, minus the PMM
// components — the instrumented assembly lives in core/instrumented_app).
//
// "To build a CCA application, an application developer simply composes
// together a set of components using a CCA-compliant framework."

#include <memory>
#include <string>

#include "amr/hierarchy.hpp"
#include "cca/framework.hpp"
#include "euler/problem.hpp"
#include "components/shock_driver.hpp"

namespace components {

struct AppConfig {
  amr::HierarchyConfig mesh;
  euler::ShockInterfaceProblem problem;
  DriverConfig driver;
  /// Which FluxPort implementation to wire in: "EFMFlux" or "GodunovFlux".
  std::string flux_impl = "GodunovFlux";

  /// The paper's setup scaled to run quickly: a 3-level hierarchy (r = 2)
  /// over a rectangular shock-tube domain.
  static AppConfig case_study();
};

/// Registers every application component class. The returned repository's
/// factories close over `world` and `cfg`; both EFMFlux and GodunovFlux
/// are registered (the optimizer instantiates the alternate one later).
cca::ComponentRepository make_repository(mpp::Comm& world, const AppConfig& cfg);

/// Instantiates and wires the plain (uninstrumented) application:
/// driver -> {mesh, rk2}; rk2 -> {mesh, invflux};
/// invflux -> {states, <flux_impl>}.
std::unique_ptr<cca::Framework> assemble_app(mpp::Comm& world, const AppConfig& cfg);

}  // namespace components
