#pragma once
// InviscidFluxComponent — assembles dU/dt for one patch by driving the
// States and Flux components through their ports in both directions
// ("during the execution of the application, both the X- and Y-derivatives
// are calculated and the two modes of operation of these components are
// invoked in an alternating fashion", paper §5).
//
// In the instrumented assembly the proxies sit between this component and
// States/EFMFlux/GodunovFlux — this is the caller whose invocations they
// snoop.

#include "components/ports.hpp"
#include "support/thread_pool.hpp"

namespace components {

class InviscidFluxComponent final : public cca::Component, public FluxDivergencePort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<FluxDivergencePort*>(this)),
                          "invflux", "euler.FluxDivergencePort");
    svc.register_uses_port("states", "euler.StatesPort");
    svc.register_uses_port("flux", "euler.FluxPort");
  }

  void compute(const amr::PatchData<double>& u, const amr::Box& interior,
               double dx, double dy, amr::PatchData<double>& dudt) override {
    // Look the ports up per call: the Mastermind may dynamically reconnect
    // the flux port to a different implementation between steps.
    auto* states = svc_->get_port_as<StatesPort>("states");
    auto* flux = svc_->get_port_as<FluxPort>("flux");

    int nx = 0, ny = 0;
    euler::face_dims(interior, euler::Dir::x, nx, ny);
    euler::Array2 lx(nx, ny, euler::kNcomp), rx(nx, ny, euler::kNcomp),
        fx(nx, ny, euler::kNcomp);
    states->compute(u, interior, euler::Dir::x, lx, rx);
    flux->compute(lx, rx, euler::Dir::x, fx);

    euler::face_dims(interior, euler::Dir::y, nx, ny);
    euler::Array2 ly(nx, ny, euler::kNcomp), ry(nx, ny, euler::kNcomp),
        fy(nx, ny, euler::kNcomp);
    states->compute(u, interior, euler::Dir::y, ly, ry);
    flux->compute(ly, ry, euler::Dir::y, fy);

    euler::flux_divergence_mt(ccaperf::rank_pool(), fx, fy, interior, dx, dy,
                              dudt);
  }

 private:
  cca::Services* svc_ = nullptr;
};

}  // namespace components
