#pragma once
// The interchangeable flux implementations (paper §5's Quality-of-Service
// pair): EFMFlux (cheap, closed-form, more dissipative) and GodunovFlux
// (accurate, per-element iterative Riemann solve, more expensive and more
// variable). Both provide the same FluxPort, so an assembly can swap one
// for the other — which is exactly what the composite-model optimizer
// exploits.

#include "components/ports.hpp"
#include "euler/state.hpp"
#include "support/thread_pool.hpp"

namespace components {

class EFMFluxComponent final : public cca::Component, public FluxPort {
 public:
  explicit EFMFluxComponent(euler::GasModel gas) : gas_(gas) {}

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<FluxPort*>(this)), "flux",
                          "euler.FluxPort");
  }

  euler::KernelCounts compute(const euler::Array2& left, const euler::Array2& right,
                              euler::Dir dir, euler::Array2& flux) override {
    return euler::efm_flux_sweep_mt(ccaperf::rank_pool(), left, right, dir,
                                    gas_, flux);
  }

  std::string method_name() const override { return "EFMFlux"; }
  /// Kinetic flux-vector splitting smears contacts: lower quality score.
  double accuracy() const override { return 0.7; }

 private:
  euler::GasModel gas_;
};

class GodunovFluxComponent final : public cca::Component, public FluxPort {
 public:
  explicit GodunovFluxComponent(euler::GasModel gas) : gas_(gas) {}

  void setServices(cca::Services& svc) override {
    svc.add_provides_port(cca::non_owning(static_cast<FluxPort*>(this)), "flux",
                          "euler.FluxPort");
  }

  euler::KernelCounts compute(const euler::Array2& left, const euler::Array2& right,
                              euler::Dir dir, euler::Array2& flux) override {
    return euler::godunov_flux_sweep_mt(ccaperf::rank_pool(), left, right, dir,
                                        gas_, flux);
  }

  std::string method_name() const override { return "GodunovFlux"; }
  /// Exact Riemann fluxes resolve every wave family: top quality score.
  double accuracy() const override { return 1.0; }

 private:
  euler::GasModel gas_;
};

}  // namespace components
