#pragma once
// RK2Component — "orchestrates the recursive processing of patches"
// (paper §5): a two-stage Heun integrator over the level hierarchy with
// time subcycling. With refinement ratio 2 and three levels, one coarse
// advance processes levels in the paper's L0 L1 L2 L2 L1 L2 L2 sequence.
//
// Note on coarse-fine time coupling: fine-level ghost prolongation during
// subcycles uses the already-advanced coarse state (first-order-in-time
// boundary data) rather than interpolating between coarse time levels —
// standard simplification that does not change any measured quantity.

#include <map>
#include <utility>
#include <vector>

#include "components/ports.hpp"
#include "euler/kernels.hpp"
#include "support/thread_pool.hpp"

namespace components {

class RK2Component final : public cca::Component, public IntegratorPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<IntegratorPort*>(this)),
                          "integrator", "euler.IntegratorPort");
    svc.register_uses_port("mesh", "amr.MeshPort");
    svc.register_uses_port("invflux", "euler.FluxDivergencePort");
  }

  double stable_dt(double cfl) override {
    auto* mesh = svc_->get_port_as<MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();
    ccaperf::ThreadPool& pool = ccaperf::rank_pool();
    double vmax = 1e-12;
    for (int l = 0; l < h.num_levels(); ++l) {
      // Per-lane max fold: max is order-independent, so the result is
      // exact for any lane count.
      std::vector<MaxSlot> lane_max(static_cast<std::size_t>(pool.size()),
                                    MaxSlot{1e-12});
      const auto jobs = patch_jobs(h.level(l));
      pool.parallel_for(jobs.size(), [&](std::size_t k, int lane) {
        const amr::Box interior = h.level(l).patch(jobs[k].first).box;
        double& slot = lane_max[static_cast<std::size_t>(lane)].v;
        slot = std::max(slot,
                        euler::max_wave_speed(*jobs[k].second, interior, gas_));
      });
      for (const MaxSlot& s : lane_max) vmax = std::max(vmax, s.v);
    }
    vmax = h.comm().allreduce_value<mpp::MaxOp<double>>(vmax);
    const double dx = std::min(h.dx(0), h.dy(0));
    return cfl * dx / vmax;
  }

  void advance(double dt) override { advance_level(0, dt); }

  void set_gas(const euler::GasModel& gas) { gas_ = gas; }

 private:
  struct alignas(64) MaxSlot {
    double v;
  };

  /// Snapshot of a level's local patches as an indexable job list, so the
  /// pool can split it (map iteration order keeps ids sorted — the serial
  /// one-lane walk is identical to the old per-map loop).
  static std::vector<std::pair<int, amr::PatchData<double>*>> patch_jobs(
      amr::Level& lvl) {
    std::vector<std::pair<int, amr::PatchData<double>*>> jobs;
    jobs.reserve(lvl.local_data().size());
    for (auto& [id, data] : lvl.local_data()) jobs.emplace_back(id, &data);
    return jobs;
  }

  void advance_level(int l, double dt) {
    auto* mesh = svc_->get_port_as<MeshPort>("mesh");
    auto* invflux = svc_->get_port_as<FluxDivergencePort>("invflux");
    amr::Hierarchy& h = mesh->hierarchy();
    amr::Level& lvl = h.level(l);
    ccaperf::ThreadPool& pool = ccaperf::rank_pool();
    const double dx = h.dx(l), dy = h.dy(l);

    if (l > 0) mesh->prolong(l);
    mesh->ghost_update(l);

    // Patches are independent between ghost updates: each stage fans the
    // patch list out over the pool's lanes (comm stays on the rank thread,
    // between regions). Per-patch math is untouched, so any lane count
    // produces bit-identical fields.
    const auto jobs = patch_jobs(lvl);

    // Stage 1: U1 = U + dt L(U), keeping U for the Heun average.
    std::map<int, amr::PatchData<double>> u_old;
    for (auto& [id, data] : lvl.local_data()) u_old.emplace(id, data);
    pool.parallel_for(jobs.size(), [&](std::size_t k, int) {
      amr::PatchData<double>& data = *jobs[k].second;
      const amr::Box box = lvl.patch(jobs[k].first).box;
      amr::PatchData<double> dudt(box, 0, euler::kNcomp, 0.0);
      invflux->compute(data, box, dx, dy, dudt);
      // Row-contiguous update through the ISA-dispatched kernel (identical
      // to `data(i,j,c) += dt * dudt(i,j,c)` at every level, see
      // euler/simd.hpp); data and dudt have different row strides (ghosts
      // vs none), so rows are the largest contiguous runs.
      for (int c = 0; c < euler::kNcomp; ++c)
        for (int j = box.lo().j; j <= box.hi().j; ++j)
          euler::rk2_axpy(&data(box.lo().i, j, c), &dudt(box.lo().i, j, c), dt,
                          static_cast<std::size_t>(box.width()));
    });

    // Stage 2: U <- (U_old + U1 + dt L(U1)) / 2.
    if (l > 0) mesh->prolong(l);
    mesh->ghost_update(l);
    pool.parallel_for(jobs.size(), [&](std::size_t k, int) {
      amr::PatchData<double>& data = *jobs[k].second;
      const amr::Box box = lvl.patch(jobs[k].first).box;
      amr::PatchData<double> dudt(box, 0, euler::kNcomp, 0.0);
      invflux->compute(data, box, dx, dy, dudt);
      const amr::PatchData<double>& old = u_old.at(jobs[k].first);
      for (int c = 0; c < euler::kNcomp; ++c)
        for (int j = box.lo().j; j <= box.hi().j; ++j)
          euler::rk2_heun_average(&data(box.lo().i, j, c),
                                  &old(box.lo().i, j, c),
                                  &dudt(box.lo().i, j, c), dt,
                                  static_cast<std::size_t>(box.width()));
    });

    // Subcycled children, then conservative averaging back onto us.
    if (l + 1 < h.num_levels()) {
      const int r = h.config().ratio;
      for (int sub = 0; sub < r; ++sub)
        advance_level(l + 1, dt / r);
      mesh->restrict_level(l + 1);
    }
  }

  cca::Services* svc_ = nullptr;
  euler::GasModel gas_;
};

}  // namespace components
