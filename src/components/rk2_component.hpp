#pragma once
// RK2Component — "orchestrates the recursive processing of patches"
// (paper §5): a two-stage Heun integrator over the level hierarchy with
// time subcycling. With refinement ratio 2 and three levels, one coarse
// advance processes levels in the paper's L0 L1 L2 L2 L1 L2 L2 sequence.
//
// Note on coarse-fine time coupling: fine-level ghost prolongation during
// subcycles uses the already-advanced coarse state (first-order-in-time
// boundary data) rather than interpolating between coarse time levels —
// standard simplification that does not change any measured quantity.

#include <map>

#include "components/ports.hpp"

namespace components {

class RK2Component final : public cca::Component, public IntegratorPort {
 public:
  void setServices(cca::Services& svc) override {
    svc_ = &svc;
    svc.add_provides_port(cca::non_owning(static_cast<IntegratorPort*>(this)),
                          "integrator", "euler.IntegratorPort");
    svc.register_uses_port("mesh", "amr.MeshPort");
    svc.register_uses_port("invflux", "euler.FluxDivergencePort");
  }

  double stable_dt(double cfl) override {
    auto* mesh = svc_->get_port_as<MeshPort>("mesh");
    amr::Hierarchy& h = mesh->hierarchy();
    double vmax = 1e-12;
    for (int l = 0; l < h.num_levels(); ++l) {
      for (const auto& [id, data] : h.level(l).local_data()) {
        const amr::Box interior = h.level(l).patch(id).box;
        vmax = std::max(vmax, euler::max_wave_speed(data, interior, gas_));
      }
    }
    vmax = h.comm().allreduce_value<mpp::MaxOp<double>>(vmax);
    const double dx = std::min(h.dx(0), h.dy(0));
    return cfl * dx / vmax;
  }

  void advance(double dt) override { advance_level(0, dt); }

  void set_gas(const euler::GasModel& gas) { gas_ = gas; }

 private:
  void advance_level(int l, double dt) {
    auto* mesh = svc_->get_port_as<MeshPort>("mesh");
    auto* invflux = svc_->get_port_as<FluxDivergencePort>("invflux");
    amr::Hierarchy& h = mesh->hierarchy();
    amr::Level& lvl = h.level(l);
    const double dx = h.dx(l), dy = h.dy(l);

    if (l > 0) mesh->prolong(l);
    mesh->ghost_update(l);

    // Stage 1: U1 = U + dt L(U), keeping U for the Heun average.
    std::map<int, amr::PatchData<double>> u_old;
    for (auto& [id, data] : lvl.local_data()) u_old.emplace(id, data);
    for (auto& [id, data] : lvl.local_data()) {
      const amr::Box box = lvl.patch(id).box;
      amr::PatchData<double> dudt(box, 0, euler::kNcomp, 0.0);
      invflux->compute(data, box, dx, dy, dudt);
      for (int c = 0; c < euler::kNcomp; ++c)
        for (int j = box.lo().j; j <= box.hi().j; ++j)
          for (int i = box.lo().i; i <= box.hi().i; ++i)
            data(i, j, c) += dt * dudt(i, j, c);
    }

    // Stage 2: U <- (U_old + U1 + dt L(U1)) / 2.
    if (l > 0) mesh->prolong(l);
    mesh->ghost_update(l);
    for (auto& [id, data] : lvl.local_data()) {
      const amr::Box box = lvl.patch(id).box;
      amr::PatchData<double> dudt(box, 0, euler::kNcomp, 0.0);
      invflux->compute(data, box, dx, dy, dudt);
      const amr::PatchData<double>& old = u_old.at(id);
      for (int c = 0; c < euler::kNcomp; ++c)
        for (int j = box.lo().j; j <= box.hi().j; ++j)
          for (int i = box.lo().i; i <= box.hi().i; ++i)
            data(i, j, c) =
                0.5 * (old(i, j, c) + data(i, j, c) + dt * dudt(i, j, c));
    }

    // Subcycled children, then conservative averaging back onto us.
    if (l + 1 < h.num_levels()) {
      const int r = h.config().ratio;
      for (int sub = 0; sub < r; ++sub)
        advance_level(l + 1, dt / r);
      mesh->restrict_level(l + 1);
    }
  }

  cca::Services* svc_ = nullptr;
  euler::GasModel gas_;
};

}  // namespace components
