#include "components/app_assembly.hpp"

#include "components/amrmesh_component.hpp"
#include "components/flux_components.hpp"
#include "components/inviscid_flux.hpp"
#include "components/rk2_component.hpp"
#include "components/states_component.hpp"

namespace components {

AppConfig AppConfig::case_study() {
  AppConfig cfg;
  // 96x48 base grid over a 2:1 shock tube; three levels at r=2 puts the
  // finest resolution at 384x192 where the interface rolls up.
  cfg.mesh.domain = amr::Box{0, 0, 95, 47};
  cfg.mesh.max_levels = 3;
  cfg.mesh.ratio = 2;
  cfg.mesh.nghost = 2;
  cfg.mesh.ncomp = euler::kNcomp;
  cfg.mesh.level0_patch_size = 24;
  cfg.mesh.cluster = amr::ClusterParams{0.80, 8, 96};
  cfg.mesh.flag_buffer = 2;
  cfg.mesh.geom = amr::Geometry{0.0, 0.0, 2.0 / 96.0, 1.0 / 48.0};
  cfg.driver = DriverConfig{8, 0.4, 4};
  return cfg;
}

cca::ComponentRepository make_repository(mpp::Comm& world, const AppConfig& cfg) {
  cca::ComponentRepository repo;
  const euler::GasModel gas = cfg.problem.gas;
  repo.register_class("ShockDriver", [cfg] {
    return std::make_unique<ShockDriverComponent>(cfg.driver);
  });
  repo.register_class("AMRMesh", [&world, cfg] {
    return std::make_unique<AMRMeshComponent>(world, cfg.mesh, cfg.problem);
  });
  repo.register_class("RK2", [gas] {
    auto rk2 = std::make_unique<RK2Component>();
    rk2->set_gas(gas);
    return rk2;
  });
  repo.register_class("InviscidFlux",
                      [] { return std::make_unique<InviscidFluxComponent>(); });
  repo.register_class("States",
                      [gas] { return std::make_unique<StatesComponent>(gas); });
  repo.register_class("EFMFlux",
                      [gas] { return std::make_unique<EFMFluxComponent>(gas); });
  repo.register_class("GodunovFlux",
                      [gas] { return std::make_unique<GodunovFluxComponent>(gas); });
  return repo;
}

std::unique_ptr<cca::Framework> assemble_app(mpp::Comm& world, const AppConfig& cfg) {
  auto fw = std::make_unique<cca::Framework>(make_repository(world, cfg));
  fw->instantiate("driver", "ShockDriver");
  fw->instantiate("mesh", "AMRMesh");
  fw->instantiate("rk2", "RK2");
  fw->instantiate("invflux", "InviscidFlux");
  fw->instantiate("states", "States");
  fw->instantiate("flux", cfg.flux_impl);

  fw->connect("driver", "mesh", "mesh", "mesh");
  fw->connect("driver", "integrator", "rk2", "integrator");
  fw->connect("rk2", "mesh", "mesh", "mesh");
  fw->connect("rk2", "invflux", "invflux", "invflux");
  fw->connect("invflux", "states", "states", "states");
  fw->connect("invflux", "flux", "flux", "flux");
  return fw;
}

}  // namespace components
