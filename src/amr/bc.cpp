#include "amr/bc.hpp"

namespace amr {

namespace {

/// Maps an out-of-domain index to its source index and sign for one axis.
/// `lo_type`/`hi_type` are the boundary types at domain.lo/hi on the axis.
struct AxisMap {
  int src;
  bool reflected;
};

AxisMap map_axis(int idx, int dlo, int dhi, BcType lo_type, BcType hi_type) {
  if (idx < dlo) {
    if (lo_type == BcType::reflecting) return {2 * dlo - 1 - idx, true};
    return {dlo, false};
  }
  if (idx > dhi) {
    if (hi_type == BcType::reflecting) return {2 * dhi + 1 - idx, true};
    return {dhi, false};
  }
  return {idx, false};
}

}  // namespace

void fill_physical_bc(PatchData<double>& p, const Box& domain, const BcSpec& bc) {
  const Box g = p.grown_box();
  if (domain.contains(g)) return;  // nothing outside

  const int ncomp = p.ncomp();
  auto sign_of = [](const std::vector<double>& signs, int c) {
    return c < static_cast<int>(signs.size()) ? signs[static_cast<std::size_t>(c)] : 1.0;
  };

  for (int j = g.lo().j; j <= g.hi().j; ++j) {
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      if (domain.contains(IntVect{i, j})) continue;
      const AxisMap mx = map_axis(i, domain.lo().i, domain.hi().i, bc.xlo, bc.xhi);
      const AxisMap my = map_axis(j, domain.lo().j, domain.hi().j, bc.ylo, bc.yhi);
      // Clamp mapped index into the patch's grown box (the mirror source
      // is in the interior for ghost widths <= patch width; clamp guards
      // degenerate thin patches).
      const int si = std::clamp(mx.src, g.lo().i, g.hi().i);
      const int sj = std::clamp(my.src, g.lo().j, g.hi().j);
      for (int c = 0; c < ncomp; ++c) {
        double v = p(si, sj, c);
        if (mx.reflected) v *= sign_of(bc.reflect_sign_x, c);
        if (my.reflected) v *= sign_of(bc.reflect_sign_y, c);
        p(i, j, c) = v;
      }
    }
  }
}

}  // namespace amr
