#pragma once
// Level: one refinement level of the SAMR hierarchy.
//
// SCMD invariant (paper §3.1): the *metadata* — every patch's box and
// owner — is identical on all ranks; only the patch *data* of locally
// owned patches is stored. All communication plans are computed
// redundantly from the shared metadata, so no negotiation messages are
// needed before an exchange.

#include <map>
#include <vector>

#include "amr/box.hpp"
#include "amr/patch_data.hpp"

namespace amr {

struct PatchInfo {
  int id = -1;     ///< unique within the level
  Box box;         ///< interior cells, level index space
  int owner = 0;   ///< owning rank (group rank in the mesh communicator)
};

class Level {
 public:
  Level() = default;
  /// `domain` is the full problem domain in this level's index space;
  /// `ratio` is the refinement ratio to the next coarser level (1 for
  /// level 0).
  Level(int index, Box domain, int ratio) : index_(index), domain_(domain), ratio_(ratio) {}

  int index() const { return index_; }
  const Box& domain() const { return domain_; }
  int ratio_to_coarser() const { return ratio_; }

  const std::vector<PatchInfo>& patches() const { return patches_; }
  std::vector<PatchInfo>& patches() { return patches_; }

  const PatchInfo& patch(int id) const {
    for (const PatchInfo& p : patches_)
      if (p.id == id) return p;
    ccaperf::raise("Level: unknown patch id " + std::to_string(id));
  }

  bool is_local(int id, int my_rank) const { return patch(id).owner == my_rank; }

  /// Data of a locally owned patch.
  PatchData<double>& data(int id) {
    auto it = local_.find(id);
    CCAPERF_REQUIRE(it != local_.end(),
                    "Level: patch " + std::to_string(id) + " is not local");
    return it->second;
  }
  const PatchData<double>& data(int id) const {
    auto it = local_.find(id);
    CCAPERF_REQUIRE(it != local_.end(),
                    "Level: patch " + std::to_string(id) + " is not local");
    return it->second;
  }
  bool has_data(int id) const { return local_.count(id) != 0; }
  std::map<int, PatchData<double>>& local_data() { return local_; }
  const std::map<int, PatchData<double>>& local_data() const { return local_; }

  /// Ids of patches owned by `rank`, in metadata order.
  std::vector<int> owned_ids(int rank) const {
    std::vector<int> ids;
    for (const PatchInfo& p : patches_)
      if (p.owner == rank) ids.push_back(p.id);
    return ids;
  }

  std::vector<Box> boxes() const {
    std::vector<Box> bs;
    bs.reserve(patches_.size());
    for (const PatchInfo& p : patches_) bs.push_back(p.box);
    return bs;
  }

  long total_cells() const {
    long t = 0;
    for (const PatchInfo& p : patches_) t += p.box.num_pts();
    return t;
  }

 private:
  int index_ = 0;
  Box domain_;
  int ratio_ = 1;
  std::vector<PatchInfo> patches_;
  std::map<int, PatchData<double>> local_;
};

}  // namespace amr
