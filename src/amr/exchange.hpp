#pragma once
// Distributed region copier — the communication core of the AMR substrate.
//
// Copies box intersections between two distributed sets of patches that
// share an index space. Every rank computes the identical transfer plan
// from the (replicated) metadata; off-rank items are coalesced into ONE
// packed message per counterpart rank (both sides walk the shared plan
// order, so segment offsets agree without any header), completed with
// wait_some — the exact Isend/Irecv/MPI_Waitsome pattern whose cost
// dominates the paper's profile (Fig. 3: ~25% of run time inside
// MPI_Waitsome invoked from AMRMesh's ghost-cell update and load-balancing
// methods). Coalescing turns the message count from O(overlapping patch
// pairs) into O(neighbor ranks) per exchange round.
//
// Users: same-level ghost exchange, coarse->fine prolongation donors,
// fine->coarse restriction, regrid data migration (all in hierarchy.cpp).

#include <functional>
#include <vector>

#include "amr/level.hpp"
#include "mpp/comm.hpp"

namespace amr {

/// Read access to the data of a (possibly synthetic) source patch.
/// Called only for patches owned by this rank; must return data whose
/// grown box contains the requested regions.
using SrcAccessor = std::function<const PatchData<double>*(int patch_id)>;
/// Write access to a destination patch owned by this rank.
using DstAccessor = std::function<PatchData<double>*(int patch_id)>;
/// Region of a destination patch to fill (e.g. its grown box for ghost
/// exchange, its interior for migration). Evaluated on the shared
/// metadata, so it must be a pure function of the PatchInfo.
using DstRegion = std::function<Box(const PatchInfo&)>;

struct ExchangeStats {
  std::size_t plan_items = 0;
  std::size_t local_copies = 0;
  std::size_t messages_sent = 0;      ///< packed messages (<= neighbor ranks)
  std::size_t messages_received = 0;  ///< packed messages (<= neighbor ranks)
  std::size_t segments_sent = 0;      ///< plan items carried by those messages
  std::size_t segments_received = 0;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  /// Graceful degradation under faults: messages the exchange stopped
  /// waiting for after a mpp::CommError timeout — their destination regions
  /// keep whatever (stale) data they held. Reported to CommHooks and the
  /// fabric via Comm::report_stale_fallback.
  std::size_t stale_messages = 0;
  std::size_t stale_segments = 0;
  /// Sends whose completion failed (retry exhausted / timeout).
  std::size_t send_failures = 0;
};

/// Performs the copy. `src_valid(info)` gives the box of valid source
/// cells (usually the interior). When `skip_same_id` is true, plan items
/// with src.id == dst.id are dropped (ghost exchange on one level must not
/// copy a patch onto itself). All coalesced messages of one exchange share
/// `tag_base` (matching disambiguates by source rank); distinct concurrent
/// exchanges need distinct tag_base values — use a monotone counter.
ExchangeStats exchange_copy(mpp::Comm& comm,
                            const std::vector<PatchInfo>& src_patches,
                            const SrcAccessor& src_data,
                            const std::vector<PatchInfo>& dst_patches,
                            const DstAccessor& dst_data,
                            const DstRegion& dst_region,
                            bool skip_same_id, int tag_base);

/// Convenience: same-level ghost-cell update. Fills every local patch's
/// ghost cells from the interiors of its same-level neighbors.
ExchangeStats exchange_ghosts(mpp::Comm& comm, Level& level, int nghost,
                              int tag_base);

}  // namespace amr
