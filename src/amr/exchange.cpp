#include "amr/exchange.hpp"

#include <vector>

namespace amr {

namespace {

struct PlanItem {
  int src_id;
  int src_owner;
  int dst_id;
  int dst_owner;
  Box box;
};

}  // namespace

ExchangeStats exchange_copy(mpp::Comm& comm,
                            const std::vector<PatchInfo>& src_patches,
                            const SrcAccessor& src_data,
                            const std::vector<PatchInfo>& dst_patches,
                            const DstAccessor& dst_data,
                            const DstRegion& dst_region,
                            bool skip_same_id, int tag_base) {
  const int me = comm.rank();
  ExchangeStats stats;

  // Identical plan on every rank: deterministic double loop over shared
  // metadata. Tag = tag_base + item index.
  std::vector<PlanItem> plan;
  for (const PatchInfo& d : dst_patches) {
    const Box region = dst_region(d);
    if (region.empty()) continue;
    for (const PatchInfo& s : src_patches) {
      if (skip_same_id && s.id == d.id) continue;
      const Box overlap = s.box & region;
      if (overlap.empty()) continue;
      plan.push_back(PlanItem{s.id, s.owner, d.id, d.owner, overlap});
    }
  }
  stats.plan_items = plan.size();

  // Local copies + sends.
  std::vector<mpp::Request> send_reqs;
  std::vector<std::vector<double>> send_bufs;  // keep alive until waited
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const PlanItem& item = plan[k];
    if (item.src_owner != me) continue;
    const PatchData<double>* src = src_data(item.src_id);
    CCAPERF_REQUIRE(src != nullptr, "exchange_copy: missing local source data");
    if (item.dst_owner == me) {
      PatchData<double>* dst = dst_data(item.dst_id);
      CCAPERF_REQUIRE(dst != nullptr, "exchange_copy: missing local dest data");
      dst->copy_from(*src, item.box);
      ++stats.local_copies;
    } else {
      send_bufs.emplace_back();
      src->pack(item.box, send_bufs.back());
      send_reqs.push_back(comm.isend<double>(send_bufs.back(), item.dst_owner,
                                             tag_base + static_cast<int>(k)));
      ++stats.messages_sent;
      stats.bytes_sent += send_bufs.back().size() * sizeof(double);
    }
  }

  // Receives.
  struct Pending {
    std::size_t plan_index;
    std::vector<double> buffer;
  };
  std::vector<Pending> pending;
  std::vector<mpp::Request> recv_reqs;
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const PlanItem& item = plan[k];
    if (item.dst_owner != me || item.src_owner == me) continue;
    Pending p;
    p.plan_index = k;
    const PatchData<double>* probe = nullptr;
    // Buffer size: box cells x ncomp; ncomp read from the dest patch.
    PatchData<double>* dst = dst_data(item.dst_id);
    CCAPERF_REQUIRE(dst != nullptr, "exchange_copy: missing local dest data");
    (void)probe;
    p.buffer.resize(static_cast<std::size_t>(item.box.num_pts()) *
                    static_cast<std::size_t>(dst->ncomp()));
    pending.push_back(std::move(p));
  }
  recv_reqs.reserve(pending.size());
  for (Pending& p : pending) {
    const PlanItem& item = plan[p.plan_index];
    recv_reqs.push_back(comm.irecv<double>(p.buffer, item.src_owner,
                                           tag_base + static_cast<int>(p.plan_index)));
  }

  // Complete receives with wait_some, unpacking as data lands (the
  // paper's AMRMesh ghost-update pattern).
  std::size_t outstanding = recv_reqs.size();
  std::vector<int> done;
  while (outstanding > 0) {
    const std::size_t n = mpp::wait_some(recv_reqs, done);
    CCAPERF_REQUIRE(n > 0, "exchange_copy: wait_some made no progress");
    for (int idx : done) {
      Pending& p = pending[static_cast<std::size_t>(idx)];
      const PlanItem& item = plan[p.plan_index];
      PatchData<double>* dst = dst_data(item.dst_id);
      dst->unpack(item.box, p.buffer);
      ++stats.messages_received;
      stats.bytes_received += p.buffer.size() * sizeof(double);
    }
    outstanding -= n;
  }

  mpp::wait_all(send_reqs);
  return stats;
}

ExchangeStats exchange_ghosts(mpp::Comm& comm, Level& level, int nghost,
                              int tag_base) {
  const int me = comm.rank();
  auto src = [&](int id) -> const PatchData<double>* {
    return level.has_data(id) ? &level.data(id) : nullptr;
  };
  auto dst = [&](int id) -> PatchData<double>* {
    return level.has_data(id) ? &level.data(id) : nullptr;
  };
  (void)me;
  return exchange_copy(
      comm, level.patches(), src, level.patches(), dst,
      [nghost](const PatchInfo& p) { return p.box.grown(nghost); },
      /*skip_same_id=*/true, tag_base);
}

}  // namespace amr
