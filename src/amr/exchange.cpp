#include "amr/exchange.hpp"

#include <map>
#include <span>
#include <vector>

namespace amr {

namespace {

struct PlanItem {
  int src_id;
  int src_owner;
  int dst_id;
  int dst_owner;
  Box box;
};

}  // namespace

ExchangeStats exchange_copy(mpp::Comm& comm,
                            const std::vector<PatchInfo>& src_patches,
                            const SrcAccessor& src_data,
                            const std::vector<PatchInfo>& dst_patches,
                            const DstAccessor& dst_data,
                            const DstRegion& dst_region,
                            bool skip_same_id, int tag_base) {
  const int me = comm.rank();
  ExchangeStats stats;

  // Identical plan on every rank: deterministic double loop over shared
  // metadata.
  std::vector<PlanItem> plan;
  for (const PatchInfo& d : dst_patches) {
    const Box region = dst_region(d);
    if (region.empty()) continue;
    for (const PatchInfo& s : src_patches) {
      if (skip_same_id && s.id == d.id) continue;
      const Box overlap = s.box & region;
      if (overlap.empty()) continue;
      plan.push_back(PlanItem{s.id, s.owner, d.id, d.owner, overlap});
    }
  }
  stats.plan_items = plan.size();

  // Coalesce off-rank items by counterpart rank: one packed message per
  // (peer, direction). Both sides walk the shared ascending plan order, so
  // segment offsets agree without carrying any header. std::map keeps peer
  // iteration deterministic across ranks.
  std::map<int, std::vector<std::size_t>> send_groups;  // dest rank -> plan idx
  std::map<int, std::vector<std::size_t>> recv_groups;  // src rank  -> plan idx
  for (std::size_t k = 0; k < plan.size(); ++k) {
    const PlanItem& item = plan[k];
    if (item.src_owner == me && item.dst_owner == me) {
      const PatchData<double>* src = src_data(item.src_id);
      CCAPERF_REQUIRE(src != nullptr, "exchange_copy: missing local source data");
      PatchData<double>* dst = dst_data(item.dst_id);
      CCAPERF_REQUIRE(dst != nullptr, "exchange_copy: missing local dest data");
      dst->copy_from(*src, item.box);
      ++stats.local_copies;
    } else if (item.src_owner == me) {
      send_groups[item.dst_owner].push_back(k);
    } else if (item.dst_owner == me) {
      recv_groups[item.src_owner].push_back(k);
    }
  }

  // Sends: pack every segment destined for one rank into one buffer. All
  // messages of this exchange share tag_base (matching disambiguates by
  // source rank).
  std::vector<mpp::Request> send_reqs;
  std::vector<std::vector<double>> send_bufs;  // keep alive until waited
  send_reqs.reserve(send_groups.size());
  send_bufs.reserve(send_groups.size());
  for (const auto& [dest, items] : send_groups) {
    send_bufs.emplace_back();
    std::vector<double>& buf = send_bufs.back();
    for (std::size_t k : items) {
      const PlanItem& item = plan[k];
      const PatchData<double>* src = src_data(item.src_id);
      CCAPERF_REQUIRE(src != nullptr, "exchange_copy: missing local source data");
      src->pack_append(item.box, buf);
    }
    send_reqs.push_back(comm.isend<double>(buf, dest, tag_base));
    ++stats.messages_sent;
    stats.segments_sent += items.size();
    stats.bytes_sent += buf.size() * sizeof(double);
  }

  // Receives: one buffer per source rank, sized from the shared metadata.
  struct Pending {
    int src_rank = 0;
    std::vector<std::size_t> items;  // plan indices, ascending
    std::vector<double> buffer;
  };
  std::vector<Pending> pending;
  pending.reserve(recv_groups.size());
  for (auto& [src_rank, items] : recv_groups) {
    Pending p;
    p.src_rank = src_rank;
    std::size_t total = 0;
    for (std::size_t k : items) {
      const PlanItem& item = plan[k];
      PatchData<double>* dst = dst_data(item.dst_id);
      CCAPERF_REQUIRE(dst != nullptr, "exchange_copy: missing local dest data");
      total += static_cast<std::size_t>(item.box.num_pts()) *
               static_cast<std::size_t>(dst->ncomp());
    }
    p.items = std::move(items);
    p.buffer.resize(total);
    pending.push_back(std::move(p));
  }
  std::vector<mpp::Request> recv_reqs;
  recv_reqs.reserve(pending.size());
  for (Pending& p : pending)
    recv_reqs.push_back(comm.irecv<double>(p.buffer, p.src_rank, tag_base));

  // Complete receives with wait_some, unpacking each packed message's
  // segments as it lands (the paper's AMRMesh ghost-update pattern). A
  // CommError timeout degrades gracefully: outstanding messages are
  // cancelled and their destination regions keep stale data, counted so
  // the telemetry stream shows the degradation.
  std::size_t outstanding = recv_reqs.size();
  std::vector<int> done;
  while (outstanding > 0) {
    std::size_t n = 0;
    try {
      n = mpp::wait_some(recv_reqs, done);
    } catch (const mpp::CommError& err) {
      if (err.code() != mpp::CommErrc::timeout &&
          err.code() != mpp::CommErrc::no_progress)
        throw;
      for (std::size_t i = 0; i < recv_reqs.size(); ++i) {
        if (!recv_reqs[i].valid()) continue;
        Pending& p = pending[i];
        ++stats.stale_messages;
        stats.stale_segments += p.items.size();
        recv_reqs[i] = mpp::Request();  // cancels the posted receive
      }
      comm.report_stale_fallback(stats.stale_segments);
      break;
    }
    CCAPERF_REQUIRE(n > 0, "exchange_copy: wait_some made no progress");
    for (int idx : done) {
      Pending& p = pending[static_cast<std::size_t>(idx)];
      const std::span<const double> msg(p.buffer);
      std::size_t off = 0;
      for (std::size_t k : p.items) {
        const PlanItem& item = plan[k];
        PatchData<double>* dst = dst_data(item.dst_id);
        const std::size_t len = static_cast<std::size_t>(item.box.num_pts()) *
                                static_cast<std::size_t>(dst->ncomp());
        dst->unpack(item.box, msg.subspan(off, len));
        off += len;
      }
      ++stats.messages_received;
      stats.segments_received += p.items.size();
      stats.bytes_received += p.buffer.size() * sizeof(double);
    }
    outstanding -= n;
  }

  try {
    mpp::wait_all(send_reqs);
  } catch (const mpp::CommError& err) {
    if (err.code() != mpp::CommErrc::timeout &&
        err.code() != mpp::CommErrc::no_progress &&
        err.code() != mpp::CommErrc::retry_exhausted)
      throw;
    // A send the peer will never acknowledge: drop the remaining handles
    // (parked descriptors are cancelled) and count the failure.
    ++stats.send_failures;
    for (mpp::Request& r : send_reqs) r = mpp::Request();
  }
  return stats;
}

ExchangeStats exchange_ghosts(mpp::Comm& comm, Level& level, int nghost,
                              int tag_base) {
  const int me = comm.rank();
  auto src = [&](int id) -> const PatchData<double>* {
    return level.has_data(id) ? &level.data(id) : nullptr;
  };
  auto dst = [&](int id) -> PatchData<double>* {
    return level.has_data(id) ? &level.data(id) : nullptr;
  };
  (void)me;
  return exchange_copy(
      comm, level.patches(), src, level.patches(), dst,
      [nghost](const PatchInfo& p) { return p.box.grown(nghost); },
      /*skip_same_id=*/true, tag_base);
}

}  // namespace amr
