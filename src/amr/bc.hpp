#pragma once
// Physical boundary fill for patch ghost cells outside the problem domain.
//
// Two classic hyperbolic boundary types:
//  * transmissive (zero-gradient outflow): ghost = nearest interior cell;
//  * reflecting (slip wall): ghost = mirrored interior cell with a
//    per-component sign (normal velocity components flip).
//
// Physics-agnostic: the solver supplies the per-component signs.

#include <vector>

#include "amr/patch_data.hpp"

namespace amr {

enum class BcType { transmissive, reflecting };

struct BcSpec {
  BcType xlo = BcType::transmissive;
  BcType xhi = BcType::transmissive;
  BcType ylo = BcType::transmissive;
  BcType yhi = BcType::transmissive;
  /// Sign applied per component when reflecting across an x boundary
  /// (e.g. -1 for x-momentum). Defaults to +1 for all components.
  std::vector<double> reflect_sign_x;
  /// Same for y boundaries (e.g. -1 for y-momentum).
  std::vector<double> reflect_sign_y;
};

/// Fills every ghost cell of `p` that lies outside `domain` (the problem
/// domain in this level's index space). Interior-of-domain ghost cells are
/// untouched (they are exchange/prolongation targets).
void fill_physical_bc(PatchData<double>& p, const Box& domain, const BcSpec& bc);

}  // namespace amr
