#include "amr/load_balance.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace amr {

double balance_owners(std::vector<PatchInfo>& patches, int nranks,
                      BalancePolicy policy) {
  CCAPERF_REQUIRE(nranks >= 1, "balance_owners: nranks >= 1");
  std::vector<long> load(static_cast<std::size_t>(nranks), 0);

  switch (policy) {
    case BalancePolicy::round_robin: {
      int next = 0;
      for (PatchInfo& p : patches) {
        p.owner = next;
        load[static_cast<std::size_t>(next)] += p.box.num_pts();
        next = (next + 1) % nranks;
      }
      break;
    }
    case BalancePolicy::knapsack: {
      // LPT: heaviest patch first onto the least-loaded rank. Weights are
      // precomputed once (in parallel when the rank pool has lanes) so the
      // comparator doesn't recompute box areas O(n log n) times; the sort
      // itself stays stable for determinism across ranks.
      std::vector<long> weight(patches.size());
      ccaperf::rank_pool().parallel_for(
          patches.size(),
          [&](std::size_t k, int) { weight[k] = patches[k].box.num_pts(); });
      std::vector<std::size_t> order(patches.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return weight[a] > weight[b];
                       });
      for (std::size_t k : order) {
        const auto lightest = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        patches[k].owner = static_cast<int>(lightest);
        load[lightest] += weight[k];
      }
      break;
    }
  }

  const long total = std::accumulate(load.begin(), load.end(), 0L);
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(nranks);
  const long peak = *std::max_element(load.begin(), load.end());
  return static_cast<double>(peak) / mean;
}

}  // namespace amr
