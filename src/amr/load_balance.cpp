#include "amr/load_balance.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace amr {

namespace {

/// Shared assignment core over precomputed weights. Fills `load` (one
/// entry per rank) as a side effect.
void assign_owners(std::vector<PatchInfo>& patches, int nranks,
                   BalancePolicy policy, const std::vector<long>& weight,
                   std::vector<long>& load) {
  load.assign(static_cast<std::size_t>(nranks), 0);
  switch (policy) {
    case BalancePolicy::round_robin: {
      int next = 0;
      for (std::size_t k = 0; k < patches.size(); ++k) {
        patches[k].owner = next;
        load[static_cast<std::size_t>(next)] += weight[k];
        next = (next + 1) % nranks;
      }
      break;
    }
    case BalancePolicy::knapsack: {
      // LPT: heaviest patch first onto the least-loaded rank. The sort is
      // stable for determinism across ranks; placement uses a min-heap of
      // (load, rank) pairs with lazy invalidation, O(log nranks) per patch
      // instead of a linear min_element probe that degenerates at high
      // rank counts. The lexicographic pair order reproduces min_element's
      // tie-break exactly: lowest rank among equally loaded ranks.
      std::vector<std::size_t> order(patches.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return weight[a] > weight[b];
                       });
      using Slot = std::pair<long, int>;
      std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
      for (int r = 0; r < nranks; ++r) heap.emplace(0L, r);
      for (std::size_t k : order) {
        // Entries go stale when their rank is re-pushed with more load;
        // loads only grow, so a stale top is detected by value mismatch.
        while (heap.top().first !=
               load[static_cast<std::size_t>(heap.top().second)])
          heap.pop();
        const int r = heap.top().second;
        heap.pop();
        patches[k].owner = r;
        load[static_cast<std::size_t>(r)] += weight[k];
        heap.emplace(load[static_cast<std::size_t>(r)], r);
      }
      break;
    }
  }
}

double imbalance_of(long peak, long total, int nranks) {
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) / static_cast<double>(nranks);
  return static_cast<double>(peak) / mean;
}

}  // namespace

double balance_owners(std::vector<PatchInfo>& patches, int nranks,
                      BalancePolicy policy) {
  CCAPERF_REQUIRE(nranks >= 1, "balance_owners: nranks >= 1");
  // Weights are precomputed once (in parallel when the rank pool has
  // lanes) so the sort comparator doesn't recompute box areas.
  std::vector<long> weight(patches.size());
  ccaperf::rank_pool().parallel_for(
      patches.size(),
      [&](std::size_t k, int) { weight[k] = patches[k].box.num_pts(); });
  std::vector<long> load;
  assign_owners(patches, nranks, policy, weight, load);
  const long total = std::accumulate(load.begin(), load.end(), 0L);
  const long peak =
      load.empty() ? 0 : *std::max_element(load.begin(), load.end());
  return imbalance_of(peak, total, nranks);
}

double balance_owners(mpp::Comm& comm, std::vector<PatchInfo>& patches,
                      BalancePolicy policy) {
  CCAPERF_REQUIRE(comm.valid(), "balance_owners: invalid communicator");
  const int nranks = comm.size();
  // Patch metadata is replicated, so every rank takes the same branch.
  if (nranks < kDistributedBalanceThreshold || patches.empty())
    return balance_owners(patches, nranks, policy);

  // Sharded weights: rank r computes the weights of its contiguous index
  // shard only, then a tree allgatherv assembles the full vector on every
  // rank — O(P/R) local work instead of O(P), with the exchange riding
  // the O(log R) Bruck path.
  const std::size_t P = patches.size();
  const auto nr = static_cast<std::size_t>(nranks);
  const auto me = static_cast<std::size_t>(comm.rank());
  std::vector<std::size_t> counts(nr);
  for (std::size_t r = 0; r < nr; ++r)
    counts[r] = P / nr + (r < P % nr ? 1 : 0);
  std::size_t lo = 0;
  for (std::size_t r = 0; r < me; ++r) lo += counts[r];
  std::vector<long> mine(counts[me]);
  ccaperf::rank_pool().parallel_for(mine.size(), [&](std::size_t k, int) {
    mine[k] = patches[lo + k].box.num_pts();
  });
  std::vector<long> weight(P);
  comm.allgatherv<long>(mine, weight, counts);

  std::vector<long> load;
  assign_owners(patches, nranks, policy, weight, load);

  // Imbalance from a reduction of per-rank load summaries (max, sum) —
  // each rank contributes only its own load, no full-vector rescan.
  const long summary[2] = {load[me], load[me]};
  long reduced[2] = {0, 0};
  comm.allreduce_bytes(summary, reduced, sizeof(long[2]), 1,
                       [](void* acc, const void* in, std::size_t) {
                         auto* a = static_cast<long*>(acc);
                         const auto* b = static_cast<const long*>(in);
                         a[0] = std::max(a[0], b[0]);
                         a[1] += b[1];
                       });
  return imbalance_of(reduced[0], reduced[1], nranks);
}

}  // namespace amr
