#pragma once
// Patch-to-rank assignment. The paper's AMRMesh performs "load-balancing
// and domain (re-)decomposition" after regridding; the default policy here
// is greedy longest-processing-time (a knapsack-style heuristic): patches
// sorted by cell count, each assigned to the currently least-loaded rank
// via a min-heap of rank loads (O(log ranks) per placement).
// A round-robin policy is kept for the load-balance ablation bench.

#include <vector>

#include "amr/level.hpp"
#include "mpp/comm.hpp"

namespace amr {

enum class BalancePolicy {
  knapsack,     ///< greedy LPT on cell counts (default)
  round_robin,  ///< ignore weights; cycle ranks in patch order
};

/// Assigns `owner` for every patch. Returns the load imbalance ratio
/// max_rank_cells / mean_rank_cells (1.0 == perfect). Every rank computes
/// every patch weight locally (replicated-metadata path).
double balance_owners(std::vector<PatchInfo>& patches, int nranks,
                      BalancePolicy policy = BalancePolicy::knapsack);

/// Group sizes below this use the replicated path: recomputing a handful
/// of weights locally is cheaper than any communication, and it keeps the
/// paper-scale (2-3 rank) comm traces byte-identical.
inline constexpr int kDistributedBalanceThreshold = 16;

/// Communicator-aware variant used by Hierarchy (collective). At
/// kDistributedBalanceThreshold ranks and above, per-patch weights are
/// computed in contiguous index shards — one per rank — and shared with a
/// tree allgatherv, and the imbalance summary comes from a reduction of
/// per-rank load summaries, so no rank recomputes the whole patch list.
/// The assignment itself is deterministic and identical on every rank.
double balance_owners(mpp::Comm& comm, std::vector<PatchInfo>& patches,
                      BalancePolicy policy = BalancePolicy::knapsack);

}  // namespace amr
