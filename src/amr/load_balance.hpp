#pragma once
// Patch-to-rank assignment. The paper's AMRMesh performs "load-balancing
// and domain (re-)decomposition" after regridding; the default policy here
// is greedy longest-processing-time (a knapsack-style heuristic): patches
// sorted by cell count, each assigned to the currently least-loaded rank.
// A round-robin policy is kept for the load-balance ablation bench.

#include <vector>

#include "amr/level.hpp"

namespace amr {

enum class BalancePolicy {
  knapsack,     ///< greedy LPT on cell counts (default)
  round_robin,  ///< ignore weights; cycle ranks in patch order
};

/// Assigns `owner` for every patch. Returns the load imbalance ratio
/// max_rank_cells / mean_rank_cells (1.0 == perfect).
double balance_owners(std::vector<PatchInfo>& patches, int nranks,
                      BalancePolicy policy = BalancePolicy::knapsack);

}  // namespace amr
