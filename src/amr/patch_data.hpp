#pragma once
// PatchData<T>: multi-component cell data on one patch, with ghost cells.
//
// Storage covers grown(interior, nghost), component-major, row-major per
// component (j outer, i inner) — so a +1 step in `i` is unit stride while
// a +1 step in `j` strides by the padded row length. That layout is what
// makes the paper's two access modes (sequential X-sweeps vs strided
// Y-sweeps in States/EFMFlux/GodunovFlux) physically meaningful.

#include <cstring>
#include <span>
#include <vector>

#include "amr/box.hpp"
#include "support/error.hpp"

namespace amr {

template <class T>
class PatchData {
 public:
  PatchData() = default;

  PatchData(const Box& interior, int nghost, int ncomp, T init = T{})
      : interior_(interior), grown_(interior.grown(nghost)), nghost_(nghost),
        ncomp_(ncomp) {
    CCAPERF_REQUIRE(!interior.empty(), "PatchData: empty interior box");
    CCAPERF_REQUIRE(nghost >= 0 && ncomp >= 1, "PatchData: bad nghost/ncomp");
    data_.assign(static_cast<std::size_t>(grown_.num_pts()) *
                     static_cast<std::size_t>(ncomp_),
                 init);
  }

  const Box& interior() const { return interior_; }
  const Box& grown_box() const { return grown_; }
  int nghost() const { return nghost_; }
  int ncomp() const { return ncomp_; }
  bool empty() const { return data_.empty(); }

  /// Cells per component (including ghosts).
  std::size_t pts_per_comp() const { return static_cast<std::size_t>(grown_.num_pts()); }
  /// Unit-stride row length (including ghosts).
  int row_stride() const { return grown_.width(); }

  /// Flat offset of cell (i, j) within one component's plane.
  std::size_t offset(int i, int j) const {
    return static_cast<std::size_t>(j - grown_.lo().j) *
               static_cast<std::size_t>(grown_.width()) +
           static_cast<std::size_t>(i - grown_.lo().i);
  }

  T& at(int i, int j, int c) {
    check(i, j, c);
    return data_[plane(c) + offset(i, j)];
  }
  const T& at(int i, int j, int c) const {
    check(i, j, c);
    return data_[plane(c) + offset(i, j)];
  }
  /// Unchecked access for kernels.
  T& operator()(int i, int j, int c) { return data_[plane(c) + offset(i, j)]; }
  const T& operator()(int i, int j, int c) const {
    return data_[plane(c) + offset(i, j)];
  }

  /// Whole-component plane (including ghosts) as a flat span.
  std::span<T> comp(int c) {
    check_comp(c);
    return {data_.data() + plane(c), pts_per_comp()};
  }
  std::span<const T> comp(int c) const {
    check_comp(c);
    return {data_.data() + plane(c), pts_per_comp()};
  }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copies `box` (same index space) for all components from `src`. `box`
  /// must lie within both grown boxes.
  void copy_from(const PatchData& src, const Box& box) {
    if (box.empty()) return;
    CCAPERF_REQUIRE(src.ncomp_ == ncomp_, "copy_from: component count mismatch");
    CCAPERF_REQUIRE(grown_.contains(box) && src.grown_.contains(box),
                    "copy_from: box not contained in both patches");
    const std::size_t row_bytes = static_cast<std::size_t>(box.width()) * sizeof(T);
    for (int c = 0; c < ncomp_; ++c) {
      for (int j = box.lo().j; j <= box.hi().j; ++j) {
        std::memcpy(&(*this)(box.lo().i, j, c), &src(box.lo().i, j, c), row_bytes);
      }
    }
  }

  /// Serializes `box` x all components into `out` (row-major per comp).
  void pack(const Box& box, std::vector<T>& out) const {
    out.clear();
    pack_append(box, out);
  }

  /// Like pack, but appends to `out` — lets callers coalesce several
  /// regions into one message buffer without intermediate copies.
  void pack_append(const Box& box, std::vector<T>& out) const {
    CCAPERF_REQUIRE(grown_.contains(box), "pack: box outside patch");
    std::size_t k = out.size();
    out.resize(k + static_cast<std::size_t>(box.num_pts()) *
                       static_cast<std::size_t>(ncomp_));
    for (int c = 0; c < ncomp_; ++c)
      for (int j = box.lo().j; j <= box.hi().j; ++j) {
        std::memcpy(&out[k], &(*this)(box.lo().i, j, c),
                    static_cast<std::size_t>(box.width()) * sizeof(T));
        k += static_cast<std::size_t>(box.width());
      }
  }

  /// Inverse of pack.
  void unpack(const Box& box, std::span<const T> in) {
    CCAPERF_REQUIRE(grown_.contains(box), "unpack: box outside patch");
    CCAPERF_REQUIRE(in.size() == static_cast<std::size_t>(box.num_pts()) *
                                     static_cast<std::size_t>(ncomp_),
                    "unpack: size mismatch");
    std::size_t k = 0;
    for (int c = 0; c < ncomp_; ++c)
      for (int j = box.lo().j; j <= box.hi().j; ++j) {
        std::memcpy(&(*this)(box.lo().i, j, c), &in[k],
                    static_cast<std::size_t>(box.width()) * sizeof(T));
        k += static_cast<std::size_t>(box.width());
      }
  }

 private:
  std::size_t plane(int c) const {
    return static_cast<std::size_t>(c) * pts_per_comp();
  }
  void check(int i, int j, int c) const {
    CCAPERF_REQUIRE(grown_.contains(IntVect{i, j}),
                    "PatchData: index outside grown box");
    check_comp(c);
  }
  void check_comp(int c) const {
    CCAPERF_REQUIRE(c >= 0 && c < ncomp_, "PatchData: bad component");
  }

  Box interior_;
  Box grown_;
  int nghost_ = 0;
  int ncomp_ = 0;
  std::vector<T> data_;
};

}  // namespace amr
