#pragma once
// GridHierarchy: the Berger-Collela SAMR engine behind the paper's AMRMesh
// component.
//
// "The method consists of laying a relatively coarse Cartesian mesh over a
// rectangular domain. Based on some suitable metric, regions requiring
// further refinement are identified, the grid points flagged and collated
// into rectangular children patches on which a denser Cartesian mesh is
// imposed. ... one ultimately obtains a hierarchy of patches with
// different grid densities" (paper §5).
//
// Responsibilities:
//  * level-0 domain decomposition and load balancing;
//  * ghost-cell updates (same-level exchange + coarse->fine prolongation +
//    physical BC) — the paper's "ghost-cell updates on patches (gets data
//    from abutting, but off-processor patches onto a patch)";
//  * conservative fine->coarse restriction;
//  * regridding: error flagging (caller-supplied estimator) -> flag
//    buffering -> Berger-Rigoutsos clustering -> proper-nesting clip ->
//    load balancing -> data migration from the old hierarchy;
//  * a monotone message-tag allocator so concurrent exchange plans never
//    collide.
//
// SCMD: one Hierarchy per rank; all metadata operations are replicated
// deterministic computations, all data motion goes through exchange_copy.

#include <functional>

#include "amr/bc.hpp"
#include "amr/berger_rigoutsos.hpp"
#include "amr/exchange.hpp"
#include "amr/level.hpp"
#include "amr/load_balance.hpp"
#include "mpp/comm.hpp"

namespace amr {

/// Physical (real-space) geometry of level 0.
struct Geometry {
  double x0 = 0.0;
  double y0 = 0.0;
  double dx0 = 1.0;  ///< level-0 cell width
  double dy0 = 1.0;  ///< level-0 cell height
};

struct HierarchyConfig {
  Box domain;                  ///< level-0 index space
  int max_levels = 3;
  int ratio = 2;               ///< refinement ratio between adjacent levels
  int nghost = 2;
  int ncomp = 1;
  int level0_patch_size = 32;  ///< target tile edge for the base decomposition
  ClusterParams cluster{0.80, 8, 96};
  int flag_buffer = 2;         ///< dilation of error flags before clustering
  BalancePolicy balance = BalancePolicy::knapsack;
  Geometry geom;
};

class Hierarchy {
 public:
  /// Duplicates `world` so hierarchy traffic cannot collide with
  /// application messages.
  Hierarchy(mpp::Comm& world, HierarchyConfig cfg);

  const HierarchyConfig& config() const { return cfg_; }
  mpp::Comm& comm() { return comm_; }
  int rank() const { return comm_.rank(); }
  int nranks() const { return comm_.size(); }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  Level& level(int l);
  const Level& level(int l) const;

  /// Cell sizes at level `l`.
  double dx(int l) const;
  double dy(int l) const;
  /// Cell-center coordinates of cell (i, j) at level `l`.
  double xc(int l, int i) const { return cfg_.geom.x0 + (i + 0.5) * dx(l); }
  double yc(int l, int j) const { return cfg_.geom.y0 + (j + 0.5) * dy(l); }
  /// Domain box in level-l index space.
  Box domain_at(int l) const;

  /// Tiles the domain into level-0 patches, balances, allocates local data
  /// (zero-filled). Must be called once before anything else.
  void init_level0();

  /// Ghost-cell update for level `l`: prolong from l-1 (if any), exchange
  /// with same-level neighbors, then apply physical BCs. Returns the
  /// same-level exchange stats (the measured communication).
  ExchangeStats fill_ghosts(int l, const BcSpec& bc);

  /// Same-level ghost exchange + physical BC only (no prolongation); the
  /// AMRMesh component exposes prolong and exchange as separate timed
  /// methods, mirroring the paper's icc_proxy::prolong()/ghost updates.
  ExchangeStats exchange_and_bc(int l, const BcSpec& bc);

  /// Coarse->fine fill. `ghosts_only`: fill only ghost cells (normal
  /// stepping); otherwise fill interiors too (new patches after regrid).
  void prolong(int fine_l, bool ghosts_only);

  /// Conservative average of level `fine_l` onto level `fine_l - 1`.
  void restrict_level(int fine_l);

  /// Error estimator: sets flags (in level-l index space) for one local
  /// patch. Flags outside the patch box are ignored.
  using FlagFn =
      std::function<void(const Hierarchy&, int l, const PatchInfo&, FlagField&)>;

  /// Rebuilds levels 1..max_levels-1 from the estimator: flag ->
  /// buffer -> cluster -> nest -> balance -> migrate. Collective.
  /// `bc` is applied when refilling each level's ghosts before it is
  /// flagged — estimators may read one ghost layer (newly created
  /// intermediate levels would otherwise expose uninitialized ghosts to
  /// the flagger, producing spurious refinement along patch seams).
  void regrid(const FlagFn& flag_fn, const BcSpec& bc = BcSpec{});

  /// Re-assigns owners on every level and migrates data. Returns the new
  /// load imbalance (max/mean). Collective.
  double rebalance();

  long total_cells() const;

  /// Reserves `count` message tags (collective consistency by replication).
  int next_tag(int count);

 private:
  void allocate_local(Level& lvl);
  /// Gathers coarse donor data under the (grown) footprint of each fine
  /// patch into per-patch halo buffers; returns halos for local patches.
  std::map<int, PatchData<double>> gather_coarse_halos(const Level& coarse,
                                                       const Level& fine);
  static void interpolate_patch(const PatchData<double>& coarse_halo,
                                PatchData<double>& fine, const Box& target,
                                int ratio);
  /// Combines per-rank flags into a globally consistent field.
  void merge_flags(FlagField& flags);

  mpp::Comm comm_;
  HierarchyConfig cfg_;
  std::vector<Level> levels_;
  int next_patch_id_ = 0;
  int tag_counter_ = 0;
};

}  // namespace amr
