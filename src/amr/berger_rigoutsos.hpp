#pragma once
// Berger–Rigoutsos point clustering.
//
// Turns the set of flagged (error-tagged) cells produced by the regrid
// error estimator into a small set of rectangular patches with a minimum
// fill efficiency — the grid-generation step of Berger-Collela SAMR
// ("regions requiring further refinement are identified, the grid points
// flagged and collated into rectangular children patches", paper §5).
//
// Algorithm: compute row/column signatures of the flags inside the
// bounding box; if efficiency >= threshold accept the bounding box;
// otherwise split at a signature hole if one exists, else at the strongest
// inflection of the second derivative of the signature, else bisect;
// recurse. Boxes are never split below `min_width` cells per side.

#include <span>
#include <vector>

#include "amr/box.hpp"

namespace amr {

struct ClusterParams {
  double efficiency = 0.8;  ///< min flagged fraction to accept a box
  int min_width = 4;        ///< min cells per side of an accepted box
  int max_width = 0;        ///< if >0, force-split boxes wider than this
};

/// A binary flag field over `region` (true = needs refinement).
class FlagField {
 public:
  explicit FlagField(const Box& region)
      : region_(region),
        flags_(static_cast<std::size_t>(region.num_pts()), 0) {}

  const Box& region() const { return region_; }

  void set(IntVect p) {
    if (region_.contains(p)) flags_[index(p)] = 1;
  }
  bool get(IntVect p) const {
    return region_.contains(p) && flags_[index(p)] != 0;
  }
  void set_box(const Box& b) {
    const Box clipped = b & region_;
    for (int j = clipped.lo().j; j <= clipped.hi().j; ++j)
      for (int i = clipped.lo().i; i <= clipped.hi().i; ++i)
        flags_[index({i, j})] = 1;
  }

  /// Dilates the flag set by `n` cells (the regrid "buffer" ensuring
  /// features stay inside fine patches until the next regrid).
  void buffer(int n);

  /// Clears every flag outside the union of `keep` (used to confine
  /// buffered flags to where level data actually exists).
  void clip_to(const std::vector<Box>& keep);

  long count() const;
  long count_in(const Box& b) const;

  /// Raw flag bytes (row-major over region), for cross-rank merging.
  std::span<char> raw() { return flags_; }
  std::span<const char> raw() const { return flags_; }

 private:
  std::size_t index(IntVect p) const {
    return static_cast<std::size_t>(p.j - region_.lo().j) *
               static_cast<std::size_t>(region_.width()) +
           static_cast<std::size_t>(p.i - region_.lo().i);
  }
  Box region_;
  std::vector<char> flags_;
};

/// Clusters the flagged cells into boxes covering all flags with the
/// requested efficiency. Returns disjoint boxes in `flags.region()` index
/// space; empty when nothing is flagged.
std::vector<Box> berger_rigoutsos(const FlagField& flags, const ClusterParams& params);

}  // namespace amr
