#include "amr/berger_rigoutsos.hpp"

#include <algorithm>
#include <cmath>

namespace amr {

void FlagField::buffer(int n) {
  if (n <= 0) return;
  std::vector<char> out(flags_.size(), 0);
  for (int j = region_.lo().j; j <= region_.hi().j; ++j) {
    for (int i = region_.lo().i; i <= region_.hi().i; ++i) {
      if (!flags_[index({i, j})]) continue;
      const Box halo = Box{{i - n, j - n}, {i + n, j + n}} & region_;
      for (int jj = halo.lo().j; jj <= halo.hi().j; ++jj)
        for (int ii = halo.lo().i; ii <= halo.hi().i; ++ii)
          out[index({ii, jj})] = 1;
    }
  }
  flags_.swap(out);
}

void FlagField::clip_to(const std::vector<Box>& keep) {
  for (int j = region_.lo().j; j <= region_.hi().j; ++j) {
    for (int i = region_.lo().i; i <= region_.hi().i; ++i) {
      if (!flags_[index({i, j})]) continue;
      bool inside = false;
      for (const Box& b : keep) {
        if (b.contains(IntVect{i, j})) {
          inside = true;
          break;
        }
      }
      if (!inside) flags_[index({i, j})] = 0;
    }
  }
}

long FlagField::count() const {
  long c = 0;
  for (char f : flags_) c += f;
  return c;
}

long FlagField::count_in(const Box& b) const {
  const Box clipped = b & region_;
  long c = 0;
  for (int j = clipped.lo().j; j <= clipped.hi().j; ++j)
    for (int i = clipped.lo().i; i <= clipped.hi().i; ++i)
      c += flags_[index({i, j})] ? 1 : 0;
  return c;
}

namespace {

/// Shrinks `b` to the bounding box of its flagged cells (empty if none).
Box bounding_box(const FlagField& flags, const Box& b) {
  int ilo = b.hi().i + 1, ihi = b.lo().i - 1;
  int jlo = b.hi().j + 1, jhi = b.lo().j - 1;
  for (int j = b.lo().j; j <= b.hi().j; ++j) {
    for (int i = b.lo().i; i <= b.hi().i; ++i) {
      if (flags.get({i, j})) {
        ilo = std::min(ilo, i);
        ihi = std::max(ihi, i);
        jlo = std::min(jlo, j);
        jhi = std::max(jhi, j);
      }
    }
  }
  if (ihi < ilo) return Box{};
  return Box{{ilo, jlo}, {ihi, jhi}};
}

/// Column (dim=0) or row (dim=1) signature: flag count per index plane.
std::vector<long> signature(const FlagField& flags, const Box& b, int dim) {
  const int n = dim == 0 ? b.width() : b.height();
  std::vector<long> sig(static_cast<std::size_t>(n), 0);
  for (int j = b.lo().j; j <= b.hi().j; ++j)
    for (int i = b.lo().i; i <= b.hi().i; ++i)
      if (flags.get({i, j}))
        ++sig[static_cast<std::size_t>(dim == 0 ? i - b.lo().i : j - b.lo().j)];
  return sig;
}

struct SplitPlan {
  bool found = false;
  int dim = 0;   // 0: split along i, 1: along j
  int cut = 0;   // last index (box coords) of the lower piece
};

/// Finds a zero ("hole") in either signature, preferring the one closest
/// to the box center, honoring the minimum width.
SplitPlan find_hole(const std::vector<long>& sx, const std::vector<long>& sy,
                    const Box& b, int min_width) {
  SplitPlan best;
  long best_dist = -1;
  auto scan = [&](const std::vector<long>& sig, int dim, int lo, int n) {
    for (int k = min_width; k <= n - min_width; ++k) {
      if (sig[static_cast<std::size_t>(k - 1)] == 0 ||
          sig[static_cast<std::size_t>(k)] == 0) {
        const long dist = std::abs(2 * k - n);
        if (!best.found || dist < best_dist) {
          best = SplitPlan{true, dim, lo + k - 1};
          best_dist = dist;
        }
      }
    }
  };
  scan(sx, 0, b.lo().i, b.width());
  scan(sy, 1, b.lo().j, b.height());
  return best;
}

/// Finds the strongest zero crossing of the discrete Laplacian of either
/// signature (Berger-Rigoutsos "inflection" split).
SplitPlan find_inflection(const std::vector<long>& sx, const std::vector<long>& sy,
                          const Box& b, int min_width) {
  SplitPlan best;
  long best_jump = 0;
  auto scan = [&](const std::vector<long>& sig, int dim, int lo, int n) {
    if (n < 4) return;
    std::vector<long> lap(static_cast<std::size_t>(n), 0);
    for (int k = 1; k + 1 < n; ++k)
      lap[static_cast<std::size_t>(k)] =
          sig[static_cast<std::size_t>(k - 1)] - 2 * sig[static_cast<std::size_t>(k)] +
          sig[static_cast<std::size_t>(k + 1)];
    for (int k = std::max(1, min_width - 1); k < std::min(n - 2, n - min_width); ++k) {
      const long a = lap[static_cast<std::size_t>(k)];
      const long c = lap[static_cast<std::size_t>(k + 1)];
      if ((a > 0 && c < 0) || (a < 0 && c > 0)) {
        const long jump = std::abs(a - c);
        if (jump > best_jump) {
          best = SplitPlan{true, dim, lo + k};
          best_jump = jump;
        }
      }
    }
  };
  scan(sx, 0, b.lo().i, b.width());
  scan(sy, 1, b.lo().j, b.height());
  return best;
}

void cluster(const FlagField& flags, Box box, const ClusterParams& p,
             std::vector<Box>& out) {
  box = bounding_box(flags, box);
  if (box.empty()) return;

  const long nflag = flags.count_in(box);
  const double eff = static_cast<double>(nflag) / static_cast<double>(box.num_pts());
  const bool too_wide = p.max_width > 0 && (box.width() > p.max_width ||
                                            box.height() > p.max_width);
  const bool can_split =
      box.width() >= 2 * p.min_width || box.height() >= 2 * p.min_width;
  if ((eff >= p.efficiency && !too_wide) || !can_split) {
    out.push_back(box);
    return;
  }

  const auto sx = signature(flags, box, 0);
  const auto sy = signature(flags, box, 1);

  SplitPlan plan = find_hole(sx, sy, box, p.min_width);
  if (!plan.found) plan = find_inflection(sx, sy, box, p.min_width);
  if (!plan.found) {
    // Bisect the longer splittable dimension.
    if (box.width() >= box.height() && box.width() >= 2 * p.min_width)
      plan = SplitPlan{true, 0, box.lo().i + box.width() / 2 - 1};
    else if (box.height() >= 2 * p.min_width)
      plan = SplitPlan{true, 1, box.lo().j + box.height() / 2 - 1};
  }
  if (!plan.found) {
    out.push_back(box);
    return;
  }

  Box lower, upper;
  if (plan.dim == 0) {
    lower = Box{box.lo(), {plan.cut, box.hi().j}};
    upper = Box{{plan.cut + 1, box.lo().j}, box.hi()};
  } else {
    lower = Box{box.lo(), {box.hi().i, plan.cut}};
    upper = Box{{box.lo().i, plan.cut + 1}, box.hi()};
  }
  cluster(flags, lower, p, out);
  cluster(flags, upper, p, out);
}

}  // namespace

std::vector<Box> berger_rigoutsos(const FlagField& flags, const ClusterParams& params) {
  CCAPERF_REQUIRE(params.min_width >= 1, "berger_rigoutsos: min_width >= 1");
  CCAPERF_REQUIRE(params.efficiency > 0.0 && params.efficiency <= 1.0,
                  "berger_rigoutsos: efficiency in (0, 1]");
  std::vector<Box> out;
  cluster(flags, flags.region(), params, out);
  return out;
}

}  // namespace amr
