#include "amr/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "support/thread_pool.hpp"

namespace amr {

namespace {

double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

int ipow(int base, int exp) {
  int v = 1;
  for (int k = 0; k < exp; ++k) v *= base;
  return v;
}

}  // namespace

Hierarchy::Hierarchy(mpp::Comm& world, HierarchyConfig cfg)
    : comm_(world.dup()), cfg_(std::move(cfg)) {
  CCAPERF_REQUIRE(!cfg_.domain.empty(), "Hierarchy: empty domain");
  CCAPERF_REQUIRE(cfg_.max_levels >= 1 && cfg_.ratio >= 2,
                  "Hierarchy: need max_levels >= 1, ratio >= 2");
  CCAPERF_REQUIRE(cfg_.nghost >= 1 && cfg_.ncomp >= 1,
                  "Hierarchy: need nghost >= 1, ncomp >= 1");
}

Level& Hierarchy::level(int l) {
  CCAPERF_REQUIRE(l >= 0 && l < num_levels(), "Hierarchy: bad level index");
  return levels_[static_cast<std::size_t>(l)];
}

const Level& Hierarchy::level(int l) const {
  CCAPERF_REQUIRE(l >= 0 && l < num_levels(), "Hierarchy: bad level index");
  return levels_[static_cast<std::size_t>(l)];
}

double Hierarchy::dx(int l) const { return cfg_.geom.dx0 / ipow(cfg_.ratio, l); }
double Hierarchy::dy(int l) const { return cfg_.geom.dy0 / ipow(cfg_.ratio, l); }

Box Hierarchy::domain_at(int l) const {
  Box d = cfg_.domain;
  for (int k = 0; k < l; ++k) d = d.refined(cfg_.ratio);
  return d;
}

int Hierarchy::next_tag(int count) {
  // Exchanges on this hierarchy are serialized (each drains all messages
  // before returning), so tags only need to be unique within one exchange;
  // the monotone counter is belt-and-braces. Wrap long before overflow.
  if (tag_counter_ > (1 << 30) - count) tag_counter_ = 0;
  const int t = tag_counter_;
  tag_counter_ += count;
  return t;
}

void Hierarchy::allocate_local(Level& lvl) {
  for (const PatchInfo& p : lvl.patches()) {
    if (p.owner != rank()) continue;
    lvl.local_data().emplace(
        p.id, PatchData<double>(p.box, cfg_.nghost, cfg_.ncomp, 0.0));
  }
}

void Hierarchy::init_level0() {
  CCAPERF_REQUIRE(levels_.empty(), "init_level0: already initialized");
  Level lvl(0, cfg_.domain, 1);

  // Tile the domain into roughly level0_patch_size-edged boxes.
  const int tile = std::max(4, cfg_.level0_patch_size);
  const int nx = std::max(1, (cfg_.domain.width() + tile - 1) / tile);
  const int ny = std::max(1, (cfg_.domain.height() + tile - 1) / tile);
  for (int ty = 0; ty < ny; ++ty) {
    for (int tx = 0; tx < nx; ++tx) {
      const int ilo = cfg_.domain.lo().i + tx * cfg_.domain.width() / nx;
      const int ihi = cfg_.domain.lo().i + (tx + 1) * cfg_.domain.width() / nx - 1;
      const int jlo = cfg_.domain.lo().j + ty * cfg_.domain.height() / ny;
      const int jhi = cfg_.domain.lo().j + (ty + 1) * cfg_.domain.height() / ny - 1;
      lvl.patches().push_back(PatchInfo{next_patch_id_++, Box{ilo, jlo, ihi, jhi}, 0});
    }
  }
  balance_owners(comm_, lvl.patches(), cfg_.balance);
  allocate_local(lvl);
  levels_.push_back(std::move(lvl));
}

ExchangeStats Hierarchy::fill_ghosts(int l, const BcSpec& bc) {
  if (l > 0) prolong(l, /*ghosts_only=*/true);
  return exchange_and_bc(l, bc);
}

ExchangeStats Hierarchy::exchange_and_bc(int l, const BcSpec& bc) {
  Level& lvl = level(l);
  const ExchangeStats stats =
      exchange_ghosts(comm_, lvl, cfg_.nghost, next_tag(1));
  const Box dom = domain_at(l);
  // Physical BC fills are per-patch independent (ghost writes only, after
  // the exchange has drained) — fan them out over the rank pool's lanes.
  std::vector<PatchData<double>*> local;
  local.reserve(lvl.local_data().size());
  for (auto& [id, data] : lvl.local_data()) local.push_back(&data);
  ccaperf::rank_pool().parallel_for(local.size(), [&](std::size_t k, int) {
    fill_physical_bc(*local[k], dom, bc);
  });
  return stats;
}

std::map<int, PatchData<double>> Hierarchy::gather_coarse_halos(const Level& coarse,
                                                                const Level& fine) {
  const int r = cfg_.ratio;
  const Box cdom = coarse.domain();

  // Identical synthetic destination set on every rank: one halo patch per
  // fine patch, on coarse index space, owned by the fine patch's owner.
  std::vector<PatchInfo> halos_meta;
  halos_meta.reserve(fine.patches().size());
  for (const PatchInfo& f : fine.patches()) {
    const Box halo = f.box.grown(cfg_.nghost).coarsened(r) & cdom;
    halos_meta.push_back(PatchInfo{f.id, halo, f.owner});
  }

  std::map<int, PatchData<double>> halos;
  for (const PatchInfo& h : halos_meta) {
    if (h.owner != rank() || h.box.empty()) continue;
    halos.emplace(h.id, PatchData<double>(h.box, 0, cfg_.ncomp, 0.0));
  }

  auto src = [&coarse](int id) -> const PatchData<double>* {
    return coarse.has_data(id) ? &coarse.data(id) : nullptr;
  };
  auto dst = [&halos](int id) -> PatchData<double>* {
    auto it = halos.find(id);
    return it == halos.end() ? nullptr : &it->second;
  };
  exchange_copy(comm_, coarse.patches(), src, halos_meta, dst,
                [](const PatchInfo& p) { return p.box; },
                /*skip_same_id=*/false, next_tag(1));
  return halos;
}

void Hierarchy::interpolate_patch(const PatchData<double>& coarse_halo,
                                  PatchData<double>& fine, const Box& target,
                                  int ratio) {
  const Box h = coarse_halo.interior();
  const int ncomp = fine.ncomp();
  for (int c = 0; c < ncomp; ++c) {
    for (int j = target.lo().j; j <= target.hi().j; ++j) {
      const int J = floor_div(j, ratio);
      for (int i = target.lo().i; i <= target.hi().i; ++i) {
        const int I = floor_div(i, ratio);
        if (!h.contains(IntVect{I, J})) continue;  // outside domain: BC later
        const double center = coarse_halo(I, J, c);
        double sx = 0.0, sy = 0.0;
        if (h.contains(IntVect{I - 1, J}) && h.contains(IntVect{I + 1, J}))
          sx = minmod(coarse_halo(I + 1, J, c) - center,
                      center - coarse_halo(I - 1, J, c));
        if (h.contains(IntVect{I, J - 1}) && h.contains(IntVect{I, J + 1}))
          sy = minmod(coarse_halo(I, J + 1, c) - center,
                      center - coarse_halo(I, J - 1, c));
        // Sub-cell offset of the fine cell center within the coarse cell,
        // in coarse-cell units, in [-0.5, 0.5).
        const double fx =
            (static_cast<double>(i - I * ratio) + 0.5) / ratio - 0.5;
        const double fy =
            (static_cast<double>(j - J * ratio) + 0.5) / ratio - 0.5;
        fine(i, j, c) = center + sx * fx + sy * fy;
      }
    }
  }
}

void Hierarchy::prolong(int fine_l, bool ghosts_only) {
  CCAPERF_REQUIRE(fine_l >= 1 && fine_l < num_levels(), "prolong: bad level");
  Level& fine = level(fine_l);
  const Level& coarse = level(fine_l - 1);
  auto halos = gather_coarse_halos(coarse, fine);

  const Box fdom = domain_at(fine_l);
  // Interpolation after the halo gather is patch-local: parallel over the
  // owned fine patches (the communication above stays on the rank thread).
  struct Job {
    const PatchData<double>* halo;
    PatchData<double>* data;
    const PatchInfo* info;
  };
  std::vector<Job> jobs;
  for (const PatchInfo& f : fine.patches()) {
    if (f.owner != rank()) continue;
    auto hit = halos.find(f.id);
    if (hit == halos.end()) continue;
    jobs.push_back(Job{&hit->second, &fine.data(f.id), &f});
  }
  ccaperf::rank_pool().parallel_for(jobs.size(), [&](std::size_t k, int) {
    const Job& job = jobs[k];
    if (ghosts_only) {
      const Box ghost_region = job.info->box.grown(cfg_.nghost) & fdom;
      for (const Box& piece : box_subtract(ghost_region, job.info->box))
        interpolate_patch(*job.halo, *job.data, piece, cfg_.ratio);
    } else {
      interpolate_patch(*job.halo, *job.data, job.info->box, cfg_.ratio);
    }
  });
}

void Hierarchy::restrict_level(int fine_l) {
  CCAPERF_REQUIRE(fine_l >= 1 && fine_l < num_levels(), "restrict: bad level");
  const Level& fine = level(fine_l);
  Level& coarse = level(fine_l - 1);
  const int r = cfg_.ratio;

  // Synthetic source set: per fine patch, its conservative average on the
  // coarse index space, owned by the fine owner.
  std::vector<PatchInfo> avg_meta;
  avg_meta.reserve(fine.patches().size());
  for (const PatchInfo& f : fine.patches())
    avg_meta.push_back(PatchInfo{f.id, f.box.coarsened(r), f.owner});

  // Conservative averages are patch-local: compute them in parallel into
  // an indexed scratch array, then install into the map in patch order
  // (deterministic, and map mutation stays on the rank thread).
  std::vector<const PatchInfo*> owned;
  for (const PatchInfo& f : fine.patches())
    if (f.owner == rank()) owned.push_back(&f);
  std::vector<std::optional<PatchData<double>>> avgs(owned.size());
  ccaperf::rank_pool().parallel_for(owned.size(), [&](std::size_t k, int) {
    const PatchInfo& f = *owned[k];
    const Box cbox = f.box.coarsened(r);
    PatchData<double> avg(cbox, 0, cfg_.ncomp, 0.0);
    const PatchData<double>& src = fine.data(f.id);
    const double inv = 1.0 / (r * r);
    for (int c = 0; c < cfg_.ncomp; ++c) {
      for (int J = cbox.lo().j; J <= cbox.hi().j; ++J) {
        for (int I = cbox.lo().i; I <= cbox.hi().i; ++I) {
          double sum = 0.0;
          for (int jj = 0; jj < r; ++jj)
            for (int ii = 0; ii < r; ++ii)
              sum += src(I * r + ii, J * r + jj, c);
          avg(I, J, c) = sum * inv;
        }
      }
    }
    avgs[k].emplace(std::move(avg));
  });
  std::map<int, PatchData<double>> averaged;
  for (std::size_t k = 0; k < owned.size(); ++k)
    averaged.emplace(owned[k]->id, std::move(*avgs[k]));

  auto src_fn = [&averaged](int id) -> const PatchData<double>* {
    auto it = averaged.find(id);
    return it == averaged.end() ? nullptr : &it->second;
  };
  auto dst_fn = [&coarse](int id) -> PatchData<double>* {
    return coarse.has_data(id) ? &coarse.data(id) : nullptr;
  };
  exchange_copy(comm_, avg_meta, src_fn, coarse.patches(), dst_fn,
                [](const PatchInfo& p) { return p.box; },
                /*skip_same_id=*/false, next_tag(1));
}

void Hierarchy::merge_flags(FlagField& flags) {
  auto bytes = flags.raw();
  std::vector<char> merged(bytes.size());
  comm_.allreduce_bytes(bytes.data(), merged.data(), sizeof(char), bytes.size(),
                        [](void* acc, const void* in, std::size_t count) {
                          auto* a = static_cast<char*>(acc);
                          const auto* b = static_cast<const char*>(in);
                          for (std::size_t k = 0; k < count; ++k)
                            a[k] = a[k] || b[k] ? 1 : 0;
                        });
  std::copy(merged.begin(), merged.end(), bytes.begin());
}

void Hierarchy::regrid(const FlagFn& flag_fn, const BcSpec& bc) {
  CCAPERF_REQUIRE(!levels_.empty(), "regrid: call init_level0 first");
  CCAPERF_REQUIRE(flag_fn != nullptr, "regrid: null flag function");
  const int r = cfg_.ratio;

  for (int l = 0; l <= cfg_.max_levels - 2; ++l) {
    if (l >= num_levels()) break;

    // 0. Valid ghosts for the estimator: a level freshly installed by the
    // previous iteration has uninitialized ghost cells.
    fill_ghosts(l, bc);
    Level& cur = level(l);

    // 1. Error flags on level l (each rank flags its own patches).
    FlagField flags(domain_at(l));
    for (const PatchInfo& p : cur.patches())
      if (p.owner == rank()) flag_fn(*this, l, p, flags);
    merge_flags(flags);

    // 2. Buffer, keep existing deeper levels covered, confine to data.
    flags.buffer(cfg_.flag_buffer);
    if (l + 2 < num_levels()) {
      for (const PatchInfo& p : level(l + 2).patches())
        flags.set_box(p.box.coarsened(r * r).grown(1));
    }
    flags.clip_to(cur.boxes());

    // 3. Cluster.
    std::vector<Box> clusters = berger_rigoutsos(flags, cfg_.cluster);

    // 4. Proper nesting: candidate boxes grown by one level-l cell must
    // stay inside the level-l union (so fine ghost prolongation always
    // finds coarse donors), except where they touch the domain boundary.
    // eroded(union) = domain \ dilate(domain \ union).
    std::vector<Box> complement = box_subtract_all(domain_at(l), cur.boxes());
    for (Box& b : complement) b = b.grown(1) & domain_at(l);
    std::vector<Box> nested;
    for (const Box& cand : clusters) {
      auto pieces = box_subtract_all(cand, complement);
      nested.insert(nested.end(), pieces.begin(), pieces.end());
    }

    // 5. Build the new fine level.
    Level fresh(l + 1, domain_at(l + 1), r);
    for (const Box& b : nested) {
      if (b.empty()) continue;
      fresh.patches().push_back(PatchInfo{next_patch_id_++, b.refined(r), 0});
    }
    balance_owners(comm_, fresh.patches(), cfg_.balance);
    allocate_local(fresh);

    if (fresh.patches().empty()) {
      // Nothing flagged: drop this and any deeper level.
      levels_.resize(static_cast<std::size_t>(l) + 1);
      break;
    }

    // 6. Fill new patch interiors: prolong from level l, then overwrite
    // with old level l+1 data where it existed (exact values win).
    {
      auto halos = gather_coarse_halos(cur, fresh);
      std::vector<std::pair<const PatchData<double>*, const PatchInfo*>> jobs;
      for (const PatchInfo& f : fresh.patches()) {
        if (f.owner != rank()) continue;
        auto hit = halos.find(f.id);
        if (hit == halos.end()) continue;
        jobs.emplace_back(&hit->second, &f);
      }
      ccaperf::rank_pool().parallel_for(jobs.size(), [&](std::size_t k, int) {
        interpolate_patch(*jobs[k].first, fresh.data(jobs[k].second->id),
                          jobs[k].second->box, r);
      });
    }
    if (l + 1 < num_levels()) {
      Level& old = level(l + 1);
      auto src_fn = [&old](int id) -> const PatchData<double>* {
        return old.has_data(id) ? &old.data(id) : nullptr;
      };
      auto dst_fn = [&fresh](int id) -> PatchData<double>* {
        return fresh.has_data(id) ? &fresh.data(id) : nullptr;
      };
      exchange_copy(comm_, old.patches(), src_fn, fresh.patches(), dst_fn,
                    [](const PatchInfo& p) { return p.box; },
                    /*skip_same_id=*/false, next_tag(1));
    }

    // 7. Install.
    if (l + 1 < num_levels())
      levels_[static_cast<std::size_t>(l) + 1] = std::move(fresh);
    else
      levels_.push_back(std::move(fresh));
  }
}

double Hierarchy::rebalance() {
  double worst = 1.0;
  for (Level& lvl : levels_) {
    std::vector<PatchInfo> rebal = lvl.patches();
    const double imbalance = balance_owners(comm_, rebal, cfg_.balance);
    worst = std::max(worst, imbalance);

    Level fresh(lvl.index(), lvl.domain(), lvl.ratio_to_coarser());
    fresh.patches() = rebal;
    allocate_local(fresh);

    auto src_fn = [&lvl](int id) -> const PatchData<double>* {
      return lvl.has_data(id) ? &lvl.data(id) : nullptr;
    };
    auto dst_fn = [&fresh](int id) -> PatchData<double>* {
      return fresh.has_data(id) ? &fresh.data(id) : nullptr;
    };
    exchange_copy(comm_, lvl.patches(), src_fn, fresh.patches(), dst_fn,
                  [](const PatchInfo& p) { return p.box; },
                  /*skip_same_id=*/false, next_tag(1));
    lvl = std::move(fresh);
  }
  return worst;
}

long Hierarchy::total_cells() const {
  long total = 0;
  for (const Level& lvl : levels_) total += lvl.total_cells();
  return total;
}

}  // namespace amr
