#include "amr/box.hpp"

#include <ostream>
#include <sstream>

namespace amr {

std::string Box::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  if (b.empty()) return os << "[empty]";
  return os << "[(" << b.lo().i << ',' << b.lo().j << ")..(" << b.hi().i << ','
            << b.hi().j << ")]";
}

std::vector<Box> box_subtract(const Box& a, const Box& b) {
  std::vector<Box> out;
  const Box overlap = a & b;
  if (overlap.empty()) {
    if (!a.empty()) out.push_back(a);
    return out;
  }
  if (overlap == a) return out;  // fully covered

  // Slice `a` into (up to) four disjoint pieces around the overlap:
  // bottom and top strips span the full width; left and right fill the
  // middle band.
  const IntVect alo = a.lo(), ahi = a.hi();
  const IntVect olo = overlap.lo(), ohi = overlap.hi();

  if (olo.j > alo.j)  // bottom strip
    out.emplace_back(IntVect{alo.i, alo.j}, IntVect{ahi.i, olo.j - 1});
  if (ohi.j < ahi.j)  // top strip
    out.emplace_back(IntVect{alo.i, ohi.j + 1}, IntVect{ahi.i, ahi.j});
  if (olo.i > alo.i)  // left band
    out.emplace_back(IntVect{alo.i, olo.j}, IntVect{olo.i - 1, ohi.j});
  if (ohi.i < ahi.i)  // right band
    out.emplace_back(IntVect{ohi.i + 1, olo.j}, IntVect{ahi.i, ohi.j});
  return out;
}

std::vector<Box> box_subtract_all(const Box& a, const std::vector<Box>& bs) {
  std::vector<Box> remaining;
  if (!a.empty()) remaining.push_back(a);
  for (const Box& b : bs) {
    std::vector<Box> next;
    for (const Box& r : remaining) {
      auto pieces = box_subtract(r, b);
      next.insert(next.end(), pieces.begin(), pieces.end());
    }
    remaining.swap(next);
    if (remaining.empty()) break;
  }
  return remaining;
}

long total_pts(const std::vector<Box>& bs) {
  long total = 0;
  for (const Box& b : bs) total += b.num_pts();
  return total;
}

}  // namespace amr
