#pragma once
// 2-D structured-AMR index calculus: IntVect and Box.
//
// A Box is a rectangle of cell indices, inclusive on both ends, on the
// index space of one refinement level (Berger-Collela SAMR [21,22] in the
// paper's references). All patch geometry — intersection, growth for ghost
// regions, refinement/coarsening between levels, subtraction for
// uncovered-region computation — is done with these two types.

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace amr {

struct IntVect {
  int i = 0;
  int j = 0;

  friend IntVect operator+(IntVect a, IntVect b) { return {a.i + b.i, a.j + b.j}; }
  friend IntVect operator-(IntVect a, IntVect b) { return {a.i - b.i, a.j - b.j}; }
  friend IntVect operator*(IntVect a, int s) { return {a.i * s, a.j * s}; }
  friend bool operator==(IntVect a, IntVect b) { return a.i == b.i && a.j == b.j; }
  friend bool operator!=(IntVect a, IntVect b) { return !(a == b); }
};

/// Floor division (rounds toward -infinity), the correct coarsening map
/// for negative indices.
constexpr int floor_div(int a, int b) {
  const int q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}

class Box {
 public:
  /// Default: the canonical empty box.
  Box() : lo_{0, 0}, hi_{-1, -1} {}
  Box(IntVect lo, IntVect hi) : lo_(lo), hi_(hi) {}
  Box(int ilo, int jlo, int ihi, int jhi) : lo_{ilo, jlo}, hi_{ihi, jhi} {}

  IntVect lo() const { return lo_; }
  IntVect hi() const { return hi_; }

  bool empty() const { return hi_.i < lo_.i || hi_.j < lo_.j; }
  int width() const { return empty() ? 0 : hi_.i - lo_.i + 1; }
  int height() const { return empty() ? 0 : hi_.j - lo_.j + 1; }
  /// Number of cells.
  long num_pts() const { return static_cast<long>(width()) * height(); }

  bool contains(IntVect p) const {
    return p.i >= lo_.i && p.i <= hi_.i && p.j >= lo_.j && p.j <= hi_.j;
  }
  bool contains(const Box& b) const {
    return b.empty() || (contains(b.lo_) && contains(b.hi_));
  }
  bool intersects(const Box& b) const { return !(*this & b).empty(); }

  /// Intersection (empty box if disjoint).
  friend Box operator&(const Box& a, const Box& b) {
    if (a.empty() || b.empty()) return Box{};
    return Box{{std::max(a.lo_.i, b.lo_.i), std::max(a.lo_.j, b.lo_.j)},
               {std::min(a.hi_.i, b.hi_.i), std::min(a.hi_.j, b.hi_.j)}};
  }

  /// Grown by `n` cells on every side (ghost region construction).
  Box grown(int n) const {
    if (empty()) return *this;
    return Box{{lo_.i - n, lo_.j - n}, {hi_.i + n, hi_.j + n}};
  }
  Box grown(int nx, int ny) const {
    if (empty()) return *this;
    return Box{{lo_.i - nx, lo_.j - ny}, {hi_.i + nx, hi_.j + ny}};
  }

  /// Index mapping to the next finer level (each cell becomes r x r cells).
  Box refined(int r) const {
    CCAPERF_REQUIRE(r >= 1, "Box::refined: ratio must be >= 1");
    if (empty()) return *this;
    return Box{{lo_.i * r, lo_.j * r}, {hi_.i * r + r - 1, hi_.j * r + r - 1}};
  }

  /// Index mapping to the next coarser level (covers every coarse cell
  /// touched by this box).
  Box coarsened(int r) const {
    CCAPERF_REQUIRE(r >= 1, "Box::coarsened: ratio must be >= 1");
    if (empty()) return *this;
    return Box{{floor_div(lo_.i, r), floor_div(lo_.j, r)},
               {floor_div(hi_.i, r), floor_div(hi_.j, r)}};
  }

  Box shifted(IntVect d) const {
    if (empty()) return *this;
    return Box{lo_ + d, hi_ + d};
  }

  friend bool operator==(const Box& a, const Box& b) {
    if (a.empty() && b.empty()) return true;
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  friend bool operator!=(const Box& a, const Box& b) { return !(a == b); }

  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const Box& b);

 private:
  IntVect lo_, hi_;
};

/// a \ b as a list of up to four disjoint boxes covering the part of `a`
/// not covered by `b`.
std::vector<Box> box_subtract(const Box& a, const Box& b);

/// a \ (b0 u b1 u ...) as disjoint boxes.
std::vector<Box> box_subtract_all(const Box& a, const std::vector<Box>& bs);

/// Total cells in a box list.
long total_pts(const std::vector<Box>& bs);

}  // namespace amr
