#pragma once
// Patch sweep kernels: the computational bodies of the States, EFMFlux and
// GodunovFlux components.
//
// Each kernel operates on one patch in one direction:
//  * Dir::x ("sequential mode"): the inner loop walks `i`, which is unit
//    stride in the row-major patch layout;
//  * Dir::y ("strided mode"): the inner loop walks `j`, striding by the
//    padded row length on every step.
// These are the paper's two modes of States/EFMFlux/GodunovFlux whose
// cache behaviour diverges once arrays overflow the cache (Figs. 4-5).
//
// Kernels are templated on an hwc probe: hwc::NullProbe compiles to the
// plain kernel (used for wall-clock measurement); hwc::CacheProbe replays
// every load/store through the cache simulator and tallies FLOPs (used for
// deterministic hardware metrics). Explicit instantiations live in
// kernels.cpp.
//
// States and EFM sweeps (and the RK2 updates below) dispatch at runtime to
// AVX2/AVX-512 vector bodies when the host supports them — see simd.hpp
// for the CCAPERF_SIMD knob. Every ISA level produces bit-identical faces,
// fluxes and traced cache counters; Godunov stays scalar (its Riemann
// solve iterates data-dependently per face).

#include <cstdint>
#include <vector>

#include "amr/patch_data.hpp"
#include "euler/efm.hpp"
#include "euler/riemann.hpp"
#include "euler/state.hpp"
#include "hwc/probe.hpp"

namespace ccaperf {
class ThreadPool;
}

namespace euler {

enum class Dir { x, y };

/// Face-centered (or cell-centered) work array: row-major in (j, i) like
/// PatchData (so the sequential/strided sweep distinction carries over),
/// but with the component axis innermost — one face's 5-component state is
/// contiguous, so kernels load/store it as a single short cache-line run
/// instead of 5 plane-strided touches (the traced fast path's store side).
class Array2 {
 public:
  Array2() = default;
  Array2(int nx, int ny, int ncomp)
      : nx_(nx), ny_(ny), ncomp_(ncomp),
        data_(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                  static_cast<std::size_t>(ncomp),
              0.0) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int ncomp() const { return ncomp_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(int i, int j, int c) { return data_[index(i, j, c)]; }
  const double& operator()(int i, int j, int c) const { return data_[index(i, j, c)]; }
  const double* addr(int i, int j, int c) const { return &data_[index(i, j, c)]; }

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Elements between consecutive components of one face: 1 (contiguous).
  static constexpr std::ptrdiff_t comp_stride() { return 1; }

 private:
  std::size_t index(int i, int j, int c) const {
    return (static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
            static_cast<std::size_t>(i)) *
               static_cast<std::size_t>(ncomp_) +
           static_cast<std::size_t>(c);
  }
  int nx_ = 0, ny_ = 0, ncomp_ = 0;
  std::vector<double> data_;
};

/// Face-array dimensions for sweeps over `interior` in direction `dir`:
/// (W+1) x H faces for x, W x (H+1) for y.
inline void face_dims(const amr::Box& interior, Dir dir, int& nx, int& ny) {
  nx = interior.width() + (dir == Dir::x ? 1 : 0);
  ny = interior.height() + (dir == Dir::y ? 1 : 0);
}

/// Kernel work summary (for performance-parameter extraction by proxies).
struct KernelCounts {
  std::uint64_t faces = 0;
  std::uint64_t riemann_iterations = 0;  ///< Godunov only

  KernelCounts& operator+=(const KernelCounts& o) {
    faces += o.faces;
    riemann_iterations += o.riemann_iterations;
    return *this;
  }
};

/// MUSCL (minmod-limited) reconstruction of left/right primitive interface
/// states. `U` must have valid ghosts (>= 2) around `interior`. Outputs
/// primitive components (rho, u_n, u_t, p, phi) per face into left/right
/// (face-normal frame: u_n is the `dir` velocity).
template <class Probe>
KernelCounts compute_states(const amr::PatchData<double>& U,
                            const amr::Box& interior, Dir dir,
                            const GasModel& gas, Array2& left, Array2& right,
                            Probe& probe);

/// EFM flux for every face from reconstructed states. Output components
/// are conserved-variable fluxes in the face-normal frame
/// (mass, mom_n, mom_t, energy, phi).
template <class Probe>
KernelCounts efm_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe);

/// Godunov flux (exact Riemann solve per face), same in/out convention.
template <class Probe>
KernelCounts godunov_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                                const GasModel& gas, Array2& flux, Probe& probe);

/// Accumulates -div(F) into `dudt` over `interior`. `fx`/`fy` are
/// face-normal-frame fluxes from the x/y sweeps; component mapping back to
/// (rho, mx, my, E, rphi) happens here.
void flux_divergence(const Array2& fx, const Array2& fy, const amr::Box& interior,
                     double dx, double dy, amr::PatchData<double>& dudt);

/// Max |u|+c over the interior (CFL).
double max_wave_speed(const amr::PatchData<double>& U, const amr::Box& interior,
                      const GasModel& gas);

/// Total conserved quantities over the interior (conservation tests).
void total_conserved(const amr::PatchData<double>& U, const amr::Box& interior,
                     double totals[kNcomp]);

// --- RK2 update kernels (DESIGN.md §11) --------------------------------------
//
// The elementwise integrator updates, factored out of RK2Component so they
// ride the same runtime ISA dispatch (simd.hpp) as the sweep kernels.
// Every ISA level is bit-identical to the scalar expressions:
//   rk2_axpy:         y[i] += a * x[i]
//   rk2_heun_average: u[i] = 0.5 * (u_old[i] + u[i] + dt * dudt[i])

void rk2_axpy(double* y, const double* x, double a, std::size_t n);

void rk2_heun_average(double* u, const double* u_old, const double* dudt,
                      double dt, std::size_t n);

// --- thread-parallel sweeps (DESIGN.md §9) -----------------------------------
//
// The `_mt` wrappers split the sweep's OUTER loop (rows for Dir::x,
// columns for Dir::y) over the pool's lanes. Every face is written exactly
// once and the per-face math is untouched, so the output arrays are
// bit-identical to the serial kernels for any thread count; the integer
// KernelCounts are folded per lane and summed (associative — also exact).
// With a one-lane pool (or when called inside an enclosing parallel
// region) they degenerate to the serial kernel on the calling thread.
// Wall-clock measurement configurations only: the probe is hwc::NullProbe.

KernelCounts compute_states_mt(ccaperf::ThreadPool& pool,
                               const amr::PatchData<double>& U,
                               const amr::Box& interior, Dir dir,
                               const GasModel& gas, Array2& left, Array2& right);

KernelCounts efm_flux_sweep_mt(ccaperf::ThreadPool& pool, const Array2& left,
                               const Array2& right, Dir dir, const GasModel& gas,
                               Array2& flux);

KernelCounts godunov_flux_sweep_mt(ccaperf::ThreadPool& pool, const Array2& left,
                                   const Array2& right, Dir dir,
                                   const GasModel& gas, Array2& flux);

void flux_divergence_mt(ccaperf::ThreadPool& pool, const Array2& fx,
                        const Array2& fy, const amr::Box& interior, double dx,
                        double dy, amr::PatchData<double>& dudt);

// --- deterministic counted sweeps --------------------------------------------
//
// Cache-counting cannot share one simulator across lanes without making
// miss totals depend on interleaving. The counted sweeps instead decompose
// the outer loop into kCounterShards FIXED contiguous slabs (independent
// of thread count), replay each slab through its own cold XeonHierarchy +
// CacheProbe, and merge the integer counters in slab order — so the
// totals are invariant across thread counts (1 lane and N lanes produce
// identical numbers), at the cost of per-slab cold-start misses relative
// to the single-simulator serial sweep.

inline constexpr int kCounterShards = 8;

/// Merged result of a sharded counted sweep.
struct CountedSweep {
  KernelCounts kernel;
  hwc::ProbeCounts probe;        ///< loads/stores/flops, summed in slab order
  std::uint64_t l1_misses = 0;   ///< cold-shard L1 misses, summed in slab order
  std::uint64_t l2_misses = 0;
};

CountedSweep compute_states_counted(ccaperf::ThreadPool& pool,
                                    const amr::PatchData<double>& U,
                                    const amr::Box& interior, Dir dir,
                                    const GasModel& gas, Array2& left,
                                    Array2& right);

CountedSweep efm_flux_sweep_counted(ccaperf::ThreadPool& pool, const Array2& left,
                                    const Array2& right, Dir dir,
                                    const GasModel& gas, Array2& flux);

CountedSweep godunov_flux_sweep_counted(ccaperf::ThreadPool& pool,
                                        const Array2& left, const Array2& right,
                                        Dir dir, const GasModel& gas,
                                        Array2& flux);

}  // namespace euler
