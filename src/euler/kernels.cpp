#include "euler/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace euler {

namespace {

double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

/// Byte stride between consecutive components of one face of an Array2
/// (contiguous in the component-innermost layout).
inline std::ptrdiff_t comp_stride_bytes(const Array2& a) {
  return a.comp_stride() * static_cast<std::ptrdiff_t>(sizeof(double));
}

/// Gathers the four stencil cells around a face (k = -2..+1 along `dir`)
/// as primitive quintuples in the face-normal frame: w[k] = (rho, u_n,
/// u_t, p, phi). The four reads per component form one strided run — unit
/// stride for X sweeps — probed through the batched cache-sim API.
template <class Probe>
inline void load_prim_stencil(const amr::PatchData<double>& U, int i0, int j0,
                              Dir dir, const GasModel& gas, Probe& probe,
                              double w[4][kNcomp]) {
  const int di = dir == Dir::x ? 1 : 0;
  const int dj = dir == Dir::x ? 0 : 1;
  const int im2 = i0 - 2 * di;
  const int jm2 = j0 - 2 * dj;
  const std::ptrdiff_t stride = (dir == Dir::x ? 1 : U.row_stride()) *
                                static_cast<std::ptrdiff_t>(sizeof(double));
  for (int c = 0; c < kNcomp; ++c)
    probe.load_run(&U(im2, jm2, c), stride, 4, sizeof(double));
  for (int k = 0; k < 4; ++k) {
    double q[kNcomp];
    for (int c = 0; c < kNcomp; ++c) q[c] = U(im2 + k * di, jm2 + k * dj, c);
    const Prim p = cons_to_prim(q, gas);
    probe.flops(18);  // conversion cost (divides, gamma closure)
    w[k][0] = p.rho;
    w[k][1] = dir == Dir::x ? p.u : p.v;
    w[k][2] = dir == Dir::x ? p.v : p.u;
    w[k][3] = p.p;
    w[k][4] = p.phi;
  }
}

}  // namespace

template <class Probe>
KernelCounts compute_states(const amr::PatchData<double>& U,
                            const amr::Box& interior, Dir dir,
                            const GasModel& gas, Array2& left, Array2& right,
                            Probe& probe) {
  CCAPERF_REQUIRE(U.nghost() >= 2, "compute_states: need >= 2 ghost cells");
  int nx = 0, ny = 0;
  face_dims(interior, dir, nx, ny);
  CCAPERF_REQUIRE(left.nx() == nx && left.ny() == ny && left.ncomp() == kNcomp &&
                      right.nx() == nx && right.ny() == ny &&
                      right.ncomp() == kNcomp,
                  "compute_states: face array shape mismatch");
  KernelCounts counts;

  // w[k]: primitive states at the four stencil cells around a face (face
  // between cell -1 and cell 0 of the local numbering, k = -2..+1 mapped
  // to 0..3).
  double w[4][kNcomp];
  const std::ptrdiff_t face_comp = comp_stride_bytes(left);

  auto reconstruct_face = [&](int fi, int fj, int i0, int j0) {
    load_prim_stencil(U, i0, j0, dir, gas, probe, w);
    for (int c = 0; c < kNcomp; ++c) {
      const double sl = minmod(w[1][c] - w[0][c], w[2][c] - w[1][c]);
      const double sr = minmod(w[2][c] - w[1][c], w[3][c] - w[2][c]);
      left(fi, fj, c) = w[1][c] + 0.5 * sl;
      right(fi, fj, c) = w[2][c] - 0.5 * sr;
    }
    probe.store_run(left.addr(fi, fj, 0), face_comp, kNcomp, sizeof(double));
    probe.store_run(right.addr(fi, fj, 0), face_comp, kNcomp, sizeof(double));
    probe.flops(8 * kNcomp);
    ++counts.faces;
  };

  if (dir == Dir::x) {
    // Sequential mode: inner loop is unit stride in memory.
    for (int fj = 0; fj < ny; ++fj) {
      const int j = interior.lo().j + fj;
      for (int fi = 0; fi < nx; ++fi) {
        const int i = interior.lo().i + fi;
        reconstruct_face(fi, fj, i, j);
      }
    }
  } else {
    // Strided mode: inner loop strides by the padded row length.
    for (int fi = 0; fi < nx; ++fi) {
      const int i = interior.lo().i + fi;
      for (int fj = 0; fj < ny; ++fj) {
        const int j = interior.lo().j + fj;
        reconstruct_face(fi, fj, i, j);
      }
    }
  }
  return counts;
}

namespace {

/// Reads the 5 primitive face components, probed as one contiguous run.
template <class Probe>
inline Prim load_face_state(const Array2& a, int fi, int fj, Probe& probe) {
  probe.load_run(a.addr(fi, fj, 0), comp_stride_bytes(a), kNcomp, sizeof(double));
  Prim w;
  w.rho = a(fi, fj, 0);
  w.u = a(fi, fj, 1);  // face-normal frame
  w.v = a(fi, fj, 2);
  w.p = a(fi, fj, 3);
  w.phi = a(fi, fj, 4);
  return w;
}

template <class Probe>
inline void store_face_flux(Array2& flux, int fi, int fj, const FaceFlux& f,
                            Probe& probe) {
  flux(fi, fj, 0) = f.mass;
  flux(fi, fj, 1) = f.mom_n;
  flux(fi, fj, 2) = f.mom_t;
  flux(fi, fj, 3) = f.energy;
  flux(fi, fj, 4) = f.phi_mass;
  probe.store_run(flux.addr(fi, fj, 0), comp_stride_bytes(flux), kNcomp,
                  sizeof(double));
}

/// Shared sweep driver: walks faces in the direction-appropriate loop
/// order and applies `face_op(fi, fj)`.
template <class FaceOp>
void sweep_faces(const Array2& left, Dir dir, FaceOp&& face_op) {
  if (dir == Dir::x) {
    for (int fj = 0; fj < left.ny(); ++fj)
      for (int fi = 0; fi < left.nx(); ++fi) face_op(fi, fj);
  } else {
    for (int fi = 0; fi < left.nx(); ++fi)
      for (int fj = 0; fj < left.ny(); ++fj) face_op(fi, fj);
  }
}

}  // namespace

template <class Probe>
KernelCounts efm_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe) {
  CCAPERF_REQUIRE(flux.nx() == left.nx() && flux.ny() == left.ny() &&
                      flux.ncomp() == kNcomp,
                  "efm_flux_sweep: flux array shape mismatch");
  KernelCounts counts;
  sweep_faces(left, dir, [&](int fi, int fj) {
    const Prim l = load_face_state(left, fi, fj, probe);
    const Prim r = load_face_state(right, fi, fj, probe);
    const FaceFlux f = efm_face_flux(l, r, gas);
    probe.flops(120);  // two half-fluxes: erf + exp + moments
    store_face_flux(flux, fi, fj, f, probe);
    ++counts.faces;
  });
  return counts;
}

template <class Probe>
KernelCounts godunov_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                                const GasModel& gas, Array2& flux, Probe& probe) {
  CCAPERF_REQUIRE(flux.nx() == left.nx() && flux.ny() == left.ny() &&
                      flux.ncomp() == kNcomp,
                  "godunov_flux_sweep: flux array shape mismatch");
  KernelCounts counts;
  sweep_faces(left, dir, [&](int fi, int fj) {
    const Prim l = load_face_state(left, fi, fj, probe);
    const Prim r = load_face_state(right, fi, fj, probe);
    const RiemannResult rr = exact_riemann(l, r, gas);
    const FaceFlux f = godunov_face_flux(rr.sampled, gas);
    counts.riemann_iterations += static_cast<std::uint64_t>(rr.iterations);
    probe.flops(60 + 45 * static_cast<std::uint64_t>(rr.iterations));
    store_face_flux(flux, fi, fj, f, probe);
    ++counts.faces;
  });
  return counts;
}

void flux_divergence(const Array2& fx, const Array2& fy, const amr::Box& interior,
                     double dx, double dy, amr::PatchData<double>& dudt) {
  const int W = interior.width(), H = interior.height();
  CCAPERF_REQUIRE(fx.nx() == W + 1 && fx.ny() == H && fy.nx() == W &&
                      fy.ny() == H + 1,
                  "flux_divergence: face array shape mismatch");
  const double inv_dx = 1.0 / dx, inv_dy = 1.0 / dy;
  // Face-normal-frame flux components -> conserved components:
  // x faces: (mass, mom_n, mom_t, E, phi) -> (rho, mx, my, E, rphi)
  // y faces: mom_n is y momentum, mom_t is x momentum.
  static constexpr int x_map[kNcomp] = {kRho, kMx, kMy, kE, kRphi};
  static constexpr int y_map[kNcomp] = {kRho, kMy, kMx, kE, kRphi};
  for (int c = 0; c < kNcomp; ++c) {
    for (int jj = 0; jj < H; ++jj) {
      const int j = interior.lo().j + jj;
      for (int ii = 0; ii < W; ++ii) {
        const int i = interior.lo().i + ii;
        double div = 0.0;
        // Find which face-frame component feeds conserved component c.
        for (int k = 0; k < kNcomp; ++k) {
          if (x_map[k] == c) div += (fx(ii + 1, jj, k) - fx(ii, jj, k)) * inv_dx;
          if (y_map[k] == c) div += (fy(ii, jj + 1, k) - fy(ii, jj, k)) * inv_dy;
        }
        dudt(i, j, c) = -div;
      }
    }
  }
}

double max_wave_speed(const amr::PatchData<double>& U, const amr::Box& interior,
                      const GasModel& gas) {
  double vmax = 0.0;
  double q[kNcomp];
  for (int j = interior.lo().j; j <= interior.hi().j; ++j) {
    for (int i = interior.lo().i; i <= interior.hi().i; ++i) {
      for (int c = 0; c < kNcomp; ++c) q[c] = U(i, j, c);
      const Prim w = cons_to_prim(q, gas);
      const double c0 = sound_speed(w, gas);
      vmax = std::max(vmax, std::max(std::abs(w.u), std::abs(w.v)) + c0);
    }
  }
  return vmax;
}

void total_conserved(const amr::PatchData<double>& U, const amr::Box& interior,
                     double totals[kNcomp]) {
  for (int c = 0; c < kNcomp; ++c) totals[c] = 0.0;
  for (int j = interior.lo().j; j <= interior.hi().j; ++j)
    for (int i = interior.lo().i; i <= interior.hi().i; ++i)
      for (int c = 0; c < kNcomp; ++c) totals[c] += U(i, j, c);
}

// Explicit instantiations: the production (NullProbe) and cache-traced
// (CacheProbe) configurations, plus the scalar-replay reference
// (ScalarReplayProbe) that benches compare the batched fast path against.
template KernelCounts compute_states<hwc::NullProbe>(const amr::PatchData<double>&,
                                                     const amr::Box&, Dir,
                                                     const GasModel&, Array2&,
                                                     Array2&, hwc::NullProbe&);
template KernelCounts compute_states<hwc::CacheProbe>(const amr::PatchData<double>&,
                                                      const amr::Box&, Dir,
                                                      const GasModel&, Array2&,
                                                      Array2&, hwc::CacheProbe&);
template KernelCounts efm_flux_sweep<hwc::NullProbe>(const Array2&, const Array2&,
                                                     Dir, const GasModel&, Array2&,
                                                     hwc::NullProbe&);
template KernelCounts efm_flux_sweep<hwc::CacheProbe>(const Array2&, const Array2&,
                                                      Dir, const GasModel&, Array2&,
                                                      hwc::CacheProbe&);
template KernelCounts godunov_flux_sweep<hwc::NullProbe>(const Array2&, const Array2&,
                                                         Dir, const GasModel&,
                                                         Array2&, hwc::NullProbe&);
template KernelCounts godunov_flux_sweep<hwc::CacheProbe>(const Array2&,
                                                          const Array2&, Dir,
                                                          const GasModel&, Array2&,
                                                          hwc::CacheProbe&);
template KernelCounts compute_states<hwc::ScalarReplayProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&, Array2&,
    Array2&, hwc::ScalarReplayProbe&);
template KernelCounts efm_flux_sweep<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&);
template KernelCounts godunov_flux_sweep<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&);

}  // namespace euler
