#include "euler/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hwc/cache_sim.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace euler {

namespace {

double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

/// Byte stride between consecutive components of one face of an Array2
/// (contiguous in the component-innermost layout).
inline std::ptrdiff_t comp_stride_bytes(const Array2& a) {
  return a.comp_stride() * static_cast<std::ptrdiff_t>(sizeof(double));
}

/// Gathers the four stencil cells around a face (k = -2..+1 along `dir`)
/// as primitive quintuples in the face-normal frame: w[k] = (rho, u_n,
/// u_t, p, phi). The four reads per component form one strided run — unit
/// stride for X sweeps — probed through the batched cache-sim API.
template <class Probe>
inline void load_prim_stencil(const amr::PatchData<double>& U, int i0, int j0,
                              Dir dir, const GasModel& gas, Probe& probe,
                              double w[4][kNcomp]) {
  const int di = dir == Dir::x ? 1 : 0;
  const int dj = dir == Dir::x ? 0 : 1;
  const int im2 = i0 - 2 * di;
  const int jm2 = j0 - 2 * dj;
  const std::ptrdiff_t stride = (dir == Dir::x ? 1 : U.row_stride()) *
                                static_cast<std::ptrdiff_t>(sizeof(double));
  for (int c = 0; c < kNcomp; ++c)
    probe.load_run(&U(im2, jm2, c), stride, 4, sizeof(double));
  for (int k = 0; k < 4; ++k) {
    double q[kNcomp];
    for (int c = 0; c < kNcomp; ++c) q[c] = U(im2 + k * di, jm2 + k * dj, c);
    const Prim p = cons_to_prim(q, gas);
    probe.flops(18);  // conversion cost (divides, gamma closure)
    w[k][0] = p.rho;
    w[k][1] = dir == Dir::x ? p.u : p.v;
    w[k][2] = dir == Dir::x ? p.v : p.u;
    w[k][3] = p.p;
    w[k][4] = p.phi;
  }
}

/// Span of the sweep's OUTER loop in direction `dir`: rows (fj) for
/// Dir::x, columns (fi) for Dir::y — the loop whose iterations are
/// independent and can be split across lanes or counter shards.
inline int outer_extent(int nx, int ny, Dir dir) {
  return dir == Dir::x ? ny : nx;
}

/// Reconstruction over outer indices [o_begin, o_end); the full-span call
/// is the original serial kernel, a sub-span is one lane's (or one counter
/// shard's) slice. Shape checks are the caller's job.
template <class Probe>
KernelCounts compute_states_range(const amr::PatchData<double>& U,
                                  const amr::Box& interior, Dir dir,
                                  const GasModel& gas, Array2& left,
                                  Array2& right, Probe& probe, int o_begin,
                                  int o_end) {
  const int nx = left.nx(), ny = left.ny();
  KernelCounts counts;

  // w[k]: primitive states at the four stencil cells around a face (face
  // between cell -1 and cell 0 of the local numbering, k = -2..+1 mapped
  // to 0..3).
  double w[4][kNcomp];
  const std::ptrdiff_t face_comp = comp_stride_bytes(left);

  auto reconstruct_face = [&](int fi, int fj, int i0, int j0) {
    load_prim_stencil(U, i0, j0, dir, gas, probe, w);
    for (int c = 0; c < kNcomp; ++c) {
      const double sl = minmod(w[1][c] - w[0][c], w[2][c] - w[1][c]);
      const double sr = minmod(w[2][c] - w[1][c], w[3][c] - w[2][c]);
      left(fi, fj, c) = w[1][c] + 0.5 * sl;
      right(fi, fj, c) = w[2][c] - 0.5 * sr;
    }
    probe.store_run(left.addr(fi, fj, 0), face_comp, kNcomp, sizeof(double));
    probe.store_run(right.addr(fi, fj, 0), face_comp, kNcomp, sizeof(double));
    probe.flops(8 * kNcomp);
    ++counts.faces;
  };

  if (dir == Dir::x) {
    // Sequential mode: inner loop is unit stride in memory.
    for (int fj = o_begin; fj < o_end; ++fj) {
      const int j = interior.lo().j + fj;
      for (int fi = 0; fi < nx; ++fi) {
        const int i = interior.lo().i + fi;
        reconstruct_face(fi, fj, i, j);
      }
    }
  } else {
    // Strided mode: inner loop strides by the padded row length.
    for (int fi = o_begin; fi < o_end; ++fi) {
      const int i = interior.lo().i + fi;
      for (int fj = 0; fj < ny; ++fj) {
        const int j = interior.lo().j + fj;
        reconstruct_face(fi, fj, i, j);
      }
    }
  }
  return counts;
}

void check_states_shapes(const amr::PatchData<double>& U,
                         const amr::Box& interior, Dir dir, const Array2& left,
                         const Array2& right) {
  CCAPERF_REQUIRE(U.nghost() >= 2, "compute_states: need >= 2 ghost cells");
  int nx = 0, ny = 0;
  face_dims(interior, dir, nx, ny);
  CCAPERF_REQUIRE(left.nx() == nx && left.ny() == ny && left.ncomp() == kNcomp &&
                      right.nx() == nx && right.ny() == ny &&
                      right.ncomp() == kNcomp,
                  "compute_states: face array shape mismatch");
}

}  // namespace

template <class Probe>
KernelCounts compute_states(const amr::PatchData<double>& U,
                            const amr::Box& interior, Dir dir,
                            const GasModel& gas, Array2& left, Array2& right,
                            Probe& probe) {
  check_states_shapes(U, interior, dir, left, right);
  return compute_states_range(U, interior, dir, gas, left, right, probe, 0,
                              outer_extent(left.nx(), left.ny(), dir));
}

namespace {

/// Reads the 5 primitive face components, probed as one contiguous run.
template <class Probe>
inline Prim load_face_state(const Array2& a, int fi, int fj, Probe& probe) {
  probe.load_run(a.addr(fi, fj, 0), comp_stride_bytes(a), kNcomp, sizeof(double));
  Prim w;
  w.rho = a(fi, fj, 0);
  w.u = a(fi, fj, 1);  // face-normal frame
  w.v = a(fi, fj, 2);
  w.p = a(fi, fj, 3);
  w.phi = a(fi, fj, 4);
  return w;
}

template <class Probe>
inline void store_face_flux(Array2& flux, int fi, int fj, const FaceFlux& f,
                            Probe& probe) {
  flux(fi, fj, 0) = f.mass;
  flux(fi, fj, 1) = f.mom_n;
  flux(fi, fj, 2) = f.mom_t;
  flux(fi, fj, 3) = f.energy;
  flux(fi, fj, 4) = f.phi_mass;
  probe.store_run(flux.addr(fi, fj, 0), comp_stride_bytes(flux), kNcomp,
                  sizeof(double));
}

/// Shared sweep driver: walks faces of the outer span [o_begin, o_end) in
/// the direction-appropriate loop order and applies `face_op(fi, fj)`.
template <class FaceOp>
void sweep_faces(const Array2& left, Dir dir, int o_begin, int o_end,
                 FaceOp&& face_op) {
  if (dir == Dir::x) {
    for (int fj = o_begin; fj < o_end; ++fj)
      for (int fi = 0; fi < left.nx(); ++fi) face_op(fi, fj);
  } else {
    for (int fi = o_begin; fi < o_end; ++fi)
      for (int fj = 0; fj < left.ny(); ++fj) face_op(fi, fj);
  }
}

template <class Probe>
KernelCounts efm_flux_range(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe,
                            int o_begin, int o_end) {
  KernelCounts counts;
  sweep_faces(left, dir, o_begin, o_end, [&](int fi, int fj) {
    const Prim l = load_face_state(left, fi, fj, probe);
    const Prim r = load_face_state(right, fi, fj, probe);
    const FaceFlux f = efm_face_flux(l, r, gas);
    probe.flops(kEfmFlopsPerFace);  // two half-fluxes: erf + exp + moments
    store_face_flux(flux, fi, fj, f, probe);
    ++counts.faces;
  });
  return counts;
}

template <class Probe>
KernelCounts godunov_flux_range(const Array2& left, const Array2& right, Dir dir,
                                const GasModel& gas, Array2& flux, Probe& probe,
                                int o_begin, int o_end) {
  KernelCounts counts;
  sweep_faces(left, dir, o_begin, o_end, [&](int fi, int fj) {
    const Prim l = load_face_state(left, fi, fj, probe);
    const Prim r = load_face_state(right, fi, fj, probe);
    const RiemannResult rr = exact_riemann(l, r, gas);
    const FaceFlux f = godunov_face_flux(rr.sampled, gas);
    counts.riemann_iterations += static_cast<std::uint64_t>(rr.iterations);
    probe.flops(kGodunovFlopsPerFace +
                kGodunovFlopsPerIteration *
                    static_cast<std::uint64_t>(rr.iterations));
    store_face_flux(flux, fi, fj, f, probe);
    ++counts.faces;
  });
  return counts;
}

void check_flux_shapes(const Array2& left, const Array2& flux,
                       const char* what) {
  CCAPERF_REQUIRE(flux.nx() == left.nx() && flux.ny() == left.ny() &&
                      flux.ncomp() == kNcomp,
                  std::string(what) + ": flux array shape mismatch");
}

}  // namespace

template <class Probe>
KernelCounts efm_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe) {
  check_flux_shapes(left, flux, "efm_flux_sweep");
  return efm_flux_range(left, right, dir, gas, flux, probe, 0,
                        outer_extent(left.nx(), left.ny(), dir));
}

template <class Probe>
KernelCounts godunov_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                                const GasModel& gas, Array2& flux, Probe& probe) {
  check_flux_shapes(left, flux, "godunov_flux_sweep");
  return godunov_flux_range(left, right, dir, gas, flux, probe, 0,
                            outer_extent(left.nx(), left.ny(), dir));
}

namespace {

// Face-normal-frame flux components -> conserved components:
// x faces: (mass, mom_n, mom_t, E, phi) -> (rho, mx, my, E, rphi)
// y faces: mom_n is y momentum, mom_t is x momentum.
constexpr int x_map[kNcomp] = {kRho, kMx, kMy, kE, kRphi};
constexpr int y_map[kNcomp] = {kRho, kMy, kMx, kE, kRphi};

/// One component's divergence rows [jj_begin, jj_end). Every dudt cell is
/// written exactly once from already-final face fluxes, so any row
/// partition produces bit-identical output.
void flux_divergence_rows(const Array2& fx, const Array2& fy,
                          const amr::Box& interior, double inv_dx,
                          double inv_dy, amr::PatchData<double>& dudt, int c,
                          int jj_begin, int jj_end) {
  const int W = interior.width();
  for (int jj = jj_begin; jj < jj_end; ++jj) {
    const int j = interior.lo().j + jj;
    for (int ii = 0; ii < W; ++ii) {
      const int i = interior.lo().i + ii;
      double div = 0.0;
      // Find which face-frame component feeds conserved component c.
      for (int k = 0; k < kNcomp; ++k) {
        if (x_map[k] == c) div += (fx(ii + 1, jj, k) - fx(ii, jj, k)) * inv_dx;
        if (y_map[k] == c) div += (fy(ii, jj + 1, k) - fy(ii, jj, k)) * inv_dy;
      }
      dudt(i, j, c) = -div;
    }
  }
}

void check_divergence_shapes(const Array2& fx, const Array2& fy,
                             const amr::Box& interior) {
  const int W = interior.width(), H = interior.height();
  CCAPERF_REQUIRE(fx.nx() == W + 1 && fx.ny() == H && fy.nx() == W &&
                      fy.ny() == H + 1,
                  "flux_divergence: face array shape mismatch");
}

}  // namespace

void flux_divergence(const Array2& fx, const Array2& fy, const amr::Box& interior,
                     double dx, double dy, amr::PatchData<double>& dudt) {
  check_divergence_shapes(fx, fy, interior);
  const double inv_dx = 1.0 / dx, inv_dy = 1.0 / dy;
  for (int c = 0; c < kNcomp; ++c)
    flux_divergence_rows(fx, fy, interior, inv_dx, inv_dy, dudt, c, 0,
                         interior.height());
}

double max_wave_speed(const amr::PatchData<double>& U, const amr::Box& interior,
                      const GasModel& gas) {
  double vmax = 0.0;
  double q[kNcomp];
  for (int j = interior.lo().j; j <= interior.hi().j; ++j) {
    for (int i = interior.lo().i; i <= interior.hi().i; ++i) {
      for (int c = 0; c < kNcomp; ++c) q[c] = U(i, j, c);
      const Prim w = cons_to_prim(q, gas);
      const double c0 = sound_speed(w, gas);
      vmax = std::max(vmax, std::max(std::abs(w.u), std::abs(w.v)) + c0);
    }
  }
  return vmax;
}

void total_conserved(const amr::PatchData<double>& U, const amr::Box& interior,
                     double totals[kNcomp]) {
  for (int c = 0; c < kNcomp; ++c) totals[c] = 0.0;
  for (int j = interior.lo().j; j <= interior.hi().j; ++j)
    for (int i = interior.lo().i; i <= interior.hi().i; ++i)
      for (int c = 0; c < kNcomp; ++c) totals[c] += U(i, j, c);
}

// --- thread-parallel sweeps --------------------------------------------------

namespace {

/// Per-lane fold slot, padded so lanes never share a cache line.
struct alignas(64) LaneCounts {
  KernelCounts c;
};

KernelCounts sum_lanes(const std::vector<LaneCounts>& lanes) {
  KernelCounts total;
  for (const LaneCounts& l : lanes) total += l.c;
  return total;
}

}  // namespace

KernelCounts compute_states_mt(ccaperf::ThreadPool& pool,
                               const amr::PatchData<double>& U,
                               const amr::Box& interior, Dir dir,
                               const GasModel& gas, Array2& left,
                               Array2& right) {
  hwc::NullProbe probe;
  if (pool.size() == 1)
    return compute_states(U, interior, dir, gas, left, right, probe);
  check_states_shapes(U, interior, dir, left, right);
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  std::vector<LaneCounts> lanes(static_cast<std::size_t>(pool.size()));
  pool.parallel_for(static_cast<std::size_t>(outer), [&](std::size_t o, int l) {
    hwc::NullProbe p;
    lanes[static_cast<std::size_t>(l)].c += compute_states_range(
        U, interior, dir, gas, left, right, p, static_cast<int>(o),
        static_cast<int>(o) + 1);
  });
  return sum_lanes(lanes);
}

KernelCounts efm_flux_sweep_mt(ccaperf::ThreadPool& pool, const Array2& left,
                               const Array2& right, Dir dir, const GasModel& gas,
                               Array2& flux) {
  hwc::NullProbe probe;
  if (pool.size() == 1)
    return efm_flux_sweep(left, right, dir, gas, flux, probe);
  check_flux_shapes(left, flux, "efm_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  std::vector<LaneCounts> lanes(static_cast<std::size_t>(pool.size()));
  pool.parallel_for(static_cast<std::size_t>(outer), [&](std::size_t o, int l) {
    hwc::NullProbe p;
    lanes[static_cast<std::size_t>(l)].c +=
        efm_flux_range(left, right, dir, gas, flux, p, static_cast<int>(o),
                       static_cast<int>(o) + 1);
  });
  return sum_lanes(lanes);
}

KernelCounts godunov_flux_sweep_mt(ccaperf::ThreadPool& pool, const Array2& left,
                                   const Array2& right, Dir dir,
                                   const GasModel& gas, Array2& flux) {
  hwc::NullProbe probe;
  if (pool.size() == 1)
    return godunov_flux_sweep(left, right, dir, gas, flux, probe);
  check_flux_shapes(left, flux, "godunov_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  std::vector<LaneCounts> lanes(static_cast<std::size_t>(pool.size()));
  pool.parallel_for(static_cast<std::size_t>(outer), [&](std::size_t o, int l) {
    hwc::NullProbe p;
    lanes[static_cast<std::size_t>(l)].c +=
        godunov_flux_range(left, right, dir, gas, flux, p, static_cast<int>(o),
                           static_cast<int>(o) + 1);
  });
  return sum_lanes(lanes);
}

void flux_divergence_mt(ccaperf::ThreadPool& pool, const Array2& fx,
                        const Array2& fy, const amr::Box& interior, double dx,
                        double dy, amr::PatchData<double>& dudt) {
  if (pool.size() == 1) {
    flux_divergence(fx, fy, interior, dx, dy, dudt);
    return;
  }
  check_divergence_shapes(fx, fy, interior);
  const double inv_dx = 1.0 / dx, inv_dy = 1.0 / dy;
  const int H = interior.height();
  // Flatten (component, row) so short patches still spread across lanes.
  pool.parallel_for(static_cast<std::size_t>(kNcomp) *
                        static_cast<std::size_t>(H),
                    [&](std::size_t t, int) {
    const int c = static_cast<int>(t) / H;
    const int jj = static_cast<int>(t) % H;
    flux_divergence_rows(fx, fy, interior, inv_dx, inv_dy, dudt, c, jj, jj + 1);
  });
}

// --- deterministic counted sweeps --------------------------------------------

namespace {

/// One counter shard's result slot (padded: slabs run on different lanes).
struct alignas(64) SlabCounts {
  KernelCounts kernel;
  hwc::ProbeCounts probe;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
};

/// Fixed slab bounds: slab s of kCounterShards covers outer indices
/// [outer*s/kShards, outer*(s+1)/kShards) — a function of the problem
/// size only, never of the lane count.
inline int slab_lo(int outer, int s) {
  return static_cast<int>((static_cast<long long>(outer) * s) / kCounterShards);
}

/// Runs `sweep(probe, lo, hi)` for every slab (in parallel when the pool
/// has lanes), each against its own cold XeonHierarchy, then merges the
/// integer counters in slab order.
template <class SlabSweep>
CountedSweep run_counted_slabs(ccaperf::ThreadPool& pool, int outer,
                               SlabSweep&& sweep) {
  std::vector<SlabCounts> slabs(static_cast<std::size_t>(kCounterShards));
  auto run_slab = [&](std::size_t s, int) {
    const int lo = slab_lo(outer, static_cast<int>(s));
    const int hi = slab_lo(outer, static_cast<int>(s) + 1);
    if (lo == hi) return;
    hwc::XeonHierarchy mem;  // cold per slab: totals don't depend on lanes
    hwc::CacheProbe probe(&mem.l1);
    slabs[s].kernel = sweep(probe, lo, hi);
    slabs[s].probe = probe.counts();
    slabs[s].l1_misses = mem.l1.counters().misses;
    slabs[s].l2_misses = mem.l2.counters().misses;
  };
  if (pool.size() == 1) {
    for (std::size_t s = 0; s < slabs.size(); ++s) run_slab(s, 0);
  } else {
    pool.parallel_for(slabs.size(), run_slab);
  }
  CountedSweep out;
  for (const SlabCounts& s : slabs) {
    out.kernel += s.kernel;
    out.probe.loads += s.probe.loads;
    out.probe.stores += s.probe.stores;
    out.probe.flops += s.probe.flops;
    out.l1_misses += s.l1_misses;
    out.l2_misses += s.l2_misses;
  }
  return out;
}

}  // namespace

CountedSweep compute_states_counted(ccaperf::ThreadPool& pool,
                                    const amr::PatchData<double>& U,
                                    const amr::Box& interior, Dir dir,
                                    const GasModel& gas, Array2& left,
                                    Array2& right) {
  check_states_shapes(U, interior, dir, left, right);
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  return run_counted_slabs(pool, outer,
                           [&](hwc::CacheProbe& probe, int lo, int hi) {
    return compute_states_range(U, interior, dir, gas, left, right, probe, lo,
                                hi);
  });
}

CountedSweep efm_flux_sweep_counted(ccaperf::ThreadPool& pool,
                                    const Array2& left, const Array2& right,
                                    Dir dir, const GasModel& gas, Array2& flux) {
  check_flux_shapes(left, flux, "efm_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  return run_counted_slabs(pool, outer,
                           [&](hwc::CacheProbe& probe, int lo, int hi) {
    return efm_flux_range(left, right, dir, gas, flux, probe, lo, hi);
  });
}

CountedSweep godunov_flux_sweep_counted(ccaperf::ThreadPool& pool,
                                        const Array2& left, const Array2& right,
                                        Dir dir, const GasModel& gas,
                                        Array2& flux) {
  check_flux_shapes(left, flux, "godunov_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  return run_counted_slabs(pool, outer,
                           [&](hwc::CacheProbe& probe, int lo, int hi) {
    return godunov_flux_range(left, right, dir, gas, flux, probe, lo, hi);
  });
}

// Explicit instantiations: the production (NullProbe) and cache-traced
// (CacheProbe) configurations, plus the scalar-replay reference
// (ScalarReplayProbe) that benches compare the batched fast path against.
template KernelCounts compute_states<hwc::NullProbe>(const amr::PatchData<double>&,
                                                     const amr::Box&, Dir,
                                                     const GasModel&, Array2&,
                                                     Array2&, hwc::NullProbe&);
template KernelCounts compute_states<hwc::CacheProbe>(const amr::PatchData<double>&,
                                                      const amr::Box&, Dir,
                                                      const GasModel&, Array2&,
                                                      Array2&, hwc::CacheProbe&);
template KernelCounts efm_flux_sweep<hwc::NullProbe>(const Array2&, const Array2&,
                                                     Dir, const GasModel&, Array2&,
                                                     hwc::NullProbe&);
template KernelCounts efm_flux_sweep<hwc::CacheProbe>(const Array2&, const Array2&,
                                                      Dir, const GasModel&, Array2&,
                                                      hwc::CacheProbe&);
template KernelCounts godunov_flux_sweep<hwc::NullProbe>(const Array2&, const Array2&,
                                                         Dir, const GasModel&,
                                                         Array2&, hwc::NullProbe&);
template KernelCounts godunov_flux_sweep<hwc::CacheProbe>(const Array2&,
                                                          const Array2&, Dir,
                                                          const GasModel&, Array2&,
                                                          hwc::CacheProbe&);
template KernelCounts compute_states<hwc::ScalarReplayProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&, Array2&,
    Array2&, hwc::ScalarReplayProbe&);
template KernelCounts efm_flux_sweep<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&);
template KernelCounts godunov_flux_sweep<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&);

}  // namespace euler
