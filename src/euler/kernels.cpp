#include "euler/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <vector>

#include "euler/kernels_isa.hpp"
#include "euler/kernels_ranges.hpp"
#include "euler/simd.hpp"
#include "hwc/cache_sim.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace euler {

namespace {

using detail::outer_extent;

// The SIMD TUs instantiate the vector kernels for exactly these probe
// types; anything else (one-off test probes) takes the scalar reference.
template <class Probe>
inline constexpr bool kSimdDispatchable =
    std::is_same_v<Probe, hwc::NullProbe> ||
    std::is_same_v<Probe, hwc::CacheProbe> ||
    std::is_same_v<Probe, hwc::ScalarReplayProbe>;

/// Range-level dispatch: every public entry point (serial, _mt, _counted)
/// funnels through here, so the active ISA level applies uniformly.
template <class Probe>
KernelCounts states_range(const amr::PatchData<double>& U,
                          const amr::Box& interior, Dir dir,
                          const GasModel& gas, Array2& left, Array2& right,
                          Probe& probe, int o_begin, int o_end) {
  if constexpr (kSimdDispatchable<Probe>) {
    switch (simd::active()) {
#if defined(CCAPERF_SIMD_AVX512)
      case simd::Isa::avx512:
        return detail::states_range_avx512(U, interior, dir, gas, left, right,
                                           probe, o_begin, o_end);
#endif
#if defined(CCAPERF_SIMD_AVX2)
      case simd::Isa::avx2:
        return detail::states_range_avx2(U, interior, dir, gas, left, right,
                                         probe, o_begin, o_end);
#endif
      default:
        break;
    }
  }
  return detail::states_range_scalar(U, interior, dir, gas, left, right, probe,
                                     o_begin, o_end);
}

template <class Probe>
KernelCounts efm_range(const Array2& left, const Array2& right, Dir dir,
                       const GasModel& gas, Array2& flux, Probe& probe,
                       int o_begin, int o_end) {
  if constexpr (kSimdDispatchable<Probe>) {
    switch (simd::active()) {
#if defined(CCAPERF_SIMD_AVX512)
      case simd::Isa::avx512:
        return detail::efm_range_avx512(left, right, dir, gas, flux, probe,
                                        o_begin, o_end);
#endif
#if defined(CCAPERF_SIMD_AVX2)
      case simd::Isa::avx2:
        return detail::efm_range_avx2(left, right, dir, gas, flux, probe,
                                      o_begin, o_end);
#endif
      default:
        break;
    }
  }
  return detail::efm_range_scalar(left, right, dir, gas, flux, probe, o_begin,
                                  o_end);
}

// Godunov's exact Riemann solve iterates data-dependently per face, so it
// stays scalar at every ISA level.
template <class Probe>
KernelCounts godunov_range(const Array2& left, const Array2& right, Dir dir,
                           const GasModel& gas, Array2& flux, Probe& probe,
                           int o_begin, int o_end) {
  return detail::godunov_range_scalar(left, right, dir, gas, flux, probe,
                                      o_begin, o_end);
}

void check_states_shapes(const amr::PatchData<double>& U,
                         const amr::Box& interior, Dir dir, const Array2& left,
                         const Array2& right) {
  CCAPERF_REQUIRE(U.nghost() >= 2, "compute_states: need >= 2 ghost cells");
  int nx = 0, ny = 0;
  face_dims(interior, dir, nx, ny);
  CCAPERF_REQUIRE(left.nx() == nx && left.ny() == ny && left.ncomp() == kNcomp &&
                      right.nx() == nx && right.ny() == ny &&
                      right.ncomp() == kNcomp,
                  "compute_states: face array shape mismatch");
}

void check_flux_shapes(const Array2& left, const Array2& flux,
                       const char* what) {
  CCAPERF_REQUIRE(flux.nx() == left.nx() && flux.ny() == left.ny() &&
                      flux.ncomp() == kNcomp,
                  std::string(what) + ": flux array shape mismatch");
}

}  // namespace

template <class Probe>
KernelCounts compute_states(const amr::PatchData<double>& U,
                            const amr::Box& interior, Dir dir,
                            const GasModel& gas, Array2& left, Array2& right,
                            Probe& probe) {
  check_states_shapes(U, interior, dir, left, right);
  return states_range(U, interior, dir, gas, left, right, probe, 0,
                      outer_extent(left.nx(), left.ny(), dir));
}

template <class Probe>
KernelCounts efm_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe) {
  check_flux_shapes(left, flux, "efm_flux_sweep");
  return efm_range(left, right, dir, gas, flux, probe, 0,
                   outer_extent(left.nx(), left.ny(), dir));
}

template <class Probe>
KernelCounts godunov_flux_sweep(const Array2& left, const Array2& right, Dir dir,
                                const GasModel& gas, Array2& flux, Probe& probe) {
  check_flux_shapes(left, flux, "godunov_flux_sweep");
  return godunov_range(left, right, dir, gas, flux, probe, 0,
                       outer_extent(left.nx(), left.ny(), dir));
}

namespace {

// Face-normal-frame flux components -> conserved components:
// x faces: (mass, mom_n, mom_t, E, phi) -> (rho, mx, my, E, rphi)
// y faces: mom_n is y momentum, mom_t is x momentum.
constexpr int x_map[kNcomp] = {kRho, kMx, kMy, kE, kRphi};
constexpr int y_map[kNcomp] = {kRho, kMy, kMx, kE, kRphi};

/// One component's divergence rows [jj_begin, jj_end). Every dudt cell is
/// written exactly once from already-final face fluxes, so any row
/// partition produces bit-identical output.
void flux_divergence_rows(const Array2& fx, const Array2& fy,
                          const amr::Box& interior, double inv_dx,
                          double inv_dy, amr::PatchData<double>& dudt, int c,
                          int jj_begin, int jj_end) {
  const int W = interior.width();
  for (int jj = jj_begin; jj < jj_end; ++jj) {
    const int j = interior.lo().j + jj;
    for (int ii = 0; ii < W; ++ii) {
      const int i = interior.lo().i + ii;
      double div = 0.0;
      // Find which face-frame component feeds conserved component c.
      for (int k = 0; k < kNcomp; ++k) {
        if (x_map[k] == c) div += (fx(ii + 1, jj, k) - fx(ii, jj, k)) * inv_dx;
        if (y_map[k] == c) div += (fy(ii, jj + 1, k) - fy(ii, jj, k)) * inv_dy;
      }
      dudt(i, j, c) = -div;
    }
  }
}

void check_divergence_shapes(const Array2& fx, const Array2& fy,
                             const amr::Box& interior) {
  const int W = interior.width(), H = interior.height();
  CCAPERF_REQUIRE(fx.nx() == W + 1 && fx.ny() == H && fy.nx() == W &&
                      fy.ny() == H + 1,
                  "flux_divergence: face array shape mismatch");
}

}  // namespace

void flux_divergence(const Array2& fx, const Array2& fy, const amr::Box& interior,
                     double dx, double dy, amr::PatchData<double>& dudt) {
  check_divergence_shapes(fx, fy, interior);
  const double inv_dx = 1.0 / dx, inv_dy = 1.0 / dy;
  for (int c = 0; c < kNcomp; ++c)
    flux_divergence_rows(fx, fy, interior, inv_dx, inv_dy, dudt, c, 0,
                         interior.height());
}

double max_wave_speed(const amr::PatchData<double>& U, const amr::Box& interior,
                      const GasModel& gas) {
  double vmax = 0.0;
  double q[kNcomp];
  for (int j = interior.lo().j; j <= interior.hi().j; ++j) {
    for (int i = interior.lo().i; i <= interior.hi().i; ++i) {
      for (int c = 0; c < kNcomp; ++c) q[c] = U(i, j, c);
      const Prim w = cons_to_prim(q, gas);
      const double c0 = sound_speed(w, gas);
      vmax = std::max(vmax, std::max(std::abs(w.u), std::abs(w.v)) + c0);
    }
  }
  return vmax;
}

void total_conserved(const amr::PatchData<double>& U, const amr::Box& interior,
                     double totals[kNcomp]) {
  for (int c = 0; c < kNcomp; ++c) totals[c] = 0.0;
  for (int j = interior.lo().j; j <= interior.hi().j; ++j)
    for (int i = interior.lo().i; i <= interior.hi().i; ++i)
      for (int c = 0; c < kNcomp; ++c) totals[c] += U(i, j, c);
}

// --- RK2 update kernels ------------------------------------------------------

void rk2_axpy(double* y, const double* x, double a, std::size_t n) {
  switch (simd::active()) {
#if defined(CCAPERF_SIMD_AVX512)
    case simd::Isa::avx512:
      detail::rk2_axpy_avx512(y, x, a, n);
      return;
#endif
#if defined(CCAPERF_SIMD_AVX2)
    case simd::Isa::avx2:
      detail::rk2_axpy_avx2(y, x, a, n);
      return;
#endif
    default:
      break;
  }
  for (std::size_t k = 0; k < n; ++k) y[k] += a * x[k];
}

void rk2_heun_average(double* u, const double* u_old, const double* dudt,
                      double dt, std::size_t n) {
  switch (simd::active()) {
#if defined(CCAPERF_SIMD_AVX512)
    case simd::Isa::avx512:
      detail::rk2_heun_avx512(u, u_old, dudt, dt, n);
      return;
#endif
#if defined(CCAPERF_SIMD_AVX2)
    case simd::Isa::avx2:
      detail::rk2_heun_avx2(u, u_old, dudt, dt, n);
      return;
#endif
    default:
      break;
  }
  for (std::size_t k = 0; k < n; ++k)
    u[k] = 0.5 * (u_old[k] + u[k] + dt * dudt[k]);
}

// --- thread-parallel sweeps --------------------------------------------------

namespace {

/// Per-lane fold slot, padded so lanes never share a cache line.
struct alignas(64) LaneCounts {
  KernelCounts c;
};

KernelCounts sum_lanes(const std::vector<LaneCounts>& lanes) {
  KernelCounts total;
  for (const LaneCounts& l : lanes) total += l.c;
  return total;
}

}  // namespace

KernelCounts compute_states_mt(ccaperf::ThreadPool& pool,
                               const amr::PatchData<double>& U,
                               const amr::Box& interior, Dir dir,
                               const GasModel& gas, Array2& left,
                               Array2& right) {
  hwc::NullProbe probe;
  if (pool.size() == 1)
    return compute_states(U, interior, dir, gas, left, right, probe);
  check_states_shapes(U, interior, dir, left, right);
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  std::vector<LaneCounts> lanes(static_cast<std::size_t>(pool.size()));
  pool.parallel_for(static_cast<std::size_t>(outer), [&](std::size_t o, int l) {
    hwc::NullProbe p;
    lanes[static_cast<std::size_t>(l)].c += states_range(
        U, interior, dir, gas, left, right, p, static_cast<int>(o),
        static_cast<int>(o) + 1);
  });
  return sum_lanes(lanes);
}

KernelCounts efm_flux_sweep_mt(ccaperf::ThreadPool& pool, const Array2& left,
                               const Array2& right, Dir dir, const GasModel& gas,
                               Array2& flux) {
  hwc::NullProbe probe;
  if (pool.size() == 1)
    return efm_flux_sweep(left, right, dir, gas, flux, probe);
  check_flux_shapes(left, flux, "efm_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  std::vector<LaneCounts> lanes(static_cast<std::size_t>(pool.size()));
  pool.parallel_for(static_cast<std::size_t>(outer), [&](std::size_t o, int l) {
    hwc::NullProbe p;
    lanes[static_cast<std::size_t>(l)].c +=
        efm_range(left, right, dir, gas, flux, p, static_cast<int>(o),
                  static_cast<int>(o) + 1);
  });
  return sum_lanes(lanes);
}

KernelCounts godunov_flux_sweep_mt(ccaperf::ThreadPool& pool, const Array2& left,
                                   const Array2& right, Dir dir,
                                   const GasModel& gas, Array2& flux) {
  hwc::NullProbe probe;
  if (pool.size() == 1)
    return godunov_flux_sweep(left, right, dir, gas, flux, probe);
  check_flux_shapes(left, flux, "godunov_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  std::vector<LaneCounts> lanes(static_cast<std::size_t>(pool.size()));
  pool.parallel_for(static_cast<std::size_t>(outer), [&](std::size_t o, int l) {
    hwc::NullProbe p;
    lanes[static_cast<std::size_t>(l)].c +=
        godunov_range(left, right, dir, gas, flux, p, static_cast<int>(o),
                      static_cast<int>(o) + 1);
  });
  return sum_lanes(lanes);
}

void flux_divergence_mt(ccaperf::ThreadPool& pool, const Array2& fx,
                        const Array2& fy, const amr::Box& interior, double dx,
                        double dy, amr::PatchData<double>& dudt) {
  if (pool.size() == 1) {
    flux_divergence(fx, fy, interior, dx, dy, dudt);
    return;
  }
  check_divergence_shapes(fx, fy, interior);
  const double inv_dx = 1.0 / dx, inv_dy = 1.0 / dy;
  const int H = interior.height();
  // Flatten (component, row) so short patches still spread across lanes.
  pool.parallel_for(static_cast<std::size_t>(kNcomp) *
                        static_cast<std::size_t>(H),
                    [&](std::size_t t, int) {
    const int c = static_cast<int>(t) / H;
    const int jj = static_cast<int>(t) % H;
    flux_divergence_rows(fx, fy, interior, inv_dx, inv_dy, dudt, c, jj, jj + 1);
  });
}

// --- deterministic counted sweeps --------------------------------------------

namespace {

/// One counter shard's result slot (padded: slabs run on different lanes).
struct alignas(64) SlabCounts {
  KernelCounts kernel;
  hwc::ProbeCounts probe;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
};

/// Fixed slab bounds: slab s of kCounterShards covers outer indices
/// [outer*s/kShards, outer*(s+1)/kShards) — a function of the problem
/// size only, never of the lane count.
inline int slab_lo(int outer, int s) {
  return static_cast<int>((static_cast<long long>(outer) * s) / kCounterShards);
}

/// Runs `sweep(probe, lo, hi)` for every slab (in parallel when the pool
/// has lanes), each against its own cold XeonHierarchy, then merges the
/// integer counters in slab order. Under CCAPERF_CACHESIM_SAMPLE > 1 each
/// slab's hierarchy samples 1-in-stride access batches (seeded by the slab
/// index, so the phases stay deterministic and slab-stable) and the merged
/// miss counters are the scaled estimates.
/// Window size for a slab's sampled hierarchy: the largest power of two
/// (capped at the global default) that still leaves ~2x kCounterShards
/// windows in the slab. Slab seeds are the shard indices 0..7, so every
/// phase (seed % stride <= 7) then lands on an existing window and each
/// slab samples at least one; bigger windows are strictly better beyond
/// that (boundary cold-start is the dominant bias, and scaled_counters
/// rescales by the realized fraction, not the nominal stride).
/// `approx_batches` is a deliberate underestimate (3 runs per face — the
/// flux kernels' floor).
unsigned slab_burst_log2(std::uint64_t approx_batches) {
  unsigned b = 6;
  while (b < hwc::kDefaultSampleBurstLog2 &&
         (approx_batches >> (b + 1)) >= 2ull * kCounterShards)
    ++b;
  return b;
}

template <class SlabSweep>
CountedSweep run_counted_slabs(ccaperf::ThreadPool& pool, int outer, int inner,
                               SlabSweep&& sweep) {
  const std::uint32_t sample = hwc::env_sample_stride();
  std::vector<SlabCounts> slabs(static_cast<std::size_t>(kCounterShards));
  auto run_slab = [&](std::size_t s, int) {
    const int lo = slab_lo(outer, static_cast<int>(s));
    const int hi = slab_lo(outer, static_cast<int>(s) + 1);
    if (lo == hi) return;
    hwc::XeonHierarchy mem;  // cold per slab: totals don't depend on lanes
    if (sample > 1) {
      const auto batches = static_cast<std::uint64_t>(hi - lo) *
                           static_cast<std::uint64_t>(inner) * 3;
      mem.l1.set_sample_stride(sample, s, slab_burst_log2(batches));
    }
    hwc::CacheProbe probe(&mem.l1);
    slabs[s].kernel = sweep(probe, lo, hi);
    slabs[s].probe = probe.counts();
    slabs[s].l1_misses = mem.l1.scaled_counters().misses;
    slabs[s].l2_misses = mem.l2.scaled_counters().misses;
  };
  if (pool.size() == 1) {
    for (std::size_t s = 0; s < slabs.size(); ++s) run_slab(s, 0);
  } else {
    pool.parallel_for(slabs.size(), run_slab);
  }
  CountedSweep out;
  for (const SlabCounts& s : slabs) {
    out.kernel += s.kernel;
    out.probe.loads += s.probe.loads;
    out.probe.stores += s.probe.stores;
    out.probe.flops += s.probe.flops;
    out.l1_misses += s.l1_misses;
    out.l2_misses += s.l2_misses;
  }
  return out;
}

}  // namespace

CountedSweep compute_states_counted(ccaperf::ThreadPool& pool,
                                    const amr::PatchData<double>& U,
                                    const amr::Box& interior, Dir dir,
                                    const GasModel& gas, Array2& left,
                                    Array2& right) {
  check_states_shapes(U, interior, dir, left, right);
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  const int inner = dir == Dir::x ? left.nx() : left.ny();
  return run_counted_slabs(pool, outer, inner,
                           [&](hwc::CacheProbe& probe, int lo, int hi) {
    return states_range(U, interior, dir, gas, left, right, probe, lo, hi);
  });
}

CountedSweep efm_flux_sweep_counted(ccaperf::ThreadPool& pool,
                                    const Array2& left, const Array2& right,
                                    Dir dir, const GasModel& gas, Array2& flux) {
  check_flux_shapes(left, flux, "efm_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  const int inner = dir == Dir::x ? left.nx() : left.ny();
  return run_counted_slabs(pool, outer, inner,
                           [&](hwc::CacheProbe& probe, int lo, int hi) {
    return efm_range(left, right, dir, gas, flux, probe, lo, hi);
  });
}

CountedSweep godunov_flux_sweep_counted(ccaperf::ThreadPool& pool,
                                        const Array2& left, const Array2& right,
                                        Dir dir, const GasModel& gas,
                                        Array2& flux) {
  check_flux_shapes(left, flux, "godunov_flux_sweep");
  const int outer = outer_extent(left.nx(), left.ny(), dir);
  const int inner = dir == Dir::x ? left.nx() : left.ny();
  return run_counted_slabs(pool, outer, inner,
                           [&](hwc::CacheProbe& probe, int lo, int hi) {
    return godunov_range(left, right, dir, gas, flux, probe, lo, hi);
  });
}

// Explicit instantiations: the production (NullProbe) and cache-traced
// (CacheProbe) configurations, plus the scalar-replay reference
// (ScalarReplayProbe) that benches compare the batched fast path against.
template KernelCounts compute_states<hwc::NullProbe>(const amr::PatchData<double>&,
                                                     const amr::Box&, Dir,
                                                     const GasModel&, Array2&,
                                                     Array2&, hwc::NullProbe&);
template KernelCounts compute_states<hwc::CacheProbe>(const amr::PatchData<double>&,
                                                      const amr::Box&, Dir,
                                                      const GasModel&, Array2&,
                                                      Array2&, hwc::CacheProbe&);
template KernelCounts efm_flux_sweep<hwc::NullProbe>(const Array2&, const Array2&,
                                                     Dir, const GasModel&, Array2&,
                                                     hwc::NullProbe&);
template KernelCounts efm_flux_sweep<hwc::CacheProbe>(const Array2&, const Array2&,
                                                      Dir, const GasModel&, Array2&,
                                                      hwc::CacheProbe&);
template KernelCounts godunov_flux_sweep<hwc::NullProbe>(const Array2&, const Array2&,
                                                         Dir, const GasModel&,
                                                         Array2&, hwc::NullProbe&);
template KernelCounts godunov_flux_sweep<hwc::CacheProbe>(const Array2&,
                                                          const Array2&, Dir,
                                                          const GasModel&, Array2&,
                                                          hwc::CacheProbe&);
template KernelCounts compute_states<hwc::ScalarReplayProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&, Array2&,
    Array2&, hwc::ScalarReplayProbe&);
template KernelCounts efm_flux_sweep<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&);
template KernelCounts godunov_flux_sweep<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&);
template KernelCounts compute_states<hwc::StackDistProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&, Array2&,
    Array2&, hwc::StackDistProbe&);
template KernelCounts efm_flux_sweep<hwc::StackDistProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::StackDistProbe&);

}  // namespace euler
