#pragma once
// Runtime SIMD dispatch for the euler sweep kernels (DESIGN.md §11).
//
// The kernels keep one scalar implementation as the deterministic
// reference; per-ISA translation units (kernels_avx2.cpp, kernels_avx512.cpp)
// compile the same vector template at different widths. Which one runs is
// decided once at startup from cpuid (`__builtin_cpu_supports`) intersected
// with the `CCAPERF_SIMD` environment knob:
//
//   CCAPERF_SIMD=native   highest ISA both compiled in and supported (default)
//   CCAPERF_SIMD=scalar   force the scalar reference path
//   CCAPERF_SIMD=avx2     cap dispatch at AVX2
//   CCAPERF_SIMD=avx512   cap dispatch at AVX-512
//
// Every ISA level produces bit-identical faces, fluxes and traced cache
// counters (the vector lanes evaluate exactly the scalar expression DAG,
// FMA contraction is disabled in the SIMD TUs, and transcendentals are
// per-lane libm calls), so switching levels is a pure speed knob — the CI
// dispatch-matrix stage asserts fig01 densities match byte-for-byte across
// levels. `set_isa` exists for tests and benches; it clamps to what the
// host supports.

#include <string_view>

namespace euler::simd {

enum class Isa { scalar = 0, avx2 = 1, avx512 = 2 };

/// Highest ISA level this binary can run here: compiled-in TUs ∩ cpuid.
Isa highest_supported();

/// The level sweeps currently dispatch to (env-selected at first use).
Isa active();

/// Overrides the dispatch level (clamped to highest_supported()); returns
/// the level actually installed. Not thread-safe against in-flight sweeps —
/// call it from test/bench setup only.
Isa set_isa(Isa isa);

const char* isa_name(Isa isa);

/// Parses "scalar" / "avx2" / "avx512" / "native"; false on anything else.
bool parse_isa(std::string_view text, Isa& out, bool& native);

}  // namespace euler::simd
