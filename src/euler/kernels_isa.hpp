#pragma once
// Entry points of the per-ISA SIMD translation units. Declarations only:
// definitions and explicit instantiations (NullProbe / CacheProbe /
// ScalarReplayProbe) live in kernels_avx2.cpp / kernels_avx512.cpp, which
// CMake compiles with the matching -m flags (and -ffp-contract=off) only
// when the compiler supports them; the CCAPERF_SIMD_AVX2/AVX512 macros
// tell kernels.cpp which cases exist to dispatch to.

#include <cstddef>

#include "euler/kernels.hpp"

namespace euler::detail {

template <class Probe>
KernelCounts states_range_avx2(const amr::PatchData<double>& U,
                               const amr::Box& interior, Dir dir,
                               const GasModel& gas, Array2& left, Array2& right,
                               Probe& probe, int o_begin, int o_end);
template <class Probe>
KernelCounts efm_range_avx2(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe,
                            int o_begin, int o_end);
void rk2_axpy_avx2(double* y, const double* x, double a, std::size_t n);
void rk2_heun_avx2(double* u, const double* u_old, const double* dudt,
                   double dt, std::size_t n);

template <class Probe>
KernelCounts states_range_avx512(const amr::PatchData<double>& U,
                                 const amr::Box& interior, Dir dir,
                                 const GasModel& gas, Array2& left,
                                 Array2& right, Probe& probe, int o_begin,
                                 int o_end);
template <class Probe>
KernelCounts efm_range_avx512(const Array2& left, const Array2& right, Dir dir,
                              const GasModel& gas, Array2& flux, Probe& probe,
                              int o_begin, int o_end);
void rk2_axpy_avx512(double* y, const double* x, double a, std::size_t n);
void rk2_heun_avx512(double* u, const double* u_old, const double* dudt,
                     double dt, std::size_t n);

}  // namespace euler::detail
