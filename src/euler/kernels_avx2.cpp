// AVX2 (W=4 doubles) instantiation of the vector sweep kernels. Compiled
// with -mavx2 -ffp-contract=off (src/euler/CMakeLists.txt) — the contract
// flag is load-bearing: a contracted FMA would round once where the scalar
// reference rounds twice and break cross-ISA bit-identity.

#include "euler/kernels_isa.hpp"
#include "euler/kernels_simd_impl.hpp"

namespace euler::detail {

template <class Probe>
KernelCounts states_range_avx2(const amr::PatchData<double>& U,
                               const amr::Box& interior, Dir dir,
                               const GasModel& gas, Array2& left, Array2& right,
                               Probe& probe, int o_begin, int o_end) {
  return states_range_vec<4>(U, interior, dir, gas, left, right, probe,
                             o_begin, o_end);
}

template <class Probe>
KernelCounts efm_range_avx2(const Array2& left, const Array2& right, Dir dir,
                            const GasModel& gas, Array2& flux, Probe& probe,
                            int o_begin, int o_end) {
  return efm_range_vec<4>(left, right, dir, gas, flux, probe, o_begin, o_end);
}

void rk2_axpy_avx2(double* y, const double* x, double a, std::size_t n) {
  rk2_axpy_vec<4>(y, x, a, n);
}

void rk2_heun_avx2(double* u, const double* u_old, const double* dudt,
                   double dt, std::size_t n) {
  rk2_heun_vec<4>(u, u_old, dudt, dt, n);
}

template KernelCounts states_range_avx2<hwc::NullProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&,
    Array2&, Array2&, hwc::NullProbe&, int, int);
template KernelCounts states_range_avx2<hwc::CacheProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&,
    Array2&, Array2&, hwc::CacheProbe&, int, int);
template KernelCounts states_range_avx2<hwc::ScalarReplayProbe>(
    const amr::PatchData<double>&, const amr::Box&, Dir, const GasModel&,
    Array2&, Array2&, hwc::ScalarReplayProbe&, int, int);
template KernelCounts efm_range_avx2<hwc::NullProbe>(const Array2&,
                                                     const Array2&, Dir,
                                                     const GasModel&, Array2&,
                                                     hwc::NullProbe&, int, int);
template KernelCounts efm_range_avx2<hwc::CacheProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::CacheProbe&, int, int);
template KernelCounts efm_range_avx2<hwc::ScalarReplayProbe>(
    const Array2&, const Array2&, Dir, const GasModel&, Array2&,
    hwc::ScalarReplayProbe&, int, int);

}  // namespace euler::detail
