#pragma once
// Equilibrium Flux Method (Pullin 1980) single-face flux.
//
// EFM is a kinetic flux-vector splitting: the flux through a face is the
// sum of one-sided half-range Maxwellian moments of the left and right
// states, F = F+(L) + F-(R). The formulas are closed form (one erf and one
// exp per side), so its cost per element is *constant* — which is exactly
// why the paper finds EFMFlux cheaper and less variable than the iterative
// GodunovFlux (Figs. 7-8), at the price of more dissipation (the Quality
// of Service trade-off discussed in §5).
//
// States are given in the face-normal frame: `un` normal velocity,
// `ut` transverse. Output flux components: (mass, normal momentum,
// transverse momentum, energy, phi mass).

#include <cmath>
#include <cstdint>

#include "euler/state.hpp"

namespace euler {

struct FaceFlux {
  double mass = 0.0;
  double mom_n = 0.0;
  double mom_t = 0.0;
  double energy = 0.0;
  double phi_mass = 0.0;
};

/// FLOP cost models the probes charge per face (kernels.cpp and the
/// cache/model benches must agree on these, so they live with the flux
/// math): EFM is two half-fluxes (erf + exp + moments, constant cost);
/// Godunov is a fixed sampling cost plus a per-Newton-iteration term.
inline constexpr std::uint64_t kEfmFlopsPerFace = 120;
inline constexpr std::uint64_t kGodunovFlopsPerFace = 60;
inline constexpr std::uint64_t kGodunovFlopsPerIteration = 45;

namespace detail {

/// Half-range moment flux of one Maxwellian state. `sign` = +1 for F+
/// (left state, right-going molecules), -1 for F- (right state).
inline void efm_half_flux(double rho, double un, double ut, double p, double phi,
                          double gamma, double sign, FaceFlux& f) {
  const double theta = p / rho;                       // RT
  const double inv_sqrt_2theta = 1.0 / std::sqrt(2.0 * theta);
  const double s = un * inv_sqrt_2theta;
  const double A = 0.5 * (1.0 + sign * std::erf(s));  // directed mass fraction
  const double G =
      std::sqrt(theta / (2.0 * M_PI)) * std::exp(-un * un / (2.0 * theta));

  const double mass = rho * (un * A + sign * G);
  const double mom = rho * ((un * un + theta) * A + sign * un * G);
  // Specific energy advected passively: internal minus the normal-direction
  // translational part (already in the v^3 moment) plus transverse kinetic.
  const double e_rest = theta / (gamma - 1.0) - 0.5 * theta + 0.5 * ut * ut;
  const double energy =
      0.5 * rho * ((un * un * un + 3.0 * un * theta) * A +
                   sign * (un * un + 2.0 * theta) * G) +
      e_rest * mass;

  f.mass += mass;
  f.mom_n += mom;
  f.mom_t += ut * mass;
  f.energy += energy;
  f.phi_mass += phi * mass;
}

}  // namespace detail

/// Full EFM face flux from left/right primitive states (face-normal frame).
inline FaceFlux efm_face_flux(const Prim& left, const Prim& right,
                              const GasModel& gas) {
  FaceFlux f;
  detail::efm_half_flux(left.rho, left.u, left.v, left.p, left.phi,
                        gas.gamma_of(left.phi), +1.0, f);
  detail::efm_half_flux(right.rho, right.u, right.v, right.p, right.phi,
                        gas.gamma_of(right.phi), -1.0, f);
  return f;
}

/// Godunov face flux: analytic Euler flux of the sampled interface state
/// (face-normal frame).
inline FaceFlux godunov_face_flux(const Prim& w, const GasModel& gas) {
  const double gamma = gas.gamma_of(w.phi);
  const double E =
      w.p / (gamma - 1.0) + 0.5 * w.rho * (w.u * w.u + w.v * w.v);
  FaceFlux f;
  f.mass = w.rho * w.u;
  f.mom_n = w.rho * w.u * w.u + w.p;
  f.mom_t = w.rho * w.u * w.v;
  f.energy = w.u * (E + w.p);
  f.phi_mass = w.rho * w.u * w.phi;
  return f;
}

}  // namespace euler
