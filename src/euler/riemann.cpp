#include "euler/riemann.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace euler {

namespace {

/// Toro's pressure function f_K(p) and derivative for one side.
void pressure_fn(double p, double rho, double pk, double a, double g,
                 double& f, double& fd) {
  if (p > pk) {
    // Shock branch.
    const double A = 2.0 / ((g + 1.0) * rho);
    const double B = (g - 1.0) / (g + 1.0) * pk;
    const double sqrt_term = std::sqrt(A / (B + p));
    f = (p - pk) * sqrt_term;
    fd = sqrt_term * (1.0 - 0.5 * (p - pk) / (B + p));
  } else {
    // Rarefaction branch.
    const double pr = p / pk;
    f = 2.0 * a / (g - 1.0) * (std::pow(pr, (g - 1.0) / (2.0 * g)) - 1.0);
    fd = std::pow(pr, -(g + 1.0) / (2.0 * g)) / (rho * a);
  }
}

}  // namespace

RiemannResult exact_riemann(const Prim& left, const Prim& right,
                            const GasModel& gas, const RiemannParams& params) {
  CCAPERF_REQUIRE(left.rho > 0.0 && right.rho > 0.0 && left.p > 0.0 && right.p > 0.0,
                  "exact_riemann: non-physical input state");
  const double gl = gas.gamma_of(left.phi);
  const double gr = gas.gamma_of(right.phi);
  const double al = std::sqrt(gl * left.p / left.rho);
  const double ar = std::sqrt(gr * right.p / right.rho);
  const double du = right.u - left.u;

  // PVRS initial guess, floored.
  double p = 0.5 * (left.p + right.p) -
             0.125 * du * (left.rho + right.rho) * (al + ar);
  p = std::max(p, 1e-12);

  int iter = 0;
  for (; iter < params.max_iter; ++iter) {
    double fl, fld, fr, frd;
    pressure_fn(p, left.rho, left.p, al, gl, fl, fld);
    pressure_fn(p, right.rho, right.p, ar, gr, fr, frd);
    const double delta = (fl + fr + du) / (fld + frd);
    const double pnew = std::max(p - delta, 1e-12);
    const double change = 2.0 * std::abs(pnew - p) / (pnew + p);
    p = pnew;
    if (change < params.tol) {
      ++iter;
      break;
    }
  }

  double fl, fld, fr, frd;
  pressure_fn(p, left.rho, left.p, al, gl, fl, fld);
  pressure_fn(p, right.rho, right.p, ar, gr, fr, frd);
  const double ustar = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);

  // Sample at x/t = 0.
  Prim w;
  if (ustar >= 0.0) {
    // Interface lies left of the contact: use the left wave family.
    w.v = left.v;
    w.phi = left.phi;
    if (p > left.p) {
      // Left shock.
      const double ratio = p / left.p;
      const double sl =
          left.u - al * std::sqrt((gl + 1.0) / (2.0 * gl) * ratio +
                                  (gl - 1.0) / (2.0 * gl));
      if (sl >= 0.0) {
        w = left;
      } else {
        const double gm = (gl - 1.0) / (gl + 1.0);
        w.rho = left.rho * (ratio + gm) / (gm * ratio + 1.0);
        w.u = ustar;
        w.p = p;
      }
    } else {
      // Left rarefaction.
      const double head = left.u - al;
      const double astar = al * std::pow(p / left.p, (gl - 1.0) / (2.0 * gl));
      const double tail = ustar - astar;
      if (head >= 0.0) {
        w = left;
      } else if (tail <= 0.0) {
        w.rho = left.rho * std::pow(p / left.p, 1.0 / gl);
        w.u = ustar;
        w.p = p;
      } else {
        // Inside the fan at x/t = 0.
        const double factor =
            2.0 / (gl + 1.0) + (gl - 1.0) / ((gl + 1.0) * al) * left.u;
        w.rho = left.rho * std::pow(factor, 2.0 / (gl - 1.0));
        w.u = 2.0 / (gl + 1.0) * (al + (gl - 1.0) / 2.0 * left.u);
        w.p = left.p * std::pow(factor, 2.0 * gl / (gl - 1.0));
      }
    }
  } else {
    // Right wave family.
    w.v = right.v;
    w.phi = right.phi;
    if (p > right.p) {
      // Right shock.
      const double ratio = p / right.p;
      const double sr =
          right.u + ar * std::sqrt((gr + 1.0) / (2.0 * gr) * ratio +
                                   (gr - 1.0) / (2.0 * gr));
      if (sr <= 0.0) {
        w = right;
      } else {
        const double gm = (gr - 1.0) / (gr + 1.0);
        w.rho = right.rho * (ratio + gm) / (gm * ratio + 1.0);
        w.u = ustar;
        w.p = p;
      }
    } else {
      // Right rarefaction.
      const double head = right.u + ar;
      const double astar = ar * std::pow(p / right.p, (gr - 1.0) / (2.0 * gr));
      const double tail = ustar + astar;
      if (head <= 0.0) {
        w = right;
      } else if (tail >= 0.0) {
        w.rho = right.rho * std::pow(p / right.p, 1.0 / gr);
        w.u = ustar;
        w.p = p;
      } else {
        const double factor =
            2.0 / (gr + 1.0) - (gr - 1.0) / ((gr + 1.0) * ar) * right.u;
        w.rho = right.rho * std::pow(factor, 2.0 / (gr - 1.0));
        w.u = 2.0 / (gr + 1.0) * (-ar + (gr - 1.0) / 2.0 * right.u);
        w.p = right.p * std::pow(factor, 2.0 * gr / (gr - 1.0));
      }
    }
  }

  return RiemannResult{w, p, ustar, iter};
}

}  // namespace euler
