#pragma once
// The case-study problem: a Mach-1.5 shock in Air approaching a perturbed
// Air/Freon interface (paper Fig. 1, scientific details in its ref. [20],
// Samtaney & Zabusky's shock-accelerated density-stratified interfaces).
//
// Layout at t=0 (x increasing to the right):
//   [post-shock air | shock | quiescent air | interface | freon]
// The interface is sinusoidally perturbed so the shock deposits
// circulation and the simulation develops fine-scale structure that
// drives the AMR hierarchy of the case study.

#include "amr/hierarchy.hpp"
#include "euler/state.hpp"

namespace euler {

struct ShockInterfaceProblem {
  GasModel gas;              ///< gamma_air=1.4, gamma_freon=1.13
  double mach = 1.5;         ///< incident shock Mach number
  double shock_x = 0.15;     ///< initial shock position (fraction of width)
  double interface_x = 0.4;  ///< mean interface position
  double amplitude = 0.03;   ///< interface perturbation amplitude
  int mode = 2;              ///< perturbation mode count across the height
  double rho_air = 1.0;
  double p0 = 1.0;
  double density_ratio = 3.33;  ///< rho_freon / rho_air (Freon-22 vs Air)

  /// Exact pre/post-shock and interface states at a physical point. `ly`
  /// is the domain height (for the perturbation wavelength).
  Prim state_at(double x, double y, double lx, double ly) const;

  /// Post-shock air state from the Rankine-Hugoniot relations.
  Prim post_shock_state() const;

  /// Writes conserved initial data (including ghosts) for one local patch.
  void fill_patch(const amr::Hierarchy& h, int level, amr::PatchData<double>& data) const;

  /// Fills every local patch on every level.
  void fill_hierarchy(amr::Hierarchy& h) const;

  /// Boundary conditions: transmissive in x (in/outflow), reflecting walls
  /// in y (y-momentum flips).
  amr::BcSpec bc() const;

  /// Density-gradient error estimator for regridding: flags cells where
  /// the relative density jump to a neighbor exceeds `threshold`.
  static void flag_density_gradient(const amr::Hierarchy& h, int level,
                                    const amr::PatchInfo& patch,
                                    amr::FlagField& flags, double threshold);

  /// Adapter matching amr::Hierarchy::FlagFn with a fixed threshold.
  amr::Hierarchy::FlagFn flagger(double threshold = 0.08) const;
};

}  // namespace euler
