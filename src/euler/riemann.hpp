#pragma once
// Exact Riemann solver for the Euler equations (Toro's two-shock/
// two-rarefaction iteration, generalized to a different gamma per side —
// needed at the Air/Freon interface).
//
// This powers GodunovFlux. The pressure iteration is Newton-Raphson and
// its iteration count is *data dependent* (strong jumps take more
// iterations) — the mechanism behind the paper's observation that
// GodunovFlux "involves an internal iterative solution for every element
// of the data array", producing a standard deviation that grows with
// array size (Fig. 7).

#include "euler/state.hpp"

namespace euler {

struct RiemannResult {
  Prim sampled;     ///< state on the interface (x/t = 0)
  double p_star;    ///< star-region pressure
  double u_star;    ///< star-region velocity
  int iterations;   ///< Newton iterations used
};

struct RiemannParams {
  double tol = 1e-8;
  int max_iter = 40;
};

/// Solves the 1-D Riemann problem with left/right states given in the
/// *face-normal* frame (u = normal velocity, v = transverse, advected).
/// gammaL/gammaR are evaluated from each side's phi.
RiemannResult exact_riemann(const Prim& left, const Prim& right,
                            const GasModel& gas,
                            const RiemannParams& params = {});

}  // namespace euler
