#pragma once
// Scalar reference implementations of the sweep kernels over outer-index
// ranges, shared between kernels.cpp (the dispatch layer and the scalar
// ISA level) and the per-ISA SIMD translation units (which fall back to
// the per-face scalar routines for vector-remainder faces). Everything
// here is THE bit-exactness reference: the vector kernels must reproduce
// these expressions lane for lane, and must issue the probe calls of
// `reconstruct_one_face` / `efm_one_face` in exactly this per-face order
// so traced cache counters stay bit-identical across ISA levels.

#include <cmath>

#include "euler/kernels.hpp"

namespace euler::detail {

inline double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

/// Byte stride between consecutive components of one face of an Array2
/// (contiguous in the component-innermost layout).
inline std::ptrdiff_t comp_stride_bytes(const Array2& a) {
  return a.comp_stride() * static_cast<std::ptrdiff_t>(sizeof(double));
}

/// Gathers the four stencil cells around a face (k = -2..+1 along `dir`)
/// as primitive quintuples in the face-normal frame: w[k] = (rho, u_n,
/// u_t, p, phi). The four reads per component form one strided run — unit
/// stride for X sweeps — probed through the batched cache-sim API.
template <class Probe>
inline void load_prim_stencil(const amr::PatchData<double>& U, int i0, int j0,
                              Dir dir, const GasModel& gas, Probe& probe,
                              double w[4][kNcomp]) {
  const int di = dir == Dir::x ? 1 : 0;
  const int dj = dir == Dir::x ? 0 : 1;
  const int im2 = i0 - 2 * di;
  const int jm2 = j0 - 2 * dj;
  const std::ptrdiff_t stride = (dir == Dir::x ? 1 : U.row_stride()) *
                                static_cast<std::ptrdiff_t>(sizeof(double));
  for (int c = 0; c < kNcomp; ++c)
    probe.load_run(&U(im2, jm2, c), stride, 4, sizeof(double));
  for (int k = 0; k < 4; ++k) {
    double q[kNcomp];
    for (int c = 0; c < kNcomp; ++c) q[c] = U(im2 + k * di, jm2 + k * dj, c);
    const Prim p = cons_to_prim(q, gas);
    probe.flops(18);  // conversion cost (divides, gamma closure)
    w[k][0] = p.rho;
    w[k][1] = dir == Dir::x ? p.u : p.v;
    w[k][2] = dir == Dir::x ? p.v : p.u;
    w[k][3] = p.p;
    w[k][4] = p.phi;
  }
}

/// Span of the sweep's OUTER loop in direction `dir`: rows (fj) for
/// Dir::x, columns (fi) for Dir::y — the loop whose iterations are
/// independent and can be split across lanes or counter shards.
inline int outer_extent(int nx, int ny, Dir dir) {
  return dir == Dir::x ? ny : nx;
}

/// MUSCL reconstruction of one face — the scalar reference the vector
/// kernels mirror, and the remainder path they call directly.
template <class Probe>
inline void reconstruct_one_face(const amr::PatchData<double>& U, Dir dir,
                                 const GasModel& gas, Array2& left,
                                 Array2& right, Probe& probe, int fi, int fj,
                                 int i0, int j0) {
  // w[k]: primitive states at the four stencil cells around a face (face
  // between cell -1 and cell 0 of the local numbering, k = -2..+1 mapped
  // to 0..3).
  double w[4][kNcomp];
  const std::ptrdiff_t face_comp = comp_stride_bytes(left);
  load_prim_stencil(U, i0, j0, dir, gas, probe, w);
  for (int c = 0; c < kNcomp; ++c) {
    const double sl = minmod(w[1][c] - w[0][c], w[2][c] - w[1][c]);
    const double sr = minmod(w[2][c] - w[1][c], w[3][c] - w[2][c]);
    left(fi, fj, c) = w[1][c] + 0.5 * sl;
    right(fi, fj, c) = w[2][c] - 0.5 * sr;
  }
  probe.store_run(left.addr(fi, fj, 0), face_comp, kNcomp, sizeof(double));
  probe.store_run(right.addr(fi, fj, 0), face_comp, kNcomp, sizeof(double));
  probe.flops(8 * kNcomp);
}

/// Reconstruction over outer indices [o_begin, o_end); the full-span call
/// is the original serial kernel, a sub-span is one lane's (or one counter
/// shard's) slice. Shape checks are the caller's job.
template <class Probe>
KernelCounts states_range_scalar(const amr::PatchData<double>& U,
                                 const amr::Box& interior, Dir dir,
                                 const GasModel& gas, Array2& left,
                                 Array2& right, Probe& probe, int o_begin,
                                 int o_end) {
  const int nx = left.nx(), ny = left.ny();
  KernelCounts counts;
  if (dir == Dir::x) {
    // Sequential mode: inner loop is unit stride in memory.
    for (int fj = o_begin; fj < o_end; ++fj) {
      const int j = interior.lo().j + fj;
      for (int fi = 0; fi < nx; ++fi) {
        reconstruct_one_face(U, dir, gas, left, right, probe, fi, fj,
                             interior.lo().i + fi, j);
        ++counts.faces;
      }
    }
  } else {
    // Strided mode: inner loop strides by the padded row length.
    for (int fi = o_begin; fi < o_end; ++fi) {
      const int i = interior.lo().i + fi;
      for (int fj = 0; fj < ny; ++fj) {
        reconstruct_one_face(U, dir, gas, left, right, probe, fi, fj, i,
                             interior.lo().j + fj);
        ++counts.faces;
      }
    }
  }
  return counts;
}

/// Reads the 5 primitive face components, probed as one contiguous run.
template <class Probe>
inline Prim load_face_state(const Array2& a, int fi, int fj, Probe& probe) {
  probe.load_run(a.addr(fi, fj, 0), comp_stride_bytes(a), kNcomp, sizeof(double));
  Prim w;
  w.rho = a(fi, fj, 0);
  w.u = a(fi, fj, 1);  // face-normal frame
  w.v = a(fi, fj, 2);
  w.p = a(fi, fj, 3);
  w.phi = a(fi, fj, 4);
  return w;
}

template <class Probe>
inline void store_face_flux(Array2& flux, int fi, int fj, const FaceFlux& f,
                            Probe& probe) {
  flux(fi, fj, 0) = f.mass;
  flux(fi, fj, 1) = f.mom_n;
  flux(fi, fj, 2) = f.mom_t;
  flux(fi, fj, 3) = f.energy;
  flux(fi, fj, 4) = f.phi_mass;
  probe.store_run(flux.addr(fi, fj, 0), comp_stride_bytes(flux), kNcomp,
                  sizeof(double));
}

/// Shared sweep driver: walks faces of the outer span [o_begin, o_end) in
/// the direction-appropriate loop order and applies `face_op(fi, fj)`.
template <class FaceOp>
void sweep_faces(const Array2& left, Dir dir, int o_begin, int o_end,
                 FaceOp&& face_op) {
  if (dir == Dir::x) {
    for (int fj = o_begin; fj < o_end; ++fj)
      for (int fi = 0; fi < left.nx(); ++fi) face_op(fi, fj);
  } else {
    for (int fi = o_begin; fi < o_end; ++fi)
      for (int fj = 0; fj < left.ny(); ++fj) face_op(fi, fj);
  }
}

/// EFM flux of one face — scalar reference and vector-remainder path.
template <class Probe>
inline void efm_one_face(const Array2& left, const Array2& right, Dir,
                         const GasModel& gas, Array2& flux, Probe& probe,
                         int fi, int fj) {
  const Prim l = load_face_state(left, fi, fj, probe);
  const Prim r = load_face_state(right, fi, fj, probe);
  const FaceFlux f = efm_face_flux(l, r, gas);
  probe.flops(kEfmFlopsPerFace);  // two half-fluxes: erf + exp + moments
  store_face_flux(flux, fi, fj, f, probe);
}

template <class Probe>
KernelCounts efm_range_scalar(const Array2& left, const Array2& right, Dir dir,
                              const GasModel& gas, Array2& flux, Probe& probe,
                              int o_begin, int o_end) {
  KernelCounts counts;
  sweep_faces(left, dir, o_begin, o_end, [&](int fi, int fj) {
    efm_one_face(left, right, dir, gas, flux, probe, fi, fj);
    ++counts.faces;
  });
  return counts;
}

template <class Probe>
KernelCounts godunov_range_scalar(const Array2& left, const Array2& right,
                                  Dir dir, const GasModel& gas, Array2& flux,
                                  Probe& probe, int o_begin, int o_end) {
  KernelCounts counts;
  sweep_faces(left, dir, o_begin, o_end, [&](int fi, int fj) {
    const Prim l = load_face_state(left, fi, fj, probe);
    const Prim r = load_face_state(right, fi, fj, probe);
    const RiemannResult rr = exact_riemann(l, r, gas);
    const FaceFlux f = godunov_face_flux(rr.sampled, gas);
    counts.riemann_iterations += static_cast<std::uint64_t>(rr.iterations);
    probe.flops(kGodunovFlopsPerFace +
                kGodunovFlopsPerIteration *
                    static_cast<std::uint64_t>(rr.iterations));
    store_face_flux(flux, fi, fj, f, probe);
    ++counts.faces;
  });
  return counts;
}

}  // namespace euler::detail
