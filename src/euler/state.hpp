#pragma once
// Two-gas compressible Euler state model.
//
// The case study simulates "the interaction of a shock wave with an
// interface between two gases" (Air and Freon, Fig. 1). We track five
// conserved components per cell:
//   0: rho        (mixture density)
//   1: mx = rho*u (x momentum)
//   2: my = rho*v (y momentum)
//   3: E          (total energy density)
//   4: rphi = rho*phi (phi = mass fraction of gas 1, e.g. Air)
// The mixture's effective ratio of specific heats follows the standard
// two-gamma closure: 1/(gamma_eff - 1) is the mass-weighted average of
// 1/(gamma_k - 1).

#include <cmath>

namespace euler {

inline constexpr int kNcomp = 5;
inline constexpr int kRho = 0;
inline constexpr int kMx = 1;
inline constexpr int kMy = 2;
inline constexpr int kE = 3;
inline constexpr int kRphi = 4;

/// Primitive state at a point.
struct Prim {
  double rho = 0.0;
  double u = 0.0;
  double v = 0.0;
  double p = 0.0;
  double phi = 0.0;  ///< mass fraction of gas 1, clamped to [0,1]
};

struct GasModel {
  double gamma1 = 1.4;   ///< Air
  double gamma2 = 1.13;  ///< Freon-22 (paper's Fig. 1 pairing)

  /// Effective gamma of the mixture at mass fraction `phi` of gas 1.
  double gamma_of(double phi) const {
    const double f = phi < 0.0 ? 0.0 : (phi > 1.0 ? 1.0 : phi);
    const double inv = f / (gamma1 - 1.0) + (1.0 - f) / (gamma2 - 1.0);
    return 1.0 + 1.0 / inv;
  }
};

/// U -> primitive. `U` points at the 5 conserved values (arbitrary
/// strides are handled by the caller; this takes a gathered quintuple).
inline Prim cons_to_prim(const double U[kNcomp], const GasModel& gas) {
  Prim w;
  w.rho = U[kRho];
  const double inv_rho = 1.0 / w.rho;
  w.u = U[kMx] * inv_rho;
  w.v = U[kMy] * inv_rho;
  w.phi = U[kRphi] * inv_rho;
  const double gamma = gas.gamma_of(w.phi);
  const double kinetic = 0.5 * w.rho * (w.u * w.u + w.v * w.v);
  w.p = (gamma - 1.0) * (U[kE] - kinetic);
  return w;
}

/// primitive -> U.
inline void prim_to_cons(const Prim& w, const GasModel& gas, double U[kNcomp]) {
  const double gamma = gas.gamma_of(w.phi);
  U[kRho] = w.rho;
  U[kMx] = w.rho * w.u;
  U[kMy] = w.rho * w.v;
  U[kE] = w.p / (gamma - 1.0) + 0.5 * w.rho * (w.u * w.u + w.v * w.v);
  U[kRphi] = w.rho * w.phi;
}

/// Sound speed.
inline double sound_speed(const Prim& w, const GasModel& gas) {
  return std::sqrt(gas.gamma_of(w.phi) * w.p / w.rho);
}

}  // namespace euler
