#include "euler/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace euler::simd {

namespace {

bool cpu_has(Isa isa) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (isa) {
    case Isa::scalar:
      return true;
    case Isa::avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::avx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
  return false;
#else
  return isa == Isa::scalar;
#endif
}

bool compiled_in(Isa isa) {
  switch (isa) {
    case Isa::scalar:
      return true;
    case Isa::avx2:
#if CCAPERF_SIMD_AVX2
      return true;
#else
      return false;
#endif
    case Isa::avx512:
#if CCAPERF_SIMD_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

Isa clamp_supported(Isa want) {
  int level = static_cast<int>(want);
  while (level > 0 && !(compiled_in(static_cast<Isa>(level)) &&
                        cpu_has(static_cast<Isa>(level))))
    --level;
  return static_cast<Isa>(level);
}

Isa env_isa() {
  Isa want = Isa::avx512;  // "native": highest level we know about
  if (const char* env = std::getenv("CCAPERF_SIMD")) {
    bool native = false;
    Isa parsed = Isa::scalar;
    CCAPERF_REQUIRE(parse_isa(env, parsed, native),
                    std::string("CCAPERF_SIMD: unknown ISA level '") + env +
                        "' (want scalar|avx2|avx512|native)");
    if (!native) want = parsed;
  }
  return clamp_supported(want);
}

std::atomic<Isa>& active_slot() {
  static std::atomic<Isa> slot{env_isa()};
  return slot;
}

}  // namespace

Isa highest_supported() { return clamp_supported(Isa::avx512); }

Isa active() { return active_slot().load(std::memory_order_relaxed); }

Isa set_isa(Isa isa) {
  const Isa installed = clamp_supported(isa);
  active_slot().store(installed, std::memory_order_relaxed);
  return installed;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::scalar:
      return "scalar";
    case Isa::avx2:
      return "avx2";
    case Isa::avx512:
      return "avx512";
  }
  return "?";
}

bool parse_isa(std::string_view text, Isa& out, bool& native) {
  native = false;
  if (text == "scalar") {
    out = Isa::scalar;
  } else if (text == "avx2") {
    out = Isa::avx2;
  } else if (text == "avx512") {
    out = Isa::avx512;
  } else if (text == "native") {
    native = true;
    out = Isa::avx512;
  } else {
    return false;
  }
  return true;
}

}  // namespace euler::simd
