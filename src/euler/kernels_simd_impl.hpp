#pragma once
// Width-generic SIMD bodies of the States and EFM sweep kernels plus the
// RK2 update loops, instantiated at W=4 (AVX2) and W=8 (AVX-512) by the
// per-ISA translation units. Built on GCC/Clang vector extensions so one
// template serves every ISA; the TU's -m flags pick the instruction set.
//
// BIT-EXACTNESS CONTRACT (DESIGN.md §11): every lane evaluates exactly the
// expression DAG of the scalar reference in kernels_ranges.hpp —
//  * same operand order and associativity in every expression;
//  * IEEE add/sub/mul/div/sqrt are correctly rounded, so the packed forms
//    equal the scalar forms bit for bit;
//  * no FMA contraction (these TUs compile with -ffp-contract=off —
//    a contracted a*b+c would round once instead of twice);
//  * erf/exp go through the same scalar libm call per lane;
//  * branches (minmod, the phi clamp) become compare+blend, which selects
//    between the identical candidate values.
// Probe replay: traced instantiations issue the probe calls of exactly one
// scalar face at a time, in scalar face order, so CacheSim counters are
// bit-identical to the scalar kernel. For NullProbe the replay loop
// compiles away (kCounting is false).

#include <cmath>
#include <cstring>

#include "euler/kernels_ranges.hpp"

namespace euler::detail {

template <int W>
struct VecTypes;
template <>
struct VecTypes<4> {
  typedef double V __attribute__((vector_size(32)));
  typedef long long M __attribute__((vector_size(32)));
};
template <>
struct VecTypes<8> {
  typedef double V __attribute__((vector_size(64)));
  typedef long long M __attribute__((vector_size(64)));
};

template <int W>
using Vec = typename VecTypes<W>::V;
template <int W>
using Mask = typename VecTypes<W>::M;

template <int W>
inline Vec<W> vbc(double x) {
  Vec<W> v;
  for (int l = 0; l < W; ++l) v[l] = x;
  return v;
}

/// Unaligned contiguous load (compiles to one vmovupd).
template <int W>
inline Vec<W> vloadu(const double* p) {
  Vec<W> v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

template <int W>
inline void vstoreu(double* p, Vec<W> v) {
  __builtin_memcpy(p, &v, sizeof v);
}

/// Strided gather: lane l reads p[l * stride] (stride in doubles).
template <int W>
inline Vec<W> vgather(const double* p, std::ptrdiff_t stride) {
  Vec<W> v;
  for (int l = 0; l < W; ++l) v[l] = p[l * stride];
  return v;
}

/// Blend: lane l gets a[l] where m[l] is all-ones (a vector comparison
/// result), else b[l]. Pure bit ops — exact.
template <int W>
inline Vec<W> vselect(Mask<W> m, Vec<W> a, Vec<W> b) {
  return (Vec<W>)((m & (Mask<W>)a) | (~m & (Mask<W>)b));
}

/// |x| by clearing the sign bit — identical to std::abs on every lane.
template <int W>
inline Vec<W> vabs(Vec<W> x) {
  Mask<W> m;
  for (int l = 0; l < W; ++l) m[l] = 0x7fffffffffffffffLL;
  return (Vec<W>)((Mask<W>)x & m);
}

/// Correctly rounded per IEEE-754, so packed == scalar bit for bit.
template <int W>
inline Vec<W> vsqrt(Vec<W> x) {
  Vec<W> r;
  for (int l = 0; l < W; ++l) r[l] = std::sqrt(x[l]);
  return r;
}

// erf/exp are NOT correctly-rounded vector primitives anywhere — a packed
// polynomial would diverge from libm in the last ulp and break the
// bit-exactness contract, so each lane makes the scalar libm call.
template <int W>
inline Vec<W> verf(Vec<W> x) {
  Vec<W> r;
  for (int l = 0; l < W; ++l) r[l] = std::erf(x[l]);
  return r;
}

template <int W>
inline Vec<W> vexp(Vec<W> x) {
  Vec<W> r;
  for (int l = 0; l < W; ++l) r[l] = std::exp(x[l]);
  return r;
}

/// Lane-wise detail::minmod: same products, same comparisons, blended.
template <int W>
inline Vec<W> vminmod(Vec<W> a, Vec<W> b) {
  const Vec<W> zero = vbc<W>(0.0);
  const Vec<W> pick = vselect<W>(vabs<W>(a) < vabs<W>(b), a, b);
  return vselect<W>(a * b <= zero, zero, pick);
}

template <int W>
struct PrimV {
  Vec<W> rho, u, v, p, phi;
};

/// Lane-wise GasModel::gamma_of (clamp via blends).
template <int W>
inline Vec<W> vgamma_of(const GasModel& gas, Vec<W> phi) {
  const Vec<W> zero = vbc<W>(0.0), one = vbc<W>(1.0);
  const Vec<W> f =
      vselect<W>(phi < zero, zero, vselect<W>(phi > one, one, phi));
  const Vec<W> inv = f / vbc<W>(gas.gamma1 - 1.0) +
                     (one - f) / vbc<W>(gas.gamma2 - 1.0);
  return one + one / inv;
}

/// Lane-wise cons_to_prim over gathered component vectors.
template <int W>
inline PrimV<W> vcons_to_prim(const Vec<W> q[kNcomp], const GasModel& gas) {
  PrimV<W> w;
  w.rho = q[kRho];
  const Vec<W> inv_rho = vbc<W>(1.0) / w.rho;
  w.u = q[kMx] * inv_rho;
  w.v = q[kMy] * inv_rho;
  w.phi = q[kRphi] * inv_rho;
  const Vec<W> gamma = vgamma_of<W>(gas, w.phi);
  const Vec<W> kinetic = vbc<W>(0.5) * w.rho * (w.u * w.u + w.v * w.v);
  w.p = (gamma - vbc<W>(1.0)) * (q[kE] - kinetic);
  return w;
}

// --- States (MUSCL reconstruction) -------------------------------------------

template <int W, class Probe>
KernelCounts states_range_vec(const amr::PatchData<double>& U,
                              const amr::Box& interior, Dir dir,
                              const GasModel& gas, Array2& left, Array2& right,
                              Probe& probe, int o_begin, int o_end) {
  const int nx = left.nx(), ny = left.ny();
  const int inner = dir == Dir::x ? nx : ny;
  const int di = dir == Dir::x ? 1 : 0;
  const int dj = 1 - di;
  const std::ptrdiff_t urow = U.row_stride();
  // Lane strides (in doubles): where face f+1 sits relative to face f.
  const std::ptrdiff_t face_lane =
      dir == Dir::x ? kNcomp : static_cast<std::ptrdiff_t>(nx) * kNcomp;
  const std::ptrdiff_t load_stride =
      (dir == Dir::x ? 1 : U.row_stride()) *
      static_cast<std::ptrdiff_t>(sizeof(double));
  const std::ptrdiff_t face_comp = comp_stride_bytes(left);
  KernelCounts counts;

  for (int o = o_begin; o < o_end; ++o) {
    int f = 0;
    for (; f + W <= inner; f += W) {
      const int fi0 = dir == Dir::x ? f : o;
      const int fj0 = dir == Dir::x ? o : f;
      const int i0 = interior.lo().i + fi0;
      const int j0 = interior.lo().j + fj0;
      const int im2 = i0 - 2 * di;
      const int jm2 = j0 - 2 * dj;

      // Primitive stencil: one vector per (stencil cell k, component),
      // lane l holding face f+l — load_prim_stencil, W faces at a time.
      Vec<W> w[4][kNcomp];
      for (int k = 0; k < 4; ++k) {
        Vec<W> q[kNcomp];
        for (int c = 0; c < kNcomp; ++c) {
          const double* base = &U(im2 + k * di, jm2 + k * dj, c);
          q[c] = dir == Dir::x ? vloadu<W>(base) : vgather<W>(base, urow);
        }
        const PrimV<W> p = vcons_to_prim<W>(q, gas);
        w[k][0] = p.rho;
        w[k][1] = dir == Dir::x ? p.u : p.v;
        w[k][2] = dir == Dir::x ? p.v : p.u;
        w[k][3] = p.p;
        w[k][4] = p.phi;
      }

      for (int c = 0; c < kNcomp; ++c) {
        const Vec<W> dm = w[2][c] - w[1][c];
        const Vec<W> sl = vminmod<W>(w[1][c] - w[0][c], dm);
        const Vec<W> sr = vminmod<W>(dm, w[3][c] - w[2][c]);
        const Vec<W> lv = w[1][c] + vbc<W>(0.5) * sl;
        const Vec<W> rv = w[2][c] - vbc<W>(0.5) * sr;
        double* lp = &left(fi0, fj0, c);
        double* rp = &right(fi0, fj0, c);
        for (int l = 0; l < W; ++l) {
          lp[l * face_lane] = lv[l];
          rp[l * face_lane] = rv[l];
        }
      }

      // Traced runs replay each face's probe sequence in scalar order
      // (addresses only — the math above already produced the values).
      // Per face that is kNcomp stencil load runs of 4 elements plus two
      // face store runs; when the simulator's sampling gate would reject
      // the whole group, skip_runs tallies the identical event totals in
      // one step instead (the replay loop is pure overhead then).
      if constexpr (Probe::kCounting) {
        if (!probe.skip_runs((kNcomp + 2) * static_cast<std::uint64_t>(W),
                             4ull * kNcomp * W, 2ull * kNcomp * W,
                             static_cast<std::uint64_t>(W) *
                                 (4 * 18 + 8 * kNcomp))) {
          for (int l = 0; l < W; ++l) {
            const int fi = fi0 + l * di, fj = fj0 + l * dj;
            const int li = im2 + l * di, lj = jm2 + l * dj;
            for (int c = 0; c < kNcomp; ++c)
              probe.load_run(&U(li, lj, c), load_stride, 4, sizeof(double));
            for (int k = 0; k < 4; ++k) probe.flops(18);
            probe.store_run(left.addr(fi, fj, 0), face_comp, kNcomp,
                            sizeof(double));
            probe.store_run(right.addr(fi, fj, 0), face_comp, kNcomp,
                            sizeof(double));
            probe.flops(8 * kNcomp);
          }
        }
      }
      counts.faces += W;
    }
    // Remainder faces: the scalar reference, same values and probe order.
    for (; f < inner; ++f) {
      const int fi = dir == Dir::x ? f : o;
      const int fj = dir == Dir::x ? o : f;
      reconstruct_one_face(U, dir, gas, left, right, probe, fi, fj,
                           interior.lo().i + fi, interior.lo().j + fj);
      ++counts.faces;
    }
  }
  return counts;
}

// --- EFM flux ----------------------------------------------------------------

template <int W>
struct FaceFluxV {
  Vec<W> mass, mom_n, mom_t, energy, phi_mass;
};

/// Lane-wise detail::efm_half_flux; `sign` is the scalar ±1.0.
template <int W>
inline void vefm_half_flux(const PrimV<W>& w, Vec<W> gamma, double sign,
                           FaceFluxV<W>& f) {
  const Vec<W> sg = vbc<W>(sign);
  const Vec<W> theta = w.p / w.rho;
  const Vec<W> inv_sqrt_2theta =
      vbc<W>(1.0) / vsqrt<W>(vbc<W>(2.0) * theta);
  const Vec<W> s = w.u * inv_sqrt_2theta;
  const Vec<W> A = vbc<W>(0.5) * (vbc<W>(1.0) + sg * verf<W>(s));
  const Vec<W> G = vsqrt<W>(theta / vbc<W>(2.0 * M_PI)) *
                   vexp<W>(-w.u * w.u / (vbc<W>(2.0) * theta));

  const Vec<W> mass = w.rho * (w.u * A + sg * G);
  const Vec<W> mom = w.rho * ((w.u * w.u + theta) * A + sg * w.u * G);
  const Vec<W> e_rest = theta / (gamma - vbc<W>(1.0)) - vbc<W>(0.5) * theta +
                        vbc<W>(0.5) * w.v * w.v;
  const Vec<W> energy =
      vbc<W>(0.5) * w.rho *
          ((w.u * w.u * w.u + vbc<W>(3.0) * w.u * theta) * A +
           sg * (w.u * w.u + vbc<W>(2.0) * theta) * G) +
      e_rest * mass;

  f.mass += mass;
  f.mom_n += mom;
  f.mom_t += w.v * mass;
  f.energy += energy;
  f.phi_mass += w.phi * mass;
}

template <int W, class Probe>
KernelCounts efm_range_vec(const Array2& left, const Array2& right, Dir dir,
                           const GasModel& gas, Array2& flux, Probe& probe,
                           int o_begin, int o_end) {
  const int nx = left.nx(), ny = left.ny();
  const int inner = dir == Dir::x ? nx : ny;
  const int di = dir == Dir::x ? 1 : 0;
  const int dj = 1 - di;
  // Faces are kNcomp apart along fi and nx*kNcomp apart along fj, so the
  // lane loads are gathers in both directions (components are innermost).
  const std::ptrdiff_t face_lane =
      dir == Dir::x ? kNcomp : static_cast<std::ptrdiff_t>(nx) * kNcomp;
  const std::ptrdiff_t face_comp = comp_stride_bytes(left);
  KernelCounts counts;

  auto gather_prim = [&](const Array2& a, int fi0, int fj0) {
    PrimV<W> w;
    w.rho = vgather<W>(a.addr(fi0, fj0, 0), face_lane);
    w.u = vgather<W>(a.addr(fi0, fj0, 1), face_lane);
    w.v = vgather<W>(a.addr(fi0, fj0, 2), face_lane);
    w.p = vgather<W>(a.addr(fi0, fj0, 3), face_lane);
    w.phi = vgather<W>(a.addr(fi0, fj0, 4), face_lane);
    return w;
  };

  for (int o = o_begin; o < o_end; ++o) {
    int f = 0;
    for (; f + W <= inner; f += W) {
      const int fi0 = dir == Dir::x ? f : o;
      const int fj0 = dir == Dir::x ? o : f;
      const PrimV<W> l = gather_prim(left, fi0, fj0);
      const PrimV<W> r = gather_prim(right, fi0, fj0);

      FaceFluxV<W> ff;
      ff.mass = ff.mom_n = ff.mom_t = ff.energy = ff.phi_mass = vbc<W>(0.0);
      vefm_half_flux<W>(l, vgamma_of<W>(gas, l.phi), +1.0, ff);
      vefm_half_flux<W>(r, vgamma_of<W>(gas, r.phi), -1.0, ff);

      for (int l2 = 0; l2 < W; ++l2) {
        double* fp = &flux(fi0 + l2 * di, fj0 + l2 * dj, 0);
        fp[0] = ff.mass[l2];
        fp[1] = ff.mom_n[l2];
        fp[2] = ff.mom_t[l2];
        fp[3] = ff.energy[l2];
        fp[4] = ff.phi_mass[l2];
      }

      // Per face: two state load runs + one flux store run; bulk-skip the
      // group when the sampling gate would reject every batch (see
      // states_range_vec).
      if constexpr (Probe::kCounting) {
        if (!probe.skip_runs(3ull * W, 2ull * kNcomp * W,
                             static_cast<std::uint64_t>(kNcomp) * W,
                             static_cast<std::uint64_t>(kEfmFlopsPerFace) * W)) {
          for (int l2 = 0; l2 < W; ++l2) {
            const int fi = fi0 + l2 * di, fj = fj0 + l2 * dj;
            probe.load_run(left.addr(fi, fj, 0), face_comp, kNcomp,
                           sizeof(double));
            probe.load_run(right.addr(fi, fj, 0), face_comp, kNcomp,
                           sizeof(double));
            probe.flops(kEfmFlopsPerFace);
            probe.store_run(flux.addr(fi, fj, 0), face_comp, kNcomp,
                            sizeof(double));
          }
        }
      }
      counts.faces += W;
    }
    for (; f < inner; ++f) {
      const int fi = dir == Dir::x ? f : o;
      const int fj = dir == Dir::x ? o : f;
      efm_one_face(left, right, dir, gas, flux, probe, fi, fj);
      ++counts.faces;
    }
  }
  return counts;
}

// --- RK2 update loops --------------------------------------------------------

/// y[i] += a * x[i] over one contiguous row (RK2 stage 1).
template <int W>
void rk2_axpy_vec(double* y, const double* x, double a, std::size_t n) {
  const Vec<W> av = vbc<W>(a);
  std::size_t k = 0;
  for (; k + W <= n; k += W)
    vstoreu<W>(y + k, vloadu<W>(y + k) + av * vloadu<W>(x + k));
  for (; k < n; ++k) y[k] += a * x[k];
}

/// u[i] = 0.5 * (u_old[i] + u[i] + dt * dudt[i]) (RK2 Heun average).
template <int W>
void rk2_heun_vec(double* u, const double* u_old, const double* dudt,
                  double dt, std::size_t n) {
  const Vec<W> half = vbc<W>(0.5), dtv = vbc<W>(dt);
  std::size_t k = 0;
  for (; k + W <= n; k += W)
    vstoreu<W>(u + k, half * (vloadu<W>(u_old + k) + vloadu<W>(u + k) +
                              dtv * vloadu<W>(dudt + k)));
  for (; k < n; ++k) u[k] = 0.5 * (u_old[k] + u[k] + dt * dudt[k]);
}

}  // namespace euler::detail
