#include "euler/problem.hpp"

#include <cmath>

namespace euler {

Prim ShockInterfaceProblem::post_shock_state() const {
  // Rankine-Hugoniot for a Mach `mach` shock moving into quiescent air.
  const double g = gas.gamma1;
  const double m2 = mach * mach;
  const double c0 = std::sqrt(g * p0 / rho_air);
  Prim w;
  w.p = p0 * (1.0 + 2.0 * g / (g + 1.0) * (m2 - 1.0));
  w.rho = rho_air * ((g + 1.0) * m2) / ((g - 1.0) * m2 + 2.0);
  w.u = 2.0 / (g + 1.0) * (mach - 1.0 / mach) * c0;  // toward +x
  w.v = 0.0;
  w.phi = 1.0;  // air
  return w;
}

Prim ShockInterfaceProblem::state_at(double x, double y, double lx, double ly) const {
  const double xs = shock_x * lx;
  const double xi_mean = interface_x * lx;
  const double xi =
      xi_mean + amplitude * lx * std::cos(2.0 * M_PI * mode * y / ly);
  if (x < xs) return post_shock_state();
  Prim w;
  w.u = 0.0;
  w.v = 0.0;
  w.p = p0;
  if (x < xi) {
    w.rho = rho_air;
    w.phi = 1.0;  // quiescent air
  } else {
    w.rho = rho_air * density_ratio;
    w.phi = 0.0;  // freon
  }
  return w;
}

void ShockInterfaceProblem::fill_patch(const amr::Hierarchy& h, int level,
                                       amr::PatchData<double>& data) const {
  const amr::Box g = data.grown_box();
  const amr::Box dom0 = h.config().domain;
  const double lx = dom0.width() * h.config().geom.dx0;
  const double ly = dom0.height() * h.config().geom.dy0;
  double U[kNcomp];
  for (int j = g.lo().j; j <= g.hi().j; ++j) {
    const double y = h.yc(level, j);
    for (int i = g.lo().i; i <= g.hi().i; ++i) {
      const double x = h.xc(level, i);
      const Prim w = state_at(x, y, lx, ly);
      prim_to_cons(w, gas, U);
      for (int c = 0; c < kNcomp; ++c) data(i, j, c) = U[c];
    }
  }
}

void ShockInterfaceProblem::fill_hierarchy(amr::Hierarchy& h) const {
  for (int l = 0; l < h.num_levels(); ++l)
    for (auto& [id, data] : h.level(l).local_data()) fill_patch(h, l, data);
}

amr::BcSpec ShockInterfaceProblem::bc() const {
  amr::BcSpec bc;
  bc.xlo = amr::BcType::transmissive;
  bc.xhi = amr::BcType::transmissive;
  bc.ylo = amr::BcType::reflecting;
  bc.yhi = amr::BcType::reflecting;
  bc.reflect_sign_y.assign(static_cast<std::size_t>(kNcomp), 1.0);
  bc.reflect_sign_y[kMy] = -1.0;  // y momentum flips at the walls
  return bc;
}

void ShockInterfaceProblem::flag_density_gradient(const amr::Hierarchy& h, int level,
                                                  const amr::PatchInfo& patch,
                                                  amr::FlagField& flags,
                                                  double threshold) {
  const amr::PatchData<double>& u = h.level(level).data(patch.id);
  const amr::Box b = patch.box;
  for (int j = b.lo().j; j <= b.hi().j; ++j) {
    for (int i = b.lo().i; i <= b.hi().i; ++i) {
      const double r0 = u(i, j, kRho);
      const double jump =
          std::max(std::max(std::abs(u(i + 1, j, kRho) - r0),
                            std::abs(u(i - 1, j, kRho) - r0)),
                   std::max(std::abs(u(i, j + 1, kRho) - r0),
                            std::abs(u(i, j - 1, kRho) - r0)));
      if (jump / r0 > threshold) flags.set({i, j});
    }
  }
}

amr::Hierarchy::FlagFn ShockInterfaceProblem::flagger(double threshold) const {
  return [threshold](const amr::Hierarchy& h, int level, const amr::PatchInfo& p,
                     amr::FlagField& flags) {
    flag_density_gradient(h, level, p, flags, threshold);
  };
}

}  // namespace euler
