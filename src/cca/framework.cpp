#include "cca/framework.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace cca {

// ---------------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------------

void Services::add_provides_port(std::shared_ptr<Port> port, const std::string& name,
                                 const std::string& type) {
  CCAPERF_REQUIRE(port != nullptr, "add_provides_port: null port");
  CCAPERF_REQUIRE(provided_.count(name) == 0,
                  "add_provides_port: duplicate provides port '" + name + "' on '" +
                      instance_ + "'");
  provided_.emplace(name, std::move(port));
  provides_info_.push_back(PortInfo{name, type});
}

void Services::register_uses_port(const std::string& name, const std::string& type) {
  for (const PortInfo& p : uses_info_)
    CCAPERF_REQUIRE(p.name != name, "register_uses_port: duplicate uses port '" +
                                        name + "' on '" + instance_ + "'");
  uses_info_.push_back(PortInfo{name, type});
}

Port* Services::get_port(const std::string& uses_name) const {
  auto it = bound_.find(uses_name);
  CCAPERF_REQUIRE(it != bound_.end(), "get_port: uses port '" + uses_name +
                                          "' of '" + instance_ + "' is not connected");
  return it->second;
}

bool Services::is_connected(const std::string& uses_name) const {
  return bound_.count(uses_name) != 0;
}

Port* Services::provided(const std::string& provides_name) const {
  auto it = provided_.find(provides_name);
  CCAPERF_REQUIRE(it != provided_.end(), "provided: '" + instance_ +
                                             "' provides no port '" +
                                             provides_name + "'");
  return it->second.get();
}

// ---------------------------------------------------------------------------
// ComponentRepository
// ---------------------------------------------------------------------------

void ComponentRepository::register_class(const std::string& class_name,
                                         Factory factory) {
  CCAPERF_REQUIRE(factory != nullptr, "register_class: null factory");
  CCAPERF_REQUIRE(factories_.count(class_name) == 0,
                  "register_class: duplicate class '" + class_name + "'");
  factories_.emplace(class_name, std::move(factory));
}

bool ComponentRepository::has(const std::string& class_name) const {
  return factories_.count(class_name) != 0;
}

std::unique_ptr<Component> ComponentRepository::create(
    const std::string& class_name) const {
  auto it = factories_.find(class_name);
  CCAPERF_REQUIRE(it != factories_.end(),
                  "ComponentRepository: unknown class '" + class_name + "'");
  auto c = it->second();
  CCAPERF_REQUIRE(c != nullptr, "ComponentRepository: factory for '" + class_name +
                                    "' returned null");
  return c;
}

std::vector<std::string> ComponentRepository::class_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [n, f] : factories_) names.push_back(n);
  return names;
}

// ---------------------------------------------------------------------------
// Framework
// ---------------------------------------------------------------------------

Framework::~Framework() {
  // Destroy components in reverse creation order so late-created proxies
  // and monitors (which reference earlier components) die first.
  for (auto it = creation_order_.rbegin(); it != creation_order_.rend(); ++it)
    instances_.erase(*it);
}

Component& Framework::instantiate(const std::string& instance_name,
                                  const std::string& class_name) {
  CCAPERF_REQUIRE(instances_.count(instance_name) == 0,
                  "instantiate: duplicate instance '" + instance_name + "'");
  Instance inst;
  inst.class_name = class_name;
  inst.component = repo_.create(class_name);
  inst.services = std::unique_ptr<Services>(new Services(instance_name));
  Component& ref = *inst.component;
  inst.component->setServices(*inst.services);
  instances_.emplace(instance_name, std::move(inst));
  creation_order_.push_back(instance_name);
  return ref;
}

Framework::Instance& Framework::instance_at(const std::string& name) {
  auto it = instances_.find(name);
  CCAPERF_REQUIRE(it != instances_.end(), "Framework: unknown instance '" + name + "'");
  return it->second;
}

const Framework::Instance& Framework::instance_at(const std::string& name) const {
  auto it = instances_.find(name);
  CCAPERF_REQUIRE(it != instances_.end(), "Framework: unknown instance '" + name + "'");
  return it->second;
}

void Framework::connect(const std::string& user_instance, const std::string& uses_port,
                        const std::string& provider_instance,
                        const std::string& provides_port) {
  Instance& user = instance_at(user_instance);
  Instance& provider = instance_at(provider_instance);

  // Locate the declared uses port and its type.
  const PortInfo* uses_info = nullptr;
  for (const PortInfo& p : user.services->uses_info_)
    if (p.name == uses_port) uses_info = &p;
  CCAPERF_REQUIRE(uses_info != nullptr, "connect: '" + user_instance +
                                            "' declares no uses port '" + uses_port + "'");
  CCAPERF_REQUIRE(user.services->bound_.count(uses_port) == 0,
                  "connect: uses port '" + uses_port + "' of '" + user_instance +
                      "' is already connected");

  // Locate the provides port and check type compatibility.
  auto pit = provider.services->provided_.find(provides_port);
  CCAPERF_REQUIRE(pit != provider.services->provided_.end(),
                  "connect: '" + provider_instance + "' provides no port '" +
                      provides_port + "'");
  const PortInfo* prov_info = nullptr;
  for (const PortInfo& p : provider.services->provides_info_)
    if (p.name == provides_port) prov_info = &p;
  CCAPERF_REQUIRE(prov_info != nullptr && prov_info->type == uses_info->type,
                  "connect: port type mismatch ('" + uses_info->type + "' vs '" +
                      (prov_info ? prov_info->type : "?") + "')");

  // "The process of connecting ports is just the movement of (pointers to)
  // interfaces from the providing to the using component."
  user.services->bound_[uses_port] = pit->second.get();
  connections_.push_back(
      Connection{user_instance, uses_port, provider_instance, provides_port});
}

void Framework::disconnect(const std::string& user_instance,
                           const std::string& uses_port) {
  Instance& user = instance_at(user_instance);
  CCAPERF_REQUIRE(user.services->bound_.erase(uses_port) == 1,
                  "disconnect: '" + user_instance + "'.'" + uses_port +
                      "' is not connected");
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [&](const Connection& c) {
                       return c.user_instance == user_instance &&
                              c.uses_port == uses_port;
                     }),
      connections_.end());
}

void Framework::reconnect(const std::string& user_instance,
                          const std::string& uses_port,
                          const std::string& provider_instance,
                          const std::string& provides_port) {
  if (instance_at(user_instance).services->bound_.count(uses_port) != 0)
    disconnect(user_instance, uses_port);
  connect(user_instance, uses_port, provider_instance, provides_port);
}

bool Framework::has_instance(const std::string& instance_name) const {
  return instances_.count(instance_name) != 0;
}

Component& Framework::component(const std::string& instance_name) {
  return *instance_at(instance_name).component;
}

Services& Framework::services(const std::string& instance_name) {
  return *instance_at(instance_name).services;
}

const Services& Framework::services(const std::string& instance_name) const {
  return *instance_at(instance_name).services;
}

std::vector<std::string> Framework::instance_names() const {
  return creation_order_;
}

WiringDiagram Framework::wiring() const {
  WiringDiagram w;
  for (const std::string& name : creation_order_) {
    const Instance& inst = instance_at(name);
    w.nodes.push_back(WiringDiagram::Node{name, inst.class_name,
                                          inst.services->provides(),
                                          inst.services->uses()});
  }
  w.connections = connections_;
  return w;
}

// ---------------------------------------------------------------------------
// WiringDiagram
// ---------------------------------------------------------------------------

void WiringDiagram::print(std::ostream& os) const {
  os << "Component assembly (" << nodes.size() << " instances, "
     << connections.size() << " connections)\n";
  for (const Node& n : nodes) {
    os << "  " << n.instance << " : " << n.class_name << '\n';
    for (const PortInfo& p : n.provides)
      os << "      provides " << p.name << " <" << p.type << ">\n";
    for (const PortInfo& p : n.uses)
      os << "      uses     " << p.name << " <" << p.type << ">\n";
  }
  os << "  wiring:\n";
  for (const Connection& c : connections)
    os << "      " << c.user_instance << '.' << c.uses_port << " --> "
       << c.provider_instance << '.' << c.provides_port << '\n';
}

std::string WiringDiagram::to_dot() const {
  std::ostringstream os;
  os << "digraph assembly {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const Node& n : nodes)
    os << "  \"" << n.instance << "\" [label=\"" << n.instance << "\\n("
       << n.class_name << ")\"];\n";
  for (const Connection& c : connections)
    os << "  \"" << c.user_instance << "\" -> \"" << c.provider_instance
       << "\" [label=\"" << c.uses_port << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace cca
