#pragma once
// cca — a CCAFFEINE-style Common Component Architecture framework.
//
// The paper (Section 3.1): components are peers created inside a
// framework, where they register themselves and declare *UsesPorts* and
// *ProvidesPorts*; "all CCAFFEINE components are derived from a data-less
// abstract class with one deferred method called setServices(Services*)";
// connecting ports "is just the movement of (pointers to) interfaces from
// the providing to the using component", so "a method invocation on a
// UsesPort incurs a virtual function call overhead" (we benchmark exactly
// that in bench_ablation_overhead).
//
// Differences from CCAFFEINE, and why they don't matter here: components
// are registered via in-process factories rather than dlopen'ed shared
// objects — dynamic loading is orthogonal to every quantity the paper
// measures (DESIGN.md, substitution table). The SCMD model is preserved by
// instantiating one Framework per rank thread (mpp::Runtime).

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cca {

/// Data-less abstract base of every port interface.
class Port {
 public:
  virtual ~Port() = default;
};

class Services;

/// Data-less abstract component base with the one deferred method.
class Component {
 public:
  virtual ~Component() = default;
  /// Invoked by the framework at creation; the component registers its
  /// uses/provides ports through `svc`.
  virtual void setServices(Services& svc) = 0;
};

struct PortInfo {
  std::string name;  ///< port instance name, unique within the component
  std::string type;  ///< port *type* string; connections must match types
};

/// Wraps a component-owned port interface in a non-owning shared_ptr for
/// add_provides_port. The component outlives its ports because the
/// framework destroys instances in reverse creation order; components that
/// implement their own ports (the common CCAFFEINE idiom) use this.
template <class P>
std::shared_ptr<Port> non_owning(P* port) {
  return std::shared_ptr<Port>(std::shared_ptr<void>{}, static_cast<Port*>(port));
}

/// Per-component-instance window onto the framework.
class Services {
 public:
  /// Component-side: exports a provides port. The component keeps
  /// ownership semantics via shared_ptr (often aliasing `this`).
  void add_provides_port(std::shared_ptr<Port> port, const std::string& name,
                         const std::string& type);
  /// Component-side: declares a uses port to be connected later.
  void register_uses_port(const std::string& name, const std::string& type);

  /// Returns the provider's interface connected to this uses port.
  /// Throws if the port is not connected.
  Port* get_port(const std::string& uses_name) const;

  /// Typed convenience: get_port + dynamic_cast, throwing on type mismatch.
  template <class P>
  P* get_port_as(const std::string& uses_name) const {
    P* p = dynamic_cast<P*>(get_port(uses_name));
    CCAPERF_REQUIRE(p != nullptr, "Services::get_port_as: port '" + uses_name +
                                      "' is not of the requested interface");
    return p;
  }

  /// True when the uses port currently has a provider.
  bool is_connected(const std::string& uses_name) const;

  /// Direct access to one of this component's own provides ports (how the
  /// framework driver invokes a GoPort). Throws if not provided.
  Port* provided(const std::string& provides_name) const;
  template <class P>
  P* provided_as(const std::string& provides_name) const {
    P* p = dynamic_cast<P*>(provided(provides_name));
    CCAPERF_REQUIRE(p != nullptr, "Services::provided_as: port '" + provides_name +
                                      "' is not of the requested interface");
    return p;
  }

  const std::string& instance_name() const { return instance_; }

  const std::vector<PortInfo>& provides() const { return provides_info_; }
  const std::vector<PortInfo>& uses() const { return uses_info_; }

 private:
  friend class Framework;
  explicit Services(std::string instance) : instance_(std::move(instance)) {}

  std::string instance_;
  std::vector<PortInfo> provides_info_;
  std::vector<PortInfo> uses_info_;
  std::map<std::string, std::shared_ptr<Port>> provided_;  // name -> port
  std::map<std::string, Port*> bound_;                     // uses name -> provider port
};

/// Factory registry: class name -> constructor. Multiple registered classes
/// may provide the same port types — that is the "multiple implementations
/// of a component" the assembly optimizer chooses among.
class ComponentRepository {
 public:
  using Factory = std::function<std::unique_ptr<Component>()>;

  void register_class(const std::string& class_name, Factory factory);
  bool has(const std::string& class_name) const;
  std::unique_ptr<Component> create(const std::string& class_name) const;
  std::vector<std::string> class_names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// One port-to-port connection.
struct Connection {
  std::string user_instance;
  std::string uses_port;
  std::string provider_instance;
  std::string provides_port;
};

/// Introspection snapshot of an assembled application (Fig. 2).
struct WiringDiagram {
  struct Node {
    std::string instance;
    std::string class_name;
    std::vector<PortInfo> provides;
    std::vector<PortInfo> uses;
  };
  std::vector<Node> nodes;
  std::vector<Connection> connections;

  void print(std::ostream& os) const;
  /// GraphViz dot rendering (components as boxes, connections as edges).
  std::string to_dot() const;
};

/// The framework: instantiates components from a repository, connects
/// ports, and exposes the wiring (the paper's "global understanding of how
/// the components are networked"). It also provides the
/// AbstractFramework-style mutation hooks (reconnect) the Mastermind uses
/// for dynamic component replacement (Fig. 10).
class Framework {
 public:
  explicit Framework(ComponentRepository repository)
      : repo_(std::move(repository)) {}
  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;
  ~Framework();

  ComponentRepository& repository() { return repo_; }

  /// Creates `class_name` under `instance_name` and runs setServices.
  Component& instantiate(const std::string& instance_name,
                         const std::string& class_name);

  /// Connects user's uses port to provider's provides port (types must
  /// match). A uses port holds at most one connection.
  void connect(const std::string& user_instance, const std::string& uses_port,
               const std::string& provider_instance,
               const std::string& provides_port);

  void disconnect(const std::string& user_instance, const std::string& uses_port);

  /// Atomically re-points a uses port at a different provider (dynamic
  /// component replacement).
  void reconnect(const std::string& user_instance, const std::string& uses_port,
                 const std::string& provider_instance,
                 const std::string& provides_port);

  bool has_instance(const std::string& instance_name) const;
  Component& component(const std::string& instance_name);
  Services& services(const std::string& instance_name);
  const Services& services(const std::string& instance_name) const;
  std::vector<std::string> instance_names() const;

  WiringDiagram wiring() const;

 private:
  struct Instance {
    std::string class_name;
    std::unique_ptr<Component> component;
    std::unique_ptr<Services> services;
  };

  Instance& instance_at(const std::string& name);
  const Instance& instance_at(const std::string& name) const;

  ComponentRepository repo_;
  std::map<std::string, Instance> instances_;
  std::vector<std::string> creation_order_;
  std::vector<Connection> connections_;
};

}  // namespace cca
