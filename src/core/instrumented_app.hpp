#pragma once
// Instrumented assembly of the case-study application — paper Fig. 2:
// "We see three proxies (for AMRMesh, EFMFlux and States), as well as the
// TauMeasurement and Mastermind components to measure and record
// performance-related data."
//
// The proxy insertion is purely a wiring change: each consumer's uses port
// is connected to the proxy's identical provides port, and the proxy's
// uses port to the real component — no component is modified
// (non-intrusiveness, §3).

#include "components/app_assembly.hpp"
#include "core/governor.hpp"
#include "core/mastermind.hpp"
#include "core/proxies.hpp"
#include "core/tau_component.hpp"
#include "hwc/perf_events.hpp"

namespace core {

/// Handles to the PMM components inside an instrumented assembly.
struct InstrumentedApp {
  std::unique_ptr<cca::Framework> framework;
  TauMeasurementComponent* tau = nullptr;
  MastermindComponent* mastermind = nullptr;
  /// Hardware-counter backend (CCAPERF_HWC): owns any perf_event fds the
  /// registry's counter sources read, so it lives with the assembly.
  hwc::PerfBackend hwc_backend;
  hwc::HwcInstallReport hwc_report;
  /// Overhead governor + online re-fit loop (CCAPERF_OVERHEAD_PCT); null
  /// when the knob is unset so ungoverned runs stay byte-identical.
  std::unique_ptr<OverheadGovernor> governor;
  std::unique_ptr<OnlineRefitter> refitter;

  cca::Framework& fw() { return *framework; }
  tau::Registry& registry() { return tau->registry(); }
};

/// Registers the PMM component classes (proxies, TAU, Mastermind) on top
/// of the application repository.
void register_pmm_classes(cca::ComponentRepository& repo,
                          const components::AppConfig& cfg);

/// Assembles the full instrumented application on this rank:
/// TauMeasurement + Mastermind + {sc, flux, icc} proxies interposed in
/// front of States, <flux_impl> and AMRMesh.
InstrumentedApp assemble_instrumented_app(mpp::Comm& world,
                                          const components::AppConfig& cfg);

}  // namespace core
