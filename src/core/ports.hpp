#pragma once
// PMM (performance measurement and modeling) port interfaces — the
// infrastructure contribution of the paper (§4).
//
// Three component types cooperate:
//  * the TAU component provides MeasurementPort (timing, events, control,
//    query — §4.1);
//  * proxies use MonitorPort to report intercepted invocations (§4.2);
//  * the Mastermind provides MonitorPort, owns the per-method Records and
//    builds models (§4.3).

#include <map>
#include <string>

#include "cca/framework.hpp"
#include "tau/registry.hpp"

namespace core {

/// Performance-relevant parameters extracted by a proxy before forwarding
/// an invocation (e.g. {"Q": array size, "mode": 0/1 for seq/strided}).
/// "These parameters must be selected by someone with a knowledge of the
/// algorithm implemented in the component."
using ParamMap = std::map<std::string, double>;

/// Access to the measurement substrate (the TAU component's port).
class MeasurementPort : public cca::Port {
 public:
  /// The rank-local TAU registry (timing/event/control/query interfaces).
  virtual tau::Registry& registry() = 0;
};

/// Monitoring interface used by proxies (the paper's "MonUF port").
/// start() is called with the extracted parameters before the invocation
/// is forwarded; stop() after it returns. Nesting is allowed (LIFO).
class MonitorPort : public cca::Port {
 public:
  /// `method_key` identifies the monitored method and doubles as its TAU
  /// timer name (e.g. "sc_proxy::compute()").
  virtual void start(const std::string& method_key, const ParamMap& params) = 0;
  virtual void stop(const std::string& method_key) = 0;
};

}  // namespace core
