#pragma once
// PMM (performance measurement and modeling) port interfaces — the
// infrastructure contribution of the paper (§4).
//
// Three component types cooperate:
//  * the TAU component provides MeasurementPort (timing, events, control,
//    query — §4.1);
//  * proxies use MonitorPort to report intercepted invocations (§4.2);
//  * the Mastermind provides MonitorPort, owns the per-method Records and
//    builds models (§4.3).
//
// MonitorPort has two call surfaces. The original string-keyed start/stop
// builds a ParamMap per invocation — simple, but it allocates map nodes and
// hashes names on the very path whose cost must stay invisible (§3.2
// requirement 2). The handle surface fixes that: a proxy registers each
// monitored method once (register_method interns the key and its parameter
// names), then reports invocations by MethodHandle with the parameter
// values in a stack-resident ParamSpan — no allocation, no string hashing.
// The string surface remains as a compatibility shim over the same records.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "cca/framework.hpp"
#include "tau/registry.hpp"

namespace tau {
class RegistryShards;
}

namespace core {

/// Performance-relevant parameters extracted by a proxy before forwarding
/// an invocation (e.g. {"Q": array size, "mode": 0/1 for seq/strided}).
/// "These parameters must be selected by someone with a knowledge of the
/// algorithm implemented in the component."
using ParamMap = std::map<std::string, double>;

/// Interned identity of a monitored method (dense index, valid for the
/// lifetime of the MonitorPort provider that issued it).
using MethodHandle = std::uint32_t;
inline constexpr MethodHandle kInvalidMethodHandle = 0xffffffffu;

/// Most parameters a method can pre-register for the handle fast path.
/// The paper's proxies extract at most two (Q and mode / level and cells).
inline constexpr std::size_t kMaxMethodParams = 4;

/// Non-owning view of the parameter values for one invocation, positionally
/// keyed by the names passed to register_method. Values are copied during
/// start(), so a stack array is the intended storage ({} for no params).
struct ParamSpan {
  const double* data = nullptr;
  std::size_t size = 0;

  ParamSpan() = default;
  ParamSpan(const double* d, std::size_t n) : data(d), size(n) {}
};

/// Access to the measurement substrate (the TAU component's port).
class MeasurementPort : public cca::Port {
 public:
  /// The rank-local TAU registry (timing/event/control/query interfaces).
  virtual tau::Registry& registry() = 0;

  /// Per-thread registry shards for multi-threaded ranks (DESIGN.md §9),
  /// or nullptr when the provider is single-threaded-only. When non-null,
  /// shard(0) is registry() and worker pool lanes time into their own
  /// shards, merged back at region barriers.
  virtual tau::RegistryShards* shards() { return nullptr; }
};

/// Monitoring interface used by proxies (the paper's "MonUF port").
/// start() is called with the extracted parameters before the invocation
/// is forwarded; stop() after it returns. Nesting is allowed (LIFO).
class MonitorPort : public cca::Port {
 public:
  // --- handle fast path ------------------------------------------------------

  /// Interns `method_key` (which doubles as the method's TAU timer name)
  /// and its parameter names; idempotent for a given key. Resolve once at
  /// wiring time, then report invocations through the handle overloads.
  virtual MethodHandle register_method(const std::string& method_key,
                                       const std::vector<std::string>& param_names) = 0;

  /// Allocation-free start/stop: `params` carries one value per registered
  /// parameter name, in registration order.
  virtual void start(MethodHandle method, ParamSpan params) = 0;
  virtual void stop(MethodHandle method) = 0;

  // --- string-keyed compatibility shim ---------------------------------------

  /// `method_key` identifies the monitored method and doubles as its TAU
  /// timer name (e.g. "sc_proxy::compute()").
  virtual void start(const std::string& method_key, const ParamMap& params) = 0;
  virtual void stop(const std::string& method_key) = 0;
};

/// Live telemetry out of the Mastermind: while active, one JSON object per
/// line (JSONL) is appended to the sink every `interval_records` completed
/// monitored invocations — completed-record throughput, per-group
/// inclusive time (cumulative and delta, via the registry's incremental
/// snapshot_delta), hardware-counter deltas, trace-ring fill/drop counts,
/// and the monitor's own accumulated self-overhead. Emission piggybacks on
/// the outermost monitoring stop; there is no background thread.
class TelemetryPort : public cca::Port {
 public:
  /// Starts emission into `sink` (borrowed; must outlive telemetry).
  /// `interval_records` < 1 is clamped to 1 (a line per invocation).
  virtual void start_telemetry(std::ostream& sink,
                               std::uint64_t interval_records) = 0;
  /// Emits a final line and detaches the sink.
  virtual void stop_telemetry() = 0;
  /// Forces one line now (no-op when inactive).
  virtual void emit_telemetry() = 0;
  virtual std::uint64_t telemetry_lines() const = 0;
  /// Monitoring + emission time (µs) spent while telemetry was active —
  /// the self-overhead the paper's requirement 2 says must stay visible.
  virtual double telemetry_self_us() const = 0;
};

}  // namespace core
